// Cross-device scenario: many phone users jointly train a sentiment
// model over their typed messages (the Sent140 setting) with an LSTM and
// RMSProp, exactly the paper's text configuration. The corpus is
// naturally non-IID — each user has their own vocabulary/style — and only
// a fraction of devices is online per round (partial participation).
//
// Build & run:  ./build/examples/cross_device_keyboard

#include <cstdio>

#include "core/rfedavg.h"
#include "data/partition.h"
#include "data/synthetic_text.h"
#include "fl/fedavg.h"
#include "fl/trainer.h"

int main() {
  using namespace rfed;

  // 120 users grouped onto 40 simulated devices; 20% online per round.
  TextProfile profile = Sent140LikeProfile();
  profile.num_users = 120;
  Rng rng(11);
  SyntheticTextData data =
      GenerateTextData(profile, /*train=*/900, /*test=*/300, &rng);
  ClientSplit split =
      NaturalPartition(data.train_users, profile.num_users, /*clients=*/40,
                       &rng);
  std::vector<ClientView> views;
  for (const auto& indices : split.client_indices) {
    views.push_back(ClientView{indices, {}});
  }

  LstmConfig model_config;
  model_config.vocab_size = profile.vocab_size;
  model_config.embed_dim = 8;
  model_config.hidden_dim = 16;
  model_config.feature_dim = 16;

  FlConfig fl;
  fl.local_steps = 10;                      // cross-device setting
  fl.sample_ratio = 0.2;                    // 20% of devices per round
  fl.batch_size = 10;
  fl.lr = 0.01;
  fl.optimizer = OptimizerKind::kRmsProp;   // the paper's Sent140 choice
  fl.seed = 2;

  TrainerOptions eval;
  eval.eval_every = 2;
  eval.eval_max_examples = 300;

  const int rounds = 10;

  FedAvg fedavg(fl, &data.train, views, MakeLstmFactory(model_config));
  FederatedTrainer fedavg_trainer(&fedavg, &data.test, eval);
  RunHistory fedavg_history = fedavg_trainer.Run(rounds);

  RegularizerOptions reg;
  reg.lambda = 0.1;  // the paper's Sent140 λ
  RFedAvgPlus rplus(fl, reg, &data.train, views,
                    MakeLstmFactory(model_config));
  FederatedTrainer rplus_trainer(&rplus, &data.test, eval);
  RunHistory rplus_history = rplus_trainer.Run(rounds);

  std::printf("\nCross-device keyboard sentiment (40 devices, SR=0.2, "
              "LSTM+RMSProp, %d rounds)\n", rounds);
  std::printf("%-10s %-12s %-12s\n", "method", "final acc", "best acc");
  std::printf("%-10s %-12.3f %-12.3f\n", "FedAvg",
              fedavg_history.FinalAccuracy(), fedavg_history.BestAccuracy());
  std::printf("%-10s %-12.3f %-12.3f\n", "rFedAvg+",
              rplus_history.FinalAccuracy(), rplus_history.BestAccuracy());
  std::printf("\naccuracy curve (rFedAvg+):");
  for (const RoundMetrics& r : rplus_history.rounds) {
    if (r.round % 2 == 0) std::printf(" %.2f", r.test_accuracy);
  }
  std::printf("\n");
  return 0;
}
