// Cross-silo scenario: a handful of "hospitals" jointly train a
// 10-class diagnostic image model. Each hospital's case mix is skewed
// (label-distribution skew), the classic cross-silo non-IID pattern the
// paper's intro motivates. The example compares all six algorithms of
// the paper's evaluation and reports both overall accuracy and the
// worst-hospital accuracy (fairness), each hospital evaluating on its
// own held-out cases.
//
// Build & run:  ./build/examples/cross_silo_hospitals

#include <cstdio>

#include "analysis/stats.h"
#include "core/rfedavg.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/fedavg.h"
#include "fl/fedprox.h"
#include "fl/qfedavg.h"
#include "fl/scaffold.h"
#include "fl/trainer.h"

namespace {

constexpr int kHospitals = 10;
constexpr int kRounds = 20;

struct Result {
  std::string method;
  double accuracy;
  double worst_hospital;
};

}  // namespace

int main() {
  using namespace rfed;

  // The "hard" image profile stands in for a realistic diagnostic task.
  Rng rng(7);
  SyntheticImageData data =
      GenerateImageData(CifarLikeProfile(), /*train=*/1500, /*test=*/400,
                        &rng);

  // Skewed case mix: similarity 0% = each hospital dominated by one or
  // two conditions. Each hospital also holds a private test slice with
  // the same skew.
  ClientSplit train_split =
      SimilarityPartition(data.train, kHospitals, 0.0, &rng);
  ClientSplit test_split =
      SimilarityPartition(data.test, kHospitals, 0.0, &rng);
  std::vector<ClientView> views;
  for (int k = 0; k < kHospitals; ++k) {
    views.push_back(ClientView{train_split.client_indices[k],
                               test_split.client_indices[k]});
  }

  CnnConfig model_config;
  model_config.in_channels = 3;
  model_config.feature_dim = 16;
  FlConfig fl;
  fl.local_steps = 5;     // cross-silo setting of the paper
  fl.sample_ratio = 1.0;  // every silo participates each round
  fl.batch_size = 24;
  fl.lr = 0.08;
  fl.seed = 3;
  ModelFactory factory = MakeCnnFactory(model_config);

  TrainerOptions eval;
  eval.eval_every = 5;
  eval.eval_max_examples = 400;

  auto evaluate = [&](FederatedAlgorithm* algorithm) {
    FederatedTrainer trainer(algorithm, &data.test, eval);
    RunHistory history = trainer.Run(kRounds);
    const auto per_hospital =
        DropNan(trainer.PerClientAccuracy(&data.test, views));
    return Result{algorithm->name(), history.FinalAccuracy(),
                  MinOf(per_hospital)};
  };

  std::vector<Result> results;
  {
    FedAvg a(fl, &data.train, views, factory);
    results.push_back(evaluate(&a));
  }
  {
    FedProx a(fl, /*mu=*/1.0, &data.train, views, factory);
    results.push_back(evaluate(&a));
  }
  {
    Scaffold a(fl, &data.train, views, factory);
    results.push_back(evaluate(&a));
  }
  {
    QFedAvg a(fl, /*q=*/1.0, &data.train, views, factory);
    results.push_back(evaluate(&a));
  }
  RegularizerOptions reg;
  reg.lambda = 1e-3;
  {
    RFedAvg a(fl, reg, &data.train, views, factory);
    results.push_back(evaluate(&a));
  }
  {
    RFedAvgPlus a(fl, reg, &data.train, views, factory);
    results.push_back(evaluate(&a));
  }

  std::printf("\nCross-silo hospitals (N=%d, E=%d, %d rounds, skewed case "
              "mix)\n", kHospitals, fl.local_steps, kRounds);
  std::printf("%-10s %-14s %-18s\n", "method", "accuracy", "worst hospital");
  for (const Result& r : results) {
    std::printf("%-10s %-14.3f %-18.3f\n", r.method.c_str(), r.accuracy,
                r.worst_hospital);
  }
  return 0;
}
