// Privacy-aware regularization: the δ maps rFedAvg+ communicates are
// aggregates of client features, so a cautious deployment perturbs them
// with clipped Gaussian noise (the DP mechanism of the paper's Sec.
// VI-B8). This example sweeps the noise multiplier σ₂ and shows the
// paper's finding: moderate noise is free, extreme noise costs accuracy.
//
// Build & run:  ./build/examples/private_regularization

#include <cstdio>

#include "core/rfedavg.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/trainer.h"

int main() {
  using namespace rfed;

  Rng rng(5);
  SyntheticImageData data =
      GenerateImageData(MnistLikeProfile(), /*train=*/1200, /*test=*/400,
                        &rng);
  ClientSplit split = SimilarityPartition(data.train, /*num_clients=*/8,
                                          /*similarity=*/0.0, &rng);
  std::vector<ClientView> views;
  for (const auto& indices : split.client_indices) {
    views.push_back(ClientView{indices, {}});
  }

  CnnConfig model_config;
  model_config.feature_dim = 16;
  FlConfig fl;
  fl.local_steps = 5;
  fl.batch_size = 24;
  fl.lr = 0.08;
  fl.seed = 4;
  TrainerOptions eval;
  eval.eval_every = 4;
  eval.eval_max_examples = 400;

  std::printf("\nrFedAvg+ with DP noise on the communicated maps "
              "(clip C0=1, lot L=%d)\n", fl.batch_size);
  std::printf("%-8s %-12s %-12s\n", "sigma2", "final acc", "best acc");
  for (double sigma : {0.0, 1.0, 5.0, 20.0}) {
    RegularizerOptions reg;
    reg.lambda = 1e-3;
    reg.dp.sigma = sigma;
    reg.dp.clip = 1.0;
    reg.dp.batch_size = fl.batch_size;
    RFedAvgPlus algorithm(fl, reg, &data.train, views,
                          MakeCnnFactory(model_config));
    FederatedTrainer trainer(&algorithm, &data.test, eval);
    RunHistory history = trainer.Run(/*rounds=*/12);
    std::printf("%-8g %-12.3f %-12.3f\n", sigma, history.FinalAccuracy(),
                history.BestAccuracy());
  }
  std::printf("\n(expected: small sigma2 matches sigma2=0; very large "
              "sigma2 can hurt)\n");
  return 0;
}
