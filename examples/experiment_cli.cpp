// Configurable experiment runner — the "downstream user" entry point.
// Pick a dataset profile, partition, algorithm and hyperparameters from
// the command line and get the training curve plus communication totals.
//
// Examples:
//   ./build/examples/experiment_cli --dataset cifar --method rFedAvg+
//       --clients 10 --similarity 0 --rounds 20 --lambda 1e-3
//   ./build/examples/experiment_cli --dataset sent140 --method FedAvg
//       --clients 20 --sample_ratio 0.2 --rounds 10
//   ./build/examples/experiment_cli --dataset mnist --method Scaffold
//       --compressor topk10 --selection loss
//
// Flags (defaults in parentheses):
//   --dataset mnist|cifar|femnist|sent140 (mnist)   --method <name> (rFedAvg+)
//   --clients N (10)        --similarity 0..1 (0)   --rounds C (15)
//   --local_steps E (5)     --batch B (24)          --sample_ratio SR (1.0)
//   --lr (0.08 / 0.01 text) --lambda (1e-3 / 1e-4)  --dp_sigma (0)
//   --compressor none|q8|q4|topk10|topk1|sketch (none)
//   --selection uniform|loss (uniform)
//   --model cnn|mlp (cnn, image datasets only)
//   --train_examples (1500) --test_examples (400)   --seed (1)
//   --fine_tune (false: also report personalized accuracy)
//   --drop/--corrupt/--duplicate/--delay 0..1 (0)   fault channel probs
//   --mean_delay_ms (50)    --timeout_ms (250, 0=off) --retries (0)
//   --sim_mode sync|deadline|async (sync)           round policy
//   --compute_model constant|lognormal|drift (constant)
//   --compute_ms per-step virtual ms (0 = free)     --compute_sigma (1.0)
//   --compute_drift (0.05)  --compute_spread (0)    device heterogeneity
//   --down_bw/--up_bw bytes per virtual ms (0 = infinite)
//   --base_latency_ms (0)   --deadline_ms (deadline mode, required > 0)
//   --async_buffer K arrivals per server update (2)
//   --num_threads parallel local training (1 = sequential)
//   --kernel_threads intra-op GEMM/conv threads (1 = serial kernels;
//       any value is bit-identical, see docs/KERNELS.md)
//   --trace / --trace_out / --csv_out observability outputs
//       (docs/OBSERVABILITY.md); run `--help` for the full list

#include <cstdio>
#include <cstring>

#include "core/personalization.h"
#include "core/rfedavg.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "data/synthetic_text.h"
#include "fl/checkpoint.h"
#include "fl/fedavg.h"
#include "fl/fednova.h"
#include "fl/fedprox.h"
#include "fl/qfedavg.h"
#include "fl/scaffold.h"
#include "fl/trainer.h"
#include "obs/trace.h"
#include "util/flags.h"

namespace {

using namespace rfed;

// Every flag the CLI accepts, in --help order. docs_check greps the
// --help output for the flag names referenced in docs/, so keep this
// list in sync with the Get*() calls in main().
constexpr const char* kUsage = R"(usage: experiment_cli [--flag value | --flag=value ...]

Experiment (defaults in parentheses):
  --dataset mnist|cifar|femnist|sent140 (mnist)
  --method FedAvg|FedProx|Scaffold|q-FedAvg|FedNova|rFedAvg|rFedAvg+ (rFedAvg+)
  --clients N (10)          --similarity 0..1 (0)     --rounds C (15)
  --local_steps E (5)       --batch B (24; 10 text)   --sample_ratio SR (1.0)
  --lr (0.08; 0.01 text)    --lambda (1e-3; 1e-4 text) --dp_sigma (0)
  --compressor none|q8|q4|topk10|topk1|sketch (none)
  --selection uniform|loss (uniform)
  --model cnn|mlp (cnn, image datasets only)
  --train_examples (1500)   --test_examples (400)     --seed (1)
  --eval_every (1)          --fine_tune (false: also report personalized acc)

Fault channel (per-attempt probabilities):
  --drop/--corrupt/--duplicate/--delay 0..1 (0)
  --mean_delay_ms (50)      --timeout_ms (250, 0=off) --retries (0)

Sim runtime:
  --sim_mode sync|deadline|async (sync)
  --compute_model constant|lognormal|drift (constant)
  --compute_ms per-step virtual ms (0 = free)         --compute_sigma (1.0)
  --compute_drift (0.05)    --compute_spread (0)
  --down_bw/--up_bw bytes per virtual ms (0 = infinite)
  --base_latency_ms (0)     --deadline_ms (deadline mode, required > 0)
  --async_buffer K arrivals per server update (2)

Adversarial clients (seeded, deterministic; docs/ARCHITECTURE.md):
  --adversary none|nan|sign_flip|scale|noise|label_flip (none)
  --adversary_frac fraction of clients compromised (0.2)
  --adversary_scale delta blow-up of the scale attack (100)
  --adversary_sigma stddev of the noise attack (1)

Robust aggregation (server side):
  --aggregator mean|trimmed_mean|median|norm_clip (mean)
  --trim_fraction per-side trim of trimmed_mean (0.2)
  --clip_multiplier norm bound as a multiple of the median delta norm (3)
  --validate screen non-finite updates/maps before aggregation (true)

Checkpoint / resume (bit-identical crash recovery):
  --checkpoint_every write a run checkpoint every k rounds (0 = never)
  --checkpoint_path PATH of the checkpoint file (required with the above)
  --resume_from PATH restore a checkpoint and continue to --rounds

Parallelism (bit-identical at any setting):
  --num_threads parallel local training (1 = sequential)
  --kernel_threads intra-op GEMM/conv threads (1 = serial kernels)
  --kernel_autotune benchmark tile candidates per GEMM shape and keep
      the winner (false; all candidates bit-identical, docs/PERFORMANCE.md)
  --kernel_autotune_cache PATH persist winning tiles across runs
      (requires --kernel_autotune; corrupt/stale caches abort)

Autograd (bit-identical at any setting; docs/AUTOGRAD.md):
  --autograd_static record each client bout's step-0 graph and replay it
      for the remaining local steps (true)
  --grad_checkpoint drop LSTM per-timestep activations at segment close
      and rematerialize them during backward; ~one extra forward per
      timestep for O(1)-per-timestep activation memory (false)

Scale (hierarchical aggregation; docs/ARCHITECTURE.md):
  --shard_fanout updates per shard task of the canonical aggregation
      tree (power of two; 0 = flat loop, byte-identical to goldens;
      any power of two yields one canonical tree result)
  --stream_chunk train/fold the cohort in chunks of this many clients
      (requires --shard_fanout > 0; mean-aggregating methods only;
      0 = all-at-once)

Observability (docs/OBSERVABILITY.md):
  --trace record phase/kernel spans and print the per-phase summary (false)
  --trace_out PATH write spans as Chrome trace_event JSON (implies --trace;
      load in chrome://tracing or https://ui.perfetto.dev)
  --csv_out PATH write the per-round history, including the metric
      registry's per-round snapshots, as CSV

  --help print this message and exit
)";

constexpr const char* kKnownFlags[] = {
    "dataset", "method", "clients", "similarity", "rounds", "local_steps",
    "batch", "sample_ratio", "lr", "lambda", "dp_sigma", "compressor",
    "selection", "model", "train_examples", "test_examples", "seed",
    "eval_every", "fine_tune", "drop", "corrupt", "duplicate", "delay",
    "mean_delay_ms", "timeout_ms", "retries", "sim_mode", "compute_model",
    "compute_ms", "compute_sigma", "compute_drift", "compute_spread",
    "down_bw", "up_bw", "base_latency_ms", "deadline_ms", "async_buffer",
    "adversary", "adversary_frac", "adversary_scale", "adversary_sigma",
    "aggregator", "trim_fraction", "clip_multiplier", "validate",
    "checkpoint_every", "checkpoint_path", "resume_from",
    "num_threads", "kernel_threads", "kernel_autotune",
    "kernel_autotune_cache", "autograd_static", "grad_checkpoint",
    "shard_fanout", "stream_chunk",
    "trace", "trace_out", "csv_out", "help"};

std::unique_ptr<FederatedAlgorithm> Build(
    const std::string& method, const FlConfig& fl,
    const RegularizerOptions& reg, const Dataset* train,
    const std::vector<ClientView>& views, const ModelFactory& factory) {
  if (method == "FedAvg") {
    return std::make_unique<FedAvg>(fl, train, views, factory);
  }
  if (method == "FedProx") {
    return std::make_unique<FedProx>(fl, 1.0, train, views, factory);
  }
  if (method == "Scaffold") {
    return std::make_unique<Scaffold>(fl, train, views, factory);
  }
  if (method == "q-FedAvg") {
    return std::make_unique<QFedAvg>(fl, 1.0, train, views, factory);
  }
  if (method == "FedNova") {
    return std::make_unique<FedNova>(fl, 4 * fl.local_steps, train, views,
                                     factory);
  }
  if (method == "rFedAvg") {
    return std::make_unique<RFedAvg>(fl, reg, train, views, factory);
  }
  if (method == "rFedAvg+") {
    return std::make_unique<RFedAvgPlus>(fl, reg, train, views, factory);
  }
  std::fprintf(stderr, "unknown --method %s\n", method.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  for (const std::string& key : flags.Keys()) {
    bool known = false;
    for (const char* k : kKnownFlags) {
      if (key == k) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr, "unknown flag --%s (see --help)\n", key.c_str());
      return 1;
    }
  }
  const std::string dataset = flags.GetString("dataset", "mnist");
  const std::string method = flags.GetString("method", "rFedAvg+");
  const int clients = flags.GetInt("clients", 10);
  const double similarity = flags.GetDouble("similarity", 0.0);
  const int rounds = flags.GetInt("rounds", 15);
  const int train_examples = flags.GetInt("train_examples", 1500);
  const int test_examples = flags.GetInt("test_examples", 400);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const bool is_text = dataset == "sent140";

  FlConfig fl;
  fl.local_steps = flags.GetInt("local_steps", 5);
  fl.batch_size = flags.GetInt("batch", is_text ? 10 : 24);
  fl.sample_ratio = flags.GetDouble("sample_ratio", 1.0);
  fl.lr = flags.GetDouble("lr", is_text ? 0.01 : 0.08);
  fl.optimizer = is_text ? OptimizerKind::kRmsProp : OptimizerKind::kSgd;
  fl.seed = seed;
  fl.upload_compressor = flags.GetString("compressor", "none");
  fl.client_selection = flags.GetString("selection", "uniform");
  fl.fault.drop_prob = flags.GetDouble("drop", 0.0);
  fl.fault.corrupt_prob = flags.GetDouble("corrupt", 0.0);
  fl.fault.duplicate_prob = flags.GetDouble("duplicate", 0.0);
  fl.fault.delay_prob = flags.GetDouble("delay", 0.0);
  fl.fault.mean_delay_ms = flags.GetDouble("mean_delay_ms", 50.0);
  fl.fault.round_timeout_ms = flags.GetDouble("timeout_ms", 250.0);
  fl.fault.max_retries = flags.GetInt("retries", 0);
  const std::string sim_mode = flags.GetString("sim_mode", "sync");
  if (!ParseSimMode(sim_mode, &fl.sim.mode)) {
    std::fprintf(stderr, "unknown --sim_mode %s\n", sim_mode.c_str());
    return 1;
  }
  const std::string compute_model =
      flags.GetString("compute_model", "constant");
  if (!ParseComputeModelKind(compute_model, &fl.sim.compute.kind)) {
    std::fprintf(stderr, "unknown --compute_model %s\n",
                 compute_model.c_str());
    return 1;
  }
  fl.sim.compute.mean_ms_per_step = flags.GetDouble("compute_ms", 0.0);
  fl.sim.compute.sigma = flags.GetDouble("compute_sigma", 1.0);
  fl.sim.compute.drift = flags.GetDouble("compute_drift", 0.05);
  fl.sim.compute.hetero_spread = flags.GetDouble("compute_spread", 0.0);
  fl.sim.network.down_bytes_per_ms = flags.GetDouble("down_bw", 0.0);
  fl.sim.network.up_bytes_per_ms = flags.GetDouble("up_bw", 0.0);
  fl.sim.network.base_latency_ms = flags.GetDouble("base_latency_ms", 0.0);
  fl.sim.deadline_ms = flags.GetDouble("deadline_ms", 0.0);
  fl.sim.async_buffer = flags.GetInt("async_buffer", 2);
  fl.adversary.mode = flags.GetString("adversary", "none");
  fl.adversary.fraction = flags.GetDouble("adversary_frac", 0.2);
  fl.adversary.scale = flags.GetDouble("adversary_scale", 100.0);
  fl.adversary.noise_sigma = flags.GetDouble("adversary_sigma", 1.0);
  if (!KnownAdversaryMode(fl.adversary.mode)) {
    std::fprintf(stderr, "unknown --adversary %s\n",
                 fl.adversary.mode.c_str());
    return 1;
  }
  fl.robust.aggregator = flags.GetString("aggregator", "mean");
  fl.robust.trim_fraction = flags.GetDouble("trim_fraction", 0.2);
  fl.robust.clip_multiplier = flags.GetDouble("clip_multiplier", 3.0);
  fl.robust.validate = flags.GetBool("validate", true);
  if (!KnownAggregator(fl.robust.aggregator)) {
    std::fprintf(stderr, "unknown --aggregator %s\n",
                 fl.robust.aggregator.c_str());
    return 1;
  }
  fl.num_threads = flags.GetInt("num_threads", 1);
  fl.kernel_threads = flags.GetInt("kernel_threads", 1);
  fl.kernel_autotune = flags.GetBool("kernel_autotune", false);
  fl.kernel_autotune_cache = flags.GetString("kernel_autotune_cache", "");
  fl.autograd.static_graph = flags.GetBool("autograd_static", true);
  fl.autograd.checkpoint = flags.GetBool("grad_checkpoint", false);
  fl.shard_fanout = flags.GetInt("shard_fanout", 0);
  fl.stream_chunk = flags.GetInt("stream_chunk", 0);
  const std::string trace_out = flags.GetString("trace_out", "");
  const std::string csv_out = flags.GetString("csv_out", "");
  fl.trace = flags.GetBool("trace", false) || !trace_out.empty();

  RegularizerOptions reg;
  reg.lambda = flags.GetDouble("lambda", is_text ? 1e-4 : 1e-3);
  reg.dp.sigma = flags.GetDouble("dp_sigma", 0.0);
  reg.dp.batch_size = fl.batch_size;

  // Data + partition + model.
  Rng rng(seed);
  std::unique_ptr<Dataset> train, test;
  std::vector<ClientView> views;
  ModelFactory factory;
  if (is_text) {
    TextProfile profile = Sent140LikeProfile();
    profile.num_users = std::max(4 * clients, 40);
    auto data = GenerateTextData(profile, train_examples, test_examples, &rng);
    auto split = NaturalPartition(data.train_users, profile.num_users,
                                  clients, &rng);
    for (auto& idx : split.client_indices) views.push_back({idx, {}});
    LstmConfig mc;
    mc.vocab_size = profile.vocab_size;
    mc.embed_dim = 8;
    mc.hidden_dim = 16;
    mc.feature_dim = 16;
    factory = MakeLstmFactory(mc);
    train = std::make_unique<Dataset>(std::move(data.train));
    test = std::make_unique<Dataset>(std::move(data.test));
  } else {
    ImageProfile profile = dataset == "cifar"    ? CifarLikeProfile()
                           : dataset == "femnist" ? FemnistLikeProfile()
                                                  : MnistLikeProfile();
    auto data = GenerateImageData(profile, train_examples, test_examples,
                                  &rng);
    ClientSplit split =
        dataset == "femnist"
            ? NaturalPartition(data.train_writers, profile.num_writers,
                               clients, &rng)
            : SimilarityPartition(data.train, clients, similarity, &rng);
    ClientSplit test_split = SimilarityPartition(data.test, clients,
                                                 similarity, &rng);
    for (int k = 0; k < clients; ++k) {
      views.push_back(ClientView{split.client_indices[k],
                                 test_split.client_indices[k]});
    }
    if (flags.GetString("model", "cnn") == "mlp") {
      MlpConfig mc;
      mc.in_channels = profile.channels;
      mc.image_size = profile.image_size;
      factory = MakeMlpFactory(mc);
    } else {
      CnnConfig mc;
      mc.in_channels = profile.channels;
      mc.image_size = profile.image_size;
      mc.conv1_channels = 4;
      mc.conv2_channels = 8;
      mc.feature_dim = 16;
      factory = MakeCnnFactory(mc);
    }
    train = std::make_unique<Dataset>(std::move(data.train));
    test = std::make_unique<Dataset>(std::move(data.test));
  }

  auto algorithm = Build(method, fl, reg, train.get(), views, factory);
  TrainerOptions options;
  options.eval_every = flags.GetInt("eval_every", 1);
  options.eval_max_examples = 400;
  options.verbose = true;
  options.checkpoint_every = flags.GetInt("checkpoint_every", 0);
  options.checkpoint_path = flags.GetString("checkpoint_path", "");
  if (options.checkpoint_every > 0 && options.checkpoint_path.empty()) {
    std::fprintf(stderr, "--checkpoint_every needs --checkpoint_path\n");
    return 1;
  }
  const std::string resume_from = flags.GetString("resume_from", "");
  FederatedTrainer trainer(algorithm.get(), test.get(), options);
  RunHistory history;
  if (!resume_from.empty()) {
    RunCheckpoint resume = RunCheckpoint::Load(resume_from);
    std::printf("resuming from %s at round %d\n", resume_from.c_str(),
                resume.next_round);
    history = trainer.Run(rounds, &resume);
  } else {
    history = trainer.Run(rounds);
  }

  std::printf("\n%s on %s: final=%.3f best=%.3f total_comm=%lld bytes "
              "kernel_scratch_peak=%lld bytes\n",
              method.c_str(), dataset.c_str(), history.FinalAccuracy(),
              history.BestAccuracy(),
              static_cast<long long>(algorithm->comm().total_bytes()),
              static_cast<long long>(history.PeakKernelScratchBytes()));
  if (fl.fault.enabled()) {
    std::printf("channel: delivered=%lld dropped=%lld retried=%lld\n",
                static_cast<long long>(history.TotalDelivered()),
                static_cast<long long>(history.TotalDropped()),
                static_cast<long long>(history.TotalRetried()));
  }
  if (fl.adversary.enabled() || !fl.robust.mean()) {
    int64_t rejected = 0;
    for (int64_t c : algorithm->rejection_counts()) rejected += c;
    std::printf(
        "resilience: adversary=%s adversarial_clients=%d aggregator=%s "
        "rejected_updates=%lld\n",
        fl.adversary.mode.c_str(), algorithm->adversary().num_adversarial(),
        fl.robust.aggregator.c_str(), static_cast<long long>(rejected));
  }
  if (!fl.sim.compute.free() || !fl.sim.network.free()) {
    std::printf(
        "sim (%s): virtual=%.1f ms, last round p50=%.1f ms p95=%.1f ms, "
        "stragglers_cut=%lld\n",
        ToString(fl.sim.mode), history.TotalVirtualMs(),
        history.rounds.back().client_p50_ms,
        history.rounds.back().client_p95_ms,
        static_cast<long long>(history.TotalStragglersCut()));
  }
  if (fl.trace) {
    std::printf("\ntrace summary (wall vs virtual per phase):\n%s",
                obs::FormatTraceSummary().c_str());
    if (!trace_out.empty()) {
      obs::WriteChromeTrace(trace_out);
      std::printf("chrome trace written to %s (load in chrome://tracing)\n",
                  trace_out.c_str());
    }
  }
  if (!csv_out.empty()) {
    SaveHistoryCsv(history, csv_out);
    std::printf("per-round history written to %s\n", csv_out.c_str());
  }

  if (flags.GetBool("fine_tune", false) && !views[0].test_indices.empty()) {
    PersonalizationOptions popt;
    popt.seed = seed;
    PersonalizationReport report = PersonalizeAndEvaluate(
        algorithm.get(), *train, *test, views, popt);
    std::printf("personalization: global=%.3f -> fine-tuned=%.3f\n",
                report.MeanGlobal(), report.MeanPersonalized());
  }
  return 0;
}
