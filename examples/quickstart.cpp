// Quickstart: the smallest end-to-end use of the library.
//
//   1. synthesize a 10-class image corpus,
//   2. split it across 8 clients with a totally non-IID (label-sorted)
//      partition,
//   3. train FedAvg and rFedAvg+ for a few communication rounds,
//   4. compare test accuracy.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/rfedavg.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/fedavg.h"
#include "fl/trainer.h"

int main() {
  using namespace rfed;

  // 1. Data: an easy MNIST-like synthetic task.
  Rng rng(42);
  SyntheticImageData data =
      GenerateImageData(MnistLikeProfile(), /*train=*/1200, /*test=*/400,
                        &rng);

  // 2. Totally non-IID partition over 8 clients (similarity 0%).
  ClientSplit split = SimilarityPartition(data.train, /*num_clients=*/8,
                                          /*similarity=*/0.0, &rng);
  std::vector<ClientView> views;
  for (const auto& indices : split.client_indices) {
    views.push_back(ClientView{indices, {}});
  }
  std::printf("clients: %d, label skew: %.2f (0 = IID)\n",
              split.num_clients(), LabelSkew(data.train, split));

  // 3. Shared configuration: E=5 local steps, full participation.
  CnnConfig model_config;           // the paper's CNN, scaled width
  model_config.feature_dim = 16;    // the layer δ/MMD acts on
  FlConfig fl;
  fl.local_steps = 5;
  fl.batch_size = 24;
  fl.lr = 0.08;
  fl.seed = 1;

  TrainerOptions eval;
  eval.eval_every = 2;
  eval.eval_max_examples = 400;

  const int rounds = 14;

  // 4a. Baseline: FedAvg.
  FedAvg fedavg(fl, &data.train, views, MakeCnnFactory(model_config));
  FederatedTrainer fedavg_trainer(&fedavg, &data.test, eval);
  RunHistory fedavg_history = fedavg_trainer.Run(rounds);

  // 4b. rFedAvg+: FedAvg plus the MMD distribution regularizer with
  //     O(dN) communication (Algorithm 2 of the paper).
  RegularizerOptions reg;
  reg.lambda = 1e-3;
  RFedAvgPlus rplus(fl, reg, &data.train, views, MakeCnnFactory(model_config));
  FederatedTrainer rplus_trainer(&rplus, &data.test, eval);
  RunHistory rplus_history = rplus_trainer.Run(rounds);

  std::printf("\n%-10s %-12s %-12s %-16s\n", "method", "final acc",
              "best acc", "bytes/round");
  std::printf("%-10s %-12.3f %-12.3f %-16lld\n", "FedAvg",
              fedavg_history.FinalAccuracy(), fedavg_history.BestAccuracy(),
              static_cast<long long>(fedavg_history.rounds[0].round_bytes));
  std::printf("%-10s %-12.3f %-12.3f %-16lld\n", "rFedAvg+",
              rplus_history.FinalAccuracy(), rplus_history.BestAccuracy(),
              static_cast<long long>(rplus_history.rounds[0].round_bytes));
  return 0;
}
