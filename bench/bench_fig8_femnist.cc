// Reproduces Fig. 8: accuracy curves on the femnist profile (natural
// writer partition + quantity skew) with two client counts and two cost
// settings — low cost (SR=0.1, E=10) and high cost (SR=0.2, E=20),
// scaled from the paper's 100/500 clients.

#include <cstdio>

#include "bench_common.h"

namespace rfed::bench {
namespace {

void Run() {
  const int rounds = Scaled(12);
  std::printf("\nFIG 8: FEMNIST curves, natural writer split (%d rounds)\n",
              rounds);
  CsvWriter csv(ResultDir() + "/fig8_femnist.csv",
                {"setting", "method", "round", "train_loss",
                 "test_accuracy"});
  struct Setting {
    const char* label;
    int clients;
    double sample_ratio;
    int local_steps;
  };
  // Paper: 100/500 clients (scaled to 20/50), low cost SR=.1 E=10,
  // high cost SR=.2 E=20.
  const Setting settings[] = {
      {"clients20 low-cost", 20, 0.1, 10},
      {"clients20 high-cost", 20, 0.2, 20},
      {"clients50 low-cost", 50, 0.1, 10},
      {"clients50 high-cost", 50, 0.2, 20},
  };
  for (const Setting& s : settings) {
    Workload workload =
        MakeFemnistWorkload(s.clients, s.local_steps, s.sample_ratio, 1);
    RunCurveSet(s.label, workload, rounds, /*seed=*/1, &csv);
  }
  std::printf("\nCSV: %s/fig8_femnist.csv\n", ResultDir().c_str());
}

}  // namespace
}  // namespace rfed::bench

int main() {
  rfed::bench::Run();
  return 0;
}
