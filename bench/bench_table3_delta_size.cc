// Reproduces Table III: size of the communicated δ maps in bytes, per
// client per round, for rFedAvg (N-1 foreign maps) vs rFedAvg+ (one
// averaged map), under the CNN and RNN models in both deployments.
// Reported twice: for the paper's model dimensions (512-d CNN features /
// 446-d RNN features, N=20 / N=100 participating) and for this repo's
// scaled bench models, both derived from the same DeltaMapStore
// accounting used by the live algorithms.

#include <cstdio>

#include "bench_common.h"
#include "core/delta_map.h"
#include "util/csv_writer.h"

namespace rfed::bench {
namespace {

struct Row {
  const char* scope;
  const char* model;
  const char* deployment;
  int participating_clients;  // N_sampled: receivers of the broadcast
  int64_t feature_dim;
};

void Run() {
  // The paper's Table III: cross-silo N=20 (SR=1), cross-device 100
  // sampled clients (N=500, SR=0.2). Feature dims reverse-engineered from
  // the reported bytes: 2808 B / 4 = 702 floats (CNN), 1784 B / 4 = 446
  // floats (RNN).
  const Row rows[] = {
      {"paper-dims", "CNN", "cross-silo", 20, 702},
      {"paper-dims", "RNN", "cross-silo", 20, 446},
      {"paper-dims", "CNN", "cross-device", 100, 702},
      {"paper-dims", "RNN", "cross-device", 100, 446},
      {"bench-dims", "CNN", "cross-silo", CrossSilo().num_clients, 16},
      {"bench-dims", "RNN", "cross-silo", CrossSilo().num_clients, 16},
      {"bench-dims", "CNN", "cross-device",
       static_cast<int>(CrossDevice().num_clients * CrossDevice().sample_ratio),
       16},
      {"bench-dims", "RNN", "cross-device",
       static_cast<int>(CrossDevice().num_clients * CrossDevice().sample_ratio),
       16},
  };

  CsvWriter csv(ResultDir() + "/table3_delta_size.csv",
                {"scope", "model", "deployment", "clients", "feature_dim",
                 "rfedavg_bytes", "rfedavg_plus_bytes"});

  std::printf("\nTABLE III: Size of delta (B) per client per round\n");
  std::printf("%-11s %-4s %-13s %8s %10s %14s %15s\n", "scope", "model",
              "deployment", "clients", "dim", "rFedAvg", "rFedAvg+");
  for (const Row& row : rows) {
    DeltaMapStore store(row.participating_clients, row.feature_dim);
    const int64_t pairwise = store.BroadcastBytesPairwise();
    const int64_t averaged = store.BroadcastBytesAveraged();
    std::printf("%-11s %-4s %-13s %8d %10lld %14lld %15lld\n", row.scope,
                row.model, row.deployment, row.participating_clients,
                static_cast<long long>(row.feature_dim),
                static_cast<long long>(pairwise),
                static_cast<long long>(averaged));
    csv.WriteRow({row.scope, row.model, row.deployment,
                  std::to_string(row.participating_clients),
                  std::to_string(row.feature_dim), std::to_string(pairwise),
                  std::to_string(averaged)});
  }
  std::printf(
      "\nPaper reference (B): cross-silo CNN 56160 vs 2808, RNN 35680 vs "
      "1784;\n  cross-device CNN 280800 vs 2808, RNN 178400 vs 1784.\n"
      "The paper-dims rows above recover the rFedAvg+ payload exactly and\n"
      "the rFedAvg payload up to the (N vs N-1) broadcast convention.\n");
  std::printf("\nCSV: %s/table3_delta_size.csv\n", ResultDir().c_str());
}

}  // namespace
}  // namespace rfed::bench

int main() {
  rfed::bench::Run();
  return 0;
}
