// Numerically validates Theorems 1 and 2 on the strongly convex harness:
//   * all variants decay as O(1/T): gap(t) * t flattens to a constant;
//   * delayed maps only inflate the constant relative to the fresh-map
//     oracle;
//   * the rFedAvg constant (local delayed maps, C3) dominates the
//     rFedAvg+ constant (global delayed maps, C2 < C3).

#include <cstdio>

#include "bench_common.h"
#include "core/convex_objective.h"
#include "util/csv_writer.h"
#include "util/string_util.h"

namespace rfed::bench {
namespace {

double MeanTailConstant(const std::vector<double>& gaps, int local_steps) {
  // Mean of gap(c) * t(c) over the last quarter of rounds, t = c * E.
  double acc = 0.0;
  int count = 0;
  for (size_t c = 3 * gaps.size() / 4; c < gaps.size(); ++c) {
    acc += gaps[c] * static_cast<double>((c + 1) * local_steps);
    ++count;
  }
  return acc / count;
}

void Run() {
  ConvexProblemConfig config;
  config.num_clients = 10;
  config.dim = 12;
  config.lambda = 0.2;
  config.grad_noise = 0.15;
  config.heterogeneity = 1.0;
  ConvexFederatedProblem problem(config);
  const int rounds = Scaled(600);
  const int local_steps = 5;
  const int num_seeds = 5;

  std::printf("\nCONVERGENCE (Theorems 1 & 2): strongly convex objective, "
              "N=%d, dim=%d, E=%d, eta_t = 2/(mu(gamma+t))\n",
              config.num_clients, config.dim, local_steps);
  std::printf("  L = %.3f, mu = %.3f, F* = %.6f\n", problem.Smoothness(),
              problem.StrongConvexity(), problem.OptimalValue());

  CsvWriter csv(ResultDir() + "/convergence_theory.csv",
                {"mode", "seed", "round", "gap"});
  struct ModeRow {
    const char* name;
    MapMode mode;
    double mean_constant = 0.0;
    double final_gap = 0.0;
  };
  ModeRow rows[] = {
      {"fresh-maps (oracle)", MapMode::kFresh},
      {"rFedAvg (local delayed)", MapMode::kLocalDelayed},
      {"rFedAvg+ (global delayed)", MapMode::kGlobalDelayed},
  };
  for (ModeRow& row : rows) {
    double constant = 0.0, final_gap = 0.0;
    for (int seed = 0; seed < num_seeds; ++seed) {
      Rng rng(static_cast<uint64_t>(1000 + seed));
      const auto gaps = problem.Run(row.mode, rounds, local_steps, &rng);
      for (size_t c = 0; c < gaps.size(); c += 10) {
        csv.WriteRow({row.name, std::to_string(seed), std::to_string(c),
                      StrFormat("%.8f", gaps[c])});
      }
      constant += MeanTailConstant(gaps, local_steps);
      final_gap += gaps.back();
    }
    row.mean_constant = constant / num_seeds;
    row.final_gap = final_gap / num_seeds;
  }
  std::printf("  %-28s %18s %16s\n", "mode", "tail gap(t)*t", "final gap");
  for (const ModeRow& row : rows) {
    std::printf("  %-28s %18.4f %16.6f\n", row.name, row.mean_constant,
                row.final_gap);
  }
  std::printf(
      "  (expected shape: every variant's gap(t)*t flattens to a finite\n"
      "   constant -> the O(1/T) rate of Theorems 1-2 holds; the delayed\n"
      "   variants stay within a small factor of the fresh-map oracle —\n"
      "   the theorems' C2 < C3 ordering is a worst-case bound and the\n"
      "   measured constants are expected to be close)\n");
  std::printf("\nCSV: %s/convergence_theory.csv\n", ResultDir().c_str());
}

}  // namespace
}  // namespace rfed::bench

int main() {
  rfed::bench::Run();
  return 0;
}
