#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "fl/fedavg.h"
#include "fl/fedprox.h"
#include "fl/qfedavg.h"
#include "fl/scaffold.h"
#include "util/check.h"
#include "util/string_util.h"

namespace rfed::bench {

double BenchScale() {
  static const double scale = [] {
    const char* env = std::getenv("RFED_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return scale;
}

int Scaled(int base, int min_value) {
  const int v = static_cast<int>(base * BenchScale());
  return v < min_value ? min_value : v;
}

std::string ResultDir() {
  static const std::string dir = [] {
    std::string d = "bench_results";
    std::filesystem::create_directories(d);
    return d;
  }();
  return dir;
}

Deployment CrossSilo() {
  // Paper: N=20, E=5, SR=1.0, B=100. Client count and batch are scaled
  // for single-core simulation; E and SR are the paper's.
  return Deployment{"cross-silo", 10, 5, 1.0, 24};
}

Deployment CrossDevice() {
  // Paper: N=500, E=10, SR=0.2, B=32. N scaled to 50.
  return Deployment{"cross-device", 50, 10, 0.2, 16};
}

namespace {

CnnConfig CnnFor(const ImageProfile& profile) {
  CnnConfig config;
  config.in_channels = profile.channels;
  config.image_size = profile.image_size;
  config.conv1_channels = 4;
  config.conv2_channels = 8;
  config.feature_dim = 16;
  config.num_classes = profile.num_classes;
  return config;
}

FlConfig BaseConfig(const Deployment& deploy, uint64_t seed) {
  FlConfig config;
  config.local_steps = deploy.local_steps;
  config.batch_size = deploy.batch_size;
  config.sample_ratio = deploy.sample_ratio;
  config.lr = 0.08;
  config.seed = seed;
  config.max_examples_per_pass = 192;
  return config;
}

}  // namespace

Workload MakeImageWorkload(const std::string& profile_name,
                           const Deployment& deploy, double similarity,
                           uint64_t seed) {
  ImageProfile profile;
  if (profile_name == "mnist") {
    profile = MnistLikeProfile();
  } else if (profile_name == "cifar") {
    profile = CifarLikeProfile();
  } else {
    RFED_CHECK(false) << "unknown profile " << profile_name;
  }
  Rng rng(seed * 1000003 + 17);
  SyntheticImageData data = GenerateImageData(
      profile, Scaled(1500, 400), Scaled(400, 200), &rng);
  ClientSplit split =
      SimilarityPartition(data.train, deploy.num_clients, similarity, &rng);
  // Per-client test slices for fairness evaluation, same partition rule.
  ClientSplit test_split =
      SimilarityPartition(data.test, deploy.num_clients, similarity, &rng);
  std::vector<ClientView> views;
  for (int k = 0; k < deploy.num_clients; ++k) {
    views.push_back(ClientView{split.client_indices[static_cast<size_t>(k)],
                               test_split.client_indices[static_cast<size_t>(k)]});
  }
  Workload workload{profile_name,
                    StrFormat("sim%d", static_cast<int>(similarity * 100)),
                    std::move(data.train),
                    std::move(data.test),
                    std::move(views),
                    MakeCnnFactory(CnnFor(profile)),
                    BaseConfig(deploy, seed),
                    /*default_lambda=*/1e-3};
  return workload;
}

Workload MakeTextWorkload(const Deployment& deploy, bool natural,
                          uint64_t seed) {
  TextProfile profile = Sent140LikeProfile();
  profile.num_users = std::max(4 * deploy.num_clients, 40);
  Rng rng(seed * 1000033 + 29);
  SyntheticTextData data =
      GenerateTextData(profile, Scaled(900, 300), Scaled(300, 150), &rng);
  ClientSplit split;
  if (natural) {
    split = NaturalPartition(data.train_users, profile.num_users,
                             deploy.num_clients, &rng);
  } else {
    split = IidPartition(data.train, deploy.num_clients, &rng);
  }
  std::vector<ClientView> views;
  for (const auto& idx : split.client_indices) views.push_back({idx, {}});

  LstmConfig mc;
  mc.vocab_size = profile.vocab_size;
  mc.embed_dim = 8;
  mc.hidden_dim = 16;
  mc.feature_dim = 16;
  mc.num_classes = 2;

  FlConfig config = BaseConfig(deploy, seed);
  config.lr = 0.01;  // the paper's RMSProp rate for Sent140
  config.optimizer = OptimizerKind::kRmsProp;
  config.batch_size = 10;

  return Workload{"sent140",
                  natural ? "noniid" : "iid",
                  std::move(data.train),
                  std::move(data.test),
                  std::move(views),
                  MakeLstmFactory(mc),
                  config,
                  /*default_lambda=*/1e-4};
}

Workload MakeFemnistWorkload(int num_clients, int local_steps,
                             double sample_ratio, uint64_t seed) {
  ImageProfile profile = FemnistLikeProfile();
  profile.num_writers = std::max(2 * num_clients, 100);
  Rng rng(seed * 1000211 + 41);
  SyntheticImageData data = GenerateImageData(
      profile, Scaled(1500, 400), Scaled(400, 200), &rng);
  ClientSplit split = NaturalPartition(data.train_writers,
                                       profile.num_writers, num_clients, &rng);
  std::vector<ClientView> views;
  for (const auto& idx : split.client_indices) views.push_back({idx, {}});

  FlConfig config;
  config.local_steps = local_steps;
  config.batch_size = 16;
  config.sample_ratio = sample_ratio;
  config.lr = 0.08;
  config.seed = seed;
  config.max_examples_per_pass = 192;

  return Workload{"femnist", "natural",       std::move(data.train),
                  std::move(data.test),       std::move(views),
                  MakeCnnFactory(CnnFor(profile)), config,
                  /*default_lambda=*/1e-3};
}

std::vector<std::string> AllMethodNames() {
  return {"FedAvg", "FedProx", "Scaffold", "q-FedAvg", "rFedAvg", "rFedAvg+"};
}

std::unique_ptr<FederatedAlgorithm> MakeAlgorithm(const std::string& name,
                                                  const Workload& workload,
                                                  uint64_t seed) {
  FlConfig config = workload.config;
  config.seed = seed;
  const Dataset* train = &workload.train;
  const bool is_text = workload.dataset == "sent140";
  if (name == "FedAvg") {
    return std::make_unique<FedAvg>(config, train, workload.views,
                                    workload.factory);
  }
  if (name == "FedProx") {
    // Paper: mu = 1.0 on images, 0.01 on Sent140.
    return std::make_unique<FedProx>(config, is_text ? 0.01 : 1.0, train,
                                     workload.views, workload.factory);
  }
  if (name == "Scaffold") {
    return std::make_unique<Scaffold>(config, train, workload.views,
                                      workload.factory);
  }
  if (name == "q-FedAvg") {
    // Paper: q = 1.0 on images, 1e-4 on Sent140.
    return std::make_unique<QFedAvg>(config, is_text ? 1e-4 : 1.0, train,
                                     workload.views, workload.factory);
  }
  RegularizerOptions reg;
  reg.lambda = workload.default_lambda;
  if (name == "rFedAvg") {
    return std::make_unique<RFedAvg>(config, reg, train, workload.views,
                                     workload.factory);
  }
  if (name == "rFedAvg+") {
    return std::make_unique<RFedAvgPlus>(config, reg, train, workload.views,
                                         workload.factory);
  }
  RFED_CHECK(false) << "unknown method " << name;
  return nullptr;
}

RunHistory RunMethod(const std::string& method, const Workload& workload,
                     int rounds, uint64_t seed, int eval_every) {
  auto algorithm = MakeAlgorithm(method, workload, seed);
  TrainerOptions options;
  options.eval_every = eval_every;
  options.eval_max_examples = 400;
  FederatedTrainer trainer(algorithm.get(), &workload.test, options);
  return trainer.Run(rounds);
}

std::string Cell(const std::vector<double>& accuracies_percent) {
  const MeanStd ms = ComputeMeanStd(accuracies_percent);
  return StrFormat("%5.2f +- %4.2f", ms.mean, ms.stddev);
}

}  // namespace rfed::bench

namespace rfed::bench {

void RunCurveSet(const std::string& setting_label, const Workload& workload,
                 int rounds, uint64_t seed, CsvWriter* csv) {
  for (const std::string& method : AllMethodNames()) {
    RunHistory history = RunMethod(method, workload, rounds, seed,
                                   /*eval_every=*/1);
    for (const RoundMetrics& r : history.rounds) {
      csv->WriteRow({setting_label, method, std::to_string(r.round),
                     StrFormat("%.4f", r.train_loss),
                     StrFormat("%.4f", r.test_accuracy)});
    }
    std::printf("  %-22s %-9s final=%5.2f%% best=%5.2f%%\n",
                setting_label.c_str(), method.c_str(),
                100.0 * history.FinalAccuracy(),
                100.0 * history.BestAccuracy());
    std::fflush(stdout);
  }
}

}  // namespace rfed::bench
