// Reproduces Figs. 4 and 5: accuracy and loss curves on the cifar
// profile (the hard task where the non-IID penalty and the regularizer's
// advantage are largest). Cross-device and cross-silo, similarity 0% and
// 10%, all six methods.

#include <cstdio>

#include "bench_common.h"

namespace rfed::bench {
namespace {

void Run() {
  const int rounds = Scaled(25);
  std::printf("\nFIG 4/5: CIFAR accuracy & loss curves (%d rounds)\n",
              rounds);
  CsvWriter csv(ResultDir() + "/fig4_5_cifar_curves.csv",
                {"setting", "method", "round", "train_loss",
                 "test_accuracy"});
  struct Setting {
    const char* label;
    Deployment deploy;
    double similarity;
  };
  const Setting settings[] = {
      {"cross-device sim0", CrossDevice(), 0.0},
      {"cross-device sim10", CrossDevice(), 0.1},
      {"cross-silo sim0", CrossSilo(), 0.0},
      {"cross-silo sim10", CrossSilo(), 0.1},
  };
  for (const Setting& s : settings) {
    Workload workload = MakeImageWorkload("cifar", s.deploy, s.similarity, 1);
    RunCurveSet(s.label, workload, rounds, /*seed=*/1, &csv);
  }
  std::printf("\nCSV: %s/fig4_5_cifar_curves.csv\n", ResultDir().c_str());
}

}  // namespace
}  // namespace rfed::bench

int main() {
  rfed::bench::Run();
  return 0;
}
