// Autograd-layer sweep: the same tiny federated workloads executed under
// each tape strategy — per-step graph rebuild (the pre-arena behavior),
// static-graph replay, and replay + gradient checkpointing — timing
// ms/round and reading the autograd.* gauges so the arena's two claims
// are measured, not asserted: replay cuts round time and allocations,
// checkpointing cuts tape_peak_bytes. Results land in
// BENCH_autograd.json and the headline rows are quoted in
// EXPERIMENTS.md; the strategies are bit-identical by contract
// (docs/AUTOGRAD.md), which the smoke gate re-proves on every CI run.
//
// Usage:
//   ./build/bench/bench_autograd                  # full sweep
//   ./build/bench/bench_autograd --out path.json  # custom output
//   ./build/bench/bench_autograd --smoke          # <2 s gate: static
//       on/off bit-identity plus the O(1) allocs-per-replayed-step
//       invariant, no JSON (the `bench_autograd_smoke` ctest target,
//       label "autograd")

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "data/partition.h"
#include "data/synthetic_images.h"
#include "data/synthetic_text.h"
#include "fl/fedavg.h"
#include "fl/trainer.h"
#include "nn/models.h"
#include "obs/metrics.h"
#include "tensor/buffer_pool.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace rfed {
namespace {

struct SweepCase {
  const char* model;       ///< "cnn" | "lstm"
  bool static_graph;
  bool checkpoint;
};

struct SweepResult {
  SweepCase spec;
  int rounds = 0;
  double ms_per_round = 0.0;
  double final_loss = 0.0;
  long tape_peak_bytes = 0;
  long allocs_per_step = 0;  ///< last recorded per-step delta
};

std::vector<ClientView> ViewsOf(const ClientSplit& split) {
  std::vector<ClientView> views;
  for (const auto& idx : split.client_indices) views.push_back({idx, {}});
  return views;
}

FlConfig BaseConfig(const SweepCase& spec) {
  FlConfig config;
  config.local_steps = 8;
  config.batch_size = 16;
  config.lr = 0.05;
  config.seed = 77;
  config.max_examples_per_pass = 128;
  config.autograd.static_graph = spec.static_graph;
  config.autograd.checkpoint = spec.checkpoint;
  if (std::strcmp(spec.model, "lstm") == 0) {
    config.lr = 0.01;
    config.optimizer = OptimizerKind::kRmsProp;
  }
  return config;
}

SweepResult RunCase(const SweepCase& spec, int rounds) {
  SweepResult result;
  result.spec = spec;
  result.rounds = rounds;
  BufferPool::ResetPeak();

  FlConfig config = BaseConfig(spec);
  std::unique_ptr<FederatedAlgorithm> algo;
  Rng rng(1234);
  std::unique_ptr<SyntheticImageData> image_data;
  std::unique_ptr<SyntheticTextData> text_data;
  const Dataset* test = nullptr;
  if (std::strcmp(spec.model, "cnn") == 0) {
    image_data = std::make_unique<SyntheticImageData>(
        GenerateImageData(MnistLikeProfile(), 640, 160, &rng));
    auto split = SimilarityPartition(image_data->train, 4, 0.5, &rng);
    CnnConfig mc;
    mc.conv1_channels = 4;
    mc.conv2_channels = 8;
    mc.feature_dim = 16;
    algo = std::make_unique<FedAvg>(config, &image_data->train, ViewsOf(split),
                                    MakeCnnFactory(mc));
    test = &image_data->test;
  } else {
    TextProfile profile = Sent140LikeProfile();
    profile.num_users = 20;
    text_data = std::make_unique<SyntheticTextData>(
        GenerateTextData(profile, 640, 160, &rng));
    auto split =
        NaturalPartition(text_data->train_users, profile.num_users, 4, &rng);
    LstmConfig mc;
    mc.vocab_size = profile.vocab_size;
    mc.embed_dim = 8;
    mc.hidden_dim = 16;
    mc.feature_dim = 16;
    algo = std::make_unique<FedAvg>(config, &text_data->train, ViewsOf(split),
                                    MakeLstmFactory(mc));
    test = &text_data->test;
  }

  TrainerOptions options;
  options.eval_max_examples = 0;  // time the training path only
  FederatedTrainer trainer(algo.get(), test, options);
  Stopwatch sw;
  RunHistory history = trainer.Run(rounds);
  const double total_ms = sw.ElapsedMillis();
  result.ms_per_round = total_ms / rounds;
  result.final_loss = history.rounds.back().train_loss;
  auto& registry = obs::MetricsRegistry::Get();
  result.tape_peak_bytes =
      static_cast<long>(registry.GetGauge("autograd.tape_peak_bytes")->value());
  result.allocs_per_step =
      static_cast<long>(registry.GetGauge("autograd.allocs_per_step")->value());
  return result;
}

void WriteJson(const std::string& path, const std::vector<SweepResult>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"autograd\",\n");
  std::fprintf(f,
               "  \"note\": \"identical federated workloads under each tape "
               "strategy; losses match bitwise across rows of the same model "
               "while ms_per_round, tape_peak_bytes and allocs_per_step "
               "differ\",\n");
  std::fprintf(f, "  \"cases\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepResult& r = rows[i];
    std::fprintf(
        f,
        "    {\"model\": \"%s\", \"static_graph\": %s, \"checkpoint\": %s, "
        "\"rounds\": %d, \"ms_per_round\": %.1f, \"final_loss\": %.6f, "
        "\"tape_peak_bytes\": %ld, \"allocs_per_step\": %ld}%s\n",
        r.spec.model, r.spec.static_graph ? "true" : "false",
        r.spec.checkpoint ? "true" : "false", r.rounds, r.ms_per_round,
        r.final_loss, r.tape_peak_bytes, r.allocs_per_step,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int Smoke() {
  // Gate 1: static replay == per-step rebuild, bit for bit.
  const SweepResult replayed = RunCase({"cnn", true, false}, 2);
  const SweepResult rebuilt = RunCase({"cnn", false, false}, 2);
  if (replayed.final_loss != rebuilt.final_loss) {
    std::fprintf(stderr, "smoke FAILED: static %.17g != rebuilt %.17g\n",
                 replayed.final_loss, rebuilt.final_loss);
    return 1;
  }
  // Gate 2: replayed steps allocate nothing after warm-up.
  if (replayed.allocs_per_step != 0) {
    std::fprintf(stderr,
                 "smoke FAILED: %ld allocs on a warmed-up replayed step\n",
                 replayed.allocs_per_step);
    return 1;
  }
  std::printf("smoke OK: static == rebuilt bitwise, 0 allocs per replayed "
              "step\n");
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const std::string out =
      flags.GetString("out", smoke ? "" : "BENCH_autograd.json");
  if (smoke) return Smoke();

  const SweepCase cases[] = {
      {"cnn", false, false}, {"cnn", true, false},
      {"lstm", false, false}, {"lstm", true, false}, {"lstm", true, true},
  };
  std::vector<SweepResult> rows;
  for (const SweepCase& spec : cases) {
    const SweepResult r = RunCase(spec, /*rounds=*/4);
    rows.push_back(r);
    std::printf(
        "%-5s static=%d ckpt=%d  %7.1f ms/round  loss=%.6f  "
        "tape_peak=%ldB  allocs/step=%ld\n",
        r.spec.model, r.spec.static_graph ? 1 : 0, r.spec.checkpoint ? 1 : 0,
        r.ms_per_round, r.final_loss, r.tape_peak_bytes, r.allocs_per_step);
  }
  if (!out.empty()) WriteJson(out, rows);
  return 0;
}

}  // namespace
}  // namespace rfed

int main(int argc, char** argv) { return rfed::Main(argc, argv); }
