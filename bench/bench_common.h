#ifndef RFED_BENCH_BENCH_COMMON_H_
#define RFED_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/rfedavg.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "data/synthetic_text.h"
#include "fl/algorithm.h"
#include "fl/metrics.h"
#include "fl/trainer.h"
#include "util/csv_writer.h"

namespace rfed::bench {

/// Global scale knob: RFED_BENCH_SCALE (default 1.0) multiplies round
/// counts and dataset sizes. 1.0 finishes the whole suite in tens of
/// minutes on one core; >= 2 approaches the paper's budgets.
double BenchScale();

/// Rounds/examples scaled by BenchScale() (at least `min_value`).
int Scaled(int base, int min_value = 1);

/// Directory all bench CSVs are written to (bench_results/, created on
/// first use).
std::string ResultDir();

/// The two deployment settings of Sec. VI-A, scaled from the paper's
/// N=20 (cross-silo) and N=500 (cross-device).
struct Deployment {
  std::string name;
  int num_clients;
  int local_steps;
  double sample_ratio;
  int batch_size;
};
Deployment CrossSilo();
Deployment CrossDevice();

/// A fully prepared benchmark workload: data, split and model factory.
struct Workload {
  std::string dataset;   // "mnist", "cifar", "sent140", "femnist"
  std::string setting;   // e.g. "sim0", "sim10", "sim100", "natural", "iid"
  Dataset train;
  Dataset test;
  std::vector<ClientView> views;
  ModelFactory factory;
  FlConfig config;
  double default_lambda;  // the paper's per-dataset λ
};

/// Builds an image workload (mnist/cifar profile) under a deployment with
/// the similarity-s partition. similarity: 0, 0.1 or 1.0.
Workload MakeImageWorkload(const std::string& profile_name,
                           const Deployment& deploy, double similarity,
                           uint64_t seed);

/// Builds the sent140 LSTM workload. natural == true keeps the per-user
/// split; false shuffles users away (the paper's IID setting).
Workload MakeTextWorkload(const Deployment& deploy, bool natural,
                          uint64_t seed);

/// Builds the femnist workload with its natural writer partition.
Workload MakeFemnistWorkload(int num_clients, int local_steps,
                             double sample_ratio, uint64_t seed);

/// The six compared methods (paper Sec. VI-A). Hyperparameters follow the
/// paper: FedProx mu, Scaffold eta_g = 1, q-FedAvg q, rFedAvg λ.
std::unique_ptr<FederatedAlgorithm> MakeAlgorithm(const std::string& name,
                                                  const Workload& workload,
                                                  uint64_t seed);
std::vector<std::string> AllMethodNames();

/// Runs one algorithm on a workload for `rounds` rounds; evaluation
/// subsampling/cadence tuned for bench speed.
RunHistory RunMethod(const std::string& method, const Workload& workload,
                     int rounds, uint64_t seed, int eval_every = 1);

/// Pretty-prints a "mean ± std" cell.
std::string Cell(const std::vector<double>& accuracies_percent);

/// Runs all six methods on one workload, appends per-round
/// (setting, method, round, train_loss, test_accuracy) rows to *csv and
/// prints a per-method summary line. Shared by the curve figures
/// (Figs. 2-8).
void RunCurveSet(const std::string& setting_label, const Workload& workload,
                 int rounds, uint64_t seed, CsvWriter* csv);

}  // namespace rfed::bench

#endif  // RFED_BENCH_BENCH_COMMON_H_
