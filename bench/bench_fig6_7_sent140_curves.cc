// Reproduces Figs. 6 and 7: accuracy and loss curves on the sent140
// profile (2-layer LSTM + FC trained with RMSProp) — cross-device and
// cross-silo, natural non-IID (per-user) and IID shuffles.

#include <cstdio>

#include "bench_common.h"

namespace rfed::bench {
namespace {

void Run() {
  const int rounds = Scaled(8);
  std::printf("\nFIG 6/7: Sent140 accuracy & loss curves (%d rounds)\n",
              rounds);
  CsvWriter csv(ResultDir() + "/fig6_7_sent140_curves.csv",
                {"setting", "method", "round", "train_loss",
                 "test_accuracy"});
  struct Setting {
    const char* label;
    Deployment deploy;
    bool natural;
  };
  const Setting settings[] = {
      {"cross-device noniid", CrossDevice(), true},
      {"cross-device iid", CrossDevice(), false},
      {"cross-silo noniid", CrossSilo(), true},
      {"cross-silo iid", CrossSilo(), false},
  };
  for (const Setting& s : settings) {
    Workload workload = MakeTextWorkload(s.deploy, s.natural, 1);
    RunCurveSet(s.label, workload, rounds, /*seed=*/1, &csv);
  }
  std::printf("\nCSV: %s/fig6_7_sent140_curves.csv\n", ResultDir().c_str());
}

}  // namespace
}  // namespace rfed::bench

int main() {
  rfed::bench::Run();
  return 0;
}
