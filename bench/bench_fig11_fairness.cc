// Reproduces Fig. 11: fairness evaluation. Trains FedAvg and rFedAvg+ on
// the mnist and cifar profiles (cross-silo, similarity 0%), then
// evaluates the final global model on every client's private test slice
// and reports the distribution — the paper's claim is that the *worst*
// clients do better under rFedAvg+.

#include <cstdio>

#include "analysis/stats.h"
#include "bench_common.h"
#include "fl/trainer.h"
#include "util/string_util.h"

namespace rfed::bench {
namespace {

void Run() {
  CsvWriter csv(ResultDir() + "/fig11_fairness.csv",
                {"dataset", "method", "client", "accuracy"});
  const Deployment deploy = CrossSilo();
  std::printf("\nFIG 11: per-client accuracy (cross-silo, sim 0%%)\n");
  struct Task {
    const char* dataset;
    int rounds;
  };
  const Task tasks[] = {{"mnist", Scaled(15)}, {"cifar", Scaled(30)}};
  for (const Task& task : tasks) {
    Workload workload = MakeImageWorkload(task.dataset, deploy, 0.0, 1);
    for (const std::string& method : {std::string("FedAvg"),
                                      std::string("rFedAvg+")}) {
      auto algorithm = MakeAlgorithm(method, workload, /*seed=*/1);
      TrainerOptions options;
      options.eval_every = task.rounds;
      options.eval_max_examples = 400;
      FederatedTrainer trainer(algorithm.get(), &workload.test, options);
      trainer.Run(task.rounds);
      const std::vector<double> per_client = DropNan(
          trainer.PerClientAccuracy(&workload.test, workload.views));
      for (size_t k = 0; k < per_client.size(); ++k) {
        csv.WriteRow({task.dataset, method, std::to_string(k),
                      FormatFixed(100.0 * per_client[k], 2)});
      }
      std::printf(
          "  %-6s %-9s mean=%5.2f%%  median=%5.2f%%  worst=%5.2f%%  "
          "worst3=%5.2f%%\n",
          task.dataset, method.c_str(),
          100.0 * ComputeMeanStd(per_client).mean,
          100.0 * Quantile(per_client, 0.5),
          100.0 * MinOf(per_client),
          100.0 * WorstKMean(per_client, 3));
    }
  }
  std::printf("  (expected shape: rFedAvg+ lifts the worst clients)\n");
  std::printf("\nCSV: %s/fig11_fairness.csv\n", ResultDir().c_str());
}

}  // namespace
}  // namespace rfed::bench

int main() {
  rfed::bench::Run();
  return 0;
}
