// Reproduces Fig. 9: the parameter study on the cifar profile with
// totally non-IID data (similarity 0%):
//   (a) impact of the regularizer weight λ,
//   (b) impact of the number of clients N (fixed SR),
//   (c) impact of the number of local steps E (same round budget),
//   (d) impact of the sample ratio SR (fixed N).

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

namespace rfed::bench {
namespace {

double RunOnce(const Workload& workload, int rounds) {
  return 100.0 *
         RunMethod("rFedAvg+", workload, rounds, /*seed=*/1, /*eval_every=*/4)
             .FinalAccuracy();
}

void Run() {
  const int rounds = Scaled(20);
  CsvWriter csv(ResultDir() + "/fig9_params.csv",
                {"study", "value", "accuracy"});
  std::printf("\nFIG 9: parameter study on cifar, similarity 0%% "
              "(%d rounds, rFedAvg+)\n", rounds);

  // (a) λ sweep — FedAvg (λ=0) is the reference line in the paper's plot.
  {
    Deployment deploy = CrossDevice();
    Workload workload = MakeImageWorkload("cifar", deploy, 0.0, 1);
    std::printf(" (a) impact of lambda\n");
    const double fedavg = 100.0 *
        RunMethod("FedAvg", workload, rounds, 1, 4).FinalAccuracy();
    std::printf("     FedAvg (reference)   acc=%5.2f%%\n", fedavg);
    csv.WriteRow({"lambda", "0", FormatFixed(fedavg, 2)});
    for (double lambda : {1e-4, 1e-3, 1e-2, 5e-2}) {
      Workload w = MakeImageWorkload("cifar", deploy, 0.0, 1);
      w.default_lambda = lambda;
      const double acc = RunOnce(w, rounds);
      std::printf("     lambda=%-8g acc=%5.2f%%\n", lambda, acc);
      csv.WriteRow({"lambda", StrFormat("%g", lambda), FormatFixed(acc, 2)});
    }
  }

  // (b) N sweep with fixed SR=0.2.
  {
    std::printf(" (b) impact of N (SR=0.2)\n");
    for (int n : {10, 20, 50}) {
      Deployment deploy = CrossDevice();
      deploy.num_clients = n;
      Workload workload = MakeImageWorkload("cifar", deploy, 0.0, 1);
      const double acc = RunOnce(workload, rounds);
      std::printf("     N=%-4d acc=%5.2f%%\n", n, acc);
      csv.WriteRow({"N", std::to_string(n), FormatFixed(acc, 2)});
    }
  }

  // (c) E sweep with the same number of communication rounds.
  {
    std::printf(" (c) impact of E (same %d rounds)\n", rounds);
    for (int e : {1, 2, 5, 10}) {
      Deployment deploy = CrossDevice();
      deploy.local_steps = e;
      Workload workload = MakeImageWorkload("cifar", deploy, 0.0, 1);
      const double acc = RunOnce(workload, rounds);
      std::printf("     E=%-4d acc=%5.2f%%\n", e, acc);
      csv.WriteRow({"E", std::to_string(e), FormatFixed(acc, 2)});
    }
  }

  // (d) SR sweep with fixed N.
  {
    std::printf(" (d) impact of SR (N=%d)\n", CrossDevice().num_clients);
    for (double sr : {0.1, 0.2, 0.5, 1.0}) {
      Deployment deploy = CrossDevice();
      deploy.sample_ratio = sr;
      Workload workload = MakeImageWorkload("cifar", deploy, 0.0, 1);
      const double acc = RunOnce(workload, rounds);
      std::printf("     SR=%-4g acc=%5.2f%%\n", sr, acc);
      csv.WriteRow({"SR", StrFormat("%g", sr), FormatFixed(acc, 2)});
    }
  }

  std::printf("\nCSV: %s/fig9_params.csv\n", ResultDir().c_str());
}

}  // namespace
}  // namespace rfed::bench

int main() {
  rfed::bench::Run();
  return 0;
}
