// Google-benchmark microbenchmarks of the numeric kernels the simulator
// spends its time in: GEMM, im2col convolution, LSTM step, the MMD
// regularizer and the δ-map computation. Useful for tracking kernel
// regressions independently of the end-to-end experiment binaries.

#include <benchmark/benchmark.h>

#include "core/mmd.h"
#include "nn/lstm.h"
#include "nn/models.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace rfed {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Normal(Shape{n, n}, 0, 1, &rng);
  Tensor b = Tensor::Normal(Shape{n, n}, 0, 1, &rng);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv2dForward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Conv2dSpec spec{.in_channels = 3, .out_channels = 8, .kernel = 5,
                  .stride = 1, .pad = 2};
  Rng rng(2);
  Tensor x = Tensor::Normal(Shape{batch, 3, 12, 12}, 0, 1, &rng);
  Tensor w = Tensor::Normal(Shape{8, 75}, 0, 0.1f, &rng);
  Tensor b(Shape{8});
  for (auto _ : state) {
    Tensor y = Conv2dForward(x, w, b, spec);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(32);

void BM_Conv2dBackward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Conv2dSpec spec{.in_channels = 3, .out_channels = 8, .kernel = 5,
                  .stride = 1, .pad = 2};
  Rng rng(3);
  Tensor x = Tensor::Normal(Shape{batch, 3, 12, 12}, 0, 1, &rng);
  Tensor w = Tensor::Normal(Shape{8, 75}, 0, 0.1f, &rng);
  Tensor b(Shape{8});
  Tensor y = Conv2dForward(x, w, b, spec);
  Tensor grad = Tensor::Full(y.shape(), 1.0f);
  for (auto _ : state) {
    Tensor dx, dw, db;
    Conv2dBackward(grad, x, w, spec, &dx, &dw, &db);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(32);

void BM_LstmStep(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(4);
  LstmLayer lstm(16, 32, &rng);
  Variable x(Tensor::Normal(Shape{batch, 16}, 0, 1, &rng));
  auto init = lstm.InitialState(batch);
  for (auto _ : state) {
    auto next = lstm.Step(x, init);
    benchmark::DoNotOptimize(next.h.value().data());
  }
}
BENCHMARK(BM_LstmStep)->Arg(10)->Arg(32);

void BM_PairwiseMmdRegularizer(benchmark::State& state) {
  const int num_targets = static_cast<int>(state.range(0));
  Rng rng(5);
  Tensor features = Tensor::Normal(Shape{32, 64}, 0, 1, &rng);
  std::vector<Tensor> targets;
  for (int j = 0; j < num_targets; ++j) {
    targets.push_back(Tensor::Normal(Shape{64}, 0, 1, &rng));
  }
  for (auto _ : state) {
    Variable f(features, true);
    Variable r = PairwiseMmdRegularizer(f, targets);
    r.Backward();
    benchmark::DoNotOptimize(f.grad().data());
  }
}
// The rFedAvg-vs-rFedAvg+ per-step regularizer cost gap: N-1 targets vs 1.
BENCHMARK(BM_PairwiseMmdRegularizer)->Arg(1)->Arg(19)->Arg(99);

void BM_CnnForwardBackward(benchmark::State& state) {
  Rng rng(6);
  CnnConfig config;
  config.in_channels = 3;
  CnnModel model(config, &rng);
  Batch batch;
  batch.images = Tensor::Normal(Shape{24, 3, 12, 12}, 0, 1, &rng);
  for (int i = 0; i < 24; ++i) batch.labels.push_back(i % 10);
  for (auto _ : state) {
    ModelOutput out = model.Forward(batch);
    Variable loss = ag::SoftmaxCrossEntropy(out.logits, batch.labels);
    model.ZeroGrad();
    loss.Backward();
    benchmark::DoNotOptimize(loss.value().ToScalar());
  }
}
BENCHMARK(BM_CnnForwardBackward);

}  // namespace
}  // namespace rfed

BENCHMARK_MAIN();
