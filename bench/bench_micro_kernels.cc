// Kernel-layer benchmark sweep: times the SIMD blocked/threaded kernels
// (tensor/kernels.h) against the retained naive references (rfed::ref)
// on the GEMM and convolution shapes the paper's models actually hit,
// and writes the table as BENCH_kernels.json (GFLOP/s plus
// speedup-vs-seed per shape and thread count; see docs/KERNELS.md for
// how to read it). Every case first asserts the optimized kernel is
// bit-identical to its reference before any timing. Each case is also
// timed once with the per-shape autotuner live (single thread, enough
// warmup calls that every shape commits its winning tile before the
// measured windows), and the committed tile is recorded.
//
// Caveat for absolute speedups: the reference baseline is the *fused*
// canonical reference (std::fmaf per step), which compiles to a libm
// call in this TU — it is several times slower than the pre-fusion
// naive loops, so "speedup_vs_seed" overstates the win over historical
// baselines. Compare absolute "gflops" across BENCH_kernels.json
// revisions instead; EXPERIMENTS.md tracks those numbers.
//
// Usage:
//   ./build/bench/bench_micro_kernels                  # full sweep
//   ./build/bench/bench_micro_kernels --out path.json  # custom output
//   ./build/bench/bench_micro_kernels --smoke          # <2 s correctness
//       pass over threads {1,2,4}, tiny timings, no JSON (the
//       `bench_smoke` ctest target)
//   --min_ms N    measurement window per timing (default 300; smoke 5)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "tensor/autotune.h"
#include "tensor/kernels.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace rfed {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4};

/// Deterministic non-degenerate fill without exact zeros, so the
/// references' zero-skip fast path never fires and the comparison is
/// fair.
std::vector<float> Fill(int64_t n, float scale, float phase) {
  std::vector<float> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    v[static_cast<size_t>(i)] =
        scale * (0.1f + std::sin(0.7f * static_cast<float>(i) + phase));
  }
  return v;
}

/// Best-of-3 mean per-call milliseconds: one warmup call, then three
/// independent measurement windows of `min_ms` each; the fastest window
/// wins. Taking the minimum suppresses the frequency-scaling and
/// scheduling noise a shared single-core box produces.
template <typename F>
double TimeMs(const F& fn, double min_ms) {
  fn();
  double best = 0.0;
  for (int window = 0; window < 3; ++window) {
    int iters = 0;
    Stopwatch sw;
    double elapsed = 0.0;
    do {
      fn();
      ++iters;
      elapsed = sw.ElapsedMillis();
    } while (elapsed < min_ms);
    const double per_iter = elapsed / iters;
    if (window == 0 || per_iter < best) best = per_iter;
  }
  return best;
}

enum class Kind { kGemmAdd, kGemmTransA, kGemmTransB, kConvFwd, kConvBwd };

const char* KindName(Kind k) {
  switch (k) {
    case Kind::kGemmAdd: return "gemm_add";
    case Kind::kGemmTransA: return "gemm_transA_add";
    case Kind::kGemmTransB: return "gemm_transB_assign";
    case Kind::kConvFwd: return "conv2d_forward";
    case Kind::kConvBwd: return "conv2d_backward";
  }
  return "?";
}

struct Case {
  const char* name;
  Kind kind;
  // GEMM dims (kind-dependent roles, see Run below); unused for conv.
  int64_t m = 0, k = 0, n = 0;
  ConvKernelShape conv;  // conv kinds only
  bool smoke = false;    // included in the --smoke subset
  bool acceptance = false;  // the EXPERIMENTS.md >= 3x shape
};

/// The sweep. Miniature shapes mirror the repo's 12x12 synthetic
/// profiles (CnnConfig defaults: conv1 8ch, conv2 16ch, k=5 same-pad,
/// LSTM 16->32); paper-scale shapes use the source paper's real CIFAR-10
/// dimensions (32x32x3, batch 32, 64-channel first conv).
std::vector<Case> Sweep() {
  std::vector<Case> cases;
  // GEMMs: {m, k, n} as C[m,n] += A[m,k] B[k,n].
  cases.push_back({"fc1_mnist", Kind::kGemmAdd, 32, 144, 64, {}, true});
  cases.push_back({"lstm_gates", Kind::kGemmAdd, 32, 48, 128, {}});
  cases.push_back({"fc_cifar_paper", Kind::kGemmAdd, 32, 1600, 384, {}});
  // The per-batch im2col product of the paper-scale CIFAR first conv:
  // weights [64, 75] x columns [75, 32*32*32]. The acceptance shape.
  cases.push_back(
      {"cifar_conv1_gemm", Kind::kGemmAdd, 64, 75, 32768, {}, false, true});
  // Backward shapes of that conv, one image: dcols[k,n] += W^T[m,k] go[m,n]
  // and dW[m,k] = go[m,n] cols[k,n]^T.
  cases.push_back({"conv_dx_gemm", Kind::kGemmTransA, 64, 75, 1024, {}, true});
  cases.push_back({"conv_dw_gemm", Kind::kGemmTransB, 64, 1024, 75, {}, true});
  // End-to-end convolutions (batch, cin, h, w, cout, kernel, stride, pad).
  cases.push_back({"conv1_mnist_fwd", Kind::kConvFwd, 0, 0, 0,
                   {32, 1, 12, 12, 8, 5, 1, 2}, true});
  cases.push_back({"conv2_mnist_fwd", Kind::kConvFwd, 0, 0, 0,
                   {32, 8, 6, 6, 16, 5, 1, 2}});
  cases.push_back({"conv1_mnist_bwd", Kind::kConvBwd, 0, 0, 0,
                   {32, 1, 12, 12, 8, 5, 1, 2}, true});
  cases.push_back({"conv1_cifar_fwd", Kind::kConvFwd, 0, 0, 0,
                   {32, 3, 32, 32, 64, 5, 1, 2}});
  cases.push_back({"conv1_cifar_bwd", Kind::kConvBwd, 0, 0, 0,
                   {32, 3, 32, 32, 64, 5, 1, 2}});
  return cases;
}

int64_t CaseFlops(const Case& c) {
  switch (c.kind) {
    case Kind::kGemmAdd:
    case Kind::kGemmTransA:
      return 2 * c.m * c.k * c.n;
    case Kind::kGemmTransB:
      return 2 * c.m * c.k * c.n;  // m rows x k dots of length n
    case Kind::kConvFwd:
      return 2 * c.conv.batch * c.conv.out_channels * c.conv.Patch() *
             c.conv.OutArea();
    case Kind::kConvBwd:  // dx GEMM + dw GEMM (db is negligible)
      return 4 * c.conv.batch * c.conv.out_channels * c.conv.Patch() *
             c.conv.OutArea();
  }
  return 0;
}

/// One benchmark case's buffers plus ref/opt runners over them.
struct Workbench {
  std::vector<float> a, b, bias, out_ref, out_opt, dx, dw, db;

  explicit Workbench(const Case& c) {
    switch (c.kind) {
      case Kind::kGemmAdd:
      case Kind::kGemmTransA:
        // GemmTransAAdd reads A as [m,k] and B as [m,n] -> C[k,n]; sizes
        // below cover both layouts.
        a = Fill(c.m * c.k, 1.0f, 0.3f);
        b = Fill(c.kind == Kind::kGemmAdd ? c.k * c.n : c.m * c.n, 0.5f, 1.1f);
        out_ref.assign(static_cast<size_t>(
                           c.kind == Kind::kGemmAdd ? c.m * c.n : c.k * c.n),
                       0.0f);
        break;
      case Kind::kGemmTransB:
        a = Fill(c.m * c.n, 1.0f, 0.3f);
        b = Fill(c.k * c.n, 0.5f, 1.1f);
        out_ref.assign(static_cast<size_t>(c.m * c.k), 0.0f);
        break;
      case Kind::kConvFwd:
      case Kind::kConvBwd: {
        const ConvKernelShape& s = c.conv;
        a = Fill(s.batch * s.in_channels * s.height * s.width, 1.0f, 0.3f);
        b = Fill(s.out_channels * s.Patch(), 0.2f, 1.1f);
        bias = Fill(s.out_channels, 0.1f, 2.2f);
        out_ref.assign(
            static_cast<size_t>(s.batch * s.out_channels * s.OutArea()), 0.0f);
        if (c.kind == Kind::kConvBwd) {
          // out_ref doubles as grad_out for the backward case: nonzero
          // so the reference's zero-skip path never fires.
          out_ref = Fill(s.batch * s.out_channels * s.OutArea(), 0.4f, 1.7f);
          dx.assign(a.size(), 0.0f);
          dw.assign(b.size(), 0.0f);
          db.assign(bias.size(), 0.0f);
        }
        break;
      }
    }
    out_opt = out_ref;
  }

  /// Runs the case once; `optimized` picks the blocked vs ref kernel.
  /// Accumulating kinds re-run on the same output (fine for timing: the
  /// float work is identical each pass); bitwise comparison below resets
  /// the buffers itself.
  void Run(const Case& c, bool optimized) {
    float* out = optimized ? out_opt.data() : out_ref.data();
    switch (c.kind) {
      case Kind::kGemmAdd:
        (optimized ? GemmAdd : ref::GemmAdd)(a.data(), b.data(), c.m, c.k, c.n,
                                             out);
        break;
      case Kind::kGemmTransA:
        (optimized ? GemmTransAAdd : ref::GemmTransAAdd)(a.data(), b.data(),
                                                         c.m, c.k, c.n, out);
        break;
      case Kind::kGemmTransB:
        (optimized ? GemmTransBAssign : ref::GemmTransBAssign)(
            a.data(), b.data(), c.m, c.n, c.k, out);
        break;
      case Kind::kConvFwd:
        std::memset(out, 0, out_ref.size() * sizeof(float));
        (optimized ? Conv2dForwardKernel : ref::Conv2dForwardKernel)(
            a.data(), b.data(), bias.data(), c.conv, out);
        break;
      case Kind::kConvBwd:
        std::memset(dx.data(), 0, dx.size() * sizeof(float));
        std::memset(dw.data(), 0, dw.size() * sizeof(float));
        std::memset(db.data(), 0, db.size() * sizeof(float));
        (optimized ? Conv2dBackwardKernel : ref::Conv2dBackwardKernel)(
            out_ref.data(), a.data(), b.data(), c.conv, dx.data(), dw.data(),
            db.data());
        break;
    }
  }

  /// Bit-identity check: runs ref then opt from zeroed outputs and
  /// memcmps. ConvBwd compares dx/dw/db via two sequential Run passes
  /// (Run zeroes them itself), snapshotting between.
  bool Verify(const Case& c) {
    if (c.kind == Kind::kConvBwd) {
      Run(c, /*optimized=*/false);
      std::vector<float> rdx = dx, rdw = dw, rdb = db;
      Run(c, /*optimized=*/true);
      return rdx == dx && rdw == dw && rdb == db;
    }
    std::fill(out_ref.begin(), out_ref.end(), 0.0f);
    std::fill(out_opt.begin(), out_opt.end(), 0.0f);
    Run(c, /*optimized=*/false);
    Run(c, /*optimized=*/true);
    return std::memcmp(out_ref.data(), out_opt.data(),
                       out_ref.size() * sizeof(float)) == 0;
  }
};

struct Timing {
  int threads;
  double ms;
  double gflops;
  double speedup;
};

struct Result {
  Case c;
  double ref_ms = 0.0;
  double ref_gflops = 0.0;
  std::vector<Timing> opt;
  // Single-thread timing with the autotuner's committed pick live, plus
  // that pick when the case maps to one tuned (op, shape) key. Conv
  // cases tune their inner per-image GEMMs, whose keys are not the
  // case's own shape, so they record the timing but no tile.
  Timing tuned{};
  bool tuned_tile_known = false;
  TileConfig tuned_tile;
};

void SetThreads(int threads) {
  KernelOptions o;
  o.threads = threads;
  SetKernelOptions(o);
}

void WriteJson(const std::string& path, const std::vector<Result>& results,
               double min_ms) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"kernels\",\n");
  std::fprintf(f, "  \"baseline\": \"rfed::ref (canonical fused references)\",\n");
  std::fprintf(f,
               "  \"baseline_note\": \"the fused ref (std::fmaf per step) is "
               "several times slower than the pre-fusion naive loops, so "
               "speedup_vs_seed overstates historical wins; compare absolute "
               "gflops across revisions\",\n");
  std::fprintf(f, "  \"isa\": \"%s\",\n", KernelIsaName(ActiveKernelIsa()));
  std::fprintf(f, "  \"host_hw_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"min_ms_per_timing\": %.0f,\n", min_ms);
  std::fprintf(f, "  \"cases\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f, "    {\n      \"name\": \"%s\",\n", r.c.name);
    std::fprintf(f, "      \"kind\": \"%s\",\n", KindName(r.c.kind));
    if (r.c.kind == Kind::kConvFwd || r.c.kind == Kind::kConvBwd) {
      const ConvKernelShape& s = r.c.conv;
      std::fprintf(f,
                   "      \"shape\": {\"batch\": %lld, \"cin\": %lld, \"h\": "
                   "%lld, \"w\": %lld, \"cout\": %lld, \"kernel\": %lld, "
                   "\"stride\": %lld, \"pad\": %lld},\n",
                   static_cast<long long>(s.batch),
                   static_cast<long long>(s.in_channels),
                   static_cast<long long>(s.height),
                   static_cast<long long>(s.width),
                   static_cast<long long>(s.out_channels),
                   static_cast<long long>(s.kernel),
                   static_cast<long long>(s.stride),
                   static_cast<long long>(s.pad));
    } else {
      std::fprintf(f, "      \"shape\": {\"m\": %lld, \"k\": %lld, \"n\": %lld},\n",
                   static_cast<long long>(r.c.m), static_cast<long long>(r.c.k),
                   static_cast<long long>(r.c.n));
    }
    std::fprintf(f, "      \"flops\": %lld,\n",
                 static_cast<long long>(CaseFlops(r.c)));
    std::fprintf(f, "      \"ref_ms\": %.4f,\n      \"ref_gflops\": %.3f,\n",
                 r.ref_ms, r.ref_gflops);
    std::fprintf(f, "      \"acceptance_shape\": %s,\n",
                 r.c.acceptance ? "true" : "false");
    std::fprintf(f, "      \"opt\": [\n");
    for (size_t t = 0; t < r.opt.size(); ++t) {
      const Timing& ot = r.opt[t];
      std::fprintf(f,
                   "        {\"threads\": %d, \"ms\": %.4f, \"gflops\": %.3f, "
                   "\"speedup_vs_seed\": %.3f}%s\n",
                   ot.threads, ot.ms, ot.gflops, ot.speedup,
                   t + 1 < r.opt.size() ? "," : "");
    }
    std::fprintf(f, "      ],\n");
    std::fprintf(f,
                 "      \"autotuned\": {\"threads\": 1, \"ms\": %.4f, "
                 "\"gflops\": %.3f, \"speedup_vs_seed\": %.3f, \"tile\": ",
                 r.tuned.ms, r.tuned.gflops, r.tuned.speedup);
    if (r.tuned_tile_known) {
      std::fprintf(f, "{\"block_m\": %d, \"block_k\": %d, \"block_n\": %d}}\n",
                   r.tuned_tile.block_m, r.tuned_tile.block_k,
                   r.tuned_tile.block_n);
    } else {
      std::fprintf(f, "null}\n");
    }
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const double min_ms = flags.GetDouble("min_ms", smoke ? 5.0 : 300.0);
  const std::string out = flags.GetString("out", smoke ? "" : "BENCH_kernels.json");

  std::vector<Result> results;
  int failures = 0;
  for (const Case& c : Sweep()) {
    if (smoke && !c.smoke) continue;
    Workbench wb(c);
    // Correctness gate: the optimized kernel must be bit-identical to
    // the seed reference at every thread count before it is timed.
    for (int threads : kThreadCounts) {
      SetThreads(threads);
      if (!wb.Verify(c)) {
        std::fprintf(stderr, "FAIL: %s not bit-identical at threads=%d\n",
                     c.name, threads);
        ++failures;
      }
    }
    Result r;
    r.c = c;
    SetThreads(1);
    r.ref_ms = TimeMs([&] { wb.Run(c, false); }, min_ms);
    const double flops = static_cast<double>(CaseFlops(c));
    r.ref_gflops = flops / (r.ref_ms * 1e6);
    for (int threads : kThreadCounts) {
      SetThreads(threads);
      Timing t;
      t.threads = threads;
      t.ms = TimeMs([&] { wb.Run(c, true); }, min_ms);
      t.gflops = flops / (t.ms * 1e6);
      t.speedup = r.ref_ms / t.ms;
      r.opt.push_back(t);
    }
    // Autotuned single-thread timing: fresh tuner, one sample per
    // candidate, and enough warmup calls that every (op, shape) this
    // case touches commits before the measured windows (pure GEMM cases
    // touch one key; conv cases commit during their first call, which
    // runs a whole batch of identically-shaped inner GEMMs).
    {
      SetThreads(1);
      AutotuneConfig tune;
      tune.enabled = true;
      tune.samples_per_candidate = 1;
      SetAutotuneConfig(tune);
      ResetAutotuneForTest();
      const size_t warmups =
          2 + AutotuneCandidates(AutotuneOp::kGemmAdd).size() +
          AutotuneCandidates(AutotuneOp::kGemmTransB).size();
      for (size_t i = 0; i < warmups; ++i) wb.Run(c, true);
      r.tuned.threads = 1;
      r.tuned.ms = TimeMs([&] { wb.Run(c, true); }, min_ms);
      r.tuned.gflops = flops / (r.tuned.ms * 1e6);
      r.tuned.speedup = r.ref_ms / r.tuned.ms;
      // Read the committed pick back for the single-key GEMM cases.
      const char* isa = KernelIsaName(ActiveKernelIsa());
      AutotuneTrial trial = 1;
      if (c.kind == Kind::kGemmAdd) {
        r.tuned_tile =
            AutotunePick(AutotuneOp::kGemmAdd, isa, c.m, c.k, c.n, &trial);
      } else if (c.kind == Kind::kGemmTransA) {
        // TransA transposes then runs GemmAdd on (k, m, n).
        r.tuned_tile =
            AutotunePick(AutotuneOp::kGemmAdd, isa, c.k, c.m, c.n, &trial);
      } else if (c.kind == Kind::kGemmTransB) {
        r.tuned_tile =
            AutotunePick(AutotuneOp::kGemmTransB, isa, c.m, c.n, c.k, &trial);
      }
      r.tuned_tile_known =
          c.kind != Kind::kConvFwd && c.kind != Kind::kConvBwd && trial == 0;
      SetAutotuneConfig(AutotuneConfig{});
      ResetAutotuneForTest();
    }
    std::printf("%-18s %-18s ref %8.3f ms (%6.2f GF/s)", c.name,
                KindName(c.kind), r.ref_ms, r.ref_gflops);
    for (const Timing& t : r.opt) {
      std::printf("  t%d %8.3f ms (%5.2fx)", t.threads, t.ms, t.speedup);
    }
    std::printf("  tuned %8.3f ms (%6.2f GF/s)", r.tuned.ms, r.tuned.gflops);
    std::printf("%s\n", c.acceptance ? "  [acceptance]" : "");
    results.push_back(std::move(r));
  }
  SetKernelOptions(KernelOptions{});

  if (!out.empty()) WriteJson(out, results, min_ms);
  if (failures > 0) return 1;
  if (smoke) {
    std::printf("smoke OK: all cases bit-identical across threads {1,2,4}\n");
  }
  return 0;
}

}  // namespace
}  // namespace rfed

int main(int argc, char** argv) { return rfed::Main(argc, argv); }
