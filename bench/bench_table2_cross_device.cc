// Reproduces Table II: test accuracy in the cross-device setting
// (paper: N=500, E=10, SR=0.2; scaled to N=50) — same matrix as Table I.

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "util/csv_writer.h"
#include "util/string_util.h"

namespace rfed::bench {
namespace {

struct Column {
  std::string dataset;
  std::string setting_label;
  double similarity;
  bool natural;
  int rounds;
};

void Run() {
  const Deployment deploy = CrossDevice();
  const std::vector<Column> columns = {
      {"mnist", "Sim 0%", 0.0, false, Scaled(15)},
      {"mnist", "Sim 10%", 0.1, false, Scaled(15)},
      {"mnist", "Sim 100%", 1.0, false, Scaled(15)},
      {"cifar", "Sim 0%", 0.0, false, Scaled(30)},
      {"cifar", "Sim 10%", 0.1, false, Scaled(30)},
      {"cifar", "Sim 100%", 1.0, false, Scaled(30)},
      {"sent140", "Non-IID", 0.0, true, Scaled(8)},
      {"sent140", "IID", 0.0, false, Scaled(8)},
  };
  const std::vector<uint64_t> seeds = {1, 2};

  CsvWriter csv(ResultDir() + "/table2_cross_device.csv",
                {"dataset", "setting", "method", "seed", "accuracy"});

  std::map<int, std::map<std::string, std::vector<double>>> results;
  for (size_t c = 0; c < columns.size(); ++c) {
    const Column& column = columns[c];
    for (uint64_t seed : seeds) {
      Workload workload =
          column.dataset == "sent140"
              ? MakeTextWorkload(deploy, column.natural, seed)
              : MakeImageWorkload(column.dataset, deploy, column.similarity,
                                  seed);
      for (const std::string& method : AllMethodNames()) {
        RunHistory history =
            RunMethod(method, workload, column.rounds, seed, /*eval_every=*/4);
        const double acc = 100.0 * history.FinalAccuracy();
        results[static_cast<int>(c)][method].push_back(acc);
        csv.WriteRow({column.dataset, column.setting_label, method,
                      std::to_string(seed), FormatFixed(acc, 2)});
        std::fprintf(stderr, "[table2] %s %s %s seed=%llu acc=%.2f\n",
                     column.dataset.c_str(), column.setting_label.c_str(),
                     method.c_str(),
                     static_cast<unsigned long long>(seed), acc);
      }
    }
  }

  std::printf(
      "\nTABLE II: Test accuracy (%%) in the cross-device setting "
      "(N=%d, E=%d, SR=%.1f; scaled reproduction)\n",
      deploy.num_clients, deploy.local_steps, deploy.sample_ratio);
  std::printf("%-10s", "Method");
  for (const Column& column : columns) {
    std::printf(" | %s %s", column.dataset.c_str(),
                column.setting_label.c_str());
  }
  std::printf("\n");
  for (const std::string& method : AllMethodNames()) {
    std::printf("%-10s", method.c_str());
    for (size_t c = 0; c < columns.size(); ++c) {
      std::printf(" | %s",
                  Cell(results[static_cast<int>(c)][method]).c_str());
    }
    std::printf("\n");
  }
  std::printf("\nCSV: %s/table2_cross_device.csv\n", ResultDir().c_str());
}

}  // namespace
}  // namespace rfed::bench

int main() {
  rfed::bench::Run();
  return 0;
}
