// Reproduces Figs. 2 and 3: test-accuracy and train-loss curves vs
// communication rounds on the mnist profile — cross-device and
// cross-silo, similarity 0% and 10% (the paper omits 100% as it matches
// 10%). All six methods, per-round series written to CSV.

#include <cstdio>

#include "bench_common.h"

namespace rfed::bench {
namespace {

void Run() {
  const int rounds = Scaled(15);
  std::printf("\nFIG 2/3: MNIST accuracy & loss curves (%d rounds)\n",
              rounds);
  CsvWriter csv(ResultDir() + "/fig2_3_mnist_curves.csv",
                {"setting", "method", "round", "train_loss",
                 "test_accuracy"});
  struct Setting {
    const char* label;
    Deployment deploy;
    double similarity;
  };
  const Setting settings[] = {
      {"cross-device sim0", CrossDevice(), 0.0},
      {"cross-device sim10", CrossDevice(), 0.1},
      {"cross-silo sim0", CrossSilo(), 0.0},
      {"cross-silo sim10", CrossSilo(), 0.1},
  };
  for (const Setting& s : settings) {
    Workload workload = MakeImageWorkload("mnist", s.deploy, s.similarity, 1);
    RunCurveSet(s.label, workload, rounds, /*seed=*/1, &csv);
  }
  std::printf("\nCSV: %s/fig2_3_mnist_curves.csv\n", ResultDir().c_str());
}

}  // namespace
}  // namespace rfed::bench

int main() {
  rfed::bench::Run();
  return 0;
}
