// Reproduces Fig. 10: efficiency evaluation.
//   (a, b) minimal communication rounds to reach fixed accuracy levels
//          (mnist and cifar profiles, cross-device non-IID);
//   (c, d) per-round training time of FedAvg / rFedAvg / rFedAvg+
//          (similarity 0% and 10%).

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

namespace rfed::bench {
namespace {

void Run() {
  CsvWriter rounds_csv(ResultDir() + "/fig10ab_rounds_to_accuracy.csv",
                       {"dataset", "method", "target", "rounds"});
  CsvWriter time_csv(ResultDir() + "/fig10cd_round_time.csv",
                     {"dataset", "setting", "method", "seconds_per_round"});

  const Deployment deploy = CrossDevice();
  const std::vector<std::string> methods = {"FedAvg", "rFedAvg", "rFedAvg+"};

  // (a, b) rounds to reach accuracy levels.
  struct Task {
    const char* dataset;
    int rounds;
    std::vector<double> targets;
  };
  const Task tasks[] = {
      {"mnist", Scaled(20), {0.5, 0.7, 0.8}},
      {"cifar", Scaled(30), {0.15, 0.20, 0.25}},
  };
  std::printf("\nFIG 10a/b: minimal rounds to reach accuracy "
              "(cross-device, sim 0%%)\n");
  for (const Task& task : tasks) {
    Workload workload = MakeImageWorkload(task.dataset, deploy, 0.0, 1);
    std::printf("  %s:\n", task.dataset);
    for (const std::string& method : methods) {
      RunHistory history =
          RunMethod(method, workload, task.rounds, /*seed=*/1,
                    /*eval_every=*/1);
      std::printf("    %-9s", method.c_str());
      for (double target : task.targets) {
        const int needed = history.RoundsToReach(target);
        std::printf("  acc>=%.2f: %s", target,
                    needed < 0 ? "n/a" : std::to_string(needed).c_str());
        rounds_csv.WriteRow({task.dataset, method, FormatFixed(target, 2),
                             std::to_string(needed)});
      }
      std::printf("\n");
    }
  }

  // (c, d) training time per round.
  std::printf("\nFIG 10c/d: mean training time per round (seconds)\n");
  for (const char* dataset : {"mnist", "cifar"}) {
    for (double similarity : {0.0, 0.1}) {
      Workload workload = MakeImageWorkload(dataset, deploy, similarity, 1);
      const std::string setting = StrFormat(
          "sim%d", static_cast<int>(similarity * 100));
      std::printf("  %s %s:", dataset, setting.c_str());
      for (const std::string& method : methods) {
        RunHistory history =
            RunMethod(method, workload, Scaled(6), /*seed=*/1,
                      /*eval_every=*/100);
        const double sec = history.MeanRoundSeconds();
        std::printf("  %s=%.3fs", method.c_str(), sec);
        time_csv.WriteRow({dataset, setting, method, FormatFixed(sec, 4)});
      }
      std::printf("\n");
    }
  }
  std::printf("  (expected shape: rFedAvg slowest — it evaluates the\n"
              "   regularizer against N-1 maps; rFedAvg+ close to FedAvg)\n");
  std::printf("\nCSV: %s/fig10ab_rounds_to_accuracy.csv, "
              "%s/fig10cd_round_time.csv\n",
              ResultDir().c_str(), ResultDir().c_str());
}

}  // namespace
}  // namespace rfed::bench

int main() {
  rfed::bench::Run();
  return 0;
}
