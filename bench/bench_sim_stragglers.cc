// Straggler sweep on the discrete-event sim runtime: severity (lognormal
// sigma) x round policy {sync, deadline, async} x {FedAvg, rFedAvg+}.
//
// The question the sweep answers: when client compute times are heavy-
// tailed, how much virtual (simulated) time does each policy need to
// reach the loss a synchronous barrier reaches, given that sync must
// wait for the slowest sampled client every round? The deadline policy
// cuts stragglers at a fixed virtual deadline; the async policy updates
// the server after K arrivals and down-weights stale updates by
// 1/(1 + staleness).
//
// Reported per cell: final train loss, total virtual ms, virtual ms to
// reach the sync-mode final loss, and that time as a fraction of the
// sync run's. Deadline/async get extra rounds (they are cheaper per
// round); the comparison is on virtual time, not round count.

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

namespace rfed::bench {
namespace {

/// Straggler environment shared by every cell: lognormal per-step
/// compute around 20 virtual ms and a finite 2000 B/ms channel, so a
/// cross-silo round costs ~100 ms of compute plus a few ms of transfer.
void ApplySimEnv(FlConfig* config, double sigma, SimMode mode) {
  config->sim = SimOptions{};
  config->sim.mode = mode;
  config->sim.compute.kind = ComputeModelKind::kLognormal;
  config->sim.compute.mean_ms_per_step = 20.0;
  config->sim.compute.sigma = sigma;
  config->sim.network.down_bytes_per_ms = 2000.0;
  config->sim.network.up_bytes_per_ms = 2000.0;
  config->sim.network.base_latency_ms = 2.0;
  // Deadline: 1.5x the mean round compute (5 steps x 20 ms), so the
  // median client makes it and the tail is cut.
  if (mode == SimMode::kDeadline) config->sim.deadline_ms = 150.0;
  // Async: commit a server update once 4 of the 10 in-flight clients
  // arrive; the remaining six deliver later with staleness discounts.
  if (mode == SimMode::kAsync) config->sim.async_buffer = 4;
}

double MeanStaleness(const RunHistory& history) {
  if (history.rounds.empty()) return 0.0;
  double sum = 0.0;
  for (const RoundMetrics& r : history.rounds) sum += r.mean_staleness;
  return sum / static_cast<double>(history.rounds.size());
}

double MaxP95(const RunHistory& history) {
  double worst = 0.0;
  for (const RoundMetrics& r : history.rounds) {
    if (r.client_p95_ms > worst) worst = r.client_p95_ms;
  }
  return worst;
}

void Run() {
  CsvWriter csv(ResultDir() + "/sim_stragglers.csv",
                {"sigma", "method", "mode", "rounds", "final_loss",
                 "virtual_ms", "ms_to_sync_loss", "ratio_vs_sync",
                 "max_p95_ms", "stragglers_cut", "mean_staleness"});

  const int sync_rounds = Scaled(10);
  const int relaxed_rounds = 3 * sync_rounds;
  const double sigmas[] = {0.5, 1.0, 1.5};
  const std::vector<std::string> methods = {"FedAvg", "rFedAvg+"};

  std::printf("SIM STRAGGLERS: lognormal severity sweep "
              "(mnist cross-silo, %d sync rounds)\n", sync_rounds);
  std::printf("  %-8s %-9s %-9s %7s %10s %12s %14s %9s %5s %6s\n", "sigma",
              "method", "mode", "rounds", "final", "virtual_ms",
              "ms_to_syncloss", "vs_sync", "cut", "stale");

  for (double sigma : sigmas) {
    for (const std::string& method : methods) {
      Workload workload = MakeImageWorkload("mnist", CrossSilo(), 0.0, 1);

      // Baseline: synchronous barrier, waits on the slowest client.
      ApplySimEnv(&workload.config, sigma, SimMode::kSync);
      const RunHistory sync_run =
          RunMethod(method, workload, sync_rounds, /*seed=*/1,
                    /*eval_every=*/sync_rounds);
      const double target = sync_run.rounds.back().train_loss;
      const double sync_ms = sync_run.TotalVirtualMs();

      struct Row {
        const char* mode;
        RunHistory history;
      };
      ApplySimEnv(&workload.config, sigma, SimMode::kDeadline);
      Row deadline{"deadline", RunMethod(method, workload, relaxed_rounds,
                                         /*seed=*/1,
                                         /*eval_every=*/relaxed_rounds)};
      ApplySimEnv(&workload.config, sigma, SimMode::kAsync);
      Row async_row{"async", RunMethod(method, workload, relaxed_rounds,
                                       /*seed=*/1,
                                       /*eval_every=*/relaxed_rounds)};

      const Row* rows[] = {&deadline, &async_row};
      std::printf("  %-8.2f %-9s %-9s %7d %10.4f %12.1f %14s %9s %5lld "
                  "%6.2f\n",
                  sigma, method.c_str(), "sync", sync_rounds, target,
                  sync_ms, FormatFixed(sync_ms, 1).c_str(), "1.00x",
                  static_cast<long long>(sync_run.TotalStragglersCut()),
                  MeanStaleness(sync_run));
      csv.WriteRow({FormatFixed(sigma, 2), method, "sync",
                    std::to_string(sync_rounds), StrFormat("%.6f", target),
                    FormatFixed(sync_ms, 1), FormatFixed(sync_ms, 1), "1.00",
                    FormatFixed(MaxP95(sync_run), 1),
                    std::to_string(sync_run.TotalStragglersCut()),
                    FormatFixed(MeanStaleness(sync_run), 3)});

      for (const Row* row : rows) {
        const RunHistory& h = row->history;
        const double reach = h.VirtualMsToReachLoss(target);
        const std::string reach_str =
            reach < 0.0 ? "n/a" : FormatFixed(reach, 1);
        const std::string ratio_str =
            reach < 0.0 ? "n/a" : StrFormat("%.2fx", reach / sync_ms);
        std::printf("  %-8.2f %-9s %-9s %7d %10.4f %12.1f %14s %9s %5lld "
                    "%6.2f\n",
                    sigma, method.c_str(), row->mode, relaxed_rounds,
                    h.rounds.back().train_loss, h.TotalVirtualMs(),
                    reach_str.c_str(), ratio_str.c_str(),
                    static_cast<long long>(h.TotalStragglersCut()),
                    MeanStaleness(h));
        csv.WriteRow({FormatFixed(sigma, 2), method, row->mode,
                      std::to_string(relaxed_rounds),
                      StrFormat("%.6f", h.rounds.back().train_loss),
                      FormatFixed(h.TotalVirtualMs(), 1), reach_str,
                      reach < 0.0 ? "n/a" : FormatFixed(reach / sync_ms, 2),
                      FormatFixed(MaxP95(h), 1),
                      std::to_string(h.TotalStragglersCut()),
                      FormatFixed(MeanStaleness(h), 3)});
      }
    }
  }
  std::printf("\nwrote %s/sim_stragglers.csv\n", ResultDir().c_str());
}

}  // namespace
}  // namespace rfed::bench

int main() {
  rfed::bench::Run();
  return 0;
}
