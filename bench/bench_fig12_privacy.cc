// Reproduces Fig. 12: privacy evaluation. rFedAvg+ trained with Gaussian
// noise injected into the communicated δ maps (DP mechanism of Abadi et
// al.), sweeping the noise multiplier σ₂. The paper's claim: σ₂ <= 5
// barely moves the curve; large σ₂ degrades accuracy.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/rfedavg.h"
#include "fl/trainer.h"
#include "util/string_util.h"

namespace rfed::bench {
namespace {

void Run() {
  const Deployment deploy = CrossSilo();
  const int rounds = Scaled(25);
  CsvWriter csv(ResultDir() + "/fig12_privacy.csv",
                {"sigma", "round", "test_accuracy"});
  std::printf("\nFIG 12: rFedAvg+ under DP noise on delta "
              "(cifar, cross-silo sim 0%%, %d rounds)\n", rounds);
  for (double sigma : {0.0, 1.0, 5.0, 10.0, 20.0}) {
    Workload workload = MakeImageWorkload("cifar", deploy, 0.0, 1);
    RegularizerOptions reg;
    reg.lambda = workload.default_lambda;
    reg.dp = DpNoiseConfig{sigma, /*clip=*/1.0,
                           /*batch_size=*/workload.config.batch_size};
    RFedAvgPlus algorithm(workload.config, reg, &workload.train,
                          workload.views, workload.factory);
    TrainerOptions options;
    options.eval_every = 2;
    options.eval_max_examples = 400;
    FederatedTrainer trainer(&algorithm, &workload.test, options);
    RunHistory history = trainer.Run(rounds);
    for (const RoundMetrics& r : history.rounds) {
      if (!std::isnan(r.test_accuracy)) {
        csv.WriteRow({StrFormat("%g", sigma), std::to_string(r.round),
                      FormatFixed(r.test_accuracy, 4)});
      }
    }
    std::printf("  sigma2=%-4g final=%5.2f%% best=%5.2f%%\n", sigma,
                100.0 * history.FinalAccuracy(),
                100.0 * history.BestAccuracy());
  }
  std::printf("  (expected shape: sigma2 <= 5 overlaps sigma2 = 0; larger "
              "sigma2 degrades)\n");
  std::printf("\nCSV: %s/fig12_privacy.csv\n", ResultDir().c_str());
}

}  // namespace
}  // namespace rfed::bench

int main() {
  rfed::bench::Run();
  return 0;
}
