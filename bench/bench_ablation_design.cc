// Ablations for the design choices DESIGN.md calls out, all on the cifar
// profile with similarity 0% (where the regularizer matters most):
//   (1) delayed vs per-step-fresh maps: rFedAvg+ with E=5 delayed maps vs
//       E=1 with 5x rounds (every step synchronized — the O(N^2)-comm
//       scheme the paper rejects). Same SGD-step budget; compare accuracy
//       and total traffic.
//   (2) pairwise maps (rFedAvg) vs averaged map (rFedAvg+) at the same
//       budget: accuracy, per-round time, per-round bytes.
//   (3) regularizer placement: feature layer vs logits.
//   (4) contribution of the regularizer: lambda = 0 vs lambda*.

#include <cstdio>

#include "bench_common.h"
#include "core/rfedavg.h"
#include "fl/trainer.h"
#include "util/string_util.h"

namespace rfed::bench {
namespace {

struct Outcome {
  double accuracy = 0.0;
  double seconds_per_round = 0.0;
  int64_t total_bytes = 0;
};

Outcome RunCustom(const Workload& workload, const RegularizerOptions& reg,
                  bool plus, int rounds) {
  std::unique_ptr<FederatedAlgorithm> algorithm;
  if (plus) {
    algorithm = std::make_unique<RFedAvgPlus>(
        workload.config, reg, &workload.train, workload.views,
        workload.factory);
  } else {
    algorithm = std::make_unique<RFedAvg>(workload.config, reg,
                                          &workload.train, workload.views,
                                          workload.factory);
  }
  TrainerOptions options;
  options.eval_every = rounds;  // final evaluation only
  options.eval_max_examples = 400;
  FederatedTrainer trainer(algorithm.get(), &workload.test, options);
  RunHistory history = trainer.Run(rounds);
  return Outcome{history.FinalAccuracy(), history.MeanRoundSeconds(),
                 history.TotalBytes()};
}

void Run() {
  const Deployment deploy = CrossSilo();
  const int rounds = Scaled(25);
  CsvWriter csv(ResultDir() + "/ablation_design.csv",
                {"ablation", "variant", "accuracy", "sec_per_round",
                 "total_bytes"});
  auto emit = [&csv](const char* ablation, const std::string& variant,
                     const Outcome& o) {
    std::printf("  %-22s %-28s acc=%5.2f%%  %.3fs/round  %lld bytes\n",
                ablation, variant.c_str(), 100.0 * o.accuracy,
                o.seconds_per_round, static_cast<long long>(o.total_bytes));
    csv.WriteRow({ablation, variant, FormatFixed(100.0 * o.accuracy, 2),
                  FormatFixed(o.seconds_per_round, 4),
                  std::to_string(o.total_bytes)});
  };

  std::printf("\nABLATIONS (cifar, cross-silo, sim 0%%)\n");
  RegularizerOptions reg;
  reg.lambda = 1e-3;

  // (1) Delayed vs fresh maps at equal SGD-step budget.
  {
    Workload delayed = MakeImageWorkload("cifar", deploy, 0.0, 1);
    emit("map-freshness", StrFormat("delayed E=%d R=%d",
                                    deploy.local_steps, rounds),
         RunCustom(delayed, reg, /*plus=*/true, rounds));
    Deployment fresh_deploy = deploy;
    fresh_deploy.local_steps = 1;
    Workload fresh = MakeImageWorkload("cifar", fresh_deploy, 0.0, 1);
    emit("map-freshness",
         StrFormat("fresh E=1 R=%d", rounds * deploy.local_steps),
         RunCustom(fresh, reg, /*plus=*/true, rounds * deploy.local_steps));
  }

  // (2) Pairwise vs averaged regularizer.
  {
    Workload workload = MakeImageWorkload("cifar", deploy, 0.0, 1);
    emit("pairwise-vs-averaged", "rFedAvg (pairwise, local maps)",
         RunCustom(workload, reg, /*plus=*/false, rounds));
    emit("pairwise-vs-averaged", "rFedAvg+ (averaged, global maps)",
         RunCustom(workload, reg, /*plus=*/true, rounds));
  }

  // (3) Regularizer placement.
  {
    Workload workload = MakeImageWorkload("cifar", deploy, 0.0, 1);
    RegularizerOptions on_features = reg;
    emit("placement", "feature layer (paper)",
         RunCustom(workload, on_features, /*plus=*/true, rounds));
    RegularizerOptions on_logits = reg;
    on_logits.regularize_logits = true;
    emit("placement", "logits layer",
         RunCustom(workload, on_logits, /*plus=*/true, rounds));
  }

  // (4) Regularizer contribution.
  {
    Workload workload = MakeImageWorkload("cifar", deploy, 0.0, 1);
    RegularizerOptions off;
    off.lambda = 0.0;
    emit("lambda", "lambda=0 (FedAvg-equivalent)",
         RunCustom(workload, off, /*plus=*/true, rounds));
    emit("lambda", StrFormat("lambda=%g (tuned)", reg.lambda),
         RunCustom(workload, reg, /*plus=*/true, rounds));
  }

  std::printf("\nCSV: %s/ablation_design.csv\n", ResultDir().c_str());
}

}  // namespace
}  // namespace rfed::bench

int main() {
  rfed::bench::Run();
  return 0;
}
