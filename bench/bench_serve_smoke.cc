// Serve-transport benchmark: the full deployment path — RemoteExecutor,
// framed TCP protocol, worker service loop — exercised in-process with
// worker threads on localhost sockets, sweeping worker count and
// pipelining. Reports ms/round and transport throughput; results land in
// BENCH_serve.json.
//
// Usage:
//   ./build/bench/bench_serve_smoke                  # full sweep
//   ./build/bench/bench_serve_smoke --out path.json  # custom output
//   ./build/bench/bench_serve_smoke --smoke          # <2 s gate: one
//       lockstep and one pipelined loopback round trip must match the
//       in-process run bit for bit (the `bench_serve_smoke` ctest
//       target, label "serve")

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/fedavg.h"
#include "net/socket.h"
#include "nn/models.h"
#include "serve/remote_executor.h"
#include "serve/worker_loop.h"
#include "util/backoff.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace rfed {
namespace {

// All processes of a real deployment derive this from the scenario
// flags; the in-process bench just needs both ends to agree.
constexpr uint64_t kBenchFingerprint = 0x62656e6368u;  // "bench"

struct BenchData {
  SyntheticImageData data;
  std::vector<ClientView> views;
  ModelFactory factory;
};

BenchData MakeBenchData(int clients) {
  Rng rng(3);
  const ImageProfile profile = MnistLikeProfile();
  SyntheticImageData data = GenerateImageData(profile, 64 * clients, 64, &rng);
  ClientSplit split = SimilarityPartition(data.train, clients, 0.0, &rng);
  ClientSplit test_split = SimilarityPartition(data.test, clients, 0.0, &rng);
  std::vector<ClientView> views;
  for (int k = 0; k < clients; ++k) {
    views.push_back(ClientView{split.client_indices[k],
                               test_split.client_indices[k]});
  }
  MlpConfig mc;
  mc.in_channels = profile.channels;
  mc.image_size = profile.image_size;
  return BenchData{std::move(data), std::move(views), MakeMlpFactory(mc)};
}

FlConfig BenchConfig() {
  FlConfig config;
  config.local_steps = 2;
  config.batch_size = 8;
  config.lr = 0.05;
  config.seed = 3;
  config.sample_ratio = 1.0;
  return config;
}

struct LoopbackResult {
  Tensor final_state;
  double total_ms = 0.0;
  serve::ServeStats stats;
};

/// Runs `rounds` FedAvg rounds with local training delegated over real
/// localhost sockets to `num_workers` in-process worker threads.
LoopbackResult RunLoopback(const BenchData& b, int rounds,
                           int num_workers, bool pipelined) {
  const FlConfig config = BenchConfig();
  FedAvg server(config, &b.data.train, b.views, b.factory);
  std::vector<uint8_t> state_blob;
  server.SaveRunState(&state_blob);

  net::TcpListener listener("127.0.0.1", 0);
  const int port = listener.bound_port();
  std::vector<std::unique_ptr<FedAvg>> replicas;
  std::vector<std::thread> threads;
  for (int w = 0; w < num_workers; ++w) {
    replicas.push_back(std::make_unique<FedAvg>(config, &b.data.train,
                                                b.views, b.factory));
    FedAvg* replica = replicas.back().get();
    threads.emplace_back([replica, port, w, num_workers] {
      BackoffPolicy policy;
      policy.initial_ms = 1.0;
      policy.max_ms = 10.0;
      net::TcpConnection conn =
          net::TcpConnection::ConnectWithRetry("127.0.0.1", port, 100, policy);
      serve::RunWorkerLoop(replica, &conn, w, num_workers, kBenchFingerprint);
    });
  }
  serve::RemoteExecutor executor(pipelined);
  executor.AcceptWorkers(&listener, num_workers, kBenchFingerprint,
                         state_blob);
  server.set_train_executor(&executor);

  LoopbackResult result;
  Stopwatch sw;
  for (int round = 0; round < rounds; ++round) server.RunRound(round);
  result.total_ms = sw.ElapsedMillis();
  executor.Shutdown();
  for (std::thread& t : threads) t.join();
  result.final_state = server.global_state();
  result.stats = executor.stats();
  return result;
}

Tensor RunInProcess(const BenchData& b, int rounds) {
  FedAvg algo(BenchConfig(), &b.data.train, b.views, b.factory);
  for (int round = 0; round < rounds; ++round) algo.RunRound(round);
  return algo.global_state();
}

bool BitIdentical(const Tensor& a, const Tensor& b) {
  if (a.size() != b.size()) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (a.at(i) != b.at(i)) return false;
  }
  return true;
}

int Smoke() {
  // The gate the serve label runs in CI: a lockstep and a pipelined
  // loopback deployment must both reproduce the in-process trajectory
  // bit for bit, inside 2 seconds.
  const int kClients = 4, kRounds = 2;
  const BenchData b = MakeBenchData(kClients);
  const Tensor oracle = RunInProcess(b, kRounds);
  for (const bool pipelined : {false, true}) {
    const LoopbackResult r =
        RunLoopback(b, kRounds, /*num_workers=*/1, pipelined);
    if (!BitIdentical(r.final_state, oracle)) {
      std::fprintf(stderr, "smoke FAILED: %s loopback diverged from the "
                           "in-process run\n",
                   pipelined ? "pipelined" : "lockstep");
      return 1;
    }
    if (r.stats.jobs_sent != r.stats.results_received) {
      std::fprintf(stderr, "smoke FAILED: %lld jobs but %lld results\n",
                   static_cast<long long>(r.stats.jobs_sent),
                   static_cast<long long>(r.stats.results_received));
      return 1;
    }
  }
  std::printf("smoke OK: lockstep and pipelined loopback match the "
              "in-process run bitwise\n");
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const std::string out =
      flags.GetString("out", smoke ? "" : "BENCH_serve.json");
  if (smoke) return Smoke();

  const int kClients = 8, kRounds = 3;
  const BenchData b = MakeBenchData(kClients);
  const Tensor oracle = RunInProcess(b, kRounds);
  struct Row {
    int workers;
    bool pipelined;
    LoopbackResult r;
    bool identical;
  };
  std::vector<Row> rows;
  for (const int workers : {1, 2, 4}) {
    for (const bool pipelined : {false, true}) {
      Row row{workers, pipelined,
              RunLoopback(b, kRounds, workers, pipelined), false};
      row.identical = BitIdentical(row.r.final_state, oracle);
      const double mb = static_cast<double>(row.r.stats.bytes_sent +
                                            row.r.stats.bytes_received) /
                        (1024.0 * 1024.0);
      std::printf("workers=%d %-9s  %7.1f ms/round  %6.2f MB moved  "
                  "%7.1f MB/s  %s\n",
                  workers, pipelined ? "pipelined" : "lockstep",
                  row.r.total_ms / kRounds, mb,
                  mb / (row.r.total_ms / 1000.0),
                  row.identical ? "trajectory OK" : "TRAJECTORY DIVERGED");
      rows.push_back(std::move(row));
    }
  }
  int failures = 0;
  for (const Row& row : rows) failures += row.identical ? 0 : 1;
  if (!out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"serve\",\n");
    std::fprintf(f,
                 "  \"note\": \"in-process loopback deployments over real "
                 "localhost sockets; every row must match the in-process "
                 "trajectory bit for bit\",\n");
    std::fprintf(f, "  \"cases\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(f,
                   "    {\"workers\": %d, \"pipelined\": %s, "
                   "\"ms_per_round\": %.1f, \"bytes_sent\": %lld, "
                   "\"bytes_received\": %lld, \"identical\": %s}%s\n",
                   row.workers, row.pipelined ? "true" : "false",
                   row.r.total_ms / kRounds,
                   static_cast<long long>(row.r.stats.bytes_sent),
                   static_cast<long long>(row.r.stats.bytes_received),
                   row.identical ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace rfed

int main(int argc, char** argv) { return rfed::Main(argc, argv); }
