// Cross-device scale sweep: pool-mode FedAvg (and rFedAvg+ at the
// smaller sizes) over enrolled populations N in {1k, 10k, 100k, 1M}
// with a *fixed* sampled cohort, demonstrating that lazy client state
// plus hierarchical/streaming aggregation make per-round cost a
// function of the cohort, not of N: ms/round and ms/sampled-client stay
// flat while N grows 1000x, and resident client state tracks the
// sampled set only. Results land in BENCH_scale.json.
//
// Usage:
//   ./build/bench/bench_scale                  # full sweep
//   ./build/bench/bench_scale --out path.json  # custom output
//   ./build/bench/bench_scale --smoke          # <2 s gate: N=1k run plus
//       a lazy-vs-eager bit-identity differential, no JSON (the
//       `bench_scale_smoke` ctest target, label "scale")

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "data/client_pool.h"
#include "data/synthetic_images.h"
#include "fl/fedavg.h"
#include "core/rfedavg.h"
#include "nn/models.h"
#include "obs/metrics.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace rfed {
namespace {

/// Reads a kB-valued row ("VmHWM:   12345 kB") from /proc/self/status;
/// 0 when unavailable (non-Linux).
long ProcStatusKb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  long kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, std::strlen(key)) == 0) {
      std::sscanf(line + std::strlen(key), " %ld", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

struct SweepCase {
  const char* algorithm;
  int clients;
};

struct SweepResult {
  SweepCase spec;
  int cohort = 0;
  int rounds = 0;
  double ms_per_round = 0.0;
  double ms_per_sampled_client = 0.0;
  double final_loss = 0.0;
  int materialized_clients = 0;
  long client_state_bytes = 0;
  long vm_rss_kb = 0;  ///< resident set after the case
};

FlConfig ScaleConfig(int clients, int cohort) {
  FlConfig config;
  config.local_steps = 2;
  config.batch_size = 8;
  config.lr = 0.05;
  config.seed = 77;
  config.max_examples_per_pass = 64;
  config.sample_ratio = static_cast<double>(cohort) / clients;
  config.shard_fanout = 8;
  config.stream_chunk = 32;  // never buffer the whole cohort
  return config;
}

ClientPoolOptions PoolOpts(int clients) {
  ClientPoolOptions o;
  o.num_clients = clients;
  o.examples_per_client = 32;
  o.similarity = 0.3;
  o.seed = 99;
  return o;
}

ModelFactory TinyCnnFactory() {
  CnnConfig mc;
  mc.conv1_channels = 2;
  mc.conv2_channels = 4;
  mc.feature_dim = 8;
  return MakeCnnFactory(mc);
}

SweepResult RunCase(const SweepCase& spec, const Dataset& train, int cohort,
                    int rounds) {
  const ModelFactory factory = TinyCnnFactory();
  ClientPool pool(&train, nullptr, PoolOpts(spec.clients));
  FlConfig config = ScaleConfig(spec.clients, cohort);
  std::unique_ptr<FederatedAlgorithm> algo;
  if (std::strcmp(spec.algorithm, "rFedAvg+") == 0) {
    RegularizerOptions reg;
    reg.lambda = 1e-3;
    // rFedAvg+'s second map-sync exchange makes it the heavier client of
    // the same lazy/sharded machinery; streaming stays on (mean path).
    algo = std::make_unique<RFedAvgPlus>(config, reg, &pool, factory);
  } else {
    algo = std::make_unique<FedAvg>(config, &pool, factory);
  }

  SweepResult result;
  result.spec = spec;
  result.cohort = cohort;
  result.rounds = rounds;
  Stopwatch sw;
  for (int r = 0; r < rounds; ++r) {
    result.final_loss = algo->RunRound(r).train_loss;
  }
  const double total_ms = sw.ElapsedMillis();
  result.ms_per_round = total_ms / rounds;
  result.ms_per_sampled_client = total_ms / rounds / cohort;
  result.materialized_clients = algo->materialized_clients();
  result.client_state_bytes = static_cast<long>(
      obs::MetricsRegistry::Get().GetGauge("data.client_state_bytes")->value());
  result.vm_rss_kb = ProcStatusKb("VmRSS:");
  return result;
}

void WriteJson(const std::string& path, const std::vector<SweepResult>& rows,
               long vm_hwm_kb) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"scale\",\n");
  std::fprintf(f,
               "  \"note\": \"fixed sampled cohort over growing enrolled "
               "populations; flat ms_per_round and materialized state prove "
               "per-round cost is O(cohort), not O(N)\",\n");
  std::fprintf(f, "  \"vm_hwm_kb\": %ld,\n", vm_hwm_kb);
  std::fprintf(f, "  \"cases\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepResult& r = rows[i];
    std::fprintf(
        f,
        "    {\"algorithm\": \"%s\", \"clients\": %d, \"cohort\": %d, "
        "\"rounds\": %d, \"ms_per_round\": %.1f, "
        "\"ms_per_sampled_client\": %.3f, \"final_loss\": %.6f, "
        "\"materialized_clients\": %d, \"client_state_bytes\": %ld, "
        "\"vm_rss_kb\": %ld}%s\n",
        r.spec.algorithm, r.spec.clients, r.cohort, r.rounds, r.ms_per_round,
        r.ms_per_sampled_client, r.final_loss, r.materialized_clients,
        r.client_state_bytes, r.vm_rss_kb, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int Smoke(const Dataset& train) {
  // Gate 1: a pool run at N=1k must only materialize its cohorts.
  const SweepResult r = RunCase({"FedAvg", 1000}, train, 32, 2);
  if (r.materialized_clients > 2 * 32) {
    std::fprintf(stderr, "smoke FAILED: %d clients materialized for two "
                         "32-client cohorts\n", r.materialized_clients);
    return 1;
  }
  // Gate 2: lazy == eager, bit for bit, on a small pool.
  const ModelFactory factory = TinyCnnFactory();
  ClientPool pool(&train, nullptr, PoolOpts(200));
  const FlConfig config = ScaleConfig(200, 16);
  FedAvg lazy(config, &pool, factory);
  FedAvg eager(config, &pool, factory);
  eager.MaterializeAllClients();
  for (int round = 0; round < 2; ++round) {
    lazy.RunRound(round);
    eager.RunRound(round);
  }
  const Tensor& a = lazy.global_state();
  const Tensor& b = eager.global_state();
  for (int64_t i = 0; i < a.size(); ++i) {
    if (a.at(i) != b.at(i)) {
      std::fprintf(stderr, "smoke FAILED: lazy != eager at coordinate %lld\n",
                   static_cast<long long>(i));
      return 1;
    }
  }
  std::printf("smoke OK: O(cohort) materialization, lazy == eager bitwise\n");
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const std::string out = flags.GetString("out", smoke ? "" : "BENCH_scale.json");

  Rng rng(4321);
  const SyntheticImageData data =
      GenerateImageData(MnistLikeProfile(), 4096, 512, &rng);
  if (smoke) return Smoke(data.train);

  const SweepCase cases[] = {
      {"FedAvg", 1000},       {"FedAvg", 10000}, {"FedAvg", 100000},
      {"FedAvg", 1000000},    {"rFedAvg+", 1000}, {"rFedAvg+", 10000},
  };
  std::vector<SweepResult> rows;
  for (const SweepCase& spec : cases) {
    const SweepResult r = RunCase(spec, data.train, /*cohort=*/128,
                                  /*rounds=*/2);
    rows.push_back(r);
    std::printf(
        "%-8s N=%-8d cohort=%d  %7.1f ms/round  %6.3f ms/client  "
        "materialized=%d  state=%ldB  rss=%ldkB\n",
        r.spec.algorithm, r.spec.clients, r.cohort, r.ms_per_round,
        r.ms_per_sampled_client, r.materialized_clients, r.client_state_bytes,
        r.vm_rss_kb);
  }
  if (!out.empty()) WriteJson(out, rows, ProcStatusKb("VmHWM:"));
  return 0;
}

}  // namespace
}  // namespace rfed

int main(int argc, char** argv) { return rfed::Main(argc, argv); }
