// Reproduces Fig. 1: t-SNE visualization of last-FC-layer features of
// three clients' training data (classes 0/1/2) after FedAvg training on
// the cifar profile, under an IID and a totally non-IID partition. The
// paper's qualitative claim: per-client feature clusters align under IID
// and drift apart under non-IID. We emit the 2-d embeddings as CSV and
// print a quantitative summary (between-client centroid distance of the
// same class, normalized by within-cluster spread).

#include <cmath>
#include <cstdio>
#include <map>

#include "analysis/tsne.h"
#include "bench_common.h"
#include "fl/fedavg.h"
#include "util/csv_writer.h"
#include "util/string_util.h"

namespace rfed::bench {
namespace {

struct FeatureSet {
  Tensor features;            // [n, d]
  std::vector<int> client_of;
  std::vector<int> class_of;
};

FeatureSet CollectFeatures(FederatedAlgorithm* algorithm,
                           const Dataset& train,
                           const std::vector<ClientView>& views,
                           int clients_to_show, int classes_to_show,
                           int per_cell) {
  FeatureModel* model = algorithm->GlobalModel();
  std::vector<Tensor> rows;
  FeatureSet out;
  for (int k = 0; k < clients_to_show; ++k) {
    // Pick up to per_cell examples of each shown class from client k.
    for (int cls = 0; cls < classes_to_show; ++cls) {
      std::vector<int> picks;
      for (int idx : views[static_cast<size_t>(k)].train_indices) {
        if (train.label(idx) == cls) {
          picks.push_back(idx);
          if (static_cast<int>(picks.size()) >= per_cell) break;
        }
      }
      if (picks.empty()) continue;
      Batch batch = train.GetBatch(picks);
      ModelOutput output = model->Forward(batch);
      const Tensor& f = output.features.value();
      for (int64_t r = 0; r < f.dim(0); ++r) {
        Tensor row(Shape{f.dim(1)});
        for (int64_t c = 0; c < f.dim(1); ++c) row.at(c) = f.at2(r, c);
        rows.push_back(std::move(row));
        out.client_of.push_back(k);
        out.class_of.push_back(cls);
      }
    }
  }
  Tensor all(Shape{static_cast<int64_t>(rows.size()), rows[0].dim(0)});
  for (size_t r = 0; r < rows.size(); ++r) {
    for (int64_t c = 0; c < rows[r].dim(0); ++c) {
      all.at2(static_cast<int64_t>(r), c) = rows[r].at(c);
    }
  }
  out.features = std::move(all);
  return out;
}

/// Mean distance between per-(client,class) centroids of the SAME class
/// across clients, normalized by mean within-cell spread, computed in
/// the d-dimensional FEATURE space (the quantity the MMD regularizer
/// acts on; the 2-d t-SNE embedding is only for visualization). IID
/// training should give a small value (aligned features), non-IID a
/// larger one.
double ClientDiscrepancyScore(const Tensor& features,
                              const std::vector<int>& client_of,
                              const std::vector<int>& class_of) {
  const int64_t d = features.dim(1);
  struct Cell {
    std::vector<double> centroid;
    int n = 0;
  };
  std::map<std::pair<int, int>, Cell> cells;
  for (int64_t i = 0; i < features.dim(0); ++i) {
    Cell& cell = cells[{client_of[static_cast<size_t>(i)],
                        class_of[static_cast<size_t>(i)]}];
    if (cell.centroid.empty()) cell.centroid.assign(static_cast<size_t>(d), 0.0);
    for (int64_t c = 0; c < d; ++c) {
      cell.centroid[static_cast<size_t>(c)] += features.at2(i, c);
    }
    cell.n += 1;
  }
  for (auto& [key, cell] : cells) {
    for (double& v : cell.centroid) v /= cell.n;
  }
  double spread = 0.0;
  for (int64_t i = 0; i < features.dim(0); ++i) {
    const Cell& cell = cells[{client_of[static_cast<size_t>(i)],
                              class_of[static_cast<size_t>(i)]}];
    double acc = 0.0;
    for (int64_t c = 0; c < d; ++c) {
      const double diff = features.at2(i, c) - cell.centroid[static_cast<size_t>(c)];
      acc += diff * diff;
    }
    spread += std::sqrt(acc);
  }
  spread /= static_cast<double>(features.dim(0));

  double between = 0.0;
  int pairs = 0;
  for (const auto& [ka, ca] : cells) {
    for (const auto& [kb, cb] : cells) {
      if (ka.second == kb.second && ka.first < kb.first) {
        double acc = 0.0;
        for (int64_t c = 0; c < d; ++c) {
          const double diff = ca.centroid[static_cast<size_t>(c)] -
                              cb.centroid[static_cast<size_t>(c)];
          acc += diff * diff;
        }
        between += std::sqrt(acc);
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : (between / pairs) / (spread + 1e-9);
}

void Run() {
  const Deployment deploy = CrossSilo();
  const int rounds = Scaled(20);
  std::printf("\nFIG 1: t-SNE of client features under FedAvg (cifar "
              "profile, %d rounds)\n", rounds);
  CsvWriter csv(ResultDir() + "/fig1_tsne.csv",
                {"partition", "client", "class", "x", "y"});
  for (const char* partition : {"iid", "noniid"}) {
    const double similarity = std::string(partition) == "iid" ? 1.0 : 0.0;
    Workload workload = MakeImageWorkload("cifar", deploy, similarity, 1);
    auto algorithm = MakeAlgorithm("FedAvg", workload, 1);
    TrainerOptions options;
    options.eval_every = rounds;  // no intermediate eval needed
    options.eval_max_examples = 100;
    FederatedTrainer trainer(algorithm.get(), &workload.test, options);
    trainer.Run(rounds);

    FeatureSet set = CollectFeatures(algorithm.get(), workload.train,
                                     workload.views, /*clients_to_show=*/3,
                                     /*classes_to_show=*/3, /*per_cell=*/12);
    TsneOptions tsne;
    tsne.perplexity = 12.0;
    tsne.iterations = Scaled(250);
    Rng rng(7);
    Tensor embedding = TsneEmbed(set.features, tsne, &rng);
    for (int64_t i = 0; i < embedding.dim(0); ++i) {
      csv.WriteRow({partition,
                    std::to_string(set.client_of[static_cast<size_t>(i)]),
                    std::to_string(set.class_of[static_cast<size_t>(i)]),
                    FormatFixed(embedding.at2(i, 0), 4),
                    FormatFixed(embedding.at2(i, 1), 4)});
    }
    const double score =
        ClientDiscrepancyScore(set.features, set.client_of, set.class_of);
    std::printf("  %-7s cross-client same-class feature discrepancy = %.3f\n",
                partition, score);
  }
  std::printf("  (expected shape: noniid discrepancy > iid discrepancy)\n");
  std::printf("\nCSV: %s/fig1_tsne.csv\n", ResultDir().c_str());
}

}  // namespace
}  // namespace rfed::bench

int main() {
  rfed::bench::Run();
  return 0;
}
