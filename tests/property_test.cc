// Parameterized property sweeps (TEST_P): each instantiation checks one
// invariant across a family of inputs rather than a single case.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/convex_objective.h"
#include "core/mmd.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/fedavg.h"
#include "fl/model_state.h"
#include "nn/models.h"
#include "test_util.h"

namespace rfed {
namespace {

using ::rfed::testing::MaxGradCheckError;

// ---- Property: MatMul gradients are exact for arbitrary shapes ----

class MatMulShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapeTest, GradcheckHolds) {
  auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 100 + k * 10 + n));
  Variable a(Tensor::Normal(Shape{m, k}, 0, 1, &rng), true);
  Variable b(Tensor::Normal(Shape{k, n}, 0, 1, &rng), true);
  auto loss = [&] { return ag::Sum(ag::Tanh(ag::MatMul(a, b))); };
  EXPECT_LT(MaxGradCheckError(loss, {&a, &b}), 5e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapeTest,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 5, 3},
                      std::tuple{4, 1, 4}, std::tuple{3, 7, 2},
                      std::tuple{6, 2, 6}, std::tuple{2, 9, 1}));

// ---- Property: conv output shape formula holds across configs ----

class ConvShapeTest : public ::testing::TestWithParam<
                          std::tuple<int, int, int, int, int>> {};

TEST_P(ConvShapeTest, OutputShapeMatchesFormula) {
  auto [size, kernel, stride, pad, channels] = GetParam();
  Conv2dSpec spec{.in_channels = 1, .out_channels = channels,
                  .kernel = kernel, .stride = stride, .pad = pad};
  const int64_t expect = spec.OutDim(size);
  if (expect <= 0) GTEST_SKIP();
  Rng rng(1);
  Tensor x = Tensor::Normal(Shape{2, 1, size, size}, 0, 1, &rng);
  Tensor w = Tensor::Normal(Shape{channels, kernel * kernel}, 0, 0.2f, &rng);
  Tensor b(Shape{channels});
  Tensor y = Conv2dForward(x, w, b, spec);
  EXPECT_EQ(y.shape(), Shape({2, channels, expect, expect}));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConvShapeTest,
    ::testing::Values(std::tuple{8, 3, 1, 1, 2}, std::tuple{8, 5, 1, 2, 3},
                      std::tuple{12, 3, 2, 1, 1}, std::tuple{6, 3, 3, 0, 2},
                      std::tuple{10, 1, 1, 0, 4}));

// ---- Property: similarity partitioner skew is monotone in s ----

class PartitionSkewTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSkewTest, SkewDecreasesAlongSimilarityLadder) {
  const int num_clients = GetParam();
  Rng gen(77);
  auto data = GenerateImageData(MnistLikeProfile(), 1500, 50, &gen);
  Rng rng(78);
  double last = 1e9;
  for (double s : {0.0, 0.25, 0.5, 1.0}) {
    const double skew =
        LabelSkew(data.train, SimilarityPartition(data.train, num_clients,
                                                  s, &rng));
    EXPECT_LE(skew, last + 0.05) << "similarity " << s;
    last = skew;
  }
}

INSTANTIATE_TEST_SUITE_P(ClientCounts, PartitionSkewTest,
                         ::testing::Values(5, 10, 20));

// ---- Property: flatten/load round-trips for every model config ----

class ModelStateRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelStateRoundTripTest, RoundTripExact) {
  const int feature_dim = GetParam();
  Rng rng(static_cast<uint64_t>(feature_dim));
  CnnConfig config;
  config.feature_dim = feature_dim;
  CnnModel model(config, &rng);
  auto params = model.Parameters();
  Tensor flat = FlattenParameters(params);
  Tensor noise = Tensor::Normal(flat.shape(), 0, 1, &rng);
  LoadParameters(noise, params);
  EXPECT_TRUE(AllClose(FlattenParameters(params), noise, 0.0f));
  EXPECT_EQ(ParameterCount(params), flat.size());
}

INSTANTIATE_TEST_SUITE_P(FeatureDims, ModelStateRoundTripTest,
                         ::testing::Values(8, 32, 64, 128));

// ---- Property: pairwise vs averaged regularizer gradient identity ----

class RegularizerIdentityTest : public ::testing::TestWithParam<int> {};

TEST_P(RegularizerIdentityTest, GradientsAgreeForAnyTargetCount) {
  const int num_targets = GetParam();
  Rng rng(static_cast<uint64_t>(num_targets) + 500);
  Tensor base = Tensor::Normal(Shape{6, 5}, 0, 1, &rng);
  std::vector<Tensor> targets;
  for (int j = 0; j < num_targets; ++j) {
    targets.push_back(Tensor::Normal(Shape{5}, 0, 1, &rng));
  }
  Variable fa(base, true);
  PairwiseMmdRegularizer(fa, targets).Backward();
  Variable fb(base, true);
  AveragedMmdRegularizer(fb, MeanDelta(targets)).Backward();
  EXPECT_TRUE(AllClose(fa.grad(), fb.grad(), 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(TargetCounts, RegularizerIdentityTest,
                         ::testing::Values(1, 2, 3, 7, 19));

// ---- Property: aggregation preserves a shared fixed point ----

class AggregationFixedPointTest : public ::testing::TestWithParam<double> {};

TEST_P(AggregationFixedPointTest, ZeroLrIsFixedPoint) {
  const double sample_ratio = GetParam();
  Rng rng(91);
  auto data = GenerateImageData(MnistLikeProfile(), 300, 50, &rng);
  auto split = SimilarityPartition(data.train, 5, 0.5, &rng);
  std::vector<ClientView> views;
  for (auto& idx : split.client_indices) views.push_back({idx, {}});
  CnnConfig mc;
  mc.conv1_channels = 2;
  mc.conv2_channels = 4;
  mc.feature_dim = 8;
  FlConfig config;
  config.local_steps = 2;
  config.lr = 0.0;
  config.sample_ratio = sample_ratio;
  config.seed = 13;
  FedAvg algo(config, &data.train, views, MakeCnnFactory(mc));
  const Tensor before = algo.global_state();
  for (int r = 0; r < 3; ++r) algo.RunRound(r);
  EXPECT_TRUE(AllClose(algo.global_state(), before, 1e-6f));
}

INSTANTIATE_TEST_SUITE_P(SampleRatios, AggregationFixedPointTest,
                         ::testing::Values(0.2, 0.5, 1.0));

// ---- Property: convex harness converges for every (E, λ) combo ----

class ConvexSweepTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ConvexSweepTest, DelayedVariantsConverge) {
  auto [local_steps, lambda] = GetParam();
  ConvexProblemConfig config;
  config.lambda = lambda;
  config.grad_noise = 0.0;
  config.dim = 8;
  config.num_clients = 6;
  ConvexFederatedProblem problem(config);
  for (MapMode mode : {MapMode::kLocalDelayed, MapMode::kGlobalDelayed}) {
    Rng rng(55);
    const auto gaps = problem.Run(mode, 250, local_steps, &rng);
    EXPECT_LT(gaps.back(), 5e-3)
        << "E=" << local_steps << " lambda=" << lambda
        << " mode=" << static_cast<int>(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvexSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 5, 10),
                       ::testing::Values(0.0, 0.1, 0.5)));

// ---- Property: O(1/T) — the error times T stays bounded ----

class RateTest : public ::testing::TestWithParam<int> {};

TEST_P(RateTest, ErrorTimesRoundsIsBounded) {
  const int local_steps = GetParam();
  ConvexProblemConfig config;
  config.grad_noise = 0.1;
  ConvexFederatedProblem problem(config);
  Rng rng(66);
  const auto gaps = problem.Run(MapMode::kGlobalDelayed, 400, local_steps,
                                &rng);
  // t * gap(t) at t = 100 and t = 400 must stay within a constant factor,
  // i.e. the decay is ~1/t, not slower.
  const double early = 100.0 * gaps[99];
  const double late = 400.0 * gaps[399];
  EXPECT_LT(late, 10.0 * early + 1.0);
}

INSTANTIATE_TEST_SUITE_P(LocalSteps, RateTest, ::testing::Values(2, 5));

}  // namespace
}  // namespace rfed
