// Observability-layer suite (`ctest -L obs`).
//
// Pins the contracts in docs/OBSERVABILITY.md: histogram bucket edges,
// span nesting/ordering determinism of the per-(lane, seq) merge across
// `num_threads`/`kernel_threads`, Chrome trace-JSON well-formedness, and
// the golden guarantee that tracing never perturbs training — the final
// global model is byte-identical with tracing on and off.

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rfedavg.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/trainer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace rfed {
namespace {

// Tracing state is process-global; every test starts dark and empty.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::EnableTracing(false);
    obs::ClearTrace();
  }
  void TearDown() override {
    obs::EnableTracing(false);
    obs::ClearTrace();
  }
};

// ---- Metrics registry ----

TEST_F(ObsTest, HistogramBucketEdges) {
  obs::Histogram h({1.0, 2.0, 4.0});
  // v lands in the first bucket with v <= edge.
  h.Observe(0.0);   // bucket 0 (le 1)
  h.Observe(1.0);   // bucket 0: boundary is inclusive
  h.Observe(1.5);   // bucket 1 (le 2)
  h.Observe(2.0);   // bucket 1
  h.Observe(3.999); // bucket 2 (le 4)
  h.Observe(4.0);   // bucket 2
  h.Observe(4.001); // overflow
  h.Observe(1e12);  // overflow
  EXPECT_EQ(h.BucketCount(0), 2);
  EXPECT_EQ(h.BucketCount(1), 2);
  EXPECT_EQ(h.BucketCount(2), 2);
  EXPECT_EQ(h.BucketCount(3), 2);  // overflow bucket
  EXPECT_EQ(h.TotalCount(), 8);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0);
}

TEST_F(ObsTest, RegistryHandlesAreStableAndTyped) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Get();
  obs::Counter* c = reg.GetCounter("obs_test.counter");
  EXPECT_EQ(c, reg.GetCounter("obs_test.counter"));
  c->Add(3);
  c->Increment();
  EXPECT_EQ(c->value(), 4);
  obs::Gauge* g = reg.GetGauge("obs_test.gauge");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
}

TEST_F(ObsTest, SnapshotDeltaSubtractsCumulativeKeepsGauges) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Get();
  obs::Counter* c = reg.GetCounter("obs_test.delta_counter");
  obs::Gauge* g = reg.GetGauge("obs_test.delta_gauge");
  c->Add(10);
  g->Set(100.0);
  const auto base = reg.Snapshot();
  c->Add(7);
  g->Set(42.0);
  const auto now = reg.Snapshot();
  const auto delta = obs::SnapshotDelta(base, now);
  std::map<std::string, double> by_name(delta.begin(), delta.end());
  EXPECT_DOUBLE_EQ(by_name.at("obs_test.delta_counter"), 7.0);  // 17 - 10
  EXPECT_DOUBLE_EQ(by_name.at("obs_test.delta_gauge"), 42.0);   // absolute
  // Snapshots are sorted by name.
  for (size_t i = 1; i < now.size(); ++i) {
    EXPECT_LT(now[i - 1].name, now[i].name);
  }
}

TEST_F(ObsTest, HistogramSnapshotFlattensBuckets) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Get();
  obs::Histogram* h = reg.GetHistogram("obs_test.hist", {0.5, 2.5});
  h->Observe(0.0);
  h->Observe(1.0);
  h->Observe(9.0);
  std::map<std::string, double> by_name;
  for (const auto& s : reg.Snapshot()) by_name[s.name] = s.value;
  EXPECT_DOUBLE_EQ(by_name.at("obs_test.hist.le0.5"), 1.0);
  EXPECT_DOUBLE_EQ(by_name.at("obs_test.hist.le2.5"), 1.0);
  EXPECT_DOUBLE_EQ(by_name.at("obs_test.hist.over"), 1.0);
  EXPECT_DOUBLE_EQ(by_name.at("obs_test.hist.count"), 3.0);
}

// ---- Trace spans ----

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  {
    obs::TraceSpan outer("outer");
    obs::TraceSpan inner("inner");
  }
  EXPECT_TRUE(obs::CollectTrace().empty());
}

TEST_F(ObsTest, SpanNestingDepthsAndSeqOrder) {
  obs::EnableTracing(true);
  {
    obs::TraceSpan a("a");
    { obs::TraceSpan b("b"); }
    { obs::TraceSpan c("c"); }
  }
  { obs::TraceSpan d("d"); }
  const auto lanes = obs::CollectTrace();
  ASSERT_EQ(lanes.size(), 1u);
  const auto& events = lanes[0].events;
  ASSERT_EQ(events.size(), 4u);
  // Events append at span end: children precede their parent.
  EXPECT_STREQ(events[0].name, "b");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_STREQ(events[1].name, "c");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_STREQ(events[2].name, "a");
  EXPECT_EQ(events[2].depth, 0);
  EXPECT_STREQ(events[3].name, "d");
  EXPECT_EQ(events[3].depth, 0);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, static_cast<int64_t>(i));
    EXPECT_GE(events[i].dur_us, 0.0);
  }
  obs::ClearTrace();
  EXPECT_TRUE(obs::CollectTrace().empty());
}

TEST_F(ObsTest, SummaryAggregatesByName) {
  obs::EnableTracing(true);
  { obs::TraceSpan a("alpha"); }
  { obs::TraceSpan a("alpha"); }
  { obs::TraceSpan b("beta"); }
  const auto stats = obs::SummarizeTrace();
  ASSERT_EQ(stats.size(), 2u);
  int64_t total = 0;
  for (const auto& s : stats) total += s.count;
  EXPECT_EQ(total, 3);
  const std::string table = obs::FormatTraceSummary();
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
}

// ---- Federated runs: determinism and non-perturbation ----

/// Tiny rFedAvg+ fixture (the algorithm exercising the most span kinds:
/// map broadcast/sync, MMD penalty, conv/GEMM kernels).
struct ObsFixture {
  ObsFixture()
      : rng(1234),
        data(GenerateImageData(MnistLikeProfile(), 120, 60, &rng)),
        split(SimilarityPartition(data.train, 3, 0.5, &rng)) {
    for (auto& idx : split.client_indices) {
      views.push_back(ClientView{idx, {}});
    }
    CnnConfig mc;
    mc.conv1_channels = 2;
    mc.conv2_channels = 4;
    mc.feature_dim = 8;
    factory = MakeCnnFactory(mc);
  }
  Rng rng;
  SyntheticImageData data;
  ClientSplit split;
  std::vector<ClientView> views;
  ModelFactory factory;
};

FlConfig ObsConfig(int num_threads, int kernel_threads) {
  FlConfig config;
  config.local_steps = 2;
  config.batch_size = 8;
  config.lr = 0.05;
  config.seed = 77;
  config.max_examples_per_pass = 32;
  config.num_threads = num_threads;
  config.kernel_threads = kernel_threads;
  return config;
}

Tensor RunFixture(const FlConfig& config, int rounds) {
  ObsFixture fx;
  RegularizerOptions reg;
  reg.lambda = 0.01;
  RFedAvgPlus algo(config, reg, &fx.data.train, fx.views, fx.factory);
  TrainerOptions options;
  options.eval_max_examples = 60;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  trainer.Run(rounds);
  return algo.global_state();
}

void ExpectBitIdentical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.at(i), b.at(i)) << "element " << i;
  }
}

TEST_F(ObsTest, GoldenModelByteIdenticalTracingOnVsOff) {
  FlConfig config = ObsConfig(1, 1);
  const Tensor untraced = RunFixture(config, 2);
  config.trace = true;
  const Tensor traced = RunFixture(config, 2);
  EXPECT_FALSE(obs::CollectTrace().empty());
  ExpectBitIdentical(untraced, traced);
}

/// Per-name span counts from a traced run of the fixture.
std::map<std::string, int64_t> SpanCounts(int num_threads,
                                          int kernel_threads) {
  obs::ClearTrace();
  FlConfig config = ObsConfig(num_threads, kernel_threads);
  config.trace = true;
  RunFixture(config, 2);
  std::map<std::string, int64_t> counts;
  for (const auto& lane : obs::CollectTrace()) {
    for (const auto& ev : lane.events) ++counts[ev.name];
  }
  obs::EnableTracing(false);
  return counts;
}

TEST_F(ObsTest, SpanCountsInvariantAcrossThreadCounts) {
  const auto serial = SpanCounts(1, 1);
  // The serial run covers every span kind the round loop emits.
  for (const char* name :
       {"round", "select", "broadcast", "local_train", "upload", "aggregate",
        "evaluate", "mmd_penalty", "map_broadcast", "map_sync", "backward"}) {
    EXPECT_GT(serial.count(name), 0u) << name;
  }
  EXPECT_GE(serial.size(), 6u);
  for (const int num_threads : {1, 4}) {
    for (const int kernel_threads : {1, 4}) {
      if (num_threads == 1 && kernel_threads == 1) continue;
      const auto counts = SpanCounts(num_threads, kernel_threads);
      EXPECT_EQ(counts, serial)
          << "num_threads=" << num_threads
          << " kernel_threads=" << kernel_threads;
    }
  }
}

TEST_F(ObsTest, SerialEventStreamIsDeterministic) {
  using Sig = std::vector<std::pair<std::string, std::pair<int, int64_t>>>;
  const auto signature = [] {
    obs::ClearTrace();
    FlConfig config = ObsConfig(1, 1);
    config.trace = true;
    RunFixture(config, 2);
    Sig sig;
    for (const auto& lane : obs::CollectTrace()) {
      for (const auto& ev : lane.events) {
        sig.emplace_back(ev.name, std::make_pair(ev.depth, ev.seq));
      }
    }
    return sig;
  };
  const Sig first = signature();
  const Sig second = signature();
  // Two serial runs produce the exact same (name, depth, seq) stream;
  // only wall timestamps may differ.
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST_F(ObsTest, SpansNestProperlyWithinEachLane) {
  FlConfig config = ObsConfig(4, 1);
  config.trace = true;
  RunFixture(config, 2);
  for (const auto& lane : obs::CollectTrace()) {
    // Replay the stream against a stack: an event of depth d closes when
    // every deeper event before it has closed, and (end-append order)
    // must lie inside the wall interval of the parent that closes later.
    std::vector<const obs::TraceEvent*> open;
    for (const auto& ev : lane.events) {
      EXPECT_GE(ev.dur_us, 0.0);
      while (!open.empty() && open.back()->depth >= ev.depth) {
        open.pop_back();
      }
      open.push_back(&ev);
    }
    // Stronger containment check: for consecutive events where the next
    // has smaller depth, the earlier (child) interval is inside it.
    for (size_t i = 0; i + 1 < lane.events.size(); ++i) {
      const auto& child = lane.events[i];
      const auto& next = lane.events[i + 1];
      if (next.depth < child.depth) {
        const double slack_us = 1e3;  // clock granularity headroom
        EXPECT_GE(child.start_us + slack_us, next.start_us);
        EXPECT_LE(child.start_us + child.dur_us,
                  next.start_us + next.dur_us + slack_us);
      }
    }
  }
}

// ---- Chrome trace export ----

/// Minimal structural JSON scan: balanced {} and [] outside strings.
void ExpectBalancedJson(const std::string& text) {
  int brace = 0, bracket = 0;
  bool in_string = false, escaped = false;
  for (char c : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++brace;
    if (c == '}') --brace;
    if (c == '[') ++bracket;
    if (c == ']') --bracket;
    EXPECT_GE(brace, 0);
    EXPECT_GE(bracket, 0);
  }
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(ObsTest, ChromeTraceJsonIsWellFormed) {
  FlConfig config = ObsConfig(1, 1);
  config.trace = true;
  RunFixture(config, 2);
  const std::string path = ::testing::TempDir() + "/obs_trace.json";
  obs::WriteChromeTrace(path);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  ExpectBalancedJson(text);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);

  // >= 6 distinct phase span names in the export (acceptance criterion).
  std::set<std::string> names;
  const std::string needle = "\"name\":\"";
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + 1)) {
    const size_t begin = pos + needle.size();
    const size_t end = text.find('"', begin);
    ASSERT_NE(end, std::string::npos);
    names.insert(text.substr(begin, end - begin));
  }
  names.erase("thread_name");  // metadata, not a phase
  EXPECT_GE(names.size(), 6u) << "distinct span names: " << names.size();
}

// ---- Per-round metric snapshots ----

TEST_F(ObsTest, RoundMetricsCarryRegistryDeltas) {
  ObsFixture fx;
  RegularizerOptions reg;
  reg.lambda = 0.01;
  RFedAvgPlus algo(ObsConfig(1, 1), reg, &fx.data.train, fx.views,
                   fx.factory);
  TrainerOptions options;
  options.eval_max_examples = 60;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  RunHistory history = trainer.Run(2);
  ASSERT_EQ(history.rounds.size(), 2u);
  for (const RoundMetrics& round : history.rounds) {
    ASSERT_FALSE(round.metrics.empty());
    std::map<std::string, double> by_name(round.metrics.begin(),
                                          round.metrics.end());
    // The registry's byte deltas must agree with the legacy ledger-based
    // fields: FaultChannel::Charge is the single path for both.
    EXPECT_DOUBLE_EQ(by_name.at("comm.down_bytes") + by_name.at("comm.up_bytes"),
                     static_cast<double>(round.round_bytes));
    EXPECT_DOUBLE_EQ(by_name.at("channel.delivered"),
                     static_cast<double>(round.delivered_messages));
    EXPECT_DOUBLE_EQ(by_name.at("channel.dropped"),
                     static_cast<double>(round.dropped_messages));
    // rFedAvg+ ships δ-maps both ways every round.
    EXPECT_GT(by_name.at("comm.down_bytes.map"), 0.0);
    EXPECT_GT(by_name.at("comm.up_bytes.map"), 0.0);
  }
}

}  // namespace
}  // namespace rfed
