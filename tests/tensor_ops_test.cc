#include <cmath>

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"
#include "test_util.h"
#include "util/rng.h"

namespace rfed {
namespace {

using ::rfed::testing::PatternTensor;

TEST(ElementwiseTest, AddSubMulScale) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{3}, {4, 5, 6});
  EXPECT_TRUE(AllClose(Add(a, b), Tensor(Shape{3}, {5, 7, 9}), 0.0f));
  EXPECT_TRUE(AllClose(Sub(a, b), Tensor(Shape{3}, {-3, -3, -3}), 0.0f));
  EXPECT_TRUE(AllClose(Mul(a, b), Tensor(Shape{3}, {4, 10, 18}), 0.0f));
  EXPECT_TRUE(AllClose(Scale(a, 2.0f), Tensor(Shape{3}, {2, 4, 6}), 0.0f));
  EXPECT_TRUE(AllClose(AddScalar(a, 1.0f), Tensor(Shape{3}, {2, 3, 4}), 0.0f));
}

TEST(ActivationTest, ReluClampsNegatives) {
  Tensor x(Shape{4}, {-1, 0, 2, -3});
  Tensor y = Relu(x);
  EXPECT_TRUE(AllClose(y, Tensor(Shape{4}, {0, 0, 2, 0}), 0.0f));
}

TEST(ActivationTest, ReluBackwardMasks) {
  Tensor x(Shape{4}, {-1, 0, 2, 3});
  Tensor g(Shape{4}, {1, 1, 1, 1});
  Tensor dx = ReluBackward(g, x);
  EXPECT_TRUE(AllClose(dx, Tensor(Shape{4}, {0, 0, 1, 1}), 0.0f));
}

TEST(ActivationTest, TanhAndSigmoidValues) {
  Tensor x(Shape{2}, {0.0f, 1.0f});
  Tensor th = Tanh(x);
  EXPECT_NEAR(th.at(0), 0.0f, 1e-6f);
  EXPECT_NEAR(th.at(1), std::tanh(1.0f), 1e-6f);
  Tensor sg = Sigmoid(x);
  EXPECT_NEAR(sg.at(0), 0.5f, 1e-6f);
  EXPECT_NEAR(sg.at(1), 1.0f / (1.0f + std::exp(-1.0f)), 1e-6f);
}

TEST(MatMulTest, HandComputed) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_TRUE(AllClose(c, Tensor(Shape{2, 2}, {58, 64, 139, 154}), 1e-4f));
}

TEST(MatMulTest, TransposedVariantsAgree) {
  Rng rng(1);
  Tensor a = Tensor::Normal(Shape{4, 5}, 0, 1, &rng);
  Tensor b = Tensor::Normal(Shape{4, 6}, 0, 1, &rng);
  // MatMulTransA(a, b) == a^T b.
  Tensor expected = MatMul(Transpose2d(a), b);
  EXPECT_TRUE(AllClose(MatMulTransA(a, b), expected, 1e-4f));
  Tensor c = Tensor::Normal(Shape{6, 5}, 0, 1, &rng);
  // MatMulTransB(a, c) == a c^T with a [4,5], c [6,5].
  Tensor expected2 = MatMul(a, Transpose2d(c));
  EXPECT_TRUE(AllClose(MatMulTransB(a, c), expected2, 1e-4f));
}

TEST(MatMulTest, IdentityPreserves) {
  Tensor eye(Shape{3, 3});
  for (int i = 0; i < 3; ++i) eye.at2(i, i) = 1.0f;
  Tensor a = PatternTensor(Shape{3, 3});
  EXPECT_TRUE(AllClose(MatMul(eye, a), a, 1e-6f));
}

TEST(BroadcastTest, AddRowBroadcast) {
  Tensor x(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3}, {10, 20, 30});
  Tensor y = AddRowBroadcast(x, b);
  EXPECT_TRUE(
      AllClose(y, Tensor(Shape{2, 3}, {11, 22, 33, 14, 25, 36}), 0.0f));
}

TEST(ReductionTest, SumRowsAndMeanRows) {
  Tensor x(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AllClose(SumRows(x), Tensor(Shape{3}, {5, 7, 9}), 1e-6f));
  EXPECT_TRUE(AllClose(MeanRows(x), Tensor(Shape{3}, {2.5, 3.5, 4.5}), 1e-6f));
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(2);
  Tensor logits = Tensor::Normal(Shape{5, 7}, 0, 3, &rng);
  Tensor p = SoftmaxRows(logits);
  for (int64_t r = 0; r < 5; ++r) {
    double sum = 0;
    for (int64_t c = 0; c < 7; ++c) {
      sum += p.at2(r, c);
      EXPECT_GT(p.at2(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, InvariantToRowShift) {
  Tensor a(Shape{1, 3}, {1, 2, 3});
  Tensor b(Shape{1, 3}, {101, 102, 103});
  EXPECT_TRUE(AllClose(SoftmaxRows(a), SoftmaxRows(b), 1e-6f));
}

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  Tensor logits(Shape{2, 4});
  const float loss = SoftmaxCrossEntropy(logits, {0, 3}, nullptr);
  EXPECT_NEAR(loss, std::log(4.0f), 1e-5f);
}

TEST(CrossEntropyTest, GradientSumsToZeroPerRow) {
  Rng rng(3);
  Tensor logits = Tensor::Normal(Shape{3, 5}, 0, 1, &rng);
  Tensor dlogits;
  SoftmaxCrossEntropy(logits, {1, 4, 0}, &dlogits);
  for (int64_t r = 0; r < 3; ++r) {
    double sum = 0;
    for (int64_t c = 0; c < 5; ++c) sum += dlogits.at2(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(CrossEntropyTest, PerfectPredictionLossNearZero) {
  Tensor logits(Shape{1, 3}, {100.0f, 0.0f, 0.0f});
  EXPECT_NEAR(SoftmaxCrossEntropy(logits, {0}, nullptr), 0.0f, 1e-5f);
}

TEST(Conv2dTest, IdentityKernelCopiesInput) {
  // 1x1 kernel with weight 1 reproduces the input.
  Conv2dSpec spec{.in_channels = 1, .out_channels = 1, .kernel = 1,
                  .stride = 1, .pad = 0};
  Tensor x = PatternTensor(Shape{2, 1, 4, 4});
  Tensor w(Shape{1, 1}, {1.0f});
  Tensor b(Shape{1});
  Tensor y = Conv2dForward(x, w, b, spec);
  EXPECT_TRUE(AllClose(y, x, 1e-6f));
}

TEST(Conv2dTest, HandComputed3x3) {
  // One 3x3 input, 3x3 averaging kernel, no pad: output = mean * 9.
  Conv2dSpec spec{.in_channels = 1, .out_channels = 1, .kernel = 3,
                  .stride = 1, .pad = 0};
  Tensor x(Shape{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w = Tensor::Full(Shape{1, 9}, 1.0f);
  Tensor b(Shape{1}, {0.5f});
  Tensor y = Conv2dForward(x, w, b, spec);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_NEAR(y.at(0), 45.5f, 1e-5f);
}

TEST(Conv2dTest, PaddingKeepsSize) {
  Conv2dSpec spec{.in_channels = 2, .out_channels = 3, .kernel = 5,
                  .stride = 1, .pad = 2};
  Rng rng(4);
  Tensor x = Tensor::Normal(Shape{2, 2, 8, 8}, 0, 1, &rng);
  Tensor w = Tensor::Normal(Shape{3, 2 * 25}, 0, 0.1f, &rng);
  Tensor b(Shape{3});
  Tensor y = Conv2dForward(x, w, b, spec);
  EXPECT_EQ(y.shape(), Shape({2, 3, 8, 8}));
}

TEST(Conv2dTest, StrideReducesSize) {
  Conv2dSpec spec{.in_channels = 1, .out_channels = 1, .kernel = 3,
                  .stride = 2, .pad = 1};
  Tensor x(Shape{1, 1, 8, 8});
  Tensor w(Shape{1, 9});
  Tensor b(Shape{1});
  EXPECT_EQ(Conv2dForward(x, w, b, spec).shape(), Shape({1, 1, 4, 4}));
}

TEST(Conv2dTest, BackwardMatchesFiniteDifferences) {
  Conv2dSpec spec{.in_channels = 2, .out_channels = 2, .kernel = 3,
                  .stride = 1, .pad = 1};
  Rng rng(5);
  Tensor x = Tensor::Normal(Shape{1, 2, 4, 4}, 0, 1, &rng);
  Tensor w = Tensor::Normal(Shape{2, 18}, 0, 0.5f, &rng);
  Tensor b = Tensor::Normal(Shape{2}, 0, 0.5f, &rng);
  // Loss = sum(conv(x, w, b)); upstream grad = ones.
  Tensor y = Conv2dForward(x, w, b, spec);
  Tensor grad_out = Tensor::Full(y.shape(), 1.0f);
  Tensor dx, dw, db;
  Conv2dBackward(grad_out, x, w, spec, &dx, &dw, &db);

  auto loss_at = [&](Tensor* target, int64_t i, float eps) {
    const float original = target->at(i);
    target->at(i) = original + eps;
    const float value = Conv2dForward(x, w, b, spec).Sum();
    target->at(i) = original;
    return value;
  };
  const float eps = 1e-2f;
  for (int64_t i = 0; i < x.size(); i += 7) {
    const float numeric =
        (loss_at(&x, i, eps) - loss_at(&x, i, -eps)) / (2 * eps);
    EXPECT_NEAR(dx.at(i), numeric, 2e-2f) << "dx[" << i << "]";
  }
  for (int64_t i = 0; i < w.size(); i += 5) {
    const float numeric =
        (loss_at(&w, i, eps) - loss_at(&w, i, -eps)) / (2 * eps);
    EXPECT_NEAR(dw.at(i), numeric, 2e-2f) << "dw[" << i << "]";
  }
  for (int64_t i = 0; i < b.size(); ++i) {
    const float numeric =
        (loss_at(&b, i, eps) - loss_at(&b, i, -eps)) / (2 * eps);
    EXPECT_NEAR(db.at(i), numeric, 2e-2f) << "db[" << i << "]";
  }
}

TEST(MaxPoolTest, ForwardSelectsMax) {
  Tensor x(Shape{1, 1, 2, 2}, {1, 5, 3, 2});
  std::vector<int64_t> argmax;
  Tensor y = MaxPool2x2Forward(x, &argmax);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_EQ(y.at(0), 5.0f);
  EXPECT_EQ(argmax[0], 1);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  Tensor x(Shape{1, 1, 2, 2}, {1, 5, 3, 2});
  std::vector<int64_t> argmax;
  Tensor y = MaxPool2x2Forward(x, &argmax);
  Tensor grad_out(Shape{1, 1, 1, 1}, {2.5f});
  Tensor dx = MaxPool2x2Backward(grad_out, x.shape(), argmax);
  EXPECT_TRUE(AllClose(dx, Tensor(Shape{1, 1, 2, 2}, {0, 2.5f, 0, 0}), 0.0f));
}

TEST(GatherScatterTest, GatherRowsSelects) {
  Tensor table(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor out = GatherRows(table, {2, 0, 2});
  EXPECT_TRUE(AllClose(out, Tensor(Shape{3, 2}, {5, 6, 1, 2, 5, 6}), 0.0f));
}

TEST(GatherScatterTest, ScatterAddAccumulatesDuplicates) {
  Tensor grad(Shape{3, 2}, {1, 1, 2, 2, 3, 3});
  Tensor table_grad(Shape{3, 2});
  ScatterAddRows(grad, {2, 0, 2}, &table_grad);
  EXPECT_TRUE(AllClose(table_grad,
                       Tensor(Shape{3, 2}, {2, 2, 0, 0, 4, 4}), 0.0f));
}

TEST(SliceConcatTest, SliceRowsExtracts) {
  Tensor x(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AllClose(SliceRows(x, 1, 3),
                       Tensor(Shape{2, 2}, {3, 4, 5, 6}), 0.0f));
}

TEST(SliceConcatTest, ConcatRowsStacks) {
  Tensor a(Shape{1, 2}, {1, 2});
  Tensor b(Shape{2, 2}, {3, 4, 5, 6});
  EXPECT_TRUE(AllClose(ConcatRows(a, b),
                       Tensor(Shape{3, 2}, {1, 2, 3, 4, 5, 6}), 0.0f));
}

TEST(TransposeTest, TwiceIsIdentity) {
  Tensor a = PatternTensor(Shape{3, 5});
  EXPECT_TRUE(AllClose(Transpose2d(Transpose2d(a)), a, 0.0f));
}

}  // namespace
}  // namespace rfed
