#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "test_util.h"
#include "util/rng.h"

namespace rfed {
namespace {

using ::rfed::testing::MaxGradCheckError;

constexpr double kTol = 5e-2;  // float32 kernels vs double finite diffs

Variable Leaf(Tensor t) { return Variable(std::move(t), true); }

TEST(AutogradTest, AddBackward) {
  Rng rng(1);
  Variable a = Leaf(Tensor::Normal(Shape{3, 4}, 0, 1, &rng));
  Variable b = Leaf(Tensor::Normal(Shape{3, 4}, 0, 1, &rng));
  auto loss = [&] { return ag::Sum(ag::Add(a, b)); };
  EXPECT_LT(MaxGradCheckError(loss, {&a, &b}), kTol);
}

TEST(AutogradTest, SubBackward) {
  Rng rng(2);
  Variable a = Leaf(Tensor::Normal(Shape{5}, 0, 1, &rng));
  Variable b = Leaf(Tensor::Normal(Shape{5}, 0, 1, &rng));
  auto loss = [&] { return ag::Sum(ag::Sub(a, b)); };
  EXPECT_LT(MaxGradCheckError(loss, {&a, &b}), kTol);
}

TEST(AutogradTest, MulBackward) {
  Rng rng(3);
  Variable a = Leaf(Tensor::Normal(Shape{4, 2}, 0, 1, &rng));
  Variable b = Leaf(Tensor::Normal(Shape{4, 2}, 0, 1, &rng));
  auto loss = [&] { return ag::Sum(ag::Mul(a, b)); };
  EXPECT_LT(MaxGradCheckError(loss, {&a, &b}), kTol);
}

TEST(AutogradTest, ScaleBackward) {
  Rng rng(4);
  Variable a = Leaf(Tensor::Normal(Shape{6}, 0, 1, &rng));
  auto loss = [&] { return ag::Sum(ag::Scale(a, -2.5f)); };
  EXPECT_LT(MaxGradCheckError(loss, {&a}), kTol);
}

TEST(AutogradTest, MulConstBackward) {
  Rng rng(5);
  Variable a = Leaf(Tensor::Normal(Shape{3, 3}, 0, 1, &rng));
  Tensor mask = Tensor::Normal(Shape{3, 3}, 0, 1, &rng);
  auto loss = [&] { return ag::Sum(ag::MulConst(a, mask)); };
  EXPECT_LT(MaxGradCheckError(loss, {&a}), kTol);
}

TEST(AutogradTest, ReluBackwardAwayFromKink) {
  // Values bounded away from 0 so finite differences are valid.
  Tensor t(Shape{4}, {-2.0f, -1.0f, 1.0f, 2.0f});
  Variable a = Leaf(std::move(t));
  auto loss = [&] { return ag::Sum(ag::Relu(a)); };
  EXPECT_LT(MaxGradCheckError(loss, {&a}), kTol);
}

TEST(AutogradTest, TanhBackward) {
  Rng rng(6);
  Variable a = Leaf(Tensor::Normal(Shape{8}, 0, 1, &rng));
  auto loss = [&] { return ag::Sum(ag::Tanh(a)); };
  EXPECT_LT(MaxGradCheckError(loss, {&a}), kTol);
}

TEST(AutogradTest, SigmoidBackward) {
  Rng rng(7);
  Variable a = Leaf(Tensor::Normal(Shape{8}, 0, 1, &rng));
  auto loss = [&] { return ag::Sum(ag::Sigmoid(a)); };
  EXPECT_LT(MaxGradCheckError(loss, {&a}), kTol);
}

TEST(AutogradTest, MatMulBackward) {
  Rng rng(8);
  Variable a = Leaf(Tensor::Normal(Shape{3, 4}, 0, 1, &rng));
  Variable b = Leaf(Tensor::Normal(Shape{4, 2}, 0, 1, &rng));
  auto loss = [&] { return ag::Sum(ag::MatMul(a, b)); };
  EXPECT_LT(MaxGradCheckError(loss, {&a, &b}), kTol);
}

TEST(AutogradTest, AddRowBroadcastBackward) {
  Rng rng(9);
  Variable x = Leaf(Tensor::Normal(Shape{3, 4}, 0, 1, &rng));
  Variable b = Leaf(Tensor::Normal(Shape{4}, 0, 1, &rng));
  auto loss = [&] { return ag::Sum(ag::AddRowBroadcast(x, b)); };
  EXPECT_LT(MaxGradCheckError(loss, {&x, &b}), kTol);
}

TEST(AutogradTest, ReshapeBackward) {
  Rng rng(10);
  Variable x = Leaf(Tensor::Normal(Shape{2, 6}, 0, 1, &rng));
  auto loss = [&] {
    return ag::Sum(ag::Tanh(ag::Reshape(x, Shape{3, 4})));
  };
  EXPECT_LT(MaxGradCheckError(loss, {&x}), kTol);
}

TEST(AutogradTest, SliceColsBackward) {
  Rng rng(11);
  Variable x = Leaf(Tensor::Normal(Shape{3, 6}, 0, 1, &rng));
  auto loss = [&] {
    Variable left = ag::SliceCols(x, 0, 2);
    Variable right = ag::SliceCols(x, 4, 6);
    return ag::Add(ag::Sum(ag::Tanh(left)), ag::Sum(ag::Mul(right, right)));
  };
  EXPECT_LT(MaxGradCheckError(loss, {&x}), kTol);
}

TEST(AutogradTest, ConcatRowsBackward) {
  Rng rng(12);
  Variable a = Leaf(Tensor::Normal(Shape{2, 3}, 0, 1, &rng));
  Variable b = Leaf(Tensor::Normal(Shape{3, 3}, 0, 1, &rng));
  auto loss = [&] { return ag::Sum(ag::Tanh(ag::ConcatRows(a, b))); };
  EXPECT_LT(MaxGradCheckError(loss, {&a, &b}), kTol);
}

TEST(AutogradTest, MeanBackward) {
  Rng rng(13);
  Variable x = Leaf(Tensor::Normal(Shape{4, 4}, 0, 1, &rng));
  auto loss = [&] { return ag::Mean(ag::Mul(x, x)); };
  EXPECT_LT(MaxGradCheckError(loss, {&x}), kTol);
}

TEST(AutogradTest, MeanRowsBackward) {
  Rng rng(14);
  Variable x = Leaf(Tensor::Normal(Shape{5, 3}, 0, 1, &rng));
  Tensor target = Tensor::Normal(Shape{3}, 0, 1, &rng);
  auto loss = [&] {
    return ag::SquaredDistanceToConst(ag::MeanRows(x), target);
  };
  EXPECT_LT(MaxGradCheckError(loss, {&x}), kTol);
}

TEST(AutogradTest, SquaredNormBackward) {
  Rng rng(15);
  Variable x = Leaf(Tensor::Normal(Shape{7}, 0, 1, &rng));
  auto loss = [&] { return ag::SquaredNorm(x); };
  EXPECT_LT(MaxGradCheckError(loss, {&x}), kTol);
}

TEST(AutogradTest, GatherRowsBackward) {
  Rng rng(16);
  Variable table = Leaf(Tensor::Normal(Shape{5, 3}, 0, 1, &rng));
  const std::vector<int> ids{0, 2, 2, 4};
  auto loss = [&] { return ag::Sum(ag::Tanh(ag::GatherRows(table, ids))); };
  EXPECT_LT(MaxGradCheckError(loss, {&table}), kTol);
}

TEST(AutogradTest, Conv2dBackwardThroughOp) {
  Rng rng(17);
  Conv2dSpec spec{.in_channels = 1, .out_channels = 2, .kernel = 3,
                  .stride = 1, .pad = 1};
  Variable x = Leaf(Tensor::Normal(Shape{1, 1, 4, 4}, 0, 1, &rng));
  Variable w = Leaf(Tensor::Normal(Shape{2, 9}, 0, 0.5f, &rng));
  Variable b = Leaf(Tensor::Normal(Shape{2}, 0, 0.5f, &rng));
  auto loss = [&] { return ag::Sum(ag::Tanh(ag::Conv2d(x, w, b, spec))); };
  EXPECT_LT(MaxGradCheckError(loss, {&x, &w, &b}, 5e-3), 0.1);
}

TEST(AutogradTest, MaxPoolBackwardThroughOp) {
  // Distinct values so the argmax is stable under the FD perturbation.
  Tensor t(Shape{1, 1, 4, 4});
  for (int64_t i = 0; i < 16; ++i) t.at(i) = static_cast<float>(i) * 0.37f;
  Variable x = Leaf(std::move(t));
  auto loss = [&] { return ag::Sum(ag::MaxPool2x2(x)); };
  EXPECT_LT(MaxGradCheckError(loss, {&x}), kTol);
}

TEST(AutogradTest, SoftmaxCrossEntropyBackward) {
  Rng rng(18);
  Variable logits = Leaf(Tensor::Normal(Shape{4, 5}, 0, 1, &rng));
  const std::vector<int> labels{1, 0, 4, 2};
  auto loss = [&] { return ag::SoftmaxCrossEntropy(logits, labels); };
  EXPECT_LT(MaxGradCheckError(loss, {&logits}), kTol);
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // y = x used twice: d(sum(x*x + x*x))/dx = 4x.
  Variable x = Leaf(Tensor(Shape{3}, {1, 2, 3}));
  Variable doubled = ag::Add(ag::Mul(x, x), ag::Mul(x, x));
  Variable loss = ag::Sum(doubled);
  loss.Backward();
  EXPECT_TRUE(AllClose(x.grad(), Tensor(Shape{3}, {4, 8, 12}), 1e-5f));
}

TEST(AutogradTest, BackwardAccumulatesAcrossCalls) {
  Variable x = Leaf(Tensor(Shape{2}, {1, 1}));
  ag::Sum(x).Backward();
  ag::Sum(x).Backward();
  EXPECT_TRUE(AllClose(x.grad(), Tensor(Shape{2}, {2, 2}), 1e-6f));
  x.ZeroGrad();
  EXPECT_TRUE(AllClose(x.grad(), Tensor(Shape{2}), 1e-6f));
}

TEST(AutogradTest, NoGradLeavesStayEmpty) {
  Variable x(Tensor(Shape{2}, {1, 2}), /*requires_grad=*/false);
  Variable y = Leaf(Tensor(Shape{2}, {3, 4}));
  Variable loss = ag::Sum(ag::Mul(x, y));
  loss.Backward();
  EXPECT_FALSE(x.has_grad());
  EXPECT_TRUE(y.has_grad());
}

TEST(AutogradTest, DeepChainDoesNotOverflow) {
  Variable x = Leaf(Tensor(Shape{4}, {0.1f, 0.2f, 0.3f, 0.4f}));
  Variable h = x;
  for (int i = 0; i < 2000; ++i) h = ag::Scale(h, 1.0f);
  Variable loss = ag::Sum(h);
  loss.Backward();
  EXPECT_TRUE(AllClose(x.grad(), Tensor(Shape{4}, {1, 1, 1, 1}), 1e-4f));
}

TEST(AutogradTest, CompositeExpressionGradcheck) {
  Rng rng(19);
  Variable a = Leaf(Tensor::Normal(Shape{3, 4}, 0, 0.5f, &rng));
  Variable b = Leaf(Tensor::Normal(Shape{4, 3}, 0, 0.5f, &rng));
  auto loss = [&] {
    Variable prod = ag::MatMul(a, b);               // [3,3]
    Variable act = ag::Sigmoid(ag::Tanh(prod));     // [3,3]
    return ag::Mean(ag::Mul(act, act));
  };
  EXPECT_LT(MaxGradCheckError(loss, {&a, &b}), kTol);
}

}  // namespace
}  // namespace rfed
