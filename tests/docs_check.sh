#!/usr/bin/env bash
# docs_check.sh <repo_root> <experiment_cli_binary> [build_dir]
#               [rfed_server_binary] [rfed_worker_binary]
#
# Seven stale-documentation tripwires, run as `ctest -L docs`:
#   1. Every relative markdown link in README.md and docs/*.md must
#      resolve to an existing file or directory.
#   2. Every `--flag` token mentioned in docs/REPRODUCING.md,
#      docs/OBSERVABILITY.md and docs/PERFORMANCE.md must appear in
#      `experiment_cli --help` (modulo a short whitelist of
#      cmake/ctest/bench flags the docs quote).
#   3. Every `ctest -L <label>` invocation quoted in README.md or
#      docs/*.md must name a label registered in the build's test
#      registry (`ctest --print-labels`), so docs cannot advertise a
#      label that silently matches zero tests.
#   4. When the serve binaries are passed, every `--flag` token in
#      docs/DEPLOYMENT.md must appear in `rfed_server --help` or
#      `rfed_worker --help`.
#   5. Every `BENCH_*.json` filename mentioned in README.md, docs/*.md
#      or EXPERIMENTS.md must exist at the repo root (benches commit
#      their JSON; docs must not advertise files nothing generates).
#   6. Every `kernel.*`, `autograd.*` or `serve.*` metric name mentioned
#      in README.md or docs/*.md must appear as a string literal
#      somewhere under src/, so the metrics tables cannot document
#      counters nothing records.
#   7. Every page under docs/ must be reachable: its filename must be
#      mentioned by README.md or by another docs page, so a new doc
#      cannot be merged as an orphan nobody can discover.
set -u

root="${1:?usage: docs_check.sh <repo_root> <experiment_cli>}"
cli="${2:?usage: docs_check.sh <repo_root> <experiment_cli>}"
build="${3:-}"
server_bin="${4:-}"
worker_bin="${5:-}"
failures=0

fail() {
  echo "docs_check: $*" >&2
  failures=$((failures + 1))
}

# ---- 1. Dead relative links ----
for doc in "$root"/README.md "$root"/docs/*.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # Markdown inline links: capture the (target) part of [text](target).
  grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//' |
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"        # strip fragment
    path="${path%% *}"          # strip optional link title
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$root/$path" ]; then
      echo "DEADLINK $doc -> $target"
    fi
  done
done > /tmp/docs_check_links.$$ 2>&1
if [ -s /tmp/docs_check_links.$$ ]; then
  cat /tmp/docs_check_links.$$ >&2
  fail "dead relative links found"
fi
rm -f /tmp/docs_check_links.$$

# ---- 2. Stale flag names ----
help_out=$("$cli" --help 2>&1) || fail "experiment_cli --help exited nonzero"
# Flags the docs legitimately mention that belong to other tools.
whitelist="--help --build --output-on-failure --label-regex --test-dir --smoke --min_ms --out"

for doc in "$root"/docs/REPRODUCING.md "$root"/docs/OBSERVABILITY.md \
           "$root"/docs/PERFORMANCE.md; do
  [ -f "$doc" ] || { fail "missing $doc"; continue; }
  for flag in $(grep -oE '\-\-[a-z][a-z0-9_-]*' "$doc" | sort -u); do
    case " $whitelist " in *" $flag "*) continue ;; esac
    if ! printf '%s\n' "$help_out" | grep -q -- "$flag"; then
      fail "$doc mentions $flag, absent from experiment_cli --help"
    fi
  done
done

# ---- 3. Stale ctest labels ----
if [ -n "$build" ]; then
  labels=$(ctest --test-dir "$build" --print-labels 2>/dev/null |
           sed -n 's/^  *//p')
  if [ -z "$labels" ]; then
    fail "ctest --print-labels returned no labels for $build"
  fi
  for doc in "$root"/README.md "$root"/docs/*.md; do
    [ -f "$doc" ] || continue
    for label in $(grep -oE 'ctest [^`)]*-L +[A-Za-z0-9_-]+' "$doc" |
                   sed -E 's/.*-L +//' | sort -u); do
      if ! printf '%s\n' "$labels" | grep -qx "$label"; then
        fail "$doc mentions 'ctest -L $label', not a registered test label"
      fi
    done
  done
fi

# ---- 4. Stale deployment flags ----
if [ -n "$server_bin" ] && [ -n "$worker_bin" ]; then
  serve_help=$("$server_bin" --help 2>&1) ||
    fail "rfed_server --help exited nonzero"
  serve_help="$serve_help
$("$worker_bin" --help 2>&1)" || fail "rfed_worker --help exited nonzero"
  doc="$root/docs/DEPLOYMENT.md"
  if [ ! -f "$doc" ]; then
    fail "missing $doc"
  else
    for flag in $(grep -oE '\-\-[a-z][a-z0-9_-]*' "$doc" | sort -u); do
      case " $whitelist " in *" $flag "*) continue ;; esac
      if ! printf '%s\n' "$serve_help" | grep -q -- "$flag"; then
        fail "$doc mentions $flag, absent from rfed_server/rfed_worker --help"
      fi
    done
  fi
fi

# ---- 5. Bench JSON files the docs advertise ----
for doc in "$root"/README.md "$root"/EXPERIMENTS.md "$root"/docs/*.md; do
  [ -f "$doc" ] || continue
  for json in $(grep -oE 'BENCH_[A-Za-z0-9_]+\.json' "$doc" | sort -u); do
    if [ ! -f "$root/$json" ]; then
      fail "$doc mentions $json, absent from the repo root"
    fi
  done
done

# ---- 6. kernel.* / autograd.* / serve.* metric names the docs document ----
for doc in "$root"/README.md "$root"/docs/*.md; do
  [ -f "$doc" ] || continue
  # Require a non-identifier prefix so BENCH_autograd.json and
  # FlConfig::autograd.checkpoint do not read as metric names.
  for metric in $(grep -oE '(^|[^A-Za-z0-9_:])(kernel|autograd|serve)\.[a-z_]+(\.[a-z_]+)*' "$doc" |
                  sed -E 's/^[^kas]//' | sort -u); do
    if ! grep -rqF "\"$metric\"" "$root/src"; then
      fail "$doc documents metric $metric, never recorded under src/"
    fi
  done
done

# ---- 7. Orphaned docs pages ----
for doc in "$root"/docs/*.md; do
  [ -f "$doc" ] || continue
  base=$(basename "$doc")
  linked=0
  for other in "$root"/README.md "$root"/docs/*.md; do
    [ -f "$other" ] || continue
    [ "$other" = "$doc" ] && continue
    if grep -qF "$base" "$other"; then
      linked=1
      break
    fi
  done
  if [ "$linked" -eq 0 ]; then
    fail "docs/$base is linked from neither README.md nor any other doc"
  fi
done

if [ "$failures" -gt 0 ]; then
  echo "docs_check: FAILED ($failures problem(s))" >&2
  exit 1
fi
echo "docs_check: OK"
