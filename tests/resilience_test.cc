// Adversarial-client and robust-aggregation suite: the seeded fault
// models of fl/adversary.h, the aggregation rules and validation screen
// of fl/robust_agg.h, and their end-to-end behavior through the training
// loop (quarantine metrics, per-client rejection reputation, and the
// clean-run bit-identity guarantee of the defaults).

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/adversary.h"
#include "fl/fedavg.h"
#include "fl/robust_agg.h"
#include "fl/scaffold.h"
#include "fl/selection.h"
#include "fl/trainer.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace rfed {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

// ---- robust_agg unit tests ----

TEST(RobustAggTest, AllFiniteDetectsNanAndInf) {
  EXPECT_TRUE(AllFinite(Tensor(Shape{3}, {1.0f, -2.0f, 0.0f})));
  EXPECT_FALSE(AllFinite(Tensor(Shape{3}, {1.0f, kNan, 0.0f})));
  EXPECT_FALSE(AllFinite(Tensor(Shape{3}, {1.0f, -2.0f, kInf})));
  EXPECT_FALSE(AllFinite(Tensor(Shape{2}, {-kInf, 0.0f})));
}

TEST(RobustAggTest, TrimmedMeanDropsOutliers) {
  std::vector<Tensor> values;
  for (float v : {0.0f, 1.0f, 2.0f, 3.0f, 1000.0f}) {
    values.push_back(Tensor(Shape{1}, {v}));
  }
  std::vector<double> weights(5, 1.0);
  // floor(0.2 * 5) = 1 off each end: mean of {1, 2, 3}.
  Tensor out = CoordinateTrimmedMean(values, weights, 0.2);
  EXPECT_FLOAT_EQ(out.at(0), 2.0f);
}

TEST(RobustAggTest, TrimmedMeanIsPerCoordinate) {
  // The outlier owner differs per coordinate; the trim must sort each
  // coordinate independently, not drop whole updates.
  std::vector<Tensor> values = {
      Tensor(Shape{2}, {900.0f, 1.0f}),
      Tensor(Shape{2}, {1.0f, 2.0f}),
      Tensor(Shape{2}, {2.0f, 3.0f}),
      Tensor(Shape{2}, {3.0f, 900.0f}),
      Tensor(Shape{2}, {-900.0f, 0.0f}),
  };
  std::vector<double> weights(5, 1.0);
  Tensor out = CoordinateTrimmedMean(values, weights, 0.2);
  EXPECT_FLOAT_EQ(out.at(0), 2.0f);  // mean of {1, 2, 3}
  EXPECT_FLOAT_EQ(out.at(1), 2.0f);  // mean of {1, 2, 3}
}

TEST(RobustAggTest, TrimmedMeanZeroWeightFallsBackToUnweighted) {
  std::vector<Tensor> values = {Tensor(Shape{1}, {1.0f}),
                                Tensor(Shape{1}, {2.0f}),
                                Tensor(Shape{1}, {6.0f})};
  std::vector<double> weights(3, 0.0);
  Tensor out = CoordinateTrimmedMean(values, weights, 0.0);
  EXPECT_FLOAT_EQ(out.at(0), 3.0f);
}

TEST(RobustAggTest, CoordinateMedianRespectsWeights) {
  std::vector<Tensor> values = {Tensor(Shape{1}, {0.0f}),
                                Tensor(Shape{1}, {10.0f}),
                                Tensor(Shape{1}, {20.0f})};
  // Unweighted: the middle value.
  Tensor unweighted = CoordinateMedian(values, {1.0, 1.0, 1.0});
  EXPECT_FLOAT_EQ(unweighted.at(0), 10.0f);
  // A dominant weight pulls the median onto its value.
  Tensor weighted = CoordinateMedian(values, {1.0, 1.0, 10.0});
  EXPECT_FLOAT_EQ(weighted.at(0), 20.0f);
}

TEST(RobustAggTest, NormBoundedMeanClipsTheOutlier) {
  Tensor reference(Shape{2});  // zeros
  std::vector<Tensor> values = {Tensor(Shape{2}, {1.0f, 0.0f}),
                                Tensor(Shape{2}, {0.0f, 1.0f}),
                                Tensor(Shape{2}, {100.0f, 0.0f})};
  std::vector<double> weights(3, 1.0);
  NormClipReport report;
  Tensor out = NormBoundedMean(reference, values, weights, 3.0, &report);
  EXPECT_EQ(report.clipped, 1);
  EXPECT_DOUBLE_EQ(report.median_norm, 1.0);
  EXPECT_DOUBLE_EQ(report.bound, 3.0);
  ASSERT_EQ(report.norms.size(), 3u);
  EXPECT_DOUBLE_EQ(report.norms[2], 100.0);
  // (1,0)/3 + (0,1)/3 + clipped (3,0)/3.
  EXPECT_NEAR(out.at(0), 4.0 / 3.0, 1e-6);
  EXPECT_NEAR(out.at(1), 1.0 / 3.0, 1e-6);
}

// ---- adversary unit tests ----

TEST(AdversaryTest, SelectionIsSeededAndSized) {
  AdversaryOptions options;
  options.mode = "sign_flip";
  options.fraction = 0.2;
  Adversary a(options, 99, 10);
  Adversary b(options, 99, 10);
  EXPECT_EQ(a.num_adversarial(), 2);
  int count = 0;
  for (int k = 0; k < 10; ++k) {
    EXPECT_EQ(a.IsAdversarial(k), b.IsAdversarial(k)) << k;
    if (a.IsAdversarial(k)) ++count;
  }
  EXPECT_EQ(count, 2);
  // A different seed lineage picks a different set eventually; at the
  // very least the adversary count stays pinned.
  Adversary c(options, 100, 10);
  EXPECT_EQ(c.num_adversarial(), 2);
}

TEST(AdversaryTest, DisabledModeCorruptsNothing) {
  Adversary off(AdversaryOptions{}, 7, 4);
  EXPECT_EQ(off.num_adversarial(), 0);
  EXPECT_FALSE(off.CorruptsUpdates());
  EXPECT_FALSE(off.CorruptsLabels());
  Tensor trained(Shape{2}, {1.0f, 2.0f});
  Tensor out = off.CorruptUpdate(0, 0, Tensor(Shape{2}), trained);
  EXPECT_FLOAT_EQ(out.at(0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(1), 2.0f);
}

TEST(AdversaryTest, SignFlipNegatesTheDelta) {
  AdversaryOptions options;
  options.mode = "sign_flip";
  options.fraction = 1.0;  // everyone misbehaves
  Adversary adv(options, 5, 3);
  Tensor global(Shape{2}, {1.0f, 2.0f});
  Tensor trained(Shape{2}, {2.0f, 4.0f});
  Tensor out = adv.CorruptUpdate(1, 0, global, trained);
  // 2 w_t - y_k.
  EXPECT_FLOAT_EQ(out.at(0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1), 0.0f);
}

TEST(AdversaryTest, NanEmitterIsNonFiniteEverywhere) {
  AdversaryOptions options;
  options.mode = "nan";
  options.fraction = 1.0;
  Adversary adv(options, 5, 2);
  Tensor trained(Shape{4}, {1.0f, 2.0f, 3.0f, 4.0f});
  Tensor out = adv.CorruptUpdate(0, 3, Tensor(Shape{4}), trained);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_FALSE(std::isfinite(out.at(i))) << i;
  }
}

TEST(AdversaryTest, NoiseIsKeyedPerClientAndRound) {
  AdversaryOptions options;
  options.mode = "noise";
  options.fraction = 1.0;
  options.noise_sigma = 0.5;
  Adversary adv(options, 11, 2);
  Tensor global(Shape{3});
  Tensor trained(Shape{3}, {1.0f, 2.0f, 3.0f});
  Tensor first = adv.CorruptUpdate(1, 4, global, trained);
  Tensor again = adv.CorruptUpdate(1, 4, global, trained);
  Tensor other_round = adv.CorruptUpdate(1, 5, global, trained);
  bool differs = false;
  for (int64_t i = 0; i < first.size(); ++i) {
    EXPECT_FLOAT_EQ(first.at(i), again.at(i)) << i;  // replayable
    EXPECT_NE(first.at(i), trained.at(i)) << i;      // actually perturbs
    if (first.at(i) != other_round.at(i)) differs = true;
  }
  EXPECT_TRUE(differs);  // fresh draw each round
}

TEST(AdversaryTest, LabelFlipRemapsOnlyAdversarialClients) {
  AdversaryOptions options;
  options.mode = "label_flip";
  options.fraction = 0.5;
  Adversary adv(options, 13, 2);
  EXPECT_TRUE(adv.CorruptsLabels());
  EXPECT_FALSE(adv.CorruptsUpdates());
  const int bad = adv.IsAdversarial(0) ? 0 : 1;
  std::vector<int> labels = {0, 1, 2};
  adv.CorruptLabels(bad, &labels, 3);
  EXPECT_EQ(labels, (std::vector<int>{2, 1, 0}));
  std::vector<int> honest = {0, 1, 2};
  adv.CorruptLabels(1 - bad, &honest, 3);
  EXPECT_EQ(honest, (std::vector<int>{0, 1, 2}));
}

// ---- selection satellite: non-finite losses are counted, not masked ----

TEST(SelectionTest, NonFiniteLossesIncrementTheCounter) {
  obs::Counter* counter =
      obs::MetricsRegistry::Get().GetCounter("fl.nonfinite_loss");
  const int64_t before = counter->value();
  std::vector<double> losses = {std::nan(""), 1.0, 2.0,
                                std::numeric_limits<double>::infinity()};
  Rng rng(3);
  std::vector<int> picked = LossProportionalSelection(losses, 2, &rng);
  EXPECT_EQ(picked.size(), 2u);
  EXPECT_EQ(counter->value() - before, 2);
}

// ---- end-to-end attacks through the training loop ----

struct AttackFixture {
  AttackFixture()
      : rng(42),
        data(GenerateImageData(MnistLikeProfile(), 150, 50, &rng)),
        split(SimilarityPartition(data.train, 5, 0.5, &rng)) {
    for (auto& idx : split.client_indices) views.push_back({idx, {}});
    CnnConfig mc;
    mc.conv1_channels = 2;
    mc.conv2_channels = 4;
    mc.feature_dim = 8;
    factory = MakeCnnFactory(mc);
  }
  Rng rng;
  SyntheticImageData data;
  ClientSplit split;
  std::vector<ClientView> views;
  ModelFactory factory;
};

FlConfig AttackConfig() {
  FlConfig config;
  config.local_steps = 2;
  config.batch_size = 8;
  config.lr = 0.05;
  config.seed = 21;
  config.max_examples_per_pass = 64;
  return config;
}

TEST(AttackTest, NanEmittersAreQuarantinedAndTrainingStaysFinite) {
  AttackFixture fx;
  FlConfig config = AttackConfig();
  config.adversary.mode = "nan";
  config.adversary.fraction = 0.4;  // 2 of 5 clients
  obs::Counter* quarantined =
      obs::MetricsRegistry::Get().GetCounter("fl.quarantined_updates");
  const int64_t before = quarantined->value();

  FedAvg algo(config, &fx.data.train, fx.views, fx.factory);
  for (int r = 0; r < 3; ++r) algo.RunRound(r);

  for (int64_t i = 0; i < algo.global_state().size(); ++i) {
    ASSERT_TRUE(std::isfinite(algo.global_state().at(i)));
  }
  // Both emitters rejected in each of the 3 rounds.
  EXPECT_EQ(quarantined->value() - before, 6);
  // The rejection reputation blames exactly the adversarial clients.
  for (int k = 0; k < 5; ++k) {
    if (algo.adversary().IsAdversarial(k)) {
      EXPECT_EQ(algo.rejection_counts()[static_cast<size_t>(k)], 3) << k;
    } else {
      EXPECT_EQ(algo.rejection_counts()[static_cast<size_t>(k)], 0) << k;
    }
  }
}

TEST(AttackTest, ScaffoldSurvivesNanEmitters) {
  // The validation screen runs before OnClientTrained, so a NaN update
  // never reaches SCAFFOLD's control-variate refresh.
  AttackFixture fx;
  FlConfig config = AttackConfig();
  config.adversary.mode = "nan";
  config.adversary.fraction = 0.4;
  Scaffold algo(config, &fx.data.train, fx.views, fx.factory);
  for (int r = 0; r < 3; ++r) algo.RunRound(r);
  for (int64_t i = 0; i < algo.global_state().size(); ++i) {
    ASSERT_TRUE(std::isfinite(algo.global_state().at(i)));
  }
}

TEST(AttackTest, NormClipBoundsTheScaleAttack) {
  FlConfig attacked = AttackConfig();
  attacked.adversary.mode = "scale";
  attacked.adversary.fraction = 0.2;  // 1 of 5
  attacked.adversary.scale = 50.0;

  obs::Counter* clipped =
      obs::MetricsRegistry::Get().GetCounter("fl.clipped_updates");
  const int64_t before = clipped->value();

  // The attack-free reference trajectory (same seeds everywhere).
  FlConfig clean = AttackConfig();
  AttackFixture clean_fx;
  FedAvg clean_algo(clean, &clean_fx.data.train, clean_fx.views,
                    clean_fx.factory);
  for (int r = 0; r < 3; ++r) clean_algo.RunRound(r);

  // Plain mean absorbs the boosted update in full...
  AttackFixture mean_fx;
  FedAvg mean_algo(attacked, &mean_fx.data.train, mean_fx.views,
                   mean_fx.factory);
  for (int r = 0; r < 3; ++r) mean_algo.RunRound(r);

  // ...while the norm bound caps it at 3x the median honest delta.
  FlConfig defended = attacked;
  defended.robust.aggregator = "norm_clip";
  AttackFixture clip_fx;
  FedAvg clip_algo(defended, &clip_fx.data.train, clip_fx.views,
                   clip_fx.factory);
  for (int r = 0; r < 3; ++r) clip_algo.RunRound(r);

  EXPECT_GT(clipped->value() - before, 0);
  for (int64_t i = 0; i < clip_algo.global_state().size(); ++i) {
    ASSERT_TRUE(std::isfinite(clip_algo.global_state().at(i)));
  }
  // The defended model stays far closer to the clean trajectory than the
  // undefended one (the attacker's delta is 50x an honest step).
  Tensor mean_err = mean_algo.global_state();
  mean_err.SubInPlace(clean_algo.global_state());
  Tensor clip_err = clip_algo.global_state();
  clip_err.SubInPlace(clean_algo.global_state());
  EXPECT_GT(mean_err.SquaredNorm(), 4.0f * clip_err.SquaredNorm());
}

TEST(AttackTest, TrimmedMeanTrainsThroughSignFlip) {
  AttackFixture fx;
  FlConfig config = AttackConfig();
  config.adversary.mode = "sign_flip";
  config.adversary.fraction = 0.2;
  config.robust.aggregator = "trimmed_mean";
  FedAvg algo(config, &fx.data.train, fx.views, fx.factory);
  TrainerOptions options;
  options.eval_max_examples = 50;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  RunHistory history = trainer.Run(6);
  ASSERT_EQ(history.rounds.size(), 6u);
  EXPECT_TRUE(std::isfinite(history.rounds.back().train_loss));
  // Loss still goes down despite the gradient-ascent client.
  EXPECT_LT(history.rounds.back().train_loss,
            history.rounds.front().train_loss);
}

TEST(AttackTest, LabelFlipPoisonsDataNotUpdates) {
  AttackFixture fx;
  FlConfig config = AttackConfig();
  config.adversary.mode = "label_flip";
  config.adversary.fraction = 0.4;
  FedAvg algo(config, &fx.data.train, fx.views, fx.factory);
  for (int r = 0; r < 3; ++r) algo.RunRound(r);
  EXPECT_EQ(algo.adversary().num_adversarial(), 2);
  // The updates themselves are honest floats: nothing to quarantine.
  for (int64_t c : algo.rejection_counts()) EXPECT_EQ(c, 0);
  for (int64_t i = 0; i < algo.global_state().size(); ++i) {
    ASSERT_TRUE(std::isfinite(algo.global_state().at(i)));
  }
}

TEST(AttackTest, DefaultsAreBitIdenticalToUndefendedRun) {
  // validate=true screens but never alters finite updates, and the mean
  // aggregation path is byte-for-byte the pre-defense loop: a clean run
  // must not move at all.
  AttackFixture fx_a;
  FedAvg defended(AttackConfig(), &fx_a.data.train, fx_a.views, fx_a.factory);
  FlConfig off = AttackConfig();
  off.robust.validate = false;
  AttackFixture fx_b;
  FedAvg undefended(off, &fx_b.data.train, fx_b.views, fx_b.factory);
  for (int r = 0; r < 3; ++r) {
    defended.RunRound(r);
    undefended.RunRound(r);
  }
  ASSERT_EQ(defended.global_state().size(), undefended.global_state().size());
  for (int64_t i = 0; i < defended.global_state().size(); ++i) {
    ASSERT_EQ(defended.global_state().at(i), undefended.global_state().at(i))
        << i;
  }
}

}  // namespace
}  // namespace rfed
