// Tape / arena test suite: the bit-identity contracts of the
// arena-backed autograd (autograd/tape.h, tensor/buffer_pool.h) and the
// fused ops. Everything here asserts *exact* float equality, not
// closeness — static-graph replay, gradient checkpointing and the fused
// linear+bias+relu epilogue all promise byte-identical results, and any
// drift is a bug (see docs/AUTOGRAD.md for the contracts).
//
// The pool's leak behavior is covered by running this suite under the
// ASan/TSan configurations (RFED_SANITIZE=address|thread): donated
// buffers that outlive their scope or double-recycles trip the
// sanitizers immediately.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "data/synthetic_text.h"
#include "fl/fedavg.h"
#include "fl/trainer.h"
#include "nn/loss.h"
#include "nn/models.h"
#include "tensor/buffer_pool.h"
#include "test_util.h"
#include "util/rng.h"

namespace rfed {
namespace {

using ::rfed::testing::MaxGradCheckError;

constexpr double kTol = 5e-2;  // float32 kernels vs double finite diffs

Variable Leaf(Tensor t) { return Variable(std::move(t), true); }

void ExpectBitEqual(const Tensor& a, const Tensor& b,
                    const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.at(i), b.at(i)) << what << " element " << i;
  }
}

// ---- Fused linear+bias+relu ----

TEST(FusedOpsTest, LinearBiasReluMatchesComposedChainBitwise) {
  Rng rng(101);
  Tensor xt = Tensor::Normal(Shape{5, 7}, 0, 1, &rng);
  Tensor wt = Tensor::Normal(Shape{7, 4}, 0, 0.5f, &rng);
  Tensor bt = Tensor::Normal(Shape{4}, 0, 0.5f, &rng);

  Variable x1 = Leaf(xt), w1 = Leaf(wt), b1 = Leaf(bt);
  Variable fused = ag::LinearBiasRelu(x1, w1, b1);
  ag::Sum(fused).Backward();

  Variable x2 = Leaf(xt), w2 = Leaf(wt), b2 = Leaf(bt);
  Variable chain =
      ag::Relu(ag::AddRowBroadcast(ag::MatMul(x2, w2), b2));
  ag::Sum(chain).Backward();

  ExpectBitEqual(fused.value(), chain.value(), "forward");
  ExpectBitEqual(x1.grad(), x2.grad(), "dx");
  ExpectBitEqual(w1.grad(), w2.grad(), "dw");
  ExpectBitEqual(b1.grad(), b2.grad(), "db");
}

TEST(FusedOpsTest, LinearBiasReluGradcheck) {
  // Fixed values whose pre-activations sit away from the relu kink so
  // central finite differences are valid.
  Variable x = Leaf(Tensor(Shape{2, 3}, {0.5f, -1.0f, 2.0f,
                                         -0.5f, 1.5f, -2.0f}));
  Variable w = Leaf(Tensor(Shape{3, 2}, {1.0f, -0.5f,
                                         0.5f, 1.0f,
                                         -1.0f, 0.5f}));
  Variable b = Leaf(Tensor(Shape{2}, {0.3f, -0.4f}));
  auto loss = [&] { return ag::Sum(ag::LinearBiasRelu(x, w, b)); };
  EXPECT_LT(MaxGradCheckError(loss, {&x, &w, &b}), kTol);
}

// ---- BufferPool arena ----

TEST(BufferPoolTest, RecyclesExactCapacityWithinScope) {
  const int64_t hits_before = BufferPool::ThreadHitCount();
  BufferPool::Scope scope;
  { Tensor dies(Shape{33}); }  // donated to the capacity-33 bucket
  Tensor reused(Shape{33});    // freelist hit, zero heap traffic
  EXPECT_EQ(BufferPool::ThreadHitCount(), hits_before + 1);
  EXPECT_EQ(reused.size(), 33);
  for (int64_t i = 0; i < reused.size(); ++i) {
    ASSERT_EQ(reused.at(i), 0.0f) << "recycled content leaked through";
  }
}

TEST(BufferPoolTest, EscapedTensorAccountingBalances) {
  // A pooled tensor moved out of its scope must still subtract its bytes
  // from the outstanding counter when it finally dies, or
  // autograd.tape_peak_bytes would drift up forever.
  BufferPool::ResetPeak();
  const int64_t baseline = BufferPool::PeakBytes();
  Tensor escaped;
  {
    BufferPool::Scope scope;
    escaped = Tensor(Shape{64}, 1.0f);
  }
  escaped = Tensor();  // dies outside any scope
  BufferPool::ResetPeak();
  EXPECT_EQ(BufferPool::PeakBytes(), baseline);
}

TEST(BufferPoolTest, PeakTracksLiveBytesInScope) {
  BufferPool::ResetPeak();
  const int64_t baseline = BufferPool::PeakBytes();
  {
    BufferPool::Scope scope;
    Tensor a(Shape{100});  // 400 bytes live
    Tensor b(Shape{50});   // 600 bytes live -> peak
  }
  EXPECT_GE(BufferPool::PeakBytes(), baseline + 600);
}

// ---- Static-graph replay and checkpointing, direct session level ----

Batch FixedTokenBatch(int batch, int steps, int vocab, uint64_t seed) {
  Rng rng(seed);
  Batch b;
  b.tokens.resize(static_cast<size_t>(batch));
  for (auto& seq : b.tokens) {
    seq.resize(static_cast<size_t>(steps));
    for (int& id : seq) {
      id = static_cast<int>(rng.Uniform(0, 1) * vocab) % vocab;
    }
    b.labels.push_back(static_cast<int>(rng.Uniform(0, 1) * 2) % 2);
  }
  return b;
}

/// Runs `steps` local steps of the LSTM model under one TapeSession and
/// returns the per-step loss plus final flattened parameter grads.
struct SessionTrace {
  std::vector<float> losses;
  std::vector<Tensor> grads;  ///< one per parameter, final step
};

SessionTrace RunLstmSession(const ag::TapeOptions& opts,
                            const std::vector<Batch>& batches) {
  Rng rng(4242);
  LstmConfig mc;
  mc.vocab_size = 32;
  mc.embed_dim = 4;
  mc.hidden_dim = 8;
  mc.feature_dim = 8;
  auto model = std::make_unique<LstmModel>(mc, &rng);

  SessionTrace trace;
  ag::TapeSession session(opts);
  for (const Batch& batch : batches) {
    ag::ReplayBindings bind{nullptr, &batch.tokens, &batch.labels};
    Variable loss;
    if (session.CanReplay(bind)) {
      loss = session.Replay(bind);
    } else {
      session.BeginRecord(bind);
      ModelOutput out = model->Forward(batch);
      loss = CrossEntropyLoss(out.logits, batch.labels);
      session.EndRecord(loss);
    }
    model->ZeroGrad();
    loss.Backward();
    trace.losses.push_back(loss.value().ToScalar());
  }
  for (Variable* p : model->Parameters()) trace.grads.push_back(p->grad());
  return trace;
}

TEST(TapeTest, CheckpointedLstmBpttGradsBitIdenticalToUncheckpointed) {
  std::vector<Batch> batches;
  for (uint64_t s = 0; s < 3; ++s) {
    batches.push_back(FixedTokenBatch(6, 8, 32, 900 + s));
  }
  SessionTrace plain =
      RunLstmSession({/*static_graph=*/true, /*checkpoint=*/false}, batches);
  SessionTrace ckpt =
      RunLstmSession({/*static_graph=*/true, /*checkpoint=*/true}, batches);
  ASSERT_EQ(plain.losses.size(), ckpt.losses.size());
  for (size_t i = 0; i < plain.losses.size(); ++i) {
    EXPECT_EQ(plain.losses[i], ckpt.losses[i]) << "step " << i;
  }
  ASSERT_EQ(plain.grads.size(), ckpt.grads.size());
  for (size_t i = 0; i < plain.grads.size(); ++i) {
    ExpectBitEqual(plain.grads[i], ckpt.grads[i],
                   "grad of parameter " + std::to_string(i));
  }
}

TEST(TapeTest, ReplayGradsBitIdenticalToPerStepRebuild) {
  std::vector<Batch> batches;
  for (uint64_t s = 0; s < 3; ++s) {
    batches.push_back(FixedTokenBatch(6, 8, 32, 700 + s));
  }
  SessionTrace replayed =
      RunLstmSession({/*static_graph=*/true, /*checkpoint=*/false}, batches);
  SessionTrace rebuilt =
      RunLstmSession({/*static_graph=*/false, /*checkpoint=*/false}, batches);
  for (size_t i = 0; i < replayed.losses.size(); ++i) {
    EXPECT_EQ(replayed.losses[i], rebuilt.losses[i]) << "step " << i;
  }
  for (size_t i = 0; i < replayed.grads.size(); ++i) {
    ExpectBitEqual(replayed.grads[i], rebuilt.grads[i],
                   "grad of parameter " + std::to_string(i));
  }
}

TEST(TapeTest, CheckpointingLowersPeakActivationBytes) {
  std::vector<Batch> batches{FixedTokenBatch(8, 16, 32, 55)};
  BufferPool::ResetPeak();
  RunLstmSession({true, /*checkpoint=*/false}, batches);
  const int64_t peak_plain = BufferPool::PeakBytes();
  BufferPool::ResetPeak();
  RunLstmSession({true, /*checkpoint=*/true}, batches);
  const int64_t peak_ckpt = BufferPool::PeakBytes();
  EXPECT_LT(peak_ckpt, peak_plain);
}

TEST(TapeTest, AllocsPerStepReachZeroAfterWarmup) {
  // The headline arena property: once the step-0 graph is recorded and
  // its buffers have cycled through the freelist once, a replayed step
  // performs no heap tensor allocations at all.
  Rng rng(808);
  MlpConfig mc;
  mc.hidden_dim = 16;
  mc.feature_dim = 8;
  auto model = std::make_unique<MlpModel>(mc, &rng);
  Batch batch;
  batch.images = Tensor::Normal(Shape{4, 1, 12, 12}, 0, 1, &rng);
  batch.labels = {1, 3, 5, 7};

  ag::TapeSession session({/*static_graph=*/true, /*checkpoint=*/false});
  std::vector<int64_t> allocs;
  for (int step = 0; step < 6; ++step) {
    const int64_t before = BufferPool::ThreadAllocCount();
    ag::ReplayBindings bind{&batch.images, &batch.tokens, &batch.labels};
    Variable loss;
    if (session.CanReplay(bind)) {
      loss = session.Replay(bind);
    } else {
      session.BeginRecord(bind);
      ModelOutput out = model->Forward(batch);
      loss = CrossEntropyLoss(out.logits, batch.labels);
      session.EndRecord(loss);
    }
    model->ZeroGrad();
    loss.Backward();
    allocs.push_back(BufferPool::ThreadAllocCount() - before);
  }
  EXPECT_EQ(session.rebuilds(), 1);
  EXPECT_EQ(session.reuse_hits(), 5);
  EXPECT_GT(allocs[0], 0);  // recording pays the allocations once
  for (size_t step = 2; step < allocs.size(); ++step) {
    EXPECT_EQ(allocs[step], 0) << "replayed step " << step << " allocated";
  }
}

// ---- Federated byte-identity across execution strategies ----

std::vector<ClientView> ViewsOf(const ClientSplit& split) {
  std::vector<ClientView> views;
  for (const auto& idx : split.client_indices) views.push_back({idx, {}});
  return views;
}

struct FedResult {
  Tensor state;
  std::vector<double> losses;
};

void ExpectSameRun(const FedResult& a, const FedResult& b,
                   const std::string& what) {
  ASSERT_EQ(a.losses.size(), b.losses.size()) << what;
  for (size_t i = 0; i < a.losses.size(); ++i) {
    EXPECT_EQ(a.losses[i], b.losses[i]) << what << " round " << i;
  }
  ExpectBitEqual(a.state, b.state, what + " final state");
}

FedResult RunCnnFederated(bool static_graph, int num_threads) {
  Rng rng(1234);
  auto data = GenerateImageData(MnistLikeProfile(), 240, 120, &rng);
  auto split = SimilarityPartition(data.train, 4, 0.5, &rng);
  CnnConfig mc;
  mc.conv1_channels = 2;
  mc.conv2_channels = 4;
  mc.feature_dim = 8;
  FlConfig config;
  config.local_steps = 3;
  config.batch_size = 8;
  config.lr = 0.05;
  config.seed = 77;
  config.num_threads = num_threads;
  config.max_examples_per_pass = 64;
  config.autograd.static_graph = static_graph;
  FedAvg algo(config, &data.train, ViewsOf(split), MakeCnnFactory(mc));
  TrainerOptions options;
  options.eval_max_examples = 120;
  FederatedTrainer trainer(&algo, &data.test, options);
  RunHistory history = trainer.Run(2);
  FedResult result;
  for (const RoundMetrics& r : history.rounds) {
    result.losses.push_back(r.train_loss);
  }
  result.state = algo.global_state();
  return result;
}

TEST(TapeFederatedTest, StaticGraphOnOffByteIdentical) {
  ExpectSameRun(RunCnnFederated(true, 1), RunCnnFederated(false, 1),
                "static vs rebuilt");
}

TEST(TapeFederatedTest, StaticGraphByteIdenticalAcrossThreadCounts) {
  FedResult base = RunCnnFederated(true, 1);
  ExpectSameRun(base, RunCnnFederated(true, 4), "1 vs 4 threads, static");
  ExpectSameRun(base, RunCnnFederated(false, 4), "1 vs 4 threads, rebuilt");
}

FedResult RunLstmFederated(bool checkpoint) {
  Rng rng(2024);
  TextProfile profile = Sent140LikeProfile();
  profile.num_users = 20;
  auto data = GenerateTextData(profile, 300, 100, &rng);
  auto split = NaturalPartition(data.train_users, profile.num_users, 4, &rng);
  LstmConfig mc;
  mc.vocab_size = profile.vocab_size;
  mc.embed_dim = 4;
  mc.hidden_dim = 8;
  mc.feature_dim = 8;
  FlConfig config;
  config.local_steps = 3;
  config.batch_size = 10;
  config.lr = 0.01;
  config.optimizer = OptimizerKind::kRmsProp;
  config.seed = 6;
  config.max_examples_per_pass = 64;
  config.autograd.checkpoint = checkpoint;
  FedAvg algo(config, &data.train, ViewsOf(split), MakeLstmFactory(mc));
  TrainerOptions options;
  options.eval_max_examples = 100;
  FederatedTrainer trainer(&algo, &data.test, options);
  RunHistory history = trainer.Run(2);
  FedResult result;
  for (const RoundMetrics& r : history.rounds) {
    result.losses.push_back(r.train_loss);
  }
  result.state = algo.global_state();
  return result;
}

TEST(TapeFederatedTest, GradCheckpointOnOffByteIdentical) {
  ExpectSameRun(RunLstmFederated(false), RunLstmFederated(true),
                "checkpoint off vs on");
}

}  // namespace
}  // namespace rfed
