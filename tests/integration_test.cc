// End-to-end scenarios exercising the full stack the way the benchmark
// harness does: synthetic corpus -> partition -> federated algorithm ->
// trainer -> metrics. Sizes are kept small so the suite stays fast; the
// qualitative relationships they assert are the paper's headline claims.

#include <cmath>

#include <gtest/gtest.h>

#include "core/rfedavg.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "data/synthetic_text.h"
#include "fl/fedavg.h"
#include "fl/trainer.h"

namespace rfed {
namespace {

std::vector<ClientView> ViewsOf(const ClientSplit& split) {
  std::vector<ClientView> views;
  for (const auto& idx : split.client_indices) views.push_back({idx, {}});
  return views;
}

TEST(IntegrationTest, CnnPipelineNonIid) {
  Rng rng(21);
  auto data = GenerateImageData(MnistLikeProfile(), 800, 300, &rng);
  auto split = SimilarityPartition(data.train, 5, 0.0, &rng);
  CnnConfig mc;
  mc.conv1_channels = 4;
  mc.conv2_channels = 8;
  mc.feature_dim = 16;
  FlConfig config;
  config.local_steps = 4;
  config.batch_size = 20;
  config.lr = 0.08;
  config.seed = 5;
  RegularizerOptions reg;
  reg.lambda = 1e-3;
  RFedAvgPlus algo(config, reg, &data.train, ViewsOf(split),
                   MakeCnnFactory(mc));
  TrainerOptions options;
  options.eval_max_examples = 300;
  FederatedTrainer trainer(&algo, &data.test, options);
  RunHistory history = trainer.Run(12);
  EXPECT_GT(history.FinalAccuracy(), 0.55);
  // Train loss should broadly decrease.
  EXPECT_LT(history.rounds.back().train_loss,
            0.7 * history.rounds.front().train_loss);
}

TEST(IntegrationTest, LstmPipelineOnNaturalText) {
  Rng rng(22);
  TextProfile profile = Sent140LikeProfile();
  profile.num_users = 40;
  auto data = GenerateTextData(profile, 800, 300, &rng);
  auto split = NaturalPartition(data.train_users, profile.num_users, 8, &rng);
  LstmConfig mc;
  mc.vocab_size = profile.vocab_size;
  mc.embed_dim = 8;
  mc.hidden_dim = 16;
  mc.feature_dim = 16;
  FlConfig config;
  config.local_steps = 4;
  config.batch_size = 10;
  config.lr = 0.01;
  config.optimizer = OptimizerKind::kRmsProp;
  config.seed = 6;
  RegularizerOptions reg;
  // The paper uses λ=0.1 on 256-d Sent140 features; λ scales with the
  // feature dimension and values, so the 16-d bench model needs 1e-4.
  reg.lambda = 1e-4;
  RFedAvgPlus algo(config, reg, &data.train, ViewsOf(split),
                   MakeLstmFactory(mc));
  TrainerOptions options;
  options.eval_max_examples = 300;
  FederatedTrainer trainer(&algo, &data.test, options);
  RunHistory history = trainer.Run(12);
  EXPECT_GT(history.FinalAccuracy(), 0.7);
}

TEST(IntegrationTest, NonIidHurtsFedAvgMoreThanIid) {
  // The motivation experiment: same budget, IID split beats Sim-0% split
  // on the hard profile.
  Rng rng(23);
  auto data = GenerateImageData(CifarLikeProfile(), 1500, 300, &rng);
  CnnConfig mc;
  mc.in_channels = 3;
  mc.conv1_channels = 4;
  mc.conv2_channels = 8;
  mc.feature_dim = 16;
  FlConfig config;
  config.local_steps = 10;
  config.batch_size = 24;
  config.lr = 0.08;
  config.seed = 7;
  TrainerOptions options;
  options.eval_max_examples = 300;
  options.eval_every = 8;

  auto run = [&](double similarity) {
    Rng split_rng(31);
    auto split = SimilarityPartition(data.train, 10, similarity, &split_rng);
    FedAvg algo(config, &data.train, ViewsOf(split), MakeCnnFactory(mc));
    FederatedTrainer trainer(&algo, &data.test, options);
    return trainer.Run(25).BestAccuracy();
  };
  const double acc_iid = run(1.0);
  const double acc_noniid = run(0.0);
  EXPECT_GT(acc_iid, acc_noniid + 0.03);
}

TEST(IntegrationTest, RegularizerHelpsOnTotallyNonIid) {
  // The headline claim (Tables I/II, Sim 0%): rFedAvg+ beats FedAvg on a
  // totally non-IID split of the hard profile.
  Rng rng(24);
  auto data = GenerateImageData(CifarLikeProfile(), 1500, 300, &rng);
  Rng split_rng(32);
  auto split = SimilarityPartition(data.train, 10, 0.0, &split_rng);
  auto views = ViewsOf(split);
  CnnConfig mc;
  mc.in_channels = 3;
  mc.conv1_channels = 4;
  mc.conv2_channels = 8;
  mc.feature_dim = 16;
  FlConfig config;
  config.local_steps = 10;
  config.batch_size = 24;
  config.lr = 0.08;
  config.seed = 8;
  TrainerOptions options;
  options.eval_max_examples = 300;
  options.eval_every = 8;

  FedAvg fedavg(config, &data.train, views, MakeCnnFactory(mc));
  FederatedTrainer t1(&fedavg, &data.test, options);
  const double acc_fedavg = t1.Run(30).BestAccuracy();

  RegularizerOptions reg;
  reg.lambda = 1e-3;
  RFedAvgPlus rplus(config, reg, &data.train, views, MakeCnnFactory(mc));
  FederatedTrainer t2(&rplus, &data.test, options);
  const double acc_rplus = t2.Run(30).BestAccuracy();

  // Small-budget runs are noisy; require the regularized run not to lose
  // and the stack to stay healthy. The full-size comparison lives in the
  // bench harness.
  EXPECT_GE(acc_rplus, acc_fedavg - 0.02);
  EXPECT_GT(acc_rplus, 0.25);
}

TEST(IntegrationTest, FemnistNaturalSplitTrains) {
  Rng rng(25);
  const ImageProfile profile = FemnistLikeProfile();
  auto data = GenerateImageData(profile, 800, 300, &rng);
  auto split =
      NaturalPartition(data.train_writers, profile.num_writers, 10, &rng);
  CnnConfig mc;
  mc.conv1_channels = 4;
  mc.conv2_channels = 8;
  mc.feature_dim = 16;
  FlConfig config;
  config.local_steps = 4;
  config.batch_size = 20;
  config.lr = 0.08;
  config.sample_ratio = 0.5;
  config.seed = 9;
  RegularizerOptions reg;
  reg.lambda = 1e-3;
  RFedAvg algo(config, reg, &data.train, ViewsOf(split), MakeCnnFactory(mc));
  TrainerOptions options;
  options.eval_max_examples = 300;
  FederatedTrainer trainer(&algo, &data.test, options);
  RunHistory history = trainer.Run(12);
  EXPECT_GT(history.FinalAccuracy(), 0.4);
}

TEST(IntegrationTest, CommunicationLedgerConsistentAcrossRounds) {
  Rng rng(26);
  auto data = GenerateImageData(MnistLikeProfile(), 400, 100, &rng);
  auto split = SimilarityPartition(data.train, 4, 0.0, &rng);
  CnnConfig mc;
  mc.conv1_channels = 4;
  mc.conv2_channels = 8;
  mc.feature_dim = 16;
  FlConfig config;
  config.local_steps = 2;
  config.batch_size = 16;
  config.seed = 10;
  RegularizerOptions reg;
  reg.lambda = 1e-3;
  RFedAvgPlus algo(config, reg, &data.train, ViewsOf(split),
                   MakeCnnFactory(mc));
  TrainerOptions options;
  options.eval_max_examples = 100;
  FederatedTrainer trainer(&algo, &data.test, options);
  RunHistory history = trainer.Run(4);
  // Full participation: every round must move the same number of bytes.
  for (const auto& r : history.rounds) {
    EXPECT_EQ(r.round_bytes, history.rounds[0].round_bytes);
  }
  EXPECT_EQ(history.TotalBytes(), algo.comm().total_bytes());
}

}  // namespace
}  // namespace rfed
