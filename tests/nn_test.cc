#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "nn/conv.h"
#include "nn/embedding.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/models.h"
#include "nn/optimizer.h"
#include "test_util.h"

namespace rfed {
namespace {

using ::rfed::testing::MaxGradCheckError;

constexpr double kTol = 5e-2;

TEST(ModuleTest, ParameterRegistrationOrderIsStable) {
  Rng rng(1);
  Linear layer(4, 3, &rng);
  auto params = layer.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->value().shape(), Shape({4, 3}));  // weight first
  EXPECT_EQ(params[1]->value().shape(), Shape({3}));     // bias second
  auto names = layer.ParameterNames();
  EXPECT_EQ(names[0], "weight");
  EXPECT_EQ(names[1], "bias");
}

TEST(ModuleTest, SubmoduleParametersAppended) {
  Rng rng(2);
  CnnModel model(CnnConfig{}, &rng);
  auto names = model.ParameterNames();
  ASSERT_GE(names.size(), 8u);
  EXPECT_EQ(names[0], "conv1.weight");
  EXPECT_EQ(names.back(), "fc2.bias");
  EXPECT_GT(model.NumParameters(), 0);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(3);
  Linear layer(3, 2, &rng);
  Variable x(Tensor::Normal(Shape{4, 3}, 0, 1, &rng));
  ag::Sum(layer.Forward(x)).Backward();
  EXPECT_TRUE(layer.Parameters()[0]->has_grad());
  EXPECT_GT(layer.Parameters()[0]->grad().MaxAbs(), 0.0f);
  layer.ZeroGrad();
  EXPECT_EQ(layer.Parameters()[0]->grad().MaxAbs(), 0.0f);
}

TEST(InitTest, XavierUniformBounds) {
  Rng rng(4);
  Tensor t = XavierUniform(Shape{100, 50}, 100, 50, &rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  EXPECT_LE(t.MaxAbs(), bound);
  EXPECT_NEAR(t.Mean(), 0.0f, 0.01f);
}

TEST(InitTest, KaimingNormalVariance) {
  Rng rng(5);
  Tensor t = KaimingNormal(Shape{200, 100}, 200, &rng);
  EXPECT_NEAR(t.SquaredNorm() / static_cast<float>(t.size()), 2.0f / 200.0f,
              0.002f);
}

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(6);
  Linear layer(2, 2, &rng);
  // Overwrite weights with known values.
  layer.Parameters()[0]->mutable_value() = Tensor(Shape{2, 2}, {1, 2, 3, 4});
  layer.Parameters()[1]->mutable_value() = Tensor(Shape{2}, {10, 20});
  Variable x(Tensor(Shape{1, 2}, {1, 1}));
  Tensor y = layer.Forward(x).value();
  EXPECT_TRUE(AllClose(y, Tensor(Shape{1, 2}, {14, 26}), 1e-5f));
}

TEST(LinearTest, GradcheckThroughLayer) {
  Rng rng(7);
  Linear layer(3, 2, &rng);
  Variable x(Tensor::Normal(Shape{4, 3}, 0, 1, &rng), true);
  auto loss = [&] { return ag::Sum(ag::Tanh(layer.Forward(x))); };
  std::vector<Variable*> leaves = layer.Parameters();
  leaves.push_back(&x);
  EXPECT_LT(MaxGradCheckError(loss, leaves), kTol);
}

TEST(ConvLayerTest, OutputShape) {
  Rng rng(8);
  Conv2dLayer conv(3, 8, 5, 1, 2, &rng);
  Variable x(Tensor::Normal(Shape{2, 3, 12, 12}, 0, 1, &rng));
  EXPECT_EQ(conv.Forward(x).shape(), Shape({2, 8, 12, 12}));
}

TEST(EmbeddingTest, LookupAndGradcheck) {
  Rng rng(9);
  Embedding emb(10, 4, &rng);
  const std::vector<int> ids{1, 3, 3, 7};
  Variable out = emb.Forward(ids);
  EXPECT_EQ(out.shape(), Shape({4, 4}));
  auto loss = [&] { return ag::Sum(ag::Tanh(emb.Forward(ids))); };
  EXPECT_LT(MaxGradCheckError(loss, emb.Parameters()), kTol);
}

TEST(LstmTest, StateShapesAndForgetBias) {
  Rng rng(10);
  LstmLayer lstm(4, 6, &rng);
  auto state = lstm.InitialState(3);
  EXPECT_EQ(state.h.shape(), Shape({3, 6}));
  EXPECT_EQ(state.c.shape(), Shape({3, 6}));
  // Forget-gate bias slice initialized to 1.
  const Tensor& bias = lstm.Parameters()[2]->value();
  EXPECT_EQ(bias.at(6), 1.0f);
  EXPECT_EQ(bias.at(0), 0.0f);
  EXPECT_EQ(bias.at(3 * 6), 0.0f);
}

TEST(LstmTest, UnrollLengthMatches) {
  Rng rng(11);
  LstmLayer lstm(3, 5, &rng);
  std::vector<Variable> seq;
  for (int t = 0; t < 7; ++t) {
    seq.emplace_back(Tensor::Normal(Shape{2, 3}, 0, 1, &rng));
  }
  auto outputs = lstm.Unroll(seq);
  EXPECT_EQ(outputs.size(), 7u);
  EXPECT_EQ(outputs.back().shape(), Shape({2, 5}));
}

TEST(LstmTest, GradcheckThroughTime) {
  Rng rng(12);
  LstmLayer lstm(2, 3, &rng);
  std::vector<Variable> seq;
  for (int t = 0; t < 4; ++t) {
    seq.emplace_back(Tensor::Normal(Shape{2, 2}, 0, 0.5f, &rng), false);
  }
  auto loss = [&] { return ag::Sum(lstm.Unroll(seq).back()); };
  EXPECT_LT(MaxGradCheckError(loss, lstm.Parameters(), 5e-3), 0.1);
}

TEST(LossTest, AccuracyAndArgmax) {
  Tensor logits(Shape{3, 2}, {1, 0, 0, 1, 2, 1});
  EXPECT_EQ(ArgmaxRows(logits), (std::vector<int>{0, 1, 0}));
  EXPECT_NEAR(Accuracy(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
}

TEST(OptimizerTest, SgdStepMatchesManual) {
  Variable w(Tensor(Shape{2}, {1.0f, 2.0f}), true);
  w.grad() = Tensor(Shape{2}, {0.5f, -0.5f});
  // Mark as having grad by accumulating zero (grad() already allocated).
  SgdOptimizer opt({&w}, 0.1);
  opt.Step();
  EXPECT_TRUE(AllClose(w.value(), Tensor(Shape{2}, {0.95f, 2.05f}), 1e-6f));
}

TEST(OptimizerTest, SgdMomentumAccumulates) {
  Variable w(Tensor(Shape{1}, {0.0f}), true);
  SgdOptimizer opt({&w}, 1.0, /*momentum=*/0.9);
  w.grad() = Tensor(Shape{1}, {1.0f});
  opt.Step();  // v=1, w=-1
  EXPECT_NEAR(w.value().at(0), -1.0f, 1e-6f);
  opt.Step();  // v=0.9*1+1=1.9, w=-2.9
  EXPECT_NEAR(w.value().at(0), -2.9f, 1e-6f);
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  Variable w(Tensor(Shape{1}, {10.0f}), true);
  w.grad();  // zero grad
  SgdOptimizer opt({&w}, 0.1, 0.0, /*weight_decay=*/0.5);
  opt.Step();
  EXPECT_NEAR(w.value().at(0), 10.0f - 0.1f * 0.5f * 10.0f, 1e-5f);
}

TEST(OptimizerTest, RmsPropNormalizesScale) {
  // Two parameters with very different gradient magnitudes should move
  // by a comparable amount under RMSProp.
  Variable a(Tensor(Shape{1}, {0.0f}), true);
  Variable b(Tensor(Shape{1}, {0.0f}), true);
  RmsPropOptimizer opt({&a, &b}, 0.01);
  for (int i = 0; i < 50; ++i) {
    a.ZeroGrad();
    b.ZeroGrad();
    a.grad() = Tensor(Shape{1}, {100.0f});
    b.grad() = Tensor(Shape{1}, {0.01f});
    opt.Step();
  }
  const float ratio = std::fabs(a.value().at(0) / b.value().at(0));
  EXPECT_LT(ratio, 5.0f);
  EXPECT_GT(ratio, 0.2f);
}

TEST(OptimizerTest, SkipsParamsWithoutGrad) {
  Variable w(Tensor(Shape{1}, {3.0f}), true);
  SgdOptimizer opt({&w}, 0.1);
  opt.Step();  // no grad accumulated -> unchanged
  EXPECT_EQ(w.value().at(0), 3.0f);
}

TEST(OptimizerTest, LearningRateSetter) {
  Variable w(Tensor(Shape{1}, {0.0f}), true);
  SgdOptimizer opt({&w}, 0.1);
  opt.set_lr(0.5);
  w.grad() = Tensor(Shape{1}, {1.0f});
  opt.Step();
  EXPECT_NEAR(w.value().at(0), -0.5f, 1e-6f);
}

TEST(CnnModelTest, ForwardShapes) {
  Rng rng(13);
  CnnConfig config;
  config.in_channels = 3;
  CnnModel model(config, &rng);
  Batch batch;
  batch.images = Tensor::Normal(Shape{4, 3, 12, 12}, 0, 1, &rng);
  batch.labels = {0, 1, 2, 3};
  ModelOutput out = model.Forward(batch);
  EXPECT_EQ(out.features.shape(), Shape({4, config.feature_dim}));
  EXPECT_EQ(out.logits.shape(), Shape({4, 10}));
}

TEST(CnnModelTest, TrainingReducesLoss) {
  Rng rng(14);
  CnnConfig config;
  config.conv1_channels = 4;
  config.conv2_channels = 8;
  config.feature_dim = 16;
  config.num_classes = 3;
  CnnModel model(config, &rng);
  Batch batch;
  batch.images = Tensor::Normal(Shape{12, 1, 12, 12}, 0, 1, &rng);
  batch.labels = {0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2};
  SgdOptimizer opt(model.Parameters(), 0.05);
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 30; ++step) {
    ModelOutput out = model.Forward(batch);
    Variable loss = CrossEntropyLoss(out.logits, batch.labels);
    if (step == 0) first_loss = loss.value().ToScalar();
    last_loss = loss.value().ToScalar();
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last_loss, 0.8 * first_loss);
}

TEST(LstmModelTest, ForwardShapesAndTraining) {
  Rng rng(15);
  LstmConfig config;
  config.vocab_size = 20;
  config.embed_dim = 8;
  config.hidden_dim = 12;
  config.feature_dim = 10;
  LstmModel model(config, &rng);
  Batch batch;
  batch.tokens = {{1, 2, 3, 4}, {5, 6, 7, 8}, {1, 1, 1, 1}, {9, 9, 9, 9}};
  batch.labels = {0, 1, 0, 1};
  ModelOutput out = model.Forward(batch);
  EXPECT_EQ(out.features.shape(), Shape({4, 10}));
  EXPECT_EQ(out.logits.shape(), Shape({4, 2}));

  RmsPropOptimizer opt(model.Parameters(), 0.01);
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 40; ++step) {
    ModelOutput o = model.Forward(batch);
    Variable loss = CrossEntropyLoss(o.logits, batch.labels);
    if (step == 0) first_loss = loss.value().ToScalar();
    last_loss = loss.value().ToScalar();
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last_loss, 0.5 * first_loss);
}

TEST(MlpModelTest, ForwardShapesAndTraining) {
  Rng rng(16);
  MlpConfig config;
  config.hidden_dim = 32;
  config.feature_dim = 16;
  config.num_classes = 4;
  MlpModel model(config, &rng);
  Batch batch;
  batch.images = Tensor::Normal(Shape{8, 1, 12, 12}, 0, 1, &rng);
  batch.labels = {0, 1, 2, 3, 0, 1, 2, 3};
  ModelOutput out = model.Forward(batch);
  EXPECT_EQ(out.features.shape(), Shape({8, 16}));
  EXPECT_EQ(out.logits.shape(), Shape({8, 4}));

  SgdOptimizer opt(model.Parameters(), 0.05);
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 40; ++step) {
    ModelOutput o = model.Forward(batch);
    Variable loss = CrossEntropyLoss(o.logits, batch.labels);
    if (step == 0) first_loss = loss.value().ToScalar();
    last_loss = loss.value().ToScalar();
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last_loss, 0.5 * first_loss);
}

TEST(MlpModelTest, ParameterNamesStable) {
  Rng rng(17);
  MlpModel model(MlpConfig{}, &rng);
  auto names = model.ParameterNames();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "fc1.weight");
  EXPECT_EQ(names[5], "fc3.bias");
}

TEST(ModelFactoryTest, ProducesIndependentModels) {
  CnnConfig config;
  ModelFactory factory = MakeCnnFactory(config);
  Rng rng1(1), rng2(1);
  auto m1 = factory(&rng1);
  auto m2 = factory(&rng2);
  // Same seed -> identical init; different objects.
  EXPECT_NE(m1.get(), m2.get());
  EXPECT_TRUE(AllClose(m1->Parameters()[0]->value(),
                       m2->Parameters()[0]->value(), 0.0f));
  EXPECT_EQ(m1->default_optimizer(), OptimizerKind::kSgd);
}

TEST(ModelFactoryTest, LstmFactoryDefaultsToRmsProp) {
  LstmConfig config;
  Rng rng(1);
  auto model = MakeLstmFactory(config)(&rng);
  EXPECT_EQ(model->default_optimizer(), OptimizerKind::kRmsProp);
}

}  // namespace
}  // namespace rfed
