// Tests of the discrete-event simulation runtime (src/sim/) and its
// integration into the FederatedAlgorithm round loop: event-queue
// determinism, compute-model call-order independence, parallel-vs-
// sequential bit-identity of local training, participant-schedule
// invariance across thread counts, and deadline cuts being a function
// of virtual time only.

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rfedavg.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/fedavg.h"
#include "fl/fedprox.h"
#include "fl/qfedavg.h"
#include "fl/scaffold.h"
#include "sim/clock.h"
#include "sim/compute_model.h"
#include "sim/event_queue.h"
#include "sim/network_model.h"
#include "sim/options.h"
#include "util/rng.h"

namespace rfed {
namespace {

// ---- Event queue ----

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  queue.Push(30.0, 0, 100);
  queue.Push(10.0, 1, 101);
  queue.Push(20.0, 2, 102);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_DOUBLE_EQ(queue.NextTimeMs(), 10.0);
  EXPECT_EQ(queue.Pop().client, 1);
  EXPECT_EQ(queue.Pop().client, 2);
  EXPECT_EQ(queue.Pop().client, 0);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, TiesBreakInInsertionOrder) {
  EventQueue queue;
  for (int i = 0; i < 16; ++i) queue.Push(5.0, i, 0);
  for (int i = 0; i < 16; ++i) {
    const SimEvent event = queue.Pop();
    EXPECT_EQ(event.client, i);
    EXPECT_EQ(event.seq, i);
  }
}

TEST(EventQueueTest, PushReturnsMonotoneSequenceAcrossPops) {
  EventQueue queue;
  const int64_t a = queue.Push(1.0, 0, 0);
  queue.Pop();
  const int64_t b = queue.Push(1.0, 0, 0);
  EXPECT_LT(a, b);  // seq never recycles, even after pops
}

// ---- Virtual clock ----

TEST(VirtualClockTest, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now_ms(), 0.0);
  clock.AdvanceTo(5.0);
  clock.AdvanceBy(2.5);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 7.5);
  clock.AdvanceTo(7.5);  // standing still is allowed
  EXPECT_DOUBLE_EQ(clock.now_ms(), 7.5);
}

TEST(VirtualClockDeathTest, RunningBackwardsAborts) {
  VirtualClock clock;
  clock.AdvanceTo(10.0);
  EXPECT_DEATH(clock.AdvanceTo(9.0), "RFED_CHECK failed");
}

// ---- Compute-time model ----

TEST(ComputeModelTest, ConstantZeroIsFree) {
  ComputeModelConfig config;  // kConstant, mean 0
  EXPECT_TRUE(config.free());
  ComputeTimeModel model(config, 42, 8);
  for (int client = 0; client < 8; ++client) {
    EXPECT_DOUBLE_EQ(model.SampleMs(client, 3, 5), 0.0);
  }
}

TEST(ComputeModelTest, DrawsAreCallOrderIndependent) {
  ComputeModelConfig config;
  config.kind = ComputeModelKind::kLognormal;
  config.mean_ms_per_step = 10.0;
  config.sigma = 1.0;
  config.hetero_spread = 0.5;
  ComputeTimeModel model(config, 7, 4);
  // Forward then reverse order: per-(client, round) keyed streams mean
  // the draws cannot depend on evaluation order (the thread-count
  // independence contract).
  std::vector<double> forward, reverse;
  for (int round = 0; round < 3; ++round) {
    for (int client = 0; client < 4; ++client) {
      forward.push_back(model.SampleMs(client, round, 2));
    }
  }
  for (int round = 2; round >= 0; --round) {
    for (int client = 3; client >= 0; --client) {
      reverse.push_back(model.SampleMs(client, round, 2));
    }
  }
  std::reverse(reverse.begin(), reverse.end());
  ASSERT_EQ(forward.size(), reverse.size());
  for (size_t i = 0; i < forward.size(); ++i) {
    EXPECT_DOUBLE_EQ(forward[i], reverse[i]);
  }
}

TEST(ComputeModelTest, LognormalIsRoughlyMeanPreserving) {
  ComputeModelConfig config;
  config.kind = ComputeModelKind::kLognormal;
  config.mean_ms_per_step = 10.0;
  config.sigma = 1.0;
  ComputeTimeModel model(config, 99, 1);
  double sum = 0.0;
  const int rounds = 4000;
  for (int round = 0; round < rounds; ++round) {
    sum += model.SampleMs(0, round, 1);
  }
  // E[x * exp(sigma z - sigma^2/2)] = x; loose band for 4000 draws.
  EXPECT_NEAR(sum / rounds, 10.0, 1.5);
}

TEST(ComputeModelTest, DriftCompoundsOverRounds) {
  ComputeModelConfig config;
  config.kind = ComputeModelKind::kDrift;
  config.mean_ms_per_step = 10.0;
  config.drift = 0.2;
  ComputeTimeModel model(config, 5, 6);
  // Each client's per-step cost moves geometrically with its own rate;
  // by round 50 at least one client must have drifted measurably.
  double max_ratio = 0.0;
  for (int client = 0; client < 6; ++client) {
    const double early = model.SampleMs(client, 0, 1);
    const double late = model.SampleMs(client, 50, 1);
    ASSERT_GT(early, 0.0);
    max_ratio = std::max(max_ratio, std::abs(late / early - 1.0));
  }
  EXPECT_GT(max_ratio, 0.5);
}

TEST(ComputeModelTest, HeteroSpreadSeparatesClients) {
  ComputeModelConfig config;
  config.mean_ms_per_step = 10.0;
  config.hetero_spread = 0.5;
  ComputeTimeModel model(config, 11, 8);
  double lo = 1e300, hi = 0.0;
  for (int client = 0; client < 8; ++client) {
    const double ms = model.SampleMs(client, 0, 1);
    lo = std::min(lo, ms);
    hi = std::max(hi, ms);
  }
  EXPECT_LT(lo, hi);   // devices actually differ
  EXPECT_GE(lo, 0.5);  // clipped away from zero (0.05 speed floor)
}

TEST(SimOptionsTest, ParseRoundTrips) {
  SimMode mode;
  EXPECT_TRUE(ParseSimMode("deadline", &mode));
  EXPECT_EQ(mode, SimMode::kDeadline);
  EXPECT_TRUE(ParseSimMode(ToString(SimMode::kAsync), &mode));
  EXPECT_EQ(mode, SimMode::kAsync);
  EXPECT_FALSE(ParseSimMode("bogus", &mode));
  ComputeModelKind kind;
  EXPECT_TRUE(ParseComputeModelKind("lognormal", &kind));
  EXPECT_EQ(kind, ComputeModelKind::kLognormal);
  EXPECT_TRUE(ParseComputeModelKind(ToString(ComputeModelKind::kDrift), &kind));
  EXPECT_EQ(kind, ComputeModelKind::kDrift);
  EXPECT_FALSE(ParseComputeModelKind("bogus", &kind));
}

TEST(NetworkModelTest, ConvertsBytesToLatency) {
  NetworkModelConfig config;
  config.down_bytes_per_ms = 500.0;
  config.up_bytes_per_ms = 250.0;
  config.base_latency_ms = 3.0;
  NetworkModel model(config);
  EXPECT_DOUBLE_EQ(model.DownMs(1000), 3.0 + 2.0);
  EXPECT_DOUBLE_EQ(model.UpMs(1000), 3.0 + 4.0);
  NetworkModel free_model(NetworkModelConfig{});
  EXPECT_DOUBLE_EQ(free_model.DownMs(1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(free_model.UpMs(1 << 20), 0.0);
}

// ---- Round-loop integration ----

/// Small 4-client image fixture; enough rounds of a tiny CNN to make any
/// divergence between execution paths visible in the global state.
struct SimFixture {
  SimFixture()
      : rng(4321),
        data(GenerateImageData(MnistLikeProfile(), 160, 80, &rng)),
        split(SimilarityPartition(data.train, 4, 0.5, &rng)) {
    for (auto& idx : split.client_indices) {
      views.push_back(ClientView{idx, {}});
    }
    CnnConfig mc;
    mc.conv1_channels = 2;
    mc.conv2_channels = 4;
    mc.feature_dim = 8;
    factory = MakeCnnFactory(mc);
  }
  Rng rng;
  SyntheticImageData data;
  ClientSplit split;
  std::vector<ClientView> views;
  ModelFactory factory;
};

FlConfig SimConfig(int num_threads) {
  FlConfig config;
  config.local_steps = 2;
  config.batch_size = 8;
  config.lr = 0.05;
  config.seed = 17;
  config.max_examples_per_pass = 64;
  config.num_threads = num_threads;
  return config;
}

std::unique_ptr<FederatedAlgorithm> MakeByName(const std::string& name,
                                               const FlConfig& config,
                                               SimFixture* fx) {
  const Dataset* train = &fx->data.train;
  if (name == "fedavg") {
    return std::make_unique<FedAvg>(config, train, fx->views, fx->factory);
  }
  if (name == "fedprox") {
    return std::make_unique<FedProx>(config, 0.01, train, fx->views,
                                     fx->factory);
  }
  if (name == "qfedavg") {
    return std::make_unique<QFedAvg>(config, 1.0, train, fx->views,
                                     fx->factory);
  }
  if (name == "scaffold") {
    return std::make_unique<Scaffold>(config, train, fx->views, fx->factory);
  }
  RegularizerOptions reg;
  reg.lambda = 0.01;
  if (name == "rfedavg") {
    return std::make_unique<RFedAvg>(config, reg, train, fx->views,
                                     fx->factory);
  }
  if (name == "rfedavg_plus") {
    return std::make_unique<RFedAvgPlus>(config, reg, train, fx->views,
                                         fx->factory);
  }
  ADD_FAILURE() << "unknown algorithm " << name;
  return nullptr;
}

void ExpectBitIdentical(const Tensor& a, const Tensor& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.at(i), b.at(i)) << label << " diverges at element " << i;
  }
}

// Parallel local training must be bit-identical to the sequential
// path — per-client batcher streams, per-slot scratch models, no shared
// mutable state in the training hooks. SCAFFOLD is included
// deliberately: it opts out of the pool (order-dependent control-variate
// feedback) and must therefore also match exactly.
class ParallelTrainingTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelTrainingTest, ParallelMatchesSequentialBitForBit) {
  const std::string name = GetParam();
  SimFixture fx_seq, fx_par;
  auto seq = MakeByName(name, SimConfig(1), &fx_seq);
  auto par = MakeByName(name, SimConfig(4), &fx_par);
  for (int round = 0; round < 3; ++round) {
    const RoundResult a = seq->RunRound(round);
    const RoundResult b = par->RunRound(round);
    ASSERT_DOUBLE_EQ(a.train_loss, b.train_loss) << name << " round " << round;
    ExpectBitIdentical(seq->global_state(), par->global_state(), name);
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ParallelTrainingTest,
                         ::testing::Values("fedavg", "fedprox", "qfedavg",
                                           "scaffold", "rfedavg",
                                           "rfedavg_plus"));

/// FedAvg that records each round's cohort (OnRoundStart) and survivors
/// (OnRoundEnd) — the participant schedule.
class RecordingFedAvg : public FedAvg {
 public:
  using FedAvg::FedAvg;
  std::vector<std::vector<int>> cohorts;
  std::vector<std::vector<int>> survivors;

 protected:
  void OnRoundStart(int round, const std::vector<int>& selected) override {
    cohorts.push_back(selected);
  }
  void OnRoundEnd(int round, const std::vector<int>& selected) override {
    survivors.push_back(selected);
  }
};

// The participant schedule (fl/selection.cc under the sim runtime) is a
// function of the seed only, never of the thread count.
TEST(SelectionUnderSimTest, ScheduleInvariantAcrossThreadCounts) {
  FlConfig reference_config = SimConfig(1);
  reference_config.sample_ratio = 0.5;
  SimFixture reference_fx;
  RecordingFedAvg reference(reference_config, &reference_fx.data.train,
                            reference_fx.views, reference_fx.factory);
  for (int round = 0; round < 4; ++round) reference.RunRound(round);

  FlConfig config = SimConfig(4);
  config.sample_ratio = 0.5;
  SimFixture fx;
  RecordingFedAvg threaded(config, &fx.data.train, fx.views, fx.factory);
  for (int round = 0; round < 4; ++round) threaded.RunRound(round);

  EXPECT_EQ(threaded.cohorts, reference.cohorts);
  EXPECT_EQ(threaded.survivors, reference.survivors);
  // Sampling actually happened (4 clients, ratio 0.5 -> cohorts of 2).
  ASSERT_EQ(reference.cohorts.size(), 4u);
  EXPECT_EQ(reference.cohorts[0].size(), 2u);
}

// With free models and sync mode the sim runtime is invisible: zero
// virtual time, no cuts, no staleness.
TEST(SimRoundTest, FreeSyncRoundHasZeroVirtualTime) {
  SimFixture fx;
  FedAvg algo(SimConfig(1), &fx.data.train, fx.views, fx.factory);
  const RoundResult result = algo.RunRound(0);
  EXPECT_DOUBLE_EQ(result.virtual_ms, 0.0);
  EXPECT_DOUBLE_EQ(result.client_p50_ms, 0.0);
  EXPECT_DOUBLE_EQ(result.client_p95_ms, 0.0);
  EXPECT_EQ(result.stragglers_cut, 0);
  EXPECT_DOUBLE_EQ(algo.clock().now_ms(), 0.0);
}

FlConfig StragglerConfig(int num_threads, SimMode mode) {
  FlConfig config = SimConfig(num_threads);
  config.sim.mode = mode;
  config.sim.compute.kind = ComputeModelKind::kLognormal;
  config.sim.compute.mean_ms_per_step = 10.0;
  config.sim.compute.sigma = 1.0;
  config.sim.network.down_bytes_per_ms = 1000.0;
  config.sim.network.up_bytes_per_ms = 1000.0;
  config.sim.network.base_latency_ms = 1.0;
  if (mode == SimMode::kDeadline) config.sim.deadline_ms = 35.0;
  if (mode == SimMode::kAsync) config.sim.async_buffer = 2;
  return config;
}

// In sync mode the round's virtual duration is the slowest client
// (barrier), so it dominates the straggler tail.
TEST(SimRoundTest, SyncVirtualTimeIsBarrierOnSlowestClient) {
  SimFixture fx;
  FedAvg algo(StragglerConfig(1, SimMode::kSync), &fx.data.train, fx.views,
              fx.factory);
  double elapsed = 0.0;
  for (int round = 0; round < 3; ++round) {
    const RoundResult result = algo.RunRound(round);
    EXPECT_GT(result.virtual_ms, 0.0);
    EXPECT_GE(result.virtual_ms, result.client_p95_ms);
    EXPECT_GE(result.client_p95_ms, result.client_p50_ms);
    EXPECT_EQ(result.stragglers_cut, 0);
    elapsed += result.virtual_ms;
    EXPECT_DOUBLE_EQ(algo.clock().now_ms(), elapsed);  // clock is monotone
  }
}

// Deadline cuts are a function of virtual time only — identical across
// thread counts and bounded by the deadline itself.
TEST(SimRoundTest, DeadlineCutsAreVirtualTimeDeterministic) {
  std::vector<int> cuts_by_threads[2];
  std::vector<double> vms_by_threads[2];
  for (const int threads : {1, 4}) {
    const int slot = threads == 1 ? 0 : 1;
    SimFixture fx;
    FedAvg algo(StragglerConfig(threads, SimMode::kDeadline), &fx.data.train,
                fx.views, fx.factory);
    for (int round = 0; round < 5; ++round) {
      const RoundResult result = algo.RunRound(round);
      EXPECT_LE(result.virtual_ms, 35.0 + 1e-9);
      cuts_by_threads[slot].push_back(result.stragglers_cut);
      vms_by_threads[slot].push_back(result.virtual_ms);
    }
  }
  EXPECT_EQ(cuts_by_threads[0], cuts_by_threads[1]);
  EXPECT_EQ(vms_by_threads[0], vms_by_threads[1]);
  // The lognormal tail at sigma=1 with a 35 ms cut must actually cut
  // someone across 5 rounds x 4 clients, or the test is vacuous.
  int total = 0;
  for (int c : cuts_by_threads[0]) total += c;
  EXPECT_GT(total, 0);
}

// Async mode: the server updates after K arrivals; staleness is
// nonnegative, the clock advances, and a fixed seed reproduces the run
// bit-for-bit.
TEST(SimRoundTest, AsyncRunsAreSeedDeterministic) {
  SimFixture fx_a, fx_b;
  FedAvg a(StragglerConfig(1, SimMode::kAsync), &fx_a.data.train, fx_a.views,
           fx_a.factory);
  FedAvg b(StragglerConfig(1, SimMode::kAsync), &fx_b.data.train, fx_b.views,
           fx_b.factory);
  for (int round = 0; round < 5; ++round) {
    const RoundResult ra = a.RunRound(round);
    const RoundResult rb = b.RunRound(round);
    ASSERT_DOUBLE_EQ(ra.train_loss, rb.train_loss);
    ASSERT_DOUBLE_EQ(ra.virtual_ms, rb.virtual_ms);
    ASSERT_DOUBLE_EQ(ra.mean_staleness, rb.mean_staleness);
    EXPECT_GE(ra.mean_staleness, 0.0);
    ExpectBitIdentical(a.global_state(), b.global_state(), "async");
  }
  EXPECT_GT(a.clock().now_ms(), 0.0);
  EXPECT_EQ(a.server_version(), 5);
}

}  // namespace
}  // namespace rfed
