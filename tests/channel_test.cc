// Exhaustive unit tests for the fault-injecting transport: backoff
// schedule determinism, fault probabilities honored under a fixed seed,
// checksum rejection of every injected corruption, and retry/timeout
// accounting on the CommStats ledger.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "fl/channel.h"
#include "fl/comm.h"
#include "fl/message.h"
#include "util/backoff.h"
#include "util/rng.h"

namespace rfed {
namespace {

// ---- BackoffDelayMs ----

TEST(BackoffTest, GeometricGrowthWithoutJitterIsExact) {
  BackoffPolicy policy;  // 10ms initial, x2, 1000ms cap, no jitter
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 0, nullptr), 10.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 1, nullptr), 20.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 2, nullptr), 40.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 3, nullptr), 80.0);
}

TEST(BackoffTest, DelayIsCappedForLargeAttemptCounts) {
  BackoffPolicy policy;
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 20, nullptr), policy.max_ms);
  // Even absurd attempt counts must not overflow past the cap.
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 10000, nullptr), policy.max_ms);
}

TEST(BackoffTest, JitterIsSeededAndStaysInBand) {
  BackoffPolicy policy;
  policy.jitter = 0.5;
  Rng a(7), b(7);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double nominal =
        BackoffDelayMs(BackoffPolicy{}, attempt, nullptr);
    const double da = BackoffDelayMs(policy, attempt, &a);
    const double db = BackoffDelayMs(policy, attempt, &b);
    EXPECT_DOUBLE_EQ(da, db) << "attempt " << attempt;
    EXPECT_GE(da, nominal * 0.5 - 1e-9);
    EXPECT_LE(da, policy.max_ms);
  }
}

// ---- Fault-free channel: transparent pass-through ----

TEST(FaultChannelTest, DisabledChannelMatchesDirectLedgerCharges) {
  CommStats direct, routed;
  FaultChannel channel(FaultOptions{}, /*seed=*/1, &routed);
  direct.BeginRound();
  channel.BeginRound();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(channel.Download(100));
    EXPECT_TRUE(channel.Upload(40));
    direct.Download(100);
    direct.Upload(40);
  }
  EXPECT_EQ(routed.total_down_bytes(), direct.total_down_bytes());
  EXPECT_EQ(routed.total_up_bytes(), direct.total_up_bytes());
  EXPECT_EQ(routed.down_messages(), direct.down_messages());
  EXPECT_EQ(routed.up_messages(), direct.up_messages());
  EXPECT_EQ(channel.stats().delivered, 10);
  EXPECT_EQ(channel.stats().dropped, 0);
  EXPECT_EQ(channel.stats().retried, 0);
}

// ---- Probabilities honored under a fixed seed ----

TEST(FaultChannelTest, DropProbabilityHonored) {
  FaultOptions fault;
  fault.drop_prob = 0.3;
  fault.round_timeout_ms = 0.0;
  CommStats ledger;
  FaultChannel channel(fault, /*seed=*/42, &ledger);
  const int n = 20000;
  int delivered = 0;
  for (int i = 0; i < n; ++i) delivered += channel.Upload(10) ? 1 : 0;
  const double frac = static_cast<double>(delivered) / n;
  EXPECT_NEAR(frac, 0.7, 0.02);
  EXPECT_EQ(channel.stats().delivered + channel.stats().dropped, n);
  // No retries configured: exactly one attempt (= one charge) per send.
  EXPECT_EQ(ledger.up_messages(), n);
  EXPECT_EQ(ledger.total_up_bytes(), 10 * static_cast<int64_t>(n));
}

TEST(FaultChannelTest, CorruptProbabilityHonored) {
  FaultOptions fault;
  fault.corrupt_prob = 0.25;
  fault.round_timeout_ms = 0.0;
  CommStats ledger;
  FaultChannel channel(fault, /*seed=*/43, &ledger);
  const int n = 20000;
  for (int i = 0; i < n; ++i) channel.Download(8);
  const double frac =
      static_cast<double>(channel.stats().corrupted) / n;
  EXPECT_NEAR(frac, 0.25, 0.02);
  // Every corrupted attempt is a detected failure: without retries the
  // logical message is lost.
  EXPECT_EQ(channel.stats().corrupted, channel.stats().dropped);
}

TEST(FaultChannelTest, DuplicateProbabilityHonoredAndCharged) {
  FaultOptions fault;
  fault.duplicate_prob = 1.0;
  fault.round_timeout_ms = 0.0;
  CommStats ledger;
  FaultChannel channel(fault, /*seed=*/44, &ledger);
  const int n = 500;
  for (int i = 0; i < n; ++i) EXPECT_TRUE(channel.Upload(16));
  EXPECT_EQ(channel.stats().delivered, n);
  EXPECT_EQ(channel.stats().duplicated, n);
  // The redundant copy costs bandwidth: two charges per send.
  EXPECT_EQ(ledger.up_messages(), 2 * static_cast<int64_t>(n));
  EXPECT_EQ(ledger.total_up_bytes(), 2 * 16 * static_cast<int64_t>(n));
}

TEST(FaultChannelTest, DelayProbabilityHonoredViaTimeouts) {
  FaultOptions fault;
  fault.delay_prob = 0.4;
  fault.mean_delay_ms = 1e9;  // any delayed message misses the deadline
  fault.round_timeout_ms = 10.0;
  CommStats ledger;
  FaultChannel channel(fault, /*seed=*/45, &ledger);
  const int n = 20000;
  int delivered = 0;
  for (int i = 0; i < n; ++i) delivered += channel.Download(4) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(channel.stats().timed_out) / n, 0.4, 0.02);
  EXPECT_EQ(delivered, channel.stats().delivered);
  EXPECT_EQ(channel.stats().timed_out, channel.stats().dropped);
}

TEST(FaultChannelTest, SameSeedReproducesIdenticalOutcomes) {
  FaultOptions fault;
  fault.drop_prob = 0.2;
  fault.corrupt_prob = 0.1;
  fault.duplicate_prob = 0.1;
  fault.delay_prob = 0.2;
  fault.mean_delay_ms = 100.0;
  fault.round_timeout_ms = 150.0;
  fault.max_retries = 2;
  CommStats la, lb;
  FaultChannel a(fault, /*seed=*/7, &la);
  FaultChannel b(fault, /*seed=*/7, &lb);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.Send(ChannelDirection::kDownload, 32),
              b.Send(ChannelDirection::kDownload, 32));
  }
  EXPECT_EQ(a.stats().delivered, b.stats().delivered);
  EXPECT_EQ(a.stats().dropped, b.stats().dropped);
  EXPECT_EQ(a.stats().retried, b.stats().retried);
  EXPECT_EQ(a.stats().corrupted, b.stats().corrupted);
  EXPECT_EQ(a.stats().duplicated, b.stats().duplicated);
  EXPECT_EQ(a.stats().timed_out, b.stats().timed_out);
  EXPECT_EQ(la.total_bytes(), lb.total_bytes());
  EXPECT_EQ(la.down_messages(), lb.down_messages());
}

// ---- Retry + backoff ----

TEST(FaultChannelTest, RetriesRecoverMostDrops) {
  FaultOptions fault;
  fault.drop_prob = 0.5;
  fault.max_retries = 4;
  fault.round_timeout_ms = 0.0;  // wait forever: backoff never times out
  CommStats ledger;
  FaultChannel channel(fault, /*seed=*/46, &ledger);
  const int n = 4000;
  int delivered = 0;
  for (int i = 0; i < n; ++i) delivered += channel.Upload(10) ? 1 : 0;
  // P(all 5 attempts dropped) = 0.5^5 ~ 3.1%.
  EXPECT_NEAR(static_cast<double>(delivered) / n, 1.0 - 0.03125, 0.01);
  EXPECT_GT(channel.stats().retried, 0);
  // Every attempt (first try or retry) occupied the wire.
  EXPECT_EQ(ledger.up_messages(),
            channel.stats().delivered + channel.stats().dropped +
                channel.stats().retried);
}

TEST(FaultChannelTest, BackoffIsCappedByRoundDeadline) {
  // drop_prob 1 forces exhaustion; backoff 40/80/... against a 50ms
  // deadline allows exactly one resend before the round moves on.
  FaultOptions fault;
  fault.drop_prob = 1.0;
  fault.max_retries = 10;
  fault.round_timeout_ms = 50.0;
  fault.backoff.initial_ms = 40.0;
  CommStats ledger;
  FaultChannel channel(fault, /*seed=*/47, &ledger);
  const int n = 100;
  for (int i = 0; i < n; ++i) EXPECT_FALSE(channel.Upload(10));
  EXPECT_EQ(channel.stats().dropped, n);
  // Per message: first try + one retry at latency 40ms; the second retry
  // would start at 40+80=120ms > 50ms, so the sender gives up.
  EXPECT_EQ(channel.stats().retried, 2 * static_cast<int64_t>(n));
  EXPECT_EQ(ledger.up_messages(), 2 * static_cast<int64_t>(n));
}

// ---- Checksum vs injected corruption ----

FlMessage MakeTestMessage() {
  Rng rng(11);
  FlMessage message;
  message.kind = FlMessage::Kind::kDeltaUpload;
  message.round = 5;
  message.sender = 2;
  message.payload.push_back(Tensor::Normal(Shape{3, 4}, 0, 1, &rng));
  message.payload.push_back(Tensor::Normal(Shape{6}, 0, 1, &rng));
  return message;
}

TEST(MessageChecksumTest, EverySingleBitFlipIsRejected) {
  const FlMessage message = MakeTestMessage();
  std::vector<uint8_t> wire;
  message.EncodeTo(&wire);
  // Sanity: the pristine encoding decodes.
  size_t offset = 0;
  FlMessage decoded;
  ASSERT_TRUE(FlMessage::TryDecode(wire, &offset, &decoded));
  EXPECT_EQ(offset, wire.size());
  EXPECT_EQ(decoded.round, 5);
  // Exhaustive: flipping any single bit anywhere — header, length
  // fields, payload, or the checksum itself — must be detected.
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mangled = wire;
      mangled[byte] ^= static_cast<uint8_t>(1u << bit);
      size_t off = 0;
      FlMessage out;
      EXPECT_FALSE(FlMessage::TryDecode(mangled, &off, &out))
          << "undetected flip at byte " << byte << " bit " << bit;
      EXPECT_EQ(off, 0u);  // a rejected decode must not advance
    }
  }
}

TEST(MessageChecksumTest, TruncationIsRejectedNotFatal) {
  const FlMessage message = MakeTestMessage();
  std::vector<uint8_t> wire;
  message.EncodeTo(&wire);
  for (size_t keep = 0; keep < wire.size(); keep += 7) {
    std::vector<uint8_t> truncated(wire.begin(),
                                   wire.begin() + static_cast<int64_t>(keep));
    size_t off = 0;
    FlMessage out;
    EXPECT_FALSE(FlMessage::TryDecode(truncated, &off, &out));
  }
}

TEST(FaultChannelTest, ChecksumRejectsEveryInjectedCorruption) {
  FaultOptions fault;
  fault.corrupt_prob = 1.0;
  fault.round_timeout_ms = 0.0;
  CommStats ledger;
  FaultChannel channel(fault, /*seed=*/48, &ledger);
  const FlMessage message = MakeTestMessage();
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    EXPECT_FALSE(
        channel.Transmit(message, ChannelDirection::kUpload).has_value());
  }
  // Every attempt flipped a real wire bit and the checksum caught it.
  EXPECT_EQ(channel.stats().corrupted, n);
  EXPECT_EQ(channel.stats().delivered, 0);
}

TEST(FaultChannelTest, TransmitDeliversPayloadIntactUnderRetries) {
  FaultOptions fault;
  fault.corrupt_prob = 0.5;
  fault.max_retries = 8;
  fault.round_timeout_ms = 0.0;
  CommStats ledger;
  FaultChannel channel(fault, /*seed=*/49, &ledger);
  const FlMessage message = MakeTestMessage();
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    auto received = channel.Transmit(message, ChannelDirection::kDownload);
    if (!received.has_value()) continue;
    ++delivered;
    // What survives the channel is bit-exact: corrupted copies were
    // rejected and resent, never silently accepted.
    ASSERT_EQ(received->payload.size(), message.payload.size());
    EXPECT_TRUE(AllClose(received->payload[0], message.payload[0], 0.0f));
    EXPECT_TRUE(AllClose(received->payload[1], message.payload[1], 0.0f));
    EXPECT_EQ(received->round, message.round);
    EXPECT_EQ(received->sender, message.sender);
  }
  // P(9 straight corruptions) ~ 0.2%: nearly everything gets through.
  EXPECT_GT(delivered, 190);
  EXPECT_GT(channel.stats().corrupted, 0);
  EXPECT_GT(channel.stats().retried, 0);
}

// ---- Per-round bookkeeping ----

TEST(FaultChannelTest, BeginRoundResetsRoundCountersOnly) {
  FaultOptions fault;
  fault.drop_prob = 0.5;
  fault.round_timeout_ms = 0.0;
  CommStats ledger;
  FaultChannel channel(fault, /*seed=*/50, &ledger);
  for (int i = 0; i < 100; ++i) channel.Upload(1);
  const int64_t total_before =
      channel.stats().delivered + channel.stats().dropped;
  EXPECT_EQ(total_before, 100);
  EXPECT_EQ(channel.stats().round_delivered, channel.stats().delivered);
  channel.BeginRound();
  EXPECT_EQ(channel.stats().round_delivered, 0);
  EXPECT_EQ(channel.stats().round_dropped, 0);
  EXPECT_EQ(channel.stats().round_retried, 0);
  EXPECT_EQ(channel.stats().delivered + channel.stats().dropped, 100);
}

}  // namespace
}  // namespace rfed
