#include <cmath>

#include <gtest/gtest.h>

#include "analysis/classification.h"
#include "util/rng.h"

namespace rfed {
namespace {

TEST(ConfusionMatrixTest, CountsAndAccuracy) {
  ConfusionMatrix cm(3);
  cm.AddAll({0, 0, 1, 2, 2, 2}, {0, 1, 1, 2, 2, 0});
  EXPECT_EQ(cm.total(), 6);
  EXPECT_EQ(cm.Count(0, 0), 1);
  EXPECT_EQ(cm.Count(0, 1), 1);
  EXPECT_EQ(cm.Count(2, 0), 1);
  EXPECT_NEAR(cm.Accuracy(), 4.0 / 6.0, 1e-12);
}

TEST(ConfusionMatrixTest, PrecisionRecallF1) {
  ConfusionMatrix cm(2);
  // label 0: 3 examples, 2 predicted 0, 1 predicted 1.
  // label 1: 2 examples, 1 predicted 0, 1 predicted 1.
  cm.AddAll({0, 0, 0, 1, 1}, {0, 0, 1, 0, 1});
  EXPECT_NEAR(cm.Recall(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.Precision(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.Recall(1), 0.5, 1e-12);
  EXPECT_NEAR(cm.Precision(1), 0.5, 1e-12);
  EXPECT_NEAR(cm.F1(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.MacroF1(), (2.0 / 3.0 + 0.5) / 2.0, 1e-12);
  EXPECT_NEAR(cm.WorstClassRecall(), 0.5, 1e-12);
}

TEST(ConfusionMatrixTest, AbsentClassIsNan) {
  ConfusionMatrix cm(3);
  cm.AddAll({0, 1}, {0, 1});  // class 2 never occurs nor predicted
  EXPECT_TRUE(std::isnan(cm.Recall(2)));
  EXPECT_TRUE(std::isnan(cm.Precision(2)));
  EXPECT_TRUE(std::isnan(cm.F1(2)));
  // MacroF1 averages only over present classes.
  EXPECT_NEAR(cm.MacroF1(), 1.0, 1e-12);
}

TEST(ConfusionMatrixTest, NeverPredictedClassGetsZeroF1) {
  ConfusionMatrix cm(2);
  cm.AddAll({1, 1}, {0, 0});  // class 1 occurs but is never predicted
  EXPECT_NEAR(cm.Recall(1), 0.0, 1e-12);
  EXPECT_NEAR(cm.F1(1), 0.0, 1e-12);
  EXPECT_NEAR(cm.WorstClassRecall(), 0.0, 1e-12);
}

TEST(ConfusionMatrixTest, PerfectPredictionIsOneEverywhere) {
  ConfusionMatrix cm(4);
  cm.AddAll({0, 1, 2, 3}, {0, 1, 2, 3});
  EXPECT_EQ(cm.Accuracy(), 1.0);
  EXPECT_EQ(cm.MacroF1(), 1.0);
  EXPECT_EQ(cm.WorstClassRecall(), 1.0);
}

TEST(ConfusionMatrixTest, ToStringContainsCounts) {
  ConfusionMatrix cm(2);
  cm.Add(0, 1);
  const std::string s = cm.ToString();
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(BootstrapTest, IntervalContainsMeanAndOrdersBounds) {
  Rng rng(1);
  std::vector<double> values{0.4, 0.45, 0.5, 0.55, 0.6};
  BootstrapInterval ci = BootstrapMeanInterval(values, 0.95, 2000, &rng);
  EXPECT_NEAR(ci.mean, 0.5, 1e-12);
  EXPECT_LE(ci.lower, ci.mean);
  EXPECT_GE(ci.upper, ci.mean);
  EXPECT_GT(ci.upper - ci.lower, 0.0);
  EXPECT_LT(ci.upper - ci.lower, 0.2);
}

TEST(BootstrapTest, DegenerateSampleHasZeroWidth) {
  Rng rng(2);
  BootstrapInterval ci =
      BootstrapMeanInterval({0.7, 0.7, 0.7}, 0.9, 500, &rng);
  EXPECT_NEAR(ci.lower, 0.7, 1e-12);
  EXPECT_NEAR(ci.upper, 0.7, 1e-12);
}

TEST(BootstrapTest, WiderConfidenceWiderInterval) {
  std::vector<double> values{0.1, 0.3, 0.5, 0.7, 0.9, 0.2, 0.8};
  Rng a(3), b(3);
  BootstrapInterval narrow = BootstrapMeanInterval(values, 0.5, 4000, &a);
  BootstrapInterval wide = BootstrapMeanInterval(values, 0.99, 4000, &b);
  EXPECT_GT(wide.upper - wide.lower, narrow.upper - narrow.lower);
}

}  // namespace
}  // namespace rfed
