// Second parameterized property suite: compression, secure aggregation,
// optimizers on quadratics, checkpointing, FedAvgM, and dataset
// invariants swept across families of configurations.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <tuple>
#include <utility>

#include <gtest/gtest.h>

#include "core/rfedavg.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/checkpoint.h"
#include "fl/compression.h"
#include "fl/fedavg.h"
#include "fl/fedavgm.h"
#include "fl/fednova.h"
#include "fl/secure_agg.h"
#include "fl/trainer.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace rfed {
namespace {

// ---- Property: every compressor keeps reconstruction error bounded
//      relative to the update norm and saves (or matches) bytes ----

class CompressorPropertyTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(CompressorPropertyTest, BoundedErrorAndAccountedBytes) {
  auto [name, dim] = GetParam();
  auto compressor = MakeCompressor(name);
  Rng rng(static_cast<uint64_t>(dim) * 31 + 7);
  Tensor update = Tensor::Normal(Shape{dim}, 0.0f, 0.05f, &rng);
  Tensor back = compressor->RoundTrip(update, &rng);
  ASSERT_EQ(back.shape(), update.shape());
  for (int64_t i = 0; i < back.size(); ++i) {
    ASSERT_TRUE(std::isfinite(back.at(i)));
  }
  EXPECT_GT(compressor->WireBytes(dim), 0);
  if (std::string(name) == "none") {
    EXPECT_TRUE(AllClose(back, update, 0.0f));
  }
  if (std::string(name) == "q8") {
    Tensor err = back;
    err.SubInPlace(update);
    // 8-bit quantization error is tiny relative to the signal.
    EXPECT_LT(err.SquaredNorm(), 0.01f * update.SquaredNorm() + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CompressorPropertyTest,
    ::testing::Combine(::testing::Values("none", "q8", "q4", "topk10",
                                         "topk1", "sketch"),
                       ::testing::Values(64, 500, 4096)));

// ---- Property: secure aggregation sums are exact for any cohort ----

class SecureAggPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SecureAggPropertyTest, SumExactForCohortSize) {
  const int cohort_size = GetParam();
  const int64_t dim = 40;
  SecureAggregator agg(dim, /*session_seed=*/99);
  Rng rng(static_cast<uint64_t>(cohort_size));
  std::vector<int> cohort;
  for (int i = 0; i < cohort_size; ++i) cohort.push_back(i * 3 + 1);
  std::vector<Tensor> masked;
  Tensor expected(Shape{dim});
  for (int k : cohort) {
    Tensor update = Tensor::Normal(Shape{dim}, 0, 1, &rng);
    expected.AddInPlace(update);
    masked.push_back(agg.Mask(k, update, cohort));
  }
  EXPECT_TRUE(AllClose(SecureAggregator::SumMasked(masked), expected,
                       1e-3f * static_cast<float>(cohort_size)));
}

INSTANTIATE_TEST_SUITE_P(CohortSizes, SecureAggPropertyTest,
                         ::testing::Values(1, 2, 3, 8, 16));

// ---- Property: optimizers minimize a convex quadratic ----

class OptimizerConvergenceTest
    : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(OptimizerConvergenceTest, MinimizesQuadratic) {
  // f(w) = 0.5 * ||w - target||^2, gradient w - target.
  const OptimizerKind kind = GetParam();
  Variable w(Tensor(Shape{4}, {5.0f, -3.0f, 2.0f, 0.5f}), true);
  Tensor target(Shape{4}, {1.0f, 1.0f, 1.0f, 1.0f});
  auto optimizer = MakeOptimizer(kind, {&w}, 0.05);
  for (int step = 0; step < 800; ++step) {
    optimizer->ZeroGrad();
    Tensor grad = w.value();
    grad.SubInPlace(target);
    w.grad().AddInPlace(grad);
    optimizer->Step();
  }
  Tensor err = w.value();
  err.SubInPlace(target);
  EXPECT_LT(err.SquaredNorm(), 1e-3f) << "kind " << static_cast<int>(kind);
}

INSTANTIATE_TEST_SUITE_P(Kinds, OptimizerConvergenceTest,
                         ::testing::Values(OptimizerKind::kSgd,
                                           OptimizerKind::kRmsProp));

// ---- Checkpointing round trips ----

TEST(CheckpointTest, TensorFileRoundTrip) {
  Rng rng(5);
  Tensor t = Tensor::Normal(Shape{7, 3}, 0, 1, &rng);
  const std::string path = ::testing::TempDir() + "/ckpt_tensor.bin";
  SaveTensorToFile(t, path);
  Tensor back = LoadTensorFromFile(path);
  EXPECT_TRUE(AllClose(t, back, 0.0f));
  std::remove(path.c_str());
}

TEST(CheckpointTest, HistoryCsvHasAllRounds) {
  RunHistory history;
  history.algorithm = "x";
  history.rounds = {{0, 1.0, 0.5, 0.01, 100}, {1, 0.9, std::nan(""), 0.01, 100}};
  const std::string path = ::testing::TempDir() + "/ckpt_history.csv";
  SaveHistoryCsv(history, path);
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3);  // header + 2 rounds
  std::remove(path.c_str());
}

// ---- FedAvgM ----

class FedAvgMTest : public ::testing::TestWithParam<double> {};

TEST_P(FedAvgMTest, LearnsWithServerMomentum) {
  const double beta = GetParam();
  Rng rng(41);
  auto data = GenerateImageData(MnistLikeProfile(), 600, 200, &rng);
  auto split = SimilarityPartition(data.train, 5, 0.0, &rng);
  std::vector<ClientView> views;
  for (auto& idx : split.client_indices) views.push_back({idx, {}});
  CnnConfig mc;
  mc.conv1_channels = 4;
  mc.conv2_channels = 8;
  mc.feature_dim = 16;
  FlConfig config;
  config.local_steps = 3;
  config.batch_size = 16;
  config.lr = 0.05;
  config.seed = 3;
  FedAvgM algo(config, beta, &data.train, views, MakeCnnFactory(mc));
  TrainerOptions options;
  options.eval_max_examples = 200;
  FederatedTrainer trainer(&algo, &data.test, options);
  const double before = trainer.EvaluateGlobal();
  RunHistory history = trainer.Run(8);
  EXPECT_GT(history.BestAccuracy(), before + 0.15) << "beta " << beta;
  for (int64_t i = 0; i < algo.global_state().size(); ++i) {
    ASSERT_TRUE(std::isfinite(algo.global_state().at(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, FedAvgMTest, ::testing::Values(0.0, 0.5, 0.9));

// ---- Fault-channel properties ----

namespace fault_props {

struct SmallFixture {
  SmallFixture()
      : rng(21),
        data(GenerateImageData(MnistLikeProfile(), 300, 100, &rng)),
        split(SimilarityPartition(data.train, 4, 0.0, &rng)) {
    for (auto& idx : split.client_indices) views.push_back({idx, {}});
    CnnConfig mc;
    mc.conv1_channels = 2;
    mc.conv2_channels = 4;
    mc.feature_dim = 8;
    factory = MakeCnnFactory(mc);
  }
  Rng rng;
  SyntheticImageData data;
  ClientSplit split;
  std::vector<ClientView> views;
  ModelFactory factory;
};

FlConfig SmallConfig() {
  FlConfig config;
  config.local_steps = 2;
  config.batch_size = 8;
  config.lr = 0.05;
  config.seed = 13;
  config.max_examples_per_pass = 64;
  return config;
}

}  // namespace fault_props

// Property: with every fault probability at zero, a run through the
// fault channel is bit-identical to the seed path — even with a retry
// budget and jittered backoff configured, the channel must consume no
// randomness and charge the exact same bytes.
TEST(FaultPathPropertyTest, ZeroProbabilitiesAreBitIdenticalToSeedPath) {
  using fault_props::SmallConfig;
  fault_props::SmallFixture fx1, fx2;
  FlConfig plain = SmallConfig();
  FlConfig routed = SmallConfig();
  routed.fault.max_retries = 3;
  routed.fault.backoff.jitter = 0.5;
  routed.fault.round_timeout_ms = 1.0;  // irrelevant: nothing ever fails
  FedAvg a(plain, &fx1.data.train, fx1.views, fx1.factory);
  FedAvg b(routed, &fx2.data.train, fx2.views, fx2.factory);
  for (int r = 0; r < 3; ++r) {
    a.RunRound(r);
    b.RunRound(r);
  }
  EXPECT_TRUE(AllClose(a.global_state(), b.global_state(), 0.0f));
  EXPECT_EQ(a.comm().total_bytes(), b.comm().total_bytes());
  EXPECT_EQ(a.comm().down_messages(), b.comm().down_messages());
  EXPECT_EQ(a.comm().up_messages(), b.comm().up_messages());
  EXPECT_EQ(std::as_const(b).channel().stats().dropped, 0);
  EXPECT_EQ(std::as_const(b).channel().stats().retried, 0);
}

// Property: whatever the drop pattern, aggregation weights over the
// survivors renormalize to 1. With lr = 0 every client returns the
// round-start state, so any weight mass lost to dropped clients would
// shrink the aggregate; invariance of the global state across faulty
// rounds is exactly the sum-to-1 property.
class DropRenormalizationTest
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(DropRenormalizationTest, SurvivorWeightsSumToOne) {
  using fault_props::SmallConfig;
  auto [name, drop_prob] = GetParam();
  fault_props::SmallFixture fx;
  FlConfig config = SmallConfig();
  config.lr = 0.0;
  config.fault.drop_prob = drop_prob;
  config.fault.max_retries = 1;
  config.fault.round_timeout_ms = 0.0;
  std::unique_ptr<FederatedAlgorithm> algo;
  const std::string algo_name = name;
  if (algo_name == "fedavg") {
    algo = std::make_unique<FedAvg>(config, &fx.data.train, fx.views,
                                    fx.factory);
  } else if (algo_name == "fedavgm") {
    algo = std::make_unique<FedAvgM>(config, 0.9, &fx.data.train, fx.views,
                                     fx.factory);
  } else {
    algo = std::make_unique<FedNova>(config, 4, &fx.data.train, fx.views,
                                     fx.factory);
  }
  const Tensor before = algo->global_state();
  for (int r = 0; r < 5; ++r) algo->RunRound(r);
  EXPECT_TRUE(AllClose(algo->global_state(), before, 1e-5f))
      << name << " drop " << drop_prob;
  if (drop_prob > 0.0) {
    EXPECT_GT(std::as_const(*algo).channel().stats().dropped, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DropRenormalizationTest,
    ::testing::Combine(::testing::Values("fedavg", "fedavgm", "fednova"),
                       ::testing::Values(0.0, 0.3, 0.6)));

// Property: under any drop pattern, rFedAvg+'s averaged regularization
// target is the mean of the maps the server actually *received* — the
// leave-one-out mean must always agree with a manual average over the
// store's current (received-only) contents.
TEST(FaultPathPropertyTest, RFedAvgPlusAveragedMapIsMeanOfReceivedMaps) {
  using fault_props::SmallConfig;
  fault_props::SmallFixture fx;
  FlConfig config = SmallConfig();
  config.fault.drop_prob = 0.35;
  config.fault.max_retries = 2;
  config.fault.round_timeout_ms = 0.0;
  RegularizerOptions reg;
  reg.lambda = 0.01;
  RFedAvgPlus algo(config, reg, &fx.data.train, fx.views, fx.factory);
  TrainerOptions options;
  options.eval_max_examples = 100;
  options.eval_every = 4;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  RunHistory history = trainer.Run(4);

  const DeltaMapStore& store = algo.delta_store();
  const auto& maps = store.All();
  const int n = store.num_clients();
  for (int k = 0; k < n; ++k) {
    Tensor manual(Shape{store.feature_dim()});
    for (int j = 0; j < n; ++j) {
      if (j == k) continue;
      manual.AddInPlace(maps[static_cast<size_t>(j)]);
    }
    manual.MulInPlace(1.0f / static_cast<float>(n - 1));
    EXPECT_TRUE(AllClose(store.LeaveOneOutMean(k), manual, 1e-5f))
        << "client " << k;
  }
  // The run actually exercised the fault model and recorded it.
  EXPECT_GT(history.TotalDropped(), 0);
  EXPECT_GT(history.TotalRetried(), 0);
  EXPECT_GT(history.TotalDelivered(), 0);
}

// ---- Dataset determinism across profiles ----

class ProfileDeterminismTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfileDeterminismTest, SameSeedSameData) {
  const std::string name = GetParam();
  ImageProfile profile = name == "cifar"    ? CifarLikeProfile()
                         : name == "femnist" ? FemnistLikeProfile()
                                             : MnistLikeProfile();
  Rng a(9), b(9);
  auto da = GenerateImageData(profile, 80, 20, &a);
  auto db = GenerateImageData(profile, 80, 20, &b);
  EXPECT_EQ(da.train.labels(), db.train.labels());
  EXPECT_TRUE(AllClose(da.test.GetBatch({0, 5}).images,
                       db.test.GetBatch({0, 5}).images, 0.0f));
}

INSTANTIATE_TEST_SUITE_P(Profiles, ProfileDeterminismTest,
                         ::testing::Values("mnist", "cifar", "femnist"));

}  // namespace
}  // namespace rfed
