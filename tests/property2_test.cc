// Second parameterized property suite: compression, secure aggregation,
// optimizers on quadratics, checkpointing, FedAvgM, and dataset
// invariants swept across families of configurations.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <tuple>

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/checkpoint.h"
#include "fl/compression.h"
#include "fl/fedavgm.h"
#include "fl/secure_agg.h"
#include "fl/trainer.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace rfed {
namespace {

// ---- Property: every compressor keeps reconstruction error bounded
//      relative to the update norm and saves (or matches) bytes ----

class CompressorPropertyTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(CompressorPropertyTest, BoundedErrorAndAccountedBytes) {
  auto [name, dim] = GetParam();
  auto compressor = MakeCompressor(name);
  Rng rng(static_cast<uint64_t>(dim) * 31 + 7);
  Tensor update = Tensor::Normal(Shape{dim}, 0.0f, 0.05f, &rng);
  Tensor back = compressor->RoundTrip(update, &rng);
  ASSERT_EQ(back.shape(), update.shape());
  for (int64_t i = 0; i < back.size(); ++i) {
    ASSERT_TRUE(std::isfinite(back.at(i)));
  }
  EXPECT_GT(compressor->WireBytes(dim), 0);
  if (std::string(name) == "none") {
    EXPECT_TRUE(AllClose(back, update, 0.0f));
  }
  if (std::string(name) == "q8") {
    Tensor err = back;
    err.SubInPlace(update);
    // 8-bit quantization error is tiny relative to the signal.
    EXPECT_LT(err.SquaredNorm(), 0.01f * update.SquaredNorm() + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CompressorPropertyTest,
    ::testing::Combine(::testing::Values("none", "q8", "q4", "topk10",
                                         "topk1", "sketch"),
                       ::testing::Values(64, 500, 4096)));

// ---- Property: secure aggregation sums are exact for any cohort ----

class SecureAggPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SecureAggPropertyTest, SumExactForCohortSize) {
  const int cohort_size = GetParam();
  const int64_t dim = 40;
  SecureAggregator agg(dim, /*session_seed=*/99);
  Rng rng(static_cast<uint64_t>(cohort_size));
  std::vector<int> cohort;
  for (int i = 0; i < cohort_size; ++i) cohort.push_back(i * 3 + 1);
  std::vector<Tensor> masked;
  Tensor expected(Shape{dim});
  for (int k : cohort) {
    Tensor update = Tensor::Normal(Shape{dim}, 0, 1, &rng);
    expected.AddInPlace(update);
    masked.push_back(agg.Mask(k, update, cohort));
  }
  EXPECT_TRUE(AllClose(SecureAggregator::SumMasked(masked), expected,
                       1e-3f * static_cast<float>(cohort_size)));
}

INSTANTIATE_TEST_SUITE_P(CohortSizes, SecureAggPropertyTest,
                         ::testing::Values(1, 2, 3, 8, 16));

// ---- Property: optimizers minimize a convex quadratic ----

class OptimizerConvergenceTest
    : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(OptimizerConvergenceTest, MinimizesQuadratic) {
  // f(w) = 0.5 * ||w - target||^2, gradient w - target.
  const OptimizerKind kind = GetParam();
  Variable w(Tensor(Shape{4}, {5.0f, -3.0f, 2.0f, 0.5f}), true);
  Tensor target(Shape{4}, {1.0f, 1.0f, 1.0f, 1.0f});
  auto optimizer = MakeOptimizer(kind, {&w}, 0.05);
  for (int step = 0; step < 800; ++step) {
    optimizer->ZeroGrad();
    Tensor grad = w.value();
    grad.SubInPlace(target);
    w.grad().AddInPlace(grad);
    optimizer->Step();
  }
  Tensor err = w.value();
  err.SubInPlace(target);
  EXPECT_LT(err.SquaredNorm(), 1e-3f) << "kind " << static_cast<int>(kind);
}

INSTANTIATE_TEST_SUITE_P(Kinds, OptimizerConvergenceTest,
                         ::testing::Values(OptimizerKind::kSgd,
                                           OptimizerKind::kRmsProp));

// ---- Checkpointing round trips ----

TEST(CheckpointTest, TensorFileRoundTrip) {
  Rng rng(5);
  Tensor t = Tensor::Normal(Shape{7, 3}, 0, 1, &rng);
  const std::string path = ::testing::TempDir() + "/ckpt_tensor.bin";
  SaveTensorToFile(t, path);
  Tensor back = LoadTensorFromFile(path);
  EXPECT_TRUE(AllClose(t, back, 0.0f));
  std::remove(path.c_str());
}

TEST(CheckpointTest, HistoryCsvHasAllRounds) {
  RunHistory history;
  history.algorithm = "x";
  history.rounds = {{0, 1.0, 0.5, 0.01, 100}, {1, 0.9, std::nan(""), 0.01, 100}};
  const std::string path = ::testing::TempDir() + "/ckpt_history.csv";
  SaveHistoryCsv(history, path);
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3);  // header + 2 rounds
  std::remove(path.c_str());
}

// ---- FedAvgM ----

class FedAvgMTest : public ::testing::TestWithParam<double> {};

TEST_P(FedAvgMTest, LearnsWithServerMomentum) {
  const double beta = GetParam();
  Rng rng(41);
  auto data = GenerateImageData(MnistLikeProfile(), 600, 200, &rng);
  auto split = SimilarityPartition(data.train, 5, 0.0, &rng);
  std::vector<ClientView> views;
  for (auto& idx : split.client_indices) views.push_back({idx, {}});
  CnnConfig mc;
  mc.conv1_channels = 4;
  mc.conv2_channels = 8;
  mc.feature_dim = 16;
  FlConfig config;
  config.local_steps = 3;
  config.batch_size = 16;
  config.lr = 0.05;
  config.seed = 3;
  FedAvgM algo(config, beta, &data.train, views, MakeCnnFactory(mc));
  TrainerOptions options;
  options.eval_max_examples = 200;
  FederatedTrainer trainer(&algo, &data.test, options);
  const double before = trainer.EvaluateGlobal();
  RunHistory history = trainer.Run(8);
  EXPECT_GT(history.BestAccuracy(), before + 0.15) << "beta " << beta;
  for (int64_t i = 0; i < algo.global_state().size(); ++i) {
    ASSERT_TRUE(std::isfinite(algo.global_state().at(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, FedAvgMTest, ::testing::Values(0.0, 0.5, 0.9));

// ---- Dataset determinism across profiles ----

class ProfileDeterminismTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfileDeterminismTest, SameSeedSameData) {
  const std::string name = GetParam();
  ImageProfile profile = name == "cifar"    ? CifarLikeProfile()
                         : name == "femnist" ? FemnistLikeProfile()
                                             : MnistLikeProfile();
  Rng a(9), b(9);
  auto da = GenerateImageData(profile, 80, 20, &a);
  auto db = GenerateImageData(profile, 80, 20, &b);
  EXPECT_EQ(da.train.labels(), db.train.labels());
  EXPECT_TRUE(AllClose(da.test.GetBatch({0, 5}).images,
                       db.test.GetBatch({0, 5}).images, 0.0f));
}

INSTANTIATE_TEST_SUITE_P(Profiles, ProfileDeterminismTest,
                         ::testing::Values("mnist", "cifar", "femnist"));

}  // namespace
}  // namespace rfed
