// Seeded golden-run regression suite. Each algorithm runs 3 rounds on a
// tiny fixed synthetic partition; the final train loss, final test
// accuracy, and cumulative communicated bytes must match the checked-in
// golden values. Any kernel, aggregation, or accounting refactor that
// silently changes the training math trips these immediately.
//
// Regenerating after an *intentional* numeric change:
//   RFED_PRINT_GOLDEN=1 ./build/tests/golden_test
// then paste the printed table over kGoldens below.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/rfedavg.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/fedavg.h"
#include "fl/fedavgm.h"
#include "fl/fednova.h"
#include "fl/fedprox.h"
#include "fl/qfedavg.h"
#include "fl/scaffold.h"
#include "fl/trainer.h"
#include "util/rng.h"

namespace rfed {
namespace {

constexpr const char* kAlgorithms[] = {
    "fedavg", "fedprox", "scaffold", "qfedavg",
    "fedavgm", "fednova", "rfedavg", "rfedavg_plus",
};

struct Golden {
  const char* name;
  double final_loss;
  double final_accuracy;
  int64_t total_bytes;
};

// Checked-in golden values for 3 rounds under the fixture below
// (data seed 1234, algorithm seed 77). Tolerance 1e-5 on the doubles,
// exact on the byte ledger.
constexpr Golden kGoldens[] = {
    {"fedavg", 2.3046530088, 0.1083333333, 46224},
    {"fedprox", 2.3046712478, 0.1083333333, 46224},
    {"scaffold", 2.3208434979, 0.0916666667, 92448},
    {"qfedavg", 2.3179347118, 0.0833333333, 46224},
    {"fedavgm", 2.2837883631, 0.1666666667, 46224},
    {"fednova", 2.2734843493, 0.1583333333, 46224},
    {"rfedavg", 2.3133334319, 0.0916666667, 47088},
    {"rfedavg_plus", 2.3111237288, 0.0916666667, 69912},
};

/// The shared tiny fixture: 240 train / 120 test MNIST-like examples
/// over 3 moderately non-IID clients, a minimal CNN.
struct GoldenFixture {
  GoldenFixture()
      : rng(1234),
        data(GenerateImageData(MnistLikeProfile(), 240, 120, &rng)),
        split(SimilarityPartition(data.train, 3, 0.5, &rng)) {
    for (auto& idx : split.client_indices) {
      views.push_back(ClientView{idx, {}});
    }
    CnnConfig mc;
    mc.conv1_channels = 2;
    mc.conv2_channels = 4;
    mc.feature_dim = 8;
    factory = MakeCnnFactory(mc);
  }
  Rng rng;
  SyntheticImageData data;
  ClientSplit split;
  std::vector<ClientView> views;
  ModelFactory factory;
};

FlConfig GoldenConfig() {
  FlConfig config;
  config.local_steps = 2;
  config.batch_size = 8;
  config.lr = 0.05;
  config.seed = 77;
  config.max_examples_per_pass = 64;
  return config;
}

std::unique_ptr<FederatedAlgorithm> MakeAlgorithm(const std::string& name,
                                                  const FlConfig& config,
                                                  GoldenFixture* fx) {
  const Dataset* train = &fx->data.train;
  if (name == "fedavg") {
    return std::make_unique<FedAvg>(config, train, fx->views, fx->factory);
  }
  if (name == "fedprox") {
    return std::make_unique<FedProx>(config, 0.01, train, fx->views,
                                     fx->factory);
  }
  if (name == "scaffold") {
    return std::make_unique<Scaffold>(config, train, fx->views, fx->factory);
  }
  if (name == "qfedavg") {
    return std::make_unique<QFedAvg>(config, 1.0, train, fx->views,
                                     fx->factory);
  }
  if (name == "fedavgm") {
    return std::make_unique<FedAvgM>(config, 0.9, train, fx->views,
                                     fx->factory);
  }
  if (name == "fednova") {
    return std::make_unique<FedNova>(config, 4, train, fx->views,
                                     fx->factory);
  }
  RegularizerOptions reg;
  reg.lambda = 0.01;
  if (name == "rfedavg") {
    return std::make_unique<RFedAvg>(config, reg, train, fx->views,
                                     fx->factory);
  }
  if (name == "rfedavg_plus") {
    return std::make_unique<RFedAvgPlus>(config, reg, train, fx->views,
                                         fx->factory);
  }
  ADD_FAILURE() << "unknown algorithm " << name;
  return nullptr;
}

RunHistory RunGolden(const std::string& name, const FlConfig& config,
                     int rounds) {
  GoldenFixture fx;
  auto algo = MakeAlgorithm(name, config, &fx);
  TrainerOptions options;
  options.eval_max_examples = 120;
  FederatedTrainer trainer(algo.get(), &fx.data.test, options);
  return trainer.Run(rounds);
}

class GoldenRunTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenRunTest, ThreeRoundRunMatchesCheckedInValues) {
  const std::string name = GetParam();
  RunHistory history = RunGolden(name, GoldenConfig(), 3);
  const double loss = history.rounds.back().train_loss;
  const double accuracy = history.FinalAccuracy();
  const int64_t bytes = history.TotalBytes();

  if (std::getenv("RFED_PRINT_GOLDEN") != nullptr) {
    std::printf("    {\"%s\", %.10f, %.10f, %lld},\n", name.c_str(), loss,
                accuracy, static_cast<long long>(bytes));
    return;
  }
  const Golden* golden = nullptr;
  for (const Golden& g : kGoldens) {
    if (name == g.name) golden = &g;
  }
  ASSERT_NE(golden, nullptr) << "no golden entry for " << name;
  EXPECT_NEAR(loss, golden->final_loss, 1e-5) << name;
  EXPECT_NEAR(accuracy, golden->final_accuracy, 1e-5) << name;
  EXPECT_EQ(bytes, golden->total_bytes) << name;
  // A fault-free run delivers every message and drops/retries none.
  EXPECT_EQ(history.TotalDropped(), 0);
  EXPECT_EQ(history.TotalRetried(), 0);
  EXPECT_GT(history.TotalDelivered(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, GoldenRunTest,
                         ::testing::ValuesIn(kAlgorithms));

// ---- Fault sweep: the acceptance scenario ----
// With drop probability 0.3 and a fixed seed, every algorithm completes
// 10 rounds without crashing, the global state stays finite, and the
// history reports nonzero dropped and retried message counts.

class FaultSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultSweepTest, TenRoundsUnderHeavyDropsStayFinite) {
  const std::string name = GetParam();
  FlConfig config = GoldenConfig();
  config.fault.drop_prob = 0.3;
  config.fault.max_retries = 2;
  config.fault.round_timeout_ms = 0.0;

  GoldenFixture fx;
  auto algo = MakeAlgorithm(name, config, &fx);
  TrainerOptions options;
  options.eval_max_examples = 120;
  options.eval_every = 5;
  FederatedTrainer trainer(algo.get(), &fx.data.test, options);
  RunHistory history = trainer.Run(10);

  ASSERT_EQ(history.rounds.size(), 10u);
  for (int64_t i = 0; i < algo->global_state().size(); ++i) {
    ASSERT_TRUE(std::isfinite(algo->global_state().at(i))) << name;
  }
  EXPECT_GT(history.TotalDropped(), 0) << name;
  EXPECT_GT(history.TotalRetried(), 0) << name;
  EXPECT_GT(history.TotalDelivered(), 0) << name;
  const double accuracy = history.FinalAccuracy();
  EXPECT_GE(accuracy, 0.0);
  EXPECT_LE(accuracy, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, FaultSweepTest,
                         ::testing::ValuesIn(kAlgorithms));

}  // namespace
}  // namespace rfed
