// Seeded golden-run regression suite. Each algorithm runs 3 rounds on a
// tiny fixed synthetic partition; the final train loss, final test
// accuracy, and cumulative communicated bytes must match the checked-in
// golden values. Any kernel, aggregation, or accounting refactor that
// silently changes the training math trips these immediately.
//
// Regenerating after an *intentional* numeric change:
//   RFED_PRINT_GOLDEN=1 ./build/tests/golden_test
// then paste the printed table over kGoldens below.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/rfedavg.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/checkpoint.h"
#include "fl/fedavg.h"
#include "fl/fedavgm.h"
#include "fl/fednova.h"
#include "fl/fedprox.h"
#include "fl/qfedavg.h"
#include "fl/scaffold.h"
#include "fl/trainer.h"
#include "util/rng.h"

namespace rfed {
namespace {

constexpr const char* kAlgorithms[] = {
    "fedavg", "fedprox", "scaffold", "qfedavg",
    "fedavgm", "fednova", "rfedavg", "rfedavg_plus",
};

struct Golden {
  const char* name;
  double final_loss;
  double final_accuracy;
  int64_t total_bytes;
};

// Checked-in golden values for 3 rounds under the fixture below
// (data seed 1234, algorithm seed 77). Tolerance 1e-5 on the doubles,
// exact on the byte ledger.
constexpr Golden kGoldens[] = {
    {"fedavg", 2.3046531280, 0.1083333333, 46224},
    {"fedprox", 2.3046712875, 0.1083333333, 46224},
    {"scaffold", 2.3208435376, 0.0916666667, 92448},
    {"qfedavg", 2.3179347515, 0.0833333333, 46224},
    {"fedavgm", 2.2837883631, 0.1666666667, 46224},
    {"fednova", 2.2734843294, 0.1583333333, 46224},
    {"rfedavg", 2.3133333524, 0.0916666667, 47088},
    {"rfedavg_plus", 2.3111237685, 0.0916666667, 69912},
};

/// The shared tiny fixture: 240 train / 120 test MNIST-like examples
/// over 3 moderately non-IID clients, a minimal CNN.
struct GoldenFixture {
  GoldenFixture()
      : rng(1234),
        data(GenerateImageData(MnistLikeProfile(), 240, 120, &rng)),
        split(SimilarityPartition(data.train, 3, 0.5, &rng)) {
    for (auto& idx : split.client_indices) {
      views.push_back(ClientView{idx, {}});
    }
    CnnConfig mc;
    mc.conv1_channels = 2;
    mc.conv2_channels = 4;
    mc.feature_dim = 8;
    factory = MakeCnnFactory(mc);
  }
  Rng rng;
  SyntheticImageData data;
  ClientSplit split;
  std::vector<ClientView> views;
  ModelFactory factory;
};

FlConfig GoldenConfig() {
  FlConfig config;
  config.local_steps = 2;
  config.batch_size = 8;
  config.lr = 0.05;
  config.seed = 77;
  config.max_examples_per_pass = 64;
  return config;
}

std::unique_ptr<FederatedAlgorithm> MakeAlgorithm(const std::string& name,
                                                  const FlConfig& config,
                                                  GoldenFixture* fx) {
  const Dataset* train = &fx->data.train;
  if (name == "fedavg") {
    return std::make_unique<FedAvg>(config, train, fx->views, fx->factory);
  }
  if (name == "fedprox") {
    return std::make_unique<FedProx>(config, 0.01, train, fx->views,
                                     fx->factory);
  }
  if (name == "scaffold") {
    return std::make_unique<Scaffold>(config, train, fx->views, fx->factory);
  }
  if (name == "qfedavg") {
    return std::make_unique<QFedAvg>(config, 1.0, train, fx->views,
                                     fx->factory);
  }
  if (name == "fedavgm") {
    return std::make_unique<FedAvgM>(config, 0.9, train, fx->views,
                                     fx->factory);
  }
  if (name == "fednova") {
    return std::make_unique<FedNova>(config, 4, train, fx->views,
                                     fx->factory);
  }
  RegularizerOptions reg;
  reg.lambda = 0.01;
  if (name == "rfedavg") {
    return std::make_unique<RFedAvg>(config, reg, train, fx->views,
                                     fx->factory);
  }
  if (name == "rfedavg_plus") {
    return std::make_unique<RFedAvgPlus>(config, reg, train, fx->views,
                                         fx->factory);
  }
  ADD_FAILURE() << "unknown algorithm " << name;
  return nullptr;
}

RunHistory RunGolden(const std::string& name, const FlConfig& config,
                     int rounds) {
  GoldenFixture fx;
  auto algo = MakeAlgorithm(name, config, &fx);
  TrainerOptions options;
  options.eval_max_examples = 120;
  FederatedTrainer trainer(algo.get(), &fx.data.test, options);
  return trainer.Run(rounds);
}

class GoldenRunTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenRunTest, ThreeRoundRunMatchesCheckedInValues) {
  const std::string name = GetParam();
  RunHistory history = RunGolden(name, GoldenConfig(), 3);
  const double loss = history.rounds.back().train_loss;
  const double accuracy = history.FinalAccuracy();
  const int64_t bytes = history.TotalBytes();

  if (std::getenv("RFED_PRINT_GOLDEN") != nullptr) {
    std::printf("    {\"%s\", %.10f, %.10f, %lld},\n", name.c_str(), loss,
                accuracy, static_cast<long long>(bytes));
    return;
  }
  const Golden* golden = nullptr;
  for (const Golden& g : kGoldens) {
    if (name == g.name) golden = &g;
  }
  ASSERT_NE(golden, nullptr) << "no golden entry for " << name;
  EXPECT_NEAR(loss, golden->final_loss, 1e-5) << name;
  EXPECT_NEAR(accuracy, golden->final_accuracy, 1e-5) << name;
  EXPECT_EQ(bytes, golden->total_bytes) << name;
  // A fault-free run delivers every message and drops/retries none.
  EXPECT_EQ(history.TotalDropped(), 0);
  EXPECT_EQ(history.TotalRetried(), 0);
  EXPECT_GT(history.TotalDelivered(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, GoldenRunTest,
                         ::testing::ValuesIn(kAlgorithms));

// ---- Fault sweep: the acceptance scenario ----
// With drop probability 0.3 and a fixed seed, every algorithm completes
// 10 rounds without crashing, the global state stays finite, and the
// history reports nonzero dropped and retried message counts.

class FaultSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultSweepTest, TenRoundsUnderHeavyDropsStayFinite) {
  const std::string name = GetParam();
  FlConfig config = GoldenConfig();
  config.fault.drop_prob = 0.3;
  config.fault.max_retries = 2;
  config.fault.round_timeout_ms = 0.0;

  GoldenFixture fx;
  auto algo = MakeAlgorithm(name, config, &fx);
  TrainerOptions options;
  options.eval_max_examples = 120;
  options.eval_every = 5;
  FederatedTrainer trainer(algo.get(), &fx.data.test, options);
  RunHistory history = trainer.Run(10);

  ASSERT_EQ(history.rounds.size(), 10u);
  for (int64_t i = 0; i < algo->global_state().size(); ++i) {
    ASSERT_TRUE(std::isfinite(algo->global_state().at(i))) << name;
  }
  EXPECT_GT(history.TotalDropped(), 0) << name;
  EXPECT_GT(history.TotalRetried(), 0) << name;
  EXPECT_GT(history.TotalDelivered(), 0) << name;
  const double accuracy = history.FinalAccuracy();
  EXPECT_GE(accuracy, 0.0);
  EXPECT_LE(accuracy, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, FaultSweepTest,
                         ::testing::ValuesIn(kAlgorithms));

// ---- Sim-runtime goldens ----
// One deadline-mode and one async-mode row pin the virtual-time
// semantics: any change to the event model, the straggler draws, or the
// staleness weighting trips these. Regenerate like the main table:
//   RFED_PRINT_GOLDEN=1 ./build/tests/golden_test

struct SimGolden {
  const char* algorithm;
  SimMode mode;
  double final_loss;
  double virtual_ms;  ///< TotalVirtualMs over the 3 rounds
  int64_t total_bytes;
  int64_t stragglers_cut;
};

constexpr SimGolden kSimGoldens[] = {
    {"fedavg", SimMode::kDeadline, 2.3187667131, 81.5907334654, 46224, 2},
    {"rfedavg_plus", SimMode::kAsync, 2.2693006396, 81.6421905083, 51776, 0},
};

/// Lognormal stragglers over a finite network; deadline cuts at 40
/// virtual ms, async buffers 2 arrivals per server update.
FlConfig SimGoldenConfig(SimMode mode) {
  FlConfig config = GoldenConfig();
  config.sim.mode = mode;
  config.sim.compute.kind = ComputeModelKind::kLognormal;
  config.sim.compute.mean_ms_per_step = 10.0;
  config.sim.compute.sigma = 1.0;
  config.sim.network.down_bytes_per_ms = 1000.0;
  config.sim.network.up_bytes_per_ms = 1000.0;
  config.sim.network.base_latency_ms = 2.0;
  if (mode == SimMode::kDeadline) config.sim.deadline_ms = 40.0;
  if (mode == SimMode::kAsync) config.sim.async_buffer = 2;
  return config;
}

class SimGoldenTest : public ::testing::TestWithParam<int> {};

TEST_P(SimGoldenTest, SeededSimRunMatchesCheckedInValues) {
  const SimGolden& golden = kSimGoldens[GetParam()];
  RunHistory history =
      RunGolden(golden.algorithm, SimGoldenConfig(golden.mode), 3);
  const double loss = history.rounds.back().train_loss;
  const double virtual_ms = history.TotalVirtualMs();
  const int64_t bytes = history.TotalBytes();
  const int64_t cut = history.TotalStragglersCut();

  if (std::getenv("RFED_PRINT_GOLDEN") != nullptr) {
    std::printf("    {\"%s\", SimMode::%s, %.10f, %.10f, %lld, %lld},\n",
                golden.algorithm,
                golden.mode == SimMode::kDeadline ? "kDeadline" : "kAsync",
                loss, virtual_ms, static_cast<long long>(bytes),
                static_cast<long long>(cut));
    return;
  }
  EXPECT_NEAR(loss, golden.final_loss, 1e-5) << golden.algorithm;
  EXPECT_NEAR(virtual_ms, golden.virtual_ms, 1e-3) << golden.algorithm;
  EXPECT_EQ(bytes, golden.total_bytes) << golden.algorithm;
  EXPECT_EQ(cut, golden.stragglers_cut) << golden.algorithm;
  // Simulated time actually elapsed.
  EXPECT_GT(virtual_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(SimModes, SimGoldenTest, ::testing::Range(0, 2));

// ---- Kill-and-resume determinism goldens ----
// Checkpoint at round 3, throw the whole process state away (fresh
// fixture, fresh algorithm, fresh model init), restore, and continue to
// round 6: every deterministic per-round field and every model
// coordinate must match the uninterrupted 6-round run bit for bit. The
// config includes wire faults and a compute-time model so the channel
// RNG, the comm ledger, and the virtual clock restores are all load-
// bearing. (round_seconds is wall-clock and excluded.)

constexpr const char* kResumeAlgorithms[] = {"fedavg", "scaffold",
                                             "rfedavg_plus"};

FlConfig ResumeGoldenConfig() {
  FlConfig config = GoldenConfig();
  config.fault.drop_prob = 0.2;
  config.fault.max_retries = 1;
  config.fault.round_timeout_ms = 0.0;
  config.sim.compute.kind = ComputeModelKind::kLognormal;
  config.sim.compute.mean_ms_per_step = 10.0;
  config.sim.network.down_bytes_per_ms = 1000.0;
  config.sim.network.up_bytes_per_ms = 1000.0;
  return config;
}

struct ResumeRun {
  RunHistory history;
  Tensor state;
};

ResumeRun RunWithOptionalResume(const std::string& name, int rounds,
                                const TrainerOptions& options,
                                const RunCheckpoint* resume) {
  GoldenFixture fx;
  auto algo = MakeAlgorithm(name, ResumeGoldenConfig(), &fx);
  FederatedTrainer trainer(algo.get(), &fx.data.test, options);
  ResumeRun run;
  run.history = trainer.Run(rounds, resume);
  run.state = algo->global_state();
  return run;
}

class ResumeGoldenTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ResumeGoldenTest, KillAtRoundThreeThenResumeIsBitIdentical) {
  const std::string name = GetParam();
  const std::string path =
      ::testing::TempDir() + "golden_resume_" + name + ".ckpt";
  TrainerOptions options;
  options.eval_max_examples = 120;

  // Uninterrupted 6-round reference.
  ResumeRun full = RunWithOptionalResume(name, 6, options, nullptr);

  // "Crashed" run: checkpoints after round 3, then its entire process
  // state (algorithm, model, RNGs, channel) goes out of scope.
  TrainerOptions ck_options = options;
  ck_options.checkpoint_every = 3;
  ck_options.checkpoint_path = path;
  RunWithOptionalResume(name, 3, ck_options, nullptr);

  // Fresh state, restore, continue to round 6.
  RunCheckpoint resume = RunCheckpoint::Load(path);
  ASSERT_EQ(resume.next_round, 3);
  ResumeRun resumed = RunWithOptionalResume(name, 6, options, &resume);

  ASSERT_EQ(resumed.history.rounds.size(), full.history.rounds.size());
  for (size_t i = 0; i < full.history.rounds.size(); ++i) {
    const RoundMetrics& a = full.history.rounds[i];
    const RoundMetrics& b = resumed.history.rounds[i];
    EXPECT_EQ(a.train_loss, b.train_loss) << name << " round " << i;
    EXPECT_EQ(a.test_accuracy, b.test_accuracy) << name << " round " << i;
    EXPECT_EQ(a.round_bytes, b.round_bytes) << name << " round " << i;
    EXPECT_EQ(a.delivered_messages, b.delivered_messages) << name;
    EXPECT_EQ(a.dropped_messages, b.dropped_messages) << name;
    EXPECT_EQ(a.retried_messages, b.retried_messages) << name;
    EXPECT_EQ(a.virtual_ms, b.virtual_ms) << name << " round " << i;
  }
  ASSERT_EQ(resumed.state.size(), full.state.size());
  for (int64_t i = 0; i < full.state.size(); ++i) {
    ASSERT_EQ(full.state.at(i), resumed.state.at(i))
        << name << " model coordinate " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(KillAndResume, ResumeGoldenTest,
                         ::testing::ValuesIn(kResumeAlgorithms));

}  // namespace
}  // namespace rfed
