// Differential tests of the multi-process deployment (docs/DEPLOYMENT.md):
// rfed_server + rfed_worker processes over localhost TCP must reproduce
// the in-process simulator byte for byte. The sim-oracle contract: the
// final model tensors are byte-identical and every per-round CSV column
// matches exactly, except the process-local compute-effort columns
// (round_seconds, peak_scratch_bytes, kernel.*, autograd.*, serve.*) whose
// values depend on which process happened to run the flops — the server
// delegates local training to workers, so its tape/arena accounting
// legitimately differs from the oracle's — and the serve.* fault-handling
// counters exist only where a RemoteExecutor does.
//
// The oracle replays each scenario with a plain FederatedTrainer in a
// fork()ed child of this harness (a fresh process keeps the process-global
// metrics registry clean, so the oracle CSV carries exactly the columns a
// standalone run would).

#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <atomic>
#include <chrono>

#include "fl/checkpoint.h"
#include "fl/trainer.h"
#include "net/fault_proxy.h"
#include "net/frame.h"
#include "net/socket.h"
#include "serve/protocol.h"
#include "serve/remote_executor.h"
#include "serve/scenario.h"
#include "serve/worker_loop.h"
#include "util/backoff.h"
#include "util/flags.h"

#ifndef RFED_SERVER_BIN
#define RFED_SERVER_BIN "rfed_server"
#endif
#ifndef RFED_WORKER_BIN
#define RFED_WORKER_BIN "rfed_worker"
#endif

namespace rfed {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "serve_test_" + name;
}

/// The tiny scenario every differential case runs: small enough that a
/// full server+workers+oracle matrix stays in single-digit seconds, big
/// enough that every client trains and the model moves each round.
std::vector<std::string> TinyScenarioFlags(const std::string& method,
                                           int rounds) {
  return {"--dataset",        "mnist",  "--model",         "mlp",
          "--method",         method,   "--clients",       "4",
          "--rounds",         std::to_string(rounds),
          "--train_examples", "96",     "--test_examples", "48",
          "--batch",          "8",      "--local_steps",   "2",
          "--sample_ratio",   "1.0",    "--eval_every",    "1",
          "--seed",           "3"};
}

serve::Scenario BuildFromArgs(const std::vector<std::string>& args) {
  std::vector<const char*> argv = {"serve_test"};
  for (const std::string& a : args) argv.push_back(a.c_str());
  FlagParser flags(static_cast<int>(argv.size()), argv.data());
  return serve::BuildScenario(flags);
}

// ---- subprocess plumbing ----

pid_t Spawn(const std::string& binary, const std::vector<std::string>& args,
            const std::string& log_path) {
  pid_t pid = fork();
  if (pid != 0) return pid;
  int fd = open(log_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd >= 0) {
    dup2(fd, 1);
    dup2(fd, 2);
    close(fd);
  }
  std::vector<std::string> full = {binary};
  full.insert(full.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(full.size() + 1);
  for (std::string& a : full) argv.push_back(a.data());
  argv.push_back(nullptr);
  execv(binary.c_str(), argv.data());
  _exit(127);
}

/// Waits for `pid` with a deadline; SIGKILLs on timeout. Returns the
/// exit code, 128+signal for a signalled exit, or -1 on timeout.
int WaitForExit(pid_t pid, int timeout_ms = 60000) {
  for (int waited = 0; waited < timeout_ms; waited += 10) {
    int status = 0;
    if (waitpid(pid, &status, WNOHANG) == pid) {
      if (WIFEXITED(status)) return WEXITSTATUS(status);
      if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
      return -1;
    }
    usleep(10 * 1000);
  }
  kill(pid, SIGKILL);
  waitpid(pid, nullptr, 0);
  return -1;
}

std::string ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Polls `port_file` (written by rfed_server under --listen port 0)
/// until it holds the bound port.
int AwaitPortFile(const std::string& port_file, int timeout_ms = 20000) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    const std::string text = ReadFileText(port_file);
    if (!text.empty() && text.find('\n') != std::string::npos) {
      return std::stoi(text);
    }
    usleep(20 * 1000);
  }
  return -1;
}

bool AwaitLogContains(const std::string& log_path, const std::string& needle,
                      int timeout_ms = 20000) {
  for (int waited = 0; waited < timeout_ms; waited += 10) {
    if (ReadFileText(log_path).find(needle) != std::string::npos) return true;
    usleep(10 * 1000);
  }
  return false;
}

// ---- the sim oracle ----

/// Replays the scenario with the plain in-process trainer in a forked
/// child (fresh metrics registry), mirroring rfed_server's trainer
/// options, and writes the oracle CSV + final model.
void RunOracle(const std::vector<std::string>& args,
               const std::string& csv_path, const std::string& model_path) {
  pid_t pid = fork();
  if (pid == 0) {
    serve::Scenario scenario = BuildFromArgs(args);
    TrainerOptions options;
    options.eval_every = scenario.eval_every;
    options.eval_max_examples = 400;
    FederatedTrainer trainer(scenario.algorithm.get(), scenario.test.get(),
                             options);
    RunHistory history = trainer.Run(scenario.rounds);
    SaveHistoryCsv(history, csv_path);
    SaveTensorToFile(scenario.algorithm->global_state(), model_path);
    _exit(0);
  }
  ASSERT_EQ(WaitForExit(pid), 0) << "oracle run failed";
}

// ---- masked CSV comparison (the sim-oracle contract) ----

bool MaskedColumn(const std::string& name) {
  return name == "round_seconds" || name == "peak_scratch_bytes" ||
         name.rfind("kernel.", 0) == 0 || name.rfind("autograd.", 0) == 0 ||
         name.rfind("serve.", 0) == 0;
}

std::vector<std::vector<std::string>> ParseCsv(const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream ls(line);
    while (std::getline(ls, cell, ',')) cells.push_back(cell);
    if (!line.empty() && line.back() == ',') cells.push_back("");
    rows.push_back(std::move(cells));
  }
  return rows;
}

/// Asserts the two runs agree on every trajectory-bearing cell: the
/// non-masked column names must match in order, and each of their cells
/// must be byte-identical. Masked columns are process-local effort
/// accounting and may differ in value or (for kernel.*) presence.
void ExpectCsvEquivalent(const std::string& got_path,
                         const std::string& want_path) {
  const auto got = ParseCsv(got_path);
  const auto want = ParseCsv(want_path);
  ASSERT_GE(got.size(), 2u) << got_path << " is empty";
  ASSERT_EQ(got.size(), want.size()) << "row count mismatch";
  std::vector<size_t> got_cols, want_cols;
  for (size_t c = 0; c < got[0].size(); ++c) {
    if (!MaskedColumn(got[0][c])) got_cols.push_back(c);
  }
  for (size_t c = 0; c < want[0].size(); ++c) {
    if (!MaskedColumn(want[0][c])) want_cols.push_back(c);
  }
  ASSERT_EQ(got_cols.size(), want_cols.size())
      << "column sets differ: " << got_path << " vs " << want_path;
  for (size_t k = 0; k < got_cols.size(); ++k) {
    ASSERT_EQ(got[0][got_cols[k]], want[0][want_cols[k]])
        << "column name mismatch at index " << k;
  }
  for (size_t r = 1; r < got.size(); ++r) {
    ASSERT_EQ(got[r].size(), got[0].size()) << "ragged row " << r;
    ASSERT_EQ(want[r].size(), want[0].size()) << "ragged row " << r;
    for (size_t k = 0; k < got_cols.size(); ++k) {
      EXPECT_EQ(got[r][got_cols[k]], want[r][want_cols[k]])
          << "row " << r << " column " << got[0][got_cols[k]];
    }
  }
}

void ExpectFilesIdentical(const std::string& got, const std::string& want) {
  const std::string a = ReadFileText(got);
  const std::string b = ReadFileText(want);
  ASSERT_FALSE(a.empty()) << got << " is empty";
  EXPECT_TRUE(a == b) << got << " differs from " << want << " ("
                      << a.size() << " vs " << b.size() << " bytes)";
}

// ---- the deployment harness ----

struct DeploymentResult {
  std::string csv;
  std::string model;
};

/// Launches rfed_server (+--listen port 0) and `num_workers` rfed_worker
/// processes over localhost, waits for a clean exit everywhere, and
/// returns the run's CSV + final-model paths.
DeploymentResult RunDeployment(const std::string& tag,
                               const std::vector<std::string>& scenario,
                               int num_workers, bool pipeline,
                               std::vector<std::string> extra_server_args =
                                   {}) {
  DeploymentResult out;
  out.csv = TempPath(tag + "_server.csv");
  out.model = TempPath(tag + "_server.model");
  const std::string port_file = TempPath(tag + ".port");
  std::remove(port_file.c_str());
  std::vector<std::string> server_args = scenario;
  server_args.insert(server_args.end(),
                     {"--listen", "127.0.0.1:0", "--port_file", port_file,
                      "--workers", std::to_string(num_workers), "--pipeline",
                      pipeline ? "true" : "false", "--csv_out", out.csv,
                      "--model_out", out.model});
  server_args.insert(server_args.end(), extra_server_args.begin(),
                     extra_server_args.end());
  const pid_t server =
      Spawn(RFED_SERVER_BIN, server_args, TempPath(tag + "_server.log"));
  const int port = AwaitPortFile(port_file);
  EXPECT_GT(port, 0) << "server never published its port";
  std::vector<pid_t> workers;
  for (int w = 0; w < num_workers; ++w) {
    std::vector<std::string> worker_args = scenario;
    worker_args.insert(worker_args.end(),
                       {"--connect", "127.0.0.1:" + std::to_string(port),
                        "--worker_id", std::to_string(w), "--workers",
                        std::to_string(num_workers)});
    workers.push_back(Spawn(RFED_WORKER_BIN, worker_args,
                            TempPath(tag + "_worker" + std::to_string(w) +
                                     ".log")));
  }
  EXPECT_EQ(WaitForExit(server), 0) << "server exited uncleanly; log:\n"
                                    << ReadFileText(TempPath(tag +
                                                             "_server.log"));
  for (int w = 0; w < num_workers; ++w) {
    EXPECT_EQ(WaitForExit(workers[static_cast<size_t>(w)]), 0)
        << "worker " << w << " exited uncleanly; log:\n"
        << ReadFileText(TempPath(tag + "_worker" + std::to_string(w) +
                                 ".log"));
  }
  return out;
}

// The acceptance matrix: stateless (FedAvg), stateful with control
// variates (Scaffold), and the paper's flagship (rFedAvg+), each run
// lockstep and pipelined, always against two workers. One oracle per
// method — pipelining must not change the trajectory.
TEST(ServeDifferential, MatrixMatchesOracle) {
  const struct {
    const char* method;
    const char* tag;
  } kMethods[] = {
      {"FedAvg", "fedavg"}, {"Scaffold", "scaffold"}, {"rFedAvg+", "rfedavgp"}};
  for (const auto& m : kMethods) {
    const std::vector<std::string> scenario = TinyScenarioFlags(m.method, 3);
    const std::string oracle_csv = TempPath(std::string(m.tag) + "_oracle.csv");
    const std::string oracle_model =
        TempPath(std::string(m.tag) + "_oracle.model");
    RunOracle(scenario, oracle_csv, oracle_model);
    for (const bool pipeline : {false, true}) {
      SCOPED_TRACE(std::string(m.method) +
                   (pipeline ? " pipelined" : " lockstep"));
      const std::string tag =
          std::string(m.tag) + (pipeline ? "_pipe" : "_lock");
      const DeploymentResult run =
          RunDeployment(tag, scenario, /*num_workers=*/2, pipeline);
      ExpectCsvEquivalent(run.csv, oracle_csv);
      ExpectFilesIdentical(run.model, oracle_model);
    }
  }
}

// SIGTERM mid-run flushes an off-cadence checkpoint; a fresh deployment
// resuming from it reproduces the uninterrupted oracle byte for byte.
TEST(ServeDifferential, SigtermCheckpointThenResumeMatchesOracle) {
  const int kRounds = 6;
  const std::vector<std::string> scenario =
      TinyScenarioFlags("rFedAvg+", kRounds);
  const std::string oracle_csv = TempPath("sigterm_oracle.csv");
  const std::string oracle_model = TempPath("sigterm_oracle.model");
  RunOracle(scenario, oracle_csv, oracle_model);

  const std::string ck = TempPath("sigterm.ck");
  std::remove(ck.c_str());

  // Phase 1: deploy, let it pass round 1, SIGTERM the server. It must
  // finish the round in flight, write the checkpoint, release the
  // workers, and exit 0.
  {
    const std::string port_file = TempPath("sigterm1.port");
    const std::string server_log = TempPath("sigterm1_server.log");
    std::remove(port_file.c_str());
    std::vector<std::string> server_args = scenario;
    server_args.insert(server_args.end(),
                       {"--listen", "127.0.0.1:0", "--port_file", port_file,
                        "--workers", "2", "--checkpoint_path", ck});
    const pid_t server = Spawn(RFED_SERVER_BIN, server_args, server_log);
    const int port = AwaitPortFile(port_file);
    ASSERT_GT(port, 0);
    std::vector<pid_t> workers;
    for (int w = 0; w < 2; ++w) {
      std::vector<std::string> worker_args = scenario;
      worker_args.insert(worker_args.end(),
                         {"--connect", "127.0.0.1:" + std::to_string(port),
                          "--worker_id", std::to_string(w), "--workers",
                          "2"});
      workers.push_back(Spawn(RFED_WORKER_BIN, worker_args,
                              TempPath("sigterm1_worker" +
                                       std::to_string(w) + ".log")));
    }
    ASSERT_TRUE(AwaitLogContains(server_log, " round 1 "))
        << "server never reached round 1; log:\n" << ReadFileText(server_log);
    kill(server, SIGTERM);
    EXPECT_EQ(WaitForExit(server), 0)
        << "server log:\n" << ReadFileText(server_log);
    for (pid_t w : workers) EXPECT_EQ(WaitForExit(w), 0);
    ASSERT_FALSE(ReadFileText(ck).empty())
        << "no checkpoint written on SIGTERM";
    const RunCheckpoint saved = RunCheckpoint::Load(ck);
    EXPECT_GT(saved.next_round, 0);
    EXPECT_LT(saved.next_round, kRounds)
        << "server finished before the signal landed — nothing resumed";
  }

  // Phase 2: a brand-new deployment resumes from the checkpoint; its
  // full history (checkpointed prefix + resumed rounds) and final model
  // must match the uninterrupted oracle.
  const DeploymentResult resumed =
      RunDeployment("sigterm2", scenario, /*num_workers=*/2,
                    /*pipeline=*/false, {"--resume_from", ck});
  ExpectCsvEquivalent(resumed.csv, oracle_csv);
  ExpectFilesIdentical(resumed.model, oracle_model);
}

// ---- fault tolerance (the chaos differential) ----
//
// Declared before the in-process loopback test for the same ordering
// reason noted there: RunOracle's fork must happen while the
// process-global metrics registry is still clean, or the oracle CSV
// inherits columns (e.g. SCAFFOLD's comm.*.control) that the fresh
// rfed_server process never registers.

net::TcpConnection RetryConnect(int port) {
  BackoffPolicy policy;
  policy.initial_ms = 1.0;
  policy.max_ms = 10.0;
  return net::TcpConnection::ConnectWithRetry("127.0.0.1", port, 200, policy);
}

// The chaos differential: three workers behind a seeded FaultProxy whose
// plans sever two of the connections mid-run (after their 2nd and 3rd
// worker->server frames, i.e. during the early rounds). The killed
// workers' processes see EOF and rejoin through the proxy; the server
// reassigns whatever jobs the dead connections still owed. The final
// model and the masked CSV must STILL be byte-identical to the fault-free
// in-process oracle — worker death is invisible to the trajectory.
TEST(ServeChaos, WorkerKillsMatrixMatchesOracle) {
  const struct {
    const char* method;
    const char* tag;
  } kMethods[] = {{"FedAvg", "chaos_fedavg"}, {"rFedAvg+", "chaos_rfp"}};
  for (const auto& m : kMethods) {
    const std::vector<std::string> scenario = TinyScenarioFlags(m.method, 3);
    const std::string oracle_csv = TempPath(std::string(m.tag) + "_oracle.csv");
    const std::string oracle_model =
        TempPath(std::string(m.tag) + "_oracle.model");
    RunOracle(scenario, oracle_csv, oracle_model);
    for (const bool pipeline : {false, true}) {
      SCOPED_TRACE(std::string(m.method) +
                   (pipeline ? " pipelined" : " lockstep"));
      const std::string tag =
          std::string(m.tag) + (pipeline ? "_pipe" : "_lock");
      const std::string csv = TempPath(tag + "_server.csv");
      const std::string model = TempPath(tag + "_server.model");
      const std::string port_file = TempPath(tag + ".port");
      const std::string server_log = TempPath(tag + "_server.log");
      std::remove(port_file.c_str());
      std::vector<std::string> server_args = scenario;
      server_args.insert(
          server_args.end(),
          {"--listen", "127.0.0.1:0", "--port_file", port_file, "--workers",
           "3", "--pipeline", pipeline ? "true" : "false", "--csv_out", csv,
           "--model_out", model, "--worker_timeout_ms", "10000",
           "--max_worker_restarts", "8"});
      const pid_t server = Spawn(RFED_SERVER_BIN, server_args, server_log);
      const int port = AwaitPortFile(port_file);
      ASSERT_GT(port, 0) << "server never published its port";

      net::FaultProxy proxy("127.0.0.1", port);
      // Seeded kill plan: whichever workers land on connections 0 and 1
      // die after forwarding their HELLO plus one / two RESULT frames.
      // Rejoin connections get fresh indices with no plan and survive.
      net::FaultPlan kill_early;
      kill_early.kill_after_frames = 2;
      proxy.SetPlan(0, kill_early);
      net::FaultPlan kill_later;
      kill_later.kill_after_frames = 3;
      proxy.SetPlan(1, kill_later);

      std::vector<pid_t> workers;
      for (int w = 0; w < 3; ++w) {
        std::vector<std::string> worker_args = scenario;
        worker_args.insert(
            worker_args.end(),
            {"--connect", "127.0.0.1:" + std::to_string(proxy.listen_port()),
             "--worker_id", std::to_string(w), "--workers", "3",
             "--rejoin_attempts", "10"});
        workers.push_back(Spawn(RFED_WORKER_BIN, worker_args,
                                TempPath(tag + "_worker" + std::to_string(w) +
                                         ".log")));
      }
      EXPECT_EQ(WaitForExit(server), 0)
          << "server exited uncleanly; log:\n" << ReadFileText(server_log);
      for (int w = 0; w < 3; ++w) {
        EXPECT_EQ(WaitForExit(workers[static_cast<size_t>(w)]), 0)
            << "worker " << w << " exited uncleanly; log:\n"
            << ReadFileText(TempPath(tag + "_worker" + std::to_string(w) +
                                     ".log"));
      }
      proxy.Stop();
      EXPECT_EQ(proxy.killed_connections(), 2) << "chaos plan did not fire";
      const std::string log = ReadFileText(server_log);
      EXPECT_NE(log.find("lost"), std::string::npos)
          << "server never observed a worker death; log:\n" << log;
      EXPECT_NE(log.find("rejoined"), std::string::npos)
          << "no worker rejoined; log:\n" << log;
      ExpectCsvEquivalent(csv, oracle_csv);
      ExpectFilesIdentical(model, oracle_model);
    }
  }
}

// In-process loopback: RemoteExecutor on the server side, RunWorkerLoop
// on a std::thread, real localhost sockets in between — the whole serve
// path under this binary's sanitizers, no fork/exec. Ordering note: the
// oracle trains first so the process-global metrics registry holds the
// identical column set when each run's CSV is written.
TEST(ServeLoopback, InProcessWorkerThreadMatchesOracle) {
  const std::vector<std::string> flags = TinyScenarioFlags("Scaffold", 3);
  TrainerOptions options;
  options.eval_every = 1;
  options.eval_max_examples = 400;

  serve::Scenario oracle = BuildFromArgs(flags);
  FederatedTrainer oracle_trainer(oracle.algorithm.get(), oracle.test.get(),
                                  options);
  RunHistory oracle_history = oracle_trainer.Run(oracle.rounds);

  serve::Scenario server_side = BuildFromArgs(flags);
  serve::Scenario worker_side = BuildFromArgs(flags);
  std::vector<uint8_t> state_blob;
  server_side.algorithm->SaveRunState(&state_blob);

  net::TcpListener listener("127.0.0.1", 0);
  const int port = listener.bound_port();
  std::thread worker([&] {
    BackoffPolicy policy;
    policy.initial_ms = 1.0;
    policy.max_ms = 10.0;
    net::TcpConnection conn =
        net::TcpConnection::ConnectWithRetry("127.0.0.1", port, 100, policy);
    if (!conn.valid()) {
      ADD_FAILURE() << "worker thread could not connect";
      return;
    }
    EXPECT_TRUE(serve::RunWorkerLoop(worker_side.algorithm.get(), &conn,
                                     /*worker_id=*/0, /*num_workers=*/1,
                                     worker_side.fingerprint)
                    .clean_shutdown);
  });
  serve::RemoteExecutor executor(/*pipelined=*/true);
  executor.AcceptWorkers(&listener, /*num_workers=*/1,
                         server_side.fingerprint, state_blob);
  server_side.algorithm->set_train_executor(&executor);
  FederatedTrainer serve_trainer(server_side.algorithm.get(),
                                 server_side.test.get(), options);
  RunHistory serve_history = serve_trainer.Run(server_side.rounds);
  executor.Shutdown();
  worker.join();

  EXPECT_GT(executor.stats().jobs_sent, 0);
  EXPECT_EQ(executor.stats().jobs_sent, executor.stats().results_received);

  const std::string oracle_csv = TempPath("loopback_oracle.csv");
  const std::string serve_csv = TempPath("loopback_serve.csv");
  SaveHistoryCsv(oracle_history, oracle_csv);
  SaveHistoryCsv(serve_history, serve_csv);
  ExpectCsvEquivalent(serve_csv, oracle_csv);

  const std::string oracle_model = TempPath("loopback_oracle.model");
  const std::string serve_model = TempPath("loopback_serve.model");
  SaveTensorToFile(oracle.algorithm->global_state(), oracle_model);
  SaveTensorToFile(server_side.algorithm->global_state(), serve_model);
  ExpectFilesIdentical(serve_model, oracle_model);
}

// A worker whose scenario flags differ (here: a different seed) must be
// rejected at the handshake — the fingerprints disagree, and letting it
// in would corrupt the run silently.
TEST(ServeHandshakeDeathTest, FingerprintMismatchAborts) {
  serve::Scenario ours = BuildFromArgs(TinyScenarioFlags("FedAvg", 2));
  serve::Scenario theirs = BuildFromArgs(
      [] {
        auto f = TinyScenarioFlags("FedAvg", 2);
        f.back() = "4";  // --seed 4
        return f;
      }());
  ASSERT_NE(ours.fingerprint, theirs.fingerprint);
  EXPECT_DEATH(
      {
        std::vector<uint8_t> blob;
        ours.algorithm->SaveRunState(&blob);
        net::TcpListener listener("127.0.0.1", 0);
        const int port = listener.bound_port();
        std::thread worker([&] {
          net::TcpConnection conn =
              net::TcpConnection::Connect("127.0.0.1", port);
          serve::RunWorkerLoop(theirs.algorithm.get(), &conn, 0, 1,
                               theirs.fingerprint);
        });
        serve::RemoteExecutor executor(false);
        executor.AcceptWorkers(&listener, 1, ours.fingerprint, blob);
        worker.join();
      },
      "different scenario");
}

// A worker that accepts jobs but never answers (black-holed link) must be
// declared dead by the recv deadline and its outstanding jobs stolen by
// the survivor — with no trace in the trajectory.
TEST(ServeFault, BlackHoledWorkerJobsReassigned) {
  const std::vector<std::string> flags = TinyScenarioFlags("FedAvg", 2);
  TrainerOptions options;
  options.eval_every = 1;
  options.eval_max_examples = 400;

  serve::Scenario oracle = BuildFromArgs(flags);
  FederatedTrainer oracle_trainer(oracle.algorithm.get(), oracle.test.get(),
                                  options);
  RunHistory oracle_history = oracle_trainer.Run(oracle.rounds);

  serve::Scenario server_side = BuildFromArgs(flags);
  serve::Scenario worker_side = BuildFromArgs(flags);
  std::vector<uint8_t> state_blob;
  server_side.algorithm->SaveRunState(&state_blob);

  net::TcpListener listener("127.0.0.1", 0);
  const int port = listener.bound_port();
  std::thread black_hole([&] {
    net::TcpConnection conn = RetryConnect(port);
    ASSERT_TRUE(conn.valid());
    serve::HelloMessage hello;
    hello.worker_id = 0;
    hello.num_workers = 2;
    hello.fingerprint = server_side.fingerprint;
    EXPECT_TRUE(net::SendFrame(&conn, net::FrameType::kHello, hello.Encode()));
    net::FrameAssembler assembler;
    net::Frame frame;
    EXPECT_TRUE(net::RecvFrame(&conn, &assembler, &frame));  // HELLO_ACK
    // Swallow every JOB without answering until the server, convinced by
    // the silence, severs the link.
    while (net::RecvFrame(&conn, &assembler, &frame)) {
    }
  });
  std::thread worker([&] {
    net::TcpConnection conn = RetryConnect(port);
    ASSERT_TRUE(conn.valid());
    EXPECT_TRUE(serve::RunWorkerLoop(worker_side.algorithm.get(), &conn,
                                     /*worker_id=*/1, /*num_workers=*/2,
                                     worker_side.fingerprint)
                    .clean_shutdown);
  });
  serve::ExecutorOptions eo;
  eo.worker_timeout_ms = 300;
  serve::RemoteExecutor executor(eo);
  executor.AcceptWorkers(&listener, /*num_workers=*/2,
                         server_side.fingerprint, state_blob);
  server_side.algorithm->set_train_executor(&executor);
  FederatedTrainer trainer(server_side.algorithm.get(),
                           server_side.test.get(), options);
  RunHistory serve_history = trainer.Run(server_side.rounds);
  executor.Shutdown();
  worker.join();
  black_hole.join();

  EXPECT_GT(executor.stats().jobs_reassigned, 0);

  const std::string oracle_csv = TempPath("blackhole_oracle.csv");
  const std::string serve_csv = TempPath("blackhole_serve.csv");
  SaveHistoryCsv(oracle_history, oracle_csv);
  SaveHistoryCsv(serve_history, serve_csv);
  ExpectCsvEquivalent(serve_csv, oracle_csv);
  const std::string oracle_model = TempPath("blackhole_oracle.model");
  const std::string serve_model = TempPath("blackhole_serve.model");
  SaveTensorToFile(oracle.algorithm->global_state(), oracle_model);
  SaveTensorToFile(server_side.algorithm->global_state(), serve_model);
  ExpectFilesIdentical(serve_model, oracle_model);
}

// In-process rejoin under the sanitizers: the single worker's connection
// is severed by a FaultProxy right after round 0's results; the worker
// re-handshakes with HELLO_REJOIN straight at the server, restores the
// fresh state image, and finishes the run — byte-identical to the
// oracle, with the restart counted.
TEST(ServeFault, KilledWorkerRejoinsAndRunMatchesOracle) {
  const std::vector<std::string> flags = TinyScenarioFlags("rFedAvg+", 3);
  TrainerOptions options;
  options.eval_every = 1;
  options.eval_max_examples = 400;

  serve::Scenario oracle = BuildFromArgs(flags);
  FederatedTrainer oracle_trainer(oracle.algorithm.get(), oracle.test.get(),
                                  options);
  RunHistory oracle_history = oracle_trainer.Run(oracle.rounds);

  serve::Scenario server_side = BuildFromArgs(flags);
  serve::Scenario worker_side = BuildFromArgs(flags);
  std::vector<uint8_t> state_blob;
  server_side.algorithm->SaveRunState(&state_blob);

  net::TcpListener listener("127.0.0.1", 0);
  net::FaultProxy proxy("127.0.0.1", listener.bound_port());
  net::FaultPlan plan;
  plan.kill_after_frames = 5;  // HELLO + round 0's four RESULTs
  proxy.SetPlan(0, plan);

  std::thread worker([&] {
    net::TcpConnection conn = RetryConnect(proxy.listen_port());
    ASSERT_TRUE(conn.valid());
    const serve::WorkerLoopResult first = serve::RunWorkerLoop(
        worker_side.algorithm.get(), &conn, /*worker_id=*/0,
        /*num_workers=*/1, worker_side.fingerprint);
    EXPECT_FALSE(first.clean_shutdown);
    EXPECT_EQ(first.last_round, 0);
    conn.Close();
    // worker_main's rejoin path, inlined: reconnect (here straight at
    // the server, skipping the proxy) and re-handshake with
    // HELLO_REJOIN carrying the last completed round.
    net::TcpConnection again = RetryConnect(listener.bound_port());
    ASSERT_TRUE(again.valid());
    EXPECT_TRUE(serve::RunWorkerLoop(worker_side.algorithm.get(), &again,
                                     /*worker_id=*/0, /*num_workers=*/1,
                                     worker_side.fingerprint,
                                     /*rejoin_round=*/first.last_round)
                    .clean_shutdown);
  });
  serve::ExecutorOptions eo;
  eo.max_worker_restarts = 1;
  serve::RemoteExecutor executor(eo);
  executor.AcceptWorkers(&listener, /*num_workers=*/1,
                         server_side.fingerprint, state_blob);
  FederatedAlgorithm* algorithm = server_side.algorithm.get();
  executor.set_state_provider([algorithm] {
    std::vector<uint8_t> blob;
    algorithm->SaveRunState(&blob);
    return blob;
  });
  server_side.algorithm->set_train_executor(&executor);
  FederatedTrainer trainer(server_side.algorithm.get(),
                           server_side.test.get(), options);
  RunHistory serve_history = trainer.Run(server_side.rounds);
  executor.Shutdown();
  worker.join();
  proxy.Stop();

  EXPECT_EQ(executor.stats().worker_restarts, 1);
  EXPECT_EQ(proxy.killed_connections(), 1);

  const std::string oracle_csv = TempPath("rejoin_oracle.csv");
  const std::string serve_csv = TempPath("rejoin_serve.csv");
  SaveHistoryCsv(oracle_history, oracle_csv);
  SaveHistoryCsv(serve_history, serve_csv);
  ExpectCsvEquivalent(serve_csv, oracle_csv);
  const std::string oracle_model = TempPath("rejoin_oracle.model");
  const std::string serve_model = TempPath("rejoin_serve.model");
  SaveTensorToFile(oracle.algorithm->global_state(), oracle_model);
  SaveTensorToFile(server_side.algorithm->global_state(), serve_model);
  ExpectFilesIdentical(serve_model, oracle_model);
}

// Regression for the Shutdown/sender teardown race: a sender thread
// wedged mid-send on a peer that stopped reading must be interrupted
// (close-interrupts-send) so Shutdown returns instead of deadlocking in
// join().
TEST(ServeFault, ShutdownInterruptsWedgedSender) {
  net::TcpListener listener("127.0.0.1", 0);
  const int port = listener.bound_port();
  std::atomic<bool> release{false};
  std::thread peer([&] {
    net::TcpConnection conn = RetryConnect(port);
    ASSERT_TRUE(conn.valid());
    serve::HelloMessage hello;
    hello.worker_id = 0;
    hello.num_workers = 1;
    hello.fingerprint = 7;
    EXPECT_TRUE(net::SendFrame(&conn, net::FrameType::kHello, hello.Encode()));
    net::FrameAssembler assembler;
    net::Frame frame;
    EXPECT_TRUE(net::RecvFrame(&conn, &assembler, &frame));  // HELLO_ACK
    // Stop reading: once both socket buffers fill, the server's sender
    // blocks inside SendAll.
    while (!release.load()) usleep(1000);
  });
  serve::ExecutorOptions eo;
  eo.worker_timeout_ms = 200;  // also the Shutdown grace
  serve::RemoteExecutor executor(eo);
  executor.AcceptWorkers(&listener, 1, /*fingerprint=*/7, {});
  const Tensor big = Tensor::Zeros({1 << 20});  // 4 MiB per JOB frame
  for (int client = 0; client < 3; ++client) {
    executor.Submit(/*round=*/0, client, big, {}, {});
  }
  const auto t0 = std::chrono::steady_clock::now();
  executor.Shutdown();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 10.0) << "Shutdown took " << elapsed << "s";
  release.store(true);
  peer.join();
}

// Losing the only worker with the restart budget already spent cannot be
// ridden out — the run must abort with a clear error, not hang waiting
// for a rejoin that can never be accepted.
TEST(ServeFaultDeathTest, RestartBudgetExhaustedAborts) {
  serve::Scenario s = BuildFromArgs(TinyScenarioFlags("FedAvg", 2));
  EXPECT_DEATH(
      {
        std::vector<uint8_t> blob;
        s.algorithm->SaveRunState(&blob);
        net::TcpListener listener("127.0.0.1", 0);
        const int port = listener.bound_port();
        std::thread worker([&] {
          net::TcpConnection conn =
              net::TcpConnection::Connect("127.0.0.1", port);
          serve::HelloMessage hello;
          hello.worker_id = 0;
          hello.num_workers = 1;
          hello.fingerprint = s.fingerprint;
          net::SendFrame(&conn, net::FrameType::kHello, hello.Encode());
          net::FrameAssembler assembler;
          net::Frame frame;
          net::RecvFrame(&conn, &assembler, &frame);  // HELLO_ACK
          // Die before serving a single job.
        });
        serve::ExecutorOptions eo;
        eo.worker_timeout_ms = 100;
        eo.max_worker_restarts = 0;
        serve::RemoteExecutor executor(eo);
        executor.AcceptWorkers(&listener, 1, s.fingerprint, blob);
        worker.join();
        s.algorithm->set_train_executor(&executor);
        s.algorithm->RunRound(0);
      },
      "restart budget");
}

// A rejoining worker built from different scenario flags must be refused
// exactly like an initial handshake would refuse it.
TEST(ServeFaultDeathTest, RejoinFingerprintMismatchAborts) {
  serve::Scenario s = BuildFromArgs(TinyScenarioFlags("FedAvg", 2));
  EXPECT_DEATH(
      {
        std::vector<uint8_t> blob;
        s.algorithm->SaveRunState(&blob);
        net::TcpListener listener("127.0.0.1", 0);
        const int port = listener.bound_port();
        std::thread first([&] {
          net::TcpConnection conn =
              net::TcpConnection::Connect("127.0.0.1", port);
          serve::HelloMessage hello;
          hello.worker_id = 0;
          hello.num_workers = 1;
          hello.fingerprint = s.fingerprint;
          net::SendFrame(&conn, net::FrameType::kHello, hello.Encode());
          net::FrameAssembler assembler;
          net::Frame frame;
          net::RecvFrame(&conn, &assembler, &frame);  // HELLO_ACK, then die
        });
        serve::ExecutorOptions eo;
        eo.worker_timeout_ms = 100;
        eo.max_worker_restarts = 1;
        serve::RemoteExecutor executor(eo);
        executor.AcceptWorkers(&listener, 1, s.fingerprint, blob);
        first.join();
        std::thread impostor([&] {
          net::TcpConnection conn =
              net::TcpConnection::Connect("127.0.0.1", port);
          serve::HelloRejoinMessage rejoin;
          rejoin.worker_id = 0;
          rejoin.num_workers = 1;
          rejoin.fingerprint = s.fingerprint + 1;
          rejoin.last_round = 0;
          net::SendFrame(&conn, net::FrameType::kHelloRejoin, rejoin.Encode());
          net::FrameAssembler assembler;
          net::Frame frame;
          net::RecvFrame(&conn, &assembler, &frame);  // never answered
        });
        s.algorithm->set_train_executor(&executor);
        s.algorithm->RunRound(0);  // death observed, impostor's rejoin refused
        impostor.join();
      },
      "different scenario");
}

}  // namespace
}  // namespace rfed
