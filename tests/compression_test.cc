#include <cmath>

#include <gtest/gtest.h>

#include "fl/compression.h"
#include "util/rng.h"

namespace rfed {
namespace {

Tensor RandomUpdate(int64_t n, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Normal(Shape{n}, 0.0f, 0.1f, &rng);
}

TEST(CompressionTest, NoCompressionIsIdentity) {
  NoCompression none;
  Rng rng(1);
  Tensor update = RandomUpdate(100, 1);
  EXPECT_TRUE(AllClose(none.RoundTrip(update, &rng), update, 0.0f));
  EXPECT_EQ(none.WireBytes(100), 400);
  EXPECT_EQ(none.Name(), "none");
}

TEST(CompressionTest, QuantizerBoundsError) {
  StochasticQuantizer q8(8);
  Rng rng(2);
  Tensor update = RandomUpdate(500, 2);
  Tensor back = q8.RoundTrip(update, &rng);
  // Per-element error bounded by one quantization level.
  const float level = update.MaxAbs() / 255.0f;
  for (int64_t i = 0; i < update.size(); ++i) {
    EXPECT_LE(std::fabs(back.at(i) - update.at(i)), level + 1e-6f);
  }
}

TEST(CompressionTest, QuantizerIsUnbiased) {
  StochasticQuantizer q4(4);
  Rng rng(3);
  Tensor update(Shape{1}, {0.123f});
  double mean = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    mean += q4.RoundTrip(update, &rng).at(0);
  }
  mean /= trials;
  EXPECT_NEAR(mean, 0.123, 0.002);
}

TEST(CompressionTest, QuantizerWireBytesShrink) {
  StochasticQuantizer q8(8);
  StochasticQuantizer q4(4);
  NoCompression none;
  EXPECT_LT(q8.WireBytes(1000), none.WireBytes(1000));
  EXPECT_LT(q4.WireBytes(1000), q8.WireBytes(1000));
}

TEST(CompressionTest, QuantizerHandlesZeroUpdate) {
  StochasticQuantizer q8(8);
  Rng rng(4);
  Tensor zero(Shape{10});
  EXPECT_TRUE(AllClose(q8.RoundTrip(zero, &rng), zero, 0.0f));
}

TEST(CompressionTest, TopKKeepsLargestMagnitudes) {
  TopKSparsifier topk(0.25);
  Rng rng(5);
  Tensor update(Shape{8}, {0.1f, -5.0f, 0.2f, 4.0f, -0.3f, 0.1f, 0.2f, 0.1f});
  Tensor back = topk.RoundTrip(update, &rng);
  EXPECT_EQ(back.at(1), -5.0f);
  EXPECT_EQ(back.at(3), 4.0f);
  float rest = 0.0f;
  for (int64_t i : {0, 2, 4, 5, 6, 7}) rest += std::fabs(back.at(i));
  EXPECT_EQ(rest, 0.0f);
}

TEST(CompressionTest, TopKWireBytesProportionalToK) {
  TopKSparsifier topk(0.10);
  EXPECT_EQ(topk.WireBytes(1000), 8 * 100);
}

TEST(CompressionTest, SketchApproximatesSparseUpdates) {
  // Sketch recovery is accurate when the update is dominated by a few
  // heavy coordinates (its design regime).
  CountSketchCompressor sketch(5, 512, 99);
  Rng rng(6);
  Tensor update(Shape{200});
  update.at(17) = 3.0f;
  update.at(101) = -2.0f;
  Tensor back = sketch.RoundTrip(update, &rng);
  EXPECT_NEAR(back.at(17), 3.0f, 0.5f);
  EXPECT_NEAR(back.at(101), -2.0f, 0.5f);
}

TEST(CompressionTest, SketchWireBytesIndependentOfDim) {
  CountSketchCompressor sketch(5, 512, 99);
  EXPECT_EQ(sketch.WireBytes(100), sketch.WireBytes(1000000));
}

TEST(CompressionTest, FactoryNames) {
  for (const char* name : {"none", "q8", "q4", "topk10", "topk1", "sketch"}) {
    auto compressor = MakeCompressor(name);
    ASSERT_NE(compressor, nullptr) << name;
    EXPECT_GT(compressor->WireBytes(100), 0) << name;
  }
}

TEST(CompressionTest, RoundTripPreservesShape) {
  Rng rng(7);
  for (const char* name : {"q8", "topk10", "sketch"}) {
    auto compressor = MakeCompressor(name);
    Tensor update = RandomUpdate(333, 8);
    Tensor back = compressor->RoundTrip(update, &rng);
    EXPECT_EQ(back.shape(), update.shape()) << name;
  }
}

}  // namespace
}  // namespace rfed
