// Bit-identity suite for the blocked/threaded kernel layer
// (tensor/kernels.h). Every test compares the optimized kernels against
// the retained naive references with EXPECT_EQ on floats — not
// EXPECT_NEAR — because the layer's contract is *exact* equality for
// every block size and thread count (docs/KERNELS.md). The final test
// pins that contract end to end: a federated run's global model must be
// byte-identical across kernel_threads in {1, 2, 4}.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/fedavg.h"
#include "fl/trainer.h"
#include "nn/models.h"
#include "obs/metrics.h"
#include "tensor/autotune.h"
#include "tensor/kernels.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"
#include "util/rng.h"

namespace rfed {
namespace {

using ::rfed::testing::MaxGradCheckError;

Variable Leaf(Tensor t) { return Variable(std::move(t), true); }

/// Restores the default kernel options when the test ends, so option
/// overrides (tiny blocks, forced threading) never leak across tests.
class KernelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetKernelOptions(KernelOptions{});
    SetAutotuneConfig(AutotuneConfig{});
    ResetAutotuneForTest();
  }
};

/// Options that force the blocked path (no naive fallback) with blocks
/// small enough that the {1, 7, 17, 64, 65} sizes exercise full tiles,
/// remainder rows/columns, and multiple KC slices.
KernelOptions TinyBlocks(int threads) {
  KernelOptions o;
  o.threads = threads;
  o.block_m = 8;
  o.block_k = 8;
  o.block_n = 16;
  o.blocked_min_flops = 0;
  o.parallel_min_flops = 0;
  return o;
}

std::vector<float> Pattern(int64_t n, float scale, float phase) {
  std::vector<float> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    // sin ramp: non-degenerate, mixed signs, a sprinkling of exact zeros
    // every 8th element to also cross the references' zero-skip path.
    v[static_cast<size_t>(i)] =
        (i % 8 == 3) ? 0.0f
                     : scale * std::sin(0.7f * static_cast<float>(i) + phase);
  }
  return v;
}

constexpr int64_t kSizes[] = {1, 7, 17, 64, 65};
constexpr int kThreadCounts[] = {1, 2, 4};

TEST_F(KernelTest, GemmAddMatchesReferenceBitwise) {
  for (int threads : kThreadCounts) {
    SetKernelOptions(TinyBlocks(threads));
    for (int64_t m : kSizes) {
      for (int64_t k : kSizes) {
        for (int64_t n : kSizes) {
          const auto a = Pattern(m * k, 1.0f, 0.1f);
          const auto b = Pattern(k * n, 0.5f, 1.3f);
          // Nonzero initial C: the kernel accumulates, never assigns.
          auto c_ref = Pattern(m * n, 0.25f, 2.7f);
          auto c_opt = c_ref;
          ref::GemmAdd(a.data(), b.data(), m, k, n, c_ref.data());
          GemmAdd(a.data(), b.data(), m, k, n, c_opt.data());
          ASSERT_EQ(0, std::memcmp(c_ref.data(), c_opt.data(),
                                   c_ref.size() * sizeof(float)))
              << "threads=" << threads << " m=" << m << " k=" << k
              << " n=" << n;
        }
      }
    }
  }
}

TEST_F(KernelTest, GemmTransAAddMatchesReferenceBitwise) {
  for (int threads : kThreadCounts) {
    SetKernelOptions(TinyBlocks(threads));
    for (int64_t m : kSizes) {
      for (int64_t k : kSizes) {
        for (int64_t n : kSizes) {
          const auto a = Pattern(m * k, 0.8f, 0.4f);
          const auto b = Pattern(m * n, 0.6f, 1.9f);
          auto c_ref = Pattern(k * n, 0.3f, 3.1f);
          auto c_opt = c_ref;
          ref::GemmTransAAdd(a.data(), b.data(), m, k, n, c_ref.data());
          GemmTransAAdd(a.data(), b.data(), m, k, n, c_opt.data());
          ASSERT_EQ(0, std::memcmp(c_ref.data(), c_opt.data(),
                                   c_ref.size() * sizeof(float)))
              << "threads=" << threads << " m=" << m << " k=" << k
              << " n=" << n;
        }
      }
    }
  }
}

TEST_F(KernelTest, GemmTransBAssignMatchesReferenceBitwise) {
  for (int threads : kThreadCounts) {
    SetKernelOptions(TinyBlocks(threads));
    for (int64_t m : kSizes) {
      for (int64_t n : kSizes) {
        for (int64_t k : kSizes) {
          const auto a = Pattern(m * n, 0.9f, 0.2f);
          const auto b = Pattern(k * n, 0.7f, 1.1f);
          // Assign semantics: garbage in C must be overwritten.
          auto c_ref = Pattern(m * k, 99.0f, 0.0f);
          auto c_opt = Pattern(m * k, -37.0f, 1.0f);
          ref::GemmTransBAssign(a.data(), b.data(), m, n, k, c_ref.data());
          GemmTransBAssign(a.data(), b.data(), m, n, k, c_opt.data());
          ASSERT_EQ(0, std::memcmp(c_ref.data(), c_opt.data(),
                                   c_ref.size() * sizeof(float)))
              << "threads=" << threads << " m=" << m << " n=" << n
              << " k=" << k;
        }
      }
    }
  }
}

TEST_F(KernelTest, DefaultOptionsAlsoMatchReference) {
  // Same check at production block sizes (the tiny blocks above stress
  // edges; this covers the shipped configuration on a mid-size product).
  for (int threads : kThreadCounts) {
    KernelOptions o;
    o.threads = threads;
    o.blocked_min_flops = 0;
    o.parallel_min_flops = 0;
    SetKernelOptions(o);
    const int64_t m = 65, k = 131, n = 197;  // off every block boundary
    const auto a = Pattern(m * k, 1.0f, 0.5f);
    const auto b = Pattern(k * n, 1.0f, 1.5f);
    auto c_ref = Pattern(m * n, 0.1f, 2.5f);
    auto c_opt = c_ref;
    ref::GemmAdd(a.data(), b.data(), m, k, n, c_ref.data());
    GemmAdd(a.data(), b.data(), m, k, n, c_opt.data());
    ASSERT_EQ(0, std::memcmp(c_ref.data(), c_opt.data(),
                             c_ref.size() * sizeof(float)))
        << "threads=" << threads;
  }
}

// ---- SIMD dispatch: every ISA x tile candidate x thread count ----

/// The ISA tables under test: the portable baseline always, plus the
/// AVX2 table when this machine can run it. Forcing kAvx2 on a machine
/// without the ISA aborts, so the list is probed at runtime.
std::vector<KernelIsa> TestableIsas() {
  std::vector<KernelIsa> isas{KernelIsa::kGeneric};
  if (KernelAvx2Available()) isas.push_back(KernelIsa::kAvx2);
  return isas;
}

TEST_F(KernelTest, EveryIsaTileCandidateAndThreadCountMatchesReference) {
  // The full cross product the autotuner is allowed to roam over:
  // each ISA table x each candidate TileConfig x threads {1, 2, 4}
  // must reproduce the reference bytes exactly. Shapes are chosen off
  // every tile boundary (odd m/k/n) plus the microkernel-exact 64 row
  // count, so full tiles, padded remainder rows, and remainder columns
  // all execute.
  struct Case { int64_t m, k, n; };
  const Case cases[] = {{64, 75, 130}, {65, 131, 197}, {6, 16, 33}};
  for (KernelIsa isa : TestableIsas()) {
    for (const TileConfig& tile : AutotuneCandidates(AutotuneOp::kGemmAdd)) {
      for (int threads : kThreadCounts) {
        KernelOptions o;
        o.threads = threads;
        o.isa = isa;
        o.block_m = tile.block_m;
        o.block_k = tile.block_k;
        o.block_n = tile.block_n;
        o.blocked_min_flops = 0;
        o.parallel_min_flops = 0;
        SetKernelOptions(o);
        for (const Case& cs : cases) {
          const auto a = Pattern(cs.m * cs.k, 1.0f, 0.2f);
          const auto b = Pattern(cs.k * cs.n, 0.7f, 1.4f);
          auto c_ref = Pattern(cs.m * cs.n, 0.3f, 2.2f);
          auto c_opt = c_ref;
          ref::GemmAdd(a.data(), b.data(), cs.m, cs.k, cs.n, c_ref.data());
          GemmAdd(a.data(), b.data(), cs.m, cs.k, cs.n, c_opt.data());
          ASSERT_EQ(0, std::memcmp(c_ref.data(), c_opt.data(),
                                   c_ref.size() * sizeof(float)))
              << "GemmAdd isa=" << KernelIsaName(isa) << " tile="
              << tile.block_m << "/" << tile.block_k << "/" << tile.block_n
              << " threads=" << threads << " m=" << cs.m << " k=" << cs.k
              << " n=" << cs.n;
        }
      }
    }
    for (const TileConfig& tile :
         AutotuneCandidates(AutotuneOp::kGemmTransB)) {
      for (int threads : kThreadCounts) {
        KernelOptions o;
        o.threads = threads;
        o.isa = isa;
        o.block_m = tile.block_m;
        o.block_k = tile.block_k;
        o.block_n = tile.block_n;
        o.blocked_min_flops = 0;
        o.parallel_min_flops = 0;
        SetKernelOptions(o);
        for (const Case& cs : cases) {
          // TransB shape triple is (m, n, k): m rows of A[m,n], k rows
          // of B[k,n], C[m,k] assigned.
          const auto a = Pattern(cs.m * cs.n, 0.9f, 0.5f);
          const auto b = Pattern(cs.k * cs.n, 0.6f, 1.8f);
          auto c_ref = Pattern(cs.m * cs.k, 55.0f, 0.0f);
          auto c_opt = Pattern(cs.m * cs.k, -11.0f, 1.0f);
          ref::GemmTransBAssign(a.data(), b.data(), cs.m, cs.n, cs.k,
                                c_ref.data());
          GemmTransBAssign(a.data(), b.data(), cs.m, cs.n, cs.k,
                           c_opt.data());
          ASSERT_EQ(0, std::memcmp(c_ref.data(), c_opt.data(),
                                   c_ref.size() * sizeof(float)))
              << "GemmTransB isa=" << KernelIsaName(isa) << " tile="
              << tile.block_m << "/" << tile.block_k << "/" << tile.block_n
              << " threads=" << threads << " m=" << cs.m << " n=" << cs.n
              << " k=" << cs.k;
        }
      }
    }
  }
}

TEST_F(KernelTest, GemmTransAAddMatchesReferenceOnEveryIsa) {
  for (KernelIsa isa : TestableIsas()) {
    for (int threads : kThreadCounts) {
      KernelOptions o = TinyBlocks(threads);
      o.isa = isa;
      SetKernelOptions(o);
      const int64_t m = 33, k = 14, n = 65;
      const auto a = Pattern(m * k, 0.8f, 0.4f);
      const auto b = Pattern(m * n, 0.6f, 1.9f);
      auto c_ref = Pattern(k * n, 0.3f, 3.1f);
      auto c_opt = c_ref;
      ref::GemmTransAAdd(a.data(), b.data(), m, k, n, c_ref.data());
      GemmTransAAdd(a.data(), b.data(), m, k, n, c_opt.data());
      ASSERT_EQ(0, std::memcmp(c_ref.data(), c_opt.data(),
                               c_ref.size() * sizeof(float)))
          << "isa=" << KernelIsaName(isa) << " threads=" << threads;
    }
  }
}

TEST_F(KernelTest, IsaDispatchReportsActiveTable) {
  // kAuto resolves to the best table the machine supports; forcing
  // kGeneric always works and reports as such.
  KernelOptions o;
  o.isa = KernelIsa::kGeneric;
  SetKernelOptions(o);
  EXPECT_EQ(ActiveKernelIsa(), KernelIsa::kGeneric);
  EXPECT_STREQ(KernelIsaName(ActiveKernelIsa()), "generic");
  SetKernelOptions(KernelOptions{});  // kAuto
  if (KernelAvx2Available()) {
    EXPECT_EQ(ActiveKernelIsa(), KernelIsa::kAvx2);
    EXPECT_STREQ(KernelIsaName(ActiveKernelIsa()), "avx2");
  } else {
    EXPECT_EQ(ActiveKernelIsa(), KernelIsa::kGeneric);
  }
}

// ---- Convolution ----

std::vector<ConvKernelShape> ConvCases() {
  std::vector<ConvKernelShape> cases;
  // batch, cin, h, w, cout, kernel, stride, pad
  cases.push_back({2, 1, 8, 8, 3, 3, 1, 1});   // MNIST-ish same-pad
  cases.push_back({3, 2, 7, 9, 4, 3, 2, 0});   // strided, non-square, valid
  cases.push_back({1, 3, 11, 11, 2, 5, 1, 2}); // 5x5 kernel, wide pad
  cases.push_back({4, 2, 6, 6, 1, 1, 1, 0});   // pointwise 1x1
  cases.push_back({2, 1, 5, 5, 2, 3, 3, 1});   // stride > 1 with pad
  return cases;
}

TEST_F(KernelTest, Conv2dForwardMatchesReferenceBitwise) {
  for (int threads : kThreadCounts) {
    SetKernelOptions(TinyBlocks(threads));
    for (const ConvKernelShape& s : ConvCases()) {
      const auto x = Pattern(s.batch * s.in_channels * s.height * s.width,
                             1.0f, 0.3f);
      const auto w = Pattern(s.out_channels * s.Patch(), 0.5f, 1.7f);
      const auto bias = Pattern(s.out_channels, 0.2f, 0.9f);
      std::vector<float> out_ref(
          static_cast<size_t>(s.batch * s.out_channels * s.OutArea()), 0.0f);
      auto out_opt = out_ref;
      ref::Conv2dForwardKernel(x.data(), w.data(), bias.data(), s,
                               out_ref.data());
      Conv2dForwardKernel(x.data(), w.data(), bias.data(), s, out_opt.data());
      ASSERT_EQ(0, std::memcmp(out_ref.data(), out_opt.data(),
                               out_ref.size() * sizeof(float)))
          << "threads=" << threads << " batch=" << s.batch
          << " k=" << s.kernel << " stride=" << s.stride << " pad=" << s.pad;
    }
  }
}

TEST_F(KernelTest, Conv2dBackwardMatchesReferenceBitwise) {
  for (int threads : kThreadCounts) {
    SetKernelOptions(TinyBlocks(threads));
    for (const ConvKernelShape& s : ConvCases()) {
      const auto x = Pattern(s.batch * s.in_channels * s.height * s.width,
                             1.0f, 0.6f);
      const auto w = Pattern(s.out_channels * s.Patch(), 0.5f, 2.1f);
      const auto go = Pattern(s.batch * s.out_channels * s.OutArea(),
                              0.4f, 1.2f);
      const size_t dx_size =
          static_cast<size_t>(s.batch * s.in_channels * s.height * s.width);
      const size_t dw_size = static_cast<size_t>(s.out_channels * s.Patch());
      const size_t db_size = static_cast<size_t>(s.out_channels);
      std::vector<float> dx_ref(dx_size, 0.0f), dx_opt(dx_size, 0.0f);
      std::vector<float> dw_ref(dw_size, 0.0f), dw_opt(dw_size, 0.0f);
      std::vector<float> db_ref(db_size, 0.0f), db_opt(db_size, 0.0f);
      ref::Conv2dBackwardKernel(go.data(), x.data(), w.data(), s,
                                dx_ref.data(), dw_ref.data(), db_ref.data());
      Conv2dBackwardKernel(go.data(), x.data(), w.data(), s, dx_opt.data(),
                           dw_opt.data(), db_opt.data());
      ASSERT_EQ(0, std::memcmp(dx_ref.data(), dx_opt.data(),
                               dx_size * sizeof(float)))
          << "dx threads=" << threads << " stride=" << s.stride;
      ASSERT_EQ(0, std::memcmp(dw_ref.data(), dw_opt.data(),
                               dw_size * sizeof(float)))
          << "dw threads=" << threads << " stride=" << s.stride;
      ASSERT_EQ(0, std::memcmp(db_ref.data(), db_opt.data(),
                               db_size * sizeof(float)))
          << "db threads=" << threads << " stride=" << s.stride;
    }
  }
}

TEST_F(KernelTest, Conv2dBackwardHandlesNullOutputs) {
  SetKernelOptions(TinyBlocks(4));
  const ConvKernelShape s{2, 2, 6, 6, 3, 3, 1, 1};
  const auto x = Pattern(s.batch * s.in_channels * s.height * s.width, 1.0f,
                         0.0f);
  const auto w = Pattern(s.out_channels * s.Patch(), 0.5f, 1.0f);
  const auto go = Pattern(s.batch * s.out_channels * s.OutArea(), 0.4f, 2.0f);
  const size_t dw_size = static_cast<size_t>(s.out_channels * s.Patch());
  std::vector<float> dw_ref(dw_size, 0.0f), dw_opt(dw_size, 0.0f);
  // dx and db skipped entirely.
  ref::Conv2dBackwardKernel(go.data(), x.data(), w.data(), s, nullptr,
                            dw_ref.data(), nullptr);
  Conv2dBackwardKernel(go.data(), x.data(), w.data(), s, nullptr,
                       dw_opt.data(), nullptr);
  EXPECT_EQ(0, std::memcmp(dw_ref.data(), dw_opt.data(),
                           dw_size * sizeof(float)));
  // All three null: must be a no-op, not a crash.
  Conv2dBackwardKernel(go.data(), x.data(), w.data(), s, nullptr, nullptr,
                       nullptr);
}

TEST_F(KernelTest, Im2ColRoundTripAgainstStridedWindow) {
  // stride 1 takes the memcpy fast path; stride 2 the scalar path. Both
  // must produce the textbook patch layout.
  for (int64_t stride : {int64_t{1}, int64_t{2}}) {
    const int64_t cin = 2, h = 5, w = 6, kernel = 3, pad = 1;
    const Im2ColSpec spec{kernel, stride, pad};
    const int64_t ho = (h + 2 * pad - kernel) / stride + 1;
    const int64_t wo = (w + 2 * pad - kernel) / stride + 1;
    const auto x = Pattern(cin * h * w, 1.0f, 0.8f);
    std::vector<float> cols(
        static_cast<size_t>(cin * kernel * kernel * ho * wo), -1.0f);
    Im2Col(x.data(), cin, h, w, spec, cols.data());
    for (int64_t c = 0; c < cin; ++c) {
      for (int64_t ky = 0; ky < kernel; ++ky) {
        for (int64_t kx = 0; kx < kernel; ++kx) {
          for (int64_t oy = 0; oy < ho; ++oy) {
            for (int64_t ox = 0; ox < wo; ++ox) {
              const int64_t iy = oy * stride + ky - pad;
              const int64_t ix = ox * stride + kx - pad;
              const float expected =
                  (iy < 0 || iy >= h || ix < 0 || ix >= w)
                      ? 0.0f
                      : x[static_cast<size_t>((c * h + iy) * w + ix)];
              const int64_t row = (c * kernel + ky) * kernel + kx;
              ASSERT_EQ(expected,
                        cols[static_cast<size_t>(row * ho * wo + oy * wo + ox)])
                  << "stride=" << stride << " c=" << c << " ky=" << ky
                  << " kx=" << kx << " oy=" << oy << " ox=" << ox;
            }
          }
        }
      }
    }
  }
}

TEST_F(KernelTest, GradCheckThroughBlockedConvPath) {
  // Finite-difference check of the full autograd conv path while the
  // blocked kernels (tiny blocks, 2 threads) are live underneath.
  SetKernelOptions(TinyBlocks(2));
  Rng rng(23);
  Conv2dSpec spec{.in_channels = 2, .out_channels = 3, .kernel = 3,
                  .stride = 2, .pad = 1};
  Variable x = Leaf(Tensor::Normal(Shape{2, 2, 5, 5}, 0, 1, &rng));
  Variable w = Leaf(Tensor::Normal(Shape{3, 18}, 0, 0.5f, &rng));
  Variable b = Leaf(Tensor::Normal(Shape{3}, 0, 0.5f, &rng));
  auto loss = [&] { return ag::Sum(ag::Tanh(ag::Conv2d(x, w, b, spec))); };
  EXPECT_LT(MaxGradCheckError(loss, {&x, &w, &b}, 5e-3), 0.1);
}

// ---- Scratch arena ----

TEST_F(KernelTest, ScratchArenaGrowsAndTracksPeak) {
  ScratchArena& arena = ScratchArena::ThreadLocal();
  ScratchArena::ResetPeak();
  float* p = arena.Buffer(7, 100);
  ASSERT_NE(p, nullptr);
  p[0] = 1.0f;
  p[99] = 2.0f;
  EXPECT_GE(ScratchArena::PeakBytes(),
            static_cast<int64_t>(100 * sizeof(float)));
  // Same slot, smaller request: pointer is stable, no growth.
  const int64_t peak_before = ScratchArena::PeakBytes();
  EXPECT_EQ(p, arena.Buffer(7, 50));
  EXPECT_EQ(ScratchArena::PeakBytes(), peak_before);
  // Larger request grows the slot and raises the peak.
  float* q = arena.Buffer(7, 1000);
  ASSERT_NE(q, nullptr);
  q[999] = 3.0f;
  EXPECT_GT(ScratchArena::PeakBytes(), peak_before);
}

TEST_F(KernelTest, BlockedGemmReportsScratchUse) {
  KernelOptions o;
  o.blocked_min_flops = 0;
  SetKernelOptions(o);
  ScratchArena::ResetPeak();
  const int64_t m = 32, k = 32, n = 32;
  const auto a = Pattern(m * k, 1.0f, 0.0f);
  const auto b = Pattern(k * n, 1.0f, 1.0f);
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  GemmAdd(a.data(), b.data(), m, k, n, c.data());
  EXPECT_GT(ScratchArena::PeakBytes(), 0);
}

// ---- End-to-end federated bit-identity across kernel_threads ----

Tensor RunTinyFedAvg(int kernel_threads, bool autotune = false) {
  Rng rng(1234);
  auto data = GenerateImageData(MnistLikeProfile(), 120, 60, &rng);
  auto split = SimilarityPartition(data.train, 3, 0.5, &rng);
  std::vector<ClientView> views;
  for (auto& idx : split.client_indices) views.push_back({idx, {}});
  CnnConfig mc;
  mc.conv1_channels = 2;
  mc.conv2_channels = 4;
  mc.feature_dim = 8;
  FlConfig config;
  config.local_steps = 2;
  config.batch_size = 8;
  config.lr = 0.05;
  config.seed = 77;
  config.max_examples_per_pass = 64;
  config.kernel_threads = kernel_threads;
  config.kernel_autotune = autotune;
  FedAvg algo(config, &data.train, views, MakeCnnFactory(mc));
  TrainerOptions options;
  options.eval_max_examples = 60;
  FederatedTrainer trainer(&algo, &data.test, options);
  RunHistory history = trainer.Run(2);
  EXPECT_GE(history.rounds.back().peak_scratch_bytes, 0);
  return algo.global_state();
}

TEST_F(KernelTest, FederatedRunBitIdenticalAcrossKernelThreads) {
  const Tensor base = RunTinyFedAvg(1);
  for (int threads : {2, 4}) {
    SetKernelOptions(KernelOptions{});  // the run sets its own threads
    const Tensor other = RunTinyFedAvg(threads);
    ASSERT_EQ(base.size(), other.size());
    for (int64_t i = 0; i < base.size(); ++i) {
      ASSERT_EQ(base.at(i), other.at(i))
          << "threads=" << threads << " element " << i;
    }
  }
}

// ---- Autotuner ----

/// Index of `tile` in the candidate set of `op`, or -1.
int CandidateIndex(AutotuneOp op, const TileConfig& tile) {
  const auto& candidates = AutotuneCandidates(op);
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].block_m == tile.block_m &&
        candidates[i].block_k == tile.block_k &&
        candidates[i].block_n == tile.block_n) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Get().GetCounter(name)->value();
}

TEST_F(KernelTest, AutotunerExploresEveryCandidateThenCommitsArgmin) {
  AutotuneConfig cfg;
  cfg.enabled = true;
  cfg.samples_per_candidate = 2;
  SetAutotuneConfig(cfg);
  ResetAutotuneForTest();
  const auto& candidates = AutotuneCandidates(AutotuneOp::kGemmAdd);
  const int64_t trials_before = CounterValue("kernel.autotune.trials");
  const int64_t hits_before = CounterValue("kernel.autotune.cache_hits");
  // Exploration: every candidate must be issued exactly
  // samples_per_candidate times before the shape commits. Feed fake
  // timings that make candidate 2 the unambiguous winner.
  std::vector<int> issued(candidates.size(), 0);
  for (size_t i = 0; i < 2 * candidates.size(); ++i) {
    AutotuneTrial trial = 0;
    const TileConfig tile =
        AutotunePick(AutotuneOp::kGemmAdd, "testisa", 64, 75, 130, &trial);
    ASSERT_NE(trial, 0u) << "pick " << i << " should still be exploring";
    const int idx = CandidateIndex(AutotuneOp::kGemmAdd, tile);
    ASSERT_GE(idx, 0) << "pick returned a tile outside the candidate set";
    issued[static_cast<size_t>(idx)] += 1;
    AutotuneReport(trial, idx == 2 ? 0.5 : 5.0 + idx);
  }
  for (size_t i = 0; i < issued.size(); ++i) {
    EXPECT_EQ(issued[i], 2) << "candidate " << i;
  }
  EXPECT_EQ(CounterValue("kernel.autotune.trials") - trials_before,
            static_cast<int64_t>(2 * candidates.size()));
  // Committed: the winner comes back with no trial token, and each such
  // answer counts as a cache hit.
  for (int i = 0; i < 3; ++i) {
    AutotuneTrial trial = 99;
    const TileConfig tile =
        AutotunePick(AutotuneOp::kGemmAdd, "testisa", 64, 75, 130, &trial);
    EXPECT_EQ(trial, 0u);
    EXPECT_EQ(CandidateIndex(AutotuneOp::kGemmAdd, tile), 2);
  }
  EXPECT_EQ(CounterValue("kernel.autotune.cache_hits") - hits_before, 3);
  // A different shape is an independent key and starts exploring again.
  AutotuneTrial trial = 0;
  AutotunePick(AutotuneOp::kGemmAdd, "testisa", 64, 75, 131, &trial);
  EXPECT_NE(trial, 0u);
}

TEST_F(KernelTest, AutotunerDefaultCandidateIsTheStaticDefault) {
  // Candidate 0 of each op must equal the KernelOptions defaults, so a
  // tuned run can always fall back to exactly the untuned blocking.
  const KernelOptions defaults;
  for (AutotuneOp op : {AutotuneOp::kGemmAdd, AutotuneOp::kGemmTransB}) {
    const TileConfig& first = AutotuneCandidates(op)[0];
    EXPECT_EQ(first.block_m, defaults.block_m) << AutotuneOpName(op);
    EXPECT_EQ(first.block_k, defaults.block_k) << AutotuneOpName(op);
    EXPECT_EQ(first.block_n, defaults.block_n) << AutotuneOpName(op);
  }
}

TEST_F(KernelTest, AutotuneFileCachePersistsWinnerAcrossReset) {
  const std::string path = ::testing::TempDir() + "autotune_persist.cache";
  std::remove(path.c_str());
  AutotuneConfig cfg;
  cfg.enabled = true;
  cfg.samples_per_candidate = 1;
  cfg.cache_file = path;
  SetAutotuneConfig(cfg);
  ResetAutotuneForTest();
  const auto& candidates = AutotuneCandidates(AutotuneOp::kGemmTransB);
  for (size_t i = 0; i < candidates.size(); ++i) {
    AutotuneTrial trial = 0;
    const TileConfig tile =
        AutotunePick(AutotuneOp::kGemmTransB, "testisa", 8, 96, 24, &trial);
    ASSERT_NE(trial, 0u);
    const int idx = CandidateIndex(AutotuneOp::kGemmTransB, tile);
    AutotuneReport(trial, idx == 1 ? 1.0 : 9.0);
  }
  // Committed and written. Drop every byte of in-process state: the
  // next pick must come back committed straight from the file.
  ResetAutotuneForTest();
  AutotuneTrial trial = 99;
  const TileConfig tile =
      AutotunePick(AutotuneOp::kGemmTransB, "testisa", 8, 96, 24, &trial);
  EXPECT_EQ(trial, 0u);
  EXPECT_EQ(CandidateIndex(AutotuneOp::kGemmTransB, tile), 1);
  // The file itself is the documented format: header + one line.
  std::ifstream in(path);
  std::string header, line;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "rfed-autotune v1");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "gemm_transb testisa 8 96 24 16 256 1024");
  std::remove(path.c_str());
}

TEST_F(KernelTest, AutotuneCacheRewriteKeepsForeignIsaLines) {
  // A cache written on another machine (different ISA) must survive
  // this machine committing its own picks into the same file.
  const std::string path = ::testing::TempDir() + "autotune_foreign.cache";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "rfed-autotune v1\n";
    out << "gemm_add othermachine 1 2 3 96 384 512\n";
  }
  AutotuneConfig cfg;
  cfg.enabled = true;
  cfg.samples_per_candidate = 1;
  cfg.cache_file = path;
  SetAutotuneConfig(cfg);
  ResetAutotuneForTest();
  const auto& candidates = AutotuneCandidates(AutotuneOp::kGemmAdd);
  for (size_t i = 0; i < candidates.size(); ++i) {
    AutotuneTrial trial = 0;
    AutotunePick(AutotuneOp::kGemmAdd, "testisa", 4, 5, 6, &trial);
    ASSERT_NE(trial, 0u);
    AutotuneReport(trial, 1.0);
  }
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("gemm_add othermachine 1 2 3 96 384 512"),
            std::string::npos);
  EXPECT_NE(content.find("gemm_add testisa 4 5 6"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(KernelTest, CorruptAutotuneCacheAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string dir = ::testing::TempDir();
  auto pick_with_cache = [](const std::string& path) {
    AutotuneConfig cfg;
    cfg.enabled = true;
    cfg.cache_file = path;
    SetAutotuneConfig(cfg);
    ResetAutotuneForTest();
    AutotuneTrial trial = 0;
    AutotunePick(AutotuneOp::kGemmAdd, "testisa", 1, 2, 3, &trial);
  };
  {
    // Wrong header: a cache from an incompatible version.
    const std::string path = dir + "autotune_badheader.cache";
    std::ofstream(path, std::ios::trunc) << "rfed-autotune v0\n";
    EXPECT_DEATH(pick_with_cache(path), "bad header");
    std::remove(path.c_str());
  }
  {
    // Unknown op name: stale schema.
    const std::string path = dir + "autotune_badop.cache";
    std::ofstream(path, std::ios::trunc)
        << "rfed-autotune v1\ngemm_bogus testisa 1 2 3 64 256 1024\n";
    EXPECT_DEATH(pick_with_cache(path), "unknown op");
    std::remove(path.c_str());
  }
  {
    // Truncated line: torn write.
    const std::string path = dir + "autotune_torn.cache";
    std::ofstream(path, std::ios::trunc)
        << "rfed-autotune v1\ngemm_add testisa 1 2\n";
    EXPECT_DEATH(pick_with_cache(path), "unparseable line");
    std::remove(path.c_str());
  }
}

TEST_F(KernelTest, FederatedRunBitIdenticalWithAutotuneOn) {
  // The pinned-pick contract end to end: whatever tiles the tuner
  // happens to measure and commit mid-run, the trained global model
  // must be byte-identical to the untuned run, because every candidate
  // computes the canonical summation order.
  const Tensor base = RunTinyFedAvg(1, /*autotune=*/false);
  SetKernelOptions(KernelOptions{});
  ResetAutotuneForTest();
  const Tensor tuned = RunTinyFedAvg(1, /*autotune=*/true);
  ASSERT_EQ(base.size(), tuned.size());
  for (int64_t i = 0; i < base.size(); ++i) {
    ASSERT_EQ(base.at(i), tuned.at(i)) << "element " << i;
  }
  // And the tuner really ran: exploration trials were recorded.
  EXPECT_GT(CounterValue("kernel.autotune.trials"), 0);
}

}  // namespace
}  // namespace rfed
