// Failure-injection and boundary-condition tests: checked invariants must
// abort loudly (RFED_CHECK), and edge-case configurations — tiny clients,
// extreme sampling, degenerate batches — must train without corruption.

#include <cmath>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rfedavg.h"
#include "data/batcher.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/checkpoint.h"
#include "fl/fedavg.h"
#include "fl/message.h"
#include "fl/trainer.h"
#include "tensor/serialize.h"

namespace rfed {
namespace {

using DeathTest = ::testing::Test;

TEST(CheckedInvariantsDeathTest, ShapeMismatchAborts) {
  Tensor a(Shape{2});
  Tensor b(Shape{3});
  EXPECT_DEATH(a.AddInPlace(b), "RFED_CHECK failed");
}

TEST(CheckedInvariantsDeathTest, BadLabelAborts) {
  Tensor images(Shape{2, 1, 2, 2});
  EXPECT_DEATH(Dataset(std::move(images), {0, 7}, /*num_classes=*/3),
               "RFED_CHECK failed");
}

TEST(CheckedInvariantsDeathTest, TruncatedDeserializeAborts) {
  Tensor t(Shape{4}, {1, 2, 3, 4});
  std::vector<uint8_t> buffer;
  SerializeTensor(t, &buffer);
  buffer.resize(buffer.size() - 5);  // chop the payload
  size_t offset = 0;
  EXPECT_DEATH(DeserializeTensor(buffer, &offset), "RFED_CHECK failed");
}

TEST(CheckedInvariantsDeathTest, MalformedMessageKindAborts) {
  // Kind byte outside the enum range.
  std::vector<uint8_t> buffer(16, 0);
  buffer[0] = 200;
  size_t offset = 0;
  EXPECT_DEATH(FlMessage::Decode(buffer, &offset), "RFED_CHECK failed");
}

// ---- Corrupted checkpoint files ----
// Every binary artifact carries a trailing FNV-1a checksum; a truncated,
// extended, or bit-flipped file must abort loudly instead of silently
// resuming from garbage.

std::vector<uint8_t> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path,
                   const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

std::string SavedTensorPath(const std::string& tag) {
  const std::string path = ::testing::TempDir() + "corrupt_" + tag + ".bin";
  SaveTensorToFile(Tensor(Shape{4}, {1.5f, -2.0f, 3.25f, 0.0f}), path);
  return path;
}

TEST(CorruptCheckpointDeathTest, TruncatedTensorFileAborts) {
  const std::string path = SavedTensorPath("truncated");
  std::vector<uint8_t> bytes = ReadAllBytes(path);
  bytes.resize(bytes.size() - 3);  // clobbers the checksum footer
  WriteAllBytes(path, bytes);
  EXPECT_DEATH(LoadTensorFromFile(path), "RFED_CHECK failed");
}

TEST(CorruptCheckpointDeathTest, TrailingBytesInTensorFileAbort) {
  const std::string path = SavedTensorPath("trailing");
  std::vector<uint8_t> bytes = ReadAllBytes(path);
  bytes.push_back(0xab);
  bytes.push_back(0xcd);
  WriteAllBytes(path, bytes);
  EXPECT_DEATH(LoadTensorFromFile(path), "RFED_CHECK failed");
}

TEST(CorruptCheckpointDeathTest, BitFlippedTensorFileAborts) {
  const std::string path = SavedTensorPath("bitflip");
  std::vector<uint8_t> bytes = ReadAllBytes(path);
  bytes[bytes.size() / 2] ^= 0x10;  // single bit, mid-payload
  WriteAllBytes(path, bytes);
  EXPECT_DEATH(LoadTensorFromFile(path), "checksum mismatch");
}

RunCheckpoint TinyRunCheckpoint() {
  RunCheckpoint ck;
  ck.next_round = 2;
  ck.history.algorithm = "FedAvg";
  ck.history.rounds.resize(2);
  ck.history.rounds[0].round = 0;
  ck.history.rounds[1].round = 1;
  ck.algorithm_state = {1, 2, 3, 4, 5, 6, 7, 8};
  return ck;
}

TEST(CorruptCheckpointDeathTest, TruncatedRunCheckpointAborts) {
  const std::string path = ::testing::TempDir() + "run_truncated.ckpt";
  TinyRunCheckpoint().Save(path);
  std::vector<uint8_t> bytes = ReadAllBytes(path);
  bytes.resize(bytes.size() / 2);
  WriteAllBytes(path, bytes);
  EXPECT_DEATH(RunCheckpoint::Load(path), "RFED_CHECK failed");
}

TEST(CorruptCheckpointDeathTest, TrailingBytesInRunCheckpointAbort) {
  const std::string path = ::testing::TempDir() + "run_trailing.ckpt";
  TinyRunCheckpoint().Save(path);
  std::vector<uint8_t> bytes = ReadAllBytes(path);
  bytes.push_back(0x00);
  WriteAllBytes(path, bytes);
  EXPECT_DEATH(RunCheckpoint::Load(path), "RFED_CHECK failed");
}

TEST(CorruptCheckpointDeathTest, BitFlippedRunCheckpointAborts) {
  const std::string path = ::testing::TempDir() + "run_bitflip.ckpt";
  TinyRunCheckpoint().Save(path);
  std::vector<uint8_t> bytes = ReadAllBytes(path);
  bytes[bytes.size() - 8] ^= 0x01;
  WriteAllBytes(path, bytes);
  EXPECT_DEATH(RunCheckpoint::Load(path), "checksum mismatch");
}

TEST(CorruptCheckpointDeathTest, InconsistentRoundCountAborts) {
  // A checkpoint whose recorded history disagrees with next_round is
  // internally inconsistent even when the checksum is intact.
  RunCheckpoint ck = TinyRunCheckpoint();
  ck.next_round = 3;  // but only 2 rounds of history
  const std::string path = ::testing::TempDir() + "run_inconsistent.ckpt";
  ck.Save(path);
  EXPECT_DEATH(RunCheckpoint::Load(path), "RFED_CHECK failed");
}

TEST(CheckedInvariantsDeathTest, ScalarBackwardOnlyFromScalar) {
  Variable x(Tensor(Shape{3}), true);
  EXPECT_DEATH(x.Backward(), "must start from a scalar");
}

TEST(CheckedInvariantsDeathTest, EmptyClientAborts) {
  Rng rng(1);
  auto data = GenerateImageData(MnistLikeProfile(), 40, 10, &rng);
  std::vector<ClientView> views(2);
  views[0].train_indices = {0, 1, 2};
  // views[1] left empty.
  CnnConfig mc;
  mc.conv1_channels = 2;
  mc.conv2_channels = 4;
  mc.feature_dim = 8;
  FlConfig config;
  EXPECT_DEATH(FedAvg(config, &data.train, views, MakeCnnFactory(mc)),
               "RFED_CHECK failed");
}

TEST(RobustnessTest, SingleExampleClientTrains) {
  Rng rng(2);
  auto data = GenerateImageData(MnistLikeProfile(), 120, 40, &rng);
  // Client 0 owns exactly one example; others share the rest.
  std::vector<ClientView> views(3);
  views[0].train_indices = {0};
  for (int i = 1; i < 120; ++i) {
    views[static_cast<size_t>(1 + (i % 2))].train_indices.push_back(i);
  }
  CnnConfig mc;
  mc.conv1_channels = 2;
  mc.conv2_channels = 4;
  mc.feature_dim = 8;
  FlConfig config;
  config.local_steps = 2;
  config.batch_size = 16;  // larger than client 0's data
  config.lr = 0.05;
  config.seed = 1;
  FedAvg algo(config, &data.train, views, MakeCnnFactory(mc));
  for (int r = 0; r < 3; ++r) algo.RunRound(r);
  for (int64_t i = 0; i < algo.global_state().size(); ++i) {
    ASSERT_TRUE(std::isfinite(algo.global_state().at(i)));
  }
}

TEST(RobustnessTest, MinimalSampleRatioStillSelectsOneClient) {
  Rng rng(3);
  auto data = GenerateImageData(MnistLikeProfile(), 120, 40, &rng);
  auto split = SimilarityPartition(data.train, 6, 0.5, &rng);
  std::vector<ClientView> views;
  for (auto& idx : split.client_indices) views.push_back({idx, {}});
  CnnConfig mc;
  mc.conv1_channels = 2;
  mc.conv2_channels = 4;
  mc.feature_dim = 8;
  FlConfig config;
  config.sample_ratio = 1e-6;  // rounds to zero; must clamp to one client
  config.local_steps = 1;
  config.seed = 2;
  FedAvg algo(config, &data.train, views, MakeCnnFactory(mc));
  algo.RunRound(0);
  // Exactly one model down + one up.
  EXPECT_EQ(algo.comm().down_messages(), 1);
  EXPECT_EQ(algo.comm().up_messages(), 1);
}

TEST(RobustnessTest, RegularizerSurvivesBatchOfOne) {
  Rng rng(4);
  auto data = GenerateImageData(MnistLikeProfile(), 60, 20, &rng);
  auto split = SimilarityPartition(data.train, 3, 0.0, &rng);
  std::vector<ClientView> views;
  for (auto& idx : split.client_indices) views.push_back({idx, {}});
  CnnConfig mc;
  mc.conv1_channels = 2;
  mc.conv2_channels = 4;
  mc.feature_dim = 8;
  FlConfig config;
  config.batch_size = 1;  // feature-mean of a single example
  config.local_steps = 2;
  config.lr = 0.05;
  config.seed = 3;
  RegularizerOptions reg;
  reg.lambda = 1e-3;
  RFedAvgPlus algo(config, reg, &data.train, views, MakeCnnFactory(mc));
  for (int r = 0; r < 2; ++r) algo.RunRound(r);
  for (int64_t i = 0; i < algo.global_state().size(); ++i) {
    ASSERT_TRUE(std::isfinite(algo.global_state().at(i)));
  }
}

TEST(RobustnessTest, UnevenTestSlicesInFairnessEval) {
  Rng rng(5);
  auto data = GenerateImageData(MnistLikeProfile(), 120, 60, &rng);
  auto split = SimilarityPartition(data.train, 4, 0.0, &rng);
  std::vector<ClientView> views;
  for (auto& idx : split.client_indices) views.push_back({idx, {}});
  views[0].test_indices = {0};          // one-example test slice
  views[2].test_indices = {1, 2, 3, 4};
  CnnConfig mc;
  mc.conv1_channels = 2;
  mc.conv2_channels = 4;
  mc.feature_dim = 8;
  FlConfig config;
  config.local_steps = 1;
  config.seed = 4;
  FedAvg algo(config, &data.train, views, MakeCnnFactory(mc));
  TrainerOptions options;
  FederatedTrainer trainer(&algo, &data.test, options);
  trainer.Run(1);
  const auto per_client = trainer.PerClientAccuracy(&data.test, views);
  EXPECT_FALSE(std::isnan(per_client[0]));
  EXPECT_TRUE(std::isnan(per_client[1]));  // no slice
  EXPECT_FALSE(std::isnan(per_client[2]));
}

TEST(RobustnessTest, ClientDropoutKeepsTrainingAlive) {
  Rng rng(7);
  auto data = GenerateImageData(MnistLikeProfile(), 300, 100, &rng);
  auto split = SimilarityPartition(data.train, 6, 0.0, &rng);
  std::vector<ClientView> views;
  for (auto& idx : split.client_indices) views.push_back({idx, {}});
  CnnConfig mc;
  mc.conv1_channels = 2;
  mc.conv2_channels = 4;
  mc.feature_dim = 8;
  FlConfig config;
  config.local_steps = 2;
  config.batch_size = 16;
  config.lr = 0.05;
  config.seed = 6;
  config.dropout_prob = 0.4;  // heavy straggler rate
  FedAvg algo(config, &data.train, views, MakeCnnFactory(mc));
  TrainerOptions options;
  options.eval_max_examples = 100;
  FederatedTrainer trainer(&algo, &data.test, options);
  const double before = trainer.EvaluateGlobal();
  RunHistory history = trainer.Run(18);
  EXPECT_GT(history.BestAccuracy(), before + 0.1);
}

TEST(RobustnessTest, DropoutChargesWastedDownloads) {
  Rng rng(8);
  auto data = GenerateImageData(MnistLikeProfile(), 120, 40, &rng);
  auto split = SimilarityPartition(data.train, 4, 0.5, &rng);
  std::vector<ClientView> views;
  for (auto& idx : split.client_indices) views.push_back({idx, {}});
  CnnConfig mc;
  mc.conv1_channels = 2;
  mc.conv2_channels = 4;
  mc.feature_dim = 8;
  FlConfig config;
  config.local_steps = 1;
  config.seed = 7;
  config.dropout_prob = 0.999;  // nearly everyone fails
  FedAvg algo(config, &data.train, views, MakeCnnFactory(mc));
  algo.RunRound(0);
  // Every sampled client is charged a download (wasted for dropouts; the
  // forced survivor re-downloads in the training loop), but only the
  // survivors upload.
  EXPECT_GE(algo.comm().down_messages(), 4);
  EXPECT_LE(algo.comm().down_messages(), 5);
  EXPECT_GE(algo.comm().up_messages(), 1);
  EXPECT_LT(algo.comm().up_messages(), 4);
}

TEST(RobustnessTest, ZeroLambdaDpNoiseIsHarmless) {
  // DP noise configured but lambda = 0: maps are still communicated and
  // perturbed, training must match plain FedAvg dynamics in accuracy
  // terms (the reg term contributes nothing).
  Rng rng(6);
  auto data = GenerateImageData(MnistLikeProfile(), 120, 60, &rng);
  auto split = SimilarityPartition(data.train, 3, 0.5, &rng);
  std::vector<ClientView> views;
  for (auto& idx : split.client_indices) views.push_back({idx, {}});
  CnnConfig mc;
  mc.conv1_channels = 2;
  mc.conv2_channels = 4;
  mc.feature_dim = 8;
  FlConfig config;
  config.local_steps = 2;
  config.seed = 5;
  RegularizerOptions reg;
  reg.lambda = 0.0;
  reg.dp = DpNoiseConfig{10.0, 1.0, 8};
  RFedAvgPlus noisy(config, reg, &data.train, views, MakeCnnFactory(mc));
  FedAvg plain(config, &data.train, views, MakeCnnFactory(mc));
  noisy.RunRound(0);
  plain.RunRound(0);
  EXPECT_TRUE(AllClose(noisy.global_state(), plain.global_state(), 1e-6f));
}

}  // namespace
}  // namespace rfed
