#include <cmath>

#include <gtest/gtest.h>

#include "analysis/stats.h"
#include "analysis/tsne.h"
#include "util/rng.h"

namespace rfed {
namespace {

TEST(StatsTest, QuantileInterpolates) {
  EXPECT_NEAR(Quantile({1, 2, 3, 4, 5}, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(Quantile({1, 2, 3, 4, 5}, 1.0), 5.0, 1e-12);
  EXPECT_NEAR(Quantile({1, 2, 3, 4, 5}, 0.5), 3.0, 1e-12);
  EXPECT_NEAR(Quantile({1, 2, 3, 4}, 0.5), 2.5, 1e-12);
  EXPECT_NEAR(Quantile({4, 1, 3, 2}, 0.5), 2.5, 1e-12);  // unsorted input
}

TEST(StatsTest, WorstKMean) {
  EXPECT_NEAR(WorstKMean({0.9, 0.1, 0.5, 0.2}, 2), 0.15, 1e-12);
  EXPECT_NEAR(WorstKMean({3.0}, 1), 3.0, 1e-12);
}

TEST(StatsTest, MinMax) {
  EXPECT_EQ(MinOf({3, 1, 2}), 1.0);
  EXPECT_EQ(MaxOf({3, 1, 2}), 3.0);
}

TEST(StatsTest, DropNan) {
  const auto out = DropNan({1.0, std::nan(""), 2.0});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], 2.0);
}

TEST(StatsTest, PearsonCorrelationSigns) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-9);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-9);
  EXPECT_LT(std::fabs(PearsonCorrelation({1, 2, 3, 4, 5, 6},
                                         {2, 1, 2, 1, 2, 1})),
            0.5);
}

TEST(TsneTest, OutputShape) {
  Rng rng(1);
  Tensor features = Tensor::Normal(Shape{30, 8}, 0, 1, &rng);
  TsneOptions options;
  options.perplexity = 5.0;
  options.iterations = 50;
  Tensor embedding = TsneEmbed(features, options, &rng);
  EXPECT_EQ(embedding.shape(), Shape({30, 2}));
  for (int64_t i = 0; i < embedding.size(); ++i) {
    ASSERT_TRUE(std::isfinite(embedding.at(i)));
  }
}

TEST(TsneTest, SeparatedClustersStaySeparated) {
  // Two far-apart Gaussian blobs in 10-d must map to two blobs whose
  // centroids are farther apart than their internal spread.
  Rng rng(2);
  const int per_cluster = 20;
  Tensor features(Shape{2 * per_cluster, 10});
  for (int i = 0; i < per_cluster; ++i) {
    for (int64_t d = 0; d < 10; ++d) {
      features.at2(i, d) = static_cast<float>(rng.Normal(0.0, 0.3));
      features.at2(per_cluster + i, d) =
          static_cast<float>(rng.Normal(8.0, 0.3));
    }
  }
  TsneOptions options;
  options.perplexity = 8.0;
  options.iterations = 300;
  Tensor y = TsneEmbed(features, options, &rng);

  auto centroid = [&](int begin) {
    double cx = 0, cy = 0;
    for (int i = begin; i < begin + per_cluster; ++i) {
      cx += y.at2(i, 0);
      cy += y.at2(i, 1);
    }
    return std::pair<double, double>{cx / per_cluster, cy / per_cluster};
  };
  auto [ax, ay] = centroid(0);
  auto [bx, by] = centroid(per_cluster);
  const double between =
      std::sqrt((ax - bx) * (ax - bx) + (ay - by) * (ay - by));

  double spread = 0.0;
  for (int i = 0; i < per_cluster; ++i) {
    spread += std::sqrt((y.at2(i, 0) - ax) * (y.at2(i, 0) - ax) +
                        (y.at2(i, 1) - ay) * (y.at2(i, 1) - ay));
  }
  spread /= per_cluster;
  EXPECT_GT(between, 2.0 * spread);
}

TEST(TsneTest, DeterministicGivenSeed) {
  Rng data_rng(3);
  Tensor features = Tensor::Normal(Shape{20, 4}, 0, 1, &data_rng);
  TsneOptions options;
  options.perplexity = 5.0;
  options.iterations = 40;
  Rng a(7), b(7);
  Tensor ya = TsneEmbed(features, options, &a);
  Tensor yb = TsneEmbed(features, options, &b);
  EXPECT_TRUE(AllClose(ya, yb, 0.0f));
}

}  // namespace
}  // namespace rfed
