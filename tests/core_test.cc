#include <cmath>

#include <gtest/gtest.h>

#include "core/convex_objective.h"
#include "core/delta_map.h"
#include "core/dp_noise.h"
#include "core/mmd.h"
#include "core/rfedavg.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/fedavg.h"
#include "fl/model_state.h"
#include "fl/trainer.h"
#include "test_util.h"

namespace rfed {
namespace {

using ::rfed::testing::MaxGradCheckError;

TEST(MmdTest, ZeroForIdenticalMeans) {
  Tensor a(Shape{4}, {1, 2, 3, 4});
  EXPECT_EQ(MmdSquared(a, a), 0.0f);
}

TEST(MmdTest, SymmetricAndPositive) {
  Tensor a(Shape{3}, {1, 0, 0});
  Tensor b(Shape{3}, {0, 1, 0});
  EXPECT_EQ(MmdSquared(a, b), MmdSquared(b, a));
  EXPECT_FLOAT_EQ(MmdSquared(a, b), 2.0f);
}

TEST(MmdTest, SampleEstimatorMatchesMeanDistance) {
  Tensor fa(Shape{2, 2}, {1, 0, 3, 0});  // mean (2, 0)
  Tensor fb(Shape{2, 2}, {0, 1, 0, 3});  // mean (0, 2)
  EXPECT_FLOAT_EQ(MmdSquaredSamples(fa, fb), 8.0f);
}

TEST(MmdTest, PairwiseRegularizerValue) {
  // features mean = (1, 1); targets (0,0) and (2,2) -> mean distance 2.
  Variable features(Tensor(Shape{2, 2}, {0, 0, 2, 2}), true);
  std::vector<Tensor> targets{Tensor(Shape{2}), Tensor(Shape{2}, {2, 2})};
  Variable r = PairwiseMmdRegularizer(features, targets);
  EXPECT_FLOAT_EQ(r.value().ToScalar(), 2.0f);
}

TEST(MmdTest, PairwiseAndAveragedGradientsMatch) {
  // Core identity of Sec. IV-C: grad of (1/(N-1)) sum_j ||v - δ_j||^2
  // w.r.t. the features equals grad of ||v - mean_j δ_j||^2 up to the
  // constant offset in value.
  Rng rng(1);
  Tensor base = Tensor::Normal(Shape{5, 3}, 0, 1, &rng);
  std::vector<Tensor> targets;
  for (int j = 0; j < 4; ++j) {
    targets.push_back(Tensor::Normal(Shape{3}, 0, 1, &rng));
  }
  Variable fa(base, true);
  PairwiseMmdRegularizer(fa, targets).Backward();
  Variable fb(base, true);
  AveragedMmdRegularizer(fb, MeanDelta(targets)).Backward();
  EXPECT_TRUE(AllClose(fa.grad(), fb.grad(), 1e-5f));
}

TEST(MmdTest, RegularizerGradcheck) {
  Rng rng(2);
  Variable features(Tensor::Normal(Shape{4, 3}, 0, 1, &rng), true);
  std::vector<Tensor> targets{Tensor::Normal(Shape{3}, 0, 1, &rng),
                              Tensor::Normal(Shape{3}, 0, 1, &rng)};
  auto loss = [&] { return PairwiseMmdRegularizer(features, targets); };
  EXPECT_LT(MaxGradCheckError(loss, {&features}), 5e-2);
}

TEST(MmdTest, LeaveOneOutMean) {
  std::vector<Tensor> deltas{Tensor(Shape{1}, {1.0f}), Tensor(Shape{1}, {2.0f}),
                             Tensor(Shape{1}, {6.0f})};
  EXPECT_FLOAT_EQ(LeaveOneOutMeanDelta(deltas, 0).at(0), 4.0f);
  EXPECT_FLOAT_EQ(LeaveOneOutMeanDelta(deltas, 2).at(0), 1.5f);
  EXPECT_FLOAT_EQ(MeanDelta(deltas).at(0), 3.0f);
}

TEST(DeltaMapStoreTest, UpdateAndQuery) {
  DeltaMapStore store(3, 4);
  EXPECT_EQ(store.num_clients(), 3);
  EXPECT_EQ(store.MapBytes(), 16);
  EXPECT_EQ(store.BroadcastBytesPairwise(), 32);
  EXPECT_EQ(store.BroadcastBytesAveraged(), 16);
  store.Update(1, Tensor(Shape{4}, {1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(store.Get(1).at(0), 1.0f);
  // LOO mean of client 0 = mean(maps 1, 2) = (1+0)/2.
  EXPECT_FLOAT_EQ(store.LeaveOneOutMean(0).at(0), 0.5f);
  EXPECT_EQ(store.AllExcept(1).size(), 2u);
}

TEST(DpNoiseTest, ZeroSigmaIsNoop) {
  Tensor delta(Shape{3}, {1, 2, 3});
  Tensor copy = delta;
  Rng rng(1);
  ApplyDpNoise(DpNoiseConfig{0.0, 1.0, 10}, &delta, &rng);
  EXPECT_TRUE(AllClose(delta, copy, 0.0f));
}

TEST(DpNoiseTest, ClipsToNormBound) {
  Tensor delta(Shape{2}, {30, 40});  // norm 50
  Rng rng(2);
  DpNoiseConfig config{1e-9, 5.0, 1000000};  // negligible noise
  ApplyDpNoise(config, &delta, &rng);
  EXPECT_NEAR(std::sqrt(delta.SquaredNorm()), 5.0, 1e-3);
  EXPECT_NEAR(delta.at(0) / delta.at(1), 0.75, 1e-3);
}

TEST(DpNoiseTest, NoiseScalesWithSigma) {
  Rng rng(3);
  double small = 0.0, large = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    Tensor a(Shape{8});
    ApplyDpNoise(DpNoiseConfig{1.0, 1.0, 1}, &a, &rng);
    small += a.SquaredNorm();
    Tensor b(Shape{8});
    ApplyDpNoise(DpNoiseConfig{10.0, 1.0, 1}, &b, &rng);
    large += b.SquaredNorm();
  }
  EXPECT_GT(large, 10.0 * small);
}

// ---- rFedAvg / rFedAvg+ behavior on a real (small) task ----

struct CoreFixture {
  CoreFixture()
      : rng(11),
        data(GenerateImageData(MnistLikeProfile(), 600, 200, &rng)),
        split(SimilarityPartition(data.train, 4, 0.0, &rng)) {
    for (auto& idx : split.client_indices) views.push_back(ClientView{idx, {}});
    CnnConfig config;
    config.conv1_channels = 4;
    config.conv2_channels = 8;
    config.feature_dim = 16;
    factory = MakeCnnFactory(config);
  }
  FlConfig Config() const {
    FlConfig config;
    config.local_steps = 3;
    config.batch_size = 16;
    config.lr = 0.08;
    config.seed = 3;
    config.max_examples_per_pass = 128;
    return config;
  }
  Rng rng;
  SyntheticImageData data;
  ClientSplit split;
  std::vector<ClientView> views;
  ModelFactory factory;
};

TEST(RFedAvgTest, LearnsAboveChance) {
  CoreFixture fx;
  RegularizerOptions reg;
  reg.lambda = 1e-3;
  RFedAvg algo(fx.Config(), reg, &fx.data.train, fx.views, fx.factory);
  TrainerOptions options;
  options.eval_max_examples = 200;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  const double before = trainer.EvaluateGlobal();
  RunHistory history = trainer.Run(8);
  EXPECT_GT(history.FinalAccuracy(), before + 0.2);
}

TEST(RFedAvgTest, ZeroLambdaMatchesFedAvg) {
  CoreFixture fx;
  RegularizerOptions reg;
  reg.lambda = 0.0;
  RFedAvg regd(fx.Config(), reg, &fx.data.train, fx.views, fx.factory);
  FedAvg plain(fx.Config(), &fx.data.train, fx.views, fx.factory);
  regd.RunRound(0);
  plain.RunRound(0);
  EXPECT_TRUE(AllClose(regd.global_state(), plain.global_state(), 1e-6f));
}

TEST(RFedAvgTest, DeltaStoreUpdatesAfterRound) {
  CoreFixture fx;
  RegularizerOptions reg;
  reg.lambda = 1e-3;
  RFedAvg algo(fx.Config(), reg, &fx.data.train, fx.views, fx.factory);
  // Initially all maps zero.
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(algo.delta_store().Get(k).MaxAbs(), 0.0f);
  }
  algo.RunRound(0);
  for (int k = 0; k < 4; ++k) {
    EXPECT_GT(algo.delta_store().Get(k).MaxAbs(), 0.0f);
  }
}

TEST(RFedAvgTest, CommunicationScalesWithClients) {
  CoreFixture fx;
  RegularizerOptions reg;
  reg.lambda = 1e-3;
  RFedAvg pairwise(fx.Config(), reg, &fx.data.train, fx.views, fx.factory);
  RFedAvgPlus averaged(fx.Config(), reg, &fx.data.train, fx.views, fx.factory);
  FedAvg plain(fx.Config(), &fx.data.train, fx.views, fx.factory);
  pairwise.RunRound(0);
  averaged.RunRound(0);
  plain.RunRound(0);
  const int64_t base = plain.comm().round_bytes();
  const int64_t map_bytes = pairwise.delta_store().MapBytes();
  const int n = 4;
  // rFedAvg: base + per-client (N-1) map download + 1 map upload.
  EXPECT_EQ(pairwise.comm().round_bytes(),
            base + n * ((n - 1) * map_bytes + map_bytes));
  // rFedAvg+: base + per-client 1 map down + 1 map up + second model sync.
  Rng init(1);
  auto model = fx.factory(&init);
  const int64_t model_bytes = StateBytes(model->Parameters());
  EXPECT_EQ(averaged.comm().round_bytes(),
            base + n * (2 * map_bytes + model_bytes));
  // The paper's Table III ratio: rFedAvg's map traffic is (N-1)x larger.
  EXPECT_EQ(pairwise.delta_store().BroadcastBytesPairwise(),
            (n - 1) * averaged.delta_store().BroadcastBytesAveraged());
}

TEST(RFedAvgPlusTest, LearnsAboveChance) {
  CoreFixture fx;
  RegularizerOptions reg;
  reg.lambda = 1e-3;
  RFedAvgPlus algo(fx.Config(), reg, &fx.data.train, fx.views, fx.factory);
  TrainerOptions options;
  options.eval_max_examples = 200;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  const double before = trainer.EvaluateGlobal();
  RunHistory history = trainer.Run(8);
  EXPECT_GT(history.FinalAccuracy(), before + 0.2);
}

TEST(RFedAvgPlusTest, RegularizationShrinksFeatureDiscrepancy) {
  // After training with the regularizer the mean pairwise MMD between
  // client maps should be below the unregularized run's.
  CoreFixture fx;
  RegularizerOptions strong;
  strong.lambda = 5e-2;
  RegularizerOptions off;
  off.lambda = 0.0;
  RFedAvg with(fx.Config(), strong, &fx.data.train, fx.views, fx.factory);
  RFedAvg without(fx.Config(), off, &fx.data.train, fx.views, fx.factory);
  for (int r = 0; r < 6; ++r) {
    with.RunRound(r);
    without.RunRound(r);
  }
  EXPECT_LT(with.MeanPairwiseMmd(), without.MeanPairwiseMmd());
}

TEST(RFedAvgPlusTest, DpNoiseKeepsTrainingAlive) {
  CoreFixture fx;
  RegularizerOptions reg;
  reg.lambda = 1e-3;
  reg.dp = DpNoiseConfig{1.0, 1.0, 32};
  RFedAvgPlus algo(fx.Config(), reg, &fx.data.train, fx.views, fx.factory);
  TrainerOptions options;
  options.eval_max_examples = 200;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  const double before = trainer.EvaluateGlobal();
  RunHistory history = trainer.Run(6);
  EXPECT_GT(history.FinalAccuracy(), before + 0.15);
}

TEST(RFedAvgTest, PartialParticipationWorks) {
  CoreFixture fx;
  FlConfig config = fx.Config();
  config.sample_ratio = 0.5;
  RegularizerOptions reg;
  reg.lambda = 1e-3;
  RFedAvgPlus algo(config, reg, &fx.data.train, fx.views, fx.factory);
  TrainerOptions options;
  options.eval_max_examples = 200;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  RunHistory history = trainer.Run(8);
  EXPECT_GT(history.FinalAccuracy(), 0.4);
}

// ---- Convergence theory harness (Theorems 1 and 2) ----

TEST(ConvexObjectiveTest, SolverSolvesKnownSystem) {
  Tensor a(Shape{2, 2}, {2, 0, 0, 4});
  Tensor b(Shape{2}, {2, 8});
  Tensor x = SolveLinearSystem(a, b);
  EXPECT_NEAR(x.at(0), 1.0f, 1e-5f);
  EXPECT_NEAR(x.at(1), 2.0f, 1e-5f);
}

TEST(ConvexObjectiveTest, SolverHandlesPivoting) {
  Tensor a(Shape{2, 2}, {0, 1, 1, 0});
  Tensor b(Shape{2}, {3, 7});
  Tensor x = SolveLinearSystem(a, b);
  EXPECT_NEAR(x.at(0), 7.0f, 1e-5f);
  EXPECT_NEAR(x.at(1), 3.0f, 1e-5f);
}

TEST(ConvexObjectiveTest, OptimumIsStationary) {
  ConvexProblemConfig config;
  config.dim = 6;
  config.num_clients = 5;
  ConvexFederatedProblem problem(config);
  const Tensor& w_star = problem.Optimum();
  const double f_star = problem.OptimalValue();
  // Perturbations in any coordinate must not decrease F.
  for (int64_t i = 0; i < w_star.size(); ++i) {
    Tensor w = w_star;
    w.at(i) += 0.01f;
    EXPECT_GE(problem.FullObjective(w), f_star - 1e-6);
    w.at(i) -= 0.02f;
    EXPECT_GE(problem.FullObjective(w), f_star - 1e-6);
  }
}

TEST(ConvexObjectiveTest, SmoothnessExceedsStrongConvexity) {
  ConvexFederatedProblem problem(ConvexProblemConfig{});
  EXPECT_GE(problem.Smoothness(), problem.StrongConvexity());
}

TEST(ConvexObjectiveTest, AllModesConvergeAtRateOneOverT) {
  ConvexProblemConfig config;
  config.grad_noise = 0.05;
  ConvexFederatedProblem problem(config);
  for (MapMode mode : {MapMode::kFresh, MapMode::kLocalDelayed,
                       MapMode::kGlobalDelayed}) {
    Rng rng(99);
    const auto gaps = problem.Run(mode, 300, 5, &rng);
    // Early error much larger than late error; late error small.
    EXPECT_LT(gaps.back(), 0.05) << static_cast<int>(mode);
    EXPECT_LT(gaps.back(), gaps[4] * 0.5) << static_cast<int>(mode);
    for (double g : gaps) ASSERT_TRUE(std::isfinite(g));
  }
}

TEST(ConvexObjectiveTest, DelayedMapsStillReachOptimum) {
  // The theory says delayed maps only inflate the constant, not the rate:
  // both delayed variants must get within noise range of F*.
  ConvexProblemConfig config;
  config.grad_noise = 0.0;  // exact gradients isolate the delay effect
  ConvexFederatedProblem problem(config);
  Rng rng(100);
  const auto local = problem.Run(MapMode::kLocalDelayed, 400, 5, &rng);
  const auto global = problem.Run(MapMode::kGlobalDelayed, 400, 5, &rng);
  EXPECT_LT(local.back(), 1e-3);
  EXPECT_LT(global.back(), 1e-3);
}

}  // namespace
}  // namespace rfed
