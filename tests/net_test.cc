// Transport-layer tests: the frame codec under truncation, partial
// reads and bit flips; FlMessage round-trip framing under the same
// corruptions (the checkpoint-corruption death-test idiom of
// robustness_test.cc applied to the wire path); host:port parsing; and
// a live localhost socket round trip.

#include <gtest/gtest.h>

#include <poll.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "fl/message.h"
#include "net/fault_proxy.h"
#include "net/frame.h"
#include "net/socket.h"
#include "test_util.h"
#include "util/flags.h"

namespace rfed {
namespace {

using net::Frame;
using net::FrameAssembler;
using net::FrameType;

std::vector<uint8_t> TestPayload(size_t n) {
  std::vector<uint8_t> payload(n);
  for (size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<uint8_t>((i * 31 + 7) & 0xff);
  }
  return payload;
}

TEST(FrameCodec, RoundTripsSingleFrame) {
  const std::vector<uint8_t> payload = TestPayload(129);
  const std::vector<uint8_t> wire = net::EncodeFrame(FrameType::kJob, payload);
  EXPECT_EQ(wire.size(), net::kFrameHeaderBytes + payload.size() +
                             net::kFrameChecksumBytes);
  FrameAssembler assembler;
  assembler.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(assembler.Next(&frame), FrameAssembler::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kJob);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Status::kNeedMore);
}

TEST(FrameCodec, ReassemblesFromSingleByteFeeds) {
  // Worst-case partial reads: the stream arrives one byte at a time,
  // across two back-to-back frames.
  std::vector<uint8_t> wire = net::EncodeFrame(FrameType::kHello, TestPayload(40));
  const std::vector<uint8_t> second =
      net::EncodeFrame(FrameType::kResult, TestPayload(7));
  wire.insert(wire.end(), second.begin(), second.end());
  FrameAssembler assembler;
  Frame frame;
  int complete = 0;
  for (uint8_t byte : wire) {
    assembler.Feed(&byte, 1);
    while (assembler.Next(&frame) == FrameAssembler::Status::kFrame) {
      ++complete;
      if (complete == 1) {
        EXPECT_EQ(frame.type, FrameType::kHello);
      }
      if (complete == 2) {
        EXPECT_EQ(frame.type, FrameType::kResult);
      }
    }
  }
  EXPECT_EQ(complete, 2);
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
}

TEST(FrameCodec, TruncatedFrameIsIncompleteNotCorrupt) {
  const std::vector<uint8_t> wire =
      net::EncodeFrame(FrameType::kJob, TestPayload(64));
  for (size_t keep : {size_t{0}, size_t{3}, net::kFrameHeaderBytes,
                      wire.size() - 1}) {
    FrameAssembler assembler;
    assembler.Feed(wire.data(), keep);
    Frame frame;
    EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Status::kNeedMore)
        << "prefix of " << keep << " bytes";
  }
}

TEST(FrameCodec, DetectsBitFlipAnywhere) {
  const std::vector<uint8_t> wire =
      net::EncodeFrame(FrameType::kResult, TestPayload(48));
  // Flip one bit at a spread of positions covering the magic, type,
  // payload, and checksum regions — everywhere except the length field
  // (bytes 8..15), whose corruption is covered separately below because
  // an inflated length legitimately stalls a streaming parser until the
  // checksum arrives.
  for (size_t pos = 0; pos < wire.size(); pos += 5) {
    if (pos >= 8 && pos < 16) continue;
    std::vector<uint8_t> mangled = wire;
    mangled[pos] ^= 0x10;
    FrameAssembler assembler;
    assembler.Feed(mangled.data(), mangled.size());
    Frame frame;
    EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Status::kError)
        << "bit flip at byte " << pos << " went undetected";
    EXPECT_FALSE(assembler.error().empty());
    // Corruption is sticky: feeding more valid bytes cannot resurrect
    // the stream.
    assembler.Feed(wire.data(), wire.size());
    EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Status::kError);
  }
}

TEST(FrameCodec, LengthFieldFlipFailsTheChecksum) {
  const std::vector<uint8_t> wire =
      net::EncodeFrame(FrameType::kResult, TestPayload(48));
  // Deflating flip (0x30 -> 0x20): the shortened frame completes within
  // the bytes already buffered and its checksum cannot match.
  {
    std::vector<uint8_t> mangled = wire;
    mangled[8] ^= 0x10;
    FrameAssembler assembler;
    assembler.Feed(mangled.data(), mangled.size());
    Frame frame;
    EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Status::kError);
  }
  // Inflating flip (0x30 -> 0x70): the parser stalls waiting for the
  // phantom bytes — and errors as soon as they "arrive", because the
  // checksum now covers garbage.
  {
    std::vector<uint8_t> mangled = wire;
    mangled[8] ^= 0x40;
    FrameAssembler assembler;
    assembler.Feed(mangled.data(), mangled.size());
    Frame frame;
    EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Status::kNeedMore);
    const std::vector<uint8_t> filler(64, 0xab);
    assembler.Feed(filler.data(), filler.size());
    EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Status::kError);
  }
}

TEST(FrameCodec, RejectsOversizedLength) {
  std::vector<uint8_t> wire = net::EncodeFrame(FrameType::kJob, TestPayload(8));
  // Overwrite the u64 length field (offset 8) with an absurd value; the
  // assembler must refuse before attempting the allocation. The checksum
  // is wrong too, but the length guard fires first.
  for (int i = 0; i < 8; ++i) {
    wire[8 + static_cast<size_t>(i)] = 0xff;
  }
  FrameAssembler assembler;
  assembler.Feed(wire.data(), wire.size());
  Frame frame;
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Status::kError);
  EXPECT_NE(assembler.error().find("length"), std::string::npos);
}

// ---- FlMessage framing under the same corruption modes ----

FlMessage MakeMessage() {
  FlMessage m;
  m.kind = FlMessage::Kind::kModelUpload;
  m.round = 3;
  m.sender = 2;
  m.payload.push_back(testing::PatternTensor({4, 5}, 1.0f));
  m.payload.push_back(testing::PatternTensor({7}, 0.5f));
  return m;
}

TEST(FlMessageFraming, WireOverheadConstantsMatchEncoding) {
  FlMessage empty;
  empty.payload.clear();
  std::vector<uint8_t> wire;
  empty.EncodeTo(&wire);
  // A payload-free message is pure framing: header + checksum.
  EXPECT_EQ(static_cast<int64_t>(wire.size()), FlMessage::kWireOverheadBytes);
  EXPECT_EQ(FlMessage::kWireOverheadBytes,
            FlMessage::kHeaderBytes + FlMessage::kChecksumBytes);
}

TEST(FlMessageFraming, TryDecodeRejectsEveryTruncation) {
  std::vector<uint8_t> wire;
  MakeMessage().EncodeTo(&wire);
  for (size_t keep = 0; keep < wire.size(); keep += 9) {
    std::vector<uint8_t> prefix(wire.begin(),
                                wire.begin() + static_cast<int64_t>(keep));
    size_t offset = 0;
    FlMessage out;
    EXPECT_FALSE(FlMessage::TryDecode(prefix, &offset, &out))
        << "prefix of " << keep << " bytes decoded";
    EXPECT_EQ(offset, 0u);
  }
}

TEST(FlMessageFraming, TryDecodeRejectsBitFlips) {
  std::vector<uint8_t> wire;
  MakeMessage().EncodeTo(&wire);
  for (size_t pos = 0; pos < wire.size(); pos += 7) {
    std::vector<uint8_t> mangled = wire;
    mangled[pos] ^= 0x04;
    size_t offset = 0;
    FlMessage out;
    EXPECT_FALSE(FlMessage::TryDecode(mangled, &offset, &out))
        << "bit flip at byte " << pos << " went undetected";
  }
}

TEST(FlMessageFramingDeathTest, DecodeAbortsOnTruncation) {
  std::vector<uint8_t> wire;
  MakeMessage().EncodeTo(&wire);
  wire.resize(wire.size() / 2);
  size_t offset = 0;
  EXPECT_DEATH(FlMessage::Decode(wire, &offset), "RFED_CHECK failed");
}

TEST(FlMessageFramingDeathTest, DecodeAbortsOnBitFlip) {
  std::vector<uint8_t> wire;
  MakeMessage().EncodeTo(&wire);
  wire[wire.size() / 3] ^= 0x20;
  size_t offset = 0;
  EXPECT_DEATH(FlMessage::Decode(wire, &offset), "RFED_CHECK failed");
}

// ---- host:port parsing ----

TEST(HostPortTest, ParsesValidEndpoints) {
  HostPort hp;
  ASSERT_TRUE(ParseHostPort("127.0.0.1:7710", &hp));
  EXPECT_EQ(hp.host, "127.0.0.1");
  EXPECT_EQ(hp.port, 7710);
  ASSERT_TRUE(ParseHostPort("localhost:0", &hp));
  EXPECT_EQ(hp.host, "localhost");
  EXPECT_EQ(hp.port, 0);
  ASSERT_TRUE(ParseHostPort("example.com:65535", &hp));
  EXPECT_EQ(hp.port, 65535);
}

TEST(HostPortTest, RejectsMalformedEndpoints) {
  HostPort hp{"unchanged", 42};
  EXPECT_FALSE(ParseHostPort("", &hp));
  EXPECT_FALSE(ParseHostPort("nocolon", &hp));
  EXPECT_FALSE(ParseHostPort(":7710", &hp));        // empty host
  EXPECT_FALSE(ParseHostPort("host:", &hp));        // empty port
  EXPECT_FALSE(ParseHostPort("host:12ab", &hp));    // non-numeric
  EXPECT_FALSE(ParseHostPort("host:65536", &hp));   // out of range
  EXPECT_FALSE(ParseHostPort("host:123456", &hp));  // too many digits
  EXPECT_FALSE(ParseHostPort("host:-1", &hp));
  // A failed parse leaves the output untouched.
  EXPECT_EQ(hp.host, "unchanged");
  EXPECT_EQ(hp.port, 42);
}

// ---- live sockets ----

TEST(SocketTest, FramesSurviveLocalhostRoundTrip) {
  net::TcpListener listener("127.0.0.1", 0);
  ASSERT_GT(listener.bound_port(), 0);
  const std::vector<uint8_t> payload = TestPayload(3000);
  std::thread client([&] {
    net::TcpConnection conn =
        net::TcpConnection::Connect("127.0.0.1", listener.bound_port());
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(net::SendFrame(&conn, FrameType::kHello, payload));
    net::FrameAssembler assembler;
    Frame echoed;
    ASSERT_TRUE(net::RecvFrame(&conn, &assembler, &echoed));
    EXPECT_EQ(echoed.type, FrameType::kHelloAck);
    EXPECT_EQ(echoed.payload, payload);
  });
  net::TcpConnection server = listener.Accept();
  ASSERT_TRUE(server.valid());
  net::FrameAssembler assembler;
  Frame frame;
  ASSERT_TRUE(net::RecvFrame(&server, &assembler, &frame));
  EXPECT_EQ(frame.type, FrameType::kHello);
  EXPECT_EQ(frame.payload, payload);
  ASSERT_TRUE(net::SendFrame(&server, FrameType::kHelloAck, frame.payload));
  client.join();
}

TEST(SocketTest, RecvFrameReportsEof) {
  net::TcpListener listener("127.0.0.1", 0);
  std::thread client([&] {
    net::TcpConnection conn =
        net::TcpConnection::Connect("127.0.0.1", listener.bound_port());
    ASSERT_TRUE(conn.valid());
    conn.Close();  // orderly shutdown with no frames sent
  });
  net::TcpConnection server = listener.Accept();
  client.join();
  net::FrameAssembler assembler;
  Frame frame;
  EXPECT_FALSE(net::RecvFrame(&server, &assembler, &frame));
}

TEST(SocketTest, ConnectToDeadPortFails) {
  // Bind then close a listener so the port is known-dead.
  int dead_port = 0;
  {
    net::TcpListener listener("127.0.0.1", 0);
    dead_port = listener.bound_port();
  }
  BackoffPolicy policy;
  policy.initial_ms = 1.0;
  policy.max_ms = 2.0;
  net::TcpConnection conn =
      net::TcpConnection::ConnectWithRetry("127.0.0.1", dead_port, 3, policy);
  EXPECT_FALSE(conn.valid());
}

// ---- SendAll under short writes and interrupted syscalls ----

// Handler body is irrelevant: its arrival is what makes a blocking
// ::send return EINTR (installed without SA_RESTART below).
void SigUsr1Handler(int) {}

TEST(SocketTest, SendAllSurvivesShortWritesAndEintrStorm) {
  // Shrink the kernel send queue so SendAll's short-write loop runs for
  // real, and bombard the sending (main) thread with SIGUSR1 so ::send
  // keeps returning EINTR mid-transfer. SendAll must still deliver the
  // whole buffer byte-exactly.
  struct sigaction action, old_action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = SigUsr1Handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: the syscall must surface EINTR
  ASSERT_EQ(sigaction(SIGUSR1, &action, &old_action), 0);

  net::TcpListener listener("127.0.0.1", 0);
  net::TcpConnection client =
      net::TcpConnection::Connect("127.0.0.1", listener.bound_port());
  ASSERT_TRUE(client.valid());
  int tiny = 4096;
  ASSERT_EQ(setsockopt(client.fd(), SOL_SOCKET, SO_SNDBUF, &tiny,
                       sizeof(tiny)), 0);
  net::TcpConnection server = listener.Accept();
  ASSERT_TRUE(server.valid());

  const std::vector<uint8_t> blob = TestPayload(4 << 20);
  std::atomic<bool> done{false};

  // Drain slowly in small chunks so the send queue stays near-full
  // (short writes) for most of the transfer.
  std::vector<uint8_t> received;
  std::thread reader([&] {
    received.reserve(blob.size());
    uint8_t chunk[8192];
    int chunks = 0;
    while (received.size() < blob.size()) {
      const int64_t got = server.RecvSome(chunk, sizeof(chunk));
      ASSERT_GT(got, 0);
      received.insert(received.end(), chunk, chunk + got);
      if (++chunks % 32 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  });

  const pthread_t sender_thread = pthread_self();
  std::thread storm([&] {
    while (!done.load(std::memory_order_relaxed)) {
      pthread_kill(sender_thread, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  EXPECT_TRUE(client.SendAll(blob.data(), blob.size()));
  done.store(true, std::memory_order_relaxed);
  storm.join();
  reader.join();
  EXPECT_EQ(received, blob);
  sigaction(SIGUSR1, &old_action, nullptr);
}

TEST(SocketTest, InterruptBlockingIoUnblocksAWedgedSend) {
  net::TcpListener listener("127.0.0.1", 0);
  // Small receive queue (inherited by the accepted socket) so the
  // sender wedges quickly against a peer that never reads.
  int tiny = 4096;
  ASSERT_EQ(setsockopt(listener.fd(), SOL_SOCKET, SO_RCVBUF, &tiny,
                       sizeof(tiny)), 0);
  net::TcpConnection client =
      net::TcpConnection::Connect("127.0.0.1", listener.bound_port());
  ASSERT_TRUE(client.valid());
  ASSERT_EQ(setsockopt(client.fd(), SOL_SOCKET, SO_SNDBUF, &tiny,
                       sizeof(tiny)), 0);
  net::TcpConnection server = listener.Accept();  // deliberately never read

  std::atomic<bool> send_returned{false};
  std::atomic<bool> send_ok{true};
  std::thread sender([&] {
    const std::vector<uint8_t> blob(32 << 20, 0x5a);
    send_ok.store(client.SendAll(blob.data(), blob.size()));
    send_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(send_returned.load());  // wedged against the full queue
  client.InterruptBlockingIo();
  sender.join();
  EXPECT_FALSE(send_ok.load());
}

// ---- ConnectWithRetry backoff sequencing ----

TEST(SocketTest, ConnectWithRetryFollowsTheBackoffSchedule) {
  // Pick a currently-free port, then release it so the first attempts
  // fail; the sleep hook brings the listener up during the third delay,
  // so attempt 4 succeeds. The recorded delays must be exactly the
  // jitter-free exponential schedule.
  int port = 0;
  {
    net::TcpListener probe("127.0.0.1", 0);
    port = probe.bound_port();
  }
  BackoffPolicy policy;
  policy.initial_ms = 10.0;
  policy.multiplier = 2.0;
  policy.max_ms = 1000.0;
  std::vector<double> delays;
  std::unique_ptr<net::TcpListener> listener;
  net::TcpConnection conn = net::TcpConnection::ConnectWithRetry(
      "127.0.0.1", port, 10, policy, [&](double delay_ms) {
        delays.push_back(delay_ms);
        if (delays.size() == 3) {
          listener = std::make_unique<net::TcpListener>("127.0.0.1", port);
        }
      });
  EXPECT_TRUE(conn.valid());
  ASSERT_EQ(delays.size(), 3u);
  EXPECT_DOUBLE_EQ(delays[0], 10.0);
  EXPECT_DOUBLE_EQ(delays[1], 20.0);
  EXPECT_DOUBLE_EQ(delays[2], 40.0);
}

TEST(SocketTest, ConnectWithRetryDoesNotSleepAfterTheLastAttempt) {
  int dead_port = 0;
  {
    net::TcpListener probe("127.0.0.1", 0);
    dead_port = probe.bound_port();
  }
  BackoffPolicy policy;
  policy.initial_ms = 10.0;
  std::vector<double> delays;
  net::TcpConnection conn = net::TcpConnection::ConnectWithRetry(
      "127.0.0.1", dead_port, 3, policy,
      [&](double delay_ms) { delays.push_back(delay_ms); });
  EXPECT_FALSE(conn.valid());
  // Three attempts, two inter-attempt delays: exhaustion returns
  // immediately rather than sleeping one more time.
  EXPECT_EQ(delays.size(), 2u);
}

TEST(SocketDeathTest, ConnectWithRetryOrDieAbortsWithEndpoint) {
  int dead_port = 0;
  {
    net::TcpListener probe("127.0.0.1", 0);
    dead_port = probe.bound_port();
  }
  BackoffPolicy policy;
  policy.initial_ms = 1.0;
  policy.max_ms = 1.0;
  EXPECT_DEATH(net::TcpConnection::ConnectWithRetryOrDie(
                   "127.0.0.1", dead_port, 2, policy),
               "cannot connect to 127.0.0.1");
}

// ---- fault proxy (the chaos harness of serve_test.cc) ----

TEST(FaultProxyTest, RelaysFramesTransparentlyBothWays) {
  net::TcpListener upstream("127.0.0.1", 0);
  net::FaultProxy proxy("127.0.0.1", upstream.bound_port());
  net::TcpConnection client =
      net::TcpConnection::Connect("127.0.0.1", proxy.listen_port());
  ASSERT_TRUE(client.valid());
  net::TcpConnection server = upstream.Accept();
  ASSERT_TRUE(server.valid());

  const std::vector<uint8_t> payload = TestPayload(2000);
  ASSERT_TRUE(net::SendFrame(&client, FrameType::kJob, payload));
  net::FrameAssembler up_assembler;
  Frame frame;
  ASSERT_TRUE(net::RecvFrame(&server, &up_assembler, &frame));
  EXPECT_EQ(frame.type, FrameType::kJob);
  EXPECT_EQ(frame.payload, payload);

  ASSERT_TRUE(net::SendFrame(&server, FrameType::kResult, payload));
  net::FrameAssembler down_assembler;
  ASSERT_TRUE(net::RecvFrame(&client, &down_assembler, &frame));
  EXPECT_EQ(frame.type, FrameType::kResult);
  EXPECT_EQ(frame.payload, payload);

  EXPECT_EQ(proxy.accepted_connections(), 1);
  EXPECT_EQ(proxy.killed_connections(), 0);
}

TEST(FaultProxyTest, KillPlanSeversBothSidesAtTheScheduledFrame) {
  net::TcpListener upstream("127.0.0.1", 0);
  net::FaultProxy proxy("127.0.0.1", upstream.bound_port());
  net::FaultPlan plan;
  plan.kill_after_frames = 2;
  proxy.SetPlan(0, plan);

  net::TcpConnection client =
      net::TcpConnection::Connect("127.0.0.1", proxy.listen_port());
  ASSERT_TRUE(client.valid());
  net::TcpConnection server = upstream.Accept();
  ASSERT_TRUE(server.valid());

  // Frames up to and including the threshold are still delivered — the
  // kill lands at a deterministic protocol position, not mid-frame.
  net::FrameAssembler up_assembler;
  Frame frame;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(net::SendFrame(&client, FrameType::kJob, TestPayload(64)));
    ASSERT_TRUE(net::RecvFrame(&server, &up_assembler, &frame));
  }
  // The threshold frame tripped the plan: both peers now see EOF.
  net::FrameAssembler down_assembler;
  EXPECT_FALSE(net::RecvFrame(&client, &down_assembler, &frame));
  EXPECT_FALSE(net::RecvFrame(&server, &up_assembler, &frame));
  EXPECT_EQ(proxy.killed_connections(), 1);
}

TEST(FaultProxyTest, BlackholePlanStallsTrafficWithoutEof) {
  net::TcpListener upstream("127.0.0.1", 0);
  net::FaultProxy proxy("127.0.0.1", upstream.bound_port());
  net::FaultPlan plan;
  plan.blackhole_after_frames = 1;
  proxy.SetPlan(0, plan);

  net::TcpConnection client =
      net::TcpConnection::Connect("127.0.0.1", proxy.listen_port());
  ASSERT_TRUE(client.valid());
  net::TcpConnection server = upstream.Accept();
  ASSERT_TRUE(server.valid());

  // Frame 1 passes, arming the black hole.
  net::FrameAssembler up_assembler;
  Frame frame;
  ASSERT_TRUE(net::SendFrame(&client, FrameType::kJob, TestPayload(32)));
  ASSERT_TRUE(net::RecvFrame(&server, &up_assembler, &frame));

  // Everything after is swallowed in both directions — and crucially
  // neither socket reports EOF, so only a deadline can expose the stall.
  ASSERT_TRUE(net::SendFrame(&client, FrameType::kJob, TestPayload(32)));
  pollfd on_server{server.fd(), POLLIN, 0};
  EXPECT_EQ(::poll(&on_server, 1, 200), 0);

  ASSERT_TRUE(net::SendFrame(&server, FrameType::kResult, TestPayload(32)));
  pollfd on_client{client.fd(), POLLIN, 0};
  EXPECT_EQ(::poll(&on_client, 1, 200), 0);

  EXPECT_EQ(proxy.killed_connections(), 0);
}

}  // namespace
}  // namespace rfed
