#include "test_util.h"

#include <cmath>

namespace rfed::testing {

double MaxGradCheckError(const std::function<Variable()>& build_loss,
                         const std::vector<Variable*>& leaves,
                         double epsilon) {
  // Analytic gradients.
  for (Variable* leaf : leaves) leaf->ZeroGrad();
  Variable loss = build_loss();
  loss.Backward();
  std::vector<Tensor> analytic;
  analytic.reserve(leaves.size());
  for (Variable* leaf : leaves) {
    analytic.push_back(leaf->has_grad() ? leaf->grad()
                                        : Tensor(leaf->value().shape()));
  }

  double max_err = 0.0;
  for (size_t li = 0; li < leaves.size(); ++li) {
    Variable* leaf = leaves[li];
    Tensor& value = leaf->mutable_value();
    for (int64_t i = 0; i < value.size(); ++i) {
      const float original = value.at(i);
      value.at(i) = original + static_cast<float>(epsilon);
      const double plus =
          static_cast<double>(build_loss().value().ToScalar());
      value.at(i) = original - static_cast<float>(epsilon);
      const double minus =
          static_cast<double>(build_loss().value().ToScalar());
      value.at(i) = original;
      const double numeric = (plus - minus) / (2.0 * epsilon);
      const double err =
          std::fabs(numeric - static_cast<double>(analytic[li].at(i)));
      max_err = std::max(max_err, err);
    }
  }
  return max_err;
}

Tensor PatternTensor(Shape shape, float scale) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.at(i) = scale * std::sin(0.7f * static_cast<float>(i) + 0.3f);
  }
  return t;
}

}  // namespace rfed::testing
