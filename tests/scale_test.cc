// Cross-device scale suite (`ctest -L scale`): pins the lazy client
// state, hierarchical shard aggregation, and streaming-fold machinery
// introduced for the 10^5..10^6-client regime.
//
//  - Property tests: the canonical pairwise reduction tree is
//    byte-identical across every power-of-two shard fanout and thread
//    count, the streaming (binary-counter) accumulator reproduces it
//    exactly, and the sharded robust rules match their flat originals.
//  - Differential tests: lazily materialized pool clients produce the
//    same batch streams and the same multi-round model as eager
//    materialization of every client at startup.
//  - Kill-and-resume at N = 10,000 enrolled clients is bit-identical,
//    and a checkpoint naming a client id outside the pool aborts.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rfedavg.h"
#include "data/batcher.h"
#include "data/client_pool.h"
#include "data/synthetic_images.h"
#include "fl/checkpoint.h"
#include "fl/fedavg.h"
#include "fl/robust_agg.h"
#include "fl/shard_agg.h"
#include "nn/models.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rfed {
namespace {

void ExpectBitEqual(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.at(i), b.at(i)) << what << " coordinate " << i;
  }
}

std::vector<Tensor> RandomLeaves(int m, int64_t dim, Rng* rng) {
  std::vector<Tensor> leaves;
  leaves.reserve(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    Tensor t(Shape{dim});
    for (int64_t i = 0; i < dim; ++i) {
      t.at(i) = static_cast<float>(rng->Uniform() * 2.0 - 1.0);
    }
    leaves.push_back(std::move(t));
  }
  return leaves;
}

// ---- Canonical shard tree properties ----

TEST(ShardTreeTest, InvariantToFanoutAndThreadCount) {
  Rng rng(11);
  ThreadPool pool4(4);
  for (int m : {1, 3, 7, 64, 100}) {
    const std::vector<Tensor> leaves = RandomLeaves(m, 37, &rng);
    std::vector<float> scales;
    for (int j = 0; j < m; ++j) {
      scales.push_back(static_cast<float>(0.5 + rng.Uniform()));
    }
    const Tensor reference = ShardTreeWeightedSum(leaves, scales, 64, nullptr);
    for (int fanout : {1, 2, 8, 64}) {
      for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), &pool4}) {
        const Tensor got = ShardTreeWeightedSum(leaves, scales, fanout, pool);
        ExpectBitEqual(got, reference,
                       "m=" + std::to_string(m) +
                           " fanout=" + std::to_string(fanout) +
                           (pool ? " threads=4" : " threads=1"));
      }
    }
  }
}

TEST(ShardTreeTest, StreamingAccumulatorMatchesTree) {
  Rng rng(12);
  for (int m : {1, 2, 3, 7, 64, 100}) {
    const std::vector<Tensor> leaves = RandomLeaves(m, 23, &rng);
    std::vector<float> scales;
    for (int j = 0; j < m; ++j) {
      scales.push_back(static_cast<float>(0.5 + rng.Uniform()));
    }
    const Tensor reference = ShardTreeWeightedSum(leaves, scales, 8, nullptr);
    StreamingTreeSum acc;
    for (int j = 0; j < m; ++j) {
      Tensor leaf = leaves[static_cast<size_t>(j)];
      leaf.MulInPlace(scales[static_cast<size_t>(j)]);
      acc.Push(std::move(leaf));
    }
    EXPECT_EQ(acc.leaves(), m);
    // O(log n) peak: the stack never holds more than ceil(log2(m)) + 1
    // tensors regardless of m.
    int64_t cap = 1;
    while ((1 << cap) < m + 1) ++cap;
    EXPECT_LE(acc.peak_bytes(), (cap + 1) * 23 * 4) << "m=" << m;
    ExpectBitEqual(acc.Finish(), reference, "stream m=" + std::to_string(m));
  }
}

TEST(ShardTreeTest, PairwiseTreeSumIsTheUnitScaleTree) {
  Rng rng(13);
  const std::vector<Tensor> leaves = RandomLeaves(9, 17, &rng);
  std::vector<const Tensor*> borrowed;
  for (const Tensor& t : leaves) borrowed.push_back(&t);
  const std::vector<float> unit(leaves.size(), 1.0f);
  ExpectBitEqual(PairwiseTreeSum(borrowed),
                 ShardTreeWeightedSum(leaves, unit, 4, nullptr),
                 "pairwise tree");
}

TEST(ShardTreeTest, RejectsNonPowerOfTwoFanout) {
  Rng rng(14);
  const std::vector<Tensor> leaves = RandomLeaves(4, 5, &rng);
  const std::vector<float> unit(leaves.size(), 1.0f);
  EXPECT_DEATH(ShardTreeWeightedSum(leaves, unit, 3, nullptr),
               "power of two");
}

// ---- Sharded robust rules vs their flat originals ----

TEST(ShardedRobustTest, MatchesFlatRulesAtEveryThreadCount) {
  Rng rng(15);
  const std::vector<Tensor> values = RandomLeaves(9, 41, &rng);
  std::vector<double> weights;
  for (int j = 0; j < 9; ++j) weights.push_back(0.5 + rng.Uniform());
  ThreadPool pool4(4);
  for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), &pool4}) {
    const std::string tag = pool ? " threads=4" : " threads=1";
    ExpectBitEqual(ShardedTrimmedMean(values, weights, 0.2, pool),
                   CoordinateTrimmedMean(values, weights, 0.2),
                   "trimmed_mean" + tag);
    ExpectBitEqual(ShardedMedian(values, weights, pool),
                   CoordinateMedian(values, weights), "median" + tag);
    Tensor reference(Shape{41});
    for (int64_t i = 0; i < reference.size(); ++i) {
      reference.at(i) = 0.1f * static_cast<float>(i % 7);
    }
    NormClipReport flat_report, sharded_report;
    ExpectBitEqual(
        ShardedNormBoundedMean(reference, values, weights, 1.5,
                               &sharded_report, pool),
        NormBoundedMean(reference, values, weights, 1.5, &flat_report),
        "norm_clip" + tag);
    EXPECT_EQ(sharded_report.clipped, flat_report.clipped);
    EXPECT_EQ(sharded_report.bound, flat_report.bound);
  }
}

// ---- Lazy client pool determinism ----

struct ScaleFixture {
  ScaleFixture()
      : rng(4321), data(GenerateImageData(MnistLikeProfile(), 240, 120, &rng)) {
    CnnConfig mc;
    mc.conv1_channels = 2;
    mc.conv2_channels = 4;
    mc.feature_dim = 8;
    factory = MakeCnnFactory(mc);
  }

  ClientPoolOptions PoolOpts(int n) const {
    ClientPoolOptions o;
    o.num_clients = n;
    o.examples_per_client = 24;
    o.test_examples_per_client = 0;
    o.similarity = 0.3;
    o.seed = 99;
    return o;
  }

  Rng rng;
  SyntheticImageData data;
  ModelFactory factory;
};

FlConfig ScaleConfig() {
  FlConfig config;
  config.local_steps = 2;
  config.batch_size = 8;
  config.lr = 0.05;
  config.seed = 77;
  config.max_examples_per_pass = 64;
  return config;
}

TEST(ClientPoolTest, ViewsAreAPureFunctionOfSeedAndId) {
  ScaleFixture fx;
  ClientPool pool(&fx.data.train, nullptr, fx.PoolOpts(1000));
  const std::vector<int> first = pool.TrainIndices(7);
  // Unrelated materializations must not perturb client 7's view.
  (void)pool.TrainIndices(500);
  (void)pool.TrainIndices(999);
  EXPECT_EQ(pool.TrainIndices(7), first);
  EXPECT_EQ(static_cast<int>(first.size()), 24);
  for (int idx : first) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, fx.data.train.size());
  }
  EXPECT_EQ(pool.ClientClass(0), 0);
  EXPECT_EQ(pool.ClientClass(999), fx.data.train.num_classes() - 1);
}

TEST(ClientPoolTest, LazyViewsEqualEagerMaterialization) {
  ScaleFixture fx;
  ClientPool pool(&fx.data.train, nullptr, fx.PoolOpts(100));
  const std::vector<std::vector<int>> eager = pool.MaterializeAllTrainIndices();
  ASSERT_EQ(eager.size(), 100u);
  for (int k = 0; k < 100; ++k) {
    EXPECT_EQ(pool.TrainIndices(k), eager[static_cast<size_t>(k)])
        << "client " << k;
  }
}

TEST(ClientPoolTest, BatcherStreamIndependentOfMaterializationTime) {
  ScaleFixture fx;
  ClientPool pool(&fx.data.train, nullptr, fx.PoolOpts(100));
  const FlConfig config = ScaleConfig();
  // "Early" batcher: built at startup, as eager materialization would.
  Batcher early(&fx.data.train, pool.TrainIndices(42), config.batch_size,
                Rng(MixSeed(config.seed, kPoolBatcherLineage, 42)));
  // "Late" batcher: built after arbitrary other RNG traffic, as round-40
  // lazy materialization would. MixSeed keys the stream on (seed, k)
  // alone, so the two must deal identical batches.
  Rng unrelated(5);
  for (int i = 0; i < 1000; ++i) unrelated.Uniform();
  (void)pool.TrainIndices(7);
  Batcher late(&fx.data.train, pool.TrainIndices(42), config.batch_size,
               Rng(MixSeed(config.seed, kPoolBatcherLineage, 42)));
  for (int b = 0; b < 9; ++b) {
    const Batch a = early.Next();
    const Batch c = late.Next();
    ASSERT_EQ(a.labels, c.labels) << "batch " << b;
    ExpectBitEqual(a.images, c.images, "batch " + std::to_string(b));
  }
}

// ---- End-to-end pool-mode invariance ----

Tensor RunPoolFedAvg(const ScaleFixture& fx, const ClientPool& pool,
                     FlConfig config, int rounds, bool eager = false,
                     std::vector<double>* losses = nullptr) {
  FedAvg algo(config, &pool, fx.factory);
  if (eager) algo.MaterializeAllClients();
  for (int r = 0; r < rounds; ++r) {
    const RoundResult result = algo.RunRound(r);
    if (losses != nullptr) losses->push_back(result.train_loss);
  }
  return algo.global_state();
}

TEST(ScaleE2ETest, FedAvgInvariantToFanoutAndThreads) {
  ScaleFixture fx;
  ClientPool pool(&fx.data.train, nullptr, fx.PoolOpts(100));
  FlConfig config = ScaleConfig();
  config.sample_ratio = 0.2;
  config.shard_fanout = 1;
  std::vector<double> ref_losses;
  const Tensor reference = RunPoolFedAvg(fx, pool, config, 3, false,
                                         &ref_losses);
  struct Variant {
    int fanout;
    int threads;
  };
  for (const Variant v : {Variant{2, 1}, Variant{8, 1}, Variant{64, 1},
                          Variant{8, 4}}) {
    FlConfig vc = config;
    vc.shard_fanout = v.fanout;
    vc.num_threads = v.threads;
    std::vector<double> losses;
    const Tensor got = RunPoolFedAvg(fx, pool, vc, 3, false, &losses);
    const std::string tag = "fanout=" + std::to_string(v.fanout) +
                            " threads=" + std::to_string(v.threads);
    EXPECT_EQ(losses, ref_losses) << tag;
    ExpectBitEqual(got, reference, tag);
  }
}

TEST(ScaleE2ETest, RobustAggregatorsInvariantToShardingAndThreads) {
  ScaleFixture fx;
  ClientPool pool(&fx.data.train, nullptr, fx.PoolOpts(100));
  for (const char* aggregator : {"trimmed_mean", "median", "norm_clip"}) {
    FlConfig config = ScaleConfig();
    config.sample_ratio = 0.2;
    config.robust.aggregator = aggregator;
    // The coordinate-sharded robust rules are byte-identical to the flat
    // originals, so flat (fanout 0) is the reference here.
    const Tensor reference = RunPoolFedAvg(fx, pool, config, 2);
    for (int fanout : {1, 8}) {
      FlConfig vc = config;
      vc.shard_fanout = fanout;
      vc.num_threads = fanout == 8 ? 4 : 1;
      ExpectBitEqual(RunPoolFedAvg(fx, pool, vc, 2), reference,
                     std::string(aggregator) + " fanout=" +
                         std::to_string(fanout));
    }
  }
}

TEST(ScaleE2ETest, LazyMaterializationEqualsEagerByteForByte) {
  ScaleFixture fx;
  ClientPool pool(&fx.data.train, nullptr, fx.PoolOpts(100));
  FlConfig config = ScaleConfig();
  config.sample_ratio = 0.2;
  std::vector<double> lazy_losses, eager_losses;
  FedAvg lazy(config, &pool, fx.factory);
  FedAvg eager(config, &pool, fx.factory);
  eager.MaterializeAllClients();
  EXPECT_EQ(eager.materialized_clients(), 100);
  for (int r = 0; r < 3; ++r) {
    lazy_losses.push_back(lazy.RunRound(r).train_loss);
    eager_losses.push_back(eager.RunRound(r).train_loss);
  }
  EXPECT_EQ(lazy_losses, eager_losses);
  ExpectBitEqual(lazy.global_state(), eager.global_state(), "lazy vs eager");
  // The lazy run only ever touched its sampled cohorts.
  EXPECT_LE(lazy.materialized_clients(), 3 * 20);
  EXPECT_LT(lazy.materialized_clients(), 100);
}

TEST(ScaleE2ETest, RFedAvgPlusInvariantToFanoutAndThreads) {
  ScaleFixture fx;
  ClientPool pool(&fx.data.train, nullptr, fx.PoolOpts(100));
  RegularizerOptions reg;
  reg.lambda = 1e-3;
  FlConfig config = ScaleConfig();
  config.sample_ratio = 0.2;
  config.shard_fanout = 1;
  auto run = [&](const FlConfig& c) {
    RFedAvgPlus algo(c, reg, &pool, fx.factory);
    for (int r = 0; r < 2; ++r) algo.RunRound(r);
    EXPECT_LE(algo.delta_store().num_touched(), algo.materialized_clients());
    return algo.global_state();
  };
  const Tensor reference = run(config);
  for (int fanout : {8, 64}) {
    for (int threads : {1, 4}) {
      FlConfig vc = config;
      vc.shard_fanout = fanout;
      vc.num_threads = threads;
      ExpectBitEqual(run(vc), reference,
                     "rfedavg+ fanout=" + std::to_string(fanout) +
                         " threads=" + std::to_string(threads));
    }
  }
}

TEST(ScaleE2ETest, StreamingFoldMatchesAllAtOnce) {
  ScaleFixture fx;
  ClientPool pool(&fx.data.train, nullptr, fx.PoolOpts(100));
  for (const char* compressor : {"none", "q8"}) {
    FlConfig config = ScaleConfig();
    config.sample_ratio = 0.3;
    config.shard_fanout = 8;
    config.upload_compressor = compressor;
    const Tensor reference = RunPoolFedAvg(fx, pool, config, 3);
    // A chunk that does not divide the cohort exercises the final
    // partial chunk; chunk 1 exercises the degenerate fold.
    for (int chunk : {1, 7, 64}) {
      FlConfig vc = config;
      vc.stream_chunk = chunk;
      ExpectBitEqual(RunPoolFedAvg(fx, pool, vc, 3), reference,
                     std::string(compressor) + " stream_chunk=" +
                         std::to_string(chunk));
    }
  }
}

TEST(ScaleE2ETest, StreamingRFedAvgPlusMatchesAllAtOnce) {
  ScaleFixture fx;
  ClientPool pool(&fx.data.train, nullptr, fx.PoolOpts(100));
  RegularizerOptions reg;
  reg.lambda = 1e-3;
  FlConfig config = ScaleConfig();
  config.sample_ratio = 0.2;
  config.shard_fanout = 8;
  auto run = [&](int chunk) {
    FlConfig c = config;
    c.stream_chunk = chunk;
    RFedAvgPlus algo(c, reg, &pool, fx.factory);
    for (int r = 0; r < 2; ++r) algo.RunRound(r);
    return algo.global_state();
  };
  ExpectBitEqual(run(7), run(0), "rfedavg+ streaming");
}

// ---- Kill-and-resume under lazy materialization ----

TEST(ScaleResumeTest, KillAndResumeAtTenThousandClientsIsBitIdentical) {
  ScaleFixture fx;
  ClientPool pool(&fx.data.train, nullptr, fx.PoolOpts(10000));
  FlConfig config = ScaleConfig();
  config.sample_ratio = 0.005;  // 50 sampled per round
  config.shard_fanout = 8;

  // Uninterrupted 4-round reference.
  FedAvg full(config, &pool, fx.factory);
  for (int r = 0; r < 4; ++r) full.RunRound(r);

  // "Crashed" run: 2 rounds, checkpoint, whole process state discarded.
  std::vector<uint8_t> blob;
  {
    FedAvg crashed(config, &pool, fx.factory);
    for (int r = 0; r < 2; ++r) crashed.RunRound(r);
    crashed.SaveRunState(&blob);
    EXPECT_LE(crashed.materialized_clients(), 100);
  }

  // Fresh instance, restore, continue.
  FedAvg resumed(config, &pool, fx.factory);
  resumed.LoadRunState(blob);
  for (int r = 2; r < 4; ++r) resumed.RunRound(r);

  ExpectBitEqual(resumed.global_state(), full.global_state(), "resume");
  EXPECT_EQ(resumed.materialized_clients(), full.materialized_clients());
}

TEST(ScaleResumeTest, RFedAvgPlusSparseMapsSurviveResume) {
  ScaleFixture fx;
  ClientPool pool(&fx.data.train, nullptr, fx.PoolOpts(1000));
  RegularizerOptions reg;
  reg.lambda = 1e-3;
  FlConfig config = ScaleConfig();
  config.sample_ratio = 0.02;  // 20 sampled per round

  RFedAvgPlus full(config, reg, &pool, fx.factory);
  for (int r = 0; r < 4; ++r) full.RunRound(r);

  std::vector<uint8_t> blob;
  {
    RFedAvgPlus crashed(config, reg, &pool, fx.factory);
    for (int r = 0; r < 2; ++r) crashed.RunRound(r);
    crashed.SaveRunState(&blob);
  }

  RFedAvgPlus resumed(config, reg, &pool, fx.factory);
  resumed.LoadRunState(blob);
  for (int r = 2; r < 4; ++r) resumed.RunRound(r);

  ExpectBitEqual(resumed.global_state(), full.global_state(),
                 "rfedavg+ resume");
  EXPECT_EQ(resumed.delta_store().num_touched(),
            full.delta_store().num_touched());
  for (int id : full.delta_store().TouchedClients()) {
    ExpectBitEqual(resumed.delta_store().Get(id), full.delta_store().Get(id),
                   "map of client " + std::to_string(id));
  }
}

// ---- Checkpoint format hardening ----

TEST(ScaleDeathTest, CheckpointNamingClientBeyondPoolAborts) {
  ScaleFixture fx;
  ClientPool pool(&fx.data.train, nullptr, fx.PoolOpts(16));
  FedAvg algo(ScaleConfig(), &pool, fx.factory);
  // Hand-built pool-format blob whose batcher section names client 99 —
  // outside this 16-client pool. The id bounds check must fire before
  // any of the (absent) per-batcher payload is read. The magic word here
  // pins the on-disk format constant.
  std::vector<uint8_t> blob;
  CheckpointWriter w(&blob);
  w.WriteString("FedAvg");
  w.WriteU32(0x700c57a7u);  // kPoolStateMagic
  w.WriteI32(16);
  w.WriteTensor(algo.global_state());
  w.WriteRng(Rng(1).SaveState());
  w.WriteU32(1);   // one saved client section
  w.WriteI32(99);  // client id beyond the pool
  EXPECT_DEATH(algo.LoadRunState(blob), "names client id 99");
}

TEST(ScaleDeathTest, CheckpointFromDifferentPoolSizeAborts) {
  ScaleFixture fx;
  ClientPool pool100(&fx.data.train, nullptr, fx.PoolOpts(100));
  ClientPool pool16(&fx.data.train, nullptr, fx.PoolOpts(16));
  FlConfig config = ScaleConfig();
  config.sample_ratio = 0.2;
  FedAvg saver(config, &pool100, fx.factory);
  saver.RunRound(0);
  std::vector<uint8_t> blob;
  saver.SaveRunState(&blob);
  FedAvg loader(config, &pool16, fx.factory);
  EXPECT_DEATH(loader.LoadRunState(blob), "pool of 100");
}

TEST(ScaleDeathTest, LegacyCheckpointIntoPoolModeAborts) {
  ScaleFixture fx;
  // Legacy (dense) run over 3 explicit views...
  std::vector<ClientView> views;
  ClientPool seed_pool(&fx.data.train, nullptr, fx.PoolOpts(3));
  for (int k = 0; k < 3; ++k) {
    views.push_back(ClientView{seed_pool.TrainIndices(k), {}});
  }
  FedAvg legacy(ScaleConfig(), &fx.data.train, views, fx.factory);
  legacy.RunRound(0);
  std::vector<uint8_t> blob;
  legacy.SaveRunState(&blob);
  // ...cannot restore into a pool-mode instance: the magic word check
  // rejects the dense format before any state is touched.
  ClientPool pool(&fx.data.train, nullptr, fx.PoolOpts(16));
  FedAvg loader(ScaleConfig(), &pool, fx.factory);
  EXPECT_DEATH(loader.LoadRunState(blob), "pool-mode");
}

}  // namespace
}  // namespace rfed
