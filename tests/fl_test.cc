#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/comm.h"
#include "fl/fedavg.h"
#include "fl/fedprox.h"
#include "fl/metrics.h"
#include "fl/model_state.h"
#include "fl/qfedavg.h"
#include "fl/scaffold.h"
#include "fl/trainer.h"
#include "nn/linear.h"

namespace rfed {
namespace {

// Small shared fixture data: an easy image task split over a few clients.
struct Fixture {
  Fixture()
      : rng(1),
        data(GenerateImageData(MnistLikeProfile(), 600, 200, &rng)),
        split(SimilarityPartition(data.train, 4, 0.0, &rng)) {
    for (auto& idx : split.client_indices) {
      views.push_back(ClientView{idx, {}});
    }
    CnnConfig config;
    config.conv1_channels = 4;
    config.conv2_channels = 8;
    config.feature_dim = 16;
    factory = MakeCnnFactory(config);
  }
  Rng rng;
  SyntheticImageData data;
  ClientSplit split;
  std::vector<ClientView> views;
  ModelFactory factory;
};

FlConfig SmallConfig() {
  FlConfig config;
  config.local_steps = 3;
  config.batch_size = 16;
  config.lr = 0.08;
  config.seed = 3;
  config.max_examples_per_pass = 128;
  return config;
}

TEST(ModelStateTest, FlattenLoadRoundTrip) {
  Rng rng(1);
  Linear layer(5, 3, &rng);
  auto params = layer.Parameters();
  Tensor flat = FlattenParameters(params);
  EXPECT_EQ(flat.size(), 5 * 3 + 3);
  Tensor perturbed = flat;
  perturbed.MulInPlace(2.0f);
  LoadParameters(perturbed, params);
  EXPECT_TRUE(AllClose(FlattenParameters(params), perturbed, 0.0f));
}

TEST(ModelStateTest, FlattenGradientsZeroWhenAbsent) {
  Rng rng(2);
  Linear layer(2, 2, &rng);
  Tensor grads = FlattenGradients(layer.Parameters());
  EXPECT_EQ(grads.MaxAbs(), 0.0f);
}

TEST(ModelStateTest, AddFlatToGradients) {
  Rng rng(3);
  Linear layer(2, 2, &rng);
  auto params = layer.Parameters();
  Tensor flat(Shape{ParameterCount(params)});
  for (int64_t i = 0; i < flat.size(); ++i) flat.at(i) = static_cast<float>(i);
  AddFlatToGradients(flat, 2.0, params);
  Tensor grads = FlattenGradients(params);
  for (int64_t i = 0; i < flat.size(); ++i) {
    EXPECT_FLOAT_EQ(grads.at(i), 2.0f * static_cast<float>(i));
  }
}

TEST(ModelStateTest, ProximalGradientIsMuTimesDeviation) {
  Rng rng(4);
  Linear layer(2, 2, &rng);
  auto params = layer.Parameters();
  Tensor reference = FlattenParameters(params);
  // Move the weights by +1 everywhere.
  Tensor moved = reference;
  for (int64_t i = 0; i < moved.size(); ++i) moved.at(i) += 1.0f;
  LoadParameters(moved, params);
  AddProximalToGradients(reference, 0.5, params);
  Tensor grads = FlattenGradients(params);
  for (int64_t i = 0; i < grads.size(); ++i) {
    EXPECT_NEAR(grads.at(i), 0.5f, 1e-6f);
  }
}

TEST(CommStatsTest, AccumulatesAndResetsRounds) {
  CommStats comm;
  comm.BeginRound();
  comm.Download(100);
  comm.Upload(40);
  EXPECT_EQ(comm.round_bytes(), 140);
  comm.BeginRound();
  comm.Download(10);
  EXPECT_EQ(comm.round_bytes(), 10);
  EXPECT_EQ(comm.total_bytes(), 150);
  EXPECT_EQ(comm.down_messages(), 2);
  EXPECT_EQ(comm.up_messages(), 1);
}

TEST(CommStatsTest, BeginRoundResetsMessageCounters) {
  // Regression: BeginRound() used to reset only the byte counters while
  // down_messages_/up_messages_ were cumulative-only; per-round message
  // counts must reset too, without touching the cumulative totals.
  CommStats comm;
  comm.BeginRound();
  comm.Download(100);
  comm.Upload(40);
  comm.Upload(1);
  EXPECT_EQ(comm.round_down_messages(), 1);
  EXPECT_EQ(comm.round_up_messages(), 2);
  EXPECT_EQ(comm.round_messages(), 3);
  comm.BeginRound();
  EXPECT_EQ(comm.round_down_messages(), 0);
  EXPECT_EQ(comm.round_up_messages(), 0);
  EXPECT_EQ(comm.round_messages(), 0);
  EXPECT_EQ(comm.down_messages(), 1);  // cumulative totals survive
  EXPECT_EQ(comm.up_messages(), 2);
  comm.Download(5);
  EXPECT_EQ(comm.round_down_messages(), 1);
  EXPECT_EQ(comm.down_messages(), 2);
}

TEST(MetricsTest, RoundsToReachAndFinalAccuracy) {
  RunHistory history;
  history.rounds = {{0, 1.0, 0.2, 0.1, 10},
                    {1, 0.8, std::nan(""), 0.1, 10},
                    {2, 0.5, 0.6, 0.1, 10},
                    {3, 0.4, 0.7, 0.1, 10}};
  EXPECT_EQ(history.RoundsToReach(0.5), 3);
  EXPECT_EQ(history.RoundsToReach(0.9), -1);
  EXPECT_NEAR(history.FinalAccuracy(), 0.7, 1e-12);
  EXPECT_NEAR(history.BestAccuracy(), 0.7, 1e-12);
  EXPECT_EQ(history.TotalBytes(), 40);
}

TEST(MetricsTest, MeanStd) {
  MeanStd ms = ComputeMeanStd({1.0, 2.0, 3.0});
  EXPECT_NEAR(ms.mean, 2.0, 1e-12);
  EXPECT_NEAR(ms.stddev, std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(FedAvgTest, AggregationIsWeightedAverage) {
  // Two clients with sizes 1 and 3: the aggregate must be 0.25/0.75
  // weighted. We freeze learning (lr = 0) so client states equal the
  // initial global state and aggregation must reproduce it exactly.
  Fixture fx;
  FlConfig config = SmallConfig();
  config.lr = 0.0;
  FedAvg algo(config, &fx.data.train, fx.views, fx.factory);
  const Tensor before = algo.global_state();
  algo.RunRound(0);
  EXPECT_TRUE(AllClose(algo.global_state(), before, 1e-6f));
}

TEST(FedAvgTest, TrainingImprovesAccuracy) {
  Fixture fx;
  FedAvg algo(SmallConfig(), &fx.data.train, fx.views, fx.factory);
  TrainerOptions options;
  options.eval_max_examples = 200;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  const double before = trainer.EvaluateGlobal();
  RunHistory history = trainer.Run(8);
  EXPECT_GT(history.FinalAccuracy(), before + 0.2);
}

TEST(FedAvgTest, CommBytesMatchModelSize) {
  Fixture fx;
  FedAvg algo(SmallConfig(), &fx.data.train, fx.views, fx.factory);
  algo.RunRound(0);
  // Full participation: N downloads + N uploads of the model.
  Rng init(1);
  auto model = fx.factory(&init);
  const int64_t model_bytes = StateBytes(model->Parameters());
  EXPECT_EQ(algo.comm().round_bytes(), 2 * 4 * model_bytes);
}

TEST(FedAvgTest, SampleRatioControlsCohort) {
  Fixture fx;
  FlConfig config = SmallConfig();
  config.sample_ratio = 0.5;  // 2 of 4 clients
  FedAvg algo(config, &fx.data.train, fx.views, fx.factory);
  algo.RunRound(0);
  Rng init(1);
  auto model = fx.factory(&init);
  const int64_t model_bytes = StateBytes(model->Parameters());
  EXPECT_EQ(algo.comm().round_bytes(), 2 * 2 * model_bytes);
}

TEST(FedAvgTest, DeterministicGivenSeed) {
  Fixture fx1, fx2;
  FedAvg a(SmallConfig(), &fx1.data.train, fx1.views, fx1.factory);
  FedAvg b(SmallConfig(), &fx2.data.train, fx2.views, fx2.factory);
  a.RunRound(0);
  b.RunRound(0);
  EXPECT_TRUE(AllClose(a.global_state(), b.global_state(), 0.0f));
}

TEST(FedProxTest, ZeroMuMatchesFedAvg) {
  Fixture fx;
  FedAvg avg(SmallConfig(), &fx.data.train, fx.views, fx.factory);
  FedProx prox(SmallConfig(), 0.0, &fx.data.train, fx.views, fx.factory);
  avg.RunRound(0);
  prox.RunRound(0);
  EXPECT_TRUE(AllClose(avg.global_state(), prox.global_state(), 1e-6f));
}

TEST(FedProxTest, LargeMuPinsClientsToGlobal) {
  // mu must satisfy lr * mu < 1 for stable explicit proximal steps; with
  // lr = 0.08, mu = 10 contracts client drift strongly without diverging.
  Fixture fx;
  FlConfig config = SmallConfig();
  FedProx prox(config, 10.0, &fx.data.train, fx.views, fx.factory);
  const Tensor before = prox.global_state();
  prox.RunRound(0);
  Tensor drift = prox.global_state();
  drift.SubInPlace(before);
  FedAvg avg(config, &fx.data.train, fx.views, fx.factory);
  const Tensor avg_before = avg.global_state();
  avg.RunRound(0);
  Tensor avg_drift = avg.global_state();
  avg_drift.SubInPlace(avg_before);
  EXPECT_LT(drift.SquaredNorm(), avg_drift.SquaredNorm());
}

TEST(ScaffoldTest, RunsAndLearns) {
  Fixture fx;
  Scaffold algo(SmallConfig(), &fx.data.train, fx.views, fx.factory);
  TrainerOptions options;
  options.eval_max_examples = 200;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  const double before = trainer.EvaluateGlobal();
  RunHistory history = trainer.Run(8);
  EXPECT_GT(history.FinalAccuracy(), before + 0.2);
}

TEST(ScaffoldTest, ChargesControlVariateTraffic) {
  Fixture fx;
  Scaffold scaffold(SmallConfig(), &fx.data.train, fx.views, fx.factory);
  FedAvg avg(SmallConfig(), &fx.data.train, fx.views, fx.factory);
  scaffold.RunRound(0);
  avg.RunRound(0);
  EXPECT_EQ(scaffold.comm().round_bytes(), 2 * avg.comm().round_bytes());
}

TEST(QFedAvgTest, RunsAndLearns) {
  // q-FedAvg's normalized update is a markedly smaller effective step
  // than FedAvg's (the paper also observes slower convergence), so this
  // checks steady progress over a longer horizon instead of a big jump.
  Fixture fx;
  QFedAvg algo(SmallConfig(), 1.0, &fx.data.train, fx.views, fx.factory);
  TrainerOptions options;
  options.eval_max_examples = 200;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  RunHistory history = trainer.Run(25);
  EXPECT_GT(history.FinalAccuracy(), 0.3);
  EXPECT_LT(history.rounds.back().train_loss,
            0.7 * history.rounds.front().train_loss);
}

TEST(QFedAvgTest, GlobalStateStaysFinite) {
  Fixture fx;
  QFedAvg algo(SmallConfig(), 1.0, &fx.data.train, fx.views, fx.factory);
  for (int r = 0; r < 3; ++r) algo.RunRound(r);
  for (int64_t i = 0; i < algo.global_state().size(); ++i) {
    ASSERT_TRUE(std::isfinite(algo.global_state().at(i)));
  }
}

TEST(TrainerTest, PerClientAccuracyUsesTestSlices) {
  Fixture fx;
  // Give every client a private slice of the test set.
  std::vector<ClientView> views = fx.views;
  Rng rng(5);
  ClientSplit test_split = SimilarityPartition(fx.data.test, 4, 0.0, &rng);
  for (int k = 0; k < 4; ++k) {
    views[static_cast<size_t>(k)].test_indices =
        test_split.client_indices[static_cast<size_t>(k)];
  }
  FedAvg algo(SmallConfig(), &fx.data.train, views, fx.factory);
  TrainerOptions options;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  trainer.Run(3);
  const auto per_client = trainer.PerClientAccuracy(&fx.data.test, views);
  ASSERT_EQ(per_client.size(), 4u);
  for (double acc : per_client) {
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
  }
}

TEST(TrainerTest, HistoryHasRequestedRounds) {
  Fixture fx;
  FedAvg algo(SmallConfig(), &fx.data.train, fx.views, fx.factory);
  TrainerOptions options;
  options.eval_every = 2;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  RunHistory history = trainer.Run(5);
  ASSERT_EQ(history.rounds.size(), 5u);
  EXPECT_FALSE(std::isnan(history.rounds[0].test_accuracy));
  EXPECT_TRUE(std::isnan(history.rounds[1].test_accuracy));
  EXPECT_FALSE(std::isnan(history.rounds[4].test_accuracy));  // final round
  EXPECT_EQ(history.algorithm, "FedAvg");
}

}  // namespace
}  // namespace rfed
