#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace rfed {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.5, 7.5);
    ASSERT_GE(u, -2.5);
    ASSERT_LT(u, 7.5);
  }
}

TEST(RngTest, UniformIntCoversSupport) {
  Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(7);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(6);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithParamsScales) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(8);
  const std::vector<int> sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(9);
  const std::vector<int> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(11);
  Rng child = a.Fork();
  // The child must not replay the parent's stream.
  Rng reference(11);
  reference.NextUint64();  // advance past the fork draw
  EXPECT_NE(child.NextUint64(), reference.NextUint64());
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, JoinInts) {
  EXPECT_EQ(JoinInts({1, 2, 3}, ","), "1,2,3");
  EXPECT_EQ(JoinInts({}, ","), "");
  EXPECT_EQ(JoinInts({5}, "x"), "5");
}

TEST(StringUtilTest, FormatFixed) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(2.0, 0), "2");
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/csv_test.csv";
  {
    CsvWriter writer(path, {"a", "b"});
    writer.WriteRow({"1", "2"});
    writer.WriteRow({"3", "4"});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\n1,2\n3,4\n");
  std::remove(path.c_str());
}

TEST(ThreadPoolTest, SequentialModeRunsAll) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&hits](int i) { hits[static_cast<size_t>(i)]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelModeRunsAll) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(257, [&count](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 257);
}

TEST(ThreadPoolTest, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](int) { FAIL(); });
}

// ParallelFor is not reentrant: a task that calls ParallelFor on its own
// pool would deadlock waiting for itself, so the pool aborts with a
// message naming the offending task instead.
TEST(ThreadPoolDeathTest, ReentrantParallelForAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ThreadPool pool(2);
  EXPECT_DEATH(
      pool.ParallelFor(4,
                       [&pool](int i) {
                         if (i == 1) pool.ParallelFor(2, [](int) {});
                       }),
      "not reentrant.*task #1");
}

TEST(ThreadPoolDeathTest, SequentialReentrancyAlsoAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The contract is uniform across modes: the in-caller sequential path
  // rejects nesting too, so code does not "work on 1 thread, die on 4".
  ThreadPool pool(1);
  EXPECT_DEATH(
      pool.ParallelFor(3,
                       [&pool](int i) {
                         if (i == 2) pool.ParallelFor(2, [](int) {});
                       }),
      "not reentrant.*task #2");
}

TEST(ThreadPoolTest, DistinctPoolsMayNest) {
  // Only same-pool nesting is banned; delegating to a different pool is
  // fine. The outer pool is sequential so the inner pool sees one batch
  // at a time (concurrent batches on one pool are also rejected).
  ThreadPool outer(1);
  ThreadPool inner(2);
  std::atomic<int> count{0};
  outer.ParallelFor(4, [&inner, &count](int) {
    inner.ParallelFor(3, [&count](int) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 12);
}

TEST(StopwatchTest, ElapsedIsMonotone) {
  Stopwatch watch;
  const double first = watch.ElapsedSeconds();
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_GE(first, 0.0);
}

FlagParser MakeFlags(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"util_test"};
  argv.insert(argv.end(), args.begin(), args.end());
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParserTest, ValidatedAccessorsAcceptGoodValues) {
  const FlagParser flags =
      MakeFlags({"--listen", "0.0.0.0:7710", "--workers", "4"});
  const HostPort listen = flags.GetHostPort("listen", "127.0.0.1:0");
  EXPECT_EQ(listen.host, "0.0.0.0");
  EXPECT_EQ(listen.port, 7710);
  EXPECT_EQ(flags.GetIntInRange("workers", 1, 1, 1024), 4);
  // Defaults apply when the flag is absent, and are validated too.
  const HostPort fallback = flags.GetHostPort("connect", "localhost:9");
  EXPECT_EQ(fallback.host, "localhost");
  EXPECT_EQ(fallback.port, 9);
  EXPECT_EQ(flags.GetIntInRange("worker_id", 0, 0, 3), 0);
}

TEST(FlagParserDeathTest, GetHostPortAbortsOnMalformedEndpoint) {
  // A malformed endpoint is a deployment configuration error: the
  // accessor aborts with the offending value rather than limping past.
  EXPECT_DEATH(MakeFlags({"--listen", "7710"}).GetHostPort("listen",
                                                           "127.0.0.1:0"),
               "host:port");
  EXPECT_DEATH(MakeFlags({"--listen", ":7710"}).GetHostPort("listen",
                                                            "127.0.0.1:0"),
               "host:port");
  EXPECT_DEATH(MakeFlags({"--connect", "host:99999"})
                   .GetHostPort("connect", "127.0.0.1:0"),
               "host:port");
  EXPECT_DEATH(MakeFlags({"--connect", "host:12ab"})
                   .GetHostPort("connect", "127.0.0.1:0"),
               "host:port");
}

TEST(FlagParserDeathTest, GetIntInRangeAbortsOutsideRange) {
  EXPECT_DEATH(MakeFlags({"--workers", "0"}).GetIntInRange("workers", 1, 1,
                                                           1024),
               "must be in");
  EXPECT_DEATH(MakeFlags({"--workers", "1025"}).GetIntInRange("workers", 1, 1,
                                                              1024),
               "must be in");
  EXPECT_DEATH(MakeFlags({"--worker_id", "4"}).GetIntInRange("worker_id", 0,
                                                             0, 3),
               "must be in");
}

}  // namespace
}  // namespace rfed
