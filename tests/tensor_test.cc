#include <cmath>

#include <gtest/gtest.h>

#include "tensor/serialize.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace rfed {
namespace {

TEST(ShapeTest, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.num_elements(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(ShapeTest, ScalarShape) {
  Shape s{};
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.num_elements(), 1);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2}), Shape({2, 1}));
}

TEST(ShapeTest, WithoutAxis) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.WithoutAxis(1), Shape({2, 4}));
  EXPECT_EQ(s.WithoutAxis(-1), Shape({2, 3}));
}

TEST(ShapeTest, ToString) { EXPECT_EQ(Shape({2, 3}).ToString(), "[2, 3]"); }

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape{3, 3});
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FullFills) {
  Tensor t = Tensor::Full(Shape{5}, 2.5f);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(t.at(i), 2.5f);
}

TEST(TensorTest, FromData) {
  Tensor t(Shape{2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.at2(0, 1), 2.0f);
  EXPECT_EQ(t.at2(1, 0), 3.0f);
}

TEST(TensorTest, ReshapedSharesValues) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped(Shape{3, 2});
  EXPECT_EQ(r.at2(2, 1), 6.0f);
  EXPECT_EQ(r.shape(), Shape({3, 2}));
}

TEST(TensorTest, InPlaceArithmetic) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{3}, {10, 20, 30});
  a.AddInPlace(b);
  EXPECT_EQ(a.at(2), 33.0f);
  a.SubInPlace(b);
  EXPECT_EQ(a.at(2), 3.0f);
  a.MulInPlace(2.0f);
  EXPECT_EQ(a.at(0), 2.0f);
  a.Axpy(0.5f, b);
  EXPECT_EQ(a.at(1), 14.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t(Shape{4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(t.Sum(), -2.0f);
  EXPECT_FLOAT_EQ(t.Mean(), -0.5f);
  EXPECT_FLOAT_EQ(t.MaxAbs(), 4.0f);
  EXPECT_FLOAT_EQ(t.SquaredNorm(), 1 + 4 + 9 + 16);
}

TEST(TensorTest, ToScalar) {
  Tensor t(Shape{}, {42.0f});
  EXPECT_EQ(t.ToScalar(), 42.0f);
}

TEST(TensorTest, UniformRespectsRange) {
  Rng rng(1);
  Tensor t = Tensor::Uniform(Shape{1000}, -0.5f, 0.5f, &rng);
  EXPECT_LE(t.MaxAbs(), 0.5f);
  EXPECT_NEAR(t.Mean(), 0.0f, 0.05f);
}

TEST(TensorTest, NormalMoments) {
  Rng rng(2);
  Tensor t = Tensor::Normal(Shape{20000}, 1.0f, 2.0f, &rng);
  EXPECT_NEAR(t.Mean(), 1.0f, 0.1f);
  double var = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) {
    var += (t.at(i) - 1.0) * (t.at(i) - 1.0);
  }
  EXPECT_NEAR(var / static_cast<double>(t.size()), 4.0, 0.3);
}

TEST(TensorTest, AllCloseDetectsDeviation) {
  Tensor a(Shape{2}, {1.0f, 2.0f});
  Tensor b(Shape{2}, {1.0f, 2.0001f});
  EXPECT_TRUE(AllClose(a, b, 1e-3f));
  EXPECT_FALSE(AllClose(a, b, 1e-6f));
  EXPECT_FALSE(AllClose(a, Tensor(Shape{3}), 1.0f));
}

TEST(SerializeTest, RoundTrip) {
  Rng rng(3);
  Tensor t = Tensor::Normal(Shape{3, 4, 5}, 0.0f, 1.0f, &rng);
  std::vector<uint8_t> buf;
  SerializeTensor(t, &buf);
  EXPECT_EQ(static_cast<int64_t>(buf.size()), SerializedBytes(t));
  size_t offset = 0;
  Tensor back = DeserializeTensor(buf, &offset);
  EXPECT_EQ(offset, buf.size());
  EXPECT_TRUE(AllClose(t, back, 0.0f));
}

TEST(SerializeTest, MultipleTensorsInOneBuffer) {
  Tensor a(Shape{2}, {1, 2});
  Tensor b(Shape{}, {9});
  std::vector<uint8_t> buf;
  SerializeTensor(a, &buf);
  SerializeTensor(b, &buf);
  size_t offset = 0;
  Tensor a2 = DeserializeTensor(buf, &offset);
  Tensor b2 = DeserializeTensor(buf, &offset);
  EXPECT_TRUE(AllClose(a, a2, 0.0f));
  EXPECT_TRUE(AllClose(b, b2, 0.0f));
}

TEST(SerializeTest, PayloadBytesMatchesFloat32) {
  Tensor t(Shape{7, 3});
  EXPECT_EQ(PayloadBytes(t), 7 * 3 * 4);
}

}  // namespace
}  // namespace rfed
