// Tests for the extension subsystems built on top of the paper's core:
// wire messages, secure aggregation, client selection, FedNova,
// compression-in-the-loop, personalization, layer norm / dropout, flags.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/personalization.h"
#include "core/rfedavg.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "fl/fedavg.h"
#include "fl/fednova.h"
#include "fl/message.h"
#include "fl/secure_agg.h"
#include "fl/selection.h"
#include "fl/trainer.h"
#include "nn/norm.h"
#include "test_util.h"
#include "util/flags.h"

namespace rfed {
namespace {

using ::rfed::testing::MaxGradCheckError;

// ---- FlMessage ----

TEST(MessageTest, EncodeDecodeRoundTrip) {
  Rng rng(1);
  FlMessage message;
  message.kind = FlMessage::Kind::kDeltaUpload;
  message.round = 12;
  message.sender = 3;
  message.payload.push_back(Tensor::Normal(Shape{4, 5}, 0, 1, &rng));
  message.payload.push_back(Tensor::Normal(Shape{7}, 0, 1, &rng));

  std::vector<uint8_t> buffer;
  message.EncodeTo(&buffer);
  EXPECT_EQ(static_cast<int64_t>(buffer.size()), message.EncodedBytes());

  size_t offset = 0;
  FlMessage decoded = FlMessage::Decode(buffer, &offset);
  EXPECT_EQ(offset, buffer.size());
  EXPECT_EQ(decoded.kind, FlMessage::Kind::kDeltaUpload);
  EXPECT_EQ(decoded.round, 12);
  EXPECT_EQ(decoded.sender, 3);
  ASSERT_EQ(decoded.payload.size(), 2u);
  EXPECT_TRUE(AllClose(decoded.payload[0], message.payload[0], 0.0f));
  EXPECT_TRUE(AllClose(decoded.payload[1], message.payload[1], 0.0f));
}

TEST(MessageTest, MultipleMessagesInStream) {
  FlMessage a;
  a.kind = FlMessage::Kind::kModelDownload;
  a.payload.push_back(Tensor(Shape{3}, {1, 2, 3}));
  FlMessage b;
  b.kind = FlMessage::Kind::kControlVariate;
  b.sender = 9;
  std::vector<uint8_t> buffer;
  a.EncodeTo(&buffer);
  b.EncodeTo(&buffer);
  size_t offset = 0;
  FlMessage a2 = FlMessage::Decode(buffer, &offset);
  FlMessage b2 = FlMessage::Decode(buffer, &offset);
  EXPECT_EQ(a2.kind, FlMessage::Kind::kModelDownload);
  EXPECT_EQ(b2.sender, 9);
  EXPECT_TRUE(b2.payload.empty());
}

// ---- Secure aggregation ----

TEST(SecureAggTest, MasksCancelInSum) {
  const int64_t dim = 50;
  SecureAggregator agg(dim, /*session_seed=*/7);
  Rng rng(2);
  std::vector<int> cohort{0, 1, 2, 3};
  std::vector<Tensor> updates, masked;
  Tensor expected(Shape{dim});
  for (int k : cohort) {
    updates.push_back(Tensor::Normal(Shape{dim}, 0, 1, &rng));
    expected.AddInPlace(updates.back());
    masked.push_back(agg.Mask(k, updates.back(), cohort));
  }
  Tensor sum = SecureAggregator::SumMasked(masked);
  EXPECT_TRUE(AllClose(sum, expected, 1e-3f));
}

TEST(SecureAggTest, IndividualUploadsAreMasked) {
  const int64_t dim = 50;
  SecureAggregator agg(dim, 7, /*mask_scale=*/10.0);
  Rng rng(3);
  Tensor update = Tensor::Normal(Shape{dim}, 0, 0.1f, &rng);
  Tensor masked = agg.Mask(0, update, {0, 1, 2});
  // The masked upload must look nothing like the raw update: the mask
  // energy dominates by construction.
  Tensor diff = masked;
  diff.SubInPlace(update);
  EXPECT_GT(diff.SquaredNorm(), 100.0f * update.SquaredNorm());
}

TEST(SecureAggTest, SingletonCohortIsUnmasked) {
  SecureAggregator agg(4, 7);
  Tensor update(Shape{4}, {1, 2, 3, 4});
  EXPECT_TRUE(AllClose(agg.Mask(5, update, {5}), update, 0.0f));
}

TEST(SecureAggTest, WorksWithArbitraryCohortOrder) {
  const int64_t dim = 10;
  SecureAggregator agg(dim, 11);
  Rng rng(4);
  std::vector<int> cohort{9, 2, 5};
  std::vector<Tensor> masked;
  Tensor expected(Shape{dim});
  for (int k : cohort) {
    Tensor update = Tensor::Normal(Shape{dim}, 0, 1, &rng);
    expected.AddInPlace(update);
    masked.push_back(agg.Mask(k, update, cohort));
  }
  EXPECT_TRUE(AllClose(SecureAggregator::SumMasked(masked), expected, 1e-3f));
}

// ---- Client selection ----

TEST(SelectionTest, UniformSelectsDistinct) {
  Rng rng(5);
  const auto cohort = UniformSelection(20, 8, &rng);
  EXPECT_EQ(cohort.size(), 8u);
  std::set<int> unique(cohort.begin(), cohort.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(SelectionTest, LossProportionalPrefersHighLoss) {
  Rng rng(6);
  // Client 0 has 100x the loss of the others; it should appear in almost
  // every 1-of-10 draw.
  std::vector<double> losses(10, 0.01);
  losses[0] = 1.0;
  int hits = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto cohort = LossProportionalSelection(losses, 1, &rng);
    if (cohort[0] == 0) ++hits;
  }
  EXPECT_GT(hits, trials / 2);
}

TEST(SelectionTest, LossProportionalHandlesUnknownLosses) {
  Rng rng(7);
  std::vector<double> losses(6, std::nan(""));
  const auto cohort = LossProportionalSelection(losses, 3, &rng);
  EXPECT_EQ(cohort.size(), 3u);
  std::set<int> unique(cohort.begin(), cohort.end());
  EXPECT_EQ(unique.size(), 3u);
}

// ---- Shared fixture for algorithm-level tests ----

struct ExtFixture {
  ExtFixture()
      : rng(31),
        data(GenerateImageData(MnistLikeProfile(), 600, 200, &rng)),
        split(SimilarityPartition(data.train, 5, 0.0, &rng)),
        test_split(SimilarityPartition(data.test, 5, 0.0, &rng)) {
    for (int k = 0; k < 5; ++k) {
      views.push_back(ClientView{split.client_indices[k],
                                 test_split.client_indices[k]});
    }
    CnnConfig mc;
    mc.conv1_channels = 4;
    mc.conv2_channels = 8;
    mc.feature_dim = 16;
    factory = MakeCnnFactory(mc);
  }
  FlConfig Config() const {
    FlConfig config;
    config.local_steps = 3;
    config.batch_size = 16;
    config.lr = 0.08;
    config.seed = 3;
    return config;
  }
  Rng rng;
  SyntheticImageData data;
  ClientSplit split;
  ClientSplit test_split;
  std::vector<ClientView> views;
  ModelFactory factory;
};

// ---- FedNova ----

TEST(FedNovaTest, LocalStepsScaleWithData) {
  ExtFixture fx;
  FedNova algo(fx.Config(), /*max_local_steps=*/50, &fx.data.train, fx.views,
               fx.factory);
  TrainerOptions options;
  options.eval_max_examples = 200;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  const double before = trainer.EvaluateGlobal();
  RunHistory history = trainer.Run(6);
  EXPECT_GT(history.FinalAccuracy(), before + 0.2);
}

TEST(FedNovaTest, StaysFiniteUnderQuantitySkew) {
  // Heavily unbalanced split: client 0 gets ~70% of the data.
  ExtFixture fx;
  std::vector<ClientView> skewed(3);
  for (int64_t i = 0; i < fx.data.train.size(); ++i) {
    const int owner = i % 10 < 7 ? 0 : (i % 10 == 7 ? 1 : 2);
    skewed[static_cast<size_t>(owner)].train_indices.push_back(
        static_cast<int>(i));
  }
  FedNova algo(fx.Config(), 20, &fx.data.train, skewed, fx.factory);
  for (int r = 0; r < 3; ++r) algo.RunRound(r);
  for (int64_t i = 0; i < algo.global_state().size(); ++i) {
    ASSERT_TRUE(std::isfinite(algo.global_state().at(i)));
  }
}

// ---- Compression in the training loop ----

TEST(CompressedTrainingTest, QuantizedUploadsStillLearn) {
  ExtFixture fx;
  FlConfig config = fx.Config();
  config.upload_compressor = "q8";
  FedAvg algo(config, &fx.data.train, fx.views, fx.factory);
  TrainerOptions options;
  options.eval_max_examples = 200;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  const double before = trainer.EvaluateGlobal();
  RunHistory history = trainer.Run(8);
  EXPECT_GT(history.FinalAccuracy(), before + 0.2);
}

TEST(CompressedTrainingTest, CompressionReducesUploadBytes) {
  ExtFixture fx;
  FlConfig plain_config = fx.Config();
  FlConfig compressed_config = fx.Config();
  compressed_config.upload_compressor = "topk1";
  FedAvg plain(plain_config, &fx.data.train, fx.views, fx.factory);
  FedAvg compressed(compressed_config, &fx.data.train, fx.views, fx.factory);
  plain.RunRound(0);
  compressed.RunRound(0);
  EXPECT_LT(compressed.comm().total_up_bytes(),
            plain.comm().total_up_bytes() / 5);
  // Downloads unchanged.
  EXPECT_EQ(compressed.comm().total_down_bytes(),
            plain.comm().total_down_bytes());
}

TEST(CompressedTrainingTest, WorksWithRegularizer) {
  ExtFixture fx;
  FlConfig config = fx.Config();
  config.upload_compressor = "q8";
  RegularizerOptions reg;
  reg.lambda = 1e-3;
  RFedAvgPlus algo(config, reg, &fx.data.train, fx.views, fx.factory);
  TrainerOptions options;
  options.eval_max_examples = 200;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  RunHistory history = trainer.Run(8);
  EXPECT_GT(history.FinalAccuracy(), 0.4);
}

// ---- Adaptive selection in the loop ----

TEST(AdaptiveSelectionTest, LossSelectionTrains) {
  ExtFixture fx;
  FlConfig config = fx.Config();
  config.sample_ratio = 0.4;
  config.client_selection = "loss";
  FedAvg algo(config, &fx.data.train, fx.views, fx.factory);
  TrainerOptions options;
  options.eval_max_examples = 200;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  RunHistory history = trainer.Run(14);
  EXPECT_GT(history.BestAccuracy(), 0.4);
}

// ---- Personalization ----

TEST(PersonalizationTest, FineTuningImprovesLocalAccuracy) {
  ExtFixture fx;
  FedAvg algo(fx.Config(), &fx.data.train, fx.views, fx.factory);
  TrainerOptions options;
  options.eval_max_examples = 200;
  FederatedTrainer trainer(&algo, &fx.data.test, options);
  trainer.Run(6);
  PersonalizationOptions popt;
  popt.fine_tune_steps = 15;
  popt.lr = 0.05;
  const Tensor global_before = algo.global_state();
  PersonalizationReport report = PersonalizeAndEvaluate(
      &algo, fx.data.train, fx.data.test, fx.views, popt);
  // On a label-skewed split, fitting the local label distribution must
  // help on the local (equally skewed) test slice.
  EXPECT_GT(report.MeanPersonalized(), report.MeanGlobal());
  // The algorithm's global state is untouched.
  EXPECT_TRUE(AllClose(algo.global_state(), global_before, 0.0f));
}

TEST(PersonalizationTest, ClientsWithoutTestSlicesGetNan) {
  ExtFixture fx;
  std::vector<ClientView> views = fx.views;
  views[2].test_indices.clear();
  FedAvg algo(fx.Config(), &fx.data.train, views, fx.factory);
  PersonalizationOptions popt;
  popt.fine_tune_steps = 1;
  PersonalizationReport report = PersonalizeAndEvaluate(
      &algo, fx.data.train, fx.data.test, views, popt);
  EXPECT_TRUE(std::isnan(report.global_accuracy[2]));
  EXPECT_FALSE(std::isnan(report.global_accuracy[0]));
}

// ---- LayerNorm / Dropout ----

TEST(LayerNormTest, NormalizesRows) {
  LayerNorm norm(8);
  Rng rng(8);
  Variable x(Tensor::Normal(Shape{4, 8}, 3.0f, 2.0f, &rng));
  Tensor y = norm.Forward(x).value();
  for (int64_t r = 0; r < 4; ++r) {
    double mean = 0.0, var = 0.0;
    for (int64_t c = 0; c < 8; ++c) mean += y.at2(r, c);
    mean /= 8.0;
    for (int64_t c = 0; c < 8; ++c) {
      var += (y.at2(r, c) - mean) * (y.at2(r, c) - mean);
    }
    var /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);  // default gamma=1, beta=0
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNormTest, GradcheckThroughNorm) {
  LayerNorm norm(5);
  Rng rng(9);
  Variable x(Tensor::Normal(Shape{3, 5}, 0, 1, &rng), true);
  auto loss = [&] { return ag::Sum(ag::Tanh(norm.Forward(x))); };
  std::vector<Variable*> leaves = norm.Parameters();
  leaves.push_back(&x);
  EXPECT_LT(MaxGradCheckError(loss, leaves), 5e-2);
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(10);
  Variable x(Tensor::Normal(Shape{4, 4}, 0, 1, &rng));
  Variable y = Dropout(x, 0.5, /*train=*/false, &rng);
  EXPECT_TRUE(AllClose(y.value(), x.value(), 0.0f));
}

TEST(DropoutTest, TrainModePreservesExpectation) {
  Rng rng(11);
  Variable x(Tensor::Full(Shape{10000}, 1.0f));
  Variable y = Dropout(x, 0.3, /*train=*/true, &rng);
  EXPECT_NEAR(y.value().Mean(), 1.0f, 0.05f);
  // Some elements are exactly zero.
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.value().size(); ++i) {
    if (y.value().at(i) == 0.0f) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.03);
}

// ---- FlagParser ----

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3", "--name", "hello", "--verbose",
                        "--rate=0.5"};
  FlagParser flags(6, argv);
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_EQ(flags.GetString("name", ""), "hello");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 0.5);
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_TRUE(flags.Has("alpha"));
  EXPECT_FALSE(flags.Has("beta"));
  EXPECT_EQ(flags.Keys().size(), 4u);
}

}  // namespace
}  // namespace rfed
