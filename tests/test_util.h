#ifndef RFED_TESTS_TEST_UTIL_H_
#define RFED_TESTS_TEST_UTIL_H_

#include <functional>
#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace rfed::testing {

/// Checks analytic gradients against central finite differences.
/// `build_loss` must construct a *fresh* scalar graph from the current
/// values of `leaves` on every call. Returns the max absolute deviation
/// across all leaf elements; the analytic gradient of leaf i is obtained
/// by one Backward() on the built loss.
double MaxGradCheckError(
    const std::function<Variable()>& build_loss,
    const std::vector<Variable*>& leaves, double epsilon = 1e-3);

/// Fills a tensor with a reproducible non-degenerate pattern
/// (sin ramp), handy for exact-kernel tests.
Tensor PatternTensor(Shape shape, float scale = 1.0f);

}  // namespace rfed::testing

#endif  // RFED_TESTS_TEST_UTIL_H_
