#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "data/batcher.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "data/synthetic_text.h"

namespace rfed {
namespace {

Dataset TinyImageDataset(int n, int classes) {
  Tensor images(Shape{n, 1, 4, 4});
  std::vector<int> labels(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    labels[static_cast<size_t>(i)] = i % classes;
    images.at(i * 16) = static_cast<float>(i);
  }
  return Dataset(std::move(images), std::move(labels), classes);
}

TEST(DatasetTest, ImageBatchExtraction) {
  Dataset data = TinyImageDataset(10, 5);
  Batch batch = data.GetBatch({3, 7});
  EXPECT_EQ(batch.size(), 2);
  EXPECT_EQ(batch.images.shape(), Shape({2, 1, 4, 4}));
  EXPECT_EQ(batch.images.at(0), 3.0f);
  EXPECT_EQ(batch.images.at(16), 7.0f);
  EXPECT_EQ(batch.labels[0], 3);
  EXPECT_EQ(batch.labels[1], 2);
}

TEST(DatasetTest, SequenceBatchExtraction) {
  Dataset data({{1, 2}, {3, 4}, {5, 6}}, {0, 1, 0}, 2, 10);
  EXPECT_EQ(data.kind(), Dataset::Kind::kSequence);
  EXPECT_EQ(data.sequence_length(), 2);
  Batch batch = data.GetBatch({2, 0});
  EXPECT_EQ(batch.tokens[0], (std::vector<int>{5, 6}));
  EXPECT_EQ(batch.labels[1], 0);
}

TEST(DatasetTest, ClassHistogram) {
  Dataset data = TinyImageDataset(10, 5);
  const auto hist = data.ClassHistogram();
  for (int64_t count : hist) EXPECT_EQ(count, 2);
}

TEST(DatasetTest, GetAllCoversEverything) {
  Dataset data = TinyImageDataset(6, 3);
  Batch all = data.GetAll();
  EXPECT_EQ(all.size(), 6);
}

TEST(BatcherTest, EpochCoversAllIndices) {
  Dataset data = TinyImageDataset(10, 2);
  std::vector<int> view{0, 2, 4, 6, 8};
  Batcher batcher(&data, view, 2, Rng(1));
  EXPECT_EQ(batcher.BatchesPerEpoch(), 3);
  std::multiset<float> seen;
  for (int b = 0; b < 3; ++b) {
    Batch batch = batcher.Next();
    for (int64_t i = 0; i < batch.size(); ++i) {
      seen.insert(batch.images.at(i * 16));
    }
  }
  EXPECT_EQ(seen.size(), 5u);
  for (int idx : view) {
    EXPECT_EQ(seen.count(static_cast<float>(idx)), 1u);
  }
}

TEST(BatcherTest, LastBatchMayBeSmall) {
  Dataset data = TinyImageDataset(10, 2);
  Batcher batcher(&data, {0, 1, 2}, 2, Rng(2));
  EXPECT_EQ(batcher.Next().size(), 2);
  EXPECT_EQ(batcher.Next().size(), 1);
  EXPECT_EQ(batcher.Next().size(), 2);  // new epoch
}

TEST(PartitionTest, SplitIsDisjointAndComplete) {
  Dataset data = TinyImageDataset(100, 10);
  Rng rng(3);
  ClientSplit split = SimilarityPartition(data, 7, 0.3, &rng);
  EXPECT_EQ(split.num_clients(), 7);
  std::set<int> all;
  for (const auto& idx : split.client_indices) {
    for (int i : idx) {
      EXPECT_TRUE(all.insert(i).second) << "duplicate index " << i;
    }
  }
  EXPECT_EQ(all.size(), 100u);
}

TEST(PartitionTest, SkewDecreasesWithSimilarity) {
  Rng gen_rng(4);
  SyntheticImageData data =
      GenerateImageData(MnistLikeProfile(), 2000, 100, &gen_rng);
  Rng rng(5);
  const double skew0 = LabelSkew(data.train,
                                 SimilarityPartition(data.train, 10, 0.0, &rng));
  const double skew10 =
      LabelSkew(data.train, SimilarityPartition(data.train, 10, 0.1, &rng));
  const double skew100 =
      LabelSkew(data.train, SimilarityPartition(data.train, 10, 1.0, &rng));
  EXPECT_GT(skew0, skew10);
  EXPECT_GT(skew10, skew100);
  EXPECT_LT(skew100, 0.15);
  EXPECT_GT(skew0, 0.6);
}

TEST(PartitionTest, WeightsSumToOne) {
  Dataset data = TinyImageDataset(100, 10);
  Rng rng(6);
  ClientSplit split = SimilarityPartition(data, 9, 0.5, &rng);
  const auto weights = split.Weights();
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PartitionTest, NaturalPartitionGroupsOwners) {
  // 6 owners, 3 clients; every example of an owner must land on the same
  // client.
  std::vector<int> owner_ids;
  for (int i = 0; i < 60; ++i) owner_ids.push_back(i % 6);
  Rng rng(7);
  ClientSplit split = NaturalPartition(owner_ids, 6, 3, &rng);
  EXPECT_EQ(split.num_clients(), 3);
  for (int owner = 0; owner < 6; ++owner) {
    std::set<int> clients_of_owner;
    for (int k = 0; k < 3; ++k) {
      for (int idx : split.client_indices[static_cast<size_t>(k)]) {
        if (owner_ids[static_cast<size_t>(idx)] == owner) {
          clients_of_owner.insert(k);
        }
      }
    }
    EXPECT_EQ(clients_of_owner.size(), 1u);
  }
}

TEST(SyntheticImagesTest, ShapesAndLabelRange) {
  Rng rng(8);
  SyntheticImageData data =
      GenerateImageData(CifarLikeProfile(), 200, 50, &rng);
  EXPECT_EQ(data.train.size(), 200);
  EXPECT_EQ(data.test.size(), 50);
  EXPECT_EQ(data.train.ExampleShape(), Shape({3, 12, 12}));
  for (int64_t i = 0; i < data.train.size(); ++i) {
    EXPECT_GE(data.train.label(i), 0);
    EXPECT_LT(data.train.label(i), 10);
  }
}

TEST(SyntheticImagesTest, ClassesRoughlyBalanced) {
  Rng rng(9);
  SyntheticImageData data =
      GenerateImageData(MnistLikeProfile(), 5000, 100, &rng);
  const auto hist = data.train.ClassHistogram();
  for (int64_t count : hist) {
    EXPECT_GT(count, 350);
    EXPECT_LT(count, 650);
  }
}

TEST(SyntheticImagesTest, FemnistRecordsWriters) {
  Rng rng(10);
  const ImageProfile profile = FemnistLikeProfile();
  SyntheticImageData data = GenerateImageData(profile, 500, 50, &rng);
  EXPECT_EQ(data.train_writers.size(), 500u);
  std::set<int> writers(data.train_writers.begin(), data.train_writers.end());
  EXPECT_GT(writers.size(), 50u);
  for (int w : data.train_writers) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, profile.num_writers);
  }
}

TEST(SyntheticImagesTest, MnistProfileRecordsNoWriters) {
  Rng rng(11);
  SyntheticImageData data =
      GenerateImageData(MnistLikeProfile(), 100, 10, &rng);
  EXPECT_TRUE(data.train_writers.empty());
}

TEST(SyntheticImagesTest, DeterministicGivenSeed) {
  Rng rng_a(12), rng_b(12);
  SyntheticImageData a = GenerateImageData(MnistLikeProfile(), 50, 10, &rng_a);
  SyntheticImageData b = GenerateImageData(MnistLikeProfile(), 50, 10, &rng_b);
  EXPECT_EQ(a.train.labels(), b.train.labels());
  EXPECT_TRUE(AllClose(a.train.GetBatch({0}).images,
                       b.train.GetBatch({0}).images, 0.0f));
}

TEST(SyntheticImagesTest, MnistEasierThanCifar) {
  // The class-signal-to-noise ratio of the easy profile must exceed the
  // hard profile's: measured as mean between-class prototype distance
  // over within-class spread of raw pixels.
  Rng rng(13);
  auto snr = [&rng](const ImageProfile& profile) {
    SyntheticImageData data = GenerateImageData(profile, 600, 10, &rng);
    // Mean image per class.
    const int64_t dim = data.train.ExampleShape().num_elements();
    std::vector<Tensor> means(10, Tensor(Shape{dim}));
    std::vector<int> counts(10, 0);
    Batch all = data.train.GetAll();
    for (int64_t i = 0; i < all.size(); ++i) {
      const int label = all.labels[static_cast<size_t>(i)];
      for (int64_t p = 0; p < dim; ++p) {
        means[static_cast<size_t>(label)].at(p) += all.images.at(i * dim + p);
      }
      counts[static_cast<size_t>(label)]++;
    }
    for (int c = 0; c < 10; ++c) {
      means[static_cast<size_t>(c)].MulInPlace(
          1.0f / static_cast<float>(counts[static_cast<size_t>(c)]));
    }
    double between = 0.0;
    int pairs = 0;
    for (int a = 0; a < 10; ++a) {
      for (int b = a + 1; b < 10; ++b) {
        Tensor diff = means[static_cast<size_t>(a)];
        diff.SubInPlace(means[static_cast<size_t>(b)]);
        between += std::sqrt(static_cast<double>(diff.SquaredNorm()));
        ++pairs;
      }
    }
    between /= pairs;
    double within = 0.0;
    for (int64_t i = 0; i < all.size(); ++i) {
      const int label = all.labels[static_cast<size_t>(i)];
      double acc = 0.0;
      for (int64_t p = 0; p < dim; ++p) {
        const double d =
            all.images.at(i * dim + p) - means[static_cast<size_t>(label)].at(p);
        acc += d * d;
      }
      within += std::sqrt(acc);
    }
    within /= static_cast<double>(all.size());
    return between / within;
  };
  EXPECT_GT(snr(MnistLikeProfile()), snr(CifarLikeProfile()));
}

TEST(SyntheticTextTest, ShapesAndVocabulary) {
  Rng rng(14);
  TextProfile profile = Sent140LikeProfile();
  profile.num_users = 20;
  SyntheticTextData data = GenerateTextData(profile, 300, 50, &rng);
  EXPECT_EQ(data.train.size(), 300);
  EXPECT_EQ(data.train.kind(), Dataset::Kind::kSequence);
  EXPECT_EQ(data.train.sequence_length(), profile.sequence_length);
  EXPECT_EQ(data.train_users.size(), 300u);
}

TEST(SyntheticTextTest, SentimentBandsPredictLabel) {
  // Counting positive-band vs negative-band tokens should already beat
  // chance by a wide margin -> the corpus is learnable.
  Rng rng(15);
  TextProfile profile = Sent140LikeProfile();
  SyntheticTextData data = GenerateTextData(profile, 1000, 10, &rng);
  const int band = profile.vocab_size / 4;
  int correct = 0;
  Batch all = data.train.GetAll();
  for (int64_t i = 0; i < all.size(); ++i) {
    int pos = 0, neg = 0;
    for (int t : all.tokens[static_cast<size_t>(i)]) {
      if (t < band) ++pos;
      else if (t < 2 * band) ++neg;
    }
    const int pred = pos >= neg ? 0 : 1;
    if (pred == all.labels[static_cast<size_t>(i)]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(all.size()),
            0.75);
}

TEST(SyntheticTextTest, UsersHaveSkewedClassBalance) {
  Rng rng(16);
  TextProfile profile = Sent140LikeProfile();
  profile.num_users = 10;
  profile.user_class_bias = 0.4f;
  SyntheticTextData data = GenerateTextData(profile, 2000, 10, &rng);
  // Per-user positive rate should vary (natural non-IID).
  std::vector<double> pos(10, 0.0), total(10, 0.0);
  for (int64_t i = 0; i < data.train.size(); ++i) {
    const int u = data.train_users[static_cast<size_t>(i)];
    total[static_cast<size_t>(u)] += 1.0;
    pos[static_cast<size_t>(u)] += data.train.label(i);
  }
  double min_rate = 1.0, max_rate = 0.0;
  for (int u = 0; u < 10; ++u) {
    const double rate = pos[static_cast<size_t>(u)] / total[static_cast<size_t>(u)];
    min_rate = std::min(min_rate, rate);
    max_rate = std::max(max_rate, rate);
  }
  EXPECT_GT(max_rate - min_rate, 0.2);
}

}  // namespace
}  // namespace rfed
