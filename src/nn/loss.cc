#include "nn/loss.h"

#include "util/check.h"

namespace rfed {

std::vector<int> ArgmaxRows(const Tensor& logits) {
  RFED_CHECK_EQ(logits.rank(), 2);
  const int64_t rows = logits.dim(0), cols = logits.dim(1);
  std::vector<int> out(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = logits.data() + r * cols;
    int best = 0;
    for (int64_t c = 1; c < cols; ++c) {
      if (row[c] > row[best]) best = static_cast<int>(c);
    }
    out[static_cast<size_t>(r)] = best;
  }
  return out;
}

double Accuracy(const Tensor& logits, const std::vector<int>& labels) {
  RFED_CHECK_EQ(logits.dim(0), static_cast<int64_t>(labels.size()));
  RFED_CHECK_GT(labels.size(), 0u);
  const std::vector<int> pred = ArgmaxRows(logits);
  int64_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace rfed
