#include "nn/models.h"

#include "util/check.h"

namespace rfed {

CnnModel::CnnModel(const CnnConfig& config, Rng* rng)
    : config_(config),
      conv1_(config.in_channels, config.conv1_channels, /*kernel=*/5,
             /*stride=*/1, /*pad=*/2, rng),
      conv2_(config.conv1_channels, config.conv2_channels, /*kernel=*/5,
             /*stride=*/1, /*pad=*/2, rng),
      fc1_((config.image_size / 4) * (config.image_size / 4) *
               config.conv2_channels,
           config.feature_dim, rng),
      fc2_(config.feature_dim, config.num_classes, rng),
      flat_dim_((config.image_size / 4) * (config.image_size / 4) *
                config.conv2_channels) {
  RFED_CHECK_EQ(config.image_size % 4, 0)
      << "two 2x2 pools need image_size divisible by 4";
  RegisterSubmodule("conv1", &conv1_);
  RegisterSubmodule("conv2", &conv2_);
  RegisterSubmodule("fc1", &fc1_);
  RegisterSubmodule("fc2", &fc2_);
}

ModelOutput CnnModel::Forward(const Batch& batch) {
  RFED_CHECK_GT(batch.images.size(), 0) << "CnnModel needs image batches";
  Variable x = ag::Input(batch.images);
  Variable h1 = ag::MaxPool2x2(ag::Relu(conv1_.Forward(x)));
  Variable h2 = ag::MaxPool2x2(ag::Relu(conv2_.Forward(h1)));
  Variable flat = ag::Reshape(h2, Shape{batch.size(), flat_dim_});
  Variable features = fc1_.ForwardRelu(flat);
  Variable logits = fc2_.Forward(features);
  return ModelOutput{features, logits};
}

LstmModel::LstmModel(const LstmConfig& config, Rng* rng)
    : config_(config),
      embedding_(config.vocab_size, config.embed_dim, rng),
      lstm1_(config.embed_dim, config.hidden_dim, rng),
      lstm2_(config.hidden_dim, config.hidden_dim, rng),
      fc1_(config.hidden_dim, config.feature_dim, rng),
      fc2_(config.feature_dim, config.num_classes, rng) {
  RegisterSubmodule("embedding", &embedding_);
  RegisterSubmodule("lstm1", &lstm1_);
  RegisterSubmodule("lstm2", &lstm2_);
  RegisterSubmodule("fc1", &fc1_);
  RegisterSubmodule("fc2", &fc2_);
}

ModelOutput LstmModel::Forward(const Batch& batch) {
  RFED_CHECK(!batch.tokens.empty()) << "LstmModel needs token batches";
  const int64_t batch_size = batch.size();
  const size_t seq_len = batch.tokens[0].size();

  // Per-timestep embedded inputs: gather column t of the token matrix.
  std::vector<Variable> x_seq;
  x_seq.reserve(seq_len);
  std::vector<int> step_ids(static_cast<size_t>(batch_size));
  for (size_t t = 0; t < seq_len; ++t) {
    for (int64_t b = 0; b < batch_size; ++b) {
      step_ids[static_cast<size_t>(b)] =
          batch.tokens[static_cast<size_t>(b)][t];
    }
    x_seq.push_back(embedding_.Forward(step_ids, static_cast<int>(t)));
  }

  std::vector<Variable> h1 = lstm1_.Unroll(x_seq);
  std::vector<Variable> h2 = lstm2_.Unroll(h1);
  Variable last = h2.back();
  Variable features = fc1_.ForwardRelu(last);
  Variable logits = fc2_.Forward(features);
  return ModelOutput{features, logits};
}

MlpModel::MlpModel(const MlpConfig& config, Rng* rng)
    : config_(config),
      flat_dim_(config.in_channels * config.image_size * config.image_size),
      fc1_(config.in_channels * config.image_size * config.image_size,
           config.hidden_dim, rng),
      fc2_(config.hidden_dim, config.feature_dim, rng),
      fc3_(config.feature_dim, config.num_classes, rng) {
  RegisterSubmodule("fc1", &fc1_);
  RegisterSubmodule("fc2", &fc2_);
  RegisterSubmodule("fc3", &fc3_);
}

ModelOutput MlpModel::Forward(const Batch& batch) {
  RFED_CHECK_GT(batch.images.size(), 0) << "MlpModel needs image batches";
  // Input() records the flattened shape; replay re-flattens the fresh
  // batch's images to match.
  Variable x = ag::Input(batch.images.Reshaped(Shape{batch.size(), flat_dim_}));
  Variable h = fc1_.ForwardRelu(x);
  Variable features = fc2_.ForwardRelu(h);
  Variable logits = fc3_.Forward(features);
  return ModelOutput{features, logits};
}

ModelFactory MakeCnnFactory(const CnnConfig& config) {
  return [config](Rng* rng) -> std::unique_ptr<FeatureModel> {
    return std::make_unique<CnnModel>(config, rng);
  };
}

ModelFactory MakeLstmFactory(const LstmConfig& config) {
  return [config](Rng* rng) -> std::unique_ptr<FeatureModel> {
    return std::make_unique<LstmModel>(config, rng);
  };
}

ModelFactory MakeMlpFactory(const MlpConfig& config) {
  return [config](Rng* rng) -> std::unique_ptr<FeatureModel> {
    return std::make_unique<MlpModel>(config, rng);
  };
}

}  // namespace rfed
