#include "nn/module.h"

#include "util/check.h"

namespace rfed {

std::vector<Variable*> Module::Parameters() {
  std::vector<Variable*> out;
  for (auto& entry : own_params_) out.push_back(entry.var.get());
  for (auto& [name, sub] : submodules_) {
    for (Variable* p : sub->Parameters()) out.push_back(p);
  }
  return out;
}

std::vector<std::string> Module::ParameterNames() const {
  std::vector<std::string> out;
  for (const auto& entry : own_params_) out.push_back(entry.name);
  for (const auto& [name, sub] : submodules_) {
    for (const std::string& sub_name : sub->ParameterNames()) {
      out.push_back(name + "." + sub_name);
    }
  }
  return out;
}

int64_t Module::NumParameters() {
  int64_t n = 0;
  for (Variable* p : Parameters()) n += p->value().size();
  return n;
}

void Module::ZeroGrad() {
  for (Variable* p : Parameters()) p->ZeroGrad();
}

Variable* Module::RegisterParameter(const std::string& name, Tensor init) {
  own_params_.push_back(
      {name, std::make_unique<Variable>(std::move(init), /*requires_grad=*/true)});
  return own_params_.back().var.get();
}

void Module::RegisterSubmodule(const std::string& name, Module* submodule) {
  RFED_CHECK(submodule != nullptr);
  submodules_.emplace_back(name, submodule);
}

}  // namespace rfed
