#include "nn/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace rfed {

void Optimizer::ZeroGrad() {
  for (Variable* p : params_) p->ZeroGrad();
}

SgdOptimizer::SgdOptimizer(std::vector<Variable*> params, double lr,
                           double momentum, double weight_decay)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ != 0.0) {
    velocity_.reserve(params_.size());
    for (Variable* p : params_) velocity_.emplace_back(p->value().shape());
  }
}

void SgdOptimizer::Step() {
  const float lr = static_cast<float>(lr_);
  const float wd = static_cast<float>(weight_decay_);
  const float mom = static_cast<float>(momentum_);
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable* p = params_[i];
    if (!p->has_grad()) continue;
    Tensor& w = p->mutable_value();
    const Tensor& g = p->grad();
    if (mom == 0.0f) {
      for (int64_t j = 0; j < w.size(); ++j) {
        w.at(j) -= lr * (g.at(j) + wd * w.at(j));
      }
    } else {
      Tensor& v = velocity_[i];
      for (int64_t j = 0; j < w.size(); ++j) {
        v.at(j) = mom * v.at(j) + g.at(j) + wd * w.at(j);
        w.at(j) -= lr * v.at(j);
      }
    }
  }
}

RmsPropOptimizer::RmsPropOptimizer(std::vector<Variable*> params, double lr,
                                   double alpha, double eps)
    : Optimizer(std::move(params), lr), alpha_(alpha), eps_(eps) {
  mean_square_.reserve(params_.size());
  for (Variable* p : params_) mean_square_.emplace_back(p->value().shape());
}

void RmsPropOptimizer::Step() {
  const float lr = static_cast<float>(lr_);
  const float alpha = static_cast<float>(alpha_);
  const float eps = static_cast<float>(eps_);
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable* p = params_[i];
    if (!p->has_grad()) continue;
    Tensor& w = p->mutable_value();
    const Tensor& g = p->grad();
    Tensor& ms = mean_square_[i];
    for (int64_t j = 0; j < w.size(); ++j) {
      const float gj = g.at(j);
      ms.at(j) = alpha * ms.at(j) + (1.0f - alpha) * gj * gj;
      w.at(j) -= lr * gj / (std::sqrt(ms.at(j)) + eps);
    }
  }
}

std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind,
                                         std::vector<Variable*> params,
                                         double lr) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return std::make_unique<SgdOptimizer>(std::move(params), lr);
    case OptimizerKind::kRmsProp:
      return std::make_unique<RmsPropOptimizer>(std::move(params), lr);
  }
  RFED_CHECK(false) << "unknown optimizer kind";
  return nullptr;
}

}  // namespace rfed
