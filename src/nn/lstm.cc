#include "nn/lstm.h"

#include "autograd/tape.h"
#include "nn/init.h"
#include "util/check.h"

namespace rfed {

LstmLayer::LstmLayer(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  wx_ = RegisterParameter(
      "wx", XavierUniform(Shape{input_dim, 4 * hidden_dim}, input_dim,
                          hidden_dim, rng));
  wh_ = RegisterParameter(
      "wh", XavierUniform(Shape{hidden_dim, 4 * hidden_dim}, hidden_dim,
                          hidden_dim, rng));
  Tensor b(Shape{4 * hidden_dim});
  // Forget gate slice [H, 2H) starts at 1.0.
  for (int64_t i = hidden_dim; i < 2 * hidden_dim; ++i) b.at(i) = 1.0f;
  bias_ = RegisterParameter("bias", std::move(b));
}

LstmLayer::State LstmLayer::InitialState(int64_t batch) const {
  return State{Variable(Tensor(Shape{batch, hidden_dim_})),
               Variable(Tensor(Shape{batch, hidden_dim_}))};
}

LstmLayer::State LstmLayer::Step(const Variable& x_t, const State& prev) {
  RFED_CHECK_EQ(x_t.value().dim(1), input_dim_);
  Variable gates = ag::AddRowBroadcast(
      ag::Add(ag::MatMul(x_t, *wx_), ag::MatMul(prev.h, *wh_)), *bias_);
  const int64_t h = hidden_dim_;
  Variable i = ag::Sigmoid(ag::SliceCols(gates, 0, h));
  Variable f = ag::Sigmoid(ag::SliceCols(gates, h, 2 * h));
  Variable g = ag::Tanh(ag::SliceCols(gates, 2 * h, 3 * h));
  Variable o = ag::Sigmoid(ag::SliceCols(gates, 3 * h, 4 * h));
  Variable c = ag::Add(ag::Mul(f, prev.c), ag::Mul(i, g));
  Variable h_out = ag::Mul(o, ag::Tanh(c));
  return State{h_out, c};
}

std::vector<Variable> LstmLayer::Unroll(const std::vector<Variable>& x_seq) {
  RFED_CHECK(!x_seq.empty());
  State state = InitialState(x_seq[0].value().dim(0));
  std::vector<Variable> outputs;
  outputs.reserve(x_seq.size());
  for (const Variable& x_t : x_seq) {
    // One checkpoint segment per timestep (no-ops unless a TapeSession
    // records with checkpointing on). CloseSegment runs after Step's
    // intermediates (gates, slices, products) leave scope, so anything
    // without a live Variable — everything but x_t, h and c — drops
    // back to the arena until backward rematerializes the segment.
    ag::internal::BeginSegment();
    state = Step(x_t, state);
    outputs.push_back(state.h);
    ag::internal::CloseSegment();
  }
  return outputs;
}

}  // namespace rfed
