#ifndef RFED_NN_CONV_H_
#define RFED_NN_CONV_H_

#include "autograd/ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace rfed {

/// 2-d convolution over NCHW inputs with a square kernel. Weights are kept
/// in im2col layout [Cout, Cin*K*K].
class Conv2dLayer : public Module {
 public:
  /// Registers weight [Cout, Cin*K*K] (Kaiming-normal, fan_in = Cin*K*K)
  /// and bias [Cout] (zero).
  Conv2dLayer(int64_t in_channels, int64_t out_channels, int64_t kernel,
              int64_t stride, int64_t pad, Rng* rng);

  /// x: [B, Cin, H, W] -> [B, Cout, Ho, Wo].
  Variable Forward(const Variable& x);

  /// The static shape parameters this layer was built with.
  const Conv2dSpec& spec() const { return spec_; }

 private:
  Conv2dSpec spec_;
  Variable* weight_;
  Variable* bias_;
};

}  // namespace rfed

#endif  // RFED_NN_CONV_H_
