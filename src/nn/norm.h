#ifndef RFED_NN_NORM_H_
#define RFED_NN_NORM_H_

#include "autograd/ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace rfed {

/// Layer normalization over the last dimension of a [rows, dim] input
/// with learnable gain/bias: y = x̂ * gamma + beta. Normalization layers
/// are the standard stabilizer for deeper federated models; tests verify
/// the gradient and that it composes with the FL state flattening.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  /// x: [rows, dim] -> [rows, dim].
  Variable Forward(const Variable& x);

  int64_t dim() const { return dim_; }

 private:
  int64_t dim_;
  float eps_;
  Variable* gamma_;
  Variable* beta_;
};

/// Inverted dropout: during training each element survives with
/// probability (1 - rate) and is scaled by 1/(1 - rate); identity at
/// evaluation. Stateless (the mask comes from the caller's Rng), so the
/// FL state flattening is unaffected.
Variable Dropout(const Variable& x, double rate, bool train, Rng* rng);

}  // namespace rfed

#endif  // RFED_NN_NORM_H_
