#include "nn/linear.h"

#include "nn/init.h"

namespace rfed {

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(
      "weight", XavierUniform(Shape{in_features, out_features}, in_features,
                              out_features, rng));
  bias_ = RegisterParameter("bias", Tensor(Shape{out_features}));
}

Variable Linear::Forward(const Variable& x) {
  return ag::AddRowBroadcast(ag::MatMul(x, *weight_), *bias_);
}

Variable Linear::ForwardRelu(const Variable& x) {
  return ag::LinearBiasRelu(x, *weight_, *bias_);
}

}  // namespace rfed
