#ifndef RFED_NN_LOSS_H_
#define RFED_NN_LOSS_H_

#include <vector>

#include "autograd/ops.h"

namespace rfed {

/// Mean softmax cross-entropy (differentiable scalar).
inline Variable CrossEntropyLoss(const Variable& logits,
                                 const std::vector<int>& labels) {
  return ag::SoftmaxCrossEntropy(logits, labels);
}

/// Fraction of rows whose argmax logit equals the label.
double Accuracy(const Tensor& logits, const std::vector<int>& labels);

/// Row-wise argmax of a [rows, cols] tensor.
std::vector<int> ArgmaxRows(const Tensor& logits);

}  // namespace rfed

#endif  // RFED_NN_LOSS_H_
