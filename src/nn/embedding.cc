#include "nn/embedding.h"

namespace rfed {

Embedding::Embedding(int64_t vocab_size, int64_t embed_dim, Rng* rng)
    : vocab_size_(vocab_size), embed_dim_(embed_dim) {
  table_ = RegisterParameter(
      "table",
      Tensor::Normal(Shape{vocab_size, embed_dim}, 0.0f, 0.1f, rng));
}

Variable Embedding::Forward(const std::vector<int>& ids) {
  return ag::GatherRows(*table_, ids);
}

Variable Embedding::Forward(const std::vector<int>& ids, int timestep) {
  return ag::GatherRows(*table_, ids, timestep);
}

}  // namespace rfed
