#ifndef RFED_NN_LSTM_H_
#define RFED_NN_LSTM_H_

#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace rfed {

/// Single LSTM layer. Gate weights are fused: Wx [input_dim, 4H],
/// Wh [H, 4H], b [4H] with gate order (input, forget, cell, output).
/// The forget-gate bias is initialized to 1, the standard trick for
/// stable training from random init.
class LstmLayer : public Module {
 public:
  LstmLayer(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  struct State {
    Variable h;  // [B, H]
    Variable c;  // [B, H]
  };

  /// Zero state for a batch of the given size.
  State InitialState(int64_t batch) const;

  /// One timestep: consumes x_t [B, input_dim] and the previous state,
  /// returns the next state (state.h is the layer output at this step).
  State Step(const Variable& x_t, const State& prev);

  /// Unrolls over a full sequence; returns the per-step hidden outputs.
  std::vector<Variable> Unroll(const std::vector<Variable>& x_seq);

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t input_dim_;
  int64_t hidden_dim_;
  Variable* wx_;
  Variable* wh_;
  Variable* bias_;
};

}  // namespace rfed

#endif  // RFED_NN_LSTM_H_
