#include "nn/norm.h"

#include "util/check.h"

namespace rfed {

LayerNorm::LayerNorm(int64_t dim, float eps) : dim_(dim), eps_(eps) {
  RFED_CHECK_GT(dim, 0);
  gamma_ = RegisterParameter("gamma", Tensor::Full(Shape{dim}, 1.0f));
  beta_ = RegisterParameter("beta", Tensor(Shape{dim}));
}

Variable LayerNorm::Forward(const Variable& x) {
  RFED_CHECK_EQ(x.value().dim(1), dim_);
  Variable normalized = ag::NormalizeRows(x, eps_);
  return ag::AddRowBroadcast(ag::MulRowBroadcast(normalized, *gamma_),
                             *beta_);
}

Variable Dropout(const Variable& x, double rate, bool train, Rng* rng) {
  RFED_CHECK_GE(rate, 0.0);
  RFED_CHECK_LT(rate, 1.0);
  if (!train || rate == 0.0) return x;
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate));
  Tensor mask(x.value().shape());
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask.at(i) = rng->Uniform() < rate ? 0.0f : keep_scale;
  }
  return ag::MulConst(x, mask);
}

}  // namespace rfed
