#ifndef RFED_NN_MODULE_H_
#define RFED_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace rfed {

/// Base class for trainable components. A Module owns leaf Variables
/// (parameters, requires_grad = true) and may contain sub-modules;
/// Parameters() returns all parameters in a stable, registration order —
/// the FL layer relies on that order to flatten/unflatten model state
/// deterministically across server and clients.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its registered sub-modules.
  std::vector<Variable*> Parameters();

  /// Parameter names (same order as Parameters()), for debugging.
  std::vector<std::string> ParameterNames() const;

  /// Total number of scalar parameters.
  int64_t NumParameters();

  /// Zeroes all parameter gradients.
  void ZeroGrad();

 protected:
  Module() = default;

  /// Registers a leaf parameter initialized with `init`; returns a stable
  /// pointer owned by this module.
  Variable* RegisterParameter(const std::string& name, Tensor init);

  /// Registers a sub-module whose parameters are appended after this
  /// module's own (does not take ownership).
  void RegisterSubmodule(const std::string& name, Module* submodule);

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<Variable> var;
  };
  std::vector<Entry> own_params_;
  std::vector<std::pair<std::string, Module*>> submodules_;
};

}  // namespace rfed

#endif  // RFED_NN_MODULE_H_
