#include "nn/init.h"

#include <cmath>

#include "util/check.h"

namespace rfed {

Tensor XavierUniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng* rng) {
  RFED_CHECK_GT(fan_in + fan_out, 0);
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Uniform(std::move(shape), -a, a, rng);
}

Tensor KaimingNormal(Shape shape, int64_t fan_in, Rng* rng) {
  RFED_CHECK_GT(fan_in, 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::Normal(std::move(shape), 0.0f, stddev, rng);
}

}  // namespace rfed
