#ifndef RFED_NN_INIT_H_
#define RFED_NN_INIT_H_

#include "tensor/tensor.h"
#include "util/rng.h"

namespace rfed {

/// Xavier/Glorot uniform initialization: U(-a, a) with
/// a = sqrt(6 / (fan_in + fan_out)).
Tensor XavierUniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng* rng);

/// Kaiming/He normal initialization for ReLU layers:
/// N(0, sqrt(2 / fan_in)).
Tensor KaimingNormal(Shape shape, int64_t fan_in, Rng* rng);

}  // namespace rfed

#endif  // RFED_NN_INIT_H_
