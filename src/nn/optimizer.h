#ifndef RFED_NN_OPTIMIZER_H_
#define RFED_NN_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace rfed {

/// Base class for first-order optimizers over a fixed parameter list.
/// The FL clients rebuild an optimizer at the start of every round (the
/// paper's algorithms reset local optimizer state on synchronization).
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable*> params, double lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the currently accumulated gradients.
  virtual void Step() = 0;

  void ZeroGrad();

  double lr() const { return lr_; }
  /// Supports decaying schedules such as the η_t = 2/(μ(γ+t)) rate used
  /// in the convergence theory harness.
  void set_lr(double lr) { lr_ = lr; }

 protected:
  std::vector<Variable*> params_;
  double lr_;
};

/// Plain SGD with optional momentum and weight decay.
class SgdOptimizer : public Optimizer {
 public:
  SgdOptimizer(std::vector<Variable*> params, double lr,
               double momentum = 0.0, double weight_decay = 0.0);

  void Step() override;

 private:
  double momentum_;
  double weight_decay_;
  std::vector<Tensor> velocity_;
};

/// RMSProp (the optimizer the paper uses for the Sent140 LSTM).
class RmsPropOptimizer : public Optimizer {
 public:
  RmsPropOptimizer(std::vector<Variable*> params, double lr,
                   double alpha = 0.99, double eps = 1e-8);

  void Step() override;

 private:
  double alpha_;
  double eps_;
  std::vector<Tensor> mean_square_;
};

/// Names accepted by MakeOptimizer.
enum class OptimizerKind { kSgd, kRmsProp };

/// Builds the named optimizer with its default hyperparameters (the
/// FlConfig::optimizer dispatch point).
std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind,
                                         std::vector<Variable*> params,
                                         double lr);

}  // namespace rfed

#endif  // RFED_NN_OPTIMIZER_H_
