#include "nn/conv.h"

#include "nn/init.h"

namespace rfed {

Conv2dLayer::Conv2dLayer(int64_t in_channels, int64_t out_channels,
                         int64_t kernel, int64_t stride, int64_t pad,
                         Rng* rng) {
  spec_.in_channels = in_channels;
  spec_.out_channels = out_channels;
  spec_.kernel = kernel;
  spec_.stride = stride;
  spec_.pad = pad;
  const int64_t patch = in_channels * kernel * kernel;
  weight_ = RegisterParameter(
      "weight", KaimingNormal(Shape{out_channels, patch}, patch, rng));
  bias_ = RegisterParameter("bias", Tensor(Shape{out_channels}));
}

Variable Conv2dLayer::Forward(const Variable& x) {
  return ag::Conv2d(x, *weight_, *bias_, spec_);
}

}  // namespace rfed
