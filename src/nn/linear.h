#ifndef RFED_NN_LINEAR_H_
#define RFED_NN_LINEAR_H_

#include "autograd/ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace rfed {

/// Fully connected layer: y = x W + b with W [in, out], b [out].
class Linear : public Module {
 public:
  /// Registers W [in, out] (Xavier-uniform) and b [out] (zero).
  Linear(int64_t in_features, int64_t out_features, Rng* rng);

  /// x: [batch, in] -> [batch, out].
  Variable Forward(const Variable& x);

  /// relu(Forward(x)) through the fused ag::LinearBiasRelu op: one graph
  /// node and two fewer intermediate tensors, bit-identical to
  /// ag::Relu(Forward(x)).
  Variable ForwardRelu(const Variable& x);

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Variable* weight_;
  Variable* bias_;
};

}  // namespace rfed

#endif  // RFED_NN_LINEAR_H_
