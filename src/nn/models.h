#ifndef RFED_NN_MODELS_H_
#define RFED_NN_MODELS_H_

#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "nn/conv.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "nn/optimizer.h"

namespace rfed {

/// Forward products of a classification model. `features` is the output
/// of the last hidden FC layer — the representation φ(x; w̃) the paper's
/// distribution regularizer (Eq. 5) is computed on; `logits` feeds the
/// cross-entropy term.
struct ModelOutput {
  Variable features;  ///< [B, feature_dim]
  Variable logits;    ///< [B, num_classes]
};

/// A trainable classifier exposing its feature layer. All FL algorithms
/// operate on this interface; rFedAvg/rFedAvg+ additionally read
/// `features` to build the δ maps.
class FeatureModel : public Module {
 public:
  virtual ModelOutput Forward(const Batch& batch) = 0;

  virtual int64_t feature_dim() const = 0;
  virtual int num_classes() const = 0;
  /// Which optimizer the paper pairs with this architecture.
  virtual OptimizerKind default_optimizer() const = 0;
};

/// Factory producing identically configured models; the FL trainer uses
/// it to instantiate the server template and per-client scratch models.
using ModelFactory = std::function<std::unique_ptr<FeatureModel>(Rng*)>;

/// Configuration of the paper's CNN (conv5-pool-conv5-pool-FC-FC, feature
/// layer = first FC output; the paper uses feature_dim = 512, benches use
/// a narrower default for CPU speed — Table III reports both).
struct CnnConfig {
  int64_t in_channels = 1;
  int64_t image_size = 12;
  int64_t conv1_channels = 8;
  int64_t conv2_channels = 16;
  int64_t feature_dim = 64;
  int num_classes = 10;
};

class CnnModel : public FeatureModel {
 public:
  CnnModel(const CnnConfig& config, Rng* rng);

  ModelOutput Forward(const Batch& batch) override;
  int64_t feature_dim() const override { return config_.feature_dim; }
  int num_classes() const override { return config_.num_classes; }
  OptimizerKind default_optimizer() const override {
    return OptimizerKind::kSgd;
  }

  const CnnConfig& config() const { return config_; }

 private:
  CnnConfig config_;
  Conv2dLayer conv1_;
  Conv2dLayer conv2_;
  Linear fc1_;
  Linear fc2_;
  int64_t flat_dim_;
};

/// Configuration of the paper's Sent140 model: embedding -> 2-layer LSTM
/// -> FC feature layer -> FC classifier, trained with RMSProp.
struct LstmConfig {
  int vocab_size = 64;
  int64_t embed_dim = 16;
  int64_t hidden_dim = 32;
  int64_t feature_dim = 32;
  int num_classes = 2;
};

class LstmModel : public FeatureModel {
 public:
  LstmModel(const LstmConfig& config, Rng* rng);

  ModelOutput Forward(const Batch& batch) override;
  int64_t feature_dim() const override { return config_.feature_dim; }
  int num_classes() const override { return config_.num_classes; }
  OptimizerKind default_optimizer() const override {
    return OptimizerKind::kRmsProp;
  }

  const LstmConfig& config() const { return config_; }

 private:
  LstmConfig config_;
  Embedding embedding_;
  LstmLayer lstm1_;
  LstmLayer lstm2_;
  Linear fc1_;
  Linear fc2_;
};

/// Configuration of the fully connected "2NN" of McMahan et al. (the
/// other image model of the FedAvg paper): flatten -> FC -> ReLU -> FC
/// feature layer -> classifier. Cheaper than the CNN; useful for quick
/// sweeps and as a second architecture in tests.
struct MlpConfig {
  int64_t in_channels = 1;
  int64_t image_size = 12;
  int64_t hidden_dim = 64;
  int64_t feature_dim = 32;
  int num_classes = 10;
};

class MlpModel : public FeatureModel {
 public:
  MlpModel(const MlpConfig& config, Rng* rng);

  ModelOutput Forward(const Batch& batch) override;
  int64_t feature_dim() const override { return config_.feature_dim; }
  int num_classes() const override { return config_.num_classes; }
  OptimizerKind default_optimizer() const override {
    return OptimizerKind::kSgd;
  }

  const MlpConfig& config() const { return config_; }

 private:
  MlpConfig config_;
  int64_t flat_dim_;
  Linear fc1_;
  Linear fc2_;
  Linear fc3_;
};

/// Factory helpers binding a config.
ModelFactory MakeCnnFactory(const CnnConfig& config);
ModelFactory MakeLstmFactory(const LstmConfig& config);
ModelFactory MakeMlpFactory(const MlpConfig& config);

}  // namespace rfed

#endif  // RFED_NN_MODELS_H_
