#ifndef RFED_NN_EMBEDDING_H_
#define RFED_NN_EMBEDDING_H_

#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace rfed {

/// Token embedding table [vocab_size, embed_dim] with row lookup.
class Embedding : public Module {
 public:
  Embedding(int64_t vocab_size, int64_t embed_dim, Rng* rng);

  /// ids: n token ids -> [n, embed_dim]. Marks a recording tape
  /// non-replayable (the ids cannot be refreshed); prefer the timestep
  /// overload inside sequence models.
  Variable Forward(const std::vector<int>& ids);

  /// Forward for ids gathered from column `timestep` of the batch's
  /// token matrix; tape replay recomputes them from the fresh batch.
  Variable Forward(const std::vector<int>& ids, int timestep);

  int64_t vocab_size() const { return vocab_size_; }
  int64_t embed_dim() const { return embed_dim_; }

 private:
  int64_t vocab_size_;
  int64_t embed_dim_;
  Variable* table_;
};

}  // namespace rfed

#endif  // RFED_NN_EMBEDDING_H_
