#include "autograd/ops.h"

#include <cmath>

#include <memory>
#include <utility>

#include "util/check.h"

namespace rfed::ag {
namespace {

using NodePtr = std::shared_ptr<GraphNode>;

bool AnyRequiresGrad(const std::vector<NodePtr>& inputs) {
  for (const auto& in : inputs) {
    if (in->requires_grad()) return true;
  }
  return false;
}

/// Builds the result node, wiring inputs and the backward closure. The
/// closure receives the raw result node so it can read the upstream grad.
Variable MakeOp(Tensor value, std::vector<NodePtr> inputs,
                std::function<void(GraphNode*)> backward) {
  const bool needs_grad = AnyRequiresGrad(inputs);
  auto node = std::make_shared<GraphNode>(std::move(value), needs_grad);
  node->inputs = std::move(inputs);
  if (needs_grad && backward) {
    GraphNode* raw = node.get();
    node->backward_fn = [raw, backward = std::move(backward)] { backward(raw); };
  }
  return Variable(node);
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  return MakeOp(rfed::Add(a.value(), b.value()), {a.node(), b.node()},
                [](GraphNode* out) {
                  for (auto& in : out->inputs) {
                    if (in->requires_grad()) in->AccumulateGrad(out->grad());
                  }
                });
}

Variable Sub(const Variable& a, const Variable& b) {
  return MakeOp(rfed::Sub(a.value(), b.value()), {a.node(), b.node()},
                [](GraphNode* out) {
                  if (out->inputs[0]->requires_grad()) {
                    out->inputs[0]->AccumulateGrad(out->grad());
                  }
                  if (out->inputs[1]->requires_grad()) {
                    out->inputs[1]->AccumulateGrad(rfed::Scale(out->grad(), -1.0f));
                  }
                });
}

Variable Mul(const Variable& a, const Variable& b) {
  return MakeOp(rfed::Mul(a.value(), b.value()), {a.node(), b.node()},
                [](GraphNode* out) {
                  GraphNode* a = out->inputs[0].get();
                  GraphNode* b = out->inputs[1].get();
                  if (a->requires_grad()) {
                    a->AccumulateGrad(rfed::Mul(out->grad(), b->value()));
                  }
                  if (b->requires_grad()) {
                    b->AccumulateGrad(rfed::Mul(out->grad(), a->value()));
                  }
                });
}

Variable Scale(const Variable& a, float s) {
  return MakeOp(rfed::Scale(a.value(), s), {a.node()}, [s](GraphNode* out) {
    out->inputs[0]->AccumulateGrad(rfed::Scale(out->grad(), s));
  });
}

Variable MulConst(const Variable& a, const Tensor& mask) {
  return MakeOp(rfed::Mul(a.value(), mask), {a.node()},
                [mask](GraphNode* out) {
                  out->inputs[0]->AccumulateGrad(rfed::Mul(out->grad(), mask));
                });
}

Variable Relu(const Variable& x) {
  return MakeOp(rfed::Relu(x.value()), {x.node()}, [](GraphNode* out) {
    out->inputs[0]->AccumulateGrad(
        ReluBackward(out->grad(), out->inputs[0]->value()));
  });
}

Variable Tanh(const Variable& x) {
  return MakeOp(rfed::Tanh(x.value()), {x.node()}, [](GraphNode* out) {
    out->inputs[0]->AccumulateGrad(
        TanhBackwardFromOutput(out->grad(), out->value()));
  });
}

Variable Sigmoid(const Variable& x) {
  return MakeOp(rfed::Sigmoid(x.value()), {x.node()}, [](GraphNode* out) {
    out->inputs[0]->AccumulateGrad(
        SigmoidBackwardFromOutput(out->grad(), out->value()));
  });
}

Variable MatMul(const Variable& a, const Variable& b) {
  return MakeOp(rfed::MatMul(a.value(), b.value()), {a.node(), b.node()},
                [](GraphNode* out) {
                  GraphNode* a = out->inputs[0].get();
                  GraphNode* b = out->inputs[1].get();
                  if (a->requires_grad()) {
                    a->AccumulateGrad(MatMulTransB(out->grad(), b->value()));
                  }
                  if (b->requires_grad()) {
                    b->AccumulateGrad(MatMulTransA(a->value(), out->grad()));
                  }
                });
}

Variable AddRowBroadcast(const Variable& x, const Variable& bias) {
  return MakeOp(rfed::AddRowBroadcast(x.value(), bias.value()),
                {x.node(), bias.node()}, [](GraphNode* out) {
                  if (out->inputs[0]->requires_grad()) {
                    out->inputs[0]->AccumulateGrad(out->grad());
                  }
                  if (out->inputs[1]->requires_grad()) {
                    out->inputs[1]->AccumulateGrad(SumRows(out->grad()));
                  }
                });
}

Variable MulRowBroadcast(const Variable& x, const Variable& scale) {
  return MakeOp(rfed::MulRowBroadcast(x.value(), scale.value()),
                {x.node(), scale.node()}, [](GraphNode* out) {
                  GraphNode* x = out->inputs[0].get();
                  GraphNode* s = out->inputs[1].get();
                  if (x->requires_grad()) {
                    x->AccumulateGrad(
                        rfed::MulRowBroadcast(out->grad(), s->value()));
                  }
                  if (s->requires_grad()) {
                    s->AccumulateGrad(
                        SumRows(rfed::Mul(out->grad(), x->value())));
                  }
                });
}

Variable NormalizeRows(const Variable& x, float eps) {
  const Tensor& v = x.value();
  RFED_CHECK_EQ(v.rank(), 2);
  const int64_t rows = v.dim(0), cols = v.dim(1);
  Tensor normalized(v.shape());
  auto inv_std = std::make_shared<std::vector<float>>(
      static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = v.data() + r * cols;
    double mean = 0.0;
    for (int64_t c = 0; c < cols; ++c) mean += src[c];
    mean /= static_cast<double>(cols);
    double var = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      const double d = src[c] - mean;
      var += d * d;
    }
    var /= static_cast<double>(cols);
    const float is = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    (*inv_std)[static_cast<size_t>(r)] = is;
    float* dst = normalized.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      dst[c] = (src[c] - static_cast<float>(mean)) * is;
    }
  }
  return MakeOp(std::move(normalized), {x.node()},
                [inv_std](GraphNode* out) {
                  // dL/dx = (1/σ)(g - mean(g) - x̂ * mean(g ⊙ x̂)).
                  const Tensor& g = out->grad();
                  const Tensor& xhat = out->value();
                  const int64_t rows = g.dim(0), cols = g.dim(1);
                  Tensor dx(g.shape());
                  for (int64_t r = 0; r < rows; ++r) {
                    const float* grow = g.data() + r * cols;
                    const float* hrow = xhat.data() + r * cols;
                    double g_mean = 0.0, gh_mean = 0.0;
                    for (int64_t c = 0; c < cols; ++c) {
                      g_mean += grow[c];
                      gh_mean += static_cast<double>(grow[c]) * hrow[c];
                    }
                    g_mean /= static_cast<double>(cols);
                    gh_mean /= static_cast<double>(cols);
                    const float is = (*inv_std)[static_cast<size_t>(r)];
                    float* drow = dx.data() + r * cols;
                    for (int64_t c = 0; c < cols; ++c) {
                      drow[c] = is * static_cast<float>(
                                         grow[c] - g_mean - hrow[c] * gh_mean);
                    }
                  }
                  out->inputs[0]->AccumulateGrad(dx);
                });
}

Variable Reshape(const Variable& x, Shape new_shape) {
  const Shape old_shape = x.shape();
  return MakeOp(x.value().Reshaped(std::move(new_shape)), {x.node()},
                [old_shape](GraphNode* out) {
                  out->inputs[0]->AccumulateGrad(
                      out->grad().Reshaped(old_shape));
                });
}

Variable SliceCols(const Variable& x, int64_t begin, int64_t end) {
  const Tensor& v = x.value();
  RFED_CHECK_EQ(v.rank(), 2);
  RFED_CHECK_GE(begin, 0);
  RFED_CHECK_LE(end, v.dim(1));
  RFED_CHECK_LT(begin, end);
  const int64_t rows = v.dim(0), cols = v.dim(1), width = end - begin;
  Tensor out(Shape{rows, width});
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = v.data() + r * cols + begin;
    std::copy(src, src + width, out.data() + r * width);
  }
  return MakeOp(std::move(out), {x.node()},
                [begin, width, cols](GraphNode* out) {
                  GraphNode* in = out->inputs[0].get();
                  Tensor dx(in->value().shape());
                  const int64_t rows = dx.dim(0);
                  for (int64_t r = 0; r < rows; ++r) {
                    const float* src = out->grad().data() + r * width;
                    float* dst = dx.data() + r * cols + begin;
                    for (int64_t c = 0; c < width; ++c) dst[c] += src[c];
                  }
                  in->AccumulateGrad(dx);
                });
}

Variable ConcatRows(const Variable& a, const Variable& b) {
  const int64_t rows_a = a.value().dim(0);
  return MakeOp(rfed::ConcatRows(a.value(), b.value()), {a.node(), b.node()},
                [rows_a](GraphNode* out) {
                  const Tensor& g = out->grad();
                  if (out->inputs[0]->requires_grad()) {
                    out->inputs[0]->AccumulateGrad(SliceRows(g, 0, rows_a));
                  }
                  if (out->inputs[1]->requires_grad()) {
                    out->inputs[1]->AccumulateGrad(
                        SliceRows(g, rows_a, g.dim(0)));
                  }
                });
}

Variable Sum(const Variable& x) {
  Tensor out(Shape{}, std::vector<float>{x.value().Sum()});
  return MakeOp(std::move(out), {x.node()}, [](GraphNode* out) {
    GraphNode* in = out->inputs[0].get();
    Tensor dx(in->value().shape(), out->grad().ToScalar());
    in->AccumulateGrad(dx);
  });
}

Variable Mean(const Variable& x) {
  Tensor out(Shape{}, std::vector<float>{x.value().Mean()});
  const float inv = 1.0f / static_cast<float>(x.value().size());
  return MakeOp(std::move(out), {x.node()}, [inv](GraphNode* out) {
    GraphNode* in = out->inputs[0].get();
    Tensor dx(in->value().shape(), out->grad().ToScalar() * inv);
    in->AccumulateGrad(dx);
  });
}

Variable MeanRows(const Variable& x) {
  return MakeOp(rfed::MeanRows(x.value()), {x.node()}, [](GraphNode* out) {
    GraphNode* in = out->inputs[0].get();
    const int64_t rows = in->value().dim(0), cols = in->value().dim(1);
    const float inv = 1.0f / static_cast<float>(rows);
    Tensor dx(in->value().shape());
    for (int64_t r = 0; r < rows; ++r) {
      float* row = dx.data() + r * cols;
      for (int64_t c = 0; c < cols; ++c) row[c] = out->grad().at(c) * inv;
    }
    in->AccumulateGrad(dx);
  });
}

Variable SquaredDistanceToConst(const Variable& x, const Tensor& target) {
  Tensor diff = rfed::Sub(x.value(), target);
  Tensor out(Shape{}, std::vector<float>{diff.SquaredNorm()});
  return MakeOp(std::move(out), {x.node()},
                [diff = std::move(diff)](GraphNode* out) {
                  out->inputs[0]->AccumulateGrad(
                      rfed::Scale(diff, 2.0f * out->grad().ToScalar()));
                });
}

Variable SquaredNorm(const Variable& x) {
  Tensor out(Shape{}, std::vector<float>{x.value().SquaredNorm()});
  return MakeOp(std::move(out), {x.node()}, [](GraphNode* out) {
    out->inputs[0]->AccumulateGrad(
        rfed::Scale(out->inputs[0]->value(), 2.0f * out->grad().ToScalar()));
  });
}

Variable GatherRows(const Variable& table, const std::vector<int>& ids) {
  return MakeOp(rfed::GatherRows(table.value(), ids), {table.node()},
                [ids](GraphNode* out) {
                  GraphNode* in = out->inputs[0].get();
                  Tensor dtable(in->value().shape());
                  ScatterAddRows(out->grad(), ids, &dtable);
                  in->AccumulateGrad(dtable);
                });
}

Variable Conv2d(const Variable& x, const Variable& w, const Variable& b,
                const Conv2dSpec& spec) {
  return MakeOp(Conv2dForward(x.value(), w.value(), b.value(), spec),
                {x.node(), w.node(), b.node()}, [spec](GraphNode* out) {
                  GraphNode* x = out->inputs[0].get();
                  GraphNode* w = out->inputs[1].get();
                  GraphNode* b = out->inputs[2].get();
                  Tensor dx, dw, db;
                  Conv2dBackward(out->grad(), x->value(), w->value(), spec,
                                 x->requires_grad() ? &dx : nullptr,
                                 w->requires_grad() ? &dw : nullptr,
                                 b->requires_grad() ? &db : nullptr);
                  if (x->requires_grad()) x->AccumulateGrad(dx);
                  if (w->requires_grad()) w->AccumulateGrad(dw);
                  if (b->requires_grad()) b->AccumulateGrad(db);
                });
}

Variable MaxPool2x2(const Variable& x) {
  auto argmax = std::make_shared<std::vector<int64_t>>();
  Tensor out = MaxPool2x2Forward(x.value(), argmax.get());
  return MakeOp(std::move(out), {x.node()}, [argmax](GraphNode* out) {
    GraphNode* in = out->inputs[0].get();
    in->AccumulateGrad(
        MaxPool2x2Backward(out->grad(), in->value().shape(), *argmax));
  });
}

Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int>& labels) {
  auto dlogits = std::make_shared<Tensor>();
  const float loss =
      rfed::SoftmaxCrossEntropy(logits.value(), labels, dlogits.get());
  Tensor out(Shape{}, std::vector<float>{loss});
  return MakeOp(std::move(out), {logits.node()}, [dlogits](GraphNode* out) {
    out->inputs[0]->AccumulateGrad(
        rfed::Scale(*dlogits, out->grad().ToScalar()));
  });
}

}  // namespace rfed::ag
