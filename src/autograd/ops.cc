#include "autograd/ops.h"

#include <algorithm>
#include <cmath>

#include <memory>
#include <utility>

#include "autograd/tape.h"
#include "util/check.h"

namespace rfed::ag {
namespace {

using NodePtr = std::shared_ptr<GraphNode>;

bool AnyRequiresGrad(const std::vector<NodePtr>& inputs) {
  for (const auto& in : inputs) {
    if (in->requires_grad()) return true;
  }
  return false;
}

/// Rank-0 scalar tensor through the pooled-storage path (the
/// initializer-list Tensor constructor would heap-allocate per call).
Tensor ScalarTensor(float v) {
  Tensor out((Shape{}));
  out.at(0) = v;
  return out;
}

/// Builds the result node: wires inputs, runs `forward` once to compute
/// the value, installs it for tape replay/rematerialization, wraps
/// `backward`, and reports the node to the active TapeSession. Both
/// closures receive the raw result node so they can read inputs and the
/// upstream grad through it.
Variable MakeOp(std::vector<NodePtr> inputs,
                std::function<void(GraphNode*)> forward,
                std::function<void(GraphNode*)> backward) {
  const bool needs_grad = AnyRequiresGrad(inputs);
  auto node = std::make_shared<GraphNode>(Tensor(), needs_grad);
  node->inputs = std::move(inputs);
  node->forward_fn = std::move(forward);
  node->forward_fn(node.get());
  if (needs_grad && backward) {
    GraphNode* raw = node.get();
    node->backward_fn = [raw, backward = std::move(backward)] { backward(raw); };
  }
  internal::NotifyNodeCreated(node);
  return Variable(node);
}

Tensor NormalizeRowsForward(const Tensor& v, float eps,
                            std::vector<float>* inv_std) {
  const int64_t rows = v.dim(0), cols = v.dim(1);
  Tensor normalized(v.shape());
  inv_std->resize(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = v.data() + r * cols;
    double mean = 0.0;
    for (int64_t c = 0; c < cols; ++c) mean += src[c];
    mean /= static_cast<double>(cols);
    double var = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      const double d = src[c] - mean;
      var += d * d;
    }
    var /= static_cast<double>(cols);
    const float is = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    (*inv_std)[static_cast<size_t>(r)] = is;
    float* dst = normalized.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      dst[c] = (src[c] - static_cast<float>(mean)) * is;
    }
  }
  return normalized;
}

}  // namespace

Variable Input(const Tensor& value) {
  auto node = std::make_shared<GraphNode>(value, /*requires_grad=*/false);
  node->input_tag = GraphNode::InputTag::kImages;
  internal::NotifyNodeCreated(node);
  return Variable(node);
}

Variable Add(const Variable& a, const Variable& b) {
  return MakeOp({a.node(), b.node()},
                [](GraphNode* out) {
                  out->mutable_value() = rfed::Add(out->inputs[0]->value(),
                                                   out->inputs[1]->value());
                },
                [](GraphNode* out) {
                  for (auto& in : out->inputs) {
                    if (in->requires_grad()) in->AccumulateGrad(out->grad());
                  }
                });
}

Variable Sub(const Variable& a, const Variable& b) {
  return MakeOp({a.node(), b.node()},
                [](GraphNode* out) {
                  out->mutable_value() = rfed::Sub(out->inputs[0]->value(),
                                                   out->inputs[1]->value());
                },
                [](GraphNode* out) {
                  if (out->inputs[0]->requires_grad()) {
                    out->inputs[0]->AccumulateGrad(out->grad());
                  }
                  if (out->inputs[1]->requires_grad()) {
                    out->inputs[1]->AccumulateGrad(rfed::Scale(out->grad(), -1.0f));
                  }
                });
}

Variable Mul(const Variable& a, const Variable& b) {
  return MakeOp({a.node(), b.node()},
                [](GraphNode* out) {
                  out->mutable_value() = rfed::Mul(out->inputs[0]->value(),
                                                   out->inputs[1]->value());
                },
                [](GraphNode* out) {
                  GraphNode* a = out->inputs[0].get();
                  GraphNode* b = out->inputs[1].get();
                  if (a->requires_grad()) {
                    a->AccumulateGrad(rfed::Mul(out->grad(), b->value()));
                  }
                  if (b->requires_grad()) {
                    b->AccumulateGrad(rfed::Mul(out->grad(), a->value()));
                  }
                });
}

Variable Scale(const Variable& a, float s) {
  return MakeOp({a.node()},
                [s](GraphNode* out) {
                  out->mutable_value() = rfed::Scale(out->inputs[0]->value(), s);
                },
                [s](GraphNode* out) {
                  out->inputs[0]->AccumulateGrad(rfed::Scale(out->grad(), s));
                });
}

Variable MulConst(const Variable& a, const Tensor& mask) {
  // The mask cannot be refreshed on replay (it may be a fresh RNG draw
  // per step, as in dropout), so poison the recording tape.
  internal::MarkDynamic();
  return MakeOp({a.node()},
                [mask](GraphNode* out) {
                  out->mutable_value() = rfed::Mul(out->inputs[0]->value(), mask);
                },
                [mask](GraphNode* out) {
                  out->inputs[0]->AccumulateGrad(rfed::Mul(out->grad(), mask));
                });
}

Variable Relu(const Variable& x) {
  return MakeOp({x.node()},
                [](GraphNode* out) {
                  out->mutable_value() = rfed::Relu(out->inputs[0]->value());
                },
                [](GraphNode* out) {
                  out->inputs[0]->AccumulateGrad(
                      ReluBackward(out->grad(), out->inputs[0]->value()));
                });
}

Variable Tanh(const Variable& x) {
  return MakeOp({x.node()},
                [](GraphNode* out) {
                  out->mutable_value() = rfed::Tanh(out->inputs[0]->value());
                },
                [](GraphNode* out) {
                  out->inputs[0]->AccumulateGrad(
                      TanhBackwardFromOutput(out->grad(), out->value()));
                });
}

Variable Sigmoid(const Variable& x) {
  return MakeOp({x.node()},
                [](GraphNode* out) {
                  out->mutable_value() = rfed::Sigmoid(out->inputs[0]->value());
                },
                [](GraphNode* out) {
                  out->inputs[0]->AccumulateGrad(
                      SigmoidBackwardFromOutput(out->grad(), out->value()));
                });
}

Variable MatMul(const Variable& a, const Variable& b) {
  return MakeOp({a.node(), b.node()},
                [](GraphNode* out) {
                  out->mutable_value() = rfed::MatMul(out->inputs[0]->value(),
                                                      out->inputs[1]->value());
                },
                [](GraphNode* out) {
                  GraphNode* a = out->inputs[0].get();
                  GraphNode* b = out->inputs[1].get();
                  if (a->requires_grad()) {
                    a->AccumulateGrad(MatMulTransB(out->grad(), b->value()));
                  }
                  if (b->requires_grad()) {
                    b->AccumulateGrad(MatMulTransA(a->value(), out->grad()));
                  }
                });
}

Variable AddRowBroadcast(const Variable& x, const Variable& bias) {
  return MakeOp({x.node(), bias.node()},
                [](GraphNode* out) {
                  out->mutable_value() = rfed::AddRowBroadcast(
                      out->inputs[0]->value(), out->inputs[1]->value());
                },
                [](GraphNode* out) {
                  if (out->inputs[0]->requires_grad()) {
                    out->inputs[0]->AccumulateGrad(out->grad());
                  }
                  if (out->inputs[1]->requires_grad()) {
                    out->inputs[1]->AccumulateGrad(SumRows(out->grad()));
                  }
                });
}

Variable MulRowBroadcast(const Variable& x, const Variable& scale) {
  return MakeOp({x.node(), scale.node()},
                [](GraphNode* out) {
                  out->mutable_value() = rfed::MulRowBroadcast(
                      out->inputs[0]->value(), out->inputs[1]->value());
                },
                [](GraphNode* out) {
                  GraphNode* x = out->inputs[0].get();
                  GraphNode* s = out->inputs[1].get();
                  if (x->requires_grad()) {
                    x->AccumulateGrad(
                        rfed::MulRowBroadcast(out->grad(), s->value()));
                  }
                  if (s->requires_grad()) {
                    s->AccumulateGrad(
                        SumRows(rfed::Mul(out->grad(), x->value())));
                  }
                });
}

Variable LinearBiasRelu(const Variable& x, const Variable& w,
                        const Variable& bias) {
  return MakeOp(
      {x.node(), w.node(), bias.node()},
      [](GraphNode* out) {
        out->mutable_value() = LinearBiasReluForward(out->inputs[0]->value(),
                                                     out->inputs[1]->value(),
                                                     out->inputs[2]->value());
      },
      [](GraphNode* out) {
        GraphNode* x = out->inputs[0].get();
        GraphNode* w = out->inputs[1].get();
        GraphNode* b = out->inputs[2].get();
        Tensor dx, dw, db;
        LinearBiasReluBackward(out->grad(), out->value(), x->value(),
                               w->value(), x->requires_grad() ? &dx : nullptr,
                               w->requires_grad() ? &dw : nullptr,
                               b->requires_grad() ? &db : nullptr);
        if (x->requires_grad()) x->AccumulateGrad(dx);
        if (w->requires_grad()) w->AccumulateGrad(dw);
        if (b->requires_grad()) b->AccumulateGrad(db);
      });
}

Variable NormalizeRows(const Variable& x, float eps) {
  RFED_CHECK_EQ(x.value().rank(), 2);
  auto inv_std = std::make_shared<std::vector<float>>();
  return MakeOp({x.node()},
                [eps, inv_std](GraphNode* out) {
                  out->mutable_value() = NormalizeRowsForward(
                      out->inputs[0]->value(), eps, inv_std.get());
                },
                [inv_std](GraphNode* out) {
                  // dL/dx = (1/σ)(g - mean(g) - x̂ * mean(g ⊙ x̂)).
                  const Tensor& g = out->grad();
                  const Tensor& xhat = out->value();
                  const int64_t rows = g.dim(0), cols = g.dim(1);
                  Tensor dx(g.shape());
                  for (int64_t r = 0; r < rows; ++r) {
                    const float* grow = g.data() + r * cols;
                    const float* hrow = xhat.data() + r * cols;
                    double g_mean = 0.0, gh_mean = 0.0;
                    for (int64_t c = 0; c < cols; ++c) {
                      g_mean += grow[c];
                      gh_mean += static_cast<double>(grow[c]) * hrow[c];
                    }
                    g_mean /= static_cast<double>(cols);
                    gh_mean /= static_cast<double>(cols);
                    const float is = (*inv_std)[static_cast<size_t>(r)];
                    float* drow = dx.data() + r * cols;
                    for (int64_t c = 0; c < cols; ++c) {
                      drow[c] = is * static_cast<float>(
                                         grow[c] - g_mean - hrow[c] * gh_mean);
                    }
                  }
                  out->inputs[0]->AccumulateGrad(dx);
                });
}

Variable Reshape(const Variable& x, Shape new_shape) {
  const Shape old_shape = x.shape();
  return MakeOp({x.node()},
                [new_shape](GraphNode* out) {
                  out->mutable_value() =
                      out->inputs[0]->value().Reshaped(new_shape);
                },
                [old_shape](GraphNode* out) {
                  out->inputs[0]->AccumulateGrad(
                      out->grad().Reshaped(old_shape));
                });
}

Variable SliceCols(const Variable& x, int64_t begin, int64_t end) {
  const Tensor& v = x.value();
  RFED_CHECK_EQ(v.rank(), 2);
  RFED_CHECK_GE(begin, 0);
  RFED_CHECK_LE(end, v.dim(1));
  RFED_CHECK_LT(begin, end);
  const int64_t cols = v.dim(1), width = end - begin;
  return MakeOp({x.node()},
                [begin, width, cols](GraphNode* out) {
                  const Tensor& v = out->inputs[0]->value();
                  const int64_t rows = v.dim(0);
                  Tensor sliced(Shape{rows, width});
                  for (int64_t r = 0; r < rows; ++r) {
                    const float* src = v.data() + r * cols + begin;
                    std::copy(src, src + width, sliced.data() + r * width);
                  }
                  out->mutable_value() = std::move(sliced);
                },
                [begin, width, cols](GraphNode* out) {
                  GraphNode* in = out->inputs[0].get();
                  Tensor dx(in->value_shape());
                  const int64_t rows = dx.dim(0);
                  for (int64_t r = 0; r < rows; ++r) {
                    const float* src = out->grad().data() + r * width;
                    float* dst = dx.data() + r * cols + begin;
                    for (int64_t c = 0; c < width; ++c) dst[c] += src[c];
                  }
                  in->AccumulateGrad(dx);
                });
}

Variable ConcatRows(const Variable& a, const Variable& b) {
  const int64_t rows_a = a.value().dim(0);
  return MakeOp({a.node(), b.node()},
                [](GraphNode* out) {
                  out->mutable_value() = rfed::ConcatRows(
                      out->inputs[0]->value(), out->inputs[1]->value());
                },
                [rows_a](GraphNode* out) {
                  const Tensor& g = out->grad();
                  if (out->inputs[0]->requires_grad()) {
                    out->inputs[0]->AccumulateGrad(SliceRows(g, 0, rows_a));
                  }
                  if (out->inputs[1]->requires_grad()) {
                    out->inputs[1]->AccumulateGrad(
                        SliceRows(g, rows_a, g.dim(0)));
                  }
                });
}

Variable Sum(const Variable& x) {
  return MakeOp({x.node()},
                [](GraphNode* out) {
                  out->mutable_value() =
                      ScalarTensor(out->inputs[0]->value().Sum());
                },
                [](GraphNode* out) {
                  GraphNode* in = out->inputs[0].get();
                  Tensor dx(in->value_shape(), out->grad().ToScalar());
                  in->AccumulateGrad(dx);
                });
}

Variable Mean(const Variable& x) {
  const float inv = 1.0f / static_cast<float>(x.value().size());
  return MakeOp({x.node()},
                [](GraphNode* out) {
                  out->mutable_value() =
                      ScalarTensor(out->inputs[0]->value().Mean());
                },
                [inv](GraphNode* out) {
                  GraphNode* in = out->inputs[0].get();
                  Tensor dx(in->value_shape(), out->grad().ToScalar() * inv);
                  in->AccumulateGrad(dx);
                });
}

Variable MeanRows(const Variable& x) {
  return MakeOp({x.node()},
                [](GraphNode* out) {
                  out->mutable_value() = rfed::MeanRows(out->inputs[0]->value());
                },
                [](GraphNode* out) {
                  GraphNode* in = out->inputs[0].get();
                  const Shape& in_shape = in->value_shape();
                  const int64_t rows = in_shape.dim(0), cols = in_shape.dim(1);
                  const float inv = 1.0f / static_cast<float>(rows);
                  Tensor dx(in_shape);
                  for (int64_t r = 0; r < rows; ++r) {
                    float* row = dx.data() + r * cols;
                    for (int64_t c = 0; c < cols; ++c) {
                      row[c] = out->grad().at(c) * inv;
                    }
                  }
                  in->AccumulateGrad(dx);
                });
}

Variable SquaredDistanceToConst(const Variable& x, const Tensor& target) {
  auto diff = std::make_shared<Tensor>();
  return MakeOp({x.node()},
                [target, diff](GraphNode* out) {
                  *diff = rfed::Sub(out->inputs[0]->value(), target);
                  out->mutable_value() = ScalarTensor(diff->SquaredNorm());
                },
                [diff](GraphNode* out) {
                  out->inputs[0]->AccumulateGrad(
                      rfed::Scale(*diff, 2.0f * out->grad().ToScalar()));
                });
}

Variable SquaredNorm(const Variable& x) {
  return MakeOp({x.node()},
                [](GraphNode* out) {
                  out->mutable_value() =
                      ScalarTensor(out->inputs[0]->value().SquaredNorm());
                },
                [](GraphNode* out) {
                  out->inputs[0]->AccumulateGrad(rfed::Scale(
                      out->inputs[0]->value(), 2.0f * out->grad().ToScalar()));
                });
}

namespace {

Variable GatherRowsImpl(const Variable& table,
                        std::shared_ptr<std::vector<int>> ids) {
  return MakeOp({table.node()},
                [ids](GraphNode* out) {
                  out->mutable_value() =
                      rfed::GatherRows(out->inputs[0]->value(), *ids);
                },
                [ids](GraphNode* out) {
                  GraphNode* in = out->inputs[0].get();
                  Tensor dtable(in->value_shape());
                  ScatterAddRows(out->grad(), *ids, &dtable);
                  in->AccumulateGrad(dtable);
                });
}

}  // namespace

Variable GatherRows(const Variable& table, const std::vector<int>& ids) {
  // Untagged ids change per batch but cannot be refreshed on replay.
  internal::MarkDynamic();
  return GatherRowsImpl(table, std::make_shared<std::vector<int>>(ids));
}

Variable GatherRows(const Variable& table, const std::vector<int>& ids,
                    int timestep) {
  auto ids_sp = std::make_shared<std::vector<int>>(ids);
  Variable out = GatherRowsImpl(table, ids_sp);
  out.node()->input_tag = GraphNode::InputTag::kTokenStep;
  out.node()->tag_index = timestep;
  out.node()->ids = std::move(ids_sp);
  return out;
}

Variable Conv2d(const Variable& x, const Variable& w, const Variable& b,
                const Conv2dSpec& spec) {
  return MakeOp({x.node(), w.node(), b.node()},
                [spec](GraphNode* out) {
                  out->mutable_value() = Conv2dForward(
                      out->inputs[0]->value(), out->inputs[1]->value(),
                      out->inputs[2]->value(), spec);
                },
                [spec](GraphNode* out) {
                  GraphNode* x = out->inputs[0].get();
                  GraphNode* w = out->inputs[1].get();
                  GraphNode* b = out->inputs[2].get();
                  Tensor dx, dw, db;
                  Conv2dBackward(out->grad(), x->value(), w->value(), spec,
                                 x->requires_grad() ? &dx : nullptr,
                                 w->requires_grad() ? &dw : nullptr,
                                 b->requires_grad() ? &db : nullptr);
                  if (x->requires_grad()) x->AccumulateGrad(dx);
                  if (w->requires_grad()) w->AccumulateGrad(dw);
                  if (b->requires_grad()) b->AccumulateGrad(db);
                });
}

Variable MaxPool2x2(const Variable& x) {
  auto argmax = std::make_shared<std::vector<int64_t>>();
  return MakeOp({x.node()},
                [argmax](GraphNode* out) {
                  out->mutable_value() =
                      MaxPool2x2Forward(out->inputs[0]->value(), argmax.get());
                },
                [argmax](GraphNode* out) {
                  GraphNode* in = out->inputs[0].get();
                  in->AccumulateGrad(MaxPool2x2Backward(
                      out->grad(), in->value_shape(), *argmax));
                });
}

Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int>& labels) {
  auto labels_sp = std::make_shared<std::vector<int>>(labels);
  auto dlogits = std::make_shared<Tensor>();
  Variable out =
      MakeOp({logits.node()},
             [labels_sp, dlogits](GraphNode* out) {
               out->mutable_value() = ScalarTensor(rfed::SoftmaxCrossEntropy(
                   out->inputs[0]->value(), *labels_sp, dlogits.get()));
             },
             [dlogits](GraphNode* out) {
               out->inputs[0]->AccumulateGrad(
                   rfed::Scale(*dlogits, out->grad().ToScalar()));
             });
  out.node()->input_tag = GraphNode::InputTag::kLabels;
  out.node()->ids = std::move(labels_sp);
  return out;
}

}  // namespace rfed::ag
