#ifndef RFED_AUTOGRAD_OPS_H_
#define RFED_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor_ops.h"

namespace rfed::ag {

// Differentiable ops. Each builds a GraphNode whose backward_fn applies
// the exact vector-Jacobian product of the forward kernel and whose
// forward_fn re-executes the forward in place (tape replay and
// checkpoint rematerialization; see autograd/tape.h). All forward math
// lives in tensor/tensor_ops.h. Gradients are validated against finite
// differences in tests/autograd_test.cc; replay bit-identity in
// tests/tape_test.cc.

// ---- Inputs ----
/// Batch-input leaf (requires_grad = false). When a TapeSession is
/// recording, the node is tagged so replayed steps rebind it to the
/// fresh batch's images — reshaped to the recorded shape if the caller
/// flattened them. Use for Batch::images; plain `Variable(t)` leaves
/// stay untagged and constant across replays.
Variable Input(const Tensor& value);

// ---- Arithmetic ----
/// Elementwise a + b. Backward: passes the upstream grad to both inputs.
Variable Add(const Variable& a, const Variable& b);
/// Elementwise a - b. Backward: +grad to a, -grad to b.
Variable Sub(const Variable& a, const Variable& b);
/// Elementwise (Hadamard) product. Backward: grad ⊙ other-input.
Variable Mul(const Variable& a, const Variable& b);
/// a * s for a compile-time-constant scalar s. Backward: grad * s.
Variable Scale(const Variable& a, float s);
/// Elementwise product with a constant mask (e.g. dropout). The mask is
/// captured at build time, so this op marks the recording tape
/// non-replayable — a fresh mask per step could not be refreshed.
Variable MulConst(const Variable& a, const Tensor& mask);

// ---- Activations ----
/// max(x, 0). Backward: grad where x > 0, else 0.
Variable Relu(const Variable& x);
/// tanh(x). Backward uses the saved output: grad * (1 - y²).
Variable Tanh(const Variable& x);
/// Logistic sigmoid. Backward uses the saved output: grad * y * (1 - y).
Variable Sigmoid(const Variable& x);

// ---- Linear algebra ----
/// a [m, k] · b [k, n] -> [m, n], via the dispatched GEMM kernels.
/// Backward: da = g · bᵀ, db = aᵀ · g.
Variable MatMul(const Variable& a, const Variable& b);
/// x [rows, cols] + bias [cols] broadcast over rows. Backward: grad to
/// x unchanged, column sums of grad to bias.
Variable AddRowBroadcast(const Variable& x, const Variable& bias);
/// x [rows, cols] * scale [cols] broadcast over rows. Backward mirrors
/// the product rule per column.
Variable MulRowBroadcast(const Variable& x, const Variable& scale);
/// Row-wise standardization: each row mapped to zero mean / unit
/// variance (x̂ = (x - μ_row) / sqrt(σ²_row + eps)). The normalization
/// core of layer norm; affine parameters are separate ops.
Variable NormalizeRows(const Variable& x, float eps = 1e-5f);
/// Fused relu(x · w + bias) — one node instead of the
/// MatMul/AddRowBroadcast/Relu chain, saving two intermediate tensors
/// per call. Bit-identical to the unfused chain: the epilogue applies
/// `+bias` then `max(·, 0)` per element in the same order, and the
/// backward issues the identical GEMM/row-sum kernels on an identical
/// masked gradient (y > 0 exactly iff the pre-activation > 0). See
/// docs/AUTOGRAD.md for the determinism argument.
Variable LinearBiasRelu(const Variable& x, const Variable& w,
                        const Variable& bias);

// ---- Shape ----
/// View-copy of x with a new shape (element counts must match).
/// Backward reshapes the grad back.
Variable Reshape(const Variable& x, Shape new_shape);
/// Column slice [begin, end) of a [rows, cols] tensor. Backward
/// scatters the grad back into the sliced columns.
Variable SliceCols(const Variable& x, int64_t begin, int64_t end);
/// Row-wise concat of equal-width matrices. Backward splits the grad
/// at a's row count.
Variable ConcatRows(const Variable& a, const Variable& b);

// ---- Reductions ----
/// Scalar sum of all elements. Backward broadcasts the upstream scalar.
Variable Sum(const Variable& x);
/// Scalar mean of all elements. Backward broadcasts grad / size.
Variable Mean(const Variable& x);
/// Mean over axis 0 of [rows, cols] -> [cols]; the feature-mean δ of a
/// mini-batch, the quantity the distribution regularizer acts on.
Variable MeanRows(const Variable& x);
/// Scalar squared L2 distance ||x - target||² against a constant
/// target. The difference is cached forward and reused by backward
/// (2 g (x - target)); replay recomputes it from fresh data.
Variable SquaredDistanceToConst(const Variable& x, const Tensor& target);
/// Scalar squared L2 norm ||x||². Backward: 2 g x.
Variable SquaredNorm(const Variable& x);

// ---- Layers ----
/// Embedding lookup rows of `table` ([V, D]) at `ids`. The ids are
/// captured by copy; since they change per batch, this overload marks
/// the recording tape non-replayable. Prefer the timestep overload for
/// token models under the tape.
Variable GatherRows(const Variable& table, const std::vector<int>& ids);
/// GatherRows tagged with the token-matrix column the ids came from:
/// replayed steps recompute ids from column `timestep` of the fresh
/// batch's tokens, keeping the tape replayable.
Variable GatherRows(const Variable& table, const std::vector<int>& ids,
                    int timestep);
/// NCHW convolution; w is [Cout, Cin*K*K] (im2col layout), b is [Cout].
/// Backward routes through Conv2dBackward's im2col GEMMs.
Variable Conv2d(const Variable& x, const Variable& w, const Variable& b,
                const Conv2dSpec& spec);
/// 2x2 max pooling (stride 2) over NCHW. The argmax indices are cached
/// forward and route the grad back; replay refreshes them.
Variable MaxPool2x2(const Variable& x);
/// Mean softmax cross-entropy over the batch (scalar output). The
/// labels and the softmax gradient are cached forward; replayed steps
/// refresh both from the fresh batch (the node is tagged kLabels).
Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int>& labels);

}  // namespace rfed::ag

#endif  // RFED_AUTOGRAD_OPS_H_
