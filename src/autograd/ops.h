#ifndef RFED_AUTOGRAD_OPS_H_
#define RFED_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor_ops.h"

namespace rfed::ag {

// Differentiable ops. Each builds a GraphNode whose backward_fn applies
// the exact vector-Jacobian product of the forward kernel; all forward
// math lives in tensor/tensor_ops.h. Gradients are validated against
// finite differences in tests/autograd_test.cc.

// ---- Arithmetic ----
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
/// Elementwise (Hadamard) product.
Variable Mul(const Variable& a, const Variable& b);
Variable Scale(const Variable& a, float s);
/// Elementwise product with a constant mask (e.g. dropout).
Variable MulConst(const Variable& a, const Tensor& mask);

// ---- Activations ----
Variable Relu(const Variable& x);
Variable Tanh(const Variable& x);
Variable Sigmoid(const Variable& x);

// ---- Linear algebra ----
Variable MatMul(const Variable& a, const Variable& b);
/// x [rows, cols] + bias [cols] broadcast over rows.
Variable AddRowBroadcast(const Variable& x, const Variable& bias);
/// x [rows, cols] * scale [cols] broadcast over rows.
Variable MulRowBroadcast(const Variable& x, const Variable& scale);
/// Row-wise standardization: each row mapped to zero mean / unit
/// variance (x̂ = (x - μ_row) / sqrt(σ²_row + eps)). The normalization
/// core of layer norm; affine parameters are separate ops.
Variable NormalizeRows(const Variable& x, float eps = 1e-5f);

// ---- Shape ----
Variable Reshape(const Variable& x, Shape new_shape);
/// Column slice [begin, end) of a [rows, cols] tensor.
Variable SliceCols(const Variable& x, int64_t begin, int64_t end);
/// Row-wise concat of equal-width matrices.
Variable ConcatRows(const Variable& a, const Variable& b);

// ---- Reductions ----
Variable Sum(const Variable& x);
Variable Mean(const Variable& x);
/// Mean over axis 0 of [rows, cols] -> [cols]; the feature-mean δ of a
/// mini-batch, the quantity the distribution regularizer acts on.
Variable MeanRows(const Variable& x);
/// Scalar squared L2 distance ||x - target||^2 against a constant target.
Variable SquaredDistanceToConst(const Variable& x, const Tensor& target);
/// Scalar squared L2 norm ||x||^2.
Variable SquaredNorm(const Variable& x);

// ---- Layers ----
/// Embedding lookup rows of `table` ([V, D]) at `ids`.
Variable GatherRows(const Variable& table, const std::vector<int>& ids);
/// NCHW convolution; w is [Cout, Cin*K*K] (im2col layout), b is [Cout].
Variable Conv2d(const Variable& x, const Variable& w, const Variable& b,
                const Conv2dSpec& spec);
Variable MaxPool2x2(const Variable& x);
/// Mean softmax cross-entropy over the batch (scalar output).
Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int>& labels);

}  // namespace rfed::ag

#endif  // RFED_AUTOGRAD_OPS_H_
