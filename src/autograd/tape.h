#ifndef RFED_AUTOGRAD_TAPE_H_
#define RFED_AUTOGRAD_TAPE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "tensor/buffer_pool.h"

namespace rfed::ag {

/// Execution strategy for one local-training bout (autograd/tape.h is
/// the implementation; docs/AUTOGRAD.md the prose).
struct TapeOptions {
  /// Record the step-0 graph and replay it (same nodes, same cached
  /// backward order, fresh batch data) for the bout's remaining steps.
  /// Off = rebuild the graph every step (still arena-pooled).
  bool static_graph = true;
  /// Drop intra-segment LSTM activations at each timestep boundary and
  /// rematerialize them just before their backward fires. Trades ~one
  /// extra forward pass per segment for O(1)-per-timestep peak
  /// activation memory. Bit-identical on/off by construction: the
  /// backward schedule and every kernel call are unchanged.
  bool checkpoint = false;
};

/// What a recorded graph is re-bound to on each replayed step. Pointers
/// alias the caller's Batch; only the fields the model consumed during
/// recording are read.
struct ReplayBindings {
  const Tensor* images = nullptr;
  const std::vector<std::vector<int>>* tokens = nullptr;
  const std::vector<int>* labels = nullptr;
};

/// Arena-backed tape for one client's local-training bout.
///
/// Construction activates the thread-local BufferPool scope and installs
/// the session as the thread's recorder; every op built until
/// destruction flows through it. The session owns up to two recorded
/// graphs keyed by batch signature (the last batch of an epoch can be
/// smaller, so full-size and remainder-size graphs alternate) and
/// replays whichever matches; a signature with no recorded graph — or
/// a graph poisoned by a non-replayable op (RNG-masked dropout, untagged
/// gathers) — falls back to recording.
///
/// Replay is bit-identical to a fresh build: the same tensor_ops run in
/// the same creation order over the same input bits, and the backward
/// pass reuses the exact execution order captured on the recording step.
/// Sessions are strictly per-thread (one bout per worker), so no state
/// here is shared across threads.
class TapeSession {
 public:
  explicit TapeSession(const TapeOptions& options);
  ~TapeSession();
  TapeSession(const TapeSession&) = delete;
  TapeSession& operator=(const TapeSession&) = delete;

  /// True iff a finalized, replayable graph matches the bindings'
  /// shapes (image dims, token matrix dims, label count).
  bool CanReplay(const ReplayBindings& bindings) const;

  /// Re-executes the matching recorded graph over fresh batch data and
  /// returns the loss Variable. Increments autograd.tape_reuse_hits.
  /// Requires CanReplay(bindings).
  Variable Replay(const ReplayBindings& bindings);

  /// Starts recording a new graph for the bindings' signature, evicting
  /// the least-recently-used graph if the two slots are full. Every op
  /// node created until EndRecord() is appended to the new graph.
  void BeginRecord(const ReplayBindings& bindings);

  /// Stops recording and finalizes the graph rooted at `loss`. The
  /// first Backward() on `loss` caches the backward execution order.
  void EndRecord(const Variable& loss);

  // ---- Hooks driven by Variable::Backward (via internal::) ----

  /// Runs the cached backward order when `root` is the loss of a graph
  /// whose order was already captured. Returns false (caller falls back
  /// to the DFS walk) otherwise.
  bool TryCachedBackward(GraphNode* root);
  /// Captures the DFS post-order of the just-recorded graph.
  void OnBackwardOrderComputed(GraphNode* root,
                               std::vector<GraphNode*> order);
  /// Rematerializes checkpoint-dropped values `node`'s backward reads.
  void EnsureMaterialized(GraphNode* node);
  /// Eagerly releases `node`'s grad — and its value when no external
  /// Variable still holds the node — once its backward has run.
  void AfterNodeBackward(GraphNode* node);

  // ---- Hooks driven by op construction / nn layers ----

  /// Appends a node created while recording; counts input consumers.
  void RecordNode(const std::shared_ptr<GraphNode>& node);
  /// Marks the graph under recording non-replayable (step-varying op).
  void MarkDynamic();
  /// Opens / closes one checkpoint segment (an LSTM timestep). At close,
  /// activations no external Variable holds are dropped and remembered
  /// for rematerialization. No-ops unless recording with checkpoint on.
  void BeginSegment();
  void CloseSegment();

  /// Replayed steps so far (this session).
  int64_t reuse_hits() const { return reuse_hits_; }
  /// Graphs recorded (this session).
  int64_t rebuilds() const { return rebuilds_; }

 private:
  struct Segment {
    int32_t first = 0;  ///< index of the segment's first node
    int32_t last = 0;   ///< one past the segment's last node
    std::vector<int32_t> drop;  ///< nodes whose values drop at close
  };
  struct Signature {
    std::vector<int64_t> image_dims;
    int64_t token_rows = 0;
    int64_t token_cols = 0;
    int64_t label_count = 0;
    bool operator==(const Signature& other) const {
      return image_dims == other.image_dims &&
             token_rows == other.token_rows &&
             token_cols == other.token_cols &&
             label_count == other.label_count;
    }
  };
  struct Graph {
    Signature signature;
    std::vector<std::shared_ptr<GraphNode>> nodes;
    std::vector<GraphNode*> backward_order;  ///< DFS post-order
    std::shared_ptr<GraphNode> loss;
    std::vector<Segment> segments;
    bool finalized = false;
    bool order_cached = false;
    bool replayable = true;
    int64_t last_used = 0;
  };

  static Signature MakeSignature(const ReplayBindings& bindings);
  Graph* FindGraph(const Signature& sig) const;
  void DropSegmentValues(Graph* g, const Segment& seg);
  void RematSegment(int32_t segment);

  TapeOptions options_;
  BufferPool::Scope pool_scope_;  // destroyed last: graph teardown pools
  std::vector<std::unique_ptr<Graph>> graphs_;
  Graph* current_ = nullptr;   // graph being recorded or replayed
  bool recording_ = false;
  int32_t open_segment_ = -1;  // index into current_->segments while open
  int64_t reuse_hits_ = 0;
  int64_t rebuilds_ = 0;
  int64_t clock_ = 0;  // LRU stamp
};

namespace internal {

/// The calling thread's active session, if any. Installed by the
/// TapeSession constructor, cleared by its destructor.
TapeSession* ActiveSession();

/// Called by ops.cc MakeOp for every node built; records it when the
/// active session is recording.
void NotifyNodeCreated(const std::shared_ptr<GraphNode>& node);

/// Called by ops whose closures capture step-varying state the tape
/// cannot refresh (dropout masks, untagged gather ids).
void MarkDynamic();

/// Checkpoint segment markers for nn/lstm.cc. No-ops unless the active
/// session is recording with checkpointing enabled.
void BeginSegment();
void CloseSegment();

/// Shared backward driver: seeds root's gradient with 1 and applies the
/// (reverse of the) post-order walk, with the session's remat/release
/// hooks when `session` is non-null. Used by both the DFS path and the
/// cached-order replay path so the two are the same code.
void RunBackwardPass(GraphNode* root, const std::vector<GraphNode*>& order,
                     TapeSession* session);

}  // namespace internal

}  // namespace rfed::ag

#endif  // RFED_AUTOGRAD_TAPE_H_
