#include "autograd/tape.h"

#include <utility>

#include "obs/metrics.h"
#include "util/check.h"

namespace rfed::ag {
namespace {

thread_local TapeSession* g_session = nullptr;

obs::Counter* ReuseHitsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("autograd.tape_reuse_hits");
  return c;
}

// True when no Variable outside the tape (and the input lists of later
// recorded nodes) still references the node: the session's own vector
// holds one count, each consumer's `inputs` entry one more. Anything
// above that is an external handle (model output, loss, an x_seq entry)
// whose value must stay materialized.
bool OnlyTapeHoldsNode(const GraphNode* node) {
  return node->weak_from_this().use_count() ==
         1 + static_cast<long>(node->consumers);
}

}  // namespace

TapeSession::TapeSession(const TapeOptions& options) : options_(options) {
  RFED_CHECK(g_session == nullptr)
      << "nested TapeSessions on one thread are not supported";
  g_session = this;
  // Touch the metric eagerly so every run's CSV has the same columns.
  ReuseHitsCounter();
}

TapeSession::~TapeSession() {
  // Graphs die before pool_scope_ (member order), so every recorded
  // tensor's storage is donated to the thread's freelists for the next
  // bout on this thread.
  graphs_.clear();
  g_session = nullptr;
}

TapeSession::Signature TapeSession::MakeSignature(
    const ReplayBindings& bindings) {
  Signature sig;
  if (bindings.images != nullptr && bindings.images->size() > 0) {
    sig.image_dims = bindings.images->shape().dims();
  }
  if (bindings.tokens != nullptr && !bindings.tokens->empty()) {
    sig.token_rows = static_cast<int64_t>(bindings.tokens->size());
    sig.token_cols = static_cast<int64_t>((*bindings.tokens)[0].size());
  }
  if (bindings.labels != nullptr) {
    sig.label_count = static_cast<int64_t>(bindings.labels->size());
  }
  return sig;
}

TapeSession::Graph* TapeSession::FindGraph(const Signature& sig) const {
  for (const auto& g : graphs_) {
    if (g->signature == sig) return g.get();
  }
  return nullptr;
}

bool TapeSession::CanReplay(const ReplayBindings& bindings) const {
  if (!options_.static_graph) return false;
  const Graph* g = FindGraph(MakeSignature(bindings));
  return g != nullptr && g->finalized && g->replayable;
}

void TapeSession::BeginRecord(const ReplayBindings& bindings) {
  RFED_CHECK(!recording_);
  const Signature sig = MakeSignature(bindings);
  // A stale graph for this signature (e.g. one poisoned by a dynamic
  // op) is rebuilt in place; otherwise evict the LRU slot. Two slots
  // cover the steady state: the epoch's full-size batch and its
  // remainder batch alternate without evicting each other.
  if (Graph* stale = FindGraph(sig)) {
    for (auto it = graphs_.begin(); it != graphs_.end(); ++it) {
      if (it->get() == stale) {
        graphs_.erase(it);
        break;
      }
    }
  } else if (graphs_.size() >= 2) {
    auto oldest = graphs_.begin();
    for (auto it = graphs_.begin(); it != graphs_.end(); ++it) {
      if ((*it)->last_used < (*oldest)->last_used) oldest = it;
    }
    graphs_.erase(oldest);
  }
  graphs_.push_back(std::make_unique<Graph>());
  current_ = graphs_.back().get();
  current_->signature = sig;
  current_->last_used = ++clock_;
  recording_ = true;
  ++rebuilds_;
}

void TapeSession::EndRecord(const Variable& loss) {
  RFED_CHECK(recording_);
  RFED_CHECK(loss.valid());
  recording_ = false;
  current_->loss = loss.node();
  current_->finalized = true;
}

void TapeSession::RecordNode(const std::shared_ptr<GraphNode>& node) {
  if (!recording_) return;
  node->tape_owned = true;
  node->segment = open_segment_;
  for (const auto& in : node->inputs) {
    if (in->tape_owned) ++in->consumers;
  }
  current_->nodes.push_back(node);
}

void TapeSession::MarkDynamic() {
  if (recording_) current_->replayable = false;
}

void TapeSession::BeginSegment() {
  if (!recording_ || !options_.checkpoint) return;
  RFED_CHECK_EQ(open_segment_, -1) << "checkpoint segments cannot nest";
  current_->segments.push_back(Segment{});
  open_segment_ = static_cast<int32_t>(current_->segments.size()) - 1;
  current_->segments.back().first =
      static_cast<int32_t>(current_->nodes.size());
}

void TapeSession::CloseSegment() {
  if (!recording_ || !options_.checkpoint) return;
  RFED_CHECK_GE(open_segment_, 0);
  Segment& seg = current_->segments[static_cast<size_t>(open_segment_)];
  seg.last = static_cast<int32_t>(current_->nodes.size());
  // Drop every intra-segment activation nothing outside the tape still
  // holds. Boundary values (h_t, c_t, the embedded x_t) are protected by
  // their live Variables; gates, slices and products are not and go
  // back to the pool until rematerialization.
  for (int32_t i = seg.first; i < seg.last; ++i) {
    GraphNode* node = current_->nodes[static_cast<size_t>(i)].get();
    if (node->forward_fn && node->input_tag == GraphNode::InputTag::kNone &&
        OnlyTapeHoldsNode(node)) {
      seg.drop.push_back(i);
    }
  }
  DropSegmentValues(current_, seg);
  open_segment_ = -1;
}

void TapeSession::DropSegmentValues(Graph* g, const Segment& seg) {
  for (int32_t i : seg.drop) {
    g->nodes[static_cast<size_t>(i)]->ReleaseValue();
  }
}

Variable TapeSession::Replay(const ReplayBindings& bindings) {
  Graph* g = FindGraph(MakeSignature(bindings));
  RFED_CHECK(g != nullptr && g->finalized && g->replayable);
  current_ = g;
  g->last_used = ++clock_;
  size_t next_segment = 0;
  for (size_t i = 0; i < g->nodes.size(); ++i) {
    GraphNode* node = g->nodes[i].get();
    node->backward_done = false;
    node->value_dropped = false;
    switch (node->input_tag) {
      case GraphNode::InputTag::kImages: {
        RFED_CHECK(bindings.images != nullptr);
        if (bindings.images->shape() == node->value_shape()) {
          node->mutable_value() = *bindings.images;
        } else {
          node->mutable_value() =
              bindings.images->Reshaped(node->value_shape());
        }
        break;
      }
      case GraphNode::InputTag::kTokenStep: {
        RFED_CHECK(bindings.tokens != nullptr);
        std::vector<int>& ids = *node->ids;
        const auto& tokens = *bindings.tokens;
        ids.resize(tokens.size());
        for (size_t b = 0; b < tokens.size(); ++b) {
          ids[b] = tokens[b][static_cast<size_t>(node->tag_index)];
        }
        node->forward_fn(node);
        break;
      }
      case GraphNode::InputTag::kLabels: {
        RFED_CHECK(bindings.labels != nullptr);
        *node->ids = *bindings.labels;
        node->forward_fn(node);
        break;
      }
      case GraphNode::InputTag::kNone: {
        if (node->forward_fn) node->forward_fn(node);
        break;
      }
    }
    // Re-drop checkpointed activations as each segment completes, so a
    // replayed forward has the same peak footprint as a recorded one.
    while (next_segment < g->segments.size() &&
           static_cast<int32_t>(i) + 1 ==
               g->segments[next_segment].last) {
      DropSegmentValues(g, g->segments[next_segment]);
      ++next_segment;
    }
  }
  ++reuse_hits_;
  ReuseHitsCounter()->Increment();
  return Variable(g->loss);
}

bool TapeSession::TryCachedBackward(GraphNode* root) {
  if (current_ == nullptr || !current_->order_cached ||
      current_->loss.get() != root) {
    return false;
  }
  internal::RunBackwardPass(root, current_->backward_order, this);
  return true;
}

void TapeSession::OnBackwardOrderComputed(GraphNode* root,
                                          std::vector<GraphNode*> order) {
  if (current_ == nullptr || !current_->finalized ||
      current_->loss.get() != root || current_->order_cached) {
    return;
  }
  current_->backward_order = std::move(order);
  current_->order_cached = true;
}

void TapeSession::EnsureMaterialized(GraphNode* node) {
  if (current_ == nullptr) return;
  if (node->value_dropped) {
    RematSegment(node->segment);
  }
  for (const auto& in : node->inputs) {
    if (in->value_dropped) RematSegment(in->segment);
  }
}

void TapeSession::RematSegment(int32_t segment) {
  RFED_CHECK_GE(segment, 0);
  const Segment& seg =
      current_->segments[static_cast<size_t>(segment)];
  // Forward closures run in creation order, so intra-segment data
  // dependencies resolve exactly as they did on the original forward.
  // Nodes whose backward already ran are dead — their values are never
  // read again — and are skipped.
  for (int32_t i = seg.first; i < seg.last; ++i) {
    GraphNode* node = current_->nodes[static_cast<size_t>(i)].get();
    if (node->value_dropped && !node->backward_done) {
      node->forward_fn(node);
      node->value_dropped = false;
    }
  }
}

void TapeSession::AfterNodeBackward(GraphNode* node) {
  if (!node->tape_owned) return;
  // Reverse topological order guarantees every consumer's backward has
  // run, so the gradient is dead; the value is too unless an external
  // Variable (the loss, a model output) still reads it.
  node->ReleaseGrad();
  if (OnlyTapeHoldsNode(node)) node->ReleaseValue();
}

namespace internal {

TapeSession* ActiveSession() { return g_session; }

void NotifyNodeCreated(const std::shared_ptr<GraphNode>& node) {
  if (g_session != nullptr) g_session->RecordNode(node);
}

void MarkDynamic() {
  if (g_session != nullptr) g_session->MarkDynamic();
}

void BeginSegment() {
  if (g_session != nullptr) g_session->BeginSegment();
}

void CloseSegment() {
  if (g_session != nullptr) g_session->CloseSegment();
}

void RunBackwardPass(GraphNode* root, const std::vector<GraphNode*>& order,
                     TapeSession* session) {
  root->grad().Fill(1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    GraphNode* node = *it;
    if (node->backward_fn && node->requires_grad() && node->has_grad()) {
      if (session != nullptr) session->EnsureMaterialized(node);
      node->backward_fn();
      node->backward_done = true;
      if (session != nullptr) session->AfterNodeBackward(node);
    }
  }
}

}  // namespace internal

}  // namespace rfed::ag
