#include "autograd/variable.h"

#include <unordered_set>

#include "obs/trace.h"
#include "util/check.h"

namespace rfed {

Tensor& GraphNode::grad() {
  if (!has_grad_) {
    grad_ = Tensor(value_.shape());
    has_grad_ = true;
  }
  return grad_;
}

void GraphNode::AccumulateGrad(const Tensor& g) {
  RFED_CHECK(g.shape() == value_.shape())
      << g.shape().ToString() << " vs " << value_.shape().ToString();
  grad().AddInPlace(g);
}

void GraphNode::ZeroGrad() {
  if (has_grad_) grad_.Fill(0.0f);
}

void Variable::Backward() {
  RFED_CHECK(valid());
  RFED_CHECK_EQ(node_->value().size(), 1)
      << "Backward() must start from a scalar";
  obs::TraceSpan trace_span("backward");

  // Iterative post-order DFS for a reverse topological order.
  std::vector<GraphNode*> order;
  std::unordered_set<GraphNode*> visited;
  struct Frame {
    GraphNode* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  if (visited.insert(node_.get()).second) {
    stack.push_back({node_.get(), 0});
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_input < frame.node->inputs.size()) {
      GraphNode* child = frame.node->inputs[frame.next_input++].get();
      if (visited.insert(child).second) stack.push_back({child, 0});
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  node_->grad().Fill(1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    GraphNode* node = *it;
    if (node->backward_fn && node->requires_grad() && node->has_grad()) {
      node->backward_fn();
    }
  }
}

}  // namespace rfed
