#include "autograd/variable.h"

#include <unordered_set>
#include <utility>

#include "autograd/tape.h"
#include "obs/trace.h"
#include "util/check.h"

namespace rfed {

Tensor& GraphNode::grad() {
  if (!has_grad_) {
    grad_ = Tensor(value_shape());
    has_grad_ = true;
  }
  return grad_;
}

void GraphNode::AccumulateGrad(const Tensor& g) {
  RFED_CHECK(g.shape() == value_shape())
      << g.shape().ToString() << " vs " << value_shape().ToString();
  grad().AddInPlace(g);
}

void GraphNode::ZeroGrad() {
  if (has_grad_) grad_.Fill(0.0f);
}

void GraphNode::ReleaseValue() {
  if (value_dropped) return;
  dropped_shape_ = value_.shape();
  value_ = Tensor();
  value_dropped = true;
}

void GraphNode::ReleaseGrad() {
  grad_ = Tensor();
  has_grad_ = false;
}

void Variable::Backward() {
  RFED_CHECK(valid());
  RFED_CHECK_EQ(node_->value().size(), 1)
      << "Backward() must start from a scalar";
  obs::TraceSpan trace_span("backward");

  ag::TapeSession* session = ag::internal::ActiveSession();
  // A replayed step reuses the execution order captured when its graph
  // was recorded — bit-identical by construction, and O(1) bookkeeping.
  if (session != nullptr && session->TryCachedBackward(node_.get())) return;

  // Iterative post-order DFS for a reverse topological order.
  std::vector<GraphNode*> order;
  std::unordered_set<GraphNode*> visited;
  struct Frame {
    GraphNode* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  if (visited.insert(node_.get()).second) {
    stack.push_back({node_.get(), 0});
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_input < frame.node->inputs.size()) {
      GraphNode* child = frame.node->inputs[frame.next_input++].get();
      if (visited.insert(child).second) stack.push_back({child, 0});
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  ag::internal::RunBackwardPass(node_.get(), order, session);
  if (session != nullptr) {
    session->OnBackwardOrderComputed(node_.get(), std::move(order));
  }
}

}  // namespace rfed
