#ifndef RFED_AUTOGRAD_VARIABLE_H_
#define RFED_AUTOGRAD_VARIABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace rfed {

/// One node of the computation graph. Holds the forward value, the
/// accumulated gradient, the parent nodes, a closure that pushes this
/// node's gradient into its parents, and (for ops built while an
/// ag::TapeSession records) a closure that recomputes the forward value
/// in place. Users interact with Variable below; ops in autograd/ops.h
/// construct the nodes, and autograd/tape.h replays them.
class GraphNode : public std::enable_shared_from_this<GraphNode> {
 public:
  /// Wraps `value` as a graph node. Leaves pass requires_grad directly;
  /// ops derive it from their inputs (ops.cc MakeOp).
  explicit GraphNode(Tensor value, bool requires_grad)
      : value_(std::move(value)), requires_grad_(requires_grad) {}

  /// The forward value. Empty ({0}-shaped) while checkpointing has
  /// dropped this node's activation; the tape rematerializes it before
  /// any backward closure reads it.
  const Tensor& value() const { return value_; }
  Tensor& mutable_value() { return value_; }

  /// True iff some gradient path reaches a parameter through this node.
  bool requires_grad() const { return requires_grad_; }

  /// Gradient with the same shape as the forward value; allocated
  /// (zero-filled) on first use. Valid even while the value itself is
  /// checkpoint-dropped — the shape is remembered across ReleaseValue().
  Tensor& grad();
  /// True once grad() storage exists for the current backward pass.
  bool has_grad() const { return has_grad_; }
  /// grad() += g. Checks g against the (possibly dropped) value shape.
  void AccumulateGrad(const Tensor& g);
  /// Zero-fills the gradient if one exists; keeps its storage.
  void ZeroGrad();

  /// Shape of the forward value, dropped or not.
  const Shape& value_shape() const {
    return value_dropped ? dropped_shape_ : value_.shape();
  }

  /// Frees the forward value's storage (to the active BufferPool scope),
  /// remembering its shape. Used by checkpointing at segment close and
  /// by the tape's eager release once a node's backward has run.
  void ReleaseValue();
  /// Frees the gradient's storage and marks the node grad-less, so the
  /// next backward pass starts from a fresh zero gradient.
  void ReleaseGrad();

  /// Parents in the computation graph (inputs of the producing op).
  std::vector<std::shared_ptr<GraphNode>> inputs;
  /// Propagates grad() into the inputs' grads. Null for leaves.
  std::function<void()> backward_fn;
  /// Recomputes value() from the inputs' current values, refreshing any
  /// op-internal caches (argmax, inv_std, dlogits). Set for every op
  /// node; null for leaves. Drives tape replay and checkpoint
  /// rematerialization.
  std::function<void(GraphNode*)> forward_fn;

  // ---- Tape bookkeeping (written by ag::TapeSession; see ----
  // ---- autograd/tape.h for the lifecycle)                ----

  /// How a recorded leaf/op is refreshed with the next step's batch.
  enum class InputTag : uint8_t {
    kNone = 0,   ///< pure op or constant leaf; replay just reruns forward_fn
    kImages,     ///< leaf bound to Batch::images (reshaped if recorded so)
    kTokenStep,  ///< gather over Batch::tokens column `tag_index`
    kLabels,     ///< op consuming Batch::labels via `ids`
  };
  InputTag input_tag = InputTag::kNone;
  /// Timestep for kTokenStep.
  int32_t tag_index = 0;
  /// Integer side input (gather ids / cross-entropy labels), shared with
  /// the forward/backward closures so replay can refresh it in place.
  std::shared_ptr<std::vector<int>> ids;
  /// True iff this node was recorded by the active TapeSession (and is
  /// therefore subject to replay, eager release and checkpointing).
  bool tape_owned = false;
  /// True while the forward value's storage is released.
  bool value_dropped = false;
  /// True once this node's backward ran in the current step's pass.
  bool backward_done = false;
  /// Checkpoint segment this node belongs to; -1 = outside any segment.
  int32_t segment = -1;
  /// Number of recorded nodes listing this node as an input. Together
  /// with the session's own reference this bounds the node's use_count
  /// when no external Variable holds it — the release-safety test.
  uint32_t consumers = 0;

 private:
  Tensor value_;
  Tensor grad_;
  Shape dropped_shape_;
  bool requires_grad_;
  bool has_grad_ = false;
};

/// Lightweight handle to a GraphNode with value semantics on the handle
/// (copies share the node). A Variable wraps every tensor flowing through
/// a model; parameters are leaf Variables with requires_grad = true.
class Variable {
 public:
  /// Invalid/empty handle.
  Variable() = default;

  /// Leaf node (no producer).
  explicit Variable(Tensor value, bool requires_grad = false)
      : node_(std::make_shared<GraphNode>(std::move(value), requires_grad)) {}

  /// Wraps an existing node (used by ops).
  explicit Variable(std::shared_ptr<GraphNode> node) : node_(std::move(node)) {}

  /// False for a default-constructed handle (e.g. a hook returning "no
  /// extra loss"). Every other accessor requires valid().
  bool valid() const { return node_ != nullptr; }

  /// The node's forward value (see GraphNode::value()).
  const Tensor& value() const { return node_->value(); }
  Tensor& mutable_value() { return node_->mutable_value(); }
  const Shape& shape() const { return node_->value().shape(); }

  /// True iff gradients flow through this Variable (GraphNode contract).
  bool requires_grad() const { return node_->requires_grad(); }
  /// The node's gradient; allocated zero-filled on first use.
  Tensor& grad() { return node_->grad(); }
  bool has_grad() const { return node_->has_grad(); }
  /// Zero-fills the gradient in place if one exists.
  void ZeroGrad() { node_->ZeroGrad(); }

  /// The underlying shared node (used by ops and the optimizers).
  std::shared_ptr<GraphNode> node() const { return node_; }

  /// Runs reverse-mode differentiation from this scalar node: seeds
  /// d(self)/d(self) = 1 and applies every producing op's backward in
  /// reverse topological order. Gradients *accumulate* into leaves, so
  /// callers can sum several losses by calling Backward on each. When an
  /// ag::TapeSession is active the recorded execution order is cached on
  /// the first pass and reused verbatim by replayed steps, and node
  /// storage is released eagerly as the pass retires it.
  void Backward();

 private:
  std::shared_ptr<GraphNode> node_;
};

}  // namespace rfed

#endif  // RFED_AUTOGRAD_VARIABLE_H_
