#ifndef RFED_AUTOGRAD_VARIABLE_H_
#define RFED_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace rfed {

/// One node of the dynamically built computation graph. Holds the forward
/// value, the accumulated gradient, the parent nodes and a closure that
/// pushes this node's gradient into its parents. Users interact with
/// Variable below; ops in autograd/ops.h construct the nodes.
class GraphNode {
 public:
  explicit GraphNode(Tensor value, bool requires_grad)
      : value_(std::move(value)), requires_grad_(requires_grad) {}

  const Tensor& value() const { return value_; }
  Tensor& mutable_value() { return value_; }

  bool requires_grad() const { return requires_grad_; }

  /// Gradient with the same shape as value(); allocated on first use.
  Tensor& grad();
  bool has_grad() const { return has_grad_; }
  void AccumulateGrad(const Tensor& g);
  void ZeroGrad();

  /// Parents in the computation graph (inputs of the producing op).
  std::vector<std::shared_ptr<GraphNode>> inputs;
  /// Propagates grad() into the inputs' grads. Null for leaves.
  std::function<void()> backward_fn;

 private:
  Tensor value_;
  Tensor grad_;
  bool requires_grad_;
  bool has_grad_ = false;
};

/// Lightweight handle to a GraphNode with value semantics on the handle
/// (copies share the node). A Variable wraps every tensor flowing through
/// a model; parameters are leaf Variables with requires_grad = true.
class Variable {
 public:
  /// Invalid/empty handle.
  Variable() = default;

  /// Leaf node (no producer).
  explicit Variable(Tensor value, bool requires_grad = false)
      : node_(std::make_shared<GraphNode>(std::move(value), requires_grad)) {}

  /// Wraps an existing node (used by ops).
  explicit Variable(std::shared_ptr<GraphNode> node) : node_(std::move(node)) {}

  bool valid() const { return node_ != nullptr; }

  const Tensor& value() const { return node_->value(); }
  Tensor& mutable_value() { return node_->mutable_value(); }
  const Shape& shape() const { return node_->value().shape(); }

  bool requires_grad() const { return node_->requires_grad(); }
  Tensor& grad() { return node_->grad(); }
  bool has_grad() const { return node_->has_grad(); }
  void ZeroGrad() { node_->ZeroGrad(); }

  std::shared_ptr<GraphNode> node() const { return node_; }

  /// Runs reverse-mode differentiation from this scalar node: seeds
  /// d(self)/d(self) = 1 and applies every producing op's backward in
  /// reverse topological order. Gradients *accumulate* into leaves, so
  /// callers can sum several losses by calling Backward on each.
  void Backward();

 private:
  std::shared_ptr<GraphNode> node_;
};

}  // namespace rfed

#endif  // RFED_AUTOGRAD_VARIABLE_H_
