#ifndef RFED_ANALYSIS_TSNE_H_
#define RFED_ANALYSIS_TSNE_H_

#include "tensor/tensor.h"
#include "util/rng.h"

namespace rfed {

/// Exact (O(n^2)) t-SNE, sufficient for the few hundred feature vectors
/// of the Fig. 1 reproduction: it embeds the last-FC features of samples
/// from several clients into 2-d so the bench can show that client
/// feature distributions align under IID data and drift apart under
/// non-IID data.
struct TsneOptions {
  double perplexity = 20.0;
  int iterations = 400;
  /// Plain gradient descent with momentum (no adaptive gains), so the
  /// stable step range is smaller than Barnes-Hut implementations use.
  double learning_rate = 20.0;
  double momentum = 0.8;
  /// Early-exaggeration factor applied for the first quarter of the run.
  double early_exaggeration = 4.0;
};

/// Embeds `features` [n, d] into [n, 2]. Deterministic given *rng's seed.
Tensor TsneEmbed(const Tensor& features, const TsneOptions& options, Rng* rng);

}  // namespace rfed

#endif  // RFED_ANALYSIS_TSNE_H_
