#ifndef RFED_ANALYSIS_STATS_H_
#define RFED_ANALYSIS_STATS_H_

#include <vector>

namespace rfed {

/// Descriptive statistics over per-client accuracies etc. (fairness
/// evaluation, Fig. 11, reports the distribution across clients with
/// emphasis on the worst ones).

/// q-quantile (0 <= q <= 1) by linear interpolation; input need not be
/// sorted. NaN values must be removed by the caller.
double Quantile(std::vector<double> values, double q);

/// Mean of the k smallest values (the "worst clients" statistic).
double WorstKMean(std::vector<double> values, int k);

double MinOf(const std::vector<double>& values);
double MaxOf(const std::vector<double>& values);

/// Drops NaN entries.
std::vector<double> DropNan(const std::vector<double>& values);

/// Pearson correlation of two equal-length series (used by tests to
/// check monotone relationships, e.g. error decay vs 1/t).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace rfed

#endif  // RFED_ANALYSIS_STATS_H_
