#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace rfed {

double Quantile(std::vector<double> values, double q) {
  RFED_CHECK(!values.empty());
  RFED_CHECK_GE(q, 0.0);
  RFED_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double WorstKMean(std::vector<double> values, int k) {
  RFED_CHECK_GT(k, 0);
  RFED_CHECK_LE(static_cast<size_t>(k), values.size());
  std::partial_sort(values.begin(), values.begin() + k, values.end());
  double sum = 0.0;
  for (int i = 0; i < k; ++i) sum += values[static_cast<size_t>(i)];
  return sum / static_cast<double>(k);
}

double MinOf(const std::vector<double>& values) {
  RFED_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double MaxOf(const std::vector<double>& values) {
  RFED_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

std::vector<double> DropNan(const std::vector<double>& values) {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    if (!std::isnan(v)) out.push_back(v);
  }
  return out;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  RFED_CHECK_EQ(a.size(), b.size());
  RFED_CHECK_GE(a.size(), 2u);
  const double n = static_cast<double>(a.size());
  double mean_a = 0.0, mean_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  RFED_CHECK_GT(var_a, 0.0);
  RFED_CHECK_GT(var_b, 0.0);
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace rfed
