#include "analysis/classification.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace rfed {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<size_t>(num_classes) * num_classes, 0) {
  RFED_CHECK_GT(num_classes, 0);
}

void ConfusionMatrix::Add(int label, int prediction) {
  RFED_CHECK_GE(label, 0);
  RFED_CHECK_LT(label, num_classes_);
  RFED_CHECK_GE(prediction, 0);
  RFED_CHECK_LT(prediction, num_classes_);
  ++counts_[static_cast<size_t>(label) * num_classes_ + prediction];
  ++total_;
}

void ConfusionMatrix::AddAll(const std::vector<int>& labels,
                             const std::vector<int>& predictions) {
  RFED_CHECK_EQ(labels.size(), predictions.size());
  for (size_t i = 0; i < labels.size(); ++i) Add(labels[i], predictions[i]);
}

int64_t ConfusionMatrix::Count(int label, int prediction) const {
  RFED_CHECK_GE(label, 0);
  RFED_CHECK_LT(label, num_classes_);
  RFED_CHECK_GE(prediction, 0);
  RFED_CHECK_LT(prediction, num_classes_);
  return counts_[static_cast<size_t>(label) * num_classes_ + prediction];
}

double ConfusionMatrix::Accuracy() const {
  RFED_CHECK_GT(total_, 0);
  int64_t correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += Count(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::Precision(int cls) const {
  int64_t predicted = 0;
  for (int label = 0; label < num_classes_; ++label) {
    predicted += Count(label, cls);
  }
  if (predicted == 0) return std::nan("");
  return static_cast<double>(Count(cls, cls)) /
         static_cast<double>(predicted);
}

double ConfusionMatrix::Recall(int cls) const {
  int64_t occurred = 0;
  for (int pred = 0; pred < num_classes_; ++pred) {
    occurred += Count(cls, pred);
  }
  if (occurred == 0) return std::nan("");
  return static_cast<double>(Count(cls, cls)) /
         static_cast<double>(occurred);
}

double ConfusionMatrix::F1(int cls) const {
  const double p = Precision(cls);
  const double r = Recall(cls);
  if (std::isnan(r)) return std::nan("");
  // Class occurred but was never predicted: zero precision by convention.
  const double precision = std::isnan(p) ? 0.0 : p;
  if (precision + r == 0.0) return 0.0;
  return 2.0 * precision * r / (precision + r);
}

double ConfusionMatrix::MacroF1() const {
  double sum = 0.0;
  int n = 0;
  for (int c = 0; c < num_classes_; ++c) {
    const double f1 = F1(c);
    if (!std::isnan(f1)) {
      sum += f1;
      ++n;
    }
  }
  RFED_CHECK_GT(n, 0);
  return sum / n;
}

double ConfusionMatrix::WorstClassRecall() const {
  double worst = 1.0;
  bool any = false;
  for (int c = 0; c < num_classes_; ++c) {
    const double r = Recall(c);
    if (!std::isnan(r)) {
      worst = std::min(worst, r);
      any = true;
    }
  }
  RFED_CHECK(any);
  return worst;
}

std::string ConfusionMatrix::ToString() const {
  std::string out = "confusion (rows = labels, cols = predictions)\n";
  for (int label = 0; label < num_classes_; ++label) {
    for (int pred = 0; pred < num_classes_; ++pred) {
      out += StrFormat("%6lld", static_cast<long long>(Count(label, pred)));
    }
    out += "\n";
  }
  return out;
}

BootstrapInterval BootstrapMeanInterval(const std::vector<double>& values,
                                        double confidence, int resamples,
                                        Rng* rng) {
  RFED_CHECK(!values.empty());
  RFED_CHECK_GT(confidence, 0.0);
  RFED_CHECK_LT(confidence, 1.0);
  RFED_CHECK_GT(resamples, 0);
  const int n = static_cast<int>(values.size());

  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= n;

  std::vector<double> means(static_cast<size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
      acc += values[static_cast<size_t>(rng->UniformInt(n))];
    }
    means[static_cast<size_t>(r)] = acc / n;
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  auto pick = [&means](double q) {
    const double pos = q * static_cast<double>(means.size() - 1);
    return means[static_cast<size_t>(std::llround(pos))];
  };
  return BootstrapInterval{mean, pick(alpha), pick(1.0 - alpha)};
}

}  // namespace rfed
