#include "analysis/tsne.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace rfed {
namespace {

/// Row-stochastic conditional Gaussian affinities with per-point sigma
/// found by binary search on the perplexity.
std::vector<double> ConditionalAffinities(const std::vector<double>& sq_dist,
                                          int64_t n, double perplexity) {
  std::vector<double> p(static_cast<size_t>(n * n), 0.0);
  const double target_entropy = std::log(perplexity);
  std::vector<double> row(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double beta = 1.0, beta_min = 0.0, beta_max = 1e30;
    for (int iter = 0; iter < 64; ++iter) {
      double sum = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        row[static_cast<size_t>(j)] =
            j == i ? 0.0
                   : std::exp(-beta * sq_dist[static_cast<size_t>(i * n + j)]);
        sum += row[static_cast<size_t>(j)];
      }
      if (sum <= 0.0) sum = 1e-12;
      double entropy = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        const double pj = row[static_cast<size_t>(j)] / sum;
        if (pj > 1e-12) entropy -= pj * std::log(pj);
        row[static_cast<size_t>(j)] = pj;
      }
      if (std::fabs(entropy - target_entropy) < 1e-5) break;
      if (entropy > target_entropy) {
        beta_min = beta;
        beta = beta_max > 1e29 ? beta * 2.0 : 0.5 * (beta + beta_max);
      } else {
        beta_max = beta;
        beta = 0.5 * (beta + beta_min);
      }
    }
    for (int64_t j = 0; j < n; ++j) {
      p[static_cast<size_t>(i * n + j)] = row[static_cast<size_t>(j)];
    }
  }
  return p;
}

}  // namespace

Tensor TsneEmbed(const Tensor& features, const TsneOptions& options,
                 Rng* rng) {
  RFED_CHECK_EQ(features.rank(), 2);
  const int64_t n = features.dim(0);
  const int64_t d = features.dim(1);
  RFED_CHECK_GE(n, 4);
  RFED_CHECK_GT(options.perplexity, 1.0);
  RFED_CHECK_LT(options.perplexity, static_cast<double>(n));

  // Pairwise squared distances in feature space.
  std::vector<double> sq_dist(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      const float* a = features.data() + i * d;
      const float* b = features.data() + j * d;
      for (int64_t k = 0; k < d; ++k) {
        const double diff = static_cast<double>(a[k]) - b[k];
        acc += diff * diff;
      }
      sq_dist[static_cast<size_t>(i * n + j)] = acc;
      sq_dist[static_cast<size_t>(j * n + i)] = acc;
    }
  }

  // Symmetrized joint affinities.
  std::vector<double> p = ConditionalAffinities(sq_dist, n, options.perplexity);
  std::vector<double> joint(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      joint[static_cast<size_t>(i * n + j)] =
          std::max((p[static_cast<size_t>(i * n + j)] +
                    p[static_cast<size_t>(j * n + i)]) /
                       (2.0 * static_cast<double>(n)),
                   1e-12);
    }
  }

  // Gradient descent on the 2-d embedding.
  Tensor y = Tensor::Normal(Shape{n, 2}, 0.0f, 1e-2f, rng);
  Tensor velocity(Shape{n, 2});
  std::vector<double> q(static_cast<size_t>(n * n));
  const int exaggeration_end = options.iterations / 4;
  for (int iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < exaggeration_end ? options.early_exaggeration : 1.0;
    // Student-t affinities in embedding space.
    double q_sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) {
          q[static_cast<size_t>(i * n + j)] = 0.0;
          continue;
        }
        const double dy0 = y.at2(i, 0) - y.at2(j, 0);
        const double dy1 = y.at2(i, 1) - y.at2(j, 1);
        const double w = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
        q[static_cast<size_t>(i * n + j)] = w;
        q_sum += w;
      }
    }
    for (int64_t i = 0; i < n; ++i) {
      double g0 = 0.0, g1 = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double w = q[static_cast<size_t>(i * n + j)];
        const double qij = std::max(w / q_sum, 1e-12);
        const double coeff =
            4.0 *
            (exaggeration * joint[static_cast<size_t>(i * n + j)] - qij) * w;
        g0 += coeff * (y.at2(i, 0) - y.at2(j, 0));
        g1 += coeff * (y.at2(i, 1) - y.at2(j, 1));
      }
      velocity.at2(i, 0) = static_cast<float>(
          options.momentum * velocity.at2(i, 0) - options.learning_rate * g0);
      velocity.at2(i, 1) = static_cast<float>(
          options.momentum * velocity.at2(i, 1) - options.learning_rate * g1);
    }
    y.AddInPlace(velocity);
  }
  return y;
}

}  // namespace rfed
