#ifndef RFED_ANALYSIS_CLASSIFICATION_H_
#define RFED_ANALYSIS_CLASSIFICATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace rfed {

/// Confusion matrix and per-class quality metrics. On label-skewed
/// federated splits the headline accuracy hides which classes the global
/// model sacrificed; these diagnostics make the per-class damage of
/// non-IID training visible (the class-level view behind Fig. 1's
/// feature story).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  /// Adds one (true label, predicted label) observation.
  void Add(int label, int prediction);
  /// Adds a batch of observations.
  void AddAll(const std::vector<int>& labels,
              const std::vector<int>& predictions);

  int num_classes() const { return num_classes_; }
  int64_t total() const { return total_; }
  /// Count of examples with true label `label` predicted as `prediction`.
  int64_t Count(int label, int prediction) const;

  double Accuracy() const;
  /// Precision for one class (NaN when the class was never predicted).
  double Precision(int cls) const;
  /// Recall for one class (NaN when the class never occurred).
  double Recall(int cls) const;
  /// F1 for one class (NaN when precision+recall is undefined/zero).
  double F1(int cls) const;
  /// Unweighted mean F1 over classes that occurred.
  double MacroF1() const;
  /// Recall of the weakest class that occurred (the "sacrificed class"
  /// statistic for non-IID training).
  double WorstClassRecall() const;

  std::string ToString() const;

 private:
  int num_classes_;
  int64_t total_ = 0;
  std::vector<int64_t> counts_;  // row-major [label, prediction]
};

/// Percentile bootstrap confidence interval for the mean of `values`
/// (e.g. per-seed accuracies): resamples with replacement `resamples`
/// times. Deterministic given the Rng seed.
struct BootstrapInterval {
  double mean = 0.0;
  double lower = 0.0;  ///< (1-confidence)/2 percentile
  double upper = 0.0;  ///< 1-(1-confidence)/2 percentile
};
BootstrapInterval BootstrapMeanInterval(const std::vector<double>& values,
                                        double confidence, int resamples,
                                        Rng* rng);

}  // namespace rfed

#endif  // RFED_ANALYSIS_CLASSIFICATION_H_
