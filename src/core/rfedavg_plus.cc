#include "core/rfedavg.h"

#include "core/mmd.h"
#include "util/check.h"

namespace rfed {

RFedAvgPlus::RFedAvgPlus(const FlConfig& config, const RegularizerOptions& reg,
                         const Dataset* train_data,
                         std::vector<ClientView> clients,
                         const ModelFactory& model_factory)
    : FederatedAlgorithm("rFedAvg+", config, train_data, std::move(clients),
                         model_factory),
      reg_(reg),
      store_(num_clients(), reg.regularize_logits
                                ? raw_model()->num_classes()
                                : raw_model()->feature_dim()),
      noise_rng_(config.seed ^ 0x7f4a7c159e3779b9ULL) {
  RFED_CHECK_GE(reg_.lambda, 0.0);
}

void RFedAvgPlus::OnRoundStart(int round, const std::vector<int>& selected) {
  // Server ships each sampled client only its leave-one-out averaged map
  // δ̄^{-k} (Algorithm 2, line 10 input): one map per client, O(d N)
  // total instead of rFedAvg's O(d N^2).
  for (size_t i = 0; i < selected.size(); ++i) {
    comm().Download(store_.BroadcastBytesAveraged());
  }
}

Variable RFedAvgPlus::ExtraLoss(int client, const ModelOutput& output,
                                const Batch& batch) {
  if (reg_.lambda == 0.0) return Variable();
  const Variable& rep =
      reg_.regularize_logits ? output.logits : output.features;
  Variable r = AveragedMmdRegularizer(rep, store_.LeaveOneOutMean(client));
  return ag::Scale(r, static_cast<float>(reg_.lambda));
}

void RFedAvgPlus::OnRoundEnd(int round, const std::vector<int>& selected) {
  // Second synchronization (Algorithm 2, lines 13-16): the server sends
  // the freshly aggregated global model back; every sampled client
  // recomputes its map with that *consistent* model and uploads it.
  for (int k : selected) {
    ChargeModelDownload();
    Tensor delta =
        ComputeClientDelta(k, global_state(), reg_.regularize_logits);
    ApplyDpNoise(reg_.dp, &delta, &noise_rng_);
    store_.Update(k, std::move(delta));
    comm().Upload(store_.MapBytes());
  }
}

}  // namespace rfed
