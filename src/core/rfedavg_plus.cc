#include "core/rfedavg.h"

#include "core/mmd.h"
#include "fl/checkpoint.h"
#include "obs/trace.h"
#include "util/check.h"

namespace rfed {

RFedAvgPlus::RFedAvgPlus(const FlConfig& config, const RegularizerOptions& reg,
                         const Dataset* train_data,
                         std::vector<ClientView> clients,
                         const ModelFactory& model_factory)
    : FederatedAlgorithm("rFedAvg+", config, train_data, std::move(clients),
                         model_factory),
      reg_(reg),
      store_(num_clients(), reg.regularize_logits
                                ? raw_model()->num_classes()
                                : raw_model()->feature_dim()),
      noise_rng_(config.seed ^ 0x7f4a7c159e3779b9ULL) {
  RFED_CHECK_GE(reg_.lambda, 0.0);
}

RFedAvgPlus::RFedAvgPlus(const FlConfig& config, const RegularizerOptions& reg,
                         const ClientPool* pool,
                         const ModelFactory& model_factory)
    : FederatedAlgorithm("rFedAvg+", config, pool, model_factory),
      reg_(reg),
      store_(DeltaMapStore::Sparse(num_clients(),
                                   reg.regularize_logits
                                       ? raw_model()->num_classes()
                                       : raw_model()->feature_dim())),
      noise_rng_(config.seed ^ 0x7f4a7c159e3779b9ULL) {
  RFED_CHECK_GE(reg_.lambda, 0.0);
}

void RFedAvgPlus::OnRoundStart(int round, const std::vector<int>& selected) {
  // Server ships each sampled client only its leave-one-out averaged map
  // δ̄^{-k} (Algorithm 2, line 10 input): one map per client, O(d N)
  // total instead of rFedAvg's O(d N^2). A client whose copy is lost
  // trains without the regularizer this round.
  obs::TraceSpan trace_span("map_broadcast");
  map_received_.clear();
  for (int k : selected) {
    if (channel().Download(store_.BroadcastBytesAveraged(),
                           channel_kind::kMap)) {
      map_received_.insert(k);
    }
  }
}

Variable RFedAvgPlus::ExtraLoss(int client, const ModelOutput& output,
                                const Batch& batch) {
  if (reg_.lambda == 0.0) return Variable();
  // On a worker replica the context blob carries the delivery flag and
  // leave-one-out mean the server-side store would have provided.
  const bool received =
      ctx_active_ ? ctx_received_
                  : map_received_.find(client) != map_received_.end();
  if (!received) return Variable();
  obs::TraceSpan trace_span("mmd_penalty");
  const Variable& rep =
      reg_.regularize_logits ? output.logits : output.features;
  Variable r = AveragedMmdRegularizer(
      rep, ctx_active_ ? ctx_loo_ : store_.LeaveOneOutMean(client));
  return ag::Scale(r, static_cast<float>(reg_.lambda));
}

void RFedAvgPlus::EncodeTrainContext(int round, int client,
                                     CheckpointWriter* writer) const {
  const bool received = map_received_.find(client) != map_received_.end();
  writer->WriteBool(received);
  if (received) writer->WriteTensor(store_.LeaveOneOutMean(client));
}

void RFedAvgPlus::DecodeTrainContext(int round, int client,
                                     CheckpointReader* reader) {
  ctx_active_ = true;
  ctx_received_ = reader->ReadBool();
  if (ctx_received_) ctx_loo_ = reader->ReadTensor();
}

void RFedAvgPlus::OnRoundEnd(int round, const std::vector<int>& selected) {
  // Second synchronization (Algorithm 2, lines 13-16): the server sends
  // the freshly aggregated global model back; every surviving client
  // recomputes its map with that *consistent* model and uploads it. Both
  // legs ride the fault channel: a client that never receives the new
  // model cannot recompute, and a map upload lost in flight leaves the
  // store holding that client's previous map — the server's averaged map
  // is always the mean of the maps it actually *received*.
  obs::TraceSpan trace_span("map_sync");
  for (int k : selected) {
    if (!ChargeModelDownload()) continue;
    Tensor delta =
        ComputeClientDelta(k, global_state(), reg_.regularize_logits);
    ApplyDpNoise(reg_.dp, &delta, &noise_rng_);
    // Arriving maps pass the server's non-finite screen before entering
    // the store (a poisoned global model — possible with validation off
    // — would otherwise spread NaN maps to every client).
    if (channel().Upload(store_.MapBytes(), channel_kind::kMap) &&
        ScreenMap(k, delta)) {
      store_.Update(k, std::move(delta));
    }
  }
}

void RFedAvgPlus::SaveExtraState(CheckpointWriter* writer) const {
  if (store_.sparse()) {
    // Pool-mode checkpoints save only the touched maps (ascending id);
    // everything else is the implicit zero δ_0.
    const std::vector<int> ids = store_.TouchedClients();
    writer->WriteU32(static_cast<uint32_t>(ids.size()));
    for (int id : ids) {
      writer->WriteI32(id);
      writer->WriteTensor(store_.Get(id));
    }
  } else {
    writer->WriteU32(static_cast<uint32_t>(store_.num_clients()));
    for (const Tensor& delta : store_.All()) writer->WriteTensor(delta);
  }
  writer->WriteRng(noise_rng_.SaveState());
}

void RFedAvgPlus::LoadExtraState(CheckpointReader* reader) {
  const uint32_t count = reader->ReadU32();
  if (store_.sparse()) {
    store_.Reset();
    for (uint32_t i = 0; i < count; ++i) {
      const int id = reader->ReadI32();
      RFED_CHECK(id >= 0 && id < store_.num_clients())
          << "checkpoint names client id " << id << " outside the pool of "
          << store_.num_clients() << " clients";
      store_.Update(id, reader->ReadTensor());
    }
  } else {
    RFED_CHECK_EQ(count, static_cast<uint32_t>(store_.num_clients()))
        << "checkpoint is for a different client count";
    for (int k = 0; k < store_.num_clients(); ++k) {
      store_.Update(k, reader->ReadTensor());
    }
  }
  noise_rng_.LoadState(reader->ReadRng());
}

}  // namespace rfed
