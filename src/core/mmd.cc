#include "core/mmd.h"

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace rfed {

float MmdSquared(const Tensor& delta_a, const Tensor& delta_b) {
  RFED_CHECK(delta_a.shape() == delta_b.shape());
  Tensor diff = Sub(delta_a, delta_b);
  return diff.SquaredNorm();
}

float MmdSquaredSamples(const Tensor& features_a, const Tensor& features_b) {
  return MmdSquared(MeanRows(features_a), MeanRows(features_b));
}

Variable PairwiseMmdRegularizer(const Variable& features,
                                const std::vector<Tensor>& targets) {
  RFED_CHECK(!targets.empty());
  Variable v = ag::MeanRows(features);
  Variable total = ag::SquaredDistanceToConst(v, targets[0]);
  for (size_t j = 1; j < targets.size(); ++j) {
    total = ag::Add(total, ag::SquaredDistanceToConst(v, targets[j]));
  }
  return ag::Scale(total, 1.0f / static_cast<float>(targets.size()));
}

Variable AveragedMmdRegularizer(const Variable& features,
                                const Tensor& avg_target) {
  return ag::SquaredDistanceToConst(ag::MeanRows(features), avg_target);
}

Tensor MeanDelta(const std::vector<Tensor>& deltas) {
  RFED_CHECK(!deltas.empty());
  Tensor mean(deltas[0].shape());
  for (const Tensor& d : deltas) mean.AddInPlace(d);
  mean.MulInPlace(1.0f / static_cast<float>(deltas.size()));
  return mean;
}

Tensor LeaveOneOutMeanDelta(const std::vector<Tensor>& deltas, int excluded) {
  RFED_CHECK_GE(excluded, 0);
  RFED_CHECK_LT(excluded, static_cast<int>(deltas.size()));
  RFED_CHECK_GT(deltas.size(), 1u);
  Tensor mean(deltas[0].shape());
  for (size_t j = 0; j < deltas.size(); ++j) {
    if (static_cast<int>(j) == excluded) continue;
    mean.AddInPlace(deltas[j]);
  }
  mean.MulInPlace(1.0f / static_cast<float>(deltas.size() - 1));
  return mean;
}

}  // namespace rfed
