#include "core/dp_noise.h"

#include <cmath>

#include "util/check.h"

namespace rfed {

void ApplyDpNoise(const DpNoiseConfig& config, Tensor* delta, Rng* rng) {
  if (config.sigma == 0.0) return;
  RFED_CHECK_GT(config.clip, 0.0);
  RFED_CHECK_GT(config.batch_size, 0);

  // L2 clipping to norm C0.
  const double norm =
      std::sqrt(static_cast<double>(delta->SquaredNorm()));
  if (norm > config.clip) {
    delta->MulInPlace(static_cast<float>(config.clip / norm));
  }

  // Additive Gaussian noise scaled by the lot size.
  const double stddev =
      config.sigma * config.clip / static_cast<double>(config.batch_size);
  for (int64_t i = 0; i < delta->size(); ++i) {
    delta->at(i) += static_cast<float>(rng->Normal(0.0, stddev));
  }
}

}  // namespace rfed
