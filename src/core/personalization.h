#ifndef RFED_CORE_PERSONALIZATION_H_
#define RFED_CORE_PERSONALIZATION_H_

#include <vector>

#include "fl/algorithm.h"

namespace rfed {

/// Personalized federated learning via local fine-tuning — the paper's
/// conclusion names "personalized federated learning ... combined with a
/// centralized training framework" as the follow-up direction; this is
/// the standard FedAvg+fine-tune instantiation: every client copies the
/// trained global model and runs a few local SGD steps on its own data
/// before evaluating on its private test slice.
struct PersonalizationOptions {
  int fine_tune_steps = 10;
  double lr = 0.01;
  int batch_size = 16;
  uint64_t seed = 1;
};

struct PersonalizationReport {
  /// Per-client accuracy of the shared global model (NaN when the client
  /// has no test slice).
  std::vector<double> global_accuracy;
  /// Per-client accuracy after local fine-tuning.
  std::vector<double> personalized_accuracy;

  /// Means over clients with test slices.
  double MeanGlobal() const;
  double MeanPersonalized() const;
};

/// Fine-tunes `algorithm`'s current global model on every client and
/// evaluates before/after on the clients' test slices (taken from
/// `views` against `test_data`). The algorithm's global state is left
/// untouched.
PersonalizationReport PersonalizeAndEvaluate(
    FederatedAlgorithm* algorithm, const Dataset& train_data,
    const Dataset& test_data, const std::vector<ClientView>& views,
    const PersonalizationOptions& options);

}  // namespace rfed

#endif  // RFED_CORE_PERSONALIZATION_H_
