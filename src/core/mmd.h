#ifndef RFED_CORE_MMD_H_
#define RFED_CORE_MMD_H_

#include <vector>

#include "autograd/ops.h"
#include "tensor/tensor.h"

namespace rfed {

/// Maximum mean discrepancy utilities (paper Eq. 2). The mapping φ is the
/// model's feature layer (a deep network), so the empirical MMD between
/// clients i and j reduces to the distance of their feature means
/// δ_i = mean_x φ(x_i), δ_j = mean_x φ(x_j):
///   MMD^2(x_i, x_j) = || δ_i - δ_j ||^2.

/// Squared MMD between two precomputed feature means.
float MmdSquared(const Tensor& delta_a, const Tensor& delta_b);

/// Squared MMD between two raw feature matrices [n_a, d], [n_b, d].
float MmdSquaredSamples(const Tensor& features_a, const Tensor& features_b);

/// Differentiable distribution regularizer r_k (paper Eq. 5) of one
/// mini-batch: with v = mean over rows of `features`,
///   r_k = (1 / |targets|) * sum_j || v - targets[j] ||^2.
/// Gradients flow into `features` (and through it into φ's parameters);
/// the delayed targets are constants, exactly as in Algorithms 1 and 2.
Variable PairwiseMmdRegularizer(const Variable& features,
                                const std::vector<Tensor>& targets);

/// Differentiable r̃_k of rFedAvg+: || mean(features) - avg_target ||^2.
/// Has the same gradient w.r.t. the local feature mean as
/// PairwiseMmdRegularizer with the same targets averaged (Sec. IV-C).
Variable AveragedMmdRegularizer(const Variable& features,
                                const Tensor& avg_target);

/// Mean of a set of equally weighted δ vectors.
Tensor MeanDelta(const std::vector<Tensor>& deltas);

/// Mean of all δ vectors except index `excluded` (the server-side
/// leave-one-out average δ̄^{-k} of Algorithm 2, line 18).
Tensor LeaveOneOutMeanDelta(const std::vector<Tensor>& deltas, int excluded);

}  // namespace rfed

#endif  // RFED_CORE_MMD_H_
