#ifndef RFED_CORE_CONVEX_OBJECTIVE_H_
#define RFED_CORE_CONVEX_OBJECTIVE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace rfed {

/// Strongly convex federated problem used to validate Theorems 1 and 2
/// numerically. Client k owns
///   f_k(w) = 1/2 w^T A_k w - b_k^T w,   A_k = Q_k^T Q_k + mu I,
/// a *linear* (hence convex, assumption A6) feature map
///   φ(w) = D_k w,  D_k = diag(d_k),
/// and the distribution regularizer
///   r_k(w) = 1/(N-1) * sum_{j != k} || D_k w - δ_j ||^2.
/// With the true (fresh) maps δ_j = D_j w the full objective
/// F = sum_k p_k (f_k + λ r_k) is an exact quadratic, so w*, F* are
/// available in closed form and E[F(w̄_t)] - F* can be measured without
/// approximation. Stochastic gradients are simulated as the exact
/// gradient plus Gaussian noise (assumption A2).
struct ConvexProblemConfig {
  int num_clients = 10;
  int dim = 12;
  double lambda = 0.1;      ///< regularizer weight λ
  double mu = 0.5;          ///< strong-convexity floor added to every A_k
  double grad_noise = 0.2;  ///< stddev of the stochastic-gradient noise
  double heterogeneity = 1.0;  ///< scale of cross-client differences
  uint64_t seed = 7;
};

/// How the regularizer's target maps δ_j are obtained during optimization
/// — the exact design axis separating the paper's algorithms.
enum class MapMode {
  kFresh,          ///< δ_j from the *current* iterate each step (the
                   ///< O(N^2)-communication scheme the paper rejects)
  kLocalDelayed,   ///< rFedAvg: δ_j from client j's local model at the
                   ///< end of the previous round (Algorithm 1)
  kGlobalDelayed,  ///< rFedAvg+: δ_j from the synchronized global model
                   ///< of the previous round (Algorithm 2)
};

class ConvexFederatedProblem {
 public:
  explicit ConvexFederatedProblem(const ConvexProblemConfig& config);

  int dim() const { return config_.dim; }
  int num_clients() const { return config_.num_clients; }
  const ConvexProblemConfig& config() const { return config_; }

  /// Closed-form minimizer of the full objective.
  const Tensor& Optimum() const { return w_star_; }
  /// F(w*) — the exact optimal value.
  double OptimalValue() const { return f_star_; }
  /// Full objective F(w) with fresh maps.
  double FullObjective(const Tensor& w) const;

  /// Largest Hessian eigenvalue (power iteration) — the smoothness L.
  double Smoothness() const { return smoothness_; }
  /// Strong convexity modulus (config mu; the regularizer only adds PSD
  /// curvature).
  double StrongConvexity() const { return config_.mu; }

  /// Runs `rounds` communication rounds of `local_steps` local SGD steps
  /// with the paper's decaying rate η_t = 2 / (mu (γ + t)),
  /// γ = max(8 L / mu, E). Returns F(w̄_{cE}) - F* after every round.
  std::vector<double> Run(MapMode mode, int rounds, int local_steps,
                          Rng* rng) const;

 private:
  /// Gradient of client k's objective at w given fixed foreign maps.
  Tensor ClientGradient(int k, const Tensor& w,
                        const std::vector<Tensor>& foreign_maps) const;
  /// δ_k at parameter w (linear map D_k w).
  Tensor MapAt(int k, const Tensor& w) const;

  ConvexProblemConfig config_;
  std::vector<Tensor> a_;       // A_k, [dim, dim] each
  std::vector<Tensor> b_;       // b_k, [dim]
  std::vector<Tensor> d_;       // diag(D_k), [dim]
  std::vector<double> weights_; // p_k
  Tensor hessian_;              // H of the full objective
  Tensor linear_;               // c with F(w) = 1/2 w^T H w - c^T w
  Tensor w_star_;
  double f_star_ = 0.0;
  double smoothness_ = 0.0;
};

/// Solves the dense symmetric positive-definite system A x = b by
/// Gaussian elimination with partial pivoting (A: [n, n], b: [n]).
Tensor SolveLinearSystem(const Tensor& a, const Tensor& b);

}  // namespace rfed

#endif  // RFED_CORE_CONVEX_OBJECTIVE_H_
