#ifndef RFED_CORE_RFEDAVG_H_
#define RFED_CORE_RFEDAVG_H_

#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/delta_map.h"
#include "core/dp_noise.h"
#include "fl/algorithm.h"

namespace rfed {

/// Options shared by rFedAvg and rFedAvg+.
struct RegularizerOptions {
  /// Weight λ of the distribution regularizer (paper Eq. 3); also acts as
  /// the normalization coefficient of r_k.
  double lambda = 1e-4;
  /// Optional differential-privacy perturbation of the communicated maps
  /// (Fig. 12); sigma == 0 disables it.
  DpNoiseConfig dp;
  /// Ablation: compute the regularizer against the logits layer instead
  /// of the feature layer.
  bool regularize_logits = false;
};

/// rFedAvg — Algorithm 1 of the paper. FedAvg plus the distribution
/// regularizer r'_k computed against *delayed per-client* maps: at every
/// round the server broadcasts the whole map store δ = (δ^1..δ^N) to each
/// sampled client (O(d N^2) traffic); during local steps client k
/// penalizes (λ/(N-1)) Σ_{j≠k} ||mean φ(batch) - δ^j||²; after local
/// training it recomputes δ^k with its *local* model (the inconsistency
/// Theorem 2 pays for with the larger constant C₃) and uploads it.
class RFedAvg : public FederatedAlgorithm {
 public:
  RFedAvg(const FlConfig& config, const RegularizerOptions& reg,
          const Dataset* train_data, std::vector<ClientView> clients,
          const ModelFactory& model_factory);

  const DeltaMapStore& delta_store() const { return store_; }
  const RegularizerOptions& regularizer_options() const { return reg_; }

  /// Mean pairwise squared MMD across the stored maps — a scalar telling
  /// how far apart client feature distributions currently are.
  double MeanPairwiseMmd() const;

 protected:
  void OnRoundStart(int round, const std::vector<int>& selected) override;
  Variable ExtraLoss(int client, const ModelOutput& output,
                     const Batch& batch) override;
  void OnClientTrained(int round, int client, const Tensor& new_state) override;
  void OnRoundEnd(int round, const std::vector<int>& selected) override;
  /// Checkpointing: the map store and the DP noise stream (pending map
  /// updates are round-scoped and always empty at a round boundary).
  void SaveExtraState(CheckpointWriter* writer) const override;
  void LoadExtraState(CheckpointReader* reader) override;
  /// Remote jobs ship what ExtraLoss reads: whether the round's map
  /// broadcast reached this client and, if it did, the N-1 peer maps
  /// (the same delayed snapshot every in-process client of the round
  /// sees — pending updates commit only at round end).
  void EncodeTrainContext(int round, int client,
                          CheckpointWriter* writer) const override;
  void DecodeTrainContext(int round, int client,
                          CheckpointReader* reader) override;

 private:
  RegularizerOptions reg_;
  DeltaMapStore store_;
  /// Maps computed this round, committed at round end so that all clients
  /// of a round see the same delayed snapshot.
  std::vector<std::pair<int, Tensor>> pending_updates_;
  /// Whether this round's map broadcast reached each client; a client
  /// whose copy was lost trains without the regularizer this round.
  std::vector<char> map_received_;
  Rng noise_rng_;
  /// Worker-replica state installed by DecodeTrainContext: once active,
  /// ExtraLoss reads these instead of the (absent) server-side store.
  bool ctx_active_ = false;
  bool ctx_received_ = false;
  std::vector<Tensor> ctx_targets_;
};

/// rFedAvg+ — Algorithm 2 of the paper. Two modifications: (1) maps are
/// computed from the *synchronized global* model in a second
/// communication exchange per round, and (2) each client receives only
/// the leave-one-out average δ̄^{-k} instead of all N-1 maps, shrinking
/// the broadcast from O(d N^2) to O(d N). The local objective becomes
/// r̃_k = ||mean φ(batch) - δ̄^{-k}||², which has the same gradient
/// w.r.t. the local feature mean as r_k (Sec. IV-C).
class RFedAvgPlus : public FederatedAlgorithm {
 public:
  RFedAvgPlus(const FlConfig& config, const RegularizerOptions& reg,
              const Dataset* train_data, std::vector<ClientView> clients,
              const ModelFactory& model_factory);

  /// Pool-mode (cross-device scale) constructor: lazy client state plus a
  /// *sparse* map store — only clients that have ever reported hold a
  /// resident map, every other δ^k is the implicit zero of the paper's
  /// δ_0 initialization, and the leave-one-out averages reduce over the
  /// touched set with the canonical shard tree. The pool must outlive
  /// the algorithm.
  RFedAvgPlus(const FlConfig& config, const RegularizerOptions& reg,
              const ClientPool* pool, const ModelFactory& model_factory);

  const DeltaMapStore& delta_store() const { return store_; }
  const RegularizerOptions& regularizer_options() const { return reg_; }

 protected:
  void OnRoundStart(int round, const std::vector<int>& selected) override;
  Variable ExtraLoss(int client, const ModelOutput& output,
                     const Batch& batch) override;
  void OnRoundEnd(int round, const std::vector<int>& selected) override;
  /// Checkpointing: the map store and the DP noise stream.
  void SaveExtraState(CheckpointWriter* writer) const override;
  void LoadExtraState(CheckpointReader* reader) override;
  /// Remote jobs ship the delivery flag and the leave-one-out mean
  /// δ̄^{-k} — the only store-derived inputs of ExtraLoss.
  void EncodeTrainContext(int round, int client,
                          CheckpointWriter* writer) const override;
  void DecodeTrainContext(int round, int client,
                          CheckpointReader* reader) override;

 private:
  RegularizerOptions reg_;
  DeltaMapStore store_;
  /// Clients whose averaged-map broadcast arrived this round. A set (not
  /// a dense per-client vector) so pool-mode rounds cost O(cohort); the
  /// membership control flow is identical to the old flag vector.
  std::unordered_set<int> map_received_;
  Rng noise_rng_;
  /// Worker-replica state installed by DecodeTrainContext: once active,
  /// ExtraLoss reads these instead of the (absent) server-side store.
  bool ctx_active_ = false;
  bool ctx_received_ = false;
  Tensor ctx_loo_;
};

}  // namespace rfed

#endif  // RFED_CORE_RFEDAVG_H_
