#ifndef RFED_CORE_DP_NOISE_H_
#define RFED_CORE_DP_NOISE_H_

#include "tensor/tensor.h"
#include "util/rng.h"

namespace rfed {

/// Differentially private perturbation of the communicated δ maps
/// (paper Sec. VI-B8, following Abadi et al. DP-SGD): the map is clipped
/// to L2 norm `clip` and Gaussian noise N(0, (sigma * clip / batch)^2 I)
/// is added:  δ̃ <- clip(δ) + (1/L) N(0, sigma^2 C^2 I).
struct DpNoiseConfig {
  double sigma = 0.0;  ///< noise multiplier σ₂; 0 disables the mechanism
  double clip = 1.0;   ///< clipping constant C₀
  int batch_size = 1;  ///< lot size L dividing the noise
};

/// Applies clipping + noise in place. No-op when config.sigma == 0.
void ApplyDpNoise(const DpNoiseConfig& config, Tensor* delta, Rng* rng);

}  // namespace rfed

#endif  // RFED_CORE_DP_NOISE_H_
