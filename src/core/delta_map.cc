#include "core/delta_map.h"

#include <algorithm>
#include <utility>

#include "core/mmd.h"
#include "fl/shard_agg.h"
#include "util/check.h"

namespace rfed {

DeltaMapStore::DeltaMapStore(int num_clients, int64_t feature_dim)
    : DeltaMapStore(num_clients, feature_dim, /*sparse=*/false) {}

DeltaMapStore DeltaMapStore::Sparse(int num_clients, int64_t feature_dim) {
  return DeltaMapStore(num_clients, feature_dim, /*sparse=*/true);
}

DeltaMapStore::DeltaMapStore(int num_clients, int64_t feature_dim, bool sparse)
    : num_clients_(num_clients), feature_dim_(feature_dim), sparse_(sparse) {
  RFED_CHECK_GT(num_clients, 1);
  RFED_CHECK_GT(feature_dim, 0);
  if (sparse_) {
    zero_ = Tensor(Shape{feature_dim});
  } else {
    deltas_.assign(static_cast<size_t>(num_clients),
                   Tensor(Shape{feature_dim}));
  }
}

void DeltaMapStore::Update(int client, Tensor delta) {
  RFED_CHECK_GE(client, 0);
  RFED_CHECK_LT(client, num_clients());
  RFED_CHECK(delta.shape() == Shape({feature_dim_}));
  if (sparse_) {
    sparse_deltas_[client] = std::move(delta);
  } else {
    deltas_[static_cast<size_t>(client)] = std::move(delta);
  }
}

const Tensor& DeltaMapStore::Get(int client) const {
  RFED_CHECK_GE(client, 0);
  RFED_CHECK_LT(client, num_clients());
  if (sparse_) {
    const auto it = sparse_deltas_.find(client);
    return it == sparse_deltas_.end() ? zero_ : it->second;
  }
  return deltas_[static_cast<size_t>(client)];
}

const std::vector<Tensor>& DeltaMapStore::All() const {
  RFED_CHECK(!sparse_)
      << "a sparse map store cannot materialize all per-client maps";
  return deltas_;
}

std::vector<int> DeltaMapStore::TouchedClients() const {
  std::vector<int> ids;
  ids.reserve(sparse_deltas_.size());
  for (const auto& [id, delta] : sparse_deltas_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void DeltaMapStore::Reset() {
  RFED_CHECK(sparse_) << "only sparse map stores support Reset";
  sparse_deltas_.clear();
}

Tensor DeltaMapStore::LeaveOneOutMean(int client) const {
  if (!sparse_) return LeaveOneOutMeanDelta(deltas_, client);
  RFED_CHECK_GE(client, 0);
  RFED_CHECK_LT(client, num_clients());
  RFED_CHECK_GT(num_clients(), 1);
  // Canonical-tree total over the touched maps (ascending id), minus the
  // excluded client's own map, over the N-1 implicit-zero-inclusive
  // denominator. Report order never enters the float-op sequence.
  const std::vector<int> ids = TouchedClients();
  std::vector<const Tensor*> leaves;
  leaves.reserve(ids.size());
  for (int id : ids) leaves.push_back(&sparse_deltas_.at(id));
  Tensor mean = leaves.empty() ? Tensor(Shape{feature_dim_})
                               : PairwiseTreeSum(leaves);
  const auto it = sparse_deltas_.find(client);
  if (it != sparse_deltas_.end()) mean.SubInPlace(it->second);
  mean.MulInPlace(1.0f / static_cast<float>(num_clients() - 1));
  return mean;
}

std::vector<Tensor> DeltaMapStore::AllExcept(int client) const {
  RFED_CHECK(!sparse_)
      << "a sparse map store cannot materialize all per-client maps";
  std::vector<Tensor> out;
  out.reserve(deltas_.size() - 1);
  for (size_t j = 0; j < deltas_.size(); ++j) {
    if (static_cast<int>(j) != client) out.push_back(deltas_[j]);
  }
  return out;
}

int64_t DeltaMapStore::MapBytes() const {
  return feature_dim_ * static_cast<int64_t>(sizeof(float));
}

int64_t DeltaMapStore::BroadcastBytesPairwise() const {
  return MapBytes() * (num_clients() - 1);
}

}  // namespace rfed
