#include "core/delta_map.h"

#include "core/mmd.h"
#include "util/check.h"

namespace rfed {

DeltaMapStore::DeltaMapStore(int num_clients, int64_t feature_dim)
    : feature_dim_(feature_dim) {
  RFED_CHECK_GT(num_clients, 1);
  RFED_CHECK_GT(feature_dim, 0);
  deltas_.assign(static_cast<size_t>(num_clients),
                 Tensor(Shape{feature_dim}));
}

void DeltaMapStore::Update(int client, Tensor delta) {
  RFED_CHECK_GE(client, 0);
  RFED_CHECK_LT(client, num_clients());
  RFED_CHECK(delta.shape() == Shape({feature_dim_}));
  deltas_[static_cast<size_t>(client)] = std::move(delta);
}

const Tensor& DeltaMapStore::Get(int client) const {
  RFED_CHECK_GE(client, 0);
  RFED_CHECK_LT(client, num_clients());
  return deltas_[static_cast<size_t>(client)];
}

Tensor DeltaMapStore::LeaveOneOutMean(int client) const {
  return LeaveOneOutMeanDelta(deltas_, client);
}

std::vector<Tensor> DeltaMapStore::AllExcept(int client) const {
  std::vector<Tensor> out;
  out.reserve(deltas_.size() - 1);
  for (size_t j = 0; j < deltas_.size(); ++j) {
    if (static_cast<int>(j) != client) out.push_back(deltas_[j]);
  }
  return out;
}

int64_t DeltaMapStore::MapBytes() const {
  return feature_dim_ * static_cast<int64_t>(sizeof(float));
}

int64_t DeltaMapStore::BroadcastBytesPairwise() const {
  return MapBytes() * (num_clients() - 1);
}

}  // namespace rfed
