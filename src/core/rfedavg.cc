#include "core/rfedavg.h"

#include "core/mmd.h"
#include "fl/checkpoint.h"
#include "obs/trace.h"
#include "util/check.h"

namespace rfed {

RFedAvg::RFedAvg(const FlConfig& config, const RegularizerOptions& reg,
                 const Dataset* train_data, std::vector<ClientView> clients,
                 const ModelFactory& model_factory)
    : FederatedAlgorithm("rFedAvg", config, train_data, std::move(clients),
                         model_factory),
      reg_(reg),
      store_(num_clients(), reg.regularize_logits
                                ? raw_model()->num_classes()
                                : raw_model()->feature_dim()),
      noise_rng_(config.seed ^ 0x9e3779b97f4a7c15ULL) {
  RFED_CHECK_GE(reg_.lambda, 0.0);
  map_received_.assign(static_cast<size_t>(num_clients()), 1);
}

void RFedAvg::OnRoundStart(int round, const std::vector<int>& selected) {
  // Server broadcasts the full delayed map vector δ_{cE} to each sampled
  // client (Algorithm 1, line 3): N-1 foreign maps per client. A client
  // whose broadcast is lost has no targets to regularize against and
  // degrades to a plain FedAvg round.
  obs::TraceSpan trace_span("map_broadcast");
  map_received_.assign(static_cast<size_t>(num_clients()), 0);
  for (int k : selected) {
    map_received_[static_cast<size_t>(k)] =
        channel().Download(store_.BroadcastBytesPairwise(), channel_kind::kMap)
            ? 1
            : 0;
  }
  pending_updates_.clear();
}

Variable RFedAvg::ExtraLoss(int client, const ModelOutput& output,
                            const Batch& batch) {
  if (reg_.lambda == 0.0) return Variable();
  // On a worker replica the context blob carries the delivery flag and
  // peer maps the server-side store would have provided.
  const bool received = ctx_active_
                            ? ctx_received_
                            : map_received_[static_cast<size_t>(client)] != 0;
  if (!received) return Variable();
  obs::TraceSpan trace_span("mmd_penalty");
  const Variable& rep =
      reg_.regularize_logits ? output.logits : output.features;
  // r'_k: mean squared MMD against every other client's delayed map.
  std::vector<Tensor> targets =
      ctx_active_ ? ctx_targets_ : store_.AllExcept(client);
  Variable r = PairwiseMmdRegularizer(rep, targets);
  return ag::Scale(r, static_cast<float>(reg_.lambda));
}

void RFedAvg::EncodeTrainContext(int round, int client,
                                 CheckpointWriter* writer) const {
  const bool received = map_received_[static_cast<size_t>(client)] != 0;
  writer->WriteBool(received);
  if (!received) return;
  const std::vector<Tensor> targets = store_.AllExcept(client);
  writer->WriteU32(static_cast<uint32_t>(targets.size()));
  for (const Tensor& t : targets) writer->WriteTensor(t);
}

void RFedAvg::DecodeTrainContext(int round, int client,
                                 CheckpointReader* reader) {
  ctx_active_ = true;
  ctx_received_ = reader->ReadBool();
  ctx_targets_.clear();
  if (!ctx_received_) return;
  const uint32_t count = reader->ReadU32();
  ctx_targets_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ctx_targets_.push_back(reader->ReadTensor());
  }
}

void RFedAvg::OnClientTrained(int round, int client, const Tensor& new_state) {
  // Algorithm 1, line 10: δ^k_{(c+1)E} from the client's *local* trained
  // model (the source of the map inconsistency Theorem 2 quantifies).
  // A map upload lost on the channel never reaches the store; the server
  // keeps that client's previous (delayed) map.
  obs::TraceSpan trace_span("map_update");
  Tensor delta = ComputeClientDelta(client, new_state,
                                   reg_.regularize_logits);
  ApplyDpNoise(reg_.dp, &delta, &noise_rng_);
  // The upload rides the fault channel; on arrival the server screens
  // the map (a finite-but-extreme poisoned model can still overflow the
  // forward pass into Inf features) before it can enter the store.
  if (channel().Upload(store_.MapBytes(), channel_kind::kMap) &&
      ScreenMap(client, delta)) {
    pending_updates_.emplace_back(client, std::move(delta));
  }
}

void RFedAvg::OnRoundEnd(int round, const std::vector<int>& selected) {
  // Commit after all clients trained so every client of this round saw
  // the same delayed snapshot (server updates δ at line 13).
  for (auto& [client, delta] : pending_updates_) {
    store_.Update(client, std::move(delta));
  }
  pending_updates_.clear();
}

double RFedAvg::MeanPairwiseMmd() const {
  const auto& deltas = store_.All();
  double total = 0.0;
  int64_t pairs = 0;
  for (size_t i = 0; i < deltas.size(); ++i) {
    for (size_t j = i + 1; j < deltas.size(); ++j) {
      total += MmdSquared(deltas[i], deltas[j]);
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

void RFedAvg::SaveExtraState(CheckpointWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(store_.num_clients()));
  for (const Tensor& delta : store_.All()) writer->WriteTensor(delta);
  writer->WriteRng(noise_rng_.SaveState());
}

void RFedAvg::LoadExtraState(CheckpointReader* reader) {
  const uint32_t count = reader->ReadU32();
  RFED_CHECK_EQ(count, static_cast<uint32_t>(store_.num_clients()))
      << "checkpoint is for a different client count";
  for (int k = 0; k < store_.num_clients(); ++k) {
    store_.Update(k, reader->ReadTensor());
  }
  noise_rng_.LoadState(reader->ReadRng());
}

}  // namespace rfed
