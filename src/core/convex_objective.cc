#include "core/convex_objective.h"

#include <algorithm>
#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace rfed {

Tensor SolveLinearSystem(const Tensor& a, const Tensor& b) {
  RFED_CHECK_EQ(a.rank(), 2);
  RFED_CHECK_EQ(a.dim(0), a.dim(1));
  RFED_CHECK_EQ(b.dim(0), a.dim(0));
  const int64_t n = a.dim(0);
  // Work in double for numerical headroom.
  std::vector<double> m(static_cast<size_t>(n * n));
  std::vector<double> rhs(static_cast<size_t>(n));
  for (int64_t i = 0; i < n * n; ++i) m[static_cast<size_t>(i)] = a.at(i);
  for (int64_t i = 0; i < n; ++i) rhs[static_cast<size_t>(i)] = b.at(i);

  for (int64_t col = 0; col < n; ++col) {
    // Partial pivot.
    int64_t pivot = col;
    for (int64_t r = col + 1; r < n; ++r) {
      if (std::fabs(m[static_cast<size_t>(r * n + col)]) >
          std::fabs(m[static_cast<size_t>(pivot * n + col)])) {
        pivot = r;
      }
    }
    RFED_CHECK_GT(std::fabs(m[static_cast<size_t>(pivot * n + col)]), 1e-12)
        << "singular system";
    if (pivot != col) {
      for (int64_t c = 0; c < n; ++c) {
        std::swap(m[static_cast<size_t>(col * n + c)],
                  m[static_cast<size_t>(pivot * n + c)]);
      }
      std::swap(rhs[static_cast<size_t>(col)], rhs[static_cast<size_t>(pivot)]);
    }
    const double inv = 1.0 / m[static_cast<size_t>(col * n + col)];
    for (int64_t r = col + 1; r < n; ++r) {
      const double factor = m[static_cast<size_t>(r * n + col)] * inv;
      if (factor == 0.0) continue;
      for (int64_t c = col; c < n; ++c) {
        m[static_cast<size_t>(r * n + c)] -=
            factor * m[static_cast<size_t>(col * n + c)];
      }
      rhs[static_cast<size_t>(r)] -= factor * rhs[static_cast<size_t>(col)];
    }
  }
  // Back substitution.
  Tensor x(Shape{n});
  for (int64_t r = n - 1; r >= 0; --r) {
    double acc = rhs[static_cast<size_t>(r)];
    for (int64_t c = r + 1; c < n; ++c) {
      acc -= m[static_cast<size_t>(r * n + c)] * x.at(c);
    }
    x.at(r) = static_cast<float>(acc / m[static_cast<size_t>(r * n + r)]);
  }
  return x;
}

ConvexFederatedProblem::ConvexFederatedProblem(
    const ConvexProblemConfig& config)
    : config_(config) {
  RFED_CHECK_GT(config_.num_clients, 1);
  RFED_CHECK_GT(config_.dim, 0);
  Rng rng(config_.seed);
  const int64_t n = config_.dim;
  const int clients = config_.num_clients;

  weights_.assign(static_cast<size_t>(clients),
                  1.0 / static_cast<double>(clients));

  for (int k = 0; k < clients; ++k) {
    // A_k = Q^T Q / dim + mu I (heterogeneous curvature).
    Tensor q = Tensor::Normal(Shape{n, n}, 0.0f,
                              static_cast<float>(config_.heterogeneity), &rng);
    Tensor a = MatMulTransA(q, q);
    a.MulInPlace(1.0f / static_cast<float>(n));
    for (int64_t i = 0; i < n; ++i) {
      a.at2(i, i) += static_cast<float>(config_.mu);
    }
    a_.push_back(std::move(a));
    b_.push_back(Tensor::Normal(Shape{n}, 0.0f,
                                static_cast<float>(config_.heterogeneity),
                                &rng));
    // Heterogeneous feature maps around identity.
    Tensor dk = Tensor::Normal(Shape{n}, 1.0f,
                               static_cast<float>(0.3 * config_.heterogeneity),
                               &rng);
    d_.push_back(std::move(dk));
  }

  // Assemble the exact quadratic F(w) = 1/2 w^T H w - c^T w:
  //   H = sum_k p_k [ A_k + (2 λ / (N-1)) sum_{j != k} (D_k - D_j)^2 ]
  // (the (D_k - D_j)^2 blocks are diagonal).
  hessian_ = Tensor(Shape{n, n});
  linear_ = Tensor(Shape{n});
  for (int k = 0; k < clients; ++k) {
    const double pk = weights_[static_cast<size_t>(k)];
    hessian_.Axpy(static_cast<float>(pk), a_[static_cast<size_t>(k)]);
    linear_.Axpy(static_cast<float>(pk), b_[static_cast<size_t>(k)]);
    for (int j = 0; j < clients; ++j) {
      if (j == k) continue;
      for (int64_t i = 0; i < n; ++i) {
        const double diff = static_cast<double>(d_[static_cast<size_t>(k)].at(i)) -
                            d_[static_cast<size_t>(j)].at(i);
        hessian_.at2(i, i) += static_cast<float>(
            pk * 2.0 * config_.lambda * diff * diff /
            static_cast<double>(clients - 1));
      }
    }
  }

  w_star_ = SolveLinearSystem(hessian_, linear_);
  f_star_ = FullObjective(w_star_);

  // Smoothness via power iteration on H.
  Tensor v = Tensor::Normal(Shape{n}, 0.0f, 1.0f, &rng);
  double eigen = 0.0;
  for (int it = 0; it < 200; ++it) {
    Tensor hv(Shape{n});
    for (int64_t r = 0; r < n; ++r) {
      double acc = 0.0;
      for (int64_t c = 0; c < n; ++c) acc += hessian_.at2(r, c) * v.at(c);
      hv.at(r) = static_cast<float>(acc);
    }
    const double norm = std::sqrt(static_cast<double>(hv.SquaredNorm()));
    RFED_CHECK_GT(norm, 0.0);
    hv.MulInPlace(static_cast<float>(1.0 / norm));
    eigen = norm;
    v = std::move(hv);
  }
  smoothness_ = eigen;
}

double ConvexFederatedProblem::FullObjective(const Tensor& w) const {
  double value = 0.0;
  for (int64_t r = 0; r < w.size(); ++r) {
    double hw = 0.0;
    for (int64_t c = 0; c < w.size(); ++c) hw += hessian_.at2(r, c) * w.at(c);
    value += 0.5 * w.at(r) * hw - linear_.at(r) * w.at(r);
  }
  return value;
}

Tensor ConvexFederatedProblem::MapAt(int k, const Tensor& w) const {
  Tensor delta(w.shape());
  const Tensor& dk = d_[static_cast<size_t>(k)];
  for (int64_t i = 0; i < w.size(); ++i) delta.at(i) = dk.at(i) * w.at(i);
  return delta;
}

Tensor ConvexFederatedProblem::ClientGradient(
    int k, const Tensor& w, const std::vector<Tensor>& foreign_maps) const {
  const int64_t n = w.size();
  Tensor grad(Shape{n});
  // ∇f_k = A_k w - b_k.
  const Tensor& a = a_[static_cast<size_t>(k)];
  for (int64_t r = 0; r < n; ++r) {
    double acc = -static_cast<double>(b_[static_cast<size_t>(k)].at(r));
    for (int64_t c = 0; c < n; ++c) acc += a.at2(r, c) * w.at(c);
    grad.at(r) = static_cast<float>(acc);
  }
  // ∇r'_k = (2/(N-1)) sum_j D_k^T (D_k w - δ_j).
  const Tensor& dk = d_[static_cast<size_t>(k)];
  const double scale =
      2.0 * config_.lambda / static_cast<double>(foreign_maps.size());
  for (const Tensor& delta_j : foreign_maps) {
    for (int64_t i = 0; i < n; ++i) {
      grad.at(i) += static_cast<float>(
          scale * dk.at(i) * (dk.at(i) * w.at(i) - delta_j.at(i)));
    }
  }
  return grad;
}

std::vector<double> ConvexFederatedProblem::Run(MapMode mode, int rounds,
                                                int local_steps,
                                                Rng* rng) const {
  const int clients = config_.num_clients;
  const int64_t n = config_.dim;
  const double mu = StrongConvexity();
  const double gamma =
      std::max(8.0 * Smoothness() / mu, static_cast<double>(local_steps));

  Tensor global = Tensor::Normal(Shape{n}, 0.0f, 1.0f, rng);
  // Per-client maps; start at φ of the initial model (consistent).
  std::vector<Tensor> maps;
  maps.reserve(static_cast<size_t>(clients));
  for (int k = 0; k < clients; ++k) maps.push_back(MapAt(k, global));

  std::vector<double> gaps;
  gaps.reserve(static_cast<size_t>(rounds));
  int64_t t = 0;
  for (int round = 0; round < rounds; ++round) {
    std::vector<Tensor> locals(static_cast<size_t>(clients), global);
    const int64_t t_round = t;
    for (int k = 0; k < clients; ++k) {
      int64_t tk = t_round;
      for (int step = 0; step < local_steps; ++step, ++tk) {
        const double eta = 2.0 / (mu * (gamma + static_cast<double>(tk)));
        Tensor& w = locals[static_cast<size_t>(k)];
        std::vector<Tensor> foreign;
        foreign.reserve(static_cast<size_t>(clients - 1));
        for (int j = 0; j < clients; ++j) {
          if (j == k) continue;
          if (mode == MapMode::kFresh) {
            // Uses the client's own current iterate as the best available
            // proxy of the synchronized model (full-communication oracle).
            foreign.push_back(MapAt(j, w));
          } else {
            foreign.push_back(maps[static_cast<size_t>(j)]);
          }
        }
        Tensor grad = ClientGradient(k, w, foreign);
        if (config_.grad_noise > 0.0) {
          for (int64_t i = 0; i < n; ++i) {
            grad.at(i) += static_cast<float>(
                rng->Normal(0.0, config_.grad_noise));
          }
        }
        w.Axpy(static_cast<float>(-eta), grad);
      }
    }
    t = t_round + local_steps;

    // Aggregate.
    Tensor next(Shape{n});
    for (int k = 0; k < clients; ++k) {
      next.Axpy(static_cast<float>(weights_[static_cast<size_t>(k)]),
                locals[static_cast<size_t>(k)]);
    }
    global = std::move(next);

    // Refresh the delayed maps per algorithm.
    if (mode == MapMode::kLocalDelayed) {
      for (int k = 0; k < clients; ++k) {
        maps[static_cast<size_t>(k)] =
            MapAt(k, locals[static_cast<size_t>(k)]);
      }
    } else if (mode == MapMode::kGlobalDelayed) {
      for (int k = 0; k < clients; ++k) {
        maps[static_cast<size_t>(k)] = MapAt(k, global);
      }
    }
    gaps.push_back(FullObjective(global) - f_star_);
  }
  return gaps;
}

}  // namespace rfed
