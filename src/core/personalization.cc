#include "core/personalization.h"

#include <cmath>

#include "data/batcher.h"
#include "fl/model_state.h"
#include "nn/loss.h"
#include "util/check.h"

namespace rfed {
namespace {

double EvaluateOnIndices(FeatureModel* model, const Dataset& data,
                         const std::vector<int>& indices) {
  Batch batch = data.GetBatch(indices);
  ModelOutput out = model->Forward(batch);
  return Accuracy(out.logits.value(), batch.labels);
}

}  // namespace

double PersonalizationReport::MeanGlobal() const {
  double sum = 0.0;
  int n = 0;
  for (double acc : global_accuracy) {
    if (!std::isnan(acc)) {
      sum += acc;
      ++n;
    }
  }
  RFED_CHECK_GT(n, 0);
  return sum / n;
}

double PersonalizationReport::MeanPersonalized() const {
  double sum = 0.0;
  int n = 0;
  for (double acc : personalized_accuracy) {
    if (!std::isnan(acc)) {
      sum += acc;
      ++n;
    }
  }
  RFED_CHECK_GT(n, 0);
  return sum / n;
}

PersonalizationReport PersonalizeAndEvaluate(
    FederatedAlgorithm* algorithm, const Dataset& train_data,
    const Dataset& test_data, const std::vector<ClientView>& views,
    const PersonalizationOptions& options) {
  PersonalizationReport report;
  const Tensor global = algorithm->global_state();
  FeatureModel* model = algorithm->GlobalModel();
  auto params = model->Parameters();
  Rng rng(options.seed);

  for (const ClientView& view : views) {
    if (view.test_indices.empty()) {
      report.global_accuracy.push_back(std::nan(""));
      report.personalized_accuracy.push_back(std::nan(""));
      continue;
    }
    // Global-model accuracy on this client.
    LoadParameters(global, params);
    report.global_accuracy.push_back(
        EvaluateOnIndices(model, test_data, view.test_indices));

    // Local fine-tuning from the global model.
    SgdOptimizer optimizer(params, options.lr);
    Batcher batcher(&train_data, view.train_indices, options.batch_size,
                    rng.Fork());
    for (int step = 0; step < options.fine_tune_steps; ++step) {
      Batch batch = batcher.Next();
      ModelOutput out = model->Forward(batch);
      Variable loss = CrossEntropyLoss(out.logits, batch.labels);
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
    }
    report.personalized_accuracy.push_back(
        EvaluateOnIndices(model, test_data, view.test_indices));
  }
  // Restore the scratch model to the global state.
  LoadParameters(global, params);
  return report;
}

}  // namespace rfed
