#ifndef RFED_CORE_DELTA_MAP_H_
#define RFED_CORE_DELTA_MAP_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace rfed {

/// Server-side store of the per-client feature-mean maps δ^k. Both
/// algorithms keep one map per client (Algorithm 1 line 13 / Algorithm 2
/// line 1); rFedAvg broadcasts the whole store to every client
/// (O(d N^2) traffic per round), rFedAvg+ only the per-client
/// leave-one-out average (O(d N)). Maps start at zero — the paper's
/// server initialization of δ_0 — and are refreshed as clients report.
///
/// Two storage modes:
///  - dense (the default): one tensor per client, resident from
///    construction. This is the golden-pinned path.
///  - sparse (pool-mode / cross-device scale): only clients that have
///    ever reported hold a tensor; every untouched client's map is the
///    implicit zero of the paper's δ_0 initialization. Aggregates are
///    computed over the *touched* set via the canonical pairwise
///    reduction tree of fl/shard_agg.h in ascending client-id order, so
///    the result is a pure function of the touched set — independent of
///    report order, shard fanout, and thread count. (Skipping zero maps
///    is exact: x + 0.0f == x for every finite x.)
class DeltaMapStore {
 public:
  DeltaMapStore(int num_clients, int64_t feature_dim);

  /// Sparse store for pool-mode runs; holds only reported maps.
  static DeltaMapStore Sparse(int num_clients, int64_t feature_dim);

  int num_clients() const { return num_clients_; }
  int64_t feature_dim() const { return feature_dim_; }
  bool sparse() const { return sparse_; }

  void Update(int client, Tensor delta);
  const Tensor& Get(int client) const;

  /// Dense mode only: the full per-client map vector.
  const std::vector<Tensor>& All() const;

  /// Sparse mode: ascending ids of clients whose maps have been set.
  std::vector<int> TouchedClients() const;
  int num_touched() const { return static_cast<int>(sparse_deltas_.size()); }

  /// Sparse mode only: drop every stored map (back to the all-zero δ_0
  /// state); used when restoring a checkpoint into a used store.
  void Reset();

  /// δ̄^{-k}: mean over all maps except `client` (Algorithm 2 line 18).
  Tensor LeaveOneOutMean(int client) const;

  /// All maps except `client` (the broadcast targets of Algorithm 1).
  /// Dense mode only.
  std::vector<Tensor> AllExcept(int client) const;

  /// Wire size of one map (float32 payload) — the per-client unit of
  /// Table III.
  int64_t MapBytes() const;

  /// Wire size of the rFedAvg broadcast to one client: N-1 maps.
  int64_t BroadcastBytesPairwise() const;

  /// Wire size of the rFedAvg+ broadcast to one client: one averaged map.
  int64_t BroadcastBytesAveraged() const { return MapBytes(); }

 private:
  DeltaMapStore(int num_clients, int64_t feature_dim, bool sparse);

  int num_clients_;
  int64_t feature_dim_;
  bool sparse_;
  std::vector<Tensor> deltas_;                   ///< dense mode
  std::unordered_map<int, Tensor> sparse_deltas_;  ///< sparse mode
  Tensor zero_;  ///< shared implicit map of untouched sparse clients
};

}  // namespace rfed

#endif  // RFED_CORE_DELTA_MAP_H_
