#ifndef RFED_CORE_DELTA_MAP_H_
#define RFED_CORE_DELTA_MAP_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace rfed {

/// Server-side store of the per-client feature-mean maps δ^k. Both
/// algorithms keep one map per client (Algorithm 1 line 13 / Algorithm 2
/// line 1); rFedAvg broadcasts the whole store to every client
/// (O(d N^2) traffic per round), rFedAvg+ only the per-client
/// leave-one-out average (O(d N)). Maps start at zero — the paper's
/// server initialization of δ_0 — and are refreshed as clients report.
class DeltaMapStore {
 public:
  DeltaMapStore(int num_clients, int64_t feature_dim);

  int num_clients() const { return static_cast<int>(deltas_.size()); }
  int64_t feature_dim() const { return feature_dim_; }

  void Update(int client, Tensor delta);
  const Tensor& Get(int client) const;
  const std::vector<Tensor>& All() const { return deltas_; }

  /// δ̄^{-k}: mean over all maps except `client` (Algorithm 2 line 18).
  Tensor LeaveOneOutMean(int client) const;

  /// All maps except `client` (the broadcast targets of Algorithm 1).
  std::vector<Tensor> AllExcept(int client) const;

  /// Wire size of one map (float32 payload) — the per-client unit of
  /// Table III.
  int64_t MapBytes() const;

  /// Wire size of the rFedAvg broadcast to one client: N-1 maps.
  int64_t BroadcastBytesPairwise() const;

  /// Wire size of the rFedAvg+ broadcast to one client: one averaged map.
  int64_t BroadcastBytesAveraged() const { return MapBytes(); }

 private:
  int64_t feature_dim_;
  std::vector<Tensor> deltas_;
};

}  // namespace rfed

#endif  // RFED_CORE_DELTA_MAP_H_
