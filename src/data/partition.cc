#include "data/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace rfed {

std::vector<int64_t> ClientSplit::Sizes() const {
  std::vector<int64_t> sizes;
  sizes.reserve(client_indices.size());
  for (const auto& idx : client_indices) {
    sizes.push_back(static_cast<int64_t>(idx.size()));
  }
  return sizes;
}

std::vector<double> ClientSplit::Weights() const {
  std::vector<int64_t> sizes = Sizes();
  const int64_t total = std::accumulate(sizes.begin(), sizes.end(), int64_t{0});
  RFED_CHECK_GT(total, 0);
  std::vector<double> weights;
  weights.reserve(sizes.size());
  for (int64_t s : sizes) {
    weights.push_back(static_cast<double>(s) / static_cast<double>(total));
  }
  return weights;
}

ClientSplit SimilarityPartition(const Dataset& dataset, int num_clients,
                                double similarity, Rng* rng) {
  RFED_CHECK_GT(num_clients, 0);
  RFED_CHECK_GE(similarity, 0.0);
  RFED_CHECK_LE(similarity, 1.0);
  const int64_t n = dataset.size();
  RFED_CHECK_GE(n, num_clients);

  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  const int64_t iid_count =
      static_cast<int64_t>(std::llround(similarity * static_cast<double>(n)));
  ClientSplit split;
  split.client_indices.resize(static_cast<size_t>(num_clients));

  // IID share: deal the shuffled prefix round-robin.
  for (int64_t i = 0; i < iid_count; ++i) {
    split.client_indices[static_cast<size_t>(i % num_clients)].push_back(
        order[static_cast<size_t>(i)]);
  }

  // Non-IID share: sort by label, then carve into num_clients contiguous
  // shards (each dominated by one or two adjacent classes).
  std::vector<int> rest(order.begin() + iid_count, order.end());
  std::stable_sort(rest.begin(), rest.end(), [&dataset](int a, int b) {
    return dataset.label(a) < dataset.label(b);
  });
  const int64_t rest_n = static_cast<int64_t>(rest.size());
  for (int k = 0; k < num_clients; ++k) {
    const int64_t begin = rest_n * k / num_clients;
    const int64_t end = rest_n * (k + 1) / num_clients;
    for (int64_t i = begin; i < end; ++i) {
      split.client_indices[static_cast<size_t>(k)].push_back(
          rest[static_cast<size_t>(i)]);
    }
  }
  for (const auto& idx : split.client_indices) {
    RFED_CHECK(!idx.empty()) << "client with no data; reduce num_clients";
  }
  return split;
}

ClientSplit IidPartition(const Dataset& dataset, int num_clients, Rng* rng) {
  return SimilarityPartition(dataset, num_clients, 1.0, rng);
}

ClientSplit NaturalPartition(const std::vector<int>& owner_ids, int num_owners,
                             int num_clients, Rng* rng) {
  RFED_CHECK_GT(num_clients, 0);
  RFED_CHECK_GE(num_owners, num_clients);
  // Randomly group owners into clients (each owner on exactly one client).
  std::vector<int> owner_to_client(static_cast<size_t>(num_owners));
  std::vector<int> owner_order(static_cast<size_t>(num_owners));
  std::iota(owner_order.begin(), owner_order.end(), 0);
  rng->Shuffle(&owner_order);
  for (int i = 0; i < num_owners; ++i) {
    owner_to_client[static_cast<size_t>(owner_order[static_cast<size_t>(i)])] =
        i % num_clients;
  }
  ClientSplit split;
  split.client_indices.resize(static_cast<size_t>(num_clients));
  for (size_t i = 0; i < owner_ids.size(); ++i) {
    const int owner = owner_ids[i];
    RFED_CHECK_GE(owner, 0);
    RFED_CHECK_LT(owner, num_owners);
    split.client_indices[static_cast<size_t>(
                             owner_to_client[static_cast<size_t>(owner)])]
        .push_back(static_cast<int>(i));
  }
  for (const auto& idx : split.client_indices) {
    RFED_CHECK(!idx.empty()) << "client with no data; reduce num_clients";
  }
  return split;
}

double LabelSkew(const Dataset& dataset, const ClientSplit& split) {
  const int classes = dataset.num_classes();
  std::vector<double> global(static_cast<size_t>(classes), 0.0);
  for (int64_t i = 0; i < dataset.size(); ++i) {
    global[static_cast<size_t>(dataset.label(i))] += 1.0;
  }
  for (double& g : global) g /= static_cast<double>(dataset.size());

  double total_tv = 0.0;
  for (const auto& idx : split.client_indices) {
    std::vector<double> local(static_cast<size_t>(classes), 0.0);
    for (int i : idx) local[static_cast<size_t>(dataset.label(i))] += 1.0;
    double tv = 0.0;
    for (int c = 0; c < classes; ++c) {
      tv += std::fabs(local[static_cast<size_t>(c)] /
                          static_cast<double>(idx.size()) -
                      global[static_cast<size_t>(c)]);
    }
    total_tv += 0.5 * tv;
  }
  return total_tv / static_cast<double>(split.num_clients());
}

}  // namespace rfed
