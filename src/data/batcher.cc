#include "data/batcher.h"

#include "util/check.h"

namespace rfed {

Batcher::Batcher(const Dataset* dataset, std::vector<int> indices,
                 int batch_size, Rng rng)
    : dataset_(dataset),
      indices_(std::move(indices)),
      batch_size_(batch_size),
      rng_(rng) {
  RFED_CHECK(dataset_ != nullptr);
  RFED_CHECK_GT(batch_size_, 0);
  RFED_CHECK(!indices_.empty());
  rng_.Shuffle(&indices_);
}

Batch Batcher::Next() {
  if (cursor_ >= indices_.size()) {
    cursor_ = 0;
    rng_.Shuffle(&indices_);
  }
  const size_t end =
      std::min(cursor_ + static_cast<size_t>(batch_size_), indices_.size());
  std::vector<int> batch_indices(indices_.begin() + static_cast<int64_t>(cursor_),
                                 indices_.begin() + static_cast<int64_t>(end));
  cursor_ = end;
  return dataset_->GetBatch(batch_indices);
}

void Batcher::Skip() {
  if (cursor_ >= indices_.size()) {
    cursor_ = 0;
    rng_.Shuffle(&indices_);
  }
  cursor_ =
      std::min(cursor_ + static_cast<size_t>(batch_size_), indices_.size());
}

BatcherState Batcher::SaveState() const {
  BatcherState state;
  state.indices = indices_;
  state.cursor = static_cast<uint64_t>(cursor_);
  state.rng = rng_.SaveState();
  return state;
}

void Batcher::LoadState(const BatcherState& state) {
  RFED_CHECK_EQ(state.indices.size(), indices_.size())
      << "checkpointed batcher state is for a different client view";
  RFED_CHECK_LE(state.cursor, state.indices.size());
  indices_ = state.indices;
  cursor_ = static_cast<size_t>(state.cursor);
  rng_.LoadState(state.rng);
}

int64_t Batcher::BatchesPerEpoch() const {
  return (num_examples() + batch_size_ - 1) / batch_size_;
}

}  // namespace rfed
