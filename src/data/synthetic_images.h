#ifndef RFED_DATA_SYNTHETIC_IMAGES_H_
#define RFED_DATA_SYNTHETIC_IMAGES_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace rfed {

/// Statistical profile of a synthetic image benchmark. The real datasets
/// are not available offline; these profiles reproduce the *roles* the
/// paper assigns them (see DESIGN.md section 2): "mnist" is an easy task
/// (little headroom between IID and non-IID), "cifar" is a hard task
/// (large non-IID penalty), "femnist" has natural per-writer feature and
/// quantity skew.
struct ImageProfile {
  std::string name;
  int channels = 1;
  int image_size = 12;  ///< square side
  int num_classes = 10;
  /// Number of Gaussian prototype modes per class (cifar uses >1 to create
  /// intra-class multimodality).
  int modes_per_class = 1;
  /// Scale of the class-specific prototype component (signal).
  float prototype_scale = 1.0f;
  /// Scale of the class-independent shared component (confuser).
  float shared_scale = 0.0f;
  /// Per-pixel Gaussian observation noise.
  float noise_stddev = 0.5f;
  /// Number of distinct writers (>0 enables per-writer style transforms
  /// and populates writer ids; used by the femnist profile).
  int num_writers = 0;
  /// Strength of the per-writer affine style shift.
  float writer_shift = 0.0f;
  /// Box-blur passes applied to prototypes so images have the spatial
  /// correlation convolution kernels exploit.
  int blur_passes = 1;
};

/// Easy 10-class 12x12x1 task; every method reaches high accuracy, the
/// non-IID penalty is small (paper Sec. VI-B1).
ImageProfile MnistLikeProfile();

/// Hard 10-class 12x12x3 task; overlapping multi-modal classes with heavy
/// noise so totally non-IID training loses a large accuracy margin
/// (paper Sec. VI-B2).
ImageProfile CifarLikeProfile();

/// Writer-partitioned task with per-writer feature shifts and quantity
/// skew (paper Sec. VI-B4).
ImageProfile FemnistLikeProfile();

/// A generated train/test corpus. `train_writers` maps each training
/// example to its writer (empty when the profile has no writers).
struct SyntheticImageData {
  Dataset train;
  Dataset test;
  std::vector<int> train_writers;
};

/// Draws a dataset from the profile. Deterministic given (profile, sizes,
/// seed of *rng).
SyntheticImageData GenerateImageData(const ImageProfile& profile,
                                     int64_t train_examples,
                                     int64_t test_examples, Rng* rng);

}  // namespace rfed

#endif  // RFED_DATA_SYNTHETIC_IMAGES_H_
