#include "data/synthetic_text.h"

#include <algorithm>

#include "util/check.h"

namespace rfed {

TextProfile Sent140LikeProfile() { return TextProfile{}; }

SyntheticTextData GenerateTextData(const TextProfile& profile,
                                   int64_t train_examples,
                                   int64_t test_examples, Rng* rng) {
  RFED_CHECK_GE(profile.vocab_size, 16);
  RFED_CHECK_EQ(profile.num_classes, 2) << "sentiment corpus is binary";
  const int v = profile.vocab_size;
  // Token-id space: [0, v/4) positive band, [v/4, v/2) negative band,
  // [v/2, v) neutral region hosting the user style bands.
  const int band = v / 4;
  const int neutral_begin = v / 2;
  const int neutral_size = v - neutral_begin;
  RFED_CHECK_GT(neutral_size, profile.style_band_width);

  struct User {
    int style_offset;   // start of style band within the neutral region
    float class_bias;   // P(label = 1) for this user
  };
  std::vector<User> users;
  users.reserve(static_cast<size_t>(profile.num_users));
  for (int u = 0; u < profile.num_users; ++u) {
    User user;
    user.style_offset =
        rng->UniformInt(neutral_size - profile.style_band_width);
    user.class_bias = std::clamp(
        0.5f + profile.user_class_bias * static_cast<float>(rng->Normal()),
        0.05f, 0.95f);
    users.push_back(user);
  }

  auto synthesize = [&](int64_t n, bool record_users,
                        std::vector<int>* user_ids) {
    std::vector<std::vector<int>> tokens;
    std::vector<int> labels;
    tokens.reserve(static_cast<size_t>(n));
    labels.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const int u = rng->UniformInt(profile.num_users);
      const User& user = users[static_cast<size_t>(u)];
      if (record_users) user_ids->push_back(u);
      const int label = rng->Uniform() < user.class_bias ? 1 : 0;
      std::vector<int> seq(static_cast<size_t>(profile.sequence_length));
      for (int t = 0; t < profile.sequence_length; ++t) {
        int token = 0;
        if (rng->Uniform() < profile.sentiment_token_fraction) {
          // Sentiment token from the label's band, flipped to the
          // opposite band with probability sentiment_flip.
          const bool flip = rng->Uniform() < profile.sentiment_flip;
          const int effective = flip ? 1 - label : label;
          token = effective * band + rng->UniformInt(band);
        } else {
          // Style token from this user's band in the neutral region.
          token = neutral_begin + user.style_offset +
                  rng->UniformInt(profile.style_band_width);
        }
        seq[static_cast<size_t>(t)] = token;
      }
      tokens.push_back(std::move(seq));
      labels.push_back(label);
    }
    return Dataset(std::move(tokens), std::move(labels), profile.num_classes,
                   profile.vocab_size);
  };

  std::vector<int> train_users;
  Dataset train = synthesize(train_examples, /*record_users=*/true,
                             &train_users);
  std::vector<int> unused;
  Dataset test = synthesize(test_examples, /*record_users=*/false, &unused);
  return SyntheticTextData{std::move(train), std::move(test),
                           std::move(train_users)};
}

}  // namespace rfed
