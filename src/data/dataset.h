#ifndef RFED_DATA_DATASET_H_
#define RFED_DATA_DATASET_H_

#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace rfed {

/// One mini-batch handed to a model. Exactly one of {images, tokens} is
/// populated, matching the dataset kind.
struct Batch {
  Tensor images;                         ///< [B, C, H, W] for image data.
  std::vector<std::vector<int>> tokens;  ///< [B][T] token ids for sequences.
  std::vector<int> labels;               ///< B class labels.

  int64_t size() const { return static_cast<int64_t>(labels.size()); }
};

/// Immutable in-memory labeled dataset, either images (dense tensor) or
/// fixed-length token sequences. Clients hold index views into a shared
/// dataset (see ClientSplit in data/partition.h), so the simulator keeps a
/// single copy of each corpus regardless of the number of clients.
class Dataset {
 public:
  enum class Kind { kImage, kSequence };

  /// Image dataset; images [N, C, H, W], labels.size() == N.
  Dataset(Tensor images, std::vector<int> labels, int num_classes);

  /// Sequence dataset; all sequences must share the same length.
  Dataset(std::vector<std::vector<int>> tokens, std::vector<int> labels,
          int num_classes, int vocab_size);

  Kind kind() const { return kind_; }
  int64_t size() const { return static_cast<int64_t>(labels_.size()); }
  int num_classes() const { return num_classes_; }
  int vocab_size() const { return vocab_size_; }

  const std::vector<int>& labels() const { return labels_; }
  int label(int64_t i) const { return labels_[static_cast<size_t>(i)]; }

  /// Shape of one image example [C, H, W]; requires kind() == kImage.
  Shape ExampleShape() const;
  /// Sequence length; requires kind() == kSequence.
  int64_t sequence_length() const;

  /// Materializes the examples at `indices` into a batch.
  Batch GetBatch(const std::vector<int>& indices) const;

  /// Batch over all examples (for evaluation of small datasets).
  Batch GetAll() const;

  /// Number of examples per class.
  std::vector<int64_t> ClassHistogram() const;

 private:
  Kind kind_;
  int num_classes_;
  int vocab_size_ = 0;
  Tensor images_;  // [N, C, H, W] when kind_ == kImage.
  std::vector<std::vector<int>> tokens_;
  std::vector<int> labels_;
};

}  // namespace rfed

#endif  // RFED_DATA_DATASET_H_
