#ifndef RFED_DATA_SYNTHETIC_TEXT_H_
#define RFED_DATA_SYNTHETIC_TEXT_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace rfed {

/// Sent140-like synthetic sentiment corpus: fixed-length token sequences
/// with binary labels, generated per-user. Each user mixes (a) a
/// class-conditional sentiment-token distribution shared across users and
/// (b) a user-specific style distribution — so the corpus is *naturally
/// feature-skewed by user*, the property the paper exploits when sampling
/// Sent140 users as non-IID clients.
struct TextProfile {
  std::string name = "sent140";
  int vocab_size = 64;
  int sequence_length = 16;
  int num_classes = 2;
  int num_users = 500;
  /// Fraction of tokens drawn from the sentiment (class) distribution;
  /// the remainder comes from the user style distribution.
  float sentiment_token_fraction = 0.35f;
  /// Probability that a sentiment token is drawn from the *opposite*
  /// class's band (annotation noise — bounds achievable accuracy the way
  /// distant supervision bounds Sent140's).
  float sentiment_flip = 0.2f;
  /// Width of each user's preferred style band in token-id space.
  int style_band_width = 12;
  /// Per-user bias toward one class (class imbalance across users).
  float user_class_bias = 0.25f;
};

TextProfile Sent140LikeProfile();

/// Generated corpus; `train_users` maps each training example to its user.
struct SyntheticTextData {
  Dataset train;
  Dataset test;
  std::vector<int> train_users;
};

SyntheticTextData GenerateTextData(const TextProfile& profile,
                                   int64_t train_examples,
                                   int64_t test_examples, Rng* rng);

}  // namespace rfed

#endif  // RFED_DATA_SYNTHETIC_TEXT_H_
