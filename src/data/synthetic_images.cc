#include "data/synthetic_images.h"

#include <cmath>

#include "util/check.h"

namespace rfed {
namespace {

/// In-place 3x3 box blur over each channel plane (replicated borders).
void BoxBlur(Tensor* img, int channels, int size) {
  Tensor copy = *img;
  auto clamp = [size](int v) { return std::min(std::max(v, 0), size - 1); };
  for (int c = 0; c < channels; ++c) {
    for (int y = 0; y < size; ++y) {
      for (int x = 0; x < size; ++x) {
        float acc = 0.0f;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            acc += copy.at((c * size + clamp(y + dy)) * size + clamp(x + dx));
          }
        }
        img->at((c * size + y) * size + x) = acc / 9.0f;
      }
    }
  }
}

struct WriterStyle {
  float gain;
  Tensor shift;  // [C*S*S]
};

}  // namespace

ImageProfile MnistLikeProfile() {
  ImageProfile p;
  p.name = "mnist";
  p.channels = 1;
  p.image_size = 12;
  p.num_classes = 10;
  p.modes_per_class = 1;
  p.prototype_scale = 1.6f;
  p.shared_scale = 0.0f;
  p.noise_stddev = 0.6f;
  p.blur_passes = 1;
  return p;
}

ImageProfile CifarLikeProfile() {
  ImageProfile p;
  p.name = "cifar";
  p.channels = 3;
  p.image_size = 12;
  p.num_classes = 10;
  p.modes_per_class = 2;
  p.prototype_scale = 1.0f;
  p.shared_scale = 0.5f;
  p.noise_stddev = 0.9f;
  p.blur_passes = 2;
  return p;
}

ImageProfile FemnistLikeProfile() {
  ImageProfile p;
  p.name = "femnist";
  p.channels = 1;
  p.image_size = 12;
  p.num_classes = 10;
  p.modes_per_class = 1;
  p.prototype_scale = 1.2f;
  p.shared_scale = 0.0f;
  p.noise_stddev = 0.7f;
  p.num_writers = 100;
  p.writer_shift = 0.5f;
  p.blur_passes = 1;
  return p;
}

SyntheticImageData GenerateImageData(const ImageProfile& profile,
                                     int64_t train_examples,
                                     int64_t test_examples, Rng* rng) {
  RFED_CHECK_GT(train_examples, 0);
  RFED_CHECK_GT(test_examples, 0);
  const int c = profile.channels;
  const int s = profile.image_size;
  const int64_t pixels = static_cast<int64_t>(c) * s * s;

  // Class-and-mode prototypes with shared confusion component.
  Tensor shared = Tensor::Normal(Shape{pixels}, 0.0f, profile.shared_scale, rng);
  std::vector<Tensor> prototypes;
  const int num_modes = profile.num_classes * profile.modes_per_class;
  prototypes.reserve(static_cast<size_t>(num_modes));
  for (int m = 0; m < num_modes; ++m) {
    Tensor proto =
        Tensor::Normal(Shape{pixels}, 0.0f, profile.prototype_scale, rng);
    proto.AddInPlace(shared);
    for (int b = 0; b < profile.blur_passes; ++b) BoxBlur(&proto, c, s);
    prototypes.push_back(std::move(proto));
  }

  // Writer styles (femnist profile).
  std::vector<WriterStyle> writers;
  for (int w = 0; w < profile.num_writers; ++w) {
    WriterStyle style;
    style.gain =
        1.0f + profile.writer_shift * static_cast<float>(rng->Normal()) * 0.3f;
    style.shift =
        Tensor::Normal(Shape{pixels}, 0.0f, profile.writer_shift, rng);
    for (int b = 0; b < profile.blur_passes; ++b) BoxBlur(&style.shift, c, s);
    writers.push_back(std::move(style));
  }

  auto synthesize = [&](int64_t n, bool record_writers,
                        std::vector<int>* writer_ids) {
    Tensor images(Shape{n, c, s, s});
    std::vector<int> labels(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const int label = rng->UniformInt(profile.num_classes);
      const int mode = rng->UniformInt(profile.modes_per_class);
      const Tensor& proto =
          prototypes[static_cast<size_t>(label * profile.modes_per_class + mode)];
      labels[static_cast<size_t>(i)] = label;
      float* dst = images.data() + i * pixels;
      const WriterStyle* style = nullptr;
      if (!writers.empty()) {
        const int w = rng->UniformInt(profile.num_writers);
        style = &writers[static_cast<size_t>(w)];
        if (record_writers) writer_ids->push_back(w);
      }
      for (int64_t p = 0; p < pixels; ++p) {
        float v = proto.at(p) +
                  profile.noise_stddev * static_cast<float>(rng->Normal());
        if (style != nullptr) v = style->gain * v + style->shift.at(p);
        dst[p] = v;
      }
    }
    return Dataset(std::move(images), std::move(labels), profile.num_classes);
  };

  std::vector<int> train_writers;
  Dataset train = synthesize(train_examples, /*record_writers=*/true,
                             &train_writers);
  std::vector<int> unused;
  Dataset test = synthesize(test_examples, /*record_writers=*/false, &unused);
  return SyntheticImageData{std::move(train), std::move(test),
                            std::move(train_writers)};
}

}  // namespace rfed
