#ifndef RFED_DATA_BATCHER_H_
#define RFED_DATA_BATCHER_H_

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace rfed {

/// Exact iteration state of a Batcher — the current shuffled order, the
/// epoch cursor, and the shuffle RNG position — captured by run
/// checkpoints so a resumed client continues its epoch mid-stream,
/// bit-identical to the uninterrupted run.
struct BatcherState {
  std::vector<int> indices;  ///< current shuffled order
  uint64_t cursor = 0;
  RngState rng;
};

/// Mini-batch sampler over a client's index view of a shared dataset.
/// Iterates epochs of a client-local shuffle; the final batch of an epoch
/// may be smaller than batch_size. Owns its Rng so per-client sampling
/// streams are independent and reproducible.
class Batcher {
 public:
  Batcher(const Dataset* dataset, std::vector<int> indices, int batch_size,
          Rng rng);

  /// Next mini-batch, reshuffling at epoch boundaries.
  Batch Next();

  /// Advances the iteration state exactly as one Next() call would —
  /// same cursor movement, same shuffle-RNG draws at epoch boundaries —
  /// without materializing the batch. Used when local training is
  /// delegated to a remote worker: the server keeps its replica of the
  /// client's sampling stream in lockstep so checkpoints and resumed
  /// runs stay byte-identical to in-process execution.
  void Skip();

  /// Snapshot / restore of the iteration state (checkpointing). Load
  /// aborts if the state's index multiset does not match this batcher's
  /// client view (wrong client or wrong partition).
  BatcherState SaveState() const;
  void LoadState(const BatcherState& state);

  /// Number of batches per epoch (ceil division).
  int64_t BatchesPerEpoch() const;

  int64_t num_examples() const { return static_cast<int64_t>(indices_.size()); }
  const std::vector<int>& indices() const { return indices_; }

 private:
  const Dataset* dataset_;
  std::vector<int> indices_;
  int batch_size_;
  Rng rng_;
  size_t cursor_ = 0;
};

}  // namespace rfed

#endif  // RFED_DATA_BATCHER_H_
