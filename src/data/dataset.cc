#include "data/dataset.h"

#include <algorithm>

#include "util/check.h"

namespace rfed {

Dataset::Dataset(Tensor images, std::vector<int> labels, int num_classes)
    : kind_(Kind::kImage),
      num_classes_(num_classes),
      images_(std::move(images)),
      labels_(std::move(labels)) {
  RFED_CHECK_EQ(images_.rank(), 4);
  RFED_CHECK_EQ(images_.dim(0), static_cast<int64_t>(labels_.size()));
  for (int label : labels_) {
    RFED_CHECK_GE(label, 0);
    RFED_CHECK_LT(label, num_classes_);
  }
}

Dataset::Dataset(std::vector<std::vector<int>> tokens, std::vector<int> labels,
                 int num_classes, int vocab_size)
    : kind_(Kind::kSequence),
      num_classes_(num_classes),
      vocab_size_(vocab_size),
      tokens_(std::move(tokens)),
      labels_(std::move(labels)) {
  RFED_CHECK_EQ(tokens_.size(), labels_.size());
  RFED_CHECK(!tokens_.empty());
  const size_t len = tokens_[0].size();
  for (const auto& seq : tokens_) {
    RFED_CHECK_EQ(seq.size(), len);
    for (int t : seq) {
      RFED_CHECK_GE(t, 0);
      RFED_CHECK_LT(t, vocab_size_);
    }
  }
}

Shape Dataset::ExampleShape() const {
  RFED_CHECK(kind_ == Kind::kImage);
  return Shape{images_.dim(1), images_.dim(2), images_.dim(3)};
}

int64_t Dataset::sequence_length() const {
  RFED_CHECK(kind_ == Kind::kSequence);
  return static_cast<int64_t>(tokens_[0].size());
}

Batch Dataset::GetBatch(const std::vector<int>& indices) const {
  Batch batch;
  batch.labels.reserve(indices.size());
  for (int i : indices) {
    RFED_CHECK_GE(i, 0);
    RFED_CHECK_LT(i, size());
    batch.labels.push_back(labels_[static_cast<size_t>(i)]);
  }
  if (kind_ == Kind::kImage) {
    const int64_t example_size =
        images_.dim(1) * images_.dim(2) * images_.dim(3);
    Tensor out(Shape{static_cast<int64_t>(indices.size()), images_.dim(1),
                     images_.dim(2), images_.dim(3)});
    for (size_t i = 0; i < indices.size(); ++i) {
      const float* src = images_.data() + indices[i] * example_size;
      std::copy(src, src + example_size,
                out.data() + static_cast<int64_t>(i) * example_size);
    }
    batch.images = std::move(out);
  } else {
    batch.tokens.reserve(indices.size());
    for (int i : indices) batch.tokens.push_back(tokens_[static_cast<size_t>(i)]);
  }
  return batch;
}

Batch Dataset::GetAll() const {
  std::vector<int> all(static_cast<size_t>(size()));
  for (int64_t i = 0; i < size(); ++i) all[static_cast<size_t>(i)] = static_cast<int>(i);
  return GetBatch(all);
}

std::vector<int64_t> Dataset::ClassHistogram() const {
  std::vector<int64_t> hist(static_cast<size_t>(num_classes_), 0);
  for (int label : labels_) ++hist[static_cast<size_t>(label)];
  return hist;
}

}  // namespace rfed
