#ifndef RFED_DATA_CLIENT_POOL_H_
#define RFED_DATA_CLIENT_POOL_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace rfed {

/// Configuration of a lazily materialized cross-device population.
struct ClientPoolOptions {
  int num_clients = 0;             ///< Enrolled population size N.
  int examples_per_client = 0;     ///< Training examples per client view.
  int test_examples_per_client = 0;  ///< 0 disables per-client test views.
  /// Fraction of each client's examples drawn IID from the whole pool; the
  /// remainder comes from the client's primary-class slice. Mirrors the
  /// paper's similarity-s partitioner (data/partition.h) in expectation.
  double similarity = 0.0;
  uint64_t seed = 0;               ///< Root seed of all per-client streams.
};

/// Cross-device client population over a shared synthetic pool.
///
/// The legacy path (data/partition.h) materializes one index list per
/// client at startup — O(N) memory and time, fine at the paper's N ~ 100
/// but not at the cross-device regime of 10^5..10^6 enrolled devices with
/// a few hundred sampled per round. A ClientPool instead stores only the
/// shared pool plus O(num_classes) class slices; client k's view is a
/// pure function of (seed, k) recomputed on demand via MixSeed
/// (util/rng.h), so materializing a round costs O(sampled), and the view
/// is byte-identical no matter when — or how often — it is materialized.
/// That identity is what tests/scale_test.cc pins differentially against
/// eager per-client copies.
///
/// Unlike the legacy partitioner, views are drawn *with* replacement from
/// the pool, so two clients may share a pool example; weights stay exact
/// because every client view has the same size.
class ClientPool {
 public:
  /// Pools must outlive the ClientPool. test_pool may be null when
  /// options.test_examples_per_client == 0.
  ClientPool(const Dataset* train_pool, const Dataset* test_pool,
             const ClientPoolOptions& options);

  int num_clients() const { return options_.num_clients; }
  const ClientPoolOptions& options() const { return options_; }
  const Dataset& train_pool() const { return *train_pool_; }
  const Dataset* test_pool() const { return test_pool_; }

  /// All client views have the same size, so sizes and FedAvg weights are
  /// O(1) — no per-client state is consulted.
  int64_t ClientSize(int) const { return options_.examples_per_client; }
  int64_t TotalExamples() const {
    return static_cast<int64_t>(options_.num_clients) *
           options_.examples_per_client;
  }
  double ClientWeight(int) const { return 1.0 / options_.num_clients; }

  /// Primary class of client k: contiguous blocks of client ids map to
  /// classes, mirroring the sorted-shard dealing of SimilarityPartition.
  int ClientClass(int k) const;

  /// Training-pool indices of client k's view, recomputed deterministically
  /// from (seed, k). O(examples_per_client).
  std::vector<int> TrainIndices(int k) const;

  /// Test-pool indices of client k's view (empty when disabled).
  std::vector<int> TestIndices(int k) const;

  /// Eager reference: materializes every client's train view, O(N).
  /// Exists for the differential test harness and small-N tooling only —
  /// the simulator itself never calls this in pool mode.
  std::vector<std::vector<int>> MaterializeAllTrainIndices() const;

 private:
  std::vector<int> DrawView(int k, uint64_t lineage, const Dataset& pool,
                            const std::vector<std::vector<int>>& by_class,
                            int count) const;

  const Dataset* train_pool_;
  const Dataset* test_pool_;
  ClientPoolOptions options_;
  std::vector<std::vector<int>> train_by_class_;
  std::vector<std::vector<int>> test_by_class_;
};

}  // namespace rfed

#endif  // RFED_DATA_CLIENT_POOL_H_
