#include "data/client_pool.h"

#include "util/check.h"
#include "util/rng.h"

namespace rfed {
namespace {

// Seed lineages for per-client streams. Distinct constants keep the train
// view, test view, and (in fl/) batcher streams of the same client
// decorrelated even though they share the root seed.
constexpr uint64_t kTrainViewLineage = 0xc11e9700a11dull;
constexpr uint64_t kTestViewLineage = 0xc11e97007e57ull;

std::vector<std::vector<int>> IndicesByClass(const Dataset& pool) {
  std::vector<std::vector<int>> by_class(
      static_cast<size_t>(pool.num_classes()));
  const std::vector<int>& labels = pool.labels();
  for (size_t i = 0; i < labels.size(); ++i) {
    by_class[static_cast<size_t>(labels[i])].push_back(static_cast<int>(i));
  }
  return by_class;
}

}  // namespace

ClientPool::ClientPool(const Dataset* train_pool, const Dataset* test_pool,
                       const ClientPoolOptions& options)
    : train_pool_(train_pool), test_pool_(test_pool), options_(options) {
  RFED_CHECK(train_pool_ != nullptr);
  RFED_CHECK_GT(options_.num_clients, 0);
  RFED_CHECK_GT(options_.examples_per_client, 0);
  RFED_CHECK_GE(options_.similarity, 0.0);
  RFED_CHECK_LE(options_.similarity, 1.0);
  RFED_CHECK_GT(train_pool_->size(), 0);
  train_by_class_ = IndicesByClass(*train_pool_);
  // Non-IID draws come from per-class slices; a class with no pool
  // examples would leave its clients with nothing to draw from.
  for (const auto& cls : train_by_class_) RFED_CHECK(!cls.empty());
  if (options_.test_examples_per_client > 0) {
    RFED_CHECK(test_pool_ != nullptr);
    RFED_CHECK_GT(test_pool_->size(), 0);
    test_by_class_ = IndicesByClass(*test_pool_);
    for (const auto& cls : test_by_class_) RFED_CHECK(!cls.empty());
  }
}

int ClientPool::ClientClass(int k) const {
  RFED_CHECK_GE(k, 0);
  RFED_CHECK_LT(k, options_.num_clients);
  return static_cast<int>(static_cast<int64_t>(k) *
                          train_pool_->num_classes() / options_.num_clients);
}

std::vector<int> ClientPool::DrawView(
    int k, uint64_t lineage, const Dataset& pool,
    const std::vector<std::vector<int>>& by_class, int count) const {
  Rng rng(MixSeed(options_.seed, lineage, static_cast<uint64_t>(k)));
  const std::vector<int>& cls = by_class[static_cast<size_t>(ClientClass(k))];
  const int pool_size = static_cast<int>(pool.size());
  std::vector<int> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    // One Uniform per example regardless of similarity keeps the stream
    // layout fixed, so the view is a pure function of (seed, lineage, k).
    const bool iid = rng.Uniform() < options_.similarity;
    if (iid) {
      out.push_back(rng.UniformInt(pool_size));
    } else {
      out.push_back(cls[static_cast<size_t>(
          rng.UniformInt(static_cast<int>(cls.size())))]);
    }
  }
  return out;
}

std::vector<int> ClientPool::TrainIndices(int k) const {
  return DrawView(k, kTrainViewLineage, *train_pool_, train_by_class_,
                  options_.examples_per_client);
}

std::vector<int> ClientPool::TestIndices(int k) const {
  if (options_.test_examples_per_client <= 0) return {};
  return DrawView(k, kTestViewLineage, *test_pool_, test_by_class_,
                  options_.test_examples_per_client);
}

std::vector<std::vector<int>> ClientPool::MaterializeAllTrainIndices() const {
  std::vector<std::vector<int>> all;
  all.reserve(static_cast<size_t>(options_.num_clients));
  for (int k = 0; k < options_.num_clients; ++k) {
    all.push_back(TrainIndices(k));
  }
  return all;
}

}  // namespace rfed
