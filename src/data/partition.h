#ifndef RFED_DATA_PARTITION_H_
#define RFED_DATA_PARTITION_H_

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace rfed {

/// Assignment of dataset example indices to clients. client_indices[k]
/// lists the examples owned by client k; clients never share examples.
struct ClientSplit {
  std::vector<std::vector<int>> client_indices;

  int num_clients() const { return static_cast<int>(client_indices.size()); }
  /// Per-client example counts.
  std::vector<int64_t> Sizes() const;
  /// FedAvg aggregation weights p_k = n_k / n.
  std::vector<double> Weights() const;
};

/// The paper's similarity-s partitioner (following SCAFFOLD [8]): a
/// fraction `similarity` of the data is allocated IID across clients, the
/// remainder is sorted by label and dealt to clients in contiguous shards.
/// similarity = 1.0 is IID, 0.0 is "totally non-IID" (each client's
/// non-IID share covers ~num_classes/N adjacent classes).
ClientSplit SimilarityPartition(const Dataset& dataset, int num_clients,
                                double similarity, Rng* rng);

/// Uniform IID split (equivalent to similarity = 1).
ClientSplit IidPartition(const Dataset& dataset, int num_clients, Rng* rng);

/// Natural partition by owner id (writer/user): owners are grouped onto
/// clients, so clients inherit the owners' feature and quantity skew.
/// owner_ids[i] is the owner of example i; num_owners >= num_clients.
ClientSplit NaturalPartition(const std::vector<int>& owner_ids,
                             int num_owners, int num_clients, Rng* rng);

/// Measures label-distribution skew of a split: mean total-variation
/// distance between each client's label histogram and the global one
/// (0 = perfectly IID). Used by tests and the partition ablation.
double LabelSkew(const Dataset& dataset, const ClientSplit& split);

}  // namespace rfed

#endif  // RFED_DATA_PARTITION_H_
