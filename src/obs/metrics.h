#ifndef RFED_OBS_METRICS_H_
#define RFED_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rfed {
namespace obs {

// Process-global metrics registry: named counters, gauges and
// fixed-bucket histograms. The naming convention and the full table of
// metrics emitted by this repo live in docs/OBSERVABILITY.md.
//
// Determinism: counters are monotone sums of per-event increments and
// gauges publish single values, so snapshots taken at quiescent points
// (between rounds) are independent of thread interleaving — the per-round
// CSV columns derived from them are byte-stable across `num_threads` /
// `kernel_threads`. Handles returned by the registry are valid for the
// process lifetime; hot paths should look up once and cache the pointer.

/// Monotone counter (int64). Add() is a relaxed atomic fetch-add, safe
/// from any thread.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-writer-wins gauge (double). For "current level" readings such as
/// scratch-arena peak bytes.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. A sample v lands in the first bucket with
/// v <= edge, or in the overflow bucket when v exceeds every edge.
/// Bucket counts are relaxed atomics, so Observe() is thread-safe and
/// the bucket totals are interleaving-independent.
class Histogram {
 public:
  /// `edges` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> edges);

  void Observe(double v);
  int64_t TotalCount() const;

  const std::vector<double>& edges() const { return edges_; }
  /// Count in bucket i (i == edges().size() is the overflow bucket).
  int64_t BucketCount(size_t i) const;

  void Reset();

 private:
  std::vector<double> edges_;
  std::vector<std::atomic<int64_t>> buckets_;  // edges_.size() + 1
};

/// One metric's value flattened to (name, value) pairs. Histograms
/// expand to one entry per bucket (`name.le<edge>`, `name.over`) plus
/// `name.count`.
struct MetricSample {
  std::string name;
  double value = 0.0;
  /// True for counters/histograms (per-round deltas are meaningful);
  /// false for gauges (report the absolute reading).
  bool cumulative = true;
};

/// Global name → metric registry. GetCounter/GetGauge/GetHistogram
/// create on first use and return the same handle thereafter. A name is
/// bound to one kind for the process lifetime; re-requesting it as a
/// different kind aborts. GetHistogram ignores `edges` after creation.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, std::vector<double> edges);

  /// Flattened snapshot of every registered metric, sorted by name.
  std::vector<MetricSample> Snapshot() const;

  /// Zeroes every metric (values only — registrations are kept).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Subtracts `base` from `now` entrywise: cumulative samples report
/// now - base (skipping zero deltas is left to the caller); gauge
/// samples report their absolute `now` value. Names present only in
/// `now` are kept (base treated as 0).
std::vector<std::pair<std::string, double>> SnapshotDelta(
    const std::vector<MetricSample>& base, const std::vector<MetricSample>& now);

}  // namespace obs
}  // namespace rfed

#endif  // RFED_OBS_METRICS_H_
