#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.h"

namespace rfed {
namespace obs {

namespace internal {
std::atomic<bool> g_enabled{false};
std::atomic<double> g_virtual_now_ms{0.0};
}  // namespace internal

namespace {

// All wall timestamps are reported relative to one process-wide epoch so
// events from different lanes share a timeline in the Chrome viewer.
int64_t NowNs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

// One thread's buffer. The registry keeps these alive via shared_ptr so
// the (lane, events) survive the thread itself — worker pools are torn
// down per algorithm, but their spans must still be collectible.
struct ThreadBuffer {
  int lane = 0;
  int depth = 0;        // open spans on this thread (thread-private)
  int64_t next_seq = 0;
  std::mutex mu;        // guards events + next_seq vs. collector
  std::vector<TraceEvent> events;
};

struct Registry {
  std::mutex mu;
  int next_lane = 0;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: outlives exiting threads
  return *r;
}

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer* buf = [] {
    auto owned = std::make_shared<ThreadBuffer>();
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    owned->lane = r.next_lane++;
    r.buffers.push_back(owned);
    return owned.get();
  }();
  return *buf;
}

}  // namespace

void EnableTracing(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

void TraceSpan::Begin(const char* name) {
  name_ = name;
  start_ns_ = NowNs();
  virt_start_ms_ = TraceVirtualNowMs();
  ++LocalBuffer().depth;
}

void TraceSpan::End() {
  const int64_t end_ns = NowNs();
  ThreadBuffer& buf = LocalBuffer();
  --buf.depth;
  TraceEvent ev;
  ev.name = name_;
  ev.depth = buf.depth;
  ev.start_us = static_cast<double>(start_ns_) * 1e-3;
  ev.dur_us = static_cast<double>(end_ns - start_ns_) * 1e-3;
  ev.virt_start_ms = virt_start_ms_;
  ev.virt_end_ms = TraceVirtualNowMs();
  std::lock_guard<std::mutex> lock(buf.mu);
  ev.seq = buf.next_seq++;
  buf.events.push_back(ev);
}

std::vector<LaneTrace> CollectTrace() {
  Registry& r = GetRegistry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    buffers = r.buffers;
  }
  std::vector<LaneTrace> lanes;
  lanes.reserve(buffers.size());
  for (const auto& buf : buffers) {
    LaneTrace lane;
    lane.lane = buf->lane;
    {
      std::lock_guard<std::mutex> lock(buf->mu);
      lane.events = buf->events;
    }
    if (!lane.events.empty()) lanes.push_back(std::move(lane));
  }
  std::sort(lanes.begin(), lanes.end(),
            [](const LaneTrace& a, const LaneTrace& b) {
              return a.lane < b.lane;
            });
  return lanes;
}

void ClearTrace() {
  Registry& r = GetRegistry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    buffers = r.buffers;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->events.clear();
    buf->next_seq = 0;
  }
}

namespace {

void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      *out += hex;
    } else {
      out->push_back(c);
    }
  }
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

}  // namespace

void WriteChromeTrace(const std::string& path) {
  const std::vector<LaneTrace> lanes = CollectTrace();
  std::string json;
  json.reserve(256 + lanes.size() * 4096);
  json += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const LaneTrace& lane : lanes) {
    if (!first) json += ",";
    first = false;
    char meta[128];
    std::snprintf(meta, sizeof(meta),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"lane %d\"}}",
                  lane.lane, lane.lane);
    json += meta;
    for (const TraceEvent& ev : lane.events) {
      json += ",{\"name\":\"";
      AppendJsonEscaped(&json, ev.name);
      json += "\",\"ph\":\"X\",\"cat\":\"rfed\",\"pid\":1,\"tid\":";
      json += std::to_string(lane.lane);
      json += ",\"ts\":";
      AppendDouble(&json, ev.start_us);
      json += ",\"dur\":";
      AppendDouble(&json, ev.dur_us);
      json += ",\"args\":{\"seq\":";
      json += std::to_string(ev.seq);
      json += ",\"depth\":";
      json += std::to_string(ev.depth);
      json += ",\"virt_start_ms\":";
      AppendDouble(&json, ev.virt_start_ms);
      json += ",\"virt_end_ms\":";
      AppendDouble(&json, ev.virt_end_ms);
      json += "}}";
    }
  }
  json += "]}\n";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  RFED_CHECK(f != nullptr) << "WriteChromeTrace: cannot open " << path;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  RFED_CHECK(written == json.size()) << "WriteChromeTrace: short write to " << path;
}

std::vector<PhaseStats> SummarizeTrace() {
  std::map<std::string, PhaseStats> by_name;
  for (const LaneTrace& lane : CollectTrace()) {
    for (const TraceEvent& ev : lane.events) {
      PhaseStats& s = by_name[ev.name];
      if (s.name.empty()) s.name = ev.name;
      ++s.count;
      s.wall_ms += ev.dur_us * 1e-3;
      s.virt_ms += ev.virt_end_ms - ev.virt_start_ms;
    }
  }
  std::vector<PhaseStats> out;
  out.reserve(by_name.size());
  for (auto& kv : by_name) out.push_back(std::move(kv.second));
  std::sort(out.begin(), out.end(), [](const PhaseStats& a, const PhaseStats& b) {
    if (a.wall_ms != b.wall_ms) return a.wall_ms > b.wall_ms;
    return a.name < b.name;
  });
  return out;
}

std::string FormatTraceSummary() {
  const std::vector<PhaseStats> stats = SummarizeTrace();
  std::ostringstream os;
  os << "phase                 count    wall_ms    virt_ms\n";
  for (const PhaseStats& s : stats) {
    char line[160];
    std::snprintf(line, sizeof(line), "%-20s %6lld %10.2f %10.2f\n",
                  s.name.c_str(), static_cast<long long>(s.count), s.wall_ms,
                  s.virt_ms);
    os << line;
  }
  return os.str();
}

}  // namespace obs
}  // namespace rfed
