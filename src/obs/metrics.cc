#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace rfed {
namespace obs {

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), buckets_(edges_.size() + 1) {
  RFED_CHECK(!edges_.empty()) << "Histogram needs at least one bucket edge";
  for (size_t i = 1; i < edges_.size(); ++i) {
    RFED_CHECK(edges_[i - 1] < edges_[i])
        << "Histogram edges must be strictly increasing";
  }
}

void Histogram::Observe(double v) {
  size_t i = 0;
  while (i < edges_.size() && v > edges_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
}

int64_t Histogram::TotalCount() const {
  int64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

int64_t Histogram::BucketCount(size_t i) const {
  RFED_CHECK(i < buckets_.size()) << "Histogram bucket index out of range";
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* r = new MetricsRegistry();  // leaked on purpose
  return *r;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RFED_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric '" << name << "' already registered as a different kind";
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RFED_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric '" << name << "' already registered as a different kind";
  auto& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> edges) {
  std::lock_guard<std::mutex> lock(mu_);
  RFED_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0)
      << "metric '" << name << "' already registered as a different kind";
  auto& slot = histograms_[name];
  if (!slot) slot.reset(new Histogram(std::move(edges)));
  return slot.get();
}

namespace {

std::string FormatEdge(double edge) {
  char buf[32];
  // Trim trailing zeros so "2.500000" reads "2.5" in CSV headers.
  std::snprintf(buf, sizeof(buf), "%g", edge);
  return buf;
}

}  // namespace

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() * 4);
  for (const auto& kv : counters_) {
    out.push_back({kv.first, static_cast<double>(kv.second->value()), true});
  }
  for (const auto& kv : gauges_) {
    out.push_back({kv.first, kv.second->value(), false});
  }
  for (const auto& kv : histograms_) {
    const Histogram& h = *kv.second;
    for (size_t i = 0; i < h.edges().size(); ++i) {
      out.push_back({kv.first + ".le" + FormatEdge(h.edges()[i]),
                     static_cast<double>(h.BucketCount(i)), true});
    }
    out.push_back({kv.first + ".over",
                   static_cast<double>(h.BucketCount(h.edges().size())), true});
    out.push_back(
        {kv.first + ".count", static_cast<double>(h.TotalCount()), true});
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : counters_) kv.second->Reset();
  for (auto& kv : gauges_) kv.second->Reset();
  for (auto& kv : histograms_) kv.second->Reset();
}

std::vector<std::pair<std::string, double>> SnapshotDelta(
    const std::vector<MetricSample>& base,
    const std::vector<MetricSample>& now) {
  std::map<std::string, double> base_by_name;
  for (const MetricSample& s : base) base_by_name[s.name] = s.value;
  std::vector<std::pair<std::string, double>> out;
  out.reserve(now.size());
  for (const MetricSample& s : now) {
    double v = s.value;
    if (s.cumulative) {
      auto it = base_by_name.find(s.name);
      if (it != base_by_name.end()) v -= it->second;
    }
    out.emplace_back(s.name, v);
  }
  return out;
}

}  // namespace obs
}  // namespace rfed
