#ifndef RFED_OBS_TRACE_H_
#define RFED_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace rfed {
namespace obs {

// Deterministic tracing layer.
//
// A TraceSpan is an RAII marker around one phase of work (a round, a
// client's local training, one GEMM). Spans record wall time *and* the
// sim runtime's virtual clock, nest through a per-thread span stack, and
// are buffered per thread — the hot path never takes a shared lock that
// another worker contends on. The collected stream can be exported as
// Chrome `trace_event` JSON (load in chrome://tracing or Perfetto) or
// folded into a per-phase summary table.
//
// Determinism contract (see docs/OBSERVABILITY.md):
//   1. Tracing never perturbs training: spans consume no RNG draws and
//      touch no tensor state, so seeded runs are byte-identical with
//      tracing on or off (pinned by tests/obs_test.cc).
//   2. Per-thread buffers are merged in (lane, seq) order, where a lane
//      is a thread's buffer (numbered in first-event order) and seq is
//      that lane's program order. Within one lane the event stream is a
//      deterministic function of the run; across lanes only wall-clock
//      timestamps vary. Per-name span *counts* are invariant under
//      `num_threads` / `kernel_threads`.
//   3. The disabled path is one relaxed atomic load and a branch per
//      span site; nothing is allocated or recorded.
//
// Span names must be string literals (static storage duration): the
// buffers store the pointer, not a copy.

namespace internal {
extern std::atomic<bool> g_enabled;
extern std::atomic<double> g_virtual_now_ms;
}  // namespace internal

/// Whether spans are being recorded (process-global switch).
inline bool TracingEnabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Turns span recording on or off. Enabling is process-global: every
/// instrumented site in every thread starts recording. Already-buffered
/// events are kept; use ClearTrace() to start fresh.
void EnableTracing(bool enabled);

/// Publishes the sim runtime's virtual clock so spans can stamp virtual
/// begin/end times. Called by VirtualClock on every advance; with more
/// than one active clock in a process the last writer wins (the repo
/// runs one federation at a time).
inline void SetTraceVirtualNowMs(double now_ms) {
  internal::g_virtual_now_ms.store(now_ms, std::memory_order_relaxed);
}
inline double TraceVirtualNowMs() {
  return internal::g_virtual_now_ms.load(std::memory_order_relaxed);
}

/// One completed span. Events are appended to their lane's buffer when
/// the span *ends*, so within a lane children precede their parent and
/// `seq` is the lane's end order.
struct TraceEvent {
  const char* name = nullptr;  ///< static string literal
  int depth = 0;               ///< open ancestors on this lane at begin
  int64_t seq = 0;             ///< per-lane append order
  double start_us = 0.0;       ///< wall begin, µs since the trace epoch
  double dur_us = 0.0;         ///< wall duration in µs
  double virt_start_ms = 0.0;  ///< virtual clock at begin
  double virt_end_ms = 0.0;    ///< virtual clock at end
};

/// RAII span. Construct with a string literal; the destructor records
/// the completed event into the calling thread's buffer. No-op (and
/// allocation-free) while tracing is disabled; a span that *starts*
/// enabled records even if tracing is disabled before it ends.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TracingEnabled()) Begin(name);
  }
  ~TraceSpan() {
    if (name_ != nullptr) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(const char* name);
  void End();

  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  double virt_start_ms_ = 0.0;
};

/// One lane's buffered events (events in seq order).
struct LaneTrace {
  int lane = 0;
  std::vector<TraceEvent> events;
};

/// Snapshot of every lane's buffer, ordered by (lane, seq). Safe to call
/// while tracing is enabled, but meant for quiescent points (after a
/// run) — events recorded concurrently with the snapshot may or may not
/// be included.
std::vector<LaneTrace> CollectTrace();

/// Drops all buffered events and restarts every lane's seq counter at
/// zero. Lane numbers are sticky — a thread keeps its lane for the
/// process lifetime.
void ClearTrace();

/// Writes the buffered events as Chrome trace_event JSON ("X" complete
/// events, one tid per lane). Load the file in chrome://tracing or
/// https://ui.perfetto.dev. Aborts on I/O failure.
void WriteChromeTrace(const std::string& path);

/// Per-phase aggregate of the buffered events.
struct PhaseStats {
  std::string name;
  int64_t count = 0;
  double wall_ms = 0.0;  ///< summed span durations (nested spans double-count)
  double virt_ms = 0.0;  ///< summed virtual durations
};

/// Aggregates buffered events by span name, sorted by wall_ms descending.
std::vector<PhaseStats> SummarizeTrace();

/// SummarizeTrace() rendered as an aligned text table for the CLI.
std::string FormatTraceSummary();

}  // namespace obs
}  // namespace rfed

#endif  // RFED_OBS_TRACE_H_
