#include "util/backoff.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace rfed {

double BackoffDelayMs(const BackoffPolicy& policy, int attempt, Rng* rng) {
  RFED_CHECK_GE(attempt, 0);
  RFED_CHECK_GT(policy.initial_ms, 0.0);
  RFED_CHECK_GE(policy.multiplier, 1.0);
  RFED_CHECK_GE(policy.jitter, 0.0);
  RFED_CHECK_LT(policy.jitter, 1.0);
  // Grow in the cap's domain to avoid overflow for large attempt counts.
  double delay = policy.initial_ms;
  for (int i = 0; i < attempt && delay < policy.max_ms; ++i) {
    delay *= policy.multiplier;
  }
  delay = std::min(delay, policy.max_ms);
  if (policy.jitter > 0.0) {
    RFED_CHECK(rng != nullptr);
    delay *= 1.0 + policy.jitter * (2.0 * rng->Uniform() - 1.0);
  }
  return std::min(delay, policy.max_ms);
}

}  // namespace rfed
