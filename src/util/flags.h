#ifndef RFED_UTIL_FLAGS_H_
#define RFED_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace rfed {

/// A parsed "host:port" endpoint (the value of --listen / --connect).
struct HostPort {
  std::string host;
  int port = 0;
};

/// Parses "host:port" into *out. Accepts a non-empty host (no validation
/// beyond non-emptiness — names resolve at connect time) and an all-digit
/// port in [0, 65535]; port 0 means "kernel-assigned" for listeners.
/// Returns false — leaving *out untouched — on a missing colon, empty
/// host, empty/non-numeric port, or a port out of range.
bool ParseHostPort(const std::string& text, HostPort* out);

/// Minimal --key=value / --key value command-line parser for the example
/// binaries and the experiment CLI. Unknown keys are kept and can be
/// listed, so callers can reject typos explicitly.
class FlagParser {
 public:
  /// Parses argv; aborts on malformed arguments (missing value).
  FlagParser(int argc, const char* const* argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int GetInt(const std::string& key, int default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  /// Validated accessors for the serve binaries. Both abort (RFED_CHECK)
  /// with the offending value in the message — a malformed endpoint or an
  /// out-of-range count is a deployment configuration error, not
  /// something to limp past.
  HostPort GetHostPort(const std::string& key,
                       const std::string& default_value) const;
  /// GetInt that aborts unless the value lies in [min_value, max_value].
  int GetIntInRange(const std::string& key, int default_value, int min_value,
                    int max_value) const;

  /// All parsed keys (for validation / usage messages).
  std::vector<std::string> Keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace rfed

#endif  // RFED_UTIL_FLAGS_H_
