#ifndef RFED_UTIL_FLAGS_H_
#define RFED_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace rfed {

/// Minimal --key=value / --key value command-line parser for the example
/// binaries and the experiment CLI. Unknown keys are kept and can be
/// listed, so callers can reject typos explicitly.
class FlagParser {
 public:
  /// Parses argv; aborts on malformed arguments (missing value).
  FlagParser(int argc, const char* const* argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int GetInt(const std::string& key, int default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  /// All parsed keys (for validation / usage messages).
  std::vector<std::string> Keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace rfed

#endif  // RFED_UTIL_FLAGS_H_
