#ifndef RFED_UTIL_RNG_H_
#define RFED_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace rfed {

/// Exact serializable position of an Rng stream: the four xoshiro256**
/// state words plus the Box-Muller spare. Restoring it resumes the stream
/// bit-identically, which is what makes run checkpoints (fl/checkpoint.h)
/// reproduce an uninterrupted run byte-for-byte.
struct RngState {
  uint64_t words[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// Order-independent derivation of a child seed from (seed, lineage, k).
/// Unlike Rng::Fork(), which advances the parent stream and therefore
/// depends on how many forks happened before, MixSeed is a pure function:
/// the k-th client of a lineage gets the same stream no matter which
/// clients were materialized earlier. This is what lets cross-device runs
/// construct per-client state lazily (data/client_pool.h, pool-mode
/// batchers) without keeping 10^6 generators alive.
uint64_t MixSeed(uint64_t seed, uint64_t lineage, uint64_t k);

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). All stochastic components of the simulator (data synthesis,
/// partitioning, client sampling, mini-batching, init, DP noise) draw from
/// explicitly passed Rng instances so every experiment is reproducible from
/// a single seed. Never uses std::random_device or global state.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with given mean/stddev.
  double Normal(double mean, double stddev);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int i = static_cast<int>(v->size()) - 1; i > 0; --i) {
      int j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) uniformly (k <= n).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Derives an independent child generator; used to give each client or
  /// each round its own stream without correlation.
  Rng Fork();

  /// Snapshot / restore of the exact stream position (checkpointing).
  RngState SaveState() const;
  void LoadState(const RngState& state);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace rfed

#endif  // RFED_UTIL_RNG_H_
