#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace rfed {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "[RFED_CHECK failed] %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace rfed
