#ifndef RFED_UTIL_STOPWATCH_H_
#define RFED_UTIL_STOPWATCH_H_

#include <chrono>

namespace rfed {

/// Monotonic wall-clock stopwatch used for the per-round training-time
/// measurements in the efficiency evaluation (Fig. 10c/d).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rfed

#endif  // RFED_UTIL_STOPWATCH_H_
