#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace rfed {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string JoinInts(const std::vector<int>& values, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += sep;
    out += std::to_string(values[i]);
  }
  return out;
}

std::string FormatFixed(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

}  // namespace rfed
