#ifndef RFED_UTIL_CHECK_H_
#define RFED_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace rfed {

/// Aborts the process with a message identifying the failed invariant.
/// Used by the RFED_CHECK* macros; never call directly.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

namespace internal_check {

/// Stream-style message builder so call sites can write
/// `RFED_CHECK(x > 0) << "x was " << x;`.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace rfed

/// Fatal assertion enabled in all build types. Learning code depends on
/// shape invariants that silently corrupt results if violated, so these
/// stay on in Release builds too.
#define RFED_CHECK(condition)                                    \
  if (condition) {                                               \
  } else /* NOLINT */                                            \
    ::rfed::internal_check::CheckMessageBuilder(__FILE__, __LINE__, \
                                                #condition)

#define RFED_CHECK_EQ(a, b) RFED_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define RFED_CHECK_NE(a, b) RFED_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define RFED_CHECK_LT(a, b) RFED_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define RFED_CHECK_LE(a, b) RFED_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define RFED_CHECK_GT(a, b) RFED_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define RFED_CHECK_GE(a, b) RFED_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // RFED_UTIL_CHECK_H_
