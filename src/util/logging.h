#ifndef RFED_UTIL_LOGGING_H_
#define RFED_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace rfed {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_log {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_log
}  // namespace rfed

#define RFED_LOG(level)                                        \
  ::rfed::internal_log::LogMessage(::rfed::LogLevel::k##level, \
                                   __FILE__, __LINE__)

#endif  // RFED_UTIL_LOGGING_H_
