#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace rfed {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t MixSeed(uint64_t seed, uint64_t lineage, uint64_t k) {
  // Three chained splitmix64 steps; each input lands in a separate step so
  // (seed, lineage, k) triples that differ in any component decorrelate.
  uint64_t s = seed;
  uint64_t z = SplitMix64(&s) ^ lineage;
  z = SplitMix64(&z) ^ k;
  return SplitMix64(&z);
}

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int Rng::UniformInt(int n) {
  RFED_CHECK_GT(n, 0);
  return static_cast<int>(NextUint64() % static_cast<uint64_t>(n));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  RFED_CHECK_LE(k, n);
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: after k swaps the prefix is the sample.
  for (int i = 0; i < k; ++i) {
    int j = i + UniformInt(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

RngState Rng::SaveState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.words[i] = state_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::LoadState(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace rfed
