#ifndef RFED_UTIL_BACKOFF_H_
#define RFED_UTIL_BACKOFF_H_

#include "util/rng.h"

namespace rfed {

/// Exponential-backoff schedule for retransmission policies. Attempt i
/// (0-based) waits initial_ms * multiplier^i, capped at max_ms, with an
/// optional uniform jitter of +/- jitter * delay around the nominal
/// value. All randomness comes from the caller's Rng, so the schedule is
/// deterministic under a fixed seed.
struct BackoffPolicy {
  double initial_ms = 10.0;  ///< delay before the first retry
  double multiplier = 2.0;   ///< geometric growth factor
  double max_ms = 1000.0;    ///< hard cap on any single delay
  double jitter = 0.0;       ///< fraction in [0, 1) of the delay randomized
};

/// Delay in milliseconds before retry `attempt` (0-based). `rng` is only
/// consulted when policy.jitter > 0, so jitter-free schedules consume no
/// random draws. The returned value is always in [0, policy.max_ms].
double BackoffDelayMs(const BackoffPolicy& policy, int attempt, Rng* rng);

}  // namespace rfed

#endif  // RFED_UTIL_BACKOFF_H_
