#ifndef RFED_UTIL_CSV_WRITER_H_
#define RFED_UTIL_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

namespace rfed {

/// Minimal CSV emitter used by the benchmark harness to persist the series
/// behind every reproduced table/figure. Values are written as-is (no
/// quoting) since all emitted fields are numeric or simple identifiers.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Aborts on I/O error.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one row; must have as many cells as the header.
  void WriteRow(const std::vector<std::string>& cells);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  size_t num_columns_;
  std::ofstream out_;
};

}  // namespace rfed

#endif  // RFED_UTIL_CSV_WRITER_H_
