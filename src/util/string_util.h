#ifndef RFED_UTIL_STRING_UTIL_H_
#define RFED_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace rfed {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins elements with a separator, e.g. JoinInts({1,2,3}, "x") == "1x2x3".
std::string JoinInts(const std::vector<int>& values, const std::string& sep);

/// Formats a double with fixed precision, trimming to a compact table cell.
std::string FormatFixed(double value, int digits);

}  // namespace rfed

#endif  // RFED_UTIL_STRING_UTIL_H_
