#ifndef RFED_UTIL_HASH_H_
#define RFED_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace rfed {

/// 32-bit FNV-1a over [data, data + length). The integrity checksum used
/// by every on-disk / on-wire artifact in the repo (FlMessage frames,
/// tensor files, run checkpoints): cheap, byte-order independent, and
/// sensitive to single bit flips.
inline uint32_t Fnv1a32(const uint8_t* data, size_t length) {
  uint32_t hash = 2166136261u;
  for (size_t i = 0; i < length; ++i) {
    hash ^= data[i];
    hash *= 16777619u;
  }
  return hash;
}

/// 64-bit splitmix-style mix of two words; used to derive deterministic
/// per-(client, round) RNG streams whose draws are call-order independent
/// (the same keying discipline as sim/compute_model.h).
inline uint64_t MixU64(uint64_t a, uint64_t b) {
  uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace rfed

#endif  // RFED_UTIL_HASH_H_
