#include "util/flags.h"

#include <cstdlib>

#include "util/check.h"

namespace rfed {

bool ParseHostPort(const std::string& text, HostPort* out) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  const std::string host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  if (port_text.empty() || port_text.size() > 5) return false;
  int port = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') return false;
    port = port * 10 + (c - '0');
  }
  if (port > 65535) return false;
  out->host = host;
  out->port = port;
  return true;
}

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    RFED_CHECK(arg.rfind("--", 0) == 0) << "expected --flag, got " << arg;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

bool FlagParser::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int FlagParser::GetInt(const std::string& key, int default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : std::atoi(it->second.c_str());
}

double FlagParser::GetDouble(const std::string& key,
                             double default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : std::atof(it->second.c_str());
}

bool FlagParser::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

HostPort FlagParser::GetHostPort(const std::string& key,
                                 const std::string& default_value) const {
  const std::string text = GetString(key, default_value);
  HostPort hp;
  RFED_CHECK(ParseHostPort(text, &hp))
      << "--" << key << " expects host:port with port in [0, 65535], got '"
      << text << "'";
  return hp;
}

int FlagParser::GetIntInRange(const std::string& key, int default_value,
                              int min_value, int max_value) const {
  const int value = GetInt(key, default_value);
  RFED_CHECK(value >= min_value && value <= max_value)
      << "--" << key << " must be in [" << min_value << ", " << max_value
      << "], got " << value;
  return value;
}

std::vector<std::string> FlagParser::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [key, value] : values_) keys.push_back(key);
  return keys;
}

}  // namespace rfed
