#include "util/thread_pool.h"

#include "util/check.h"

namespace rfed {
namespace {

// Which pool (if any) is executing a ParallelFor task on this thread,
// and that task's index. Detects reentrant ParallelFor calls — the
// nested call would deadlock (every worker busy, none left to drain the
// nested tasks) — and names the offending task in the abort message.
thread_local const ThreadPool* tls_active_pool = nullptr;
thread_local int tls_active_task = -1;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads == 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (num_threads < 1) num_threads = 1;
  num_threads_ = num_threads;
  if (num_threads_ <= 1) return;  // Sequential mode: no workers.
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::RunTask(int index, const std::function<void(int)>& fn) {
  const ThreadPool* prev_pool = tls_active_pool;
  const int prev_task = tls_active_task;
  tls_active_pool = this;
  tls_active_task = index;
  fn(index);
  tls_active_pool = prev_pool;
  tls_active_task = prev_task;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  RFED_CHECK_GE(n, 0);
  if (n == 0) return;
  RFED_CHECK(tls_active_pool != this)
      << "ParallelFor is not reentrant: task #" << tls_active_task
      << " of this pool re-entered ParallelFor";
  if (num_threads_ <= 1 || n == 1) {
    for (int i = 0; i < n; ++i) RunTask(i, fn);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    RFED_CHECK_EQ(pending_, 0)
        << "ParallelFor is not reentrant: a batch is already in flight "
           "(concurrent call from another thread)";
    pending_ = n;
    for (int i = 0; i < n; ++i) {
      tasks_.push([this, fn, i] { RunTask(i, fn); });
    }
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace rfed
