#include "util/csv_writer.h"

#include "util/check.h"

namespace rfed {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), num_columns_(header.size()), out_(path) {
  RFED_CHECK(out_.good()) << "cannot open " << path;
  WriteRow(header);
}

CsvWriter::~CsvWriter() { out_.flush(); }

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  RFED_CHECK_EQ(cells.size(), num_columns_) << "in " << path_;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

}  // namespace rfed
