#ifndef RFED_UTIL_THREAD_POOL_H_
#define RFED_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rfed {

/// Fixed-size worker pool. The FL simulator trains sampled clients of a
/// round through ParallelFor; on single-core machines (num_threads <= 1)
/// it degrades to an in-caller sequential loop so results and timing stay
/// deterministic and comparable.
class ThreadPool {
 public:
  /// num_threads == 0 means hardware_concurrency().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(i) for i in [0, n) and blocks until all complete. fn must be
  /// safe to call concurrently for distinct i.
  ///
  /// NOT reentrant: fn must never call ParallelFor on the *same* pool
  /// (from a worker it would deadlock waiting for workers that are all
  /// busy; from another thread it would corrupt the pending count). A
  /// violation aborts with a message naming the task that re-entered.
  /// Nesting across *different* pools is fine.
  void ParallelFor(int n, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();
  void RunTask(int index, const std::function<void(int)>& fn);

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::queue<std::function<void()>> tasks_;
  int pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace rfed

#endif  // RFED_UTIL_THREAD_POOL_H_
