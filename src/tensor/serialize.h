#ifndef RFED_TENSOR_SERIALIZE_H_
#define RFED_TENSOR_SERIALIZE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace rfed {

/// Wire encoding for Tensors. The FL communication layer charges every
/// simulated transfer with the exact number of bytes this codec would put
/// on the network, so Table III (size of δ) comes straight from here.

/// Bytes needed to encode `t` (header: rank + dims as int64, then float32
/// payload).
int64_t SerializedBytes(const Tensor& t);

/// Payload-only size used by the paper's Table III accounting
/// (4 bytes per float element).
int64_t PayloadBytes(const Tensor& t);

/// Appends the encoding of `t` to *out.
void SerializeTensor(const Tensor& t, std::vector<uint8_t>* out);

/// Decodes one tensor starting at (*offset), advancing it. Aborts on a
/// malformed buffer.
Tensor DeserializeTensor(const std::vector<uint8_t>& buf, size_t* offset);

}  // namespace rfed

#endif  // RFED_TENSOR_SERIALIZE_H_
