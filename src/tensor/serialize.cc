#include "tensor/serialize.h"

#include <cstring>

#include "util/check.h"

namespace rfed {
namespace {

template <typename T>
void AppendRaw(const T& value, std::vector<uint8_t>* out) {
  const auto* p = reinterpret_cast<const uint8_t*>(&value);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
T ReadRaw(const std::vector<uint8_t>& buf, size_t* offset) {
  RFED_CHECK_LE(*offset + sizeof(T), buf.size());
  T value;
  std::memcpy(&value, buf.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return value;
}

}  // namespace

int64_t SerializedBytes(const Tensor& t) {
  return static_cast<int64_t>(sizeof(int64_t)) * (1 + t.rank()) +
         PayloadBytes(t);
}

int64_t PayloadBytes(const Tensor& t) {
  return t.size() * static_cast<int64_t>(sizeof(float));
}

void SerializeTensor(const Tensor& t, std::vector<uint8_t>* out) {
  AppendRaw<int64_t>(t.rank(), out);
  for (int i = 0; i < t.rank(); ++i) AppendRaw<int64_t>(t.dim(i), out);
  const auto* p = reinterpret_cast<const uint8_t*>(t.data());
  out->insert(out->end(), p, p + t.size() * sizeof(float));
}

Tensor DeserializeTensor(const std::vector<uint8_t>& buf, size_t* offset) {
  const int64_t rank = ReadRaw<int64_t>(buf, offset);
  RFED_CHECK_GE(rank, 0);
  RFED_CHECK_LE(rank, 8);
  std::vector<int64_t> dims;
  dims.reserve(static_cast<size_t>(rank));
  for (int64_t i = 0; i < rank; ++i) {
    dims.push_back(ReadRaw<int64_t>(buf, offset));
  }
  Shape shape(std::move(dims));
  const int64_t n = shape.num_elements();
  RFED_CHECK_LE(*offset + static_cast<size_t>(n) * sizeof(float), buf.size());
  std::vector<float> data(static_cast<size_t>(n));
  std::memcpy(data.data(), buf.data() + *offset,
              static_cast<size_t>(n) * sizeof(float));
  *offset += static_cast<size_t>(n) * sizeof(float);
  return Tensor(std::move(shape), std::move(data));
}

}  // namespace rfed
