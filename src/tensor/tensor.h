#ifndef RFED_TENSOR_TENSOR_H_
#define RFED_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/shape.h"
#include "util/rng.h"

namespace rfed {

/// Dense row-major float32 tensor with value semantics (copyable,
/// movable). This is the single numeric container used throughout the
/// repository: model parameters, activations, gradients, datasets and the
/// communicated δ maps are all Tensors.
///
/// Storage is recycled through the thread-local BufferPool whenever a
/// pool scope is active (tensor/buffer_pool.h): construction draws from
/// the freelist, destruction and move-assign-overwrite donate back to
/// it. Recycled buffers are value-initialized exactly like fresh ones,
/// so pooling never changes a single bit of any computation.
class Tensor {
 public:
  /// Empty rank-1 tensor with zero elements.
  Tensor() : shape_({0}) {}

  ~Tensor();
  Tensor(const Tensor& other);
  /// Element-wise copy; reuses the existing buffer when capacity allows.
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  /// Steals `other`'s buffer; the overwritten buffer is donated to the
  /// active BufferPool scope (plain heap free otherwise).
  Tensor& operator=(Tensor&& other) noexcept;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value);

  /// Tensor adopting the given data; data.size() must match the shape.
  Tensor(Shape shape, std::vector<float> data);

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }
  /// Elements iid Uniform(lo, hi).
  static Tensor Uniform(Shape shape, float lo, float hi, Rng* rng);
  /// Elements iid Normal(mean, stddev).
  static Tensor Normal(Shape shape, float mean, float stddev, Rng* rng);

  const Shape& shape() const { return shape_; }
  int rank() const { return shape_.rank(); }
  int64_t dim(int axis) const { return shape_.dim(axis); }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int64_t i) { return data_[static_cast<size_t>(i)]; }
  float at(int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// 2-d accessors (row-major). Requires rank 2.
  float& at2(int64_t r, int64_t c);
  float at2(int64_t r, int64_t c) const;

  /// Returns a tensor viewing the same data with a different shape.
  /// Element counts must match.
  Tensor Reshaped(Shape new_shape) const;

  /// Scalar extraction; requires exactly one element.
  float ToScalar() const;

  // ---- In-place arithmetic (shape-checked) ----
  Tensor& AddInPlace(const Tensor& other);
  Tensor& SubInPlace(const Tensor& other);
  Tensor& MulInPlace(float scalar);
  /// this += scalar * other  (fused multiply-add over all elements).
  Tensor& Axpy(float scalar, const Tensor& other);
  void Fill(float value);

  // ---- Reductions ----
  float Sum() const;
  float Mean() const;
  float MaxAbs() const;
  /// Squared L2 norm of all elements.
  float SquaredNorm() const;

  std::string ToString(int max_elements = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
  /// True iff data_ came from BufferPool::Acquire, i.e. its bytes are in
  /// the pool's outstanding counter and must be subtracted when this
  /// tensor dies — wherever that happens (see buffer_pool.h).
  bool pooled_ = false;
};

/// True iff the tensors have the same shape and all elements differ by at
/// most `tol`.
bool AllClose(const Tensor& a, const Tensor& b, float tol);

}  // namespace rfed

#endif  // RFED_TENSOR_TENSOR_H_
