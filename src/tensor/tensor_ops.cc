#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"
#include "util/check.h"

namespace rfed {
namespace {

void CheckSameShape(const Tensor& a, const Tensor& b) {
  RFED_CHECK(a.shape() == b.shape())
      << a.shape().ToString() << " vs " << b.shape().ToString();
}

ConvKernelShape ToKernelShape(const Conv2dSpec& spec, int64_t batch,
                              int64_t h, int64_t w) {
  ConvKernelShape s;
  s.batch = batch;
  s.in_channels = spec.in_channels;
  s.height = h;
  s.width = w;
  s.out_channels = spec.out_channels;
  s.kernel = spec.kernel;
  s.stride = spec.stride;
  s.pad = spec.pad;
  return s;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  out.AddInPlace(b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  out.SubInPlace(b);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) *= b.at(i);
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a;
  out.MulInPlace(s);
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out = a;
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) += s;
  return out;
}

Tensor Relu(const Tensor& x) {
  Tensor out = x;
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) = std::max(0.0f, out.at(i));
  return out;
}

Tensor ReluBackward(const Tensor& grad, const Tensor& x) {
  CheckSameShape(grad, x);
  Tensor out = grad;
  for (int64_t i = 0; i < out.size(); ++i) {
    if (x.at(i) <= 0.0f) out.at(i) = 0.0f;
  }
  return out;
}

Tensor Tanh(const Tensor& x) {
  Tensor out = x;
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) = std::tanh(out.at(i));
  return out;
}

Tensor TanhBackwardFromOutput(const Tensor& grad, const Tensor& y) {
  CheckSameShape(grad, y);
  Tensor out = grad;
  for (int64_t i = 0; i < out.size(); ++i) {
    out.at(i) *= 1.0f - y.at(i) * y.at(i);
  }
  return out;
}

Tensor Sigmoid(const Tensor& x) {
  Tensor out = x;
  for (int64_t i = 0; i < out.size(); ++i) {
    out.at(i) = 1.0f / (1.0f + std::exp(-out.at(i)));
  }
  return out;
}

Tensor SigmoidBackwardFromOutput(const Tensor& grad, const Tensor& y) {
  CheckSameShape(grad, y);
  Tensor out = grad;
  for (int64_t i = 0; i < out.size(); ++i) {
    out.at(i) *= y.at(i) * (1.0f - y.at(i));
  }
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  RFED_CHECK_EQ(a.rank(), 2);
  RFED_CHECK_EQ(b.rank(), 2);
  RFED_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c(Shape{m, n});
  GemmAdd(a.data(), b.data(), m, k, n, c.data());
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  RFED_CHECK_EQ(a.rank(), 2);
  RFED_CHECK_EQ(b.rank(), 2);
  RFED_CHECK_EQ(a.dim(0), b.dim(0));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c(Shape{k, n});
  // c[p, j] = sum_i a[i, p] * b[i, j]
  GemmTransAAdd(a.data(), b.data(), m, k, n, c.data());
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  RFED_CHECK_EQ(a.rank(), 2);
  RFED_CHECK_EQ(b.rank(), 2);
  RFED_CHECK_EQ(a.dim(1), b.dim(1));
  const int64_t m = a.dim(0), n = a.dim(1), k = b.dim(0);
  Tensor c(Shape{m, k});
  // c[i, p] = sum_j a[i, j] * b[p, j]  (dot of contiguous rows)
  GemmTransBAssign(a.data(), b.data(), m, n, k, c.data());
  return c;
}

Tensor Transpose2d(const Tensor& a) {
  RFED_CHECK_EQ(a.rank(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out(Shape{n, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out.at2(j, i) = a.at2(i, j);
  }
  return out;
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias) {
  RFED_CHECK_EQ(x.rank(), 2);
  RFED_CHECK_EQ(bias.rank(), 1);
  RFED_CHECK_EQ(x.dim(1), bias.dim(0));
  Tensor out = x;
  const int64_t rows = x.dim(0), cols = x.dim(1);
  for (int64_t r = 0; r < rows; ++r) {
    float* row = out.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) row[c] += bias.at(c);
  }
  return out;
}

Tensor MulRowBroadcast(const Tensor& x, const Tensor& scale) {
  RFED_CHECK_EQ(x.rank(), 2);
  RFED_CHECK_EQ(scale.rank(), 1);
  RFED_CHECK_EQ(x.dim(1), scale.dim(0));
  Tensor out = x;
  const int64_t rows = x.dim(0), cols = x.dim(1);
  for (int64_t r = 0; r < rows; ++r) {
    float* row = out.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) row[c] *= scale.at(c);
  }
  return out;
}

Tensor SumRows(const Tensor& x) {
  RFED_CHECK_EQ(x.rank(), 2);
  const int64_t rows = x.dim(0), cols = x.dim(1);
  Tensor out(Shape{cols});
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = x.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) out.at(c) += row[c];
  }
  return out;
}

Tensor LinearBiasReluForward(const Tensor& x, const Tensor& w,
                             const Tensor& bias) {
  RFED_CHECK_EQ(x.rank(), 2);
  RFED_CHECK_EQ(w.rank(), 2);
  RFED_CHECK_EQ(bias.rank(), 1);
  RFED_CHECK_EQ(x.dim(1), w.dim(0));
  RFED_CHECK_EQ(w.dim(1), bias.dim(0));
  const int64_t m = x.dim(0), k = x.dim(1), n = w.dim(1);
  Tensor y(Shape{m, n});
  GemmAdd(x.data(), w.data(), m, k, n, y.data());
  // Epilogue in the unfused chain's element order: add the bias, then
  // clamp — float-identical to AddRowBroadcast followed by Relu.
  for (int64_t r = 0; r < m; ++r) {
    float* row = y.data() + r * n;
    for (int64_t c = 0; c < n; ++c) {
      row[c] = std::max(0.0f, row[c] + bias.at(c));
    }
  }
  return y;
}

void LinearBiasReluBackward(const Tensor& grad, const Tensor& y,
                            const Tensor& x, const Tensor& w, Tensor* dx,
                            Tensor* dw, Tensor* db) {
  CheckSameShape(grad, y);
  // Mask mirrors ReluBackward: y = max(0, pre) makes `y <= 0` the exact
  // set of clamped elements.
  Tensor g_pre = grad;
  for (int64_t i = 0; i < g_pre.size(); ++i) {
    if (y.at(i) <= 0.0f) g_pre.at(i) = 0.0f;
  }
  if (dx != nullptr) *dx = MatMulTransB(g_pre, w);
  if (dw != nullptr) *dw = MatMulTransA(x, g_pre);
  if (db != nullptr) *db = SumRows(g_pre);
}

Tensor MeanRows(const Tensor& x) {
  RFED_CHECK_GT(x.dim(0), 0);
  Tensor out = SumRows(x);
  out.MulInPlace(1.0f / static_cast<float>(x.dim(0)));
  return out;
}

Tensor SoftmaxRows(const Tensor& logits) {
  RFED_CHECK_EQ(logits.rank(), 2);
  const int64_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out = logits;
  for (int64_t r = 0; r < rows; ++r) {
    float* row = out.data() + r * cols;
    float max_v = row[0];
    for (int64_t c = 1; c < cols; ++c) max_v = std::max(max_v, row[c]);
    double sum = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - max_v);
      sum += row[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t c = 0; c < cols; ++c) row[c] *= inv;
  }
  return out;
}

float SoftmaxCrossEntropy(const Tensor& logits, const std::vector<int>& labels,
                          Tensor* dlogits) {
  RFED_CHECK_EQ(logits.rank(), 2);
  const int64_t rows = logits.dim(0), cols = logits.dim(1);
  RFED_CHECK_EQ(static_cast<int64_t>(labels.size()), rows);
  Tensor probs = SoftmaxRows(logits);
  double loss = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    const int label = labels[static_cast<size_t>(r)];
    RFED_CHECK_GE(label, 0);
    RFED_CHECK_LT(label, cols);
    loss -= std::log(std::max(probs.at2(r, label), 1e-12f));
  }
  loss /= static_cast<double>(rows);
  if (dlogits != nullptr) {
    *dlogits = probs;
    const float inv_rows = 1.0f / static_cast<float>(rows);
    for (int64_t r = 0; r < rows; ++r) {
      dlogits->at2(r, labels[static_cast<size_t>(r)]) -= 1.0f;
      for (int64_t c = 0; c < cols; ++c) dlogits->at2(r, c) *= inv_rows;
    }
  }
  return static_cast<float>(loss);
}

Tensor Conv2dForward(const Tensor& x, const Tensor& w, const Tensor& b,
                     const Conv2dSpec& spec) {
  RFED_CHECK_EQ(x.rank(), 4);
  const int64_t batch = x.dim(0), cin = x.dim(1), h = x.dim(2), wd = x.dim(3);
  RFED_CHECK_EQ(cin, spec.in_channels);
  const int64_t patch = cin * spec.kernel * spec.kernel;
  RFED_CHECK(w.shape() == Shape({spec.out_channels, patch}))
      << w.shape().ToString();
  RFED_CHECK_EQ(b.dim(0), spec.out_channels);
  const int64_t ho = spec.OutDim(h), wo = spec.OutDim(wd);
  RFED_CHECK_GT(ho, 0);
  RFED_CHECK_GT(wo, 0);
  Tensor out(Shape{batch, spec.out_channels, ho, wo});
  Conv2dForwardKernel(x.data(), w.data(), b.data(),
                      ToKernelShape(spec, batch, h, wd), out.data());
  return out;
}

void Conv2dBackward(const Tensor& grad_out, const Tensor& x, const Tensor& w,
                    const Conv2dSpec& spec, Tensor* dx, Tensor* dw,
                    Tensor* db) {
  const int64_t batch = x.dim(0), h = x.dim(2), wd = x.dim(3);
  const int64_t ho = spec.OutDim(h), wo = spec.OutDim(wd);
  RFED_CHECK(grad_out.shape() == Shape({batch, spec.out_channels, ho, wo}));

  if (dx != nullptr) *dx = Tensor(x.shape());
  if (dw != nullptr) *dw = Tensor(w.shape());
  if (db != nullptr) *db = Tensor(Shape{spec.out_channels});

  Conv2dBackwardKernel(grad_out.data(), x.data(), w.data(),
                       ToKernelShape(spec, batch, h, wd),
                       dx != nullptr ? dx->data() : nullptr,
                       dw != nullptr ? dw->data() : nullptr,
                       db != nullptr ? db->data() : nullptr);
}

Tensor MaxPool2x2Forward(const Tensor& x, std::vector<int64_t>* argmax) {
  RFED_CHECK_EQ(x.rank(), 4);
  const int64_t batch = x.dim(0), ch = x.dim(1), h = x.dim(2), w = x.dim(3);
  RFED_CHECK_EQ(h % 2, 0);
  RFED_CHECK_EQ(w % 2, 0);
  const int64_t ho = h / 2, wo = w / 2;
  Tensor out(Shape{batch, ch, ho, wo});
  argmax->assign(static_cast<size_t>(out.size()), 0);
  int64_t oi = 0;
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t c = 0; c < ch; ++c) {
      const float* plane = x.data() + (b * ch + c) * h * w;
      const int64_t plane_off = (b * ch + c) * h * w;
      for (int64_t oy = 0; oy < ho; ++oy) {
        for (int64_t ox = 0; ox < wo; ++ox, ++oi) {
          const int64_t y0 = 2 * oy, x0 = 2 * ox;
          int64_t best = y0 * w + x0;
          float best_v = plane[best];
          const int64_t cand[3] = {y0 * w + x0 + 1, (y0 + 1) * w + x0,
                                   (y0 + 1) * w + x0 + 1};
          for (int64_t idx : cand) {
            if (plane[idx] > best_v) {
              best_v = plane[idx];
              best = idx;
            }
          }
          out.at(oi) = best_v;
          (*argmax)[static_cast<size_t>(oi)] = plane_off + best;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2x2Backward(const Tensor& grad_out, const Shape& input_shape,
                          const std::vector<int64_t>& argmax) {
  RFED_CHECK_EQ(static_cast<int64_t>(argmax.size()), grad_out.size());
  Tensor dx(input_shape);
  for (int64_t i = 0; i < grad_out.size(); ++i) {
    dx.at(argmax[static_cast<size_t>(i)]) += grad_out.at(i);
  }
  return dx;
}

Tensor GatherRows(const Tensor& table, const std::vector<int>& ids) {
  RFED_CHECK_EQ(table.rank(), 2);
  const int64_t cols = table.dim(1);
  Tensor out(Shape{static_cast<int64_t>(ids.size()), cols});
  for (size_t i = 0; i < ids.size(); ++i) {
    RFED_CHECK_GE(ids[i], 0);
    RFED_CHECK_LT(ids[i], table.dim(0));
    const float* src = table.data() + static_cast<int64_t>(ids[i]) * cols;
    std::copy(src, src + cols, out.data() + static_cast<int64_t>(i) * cols);
  }
  return out;
}

void ScatterAddRows(const Tensor& grad, const std::vector<int>& ids,
                    Tensor* table_grad) {
  RFED_CHECK_EQ(grad.rank(), 2);
  RFED_CHECK_EQ(table_grad->rank(), 2);
  RFED_CHECK_EQ(grad.dim(0), static_cast<int64_t>(ids.size()));
  RFED_CHECK_EQ(grad.dim(1), table_grad->dim(1));
  const int64_t cols = grad.dim(1);
  for (size_t i = 0; i < ids.size(); ++i) {
    const float* src = grad.data() + static_cast<int64_t>(i) * cols;
    float* dst = table_grad->data() + static_cast<int64_t>(ids[i]) * cols;
    for (int64_t c = 0; c < cols; ++c) dst[c] += src[c];
  }
}

Tensor SliceRows(const Tensor& x, int64_t begin, int64_t end) {
  RFED_CHECK_EQ(x.rank(), 2);
  RFED_CHECK_GE(begin, 0);
  RFED_CHECK_LE(end, x.dim(0));
  RFED_CHECK_LE(begin, end);
  const int64_t cols = x.dim(1);
  Tensor out(Shape{end - begin, cols});
  std::copy(x.data() + begin * cols, x.data() + end * cols, out.data());
  return out;
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  RFED_CHECK_EQ(a.rank(), 2);
  RFED_CHECK_EQ(b.rank(), 2);
  RFED_CHECK_EQ(a.dim(1), b.dim(1));
  Tensor out(Shape{a.dim(0) + b.dim(0), a.dim(1)});
  std::copy(a.data(), a.data() + a.size(), out.data());
  std::copy(b.data(), b.data() + b.size(), out.data() + a.size());
  return out;
}

}  // namespace rfed
