#ifndef RFED_TENSOR_TENSOR_OPS_H_
#define RFED_TENSOR_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace rfed {

// Raw numeric kernels over Tensors. These are pure functions (or write to
// explicit outputs) with no knowledge of autograd; the autograd layer
// composes them into differentiable ops. The hot paths (the three MatMul
// variants and the convolution) delegate to the blocked kernel layer in
// tensor/kernels.h — bit-identical to the naive loops for every block
// size and thread count (see docs/KERNELS.md).

// ---- Elementwise ----
/// c = a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);
/// c = a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);
/// Hadamard product c = a ⊙ b (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);
/// c = s * a.
Tensor Scale(const Tensor& a, float s);
/// c = a + s elementwise.
Tensor AddScalar(const Tensor& a, float s);

/// max(x, 0) elementwise.
Tensor Relu(const Tensor& x);
/// dL/dx given upstream grad and forward input.
Tensor ReluBackward(const Tensor& grad, const Tensor& x);
/// tanh(x) elementwise.
Tensor Tanh(const Tensor& x);
/// dL/dx given upstream grad and forward *output* y = tanh(x).
Tensor TanhBackwardFromOutput(const Tensor& grad, const Tensor& y);
/// 1/(1+exp(-x)) elementwise.
Tensor Sigmoid(const Tensor& x);
/// dL/dx given upstream grad and forward *output* y = sigmoid(x).
Tensor SigmoidBackwardFromOutput(const Tensor& grad, const Tensor& y);

// ---- Linear algebra ----
/// C[m,n] = A[m,k] * B[k,n] (blocked GemmAdd underneath).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// C[k,n] = A[m,k]^T * B[m,n] (weight-gradient shape of y = xW).
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// C[m,k] = A[m,n] * B[k,n]^T (input-gradient shape of y = xW).
Tensor MatMulTransB(const Tensor& a, const Tensor& b);
/// Out-of-place transpose of a [r, c] tensor -> [c, r].
Tensor Transpose2d(const Tensor& a);

/// y[r, c] = x[r, c] + bias[c]  for x of shape [rows, cols].
Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias);
/// y[r, c] = x[r, c] * scale[c]  for x of shape [rows, cols].
Tensor MulRowBroadcast(const Tensor& x, const Tensor& scale);
/// Column-sum of a [rows, cols] tensor -> [cols] (bias gradient).
Tensor SumRows(const Tensor& x);
/// Fused y = relu(x · w + bias) for x [m, k], w [k, n], bias [n]: one
/// GEMM plus an in-place bias+relu epilogue, saving the two intermediate
/// tensors of the MatMul/AddRowBroadcast/Relu chain. Bit-identical to
/// that chain: the epilogue performs the same `+bias` then `max(·, 0)`
/// per element, and GemmAdd is the same kernel MatMul dispatches to.
Tensor LinearBiasReluForward(const Tensor& x, const Tensor& w,
                             const Tensor& bias);
/// Backward of the fused op. `y` is the forward *output* (y <= 0 marks
/// exactly the elements the relu clamped, since y = max(0, pre)). The
/// masked gradient g_pre = grad ⊙ 1[y > 0] feeds the same kernels the
/// unfused chain uses: *dx = g_pre · wᵀ, *dw = xᵀ · g_pre,
/// *db = SumRows(g_pre). Null output pointers skip that gradient.
void LinearBiasReluBackward(const Tensor& grad, const Tensor& y,
                            const Tensor& x, const Tensor& w, Tensor* dx,
                            Tensor* dw, Tensor* db);
/// Mean over axis 0 of a [rows, cols] tensor -> [cols] (feature mean δ).
Tensor MeanRows(const Tensor& x);

// ---- Softmax / losses ----
/// Row-wise softmax of [rows, cols].
Tensor SoftmaxRows(const Tensor& logits);
/// Mean negative log-likelihood of `labels` under row-softmax(logits);
/// also returns d(loss)/d(logits) in *dlogits if non-null.
float SoftmaxCrossEntropy(const Tensor& logits, const std::vector<int>& labels,
                          Tensor* dlogits);

// ---- Convolution (NCHW) ----
/// Static shape parameters of a square-kernel 2-d convolution; OutDim
/// maps an input side length to the output side under stride/pad.
struct Conv2dSpec {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel = 0;   // square kernel
  int64_t stride = 1;
  int64_t pad = 0;
  int64_t OutDim(int64_t in) const { return (in + 2 * pad - kernel) / stride + 1; }
};

/// x: [B, Cin, H, W], w: [Cout, Cin*K*K], b: [Cout] -> [B, Cout, Ho, Wo];
/// per-image im2col + blocked GEMM (Conv2dForwardKernel).
Tensor Conv2dForward(const Tensor& x, const Tensor& w, const Tensor& b,
                     const Conv2dSpec& spec);
/// Gradients of Conv2dForward. Any output pointer may be null to skip;
/// non-null outputs are allocated (zeroed) here.
void Conv2dBackward(const Tensor& grad_out, const Tensor& x, const Tensor& w,
                    const Conv2dSpec& spec, Tensor* dx, Tensor* dw,
                    Tensor* db);

/// 2x2 max pooling with stride 2 over [B, C, H, W] (H, W even);
/// records flat argmax indices for the backward pass.
Tensor MaxPool2x2Forward(const Tensor& x, std::vector<int64_t>* argmax);
Tensor MaxPool2x2Backward(const Tensor& grad_out, const Shape& input_shape,
                          const std::vector<int64_t>& argmax);

// ---- Indexing ----
/// rows: out[i, :] = table[ids[i], :], table [V, D] -> [n, D].
Tensor GatherRows(const Tensor& table, const std::vector<int>& ids);
/// Scatter-add of grad rows back into a [V, D] gradient table.
void ScatterAddRows(const Tensor& grad, const std::vector<int>& ids,
                    Tensor* table_grad);

/// Extracts rows [begin, end) of a [rows, cols] tensor.
Tensor SliceRows(const Tensor& x, int64_t begin, int64_t end);
/// Concatenates [r1, c] and [r2, c] along axis 0.
Tensor ConcatRows(const Tensor& a, const Tensor& b);

}  // namespace rfed

#endif  // RFED_TENSOR_TENSOR_OPS_H_
