// AVX2+FMA blocked-kernel table. This is the only TU compiled with
// -mavx2 -mfma (CMake sets RFED_HAVE_AVX2 when the compiler accepts
// them), so no AVX instruction can leak into code that runs on
// non-AVX CPUs; kernels.cc only calls into this table after
// __builtin_cpu_supports confirms the CPU at runtime.
//
// GemmAdd microkernel: 6x16 — six A rows against one 16-wide packed B
// panel, 12 ymm accumulators + 2 B vectors + 1 broadcast = 15 of the 16
// architectural ymm registers. Each accumulator element advances by one
// _mm256_fmadd_ps per p step, which is exactly the canonical fused
// order; vfmadd and std::fmaf round identically (both are the correctly
// rounded fused operation), so this tile is bit-equal to the generic
// and reference paths by construction.
//
// GemmTransBAssign: 8 double chains per panel via _mm256_fmadd_pd on
// widened floats. float*float is exact in double, so the fused chain is
// bit-equal to the reference's mul+add chain.

#ifdef RFED_HAVE_AVX2

#include <immintrin.h>

#include <cmath>

#include "tensor/kernels_blocked.h"

namespace rfed {
namespace internal {
namespace {

struct Avx2Traits {
  static constexpr int64_t kMr = 6;
  static constexpr int64_t kNr = 16;
  static constexpr int64_t kTr = 8;

  static float Fma(float a, float b, float acc) {
    return std::fmaf(a, b, acc);
  }

  static void Micro(const float* ap, const float* bp, int64_t kc, float* c,
                    int64_t ldc) {
    // Hand-unrolled: at -O2 GCC leaves a __m256[6][2] accumulator array
    // in stack memory (two memory ops per fmadd, ~12 GFLOPS); twelve
    // named accumulators stay in ymm registers for the whole k loop.
    __m256 c00 = _mm256_loadu_ps(c + 0 * ldc);
    __m256 c01 = _mm256_loadu_ps(c + 0 * ldc + 8);
    __m256 c10 = _mm256_loadu_ps(c + 1 * ldc);
    __m256 c11 = _mm256_loadu_ps(c + 1 * ldc + 8);
    __m256 c20 = _mm256_loadu_ps(c + 2 * ldc);
    __m256 c21 = _mm256_loadu_ps(c + 2 * ldc + 8);
    __m256 c30 = _mm256_loadu_ps(c + 3 * ldc);
    __m256 c31 = _mm256_loadu_ps(c + 3 * ldc + 8);
    __m256 c40 = _mm256_loadu_ps(c + 4 * ldc);
    __m256 c41 = _mm256_loadu_ps(c + 4 * ldc + 8);
    __m256 c50 = _mm256_loadu_ps(c + 5 * ldc);
    __m256 c51 = _mm256_loadu_ps(c + 5 * ldc + 8);
    for (int64_t p = 0; p < kc; ++p) {
      const __m256 b0 = _mm256_loadu_ps(bp + p * kNr);
      const __m256 b1 = _mm256_loadu_ps(bp + p * kNr + 8);
      const float* av = ap + p * kMr;
      __m256 a = _mm256_broadcast_ss(av + 0);
      c00 = _mm256_fmadd_ps(a, b0, c00);
      c01 = _mm256_fmadd_ps(a, b1, c01);
      a = _mm256_broadcast_ss(av + 1);
      c10 = _mm256_fmadd_ps(a, b0, c10);
      c11 = _mm256_fmadd_ps(a, b1, c11);
      a = _mm256_broadcast_ss(av + 2);
      c20 = _mm256_fmadd_ps(a, b0, c20);
      c21 = _mm256_fmadd_ps(a, b1, c21);
      a = _mm256_broadcast_ss(av + 3);
      c30 = _mm256_fmadd_ps(a, b0, c30);
      c31 = _mm256_fmadd_ps(a, b1, c31);
      a = _mm256_broadcast_ss(av + 4);
      c40 = _mm256_fmadd_ps(a, b0, c40);
      c41 = _mm256_fmadd_ps(a, b1, c41);
      a = _mm256_broadcast_ss(av + 5);
      c50 = _mm256_fmadd_ps(a, b0, c50);
      c51 = _mm256_fmadd_ps(a, b1, c51);
    }
    _mm256_storeu_ps(c + 0 * ldc, c00);
    _mm256_storeu_ps(c + 0 * ldc + 8, c01);
    _mm256_storeu_ps(c + 1 * ldc, c10);
    _mm256_storeu_ps(c + 1 * ldc + 8, c11);
    _mm256_storeu_ps(c + 2 * ldc, c20);
    _mm256_storeu_ps(c + 2 * ldc + 8, c21);
    _mm256_storeu_ps(c + 3 * ldc, c30);
    _mm256_storeu_ps(c + 3 * ldc + 8, c31);
    _mm256_storeu_ps(c + 4 * ldc, c40);
    _mm256_storeu_ps(c + 4 * ldc + 8, c41);
    _mm256_storeu_ps(c + 5 * ldc, c50);
    _mm256_storeu_ps(c + 5 * ldc + 8, c51);
  }

  static void DotChains(const float* a, const float* panel, int64_t n,
                        double* out) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (int64_t j = 0; j < n; ++j) {
      const __m256d av = _mm256_set1_pd(static_cast<double>(a[j]));
      const __m256 bv = _mm256_loadu_ps(panel + j * kTr);
      const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(bv));
      const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(bv, 1));
      acc0 = _mm256_fmadd_pd(av, lo, acc0);
      acc1 = _mm256_fmadd_pd(av, hi, acc1);
    }
    _mm256_storeu_pd(out, acc0);
    _mm256_storeu_pd(out + 4, acc1);
  }
};

}  // namespace

const BlockedKernels* Avx2KernelsOrNull() {
  static const BlockedKernels table = {
      "avx2",
      static_cast<int>(Avx2Traits::kMr),
      static_cast<int>(Avx2Traits::kNr),
      static_cast<int>(Avx2Traits::kTr),
      &GemmAddBlockedT<Avx2Traits>,
      &GemmTransBBlockedT<Avx2Traits>,
  };
  return &table;
}

}  // namespace internal
}  // namespace rfed

#else  // !RFED_HAVE_AVX2

#include "tensor/kernels_dispatch.h"

namespace rfed {
namespace internal {

const BlockedKernels* Avx2KernelsOrNull() { return nullptr; }

}  // namespace internal
}  // namespace rfed

#endif  // RFED_HAVE_AVX2
