#include "tensor/buffer_pool.h"

#include <atomic>
#include <unordered_map>
#include <utility>

namespace rfed {
namespace {

// Freelists keyed by exact capacity. A capacity that never recurs strands
// its buffers in their bucket, but training tapes request the same few
// dozen sizes every step, so in practice every bucket cycles.
struct PoolState {
  std::unordered_map<size_t, std::vector<std::vector<float>>> buckets;
};

// Trivially destructible activation depth: safe to consult from Tensor
// destructors that run during static/thread teardown, after `state` below
// has been destroyed (the depth is back to zero by then, so the map is
// never touched).
thread_local int depth = 0;
thread_local int64_t thread_allocs = 0;
thread_local int64_t thread_hits = 0;

PoolState& State() {
  thread_local PoolState state;
  return state;
}

// Cross-thread outstanding-bytes accounting, mirroring ScratchArena's
// process-wide peak. Relaxed ordering: the peak is a monotone statistic,
// not a synchronization point.
std::atomic<int64_t> g_outstanding{0};
std::atomic<int64_t> g_peak{0};

void AddOutstanding(int64_t bytes) {
  const int64_t now = g_outstanding.fetch_add(bytes,
                                              std::memory_order_relaxed) +
                      bytes;
  int64_t peak = g_peak.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_peak.compare_exchange_weak(peak, now,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

BufferPool::Scope::Scope() { ++depth; }
BufferPool::Scope::~Scope() { --depth; }

bool BufferPool::Active() { return depth > 0; }

std::vector<float> BufferPool::Acquire(size_t n) {
  AddOutstanding(static_cast<int64_t>(n) * 4);
  if (n > 0) {
    auto it = State().buckets.find(n);
    if (it != State().buckets.end() && !it->second.empty()) {
      std::vector<float> buf = std::move(it->second.back());
      it->second.pop_back();
      buf.clear();
      ++thread_hits;
      return buf;
    }
  }
  ++thread_allocs;
  std::vector<float> buf;
  buf.reserve(n);
  return buf;
}

void BufferPool::MaybeRecycle(std::vector<float>* buf, bool accounted) {
  if (accounted) {
    g_outstanding.fetch_sub(static_cast<int64_t>(buf->capacity()) * 4,
                            std::memory_order_relaxed);
  }
  if (depth <= 0 || buf->capacity() == 0) return;
  State().buckets[buf->capacity()].push_back(std::move(*buf));
}

std::vector<float> BufferPool::CopyOf(const std::vector<float>& src) {
  if (!Active()) return src;
  std::vector<float> buf = Acquire(src.size());
  buf.assign(src.begin(), src.end());
  return buf;
}

int64_t BufferPool::PeakBytes() {
  return g_peak.load(std::memory_order_relaxed);
}

void BufferPool::ResetPeak() {
  g_peak.store(g_outstanding.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

int64_t BufferPool::ThreadAllocCount() { return thread_allocs; }

int64_t BufferPool::ThreadHitCount() { return thread_hits; }

}  // namespace rfed
