#ifndef RFED_TENSOR_KERNELS_H_
#define RFED_TENSOR_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace rfed {

// High-performance deterministic compute kernels.
//
// This layer owns the hot inner loops of the simulator: the three GEMM
// variants every Linear/LSTM/Conv2d forward and backward bottoms out in,
// plus the im2col/col2im unfolding of the convolution path. The kernels
// are cache-blocked, packed, and vectorized with explicit SIMD register
// tiles (AVX2+FMA where the CPU has it, a portable soft-fma fallback
// everywhere else, dispatched at runtime), and can optionally run
// n-partitioned across a thread pool — while staying **bit-identical**
// to the retained reference implementations (rfed::ref below) for every
// ISA, block size, tile candidate and thread count. The rule that makes
// this possible:
//
//   Each output element is reduced by exactly one thread, in exactly the
//   canonical summation order: ascending over the contraction index with
//   ONE fused multiply-add rounding per step (float fma for the
//   accumulate GEMMs, a double-precision chain for GemmTransBAssign).
//   Blocking and vectorization only reorder *which* elements are in
//   flight, never the operations within one element; the parallel
//   partition splits disjoint output regions, never a reduction.
//
// Fused rounding is what lets the AVX2 path run at FMA throughput; the
// references implement the same contract with std::fmaf (correctly
// rounded on every platform, hardware FMA or not), so goldens are
// byte-stable across ISAs. The build compiles with -ffp-contract=off so
// no *implicit* contraction can ever diverge from this explicit scheme.
//
// Batched reductions that the references accumulate serially (Conv2d's
// dw/db across the batch) are decomposed into fixed per-item partials
// combined in ascending item order, which is the same float addition
// sequence the reference performs. See docs/KERNELS.md for the full
// scheme, the per-ISA microkernel shapes and the cache layout of the
// packed panels.
//
// Caveat (documented, tested): the references skip multiplications by an
// exact 0.0f operand; the blocked kernels do not. Under IEEE-754
// round-to-nearest fma(±0, b, acc) never changes a finite accumulator,
// so results are still bit-identical for finite inputs — but non-finite
// inputs (Inf/NaN weights) may produce NaN where the reference skipped
// the element.

/// Instruction-set selection for the blocked kernels. kAuto picks the
/// best path the CPU supports at runtime; the explicit values force a
/// path (tests pin kGeneric to prove cross-ISA bit-identity). Forcing
/// kAvx2 on a CPU without AVX2+FMA aborts.
enum class KernelIsa { kAuto, kGeneric, kAvx2 };

/// One blocking configuration of a blocked GEMM: MC rows of A, KC of
/// the contraction dimension (always processed in ascending order —
/// required for bit-identity), NC columns of B per packed panel. NC is
/// also the n-partition grain of the threaded path. For
/// GemmTransBAssign only block_m (the row chunk) is meaningful.
struct TileConfig {
  int block_m = 64;
  int block_k = 256;
  int block_n = 1024;
};

/// Global knobs of the kernel layer. All fields may be changed at run
/// time (tests shrink the blocks to force edge paths); reads are cheap.
/// Not thread-safe against concurrent mutation — set once before
/// training, as FlConfig/experiment_cli do.
struct KernelOptions {
  /// Worker threads for the n-partitioned kernels. <= 1 runs everything
  /// on the calling thread (the default: all existing call sites are
  /// unaffected). The partition is deterministic, so any value produces
  /// bit-identical results.
  int threads = 1;
  /// Static cache blocking, used whenever the autotuner (autotune.h) is
  /// disabled or has no opinion for a shape.
  int block_m = 64;
  int block_k = 256;
  int block_n = 1024;
  /// Minimum 2*m*k*n FLOP count before a GEMM fans out to the pool;
  /// below it threading overhead dominates.
  int64_t parallel_min_flops = 1 << 21;
  /// Minimum FLOP count before the blocked/packed path engages; tiny
  /// products run the naive reference directly (identical bits, no
  /// packing overhead). Tests set 0 to force the blocked path.
  int64_t blocked_min_flops = 8192;
  /// SIMD dispatch override; kAuto = best supported.
  KernelIsa isa = KernelIsa::kAuto;
};

/// The process-wide options instance the kernels read.
const KernelOptions& GetKernelOptions();
/// Replaces the options wholesale (tests: block-size overrides).
void SetKernelOptions(const KernelOptions& options);
/// Sets only the thread count (the FlConfig/--kernel_threads knob).
void SetKernelThreads(int threads);

/// The ISA the next kernel call will run on, after applying the
/// KernelOptions override to what the CPU supports.
KernelIsa ActiveKernelIsa();
/// Short stable name ("avx2", "generic") — used as the autotuner cache
/// key component and in bench output.
const char* KernelIsaName(KernelIsa isa);
/// Whether this build+CPU can run the AVX2+FMA path.
bool KernelAvx2Available();

/// Grow-only per-thread scratch buffers the kernels pack panels and
/// im2col columns into, so steady-state training allocates nothing per
/// call. Each caller owns a slot id (see kernels_dispatch.h for the
/// convention); a slot's pointer is valid until the same thread requests
/// the same slot again. A process-wide high-water mark of allocated
/// scratch is kept for the RunHistory accounting.
class ScratchArena {
 public:
  /// The calling thread's arena.
  static ScratchArena& ThreadLocal();

  /// Returns `floats` contiguous floats for `slot` (contents
  /// unspecified), growing the slot if needed.
  float* Buffer(int slot, size_t floats);

  /// Peak total scratch bytes allocated across all thread arenas since
  /// start (or the last ResetPeak).
  static int64_t PeakBytes();
  static void ResetPeak();

 private:
  ScratchArena() = default;
  ~ScratchArena();
  struct Slot {
    float* data = nullptr;
    size_t capacity = 0;
  };
  static constexpr int kMaxSlots = 8;
  Slot slots_[kMaxSlots];
};

// ---- Blocked kernels (row-major raw pointers) ----
// None of the output pointers may alias the inputs.

/// C[m,n] += A[m,k] * B[k,n]. Bit-identical to ref::GemmAdd.
void GemmAdd(const float* a, const float* b, int64_t m, int64_t k, int64_t n,
             float* c);

/// C[k,n] += A[m,k]^T * B[m,n]. Bit-identical to ref::GemmTransAAdd.
void GemmTransAAdd(const float* a, const float* b, int64_t m, int64_t k,
                   int64_t n, float* c);

/// C[m,k] = A[m,n] * B[k,n]^T, each element one double-precision dot of
/// two contiguous rows. Bit-identical to ref::GemmTransBAssign.
void GemmTransBAssign(const float* a, const float* b, int64_t m, int64_t n,
                      int64_t k, float* c);

/// Runs fn(chunk) for chunk in [0, chunks) on the kernel pool when
/// options.threads > 1 (serially otherwise, or when the pool is already
/// busy — values never depend on the choice). fn must write disjoint
/// state per chunk.
template <typename Fn>
void KernelParallelFor(int64_t chunks, const Fn& fn);
namespace internal {
void ParallelForImpl(int64_t chunks, const void* ctx,
                     void (*trampoline)(const void*, int64_t));
}
template <typename Fn>
void KernelParallelFor(int64_t chunks, const Fn& fn) {
  internal::ParallelForImpl(
      chunks, &fn, +[](const void* ctx, int64_t i) {
        (*static_cast<const Fn*>(ctx))(i);
      });
}

// ---- Convolution plumbing ----

/// Unfolds one NCHW image x [cin, h, w] into im2col columns
/// cols [cin*k*k, ho*wo] for a square kernel (zero padding outside).
struct Im2ColSpec {
  int64_t kernel = 0;
  int64_t stride = 1;
  int64_t pad = 0;
};
void Im2Col(const float* x, int64_t cin, int64_t h, int64_t w,
            const Im2ColSpec& spec, float* cols);

/// Adjoint of Im2Col: accumulates column gradients back into dx
/// [cin, h, w] (dx must be pre-zeroed by the caller; overlapping windows
/// add).
void Col2Im(const float* cols, int64_t cin, int64_t h, int64_t w,
            const Im2ColSpec& spec, float* dx);

/// Shape bundle of one NCHW convolution (square kernel).
struct ConvKernelShape {
  int64_t batch = 0;
  int64_t in_channels = 0;
  int64_t height = 0;
  int64_t width = 0;
  int64_t out_channels = 0;
  int64_t kernel = 0;
  int64_t stride = 1;
  int64_t pad = 0;

  int64_t OutH() const { return (height + 2 * pad - kernel) / stride + 1; }
  int64_t OutW() const { return (width + 2 * pad - kernel) / stride + 1; }
  int64_t OutArea() const { return OutH() * OutW(); }
  int64_t Patch() const { return in_channels * kernel * kernel; }
};

/// out[B, Cout, Ho, Wo] = conv(x[B, Cin, H, W], w[Cout, Cin*K*K]) + bias,
/// via per-image im2col + blocked GEMM, batch-parallel. `out` must be
/// pre-zeroed. Bit-identical to ref::Conv2dForwardKernel.
void Conv2dForwardKernel(const float* x, const float* w, const float* bias,
                         const ConvKernelShape& s, float* out);

/// Gradients of Conv2dForwardKernel; any of dx/dw/db may be null to
/// skip, non-null outputs must be pre-zeroed. Batch-parallel with
/// per-image partials reduced in ascending image order — the reference's
/// exact float addition sequence. Bit-identical to
/// ref::Conv2dBackwardKernel.
void Conv2dBackwardKernel(const float* grad_out, const float* x,
                          const float* w, const ConvKernelShape& s, float* dx,
                          float* dw, float* db);

// ---- Canonical-order references ----
// The scalar ground-truth kernels: portable, single-threaded, no
// blocking, one std::fma(f) per reduction step — the canonical
// summation order every optimized path must reproduce bit for bit
// (tests/kernel_test.cc) and the speedup baseline for
// bench_micro_kernels. These descend from the seed's naive loops; the
// only numeric change since the seed is the fused rounding, made when
// the SIMD microkernels landed (goldens regenerated once, see
// docs/KERNELS.md).
namespace ref {

/// C[m,n] += A[m,k] * B[k,n], ikj order, fused steps, skipping zero A
/// elements.
void GemmAdd(const float* a, const float* b, int64_t m, int64_t k, int64_t n,
             float* c);
/// C[k,n] += A[m,k]^T * B[m,n], i-outer order, fused steps, skipping
/// zero A elements.
void GemmTransAAdd(const float* a, const float* b, int64_t m, int64_t k,
                   int64_t n, float* c);
/// C[m,k] = A[m,n] * B[k,n]^T via double-precision row dots. (For float
/// inputs the double product is exact, so mul+add and fma chains are
/// the same bits — this kernel is unchanged from the seed.)
void GemmTransBAssign(const float* a, const float* b, int64_t m, int64_t n,
                      int64_t k, float* c);

/// The serial im2col convolution forward (out pre-zeroed).
void Conv2dForwardKernel(const float* x, const float* w, const float* bias,
                         const ConvKernelShape& s, float* out);
/// The serial convolution backward (outputs pre-zeroed, nullable).
void Conv2dBackwardKernel(const float* grad_out, const float* x,
                          const float* w, const ConvKernelShape& s, float* dx,
                          float* dw, float* db);

}  // namespace ref

}  // namespace rfed

#endif  // RFED_TENSOR_KERNELS_H_
