#ifndef RFED_TENSOR_BUFFER_POOL_H_
#define RFED_TENSOR_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rfed {

/// Thread-local recycling arena for Tensor storage.
///
/// While a BufferPool::Scope is active on a thread, every Tensor the
/// thread destroys donates its float buffer to a size-keyed freelist and
/// every Tensor it constructs tries that freelist before touching the
/// heap. Buffers are plain heap vectors whether or not they ever pass
/// through the pool, so pooled storage may safely outlive the scope or
/// migrate across threads (a worker-built model update destroyed on the
/// main thread simply frees to the heap).
///
/// The pool is grow-only within a thread: freelists are reset by reuse,
/// never trimmed, mirroring ScratchArena in tensor/kernels.h. Training
/// graphs allocate the same few dozen shapes every step, so after one
/// warm-up step the freelists serve every request and the per-step heap
/// allocation count drops to O(1) (see docs/AUTOGRAD.md).
///
/// Determinism: recycling changes *where* a buffer lives, never what is
/// written to it — Tensor's constructors value-initialize recycled
/// storage exactly as they would fresh storage — so pooled and unpooled
/// runs are bit-identical.
class BufferPool {
 public:
  /// RAII activation of the calling thread's pool. Scopes nest; the pool
  /// stays active until the outermost scope dies. ag::TapeSession opens
  /// one for the duration of a local-training bout.
  class Scope {
   public:
    Scope();
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };

  /// True iff a Scope is active on the calling thread.
  static bool Active();

  /// Returns an empty vector whose capacity is at least `n` floats:
  /// recycled when the freelist has an exact-size buffer, freshly
  /// reserved (counted as a heap allocation) otherwise. Requires an
  /// active scope.
  static std::vector<float> Acquire(size_t n);

  /// Retires a tensor's storage. `accounted` is the owning Tensor's
  /// came-from-Acquire flag: accounted buffers subtract their bytes from
  /// the outstanding counter wherever they die (so a pooled tensor that
  /// escapes its scope — e.g. a returned model update — still balances
  /// the books on destruction). Independently, when a scope is active on
  /// the calling thread the storage is donated to its freelist; otherwise
  /// it falls to the ordinary heap free.
  static void MaybeRecycle(std::vector<float>* buf, bool accounted);

  /// Copy helper for Tensor's copy constructor: an exact-size copy of
  /// `src` backed by pooled storage when a scope is active.
  static std::vector<float> CopyOf(const std::vector<float>& src);

  /// High-water mark, in bytes, of Acquire()d storage whose owning
  /// tensor is still alive, across all threads since the last
  /// ResetPeak(). This is the live-tensor footprint of the autograd tape
  /// and is exported per round as the `autograd.tape_peak_bytes` gauge.
  static int64_t PeakBytes();
  static void ResetPeak();

  /// Number of freelist misses (true heap allocations) the calling
  /// thread has performed inside pool scopes. The per-step delta is the
  /// `autograd.allocs_per_step` gauge; it reaches O(1) once a static
  /// tape's replay steps stop allocating.
  static int64_t ThreadAllocCount();

  /// Number of freelist hits on the calling thread (recycled buffers).
  static int64_t ThreadHitCount();
};

}  // namespace rfed

#endif  // RFED_TENSOR_BUFFER_POOL_H_
