#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/autotune.h"
#include "tensor/kernels_dispatch.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace rfed {
namespace {

using internal::kSlotConvPartial;
using internal::kSlotDCols;
using internal::kSlotIm2Col;
using internal::kSlotTransA;

KernelOptions g_options;

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;  // guarded by g_pool_mu
int g_pool_threads = 0;              // guarded by g_pool_mu

std::atomic<int64_t> g_scratch_bytes{0};
std::atomic<int64_t> g_scratch_peak{0};

void NotePeak(int64_t current) {
  int64_t peak = g_scratch_peak.load(std::memory_order_relaxed);
  while (current > peak &&
         !g_scratch_peak.compare_exchange_weak(peak, current,
                                               std::memory_order_relaxed)) {
  }
}

}  // namespace

const KernelOptions& GetKernelOptions() { return g_options; }

void SetKernelOptions(const KernelOptions& options) {
  KernelOptions fixed = options;
  fixed.block_m = std::max(1, fixed.block_m);
  fixed.block_k = std::max(1, fixed.block_k);
  fixed.block_n = std::max(1, fixed.block_n);
  g_options = fixed;
}

void SetKernelThreads(int threads) { g_options.threads = threads; }

bool KernelAvx2Available() {
  static const bool available = [] {
    if (internal::Avx2KernelsOrNull() == nullptr) return false;
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") != 0;
#else
    return false;
#endif
  }();
  return available;
}

KernelIsa ActiveKernelIsa() {
  switch (g_options.isa) {
    case KernelIsa::kGeneric:
      return KernelIsa::kGeneric;
    case KernelIsa::kAvx2:
      RFED_CHECK(KernelAvx2Available())
          << "KernelOptions.isa forces AVX2 but this build/CPU lacks it";
      return KernelIsa::kAvx2;
    case KernelIsa::kAuto:
      break;
  }
  return KernelAvx2Available() ? KernelIsa::kAvx2 : KernelIsa::kGeneric;
}

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kAuto:
      return "auto";
    case KernelIsa::kGeneric:
      return "generic";
    case KernelIsa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

namespace {

/// The blocked-kernel table the next call dispatches to.
const internal::BlockedKernels& ActiveTable() {
  if (ActiveKernelIsa() == KernelIsa::kAvx2) {
    return *internal::Avx2KernelsOrNull();
  }
  return internal::GenericKernels();
}

}  // namespace

ScratchArena& ScratchArena::ThreadLocal() {
  thread_local ScratchArena arena;
  return arena;
}

float* ScratchArena::Buffer(int slot, size_t floats) {
  RFED_CHECK_GE(slot, 0);
  RFED_CHECK_LT(slot, kMaxSlots);
  Slot& s = slots_[slot];
  if (s.capacity < floats) {
    const int64_t delta =
        static_cast<int64_t>((floats - s.capacity) * sizeof(float));
    delete[] s.data;
    s.data = new float[floats];
    s.capacity = floats;
    NotePeak(g_scratch_bytes.fetch_add(delta, std::memory_order_relaxed) +
             delta);
  }
  return s.data;
}

ScratchArena::~ScratchArena() {
  int64_t total = 0;
  for (Slot& s : slots_) {
    total += static_cast<int64_t>(s.capacity * sizeof(float));
    delete[] s.data;
  }
  g_scratch_bytes.fetch_sub(total, std::memory_order_relaxed);
}

int64_t ScratchArena::PeakBytes() {
  return g_scratch_peak.load(std::memory_order_relaxed);
}

void ScratchArena::ResetPeak() {
  g_scratch_peak.store(g_scratch_bytes.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
}

void internal::ParallelForImpl(int64_t chunks, const void* ctx,
                               void (*trampoline)(const void*, int64_t)) {
  const int threads = g_options.threads;
  if (threads > 1 && chunks > 1) {
    // The pool is a process singleton; if another thread is mid-fan-out
    // (kernels called from the FL trainer's own worker pool), fall back
    // to the serial path — values never depend on the choice.
    std::unique_lock<std::mutex> lock(g_pool_mu, std::try_to_lock);
    if (lock.owns_lock()) {
      if (!g_pool || g_pool_threads != threads) {
        g_pool = std::make_unique<ThreadPool>(threads);
        g_pool_threads = threads;
      }
      g_pool->ParallelFor(static_cast<int>(chunks),
                          [&](int i) { trampoline(ctx, i); });
      return;
    }
  }
  for (int64_t i = 0; i < chunks; ++i) trampoline(ctx, i);
}

// ---- Canonical-order references ----

namespace ref {

void GemmAdd(const float* a, const float* b, int64_t m, int64_t k, int64_t n,
             float* c) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] = std::fmaf(av, brow[j], crow[j]);
      }
    }
  }
}

void GemmTransAAdd(const float* a, const float* b, int64_t m, int64_t k,
                   int64_t n, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      float* crow = c + p * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] = std::fmaf(av, brow[j], crow[j]);
      }
    }
  }
}

void GemmTransBAssign(const float* a, const float* b, int64_t m, int64_t n,
                      int64_t k, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * n;
    float* crow = c + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float* brow = b + p * n;
      double acc = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        acc += static_cast<double>(arow[j]) * brow[j];
      }
      crow[p] = static_cast<float>(acc);
    }
  }
}

}  // namespace ref

// ---- im2col / col2im ----

void Im2Col(const float* x, int64_t cin, int64_t h, int64_t w,
            const Im2ColSpec& spec, float* cols) {
  const int64_t k = spec.kernel;
  const int64_t ho = (h + 2 * spec.pad - k) / spec.stride + 1;
  const int64_t wo = (w + 2 * spec.pad - k) / spec.stride + 1;
  const int64_t out_area = ho * wo;
  int64_t row = 0;
  for (int64_t c = 0; c < cin; ++c) {
    for (int64_t ky = 0; ky < k; ++ky) {
      for (int64_t kx = 0; kx < k; ++kx, ++row) {
        float* dst = cols + row * out_area;
        if (spec.stride == 1) {
          // Unit stride: each output row is a contiguous slice of the
          // input row with zero fringes — bulk-copy the interior.
          const int64_t lo = std::max<int64_t>(0, spec.pad - kx);
          const int64_t hi = std::min(wo, w + spec.pad - kx);
          for (int64_t oy = 0; oy < ho; ++oy) {
            const int64_t iy = oy + ky - spec.pad;
            float* drow = dst + oy * wo;
            if (iy < 0 || iy >= h || lo >= hi) {
              std::memset(drow, 0, sizeof(float) * static_cast<size_t>(wo));
              continue;
            }
            if (lo > 0) {
              std::memset(drow, 0, sizeof(float) * static_cast<size_t>(lo));
            }
            std::memcpy(drow + lo, x + (c * h + iy) * w + lo + kx - spec.pad,
                        sizeof(float) * static_cast<size_t>(hi - lo));
            if (hi < wo) {
              std::memset(drow + hi, 0,
                          sizeof(float) * static_cast<size_t>(wo - hi));
            }
          }
          continue;
        }
        for (int64_t oy = 0; oy < ho; ++oy) {
          const int64_t iy = oy * spec.stride + ky - spec.pad;
          for (int64_t ox = 0; ox < wo; ++ox) {
            const int64_t ix = ox * spec.stride + kx - spec.pad;
            const bool inside = iy >= 0 && iy < h && ix >= 0 && ix < w;
            dst[oy * wo + ox] = inside ? x[(c * h + iy) * w + ix] : 0.0f;
          }
        }
      }
    }
  }
}

void Col2Im(const float* cols, int64_t cin, int64_t h, int64_t w,
            const Im2ColSpec& spec, float* dx) {
  const int64_t k = spec.kernel;
  const int64_t ho = (h + 2 * spec.pad - k) / spec.stride + 1;
  const int64_t wo = (w + 2 * spec.pad - k) / spec.stride + 1;
  const int64_t out_area = ho * wo;
  int64_t row = 0;
  for (int64_t c = 0; c < cin; ++c) {
    for (int64_t ky = 0; ky < k; ++ky) {
      for (int64_t kx = 0; kx < k; ++kx, ++row) {
        const float* src = cols + row * out_area;
        for (int64_t oy = 0; oy < ho; ++oy) {
          const int64_t iy = oy * spec.stride + ky - spec.pad;
          if (iy < 0 || iy >= h) continue;
          for (int64_t ox = 0; ox < wo; ++ox) {
            const int64_t ix = ox * spec.stride + kx - spec.pad;
            if (ix < 0 || ix >= w) continue;
            dx[(c * h + iy) * w + ix] += src[oy * wo + ox];
          }
        }
      }
    }
  }
}

// ---- Blocked GEMM drivers (dispatch + autotune) ----

namespace {

// Uninstrumented kernel bodies. The public entry points below wrap
// these with a trace span + FLOP counter; the conv drivers and
// GemmTransAAdd call the Impl forms directly so one logical op never
// records nested kernel spans or double-counted FLOPs.

void GemmAddImpl(const float* a, const float* b, int64_t m, int64_t k,
                 int64_t n, float* c) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  const KernelOptions& opt = g_options;
  const int64_t flops = 2 * m * k * n;
  if (flops < opt.blocked_min_flops) {
    ref::GemmAdd(a, b, m, k, n, c);
    return;
  }
  const internal::BlockedKernels& table = ActiveTable();
  const bool parallel = flops >= opt.parallel_min_flops;
  TileConfig tile{opt.block_m, opt.block_k, opt.block_n};
  if (AutotuneEnabled()) {
    AutotuneTrial trial = 0;
    tile = AutotunePick(AutotuneOp::kGemmAdd, table.name, m, k, n, &trial);
    if (trial != 0) {
      Stopwatch watch;
      table.gemm_add(a, b, m, k, n, c, tile, parallel);
      AutotuneReport(trial, watch.ElapsedMillis());
      return;
    }
  }
  table.gemm_add(a, b, m, k, n, c, tile, parallel);
}

void GemmTransAAddImpl(const float* a, const float* b, int64_t m, int64_t k,
                       int64_t n, float* c) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  const KernelOptions& opt = g_options;
  if (2 * m * k * n < opt.blocked_min_flops) {
    ref::GemmTransAAdd(a, b, m, k, n, c);
    return;
  }
  // Transpose A into scratch, then C[k,n] += At[k,m] * B[m,n]: GemmAdd's
  // ascending contraction over m is exactly the reference's ascending-i
  // accumulation.
  float* at = ScratchArena::ThreadLocal().Buffer(kSlotTransA,
                                                 static_cast<size_t>(m * k));
  constexpr int64_t kTile = 32;
  for (int64_t i0 = 0; i0 < m; i0 += kTile) {
    const int64_t i1 = std::min(m, i0 + kTile);
    for (int64_t j0 = 0; j0 < k; j0 += kTile) {
      const int64_t j1 = std::min(k, j0 + kTile);
      for (int64_t i = i0; i < i1; ++i) {
        for (int64_t j = j0; j < j1; ++j) at[j * m + i] = a[i * k + j];
      }
    }
  }
  GemmAddImpl(at, b, k, m, n, c);
}

void GemmTransBAssignImpl(const float* a, const float* b, int64_t m, int64_t n,
                          int64_t k, float* c) {
  if (m <= 0 || k <= 0) return;
  const KernelOptions& opt = g_options;
  if (n <= 0 || 2 * m * n * k < opt.blocked_min_flops) {
    ref::GemmTransBAssign(a, b, m, n, k, c);
    return;
  }
  const internal::BlockedKernels& table = ActiveTable();
  const bool parallel = 2 * m * n * k >= opt.parallel_min_flops;
  TileConfig tile{opt.block_m, opt.block_k, opt.block_n};
  if (AutotuneEnabled()) {
    AutotuneTrial trial = 0;
    tile = AutotunePick(AutotuneOp::kGemmTransB, table.name, m, n, k, &trial);
    if (trial != 0) {
      Stopwatch watch;
      table.gemm_transb(a, b, m, n, k, c, tile, parallel);
      AutotuneReport(trial, watch.ElapsedMillis());
      return;
    }
  }
  table.gemm_transb(a, b, m, n, k, c, tile, parallel);
}

// FLOP counters are looked up once; the adds (and the spans) only run
// when tracing is enabled so the disabled path stays a single branch.
obs::Counter* GemmFlopCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("kernel.gemm_flops");
  return c;
}

obs::Counter* ConvFlopCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("kernel.conv_flops");
  return c;
}

}  // namespace

void GemmAdd(const float* a, const float* b, int64_t m, int64_t k, int64_t n,
             float* c) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  if (obs::TracingEnabled()) {
    obs::TraceSpan span("gemm_add");
    GemmFlopCounter()->Add(2 * m * k * n);
    GemmAddImpl(a, b, m, k, n, c);
    return;
  }
  GemmAddImpl(a, b, m, k, n, c);
}

void GemmTransAAdd(const float* a, const float* b, int64_t m, int64_t k,
                   int64_t n, float* c) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  if (obs::TracingEnabled()) {
    obs::TraceSpan span("gemm_ta");
    GemmFlopCounter()->Add(2 * m * k * n);
    GemmTransAAddImpl(a, b, m, k, n, c);
    return;
  }
  GemmTransAAddImpl(a, b, m, k, n, c);
}

void GemmTransBAssign(const float* a, const float* b, int64_t m, int64_t n,
                      int64_t k, float* c) {
  if (m <= 0 || k <= 0) return;
  if (obs::TracingEnabled()) {
    obs::TraceSpan span("gemm_tb");
    GemmFlopCounter()->Add(2 * m * (n > 0 ? n : 0) * k);
    GemmTransBAssignImpl(a, b, m, n, k, c);
    return;
  }
  GemmTransBAssignImpl(a, b, m, n, k, c);
}

// ---- Convolution drivers ----

void Conv2dForwardKernel(const float* x, const float* w, const float* bias,
                         const ConvKernelShape& s, float* out) {
  const int64_t patch = s.Patch();
  const int64_t out_area = s.OutArea();
  obs::TraceSpan trace_span("conv2d_fwd");
  if (obs::TracingEnabled()) {
    ConvFlopCounter()->Add(2 * s.batch * s.out_channels * patch * out_area);
  }
  const Im2ColSpec ispec{s.kernel, s.stride, s.pad};
  const int64_t in_size = s.in_channels * s.height * s.width;
  const int64_t out_size = s.out_channels * out_area;
  KernelParallelFor(s.batch, [&](int64_t i) {
    float* cols = ScratchArena::ThreadLocal().Buffer(
        kSlotIm2Col, static_cast<size_t>(patch * out_area));
    Im2Col(x + i * in_size, s.in_channels, s.height, s.width, ispec, cols);
    float* out_i = out + i * out_size;
    GemmAddImpl(w, cols, s.out_channels, patch, out_area, out_i);
    for (int64_t oc = 0; oc < s.out_channels; ++oc) {
      float* plane = out_i + oc * out_area;
      const float bv = bias[oc];
      for (int64_t p = 0; p < out_area; ++p) plane[p] += bv;
    }
  });
}

void Conv2dBackwardKernel(const float* grad_out, const float* x,
                          const float* w, const ConvKernelShape& s, float* dx,
                          float* dw, float* db) {
  const int64_t patch = s.Patch();
  const int64_t out_area = s.OutArea();
  obs::TraceSpan trace_span("conv2d_bwd");
  if (obs::TracingEnabled()) {
    const int64_t gemms = (dw != nullptr ? 1 : 0) + (dx != nullptr ? 1 : 0);
    ConvFlopCounter()->Add(2 * s.batch * s.out_channels * patch * out_area *
                           gemms);
  }
  const Im2ColSpec ispec{s.kernel, s.stride, s.pad};
  const int64_t in_size = s.in_channels * s.height * s.width;
  const int64_t out_size = s.out_channels * out_area;
  // Per-image dw/db partials live in the caller's arena; workers fill
  // disjoint slices, then the caller reduces them in ascending image
  // order — the same float additions the serial reference performs.
  const int64_t dw_size = dw != nullptr ? s.out_channels * patch : 0;
  const int64_t db_size = db != nullptr ? s.out_channels : 0;
  const int64_t partial_stride = dw_size + db_size;
  float* partials =
      partial_stride > 0
          ? ScratchArena::ThreadLocal().Buffer(
                kSlotConvPartial,
                static_cast<size_t>(s.batch * partial_stride))
          : nullptr;
  KernelParallelFor(s.batch, [&](int64_t i) {
    const float* go = grad_out + i * out_size;
    float* part =
        partial_stride > 0 ? partials + i * partial_stride : nullptr;
    ScratchArena& arena = ScratchArena::ThreadLocal();
    if (db != nullptr) {
      float* pdb = part + dw_size;
      for (int64_t oc = 0; oc < s.out_channels; ++oc) {
        const float* plane = go + oc * out_area;
        double acc = 0.0;
        for (int64_t p = 0; p < out_area; ++p) acc += plane[p];
        pdb[oc] = static_cast<float>(acc);
      }
    }
    if (dw != nullptr) {
      float* cols = arena.Buffer(kSlotIm2Col,
                                 static_cast<size_t>(patch * out_area));
      Im2Col(x + i * in_size, s.in_channels, s.height, s.width, ispec, cols);
      // dw_i[oc, p] = go[oc, :] . cols[p, :] (double dots).
      GemmTransBAssignImpl(go, cols, s.out_channels, out_area, patch, part);
    }
    if (dx != nullptr) {
      float* dcols = arena.Buffer(kSlotDCols,
                                  static_cast<size_t>(patch * out_area));
      std::memset(dcols, 0,
                  sizeof(float) * static_cast<size_t>(patch * out_area));
      // dcols[p, a] = sum_oc w[oc, p] * go[oc, a], ascending oc.
      GemmTransAAddImpl(w, go, s.out_channels, patch, out_area, dcols);
      Col2Im(dcols, s.in_channels, s.height, s.width, ispec,
             dx + i * in_size);
    }
  });
  if (partial_stride > 0) {
    for (int64_t i = 0; i < s.batch; ++i) {
      const float* part = partials + i * partial_stride;
      if (dw != nullptr) {
        for (int64_t idx = 0; idx < dw_size; ++idx) dw[idx] += part[idx];
      }
      if (db != nullptr) {
        const float* pdb = part + dw_size;
        for (int64_t oc = 0; oc < s.out_channels; ++oc) db[oc] += pdb[oc];
      }
    }
  }
}

// ---- Serial conv references ----

namespace ref {

void Conv2dForwardKernel(const float* x, const float* w, const float* bias,
                         const ConvKernelShape& s, float* out) {
  const int64_t patch = s.Patch();
  const int64_t out_area = s.OutArea();
  const Im2ColSpec ispec{s.kernel, s.stride, s.pad};
  const int64_t in_size = s.in_channels * s.height * s.width;
  const int64_t out_size = s.out_channels * out_area;
  std::vector<float> cols(static_cast<size_t>(patch * out_area));
  for (int64_t i = 0; i < s.batch; ++i) {
    Im2Col(x + i * in_size, s.in_channels, s.height, s.width, ispec,
           cols.data());
    float* out_i = out + i * out_size;
    GemmAdd(w, cols.data(), s.out_channels, patch, out_area, out_i);
    for (int64_t oc = 0; oc < s.out_channels; ++oc) {
      float* plane = out_i + oc * out_area;
      const float bv = bias[oc];
      for (int64_t p = 0; p < out_area; ++p) plane[p] += bv;
    }
  }
}

void Conv2dBackwardKernel(const float* grad_out, const float* x,
                          const float* w, const ConvKernelShape& s, float* dx,
                          float* dw, float* db) {
  const int64_t patch = s.Patch();
  const int64_t out_area = s.OutArea();
  const Im2ColSpec ispec{s.kernel, s.stride, s.pad};
  const int64_t in_size = s.in_channels * s.height * s.width;
  const int64_t out_size = s.out_channels * out_area;
  std::vector<float> cols(static_cast<size_t>(patch * out_area));
  std::vector<float> dcols(static_cast<size_t>(patch * out_area));
  for (int64_t i = 0; i < s.batch; ++i) {
    const float* go = grad_out + i * out_size;
    if (db != nullptr) {
      for (int64_t oc = 0; oc < s.out_channels; ++oc) {
        const float* plane = go + oc * out_area;
        double acc = 0.0;
        for (int64_t p = 0; p < out_area; ++p) acc += plane[p];
        db[oc] += static_cast<float>(acc);
      }
    }
    if (dw != nullptr) {
      Im2Col(x + i * in_size, s.in_channels, s.height, s.width, ispec,
             cols.data());
      for (int64_t oc = 0; oc < s.out_channels; ++oc) {
        const float* grow = go + oc * out_area;
        float* dwrow = dw + oc * patch;
        for (int64_t p = 0; p < patch; ++p) {
          const float* crow = cols.data() + p * out_area;
          double acc = 0.0;
          for (int64_t a = 0; a < out_area; ++a) {
            acc += static_cast<double>(grow[a]) * crow[a];
          }
          dwrow[p] += static_cast<float>(acc);
        }
      }
    }
    if (dx != nullptr) {
      std::fill(dcols.begin(), dcols.end(), 0.0f);
      for (int64_t oc = 0; oc < s.out_channels; ++oc) {
        const float* wrow = w + oc * patch;
        const float* grow = go + oc * out_area;
        for (int64_t p = 0; p < patch; ++p) {
          const float wv = wrow[p];
          if (wv == 0.0f) continue;
          float* drow = dcols.data() + p * out_area;
          for (int64_t a = 0; a < out_area; ++a) {
            drow[a] = std::fmaf(wv, grow[a], drow[a]);
          }
        }
      }
      Col2Im(dcols.data(), s.in_channels, s.height, s.width, ispec,
             dx + i * in_size);
    }
  }
}

}  // namespace ref

}  // namespace rfed
