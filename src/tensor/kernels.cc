#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace rfed {
namespace {

// Register tile of the GEMM micro-kernel: kMR rows of A by kNR columns
// of B accumulated in registers. 4x8 floats = 8 SSE vectors of
// accumulators, small enough that GCC keeps the whole tile in xmm
// registers at the baseline x86-64 ISA.
constexpr int64_t kMR = 4;
constexpr int64_t kNR = 8;
// Register tile of the TransB (row-dot) kernel: kTR independent
// double-precision accumulator chains per pass over a row of A.
constexpr int64_t kTR = 4;

// Scratch slot convention (one arena per thread; nested kernel calls
// must use disjoint slots):
//   0  packed B panels of GemmAdd
//   1  packed A tile of GemmAdd
//   2  transposed A of GemmTransAAdd
//   3  im2col columns of the conv drivers
//   4  column gradients (dcols) of the conv backward
//   5  per-image dw/db partials of the conv backward (caller thread)
//   6  interleaved B panels of GemmTransBAssign
constexpr int kSlotPackB = 0;
constexpr int kSlotPackA = 1;
constexpr int kSlotTransA = 2;
constexpr int kSlotIm2Col = 3;
constexpr int kSlotDCols = 4;
constexpr int kSlotConvPartial = 5;
constexpr int kSlotPackTB = 6;

KernelOptions g_options;

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;  // guarded by g_pool_mu
int g_pool_threads = 0;              // guarded by g_pool_mu

std::atomic<int64_t> g_scratch_bytes{0};
std::atomic<int64_t> g_scratch_peak{0};

void NotePeak(int64_t current) {
  int64_t peak = g_scratch_peak.load(std::memory_order_relaxed);
  while (current > peak &&
         !g_scratch_peak.compare_exchange_weak(peak, current,
                                               std::memory_order_relaxed)) {
  }
}

}  // namespace

const KernelOptions& GetKernelOptions() { return g_options; }

void SetKernelOptions(const KernelOptions& options) {
  KernelOptions fixed = options;
  fixed.block_m = std::max(1, fixed.block_m);
  fixed.block_k = std::max(1, fixed.block_k);
  fixed.block_n = std::max(1, fixed.block_n);
  g_options = fixed;
}

void SetKernelThreads(int threads) { g_options.threads = threads; }

ScratchArena& ScratchArena::ThreadLocal() {
  thread_local ScratchArena arena;
  return arena;
}

float* ScratchArena::Buffer(int slot, size_t floats) {
  RFED_CHECK_GE(slot, 0);
  RFED_CHECK_LT(slot, kMaxSlots);
  Slot& s = slots_[slot];
  if (s.capacity < floats) {
    const int64_t delta =
        static_cast<int64_t>((floats - s.capacity) * sizeof(float));
    delete[] s.data;
    s.data = new float[floats];
    s.capacity = floats;
    NotePeak(g_scratch_bytes.fetch_add(delta, std::memory_order_relaxed) +
             delta);
  }
  return s.data;
}

ScratchArena::~ScratchArena() {
  int64_t total = 0;
  for (Slot& s : slots_) {
    total += static_cast<int64_t>(s.capacity * sizeof(float));
    delete[] s.data;
  }
  g_scratch_bytes.fetch_sub(total, std::memory_order_relaxed);
}

int64_t ScratchArena::PeakBytes() {
  return g_scratch_peak.load(std::memory_order_relaxed);
}

void ScratchArena::ResetPeak() {
  g_scratch_peak.store(g_scratch_bytes.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
}

void internal::ParallelForImpl(int64_t chunks, const void* ctx,
                               void (*trampoline)(const void*, int64_t)) {
  const int threads = g_options.threads;
  if (threads > 1 && chunks > 1) {
    // The pool is a process singleton; if another thread is mid-fan-out
    // (kernels called from the FL trainer's own worker pool), fall back
    // to the serial path — values never depend on the choice.
    std::unique_lock<std::mutex> lock(g_pool_mu, std::try_to_lock);
    if (lock.owns_lock()) {
      if (!g_pool || g_pool_threads != threads) {
        g_pool = std::make_unique<ThreadPool>(threads);
        g_pool_threads = threads;
      }
      g_pool->ParallelFor(static_cast<int>(chunks),
                          [&](int i) { trampoline(ctx, i); });
      return;
    }
  }
  for (int64_t i = 0; i < chunks; ++i) trampoline(ctx, i);
}

// ---- Naive seed references ----

namespace ref {

void GemmAdd(const float* a, const float* b, int64_t m, int64_t k, int64_t n,
             float* c) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmTransAAdd(const float* a, const float* b, int64_t m, int64_t k,
                   int64_t n, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      float* crow = c + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmTransBAssign(const float* a, const float* b, int64_t m, int64_t n,
                      int64_t k, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * n;
    float* crow = c + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float* brow = b + p * n;
      double acc = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        acc += static_cast<double>(arow[j]) * brow[j];
      }
      crow[p] = static_cast<float>(acc);
    }
  }
}

}  // namespace ref

// ---- im2col / col2im ----

void Im2Col(const float* x, int64_t cin, int64_t h, int64_t w,
            const Im2ColSpec& spec, float* cols) {
  const int64_t k = spec.kernel;
  const int64_t ho = (h + 2 * spec.pad - k) / spec.stride + 1;
  const int64_t wo = (w + 2 * spec.pad - k) / spec.stride + 1;
  const int64_t out_area = ho * wo;
  int64_t row = 0;
  for (int64_t c = 0; c < cin; ++c) {
    for (int64_t ky = 0; ky < k; ++ky) {
      for (int64_t kx = 0; kx < k; ++kx, ++row) {
        float* dst = cols + row * out_area;
        if (spec.stride == 1) {
          // Unit stride: each output row is a contiguous slice of the
          // input row with zero fringes — bulk-copy the interior.
          const int64_t lo = std::max<int64_t>(0, spec.pad - kx);
          const int64_t hi = std::min(wo, w + spec.pad - kx);
          for (int64_t oy = 0; oy < ho; ++oy) {
            const int64_t iy = oy + ky - spec.pad;
            float* drow = dst + oy * wo;
            if (iy < 0 || iy >= h || lo >= hi) {
              std::memset(drow, 0, sizeof(float) * static_cast<size_t>(wo));
              continue;
            }
            if (lo > 0) {
              std::memset(drow, 0, sizeof(float) * static_cast<size_t>(lo));
            }
            std::memcpy(drow + lo, x + (c * h + iy) * w + lo + kx - spec.pad,
                        sizeof(float) * static_cast<size_t>(hi - lo));
            if (hi < wo) {
              std::memset(drow + hi, 0,
                          sizeof(float) * static_cast<size_t>(wo - hi));
            }
          }
          continue;
        }
        for (int64_t oy = 0; oy < ho; ++oy) {
          const int64_t iy = oy * spec.stride + ky - spec.pad;
          for (int64_t ox = 0; ox < wo; ++ox) {
            const int64_t ix = ox * spec.stride + kx - spec.pad;
            const bool inside = iy >= 0 && iy < h && ix >= 0 && ix < w;
            dst[oy * wo + ox] = inside ? x[(c * h + iy) * w + ix] : 0.0f;
          }
        }
      }
    }
  }
}

void Col2Im(const float* cols, int64_t cin, int64_t h, int64_t w,
            const Im2ColSpec& spec, float* dx) {
  const int64_t k = spec.kernel;
  const int64_t ho = (h + 2 * spec.pad - k) / spec.stride + 1;
  const int64_t wo = (w + 2 * spec.pad - k) / spec.stride + 1;
  const int64_t out_area = ho * wo;
  int64_t row = 0;
  for (int64_t c = 0; c < cin; ++c) {
    for (int64_t ky = 0; ky < k; ++ky) {
      for (int64_t kx = 0; kx < k; ++kx, ++row) {
        const float* src = cols + row * out_area;
        for (int64_t oy = 0; oy < ho; ++oy) {
          const int64_t iy = oy * spec.stride + ky - spec.pad;
          if (iy < 0 || iy >= h) continue;
          for (int64_t ox = 0; ox < wo; ++ox) {
            const int64_t ix = ox * spec.stride + kx - spec.pad;
            if (ix < 0 || ix >= w) continue;
            dx[(c * h + iy) * w + ix] += src[oy * wo + ox];
          }
        }
      }
    }
  }
}

// ---- Blocked GEMM ----

namespace {

/// Packs the full-kNR panels of a kc x nc block of B (row stride ldb)
/// into panel-major layout: panel j0/kNR holds kc rows of kNR
/// consecutive floats. Columns beyond the last full panel stay unpacked.
void PackB(const float* b, int64_t ldb, int64_t kc, int64_t full, float* bp) {
  for (int64_t j0 = 0; j0 < full; j0 += kNR) {
    float* panel = bp + j0 * kc;
    for (int64_t p = 0; p < kc; ++p) {
      std::memcpy(panel + p * kNR, b + p * ldb + j0,
                  sizeof(float) * static_cast<size_t>(kNR));
    }
  }
}

/// Packs a kMR x kc tile of A (row stride lda) p-major: ap[p*kMR + i].
void PackA(const float* a, int64_t lda, int64_t kc, float* ap) {
  for (int64_t p = 0; p < kc; ++p) {
    for (int64_t i = 0; i < kMR; ++i) ap[p * kMR + i] = a[i * lda + p];
  }
}

/// C tile [kMR, kNR] += Ap[kc, kMR] * Bpanel[kc, kNR], accumulating each
/// element in ascending p order — the reference summation order.
void MicroKernel(const float* ap, const float* bp, int64_t kc, float* c,
                 int64_t ldc) {
  float acc[kMR][kNR];
  for (int64_t i = 0; i < kMR; ++i) {
    for (int64_t j = 0; j < kNR; ++j) acc[i][j] = c[i * ldc + j];
  }
  for (int64_t p = 0; p < kc; ++p) {
    const float* av = ap + p * kMR;
    const float* bv = bp + p * kNR;
    for (int64_t i = 0; i < kMR; ++i) {
      const float a = av[i];
      for (int64_t j = 0; j < kNR; ++j) acc[i][j] += a * bv[j];
    }
  }
  for (int64_t i = 0; i < kMR; ++i) {
    for (int64_t j = 0; j < kNR; ++j) c[i * ldc + j] = acc[i][j];
  }
}

/// One mc x nc block of C += (mc x kc of A) * (kc x nc of B). `bp` holds
/// the packed full panels, `b` the unpacked block origin for the
/// remainder columns.
void GemmBlock(const float* a, int64_t lda, const float* b, int64_t ldb,
               const float* bp, int64_t mc, int64_t kc, int64_t nc,
               int64_t full, float* c, int64_t ldc) {
  float* ap = ScratchArena::ThreadLocal().Buffer(
      kSlotPackA, static_cast<size_t>(kMR * kc));
  int64_t ir = 0;
  for (; ir + kMR <= mc; ir += kMR) {
    PackA(a + ir * lda, lda, kc, ap);
    for (int64_t j0 = 0; j0 < full; j0 += kNR) {
      MicroKernel(ap, bp + j0 * kc, kc, c + ir * ldc + j0, ldc);
    }
    // Remainder columns of the packed rows: scalar, ascending p.
    for (int64_t i = 0; i < kMR; ++i) {
      float* crow = c + (ir + i) * ldc;
      for (int64_t p = 0; p < kc; ++p) {
        const float av = ap[p * kMR + i];
        const float* brow = b + p * ldb;
        for (int64_t j = full; j < nc; ++j) crow[j] += av * brow[j];
      }
    }
  }
  // Remainder rows (< kMR): straight scalar loops, ascending p.
  for (; ir < mc; ++ir) {
    const float* arow = a + ir * lda;
    float* crow = c + ir * ldc;
    for (int64_t p = 0; p < kc; ++p) {
      const float av = arow[p];
      const float* brow = b + p * ldb;
      for (int64_t j = 0; j < nc; ++j) crow[j] += av * brow[j];
    }
  }
}

// Uninstrumented kernel bodies. The public entry points below wrap
// these with a trace span + FLOP counter; the conv drivers and
// GemmTransAAdd call the Impl forms directly so one logical op never
// records nested kernel spans or double-counted FLOPs.

void GemmAddImpl(const float* a, const float* b, int64_t m, int64_t k,
                 int64_t n, float* c) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  const KernelOptions& opt = g_options;
  const int64_t flops = 2 * m * k * n;
  if (flops < opt.blocked_min_flops) {
    ref::GemmAdd(a, b, m, k, n, c);
    return;
  }
  const int64_t mc_block = opt.block_m;
  const int64_t kc_block = opt.block_k;
  const int64_t nc_block = std::max<int64_t>(kNR, opt.block_n / kNR * kNR);
  const bool parallel = flops >= opt.parallel_min_flops;
  for (int64_t jc = 0; jc < n; jc += nc_block) {
    const int64_t nc = std::min(nc_block, n - jc);
    const int64_t full = nc / kNR * kNR;
    for (int64_t pc = 0; pc < k; pc += kc_block) {
      const int64_t kc = std::min(kc_block, k - pc);
      float* bp = ScratchArena::ThreadLocal().Buffer(
          kSlotPackB, static_cast<size_t>(kc * full));
      const float* bblock = b + pc * n + jc;
      PackB(bblock, n, kc, full, bp);
      const int64_t chunks = (m + mc_block - 1) / mc_block;
      auto run_chunk = [&](int64_t ci) {
        const int64_t i0 = ci * mc_block;
        const int64_t mc = std::min(mc_block, m - i0);
        GemmBlock(a + i0 * k + pc, k, bblock, n, bp, mc, kc, nc, full,
                  c + i0 * n + jc, n);
      };
      if (parallel) {
        KernelParallelFor(chunks, run_chunk);
      } else {
        for (int64_t ci = 0; ci < chunks; ++ci) run_chunk(ci);
      }
    }
  }
}

void GemmTransAAddImpl(const float* a, const float* b, int64_t m, int64_t k,
                       int64_t n, float* c) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  const KernelOptions& opt = g_options;
  if (2 * m * k * n < opt.blocked_min_flops) {
    ref::GemmTransAAdd(a, b, m, k, n, c);
    return;
  }
  // Transpose A into scratch, then C[k,n] += At[k,m] * B[m,n]: GemmAdd's
  // ascending contraction over m is exactly the reference's ascending-i
  // accumulation.
  float* at = ScratchArena::ThreadLocal().Buffer(kSlotTransA,
                                                 static_cast<size_t>(m * k));
  constexpr int64_t kTile = 32;
  for (int64_t i0 = 0; i0 < m; i0 += kTile) {
    const int64_t i1 = std::min(m, i0 + kTile);
    for (int64_t j0 = 0; j0 < k; j0 += kTile) {
      const int64_t j1 = std::min(k, j0 + kTile);
      for (int64_t i = i0; i < i1; ++i) {
        for (int64_t j = j0; j < j1; ++j) at[j * m + i] = a[i * k + j];
      }
    }
  }
  GemmAddImpl(at, b, k, m, n, c);
}

void GemmTransBAssignImpl(const float* a, const float* b, int64_t m, int64_t n,
                          int64_t k, float* c) {
  if (m <= 0 || k <= 0) return;
  const KernelOptions& opt = g_options;
  if (n <= 0 || k < kTR || 2 * m * n * k < opt.blocked_min_flops) {
    ref::GemmTransBAssign(a, b, m, n, k, c);
    return;
  }
  // Interleave kTR consecutive rows of B so one pass over a row of A
  // feeds kTR independent double accumulator chains (breaking the
  // reference's single latency-bound chain); each chain still adds in
  // ascending j order, so every dot is bit-identical to the reference.
  const int64_t ktile = k / kTR * kTR;
  float* bp = ScratchArena::ThreadLocal().Buffer(
      kSlotPackTB, static_cast<size_t>(ktile * n));
  for (int64_t p0 = 0; p0 < ktile; p0 += kTR) {
    float* panel = bp + p0 * n;
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t t = 0; t < kTR; ++t) {
        panel[j * kTR + t] = b[(p0 + t) * n + j];
      }
    }
  }
  const bool parallel = 2 * m * n * k >= opt.parallel_min_flops;
  const int64_t row_chunk = std::max<int64_t>(1, opt.block_m);
  const int64_t chunks = (m + row_chunk - 1) / row_chunk;
  auto run_chunk = [&](int64_t ci) {
    const int64_t i0 = ci * row_chunk;
    const int64_t i1 = std::min(m, i0 + row_chunk);
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = a + i * n;
      float* crow = c + i * k;
      for (int64_t p0 = 0; p0 < ktile; p0 += kTR) {
        const float* panel = bp + p0 * n;
        double acc[kTR] = {0.0, 0.0, 0.0, 0.0};
        for (int64_t j = 0; j < n; ++j) {
          const double av = arow[j];
          const float* bv = panel + j * kTR;
          for (int64_t t = 0; t < kTR; ++t) acc[t] += av * bv[t];
        }
        for (int64_t t = 0; t < kTR; ++t) {
          crow[p0 + t] = static_cast<float>(acc[t]);
        }
      }
      for (int64_t p = ktile; p < k; ++p) {
        const float* brow = b + p * n;
        double acc = 0.0;
        for (int64_t j = 0; j < n; ++j) {
          acc += static_cast<double>(arow[j]) * brow[j];
        }
        crow[p] = static_cast<float>(acc);
      }
    }
  };
  if (parallel) {
    KernelParallelFor(chunks, run_chunk);
  } else {
    for (int64_t ci = 0; ci < chunks; ++ci) run_chunk(ci);
  }
}

// FLOP counters are looked up once; the adds (and the spans) only run
// when tracing is enabled so the disabled path stays a single branch.
obs::Counter* GemmFlopCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("kernel.gemm_flops");
  return c;
}

obs::Counter* ConvFlopCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("kernel.conv_flops");
  return c;
}

}  // namespace

void GemmAdd(const float* a, const float* b, int64_t m, int64_t k, int64_t n,
             float* c) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  if (obs::TracingEnabled()) {
    obs::TraceSpan span("gemm_add");
    GemmFlopCounter()->Add(2 * m * k * n);
    GemmAddImpl(a, b, m, k, n, c);
    return;
  }
  GemmAddImpl(a, b, m, k, n, c);
}

void GemmTransAAdd(const float* a, const float* b, int64_t m, int64_t k,
                   int64_t n, float* c) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  if (obs::TracingEnabled()) {
    obs::TraceSpan span("gemm_ta");
    GemmFlopCounter()->Add(2 * m * k * n);
    GemmTransAAddImpl(a, b, m, k, n, c);
    return;
  }
  GemmTransAAddImpl(a, b, m, k, n, c);
}

void GemmTransBAssign(const float* a, const float* b, int64_t m, int64_t n,
                      int64_t k, float* c) {
  if (m <= 0 || k <= 0) return;
  if (obs::TracingEnabled()) {
    obs::TraceSpan span("gemm_tb");
    GemmFlopCounter()->Add(2 * m * (n > 0 ? n : 0) * k);
    GemmTransBAssignImpl(a, b, m, n, k, c);
    return;
  }
  GemmTransBAssignImpl(a, b, m, n, k, c);
}

// ---- Convolution drivers ----

void Conv2dForwardKernel(const float* x, const float* w, const float* bias,
                         const ConvKernelShape& s, float* out) {
  const int64_t patch = s.Patch();
  const int64_t out_area = s.OutArea();
  obs::TraceSpan trace_span("conv2d_fwd");
  if (obs::TracingEnabled()) {
    ConvFlopCounter()->Add(2 * s.batch * s.out_channels * patch * out_area);
  }
  const Im2ColSpec ispec{s.kernel, s.stride, s.pad};
  const int64_t in_size = s.in_channels * s.height * s.width;
  const int64_t out_size = s.out_channels * out_area;
  KernelParallelFor(s.batch, [&](int64_t i) {
    float* cols = ScratchArena::ThreadLocal().Buffer(
        kSlotIm2Col, static_cast<size_t>(patch * out_area));
    Im2Col(x + i * in_size, s.in_channels, s.height, s.width, ispec, cols);
    float* out_i = out + i * out_size;
    GemmAddImpl(w, cols, s.out_channels, patch, out_area, out_i);
    for (int64_t oc = 0; oc < s.out_channels; ++oc) {
      float* plane = out_i + oc * out_area;
      const float bv = bias[oc];
      for (int64_t p = 0; p < out_area; ++p) plane[p] += bv;
    }
  });
}

void Conv2dBackwardKernel(const float* grad_out, const float* x,
                          const float* w, const ConvKernelShape& s, float* dx,
                          float* dw, float* db) {
  const int64_t patch = s.Patch();
  const int64_t out_area = s.OutArea();
  obs::TraceSpan trace_span("conv2d_bwd");
  if (obs::TracingEnabled()) {
    const int64_t gemms = (dw != nullptr ? 1 : 0) + (dx != nullptr ? 1 : 0);
    ConvFlopCounter()->Add(2 * s.batch * s.out_channels * patch * out_area *
                           gemms);
  }
  const Im2ColSpec ispec{s.kernel, s.stride, s.pad};
  const int64_t in_size = s.in_channels * s.height * s.width;
  const int64_t out_size = s.out_channels * out_area;
  // Per-image dw/db partials live in the caller's arena; workers fill
  // disjoint slices, then the caller reduces them in ascending image
  // order — the same float additions the serial reference performs.
  const int64_t dw_size = dw != nullptr ? s.out_channels * patch : 0;
  const int64_t db_size = db != nullptr ? s.out_channels : 0;
  const int64_t partial_stride = dw_size + db_size;
  float* partials =
      partial_stride > 0
          ? ScratchArena::ThreadLocal().Buffer(
                kSlotConvPartial,
                static_cast<size_t>(s.batch * partial_stride))
          : nullptr;
  KernelParallelFor(s.batch, [&](int64_t i) {
    const float* go = grad_out + i * out_size;
    float* part =
        partial_stride > 0 ? partials + i * partial_stride : nullptr;
    ScratchArena& arena = ScratchArena::ThreadLocal();
    if (db != nullptr) {
      float* pdb = part + dw_size;
      for (int64_t oc = 0; oc < s.out_channels; ++oc) {
        const float* plane = go + oc * out_area;
        double acc = 0.0;
        for (int64_t p = 0; p < out_area; ++p) acc += plane[p];
        pdb[oc] = static_cast<float>(acc);
      }
    }
    if (dw != nullptr) {
      float* cols = arena.Buffer(kSlotIm2Col,
                                 static_cast<size_t>(patch * out_area));
      Im2Col(x + i * in_size, s.in_channels, s.height, s.width, ispec, cols);
      // dw_i[oc, p] = go[oc, :] . cols[p, :] (double dots).
      GemmTransBAssignImpl(go, cols, s.out_channels, out_area, patch, part);
    }
    if (dx != nullptr) {
      float* dcols = arena.Buffer(kSlotDCols,
                                  static_cast<size_t>(patch * out_area));
      std::memset(dcols, 0,
                  sizeof(float) * static_cast<size_t>(patch * out_area));
      // dcols[p, a] = sum_oc w[oc, p] * go[oc, a], ascending oc.
      GemmTransAAddImpl(w, go, s.out_channels, patch, out_area, dcols);
      Col2Im(dcols, s.in_channels, s.height, s.width, ispec,
             dx + i * in_size);
    }
  });
  if (partial_stride > 0) {
    for (int64_t i = 0; i < s.batch; ++i) {
      const float* part = partials + i * partial_stride;
      if (dw != nullptr) {
        for (int64_t idx = 0; idx < dw_size; ++idx) dw[idx] += part[idx];
      }
      if (db != nullptr) {
        const float* pdb = part + dw_size;
        for (int64_t oc = 0; oc < s.out_channels; ++oc) db[oc] += pdb[oc];
      }
    }
  }
}

// ---- Naive seed conv references ----

namespace ref {

void Conv2dForwardKernel(const float* x, const float* w, const float* bias,
                         const ConvKernelShape& s, float* out) {
  const int64_t patch = s.Patch();
  const int64_t out_area = s.OutArea();
  const Im2ColSpec ispec{s.kernel, s.stride, s.pad};
  const int64_t in_size = s.in_channels * s.height * s.width;
  const int64_t out_size = s.out_channels * out_area;
  std::vector<float> cols(static_cast<size_t>(patch * out_area));
  for (int64_t i = 0; i < s.batch; ++i) {
    Im2Col(x + i * in_size, s.in_channels, s.height, s.width, ispec,
           cols.data());
    float* out_i = out + i * out_size;
    GemmAdd(w, cols.data(), s.out_channels, patch, out_area, out_i);
    for (int64_t oc = 0; oc < s.out_channels; ++oc) {
      float* plane = out_i + oc * out_area;
      const float bv = bias[oc];
      for (int64_t p = 0; p < out_area; ++p) plane[p] += bv;
    }
  }
}

void Conv2dBackwardKernel(const float* grad_out, const float* x,
                          const float* w, const ConvKernelShape& s, float* dx,
                          float* dw, float* db) {
  const int64_t patch = s.Patch();
  const int64_t out_area = s.OutArea();
  const Im2ColSpec ispec{s.kernel, s.stride, s.pad};
  const int64_t in_size = s.in_channels * s.height * s.width;
  const int64_t out_size = s.out_channels * out_area;
  std::vector<float> cols(static_cast<size_t>(patch * out_area));
  std::vector<float> dcols(static_cast<size_t>(patch * out_area));
  for (int64_t i = 0; i < s.batch; ++i) {
    const float* go = grad_out + i * out_size;
    if (db != nullptr) {
      for (int64_t oc = 0; oc < s.out_channels; ++oc) {
        const float* plane = go + oc * out_area;
        double acc = 0.0;
        for (int64_t p = 0; p < out_area; ++p) acc += plane[p];
        db[oc] += static_cast<float>(acc);
      }
    }
    if (dw != nullptr) {
      Im2Col(x + i * in_size, s.in_channels, s.height, s.width, ispec,
             cols.data());
      for (int64_t oc = 0; oc < s.out_channels; ++oc) {
        const float* grow = go + oc * out_area;
        float* dwrow = dw + oc * patch;
        for (int64_t p = 0; p < patch; ++p) {
          const float* crow = cols.data() + p * out_area;
          double acc = 0.0;
          for (int64_t a = 0; a < out_area; ++a) {
            acc += static_cast<double>(grow[a]) * crow[a];
          }
          dwrow[p] += static_cast<float>(acc);
        }
      }
    }
    if (dx != nullptr) {
      std::fill(dcols.begin(), dcols.end(), 0.0f);
      for (int64_t oc = 0; oc < s.out_channels; ++oc) {
        const float* wrow = w + oc * patch;
        const float* grow = go + oc * out_area;
        for (int64_t p = 0; p < patch; ++p) {
          const float wv = wrow[p];
          if (wv == 0.0f) continue;
          float* drow = dcols.data() + p * out_area;
          for (int64_t a = 0; a < out_area; ++a) drow[a] += wv * grow[a];
        }
      }
      Col2Im(dcols.data(), s.in_channels, s.height, s.width, ispec,
             dx + i * in_size);
    }
  }
}

}  // namespace ref

}  // namespace rfed
