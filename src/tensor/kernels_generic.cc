// Portable blocked-kernel table, compiled at the baseline ISA of the
// build (no -m flags). The fused step is std::fmaf — glibc resolves it
// to the hardware FMA instruction when the CPU has one and to a
// correctly-rounded soft implementation otherwise, so this TU produces
// the canonical bits on every machine, merely slower than the SIMD
// tables. A 4x8 tile keeps the accumulators in registers even at
// baseline x86-64 (8 xmm worth) and matches the pre-SIMD kernels.

#include <cmath>

#include "tensor/kernels_blocked.h"

namespace rfed {
namespace internal {
namespace {

struct GenericTraits {
  static constexpr int64_t kMr = 4;
  static constexpr int64_t kNr = 8;
  static constexpr int64_t kTr = 4;

  static float Fma(float a, float b, float acc) {
    return std::fmaf(a, b, acc);
  }

  static void Micro(const float* ap, const float* bp, int64_t kc, float* c,
                    int64_t ldc) {
    float acc[kMr][kNr];
    for (int64_t i = 0; i < kMr; ++i) {
      for (int64_t j = 0; j < kNr; ++j) acc[i][j] = c[i * ldc + j];
    }
    for (int64_t p = 0; p < kc; ++p) {
      const float* av = ap + p * kMr;
      const float* bv = bp + p * kNr;
      for (int64_t i = 0; i < kMr; ++i) {
        const float a = av[i];
        for (int64_t j = 0; j < kNr; ++j) {
          acc[i][j] = std::fmaf(a, bv[j], acc[i][j]);
        }
      }
    }
    for (int64_t i = 0; i < kMr; ++i) {
      for (int64_t j = 0; j < kNr; ++j) c[i * ldc + j] = acc[i][j];
    }
  }

  static void DotChains(const float* a, const float* panel, int64_t n,
                        double* out) {
    // Plain mul+add: float*float is exact in double, so this is the
    // same bit sequence as a fused chain — no fma() call needed.
    double acc[kTr] = {0.0, 0.0, 0.0, 0.0};
    for (int64_t j = 0; j < n; ++j) {
      const double av = a[j];
      const float* bv = panel + j * kTr;
      for (int64_t t = 0; t < kTr; ++t) acc[t] += av * bv[t];
    }
    for (int64_t t = 0; t < kTr; ++t) out[t] = acc[t];
  }
};

}  // namespace

const BlockedKernels& GenericKernels() {
  static const BlockedKernels table = {
      "generic",
      static_cast<int>(GenericTraits::kMr),
      static_cast<int>(GenericTraits::kNr),
      static_cast<int>(GenericTraits::kTr),
      &GemmAddBlockedT<GenericTraits>,
      &GemmTransBBlockedT<GenericTraits>,
  };
  return table;
}

}  // namespace internal
}  // namespace rfed
