#include "tensor/tensor.h"

#include <cmath>

#include "tensor/buffer_pool.h"
#include "util/check.h"
#include "util/string_util.h"

namespace rfed {
namespace {

// Pool-aware fill construction: an exact-size recycled buffer when a
// BufferPool scope is active, a fresh heap vector otherwise. assign()
// value-writes every element, so recycled content never leaks through.
std::vector<float> FilledStorage(int64_t n, float value) {
  if (!BufferPool::Active()) {
    return std::vector<float>(static_cast<size_t>(n), value);
  }
  std::vector<float> buf = BufferPool::Acquire(static_cast<size_t>(n));
  buf.assign(static_cast<size_t>(n), value);
  return buf;
}

}  // namespace

Tensor::~Tensor() { BufferPool::MaybeRecycle(&data_, pooled_); }

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_),
      data_(BufferPool::CopyOf(other.data_)),
      pooled_(BufferPool::Active()) {}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this != &other) {
    // Keep this tensor's own storage (and its accounting flag): the
    // vector copy reuses the existing buffer when capacity allows.
    shape_ = other.shape_;
    data_ = other.data_;
  }
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)),
      data_(std::move(other.data_)),
      pooled_(other.pooled_) {
  other.pooled_ = false;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this != &other) {
    BufferPool::MaybeRecycle(&data_, pooled_);
    shape_ = std::move(other.shape_);
    data_ = std::move(other.data_);
    pooled_ = other.pooled_;
    other.pooled_ = false;
  }
  return *this;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(FilledStorage(shape_.num_elements(), 0.0f)),
      pooled_(BufferPool::Active()) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)),
      data_(FilledStorage(shape_.num_elements(), value)),
      pooled_(BufferPool::Active()) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  RFED_CHECK_EQ(static_cast<int64_t>(data_.size()), shape_.num_elements());
}

Tensor Tensor::Uniform(Shape shape, float lo, float hi, Rng* rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.at(i) = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Normal(Shape shape, float mean, float stddev, Rng* rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.at(i) = static_cast<float>(rng->Normal(mean, stddev));
  }
  return t;
}

float& Tensor::at2(int64_t r, int64_t c) {
  RFED_CHECK_EQ(rank(), 2);
  return data_[static_cast<size_t>(r * dim(1) + c)];
}

float Tensor::at2(int64_t r, int64_t c) const {
  RFED_CHECK_EQ(rank(), 2);
  return data_[static_cast<size_t>(r * dim(1) + c)];
}

Tensor Tensor::Reshaped(Shape new_shape) const {
  RFED_CHECK_EQ(new_shape.num_elements(), shape_.num_elements())
      << new_shape.ToString() << " vs " << shape_.ToString();
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = BufferPool::CopyOf(data_);
  out.pooled_ = BufferPool::Active();
  return out;
}

float Tensor::ToScalar() const {
  RFED_CHECK_EQ(size(), 1);
  return data_[0];
}

Tensor& Tensor::AddInPlace(const Tensor& other) {
  RFED_CHECK(shape_ == other.shape_)
      << shape_.ToString() << " vs " << other.shape_.ToString();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::SubInPlace(const Tensor& other) {
  RFED_CHECK(shape_ == other.shape_)
      << shape_.ToString() << " vs " << other.shape_.ToString();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::MulInPlace(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

Tensor& Tensor::Axpy(float scalar, const Tensor& other) {
  RFED_CHECK(shape_ == other.shape_)
      << shape_.ToString() << " vs " << other.shape_.ToString();
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scalar * other.data_[i];
  }
  return *this;
}

void Tensor::Fill(float value) {
  for (float& v : data_) v = value;
}

float Tensor::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::Mean() const {
  RFED_CHECK_GT(size(), 0);
  return Sum() / static_cast<float>(size());
}

float Tensor::MaxAbs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::SquaredNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

std::string Tensor::ToString(int max_elements) const {
  std::string out = "Tensor" + shape_.ToString() + " {";
  const int64_t n = std::min<int64_t>(size(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.4g", static_cast<double>(data_[static_cast<size_t>(i)]));
  }
  if (size() > n) out += ", ...";
  out += "}";
  return out;
}

bool AllClose(const Tensor& a, const Tensor& b, float tol) {
  if (a.shape() != b.shape()) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a.at(i) - b.at(i)) > tol) return false;
  }
  return true;
}

}  // namespace rfed
