#ifndef RFED_TENSOR_SHAPE_H_
#define RFED_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace rfed {

/// Dense row-major shape: a short list of non-negative dimensions.
/// Rank 0 denotes a scalar with one element.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims);
  explicit Shape(std::vector<int64_t> dims);

  int rank() const { return static_cast<int>(dims_.size()); }

  /// Dimension at axis; negative axes count from the back (-1 == last).
  int64_t dim(int axis) const;

  /// Total number of elements (1 for rank 0).
  int64_t num_elements() const;

  const std::vector<int64_t>& dims() const { return dims_; }

  /// Shape with `axis` removed (e.g. reduction output shape).
  Shape WithoutAxis(int axis) const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return dims_ != other.dims_; }

  std::string ToString() const;

 private:
  std::vector<int64_t> dims_;
};

}  // namespace rfed

#endif  // RFED_TENSOR_SHAPE_H_
