#ifndef RFED_TENSOR_KERNELS_BLOCKED_H_
#define RFED_TENSOR_KERNELS_BLOCKED_H_

// ISA-generic blocked GEMM driver, instantiated once per ISA TU with a
// Traits type supplying the register microkernels. Traits must provide:
//
//   static constexpr int64_t kMr;   // GemmAdd tile rows
//   static constexpr int64_t kNr;   // GemmAdd tile cols (B panel width)
//   static constexpr int64_t kTr;   // TransB chains per packed panel
//   static float Fma(float a, float b, float acc);   // fused step
//   // C tile [kMr,kNr] += Ap[kc,kMr] * Bpanel[kc,kNr], ascending p,
//   // one fused rounding per step per element:
//   static void Micro(const float* ap, const float* bp, int64_t kc,
//                     float* c, int64_t ldc);
//   // kTr double chains over an interleaved panel (panel[j*kTr + t] =
//   // B[p0+t, j]): out[t] = sum_j a[j] * panel[j*kTr+t], ascending j,
//   // one double rounding per step (exact products make mul+add and
//   // fma chains identical — either implementation is canonical):
//   static void DotChains(const float* a, const float* panel, int64_t n,
//                         double* out);
//
// Every instantiation computes the canonical summation order of
// kernels.h, so instantiations differ only in speed, never in bits.
// The drivers below own all blocking, packing, remainder handling and
// the deterministic n-partition; the Traits own only register tiles.

#include <algorithm>
#include <cstring>

#include "tensor/kernels_dispatch.h"

namespace rfed {
namespace internal {

/// Packs the full-kNr panels of a kc x nc block of B (row stride ldb)
/// into panel-major layout: panel j0/kNr holds kc rows of kNr
/// consecutive floats. Columns beyond the last full panel stay unpacked.
template <typename Traits>
void PackBPanels(const float* b, int64_t ldb, int64_t kc, int64_t full,
                 float* bp) {
  constexpr int64_t nr = Traits::kNr;
  for (int64_t j0 = 0; j0 < full; j0 += nr) {
    float* panel = bp + j0 * kc;
    for (int64_t p = 0; p < kc; ++p) {
      std::memcpy(panel + p * nr, b + p * ldb + j0,
                  sizeof(float) * static_cast<size_t>(nr));
    }
  }
}

/// Packs a kMr x kc tile of A (row stride lda) p-major: ap[p*kMr + i].
template <typename Traits>
void PackATile(const float* a, int64_t lda, int64_t kc, float* ap) {
  constexpr int64_t mr = Traits::kMr;
  for (int64_t p = 0; p < kc; ++p) {
    for (int64_t i = 0; i < mr; ++i) ap[p * mr + i] = a[i * lda + p];
  }
}

/// PackATile for a short tile: `rows` (< kMr) real rows of A, the rest
/// zero-padded, so the full-width microkernel can run the tail rows of
/// an m-block at vector speed (its results for the pad rows are
/// discarded by the caller).
template <typename Traits>
void PackATilePadded(const float* a, int64_t lda, int64_t kc, int64_t rows,
                     float* ap) {
  constexpr int64_t mr = Traits::kMr;
  for (int64_t p = 0; p < kc; ++p) {
    for (int64_t i = 0; i < rows; ++i) ap[p * mr + i] = a[i * lda + p];
    for (int64_t i = rows; i < mr; ++i) ap[p * mr + i] = 0.0f;
  }
}

/// One mc x nc block of C += (mc x kc of A) * (kc x nc of B). `bp` holds
/// the packed full panels, `b` the unpacked block origin for the
/// remainder columns.
template <typename Traits>
void GemmBlockT(const float* a, int64_t lda, const float* b, int64_t ldb,
                const float* bp, int64_t mc, int64_t kc, int64_t nc,
                int64_t full, float* c, int64_t ldc) {
  constexpr int64_t mr = Traits::kMr;
  constexpr int64_t nr = Traits::kNr;
  float* ap = ScratchArena::ThreadLocal().Buffer(
      kSlotPackA, static_cast<size_t>(mr * kc));
  int64_t ir = 0;
  for (; ir + mr <= mc; ir += mr) {
    PackATile<Traits>(a + ir * lda, lda, kc, ap);
    for (int64_t j0 = 0; j0 < full; j0 += nr) {
      Traits::Micro(ap, bp + j0 * kc, kc, c + ir * ldc + j0, ldc);
    }
    // Remainder columns of the packed rows: scalar fused, ascending p.
    for (int64_t i = 0; i < mr; ++i) {
      float* crow = c + (ir + i) * ldc;
      for (int64_t j = full; j < nc; ++j) {
        float acc = crow[j];
        for (int64_t p = 0; p < kc; ++p) {
          acc = Traits::Fma(ap[p * mr + i], b[p * ldb + j], acc);
        }
        crow[j] = acc;
      }
    }
  }
  // Remainder rows (< kMr): run the full-width microkernel on a
  // zero-padded A tile into a staging tile, keeping the tail at vector
  // speed (a scalar tail here costs more than all the full tiles on
  // shapes like m=64 = 10*6+4). Pad rows multiply zeros into a zeroed
  // staging row and are discarded; real rows see the exact canonical
  // sequence.
  if (ir < mc) {
    const int64_t rem = mc - ir;
    PackATilePadded<Traits>(a + ir * lda, lda, kc, rem, ap);
    float tile_c[mr * nr];
    for (int64_t j0 = 0; j0 < full; j0 += nr) {
      for (int64_t i = 0; i < rem; ++i) {
        std::memcpy(tile_c + i * nr, c + (ir + i) * ldc + j0,
                    sizeof(float) * static_cast<size_t>(nr));
      }
      std::memset(tile_c + rem * nr, 0,
                  sizeof(float) * static_cast<size_t>((mr - rem) * nr));
      Traits::Micro(ap, bp + j0 * kc, kc, tile_c, nr);
      for (int64_t i = 0; i < rem; ++i) {
        std::memcpy(c + (ir + i) * ldc + j0, tile_c + i * nr,
                    sizeof(float) * static_cast<size_t>(nr));
      }
    }
    // Remainder columns of the tail rows: scalar fused, ascending p.
    for (int64_t i = 0; i < rem; ++i) {
      float* crow = c + (ir + i) * ldc;
      for (int64_t j = full; j < nc; ++j) {
        float acc = crow[j];
        for (int64_t p = 0; p < kc; ++p) {
          acc = Traits::Fma(ap[p * mr + i], b[p * ldb + j], acc);
        }
        crow[j] = acc;
      }
    }
  }
}

/// The blocked GemmAdd driver. The parallel partition is over NC column
/// chunks of B/C (disjoint output columns, deterministic: a fixed
/// function of n and tile.block_n, never of the thread count). Each
/// worker packs its own B panels into its thread-local arena, so a
/// chunk's working set — one packed KCxNC panel block plus the mxNC
/// slab of C it updates — stays resident in that core's private cache;
/// this is what fixes the flat 1->4 thread scaling of the old
/// row-partitioned scheme, whose every thread streamed the whole of B.
template <typename Traits>
void GemmAddBlockedT(const float* a, const float* b, int64_t m, int64_t k,
                     int64_t n, float* c, const TileConfig& tile,
                     bool parallel) {
  constexpr int64_t nr = Traits::kNr;
  const int64_t mc_block = std::max<int64_t>(1, tile.block_m);
  const int64_t kc_block = std::max<int64_t>(1, tile.block_k);
  const int64_t nc_block =
      std::max<int64_t>(nr, static_cast<int64_t>(tile.block_n) / nr * nr);
  const int64_t chunks = (n + nc_block - 1) / nc_block;
  auto run_chunk = [&](int64_t ci) {
    const int64_t jc = ci * nc_block;
    const int64_t nc = std::min(nc_block, n - jc);
    const int64_t full = nc / nr * nr;
    for (int64_t pc = 0; pc < k; pc += kc_block) {  // ascending: determinism
      const int64_t kc = std::min(kc_block, k - pc);
      float* bp = ScratchArena::ThreadLocal().Buffer(
          kSlotPackB, static_cast<size_t>(kc * full));
      const float* bblock = b + pc * n + jc;
      PackBPanels<Traits>(bblock, n, kc, full, bp);
      for (int64_t ic = 0; ic < m; ic += mc_block) {
        const int64_t mc = std::min(mc_block, m - ic);
        GemmBlockT<Traits>(a + ic * k + pc, k, bblock, n, bp, mc, kc, nc,
                           full, c + ic * n + jc, n);
      }
    }
  };
  if (parallel) {
    KernelParallelFor(chunks, run_chunk);
  } else {
    for (int64_t ci = 0; ci < chunks; ++ci) run_chunk(ci);
  }
}

/// The blocked GemmTransBAssign driver: interleaves kTr consecutive
/// rows of B so one pass over a row of A feeds kTr independent
/// double-precision accumulator chains (breaking the reference's single
/// latency-bound chain); each chain still reduces in ascending j order
/// with exact float*float products, so every dot is bit-identical to
/// the reference. The caller packs once; row chunks of A/C are the
/// parallel partition.
template <typename Traits>
void GemmTransBBlockedT(const float* a, const float* b, int64_t m, int64_t n,
                        int64_t k, float* c, const TileConfig& tile,
                        bool parallel) {
  constexpr int64_t tr = Traits::kTr;
  const int64_t ktile = k / tr * tr;
  float* bp = ScratchArena::ThreadLocal().Buffer(
      kSlotPackTB, static_cast<size_t>(ktile * n));
  for (int64_t p0 = 0; p0 < ktile; p0 += tr) {
    float* panel = bp + p0 * n;
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t t = 0; t < tr; ++t) {
        panel[j * tr + t] = b[(p0 + t) * n + j];
      }
    }
  }
  const int64_t row_chunk = std::max<int64_t>(1, tile.block_m);
  const int64_t chunks = (m + row_chunk - 1) / row_chunk;
  auto run_chunk = [&](int64_t ci) {
    const int64_t i0 = ci * row_chunk;
    const int64_t i1 = std::min(m, i0 + row_chunk);
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = a + i * n;
      float* crow = c + i * k;
      for (int64_t p0 = 0; p0 < ktile; p0 += tr) {
        double acc[tr];
        Traits::DotChains(arow, bp + p0 * n, n, acc);
        for (int64_t t = 0; t < tr; ++t) {
          crow[p0 + t] = static_cast<float>(acc[t]);
        }
      }
      for (int64_t p = ktile; p < k; ++p) {
        const float* brow = b + p * n;
        double acc = 0.0;
        for (int64_t j = 0; j < n; ++j) {
          acc += static_cast<double>(arow[j]) * brow[j];
        }
        crow[p] = static_cast<float>(acc);
      }
    }
  };
  if (parallel) {
    KernelParallelFor(chunks, run_chunk);
  } else {
    for (int64_t ci = 0; ci < chunks; ++ci) run_chunk(ci);
  }
}

}  // namespace internal
}  // namespace rfed

#endif  // RFED_TENSOR_KERNELS_BLOCKED_H_
