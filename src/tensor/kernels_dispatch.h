#ifndef RFED_TENSOR_KERNELS_DISPATCH_H_
#define RFED_TENSOR_KERNELS_DISPATCH_H_

// Internal interface between the ISA-neutral kernel driver (kernels.cc)
// and the per-ISA blocked-kernel translation units (kernels_generic.cc,
// kernels_avx2.cc). Each ISA TU is compiled with its own instruction-set
// flags and exports one BlockedKernels table; kernels.cc picks a table
// at runtime from CPU detection plus the KernelOptions::isa override.
// Not part of the public API.

#include <cstdint>

#include "tensor/kernels.h"

namespace rfed {
namespace internal {

// Scratch slot convention (one ScratchArena per thread; nested kernel
// calls must use disjoint slots):
//   0  packed B panels of GemmAdd
//   1  packed A tile of GemmAdd
//   2  transposed A of GemmTransAAdd
//   3  im2col columns of the conv drivers
//   4  column gradients (dcols) of the conv backward
//   5  per-image dw/db partials of the conv backward (caller thread)
//   6  interleaved B panels of GemmTransBAssign
inline constexpr int kSlotPackB = 0;
inline constexpr int kSlotPackA = 1;
inline constexpr int kSlotTransA = 2;
inline constexpr int kSlotIm2Col = 3;
inline constexpr int kSlotDCols = 4;
inline constexpr int kSlotConvPartial = 5;
inline constexpr int kSlotPackTB = 6;

/// One ISA's blocked-kernel entry points. Every implementation computes
/// the canonical fused summation order (kernels.h), so all tables are
/// bit-interchangeable; only throughput differs.
struct BlockedKernels {
  const char* name;  ///< "avx2" / "generic" — also the autotune ISA key.
  int mr;            ///< GemmAdd register tile rows.
  int nr;            ///< GemmAdd register tile columns (B panel width).
  int tr;            ///< GemmTransBAssign accumulator chains per panel.

  /// C[m,n] += A[m,k] B[k,n], blocked with `tile`, n-partitioned across
  /// the kernel pool when `parallel`.
  void (*gemm_add)(const float* a, const float* b, int64_t m, int64_t k,
                   int64_t n, float* c, const TileConfig& tile, bool parallel);

  /// C[m,k] = A[m,n] B[k,n]^T (double-precision row dots), row-chunked
  /// by tile.block_m, parallel across row chunks.
  void (*gemm_transb)(const float* a, const float* b, int64_t m, int64_t n,
                      int64_t k, float* c, const TileConfig& tile,
                      bool parallel);
};

/// The portable table (always available; soft-fma, compiled at the
/// baseline ISA).
const BlockedKernels& GenericKernels();

/// The AVX2+FMA table, or nullptr when the build could not compile it
/// (non-x86 target or a compiler without -mavx2/-mfma). Whether the
/// *CPU* can run it is a separate, runtime question (KernelAvx2Available).
const BlockedKernels* Avx2KernelsOrNull();

}  // namespace internal
}  // namespace rfed

#endif  // RFED_TENSOR_KERNELS_DISPATCH_H_
