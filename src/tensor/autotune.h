#ifndef RFED_TENSOR_AUTOTUNE_H_
#define RFED_TENSOR_AUTOTUNE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/kernels.h"

namespace rfed {

// Per-shape tile autotuner for the blocked GEMMs (docs/KERNELS.md,
// "Autotuner"). Every candidate TileConfig produces bit-identical
// results — blocking only reorders which output elements are in flight,
// never the summation within one (kernels.h) — so the tuner is free to
// measure real kernel invocations during training and switch tiles
// between calls without ever perturbing the run's bytes. What it
// optimizes is wall time only.
//
// Protocol (the marian AutoTunerRecorder idiom): the first calls for a
// new (op, shape) rotate through the fixed candidate set; the caller
// times each such call and reports the measurement back. Once every
// candidate has `samples_per_candidate` timings the shape commits to
// the candidate with the best (minimum) observed time and all later
// calls get that winner for free. Committed picks can persist across
// processes through an optional file cache keyed by (op, isa, shape).
//
// Counters (always on, docs/OBSERVABILITY.md):
//   kernel.autotune.trials      timed exploration calls
//   kernel.autotune.cache_hits  calls answered by a committed pick

/// Which blocked kernel a tuning key refers to.
enum class AutotuneOp { kGemmAdd, kGemmTransB };
/// Stable name ("gemm_add", "gemm_transb") — the cache-file op key.
const char* AutotuneOpName(AutotuneOp op);

struct AutotuneConfig {
  /// Master switch; off = AutotunePick is never consulted and the
  /// static KernelOptions blocks apply (the reproducible default).
  bool enabled = false;
  /// Optional persistent cache path. Loaded on first pick, rewritten on
  /// every commit. "" = in-process cache only. A file whose header or
  /// lines do not parse aborts (a stale cache silently mis-tuning every
  /// run is worse than a crash).
  std::string cache_file;
  /// Timed samples each candidate needs before the shape commits.
  int samples_per_candidate = 2;
};

/// Replaces the process-wide tuner configuration. Not thread-safe
/// against in-flight kernels — set before training, like KernelOptions.
void SetAutotuneConfig(const AutotuneConfig& config);
const AutotuneConfig& GetAutotuneConfig();
/// Fast path for kernel call sites (single relaxed atomic load).
bool AutotuneEnabled();

/// The fixed, ordered candidate set for `op`. Index order is the
/// exploration rotation order; the default KernelOptions blocking is
/// always candidate 0.
const std::vector<TileConfig>& AutotuneCandidates(AutotuneOp op);

/// Token for one pending timing measurement; 0 means "no timing
/// requested" (the shape is already committed).
using AutotuneTrial = uint64_t;

/// Returns the tile to run one (op, shape) call with on ISA table
/// `isa`. The shape triple is (rows, contraction, cols) of the op —
/// (m, k, n) for GemmAdd, (m, n, k) for GemmTransBAssign. If the shape
/// is committed (in-process or from the file cache) the winner is
/// returned, *trial = 0, and kernel.autotune.cache_hits increments.
/// Otherwise the next exploration candidate is returned and *trial is a
/// token the caller MUST pass to AutotuneReport with the call's
/// measured wall time.
TileConfig AutotunePick(AutotuneOp op, const char* isa, int64_t rows,
                        int64_t contraction, int64_t cols,
                        AutotuneTrial* trial);

/// Reports the wall time of a trial call (increments
/// kernel.autotune.trials) and commits the shape once every candidate
/// has enough samples.
void AutotuneReport(AutotuneTrial trial, double elapsed_ms);

/// Drops all in-process tuner state (committed picks, partial samples,
/// the loaded file image) so the next pick starts fresh. Tests only.
void ResetAutotuneForTest();

}  // namespace rfed

#endif  // RFED_TENSOR_AUTOTUNE_H_
