#include "tensor/autotune.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>
#include <tuple>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/check.h"

namespace rfed {
namespace {

constexpr char kCacheHeader[] = "rfed-autotune v1";

// (op, isa, rows, contraction, cols) — the tuning key. isa is the
// BlockedKernels table name, so generic and avx2 measurements never
// contaminate each other.
using Key = std::tuple<int, std::string, int64_t, int64_t, int64_t>;

struct Entry {
  bool committed = false;
  TileConfig winner;
  // Per-candidate min observed time and sample count.
  std::vector<double> best_ms;
  std::vector<int> samples;
  // Rotation cursor: total picks issued while exploring.
  uint64_t issued = 0;
};

struct PendingTrial {
  Key key;
  size_t candidate = 0;
};

struct TunerState {
  std::mutex mu;
  AutotuneConfig config;
  std::map<Key, Entry> entries;
  std::unordered_map<uint64_t, PendingTrial> pending;
  uint64_t next_trial = 1;
  bool cache_loaded = false;
  // Full image of the cache file (committed picks of every ISA/op,
  // including ones this process never runs) so a rewrite never drops
  // another machine's lines.
  std::map<Key, TileConfig> file_image;
};

TunerState& State() {
  static TunerState* s = new TunerState();
  return *s;
}

std::atomic<bool> g_enabled{false};

obs::Counter* TrialCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("kernel.autotune.trials");
  return c;
}

obs::Counter* CacheHitCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("kernel.autotune.cache_hits");
  return c;
}

int OpFromName(const std::string& name) {
  if (name == AutotuneOpName(AutotuneOp::kGemmAdd)) {
    return static_cast<int>(AutotuneOp::kGemmAdd);
  }
  if (name == AutotuneOpName(AutotuneOp::kGemmTransB)) {
    return static_cast<int>(AutotuneOp::kGemmTransB);
  }
  return -1;
}

/// Parses config.cache_file into state.file_image. Aborts on any
/// malformed content: a cache that fails to parse is either corrupt or
/// written by an incompatible version, and silently ignoring it would
/// hide real breakage behind a quiet re-tune.
void LoadCacheLocked(TunerState& state) {
  state.cache_loaded = true;
  const std::string& path = state.config.cache_file;
  if (path.empty()) return;
  std::ifstream in(path);
  if (!in.is_open()) return;  // Not created yet: first run.
  std::string header;
  std::getline(in, header);
  RFED_CHECK(header == kCacheHeader)
      << "autotune cache " << path << ": bad header '" << header
      << "' (expected '" << kCacheHeader << "'); delete the file to re-tune";
  std::string line;
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string op_name, isa;
    int64_t rows = 0, contraction = 0, cols = 0;
    TileConfig tile;
    std::string extra;
    const bool parsed =
        static_cast<bool>(fields >> op_name >> isa >> rows >> contraction >>
                          cols >> tile.block_m >> tile.block_k >>
                          tile.block_n) &&
        !(fields >> extra);
    RFED_CHECK(parsed) << "autotune cache " << path << ":" << lineno
                       << ": unparseable line '" << line
                       << "'; delete the file to re-tune";
    const int op = OpFromName(op_name);
    RFED_CHECK(op >= 0) << "autotune cache " << path << ":" << lineno
                        << ": unknown op '" << op_name
                        << "'; delete the file to re-tune";
    RFED_CHECK(rows > 0 && contraction > 0 && cols > 0 && tile.block_m > 0 &&
               tile.block_k > 0 && tile.block_n > 0)
        << "autotune cache " << path << ":" << lineno
        << ": non-positive field in '" << line
        << "'; delete the file to re-tune";
    state.file_image[Key{op, isa, rows, contraction, cols}] = tile;
  }
}

/// Rewrites the cache file from state.file_image (best effort: an
/// unwritable path degrades to in-process caching). Writes to a temp
/// file then renames so readers never see a torn cache.
void SaveCacheLocked(TunerState& state) {
  const std::string& path = state.config.cache_file;
  if (path.empty()) return;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) return;
    out << kCacheHeader << "\n";
    for (const auto& [key, tile] : state.file_image) {
      out << AutotuneOpName(static_cast<AutotuneOp>(std::get<0>(key))) << " "
          << std::get<1>(key) << " " << std::get<2>(key) << " "
          << std::get<3>(key) << " " << std::get<4>(key) << " " << tile.block_m
          << " " << tile.block_k << " " << tile.block_n << "\n";
    }
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return;
    }
  }
  std::rename(tmp.c_str(), path.c_str());
}

}  // namespace

const char* AutotuneOpName(AutotuneOp op) {
  switch (op) {
    case AutotuneOp::kGemmAdd:
      return "gemm_add";
    case AutotuneOp::kGemmTransB:
      return "gemm_transb";
  }
  return "unknown";
}

const std::vector<TileConfig>& AutotuneCandidates(AutotuneOp op) {
  // Candidate 0 is always the static KernelOptions default, so a tuned
  // run can never do worse than untuned on its winning shapes. The rest
  // bracket the L2/L3 trade-off: wider N panels amortize A-tile reloads
  // on skinny-m GEMMs (the conv forwards), deeper K blocks help the
  // square-ish autograd shapes. For GemmTransB only block_m (the row
  // chunk of the parallel partition) matters, so its set is small.
  static const std::vector<TileConfig> kGemmAddCandidates = {
      {64, 256, 1024}, {64, 128, 2048}, {32, 256, 4096},
      {96, 384, 512},  {64, 75, 8192},
  };
  static const std::vector<TileConfig> kGemmTransBCandidates = {
      {64, 256, 1024}, {16, 256, 1024}, {256, 256, 1024}};
  return op == AutotuneOp::kGemmAdd ? kGemmAddCandidates
                                    : kGemmTransBCandidates;
}

void SetAutotuneConfig(const AutotuneConfig& config) {
  TunerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  AutotuneConfig fixed = config;
  fixed.samples_per_candidate = std::max(1, fixed.samples_per_candidate);
  const bool cache_changed = fixed.cache_file != state.config.cache_file;
  state.config = fixed;
  if (cache_changed) {
    state.cache_loaded = false;
    state.file_image.clear();
  }
  g_enabled.store(fixed.enabled, std::memory_order_relaxed);
}

const AutotuneConfig& GetAutotuneConfig() {
  // Callers treat the config as set-once-before-training (autotune.h),
  // so reading without the lock here matches the KernelOptions contract.
  return State().config;
}

bool AutotuneEnabled() { return g_enabled.load(std::memory_order_relaxed); }

TileConfig AutotunePick(AutotuneOp op, const char* isa, int64_t rows,
                        int64_t contraction, int64_t cols,
                        AutotuneTrial* trial) {
  *trial = 0;
  const std::vector<TileConfig>& candidates = AutotuneCandidates(op);
  TunerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.cache_loaded) LoadCacheLocked(state);
  const Key key{static_cast<int>(op), isa, rows, contraction, cols};
  Entry& entry = state.entries[key];
  if (!entry.committed && entry.best_ms.empty()) {
    // New shape: adopt a file-cached winner if one exists.
    auto it = state.file_image.find(key);
    if (it != state.file_image.end()) {
      entry.committed = true;
      entry.winner = it->second;
    } else {
      entry.best_ms.assign(candidates.size(),
                           std::numeric_limits<double>::infinity());
      entry.samples.assign(candidates.size(), 0);
    }
  }
  if (entry.committed) {
    CacheHitCounter()->Increment();
    return entry.winner;
  }
  const size_t candidate =
      static_cast<size_t>(entry.issued++ % candidates.size());
  const uint64_t token = state.next_trial++;
  state.pending[token] = PendingTrial{key, candidate};
  *trial = token;
  return candidates[candidate];
}

void AutotuneReport(AutotuneTrial trial, double elapsed_ms) {
  if (trial == 0) return;
  TunerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto pending_it = state.pending.find(trial);
  RFED_CHECK(pending_it != state.pending.end())
      << "AutotuneReport: unknown trial token " << trial;
  const PendingTrial pending = pending_it->second;
  state.pending.erase(pending_it);
  TrialCounter()->Increment();
  Entry& entry = state.entries[pending.key];
  if (entry.committed) return;  // A concurrent trial already committed.
  entry.best_ms[pending.candidate] =
      std::min(entry.best_ms[pending.candidate], elapsed_ms);
  entry.samples[pending.candidate] += 1;
  const int needed = state.config.samples_per_candidate;
  for (int s : entry.samples) {
    if (s < needed) return;
  }
  // Every candidate measured: commit argmin of the per-candidate mins
  // (min, not mean — interference only ever adds time, so the fastest
  // observation is the cleanest estimate of a candidate's cost).
  size_t best = 0;
  for (size_t i = 1; i < entry.best_ms.size(); ++i) {
    if (entry.best_ms[i] < entry.best_ms[best]) best = i;
  }
  entry.committed = true;
  entry.winner = AutotuneCandidates(
      static_cast<AutotuneOp>(std::get<0>(pending.key)))[best];
  entry.best_ms.clear();
  entry.samples.clear();
  state.file_image[pending.key] = entry.winner;
  SaveCacheLocked(state);
}

void ResetAutotuneForTest() {
  TunerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.entries.clear();
  state.pending.clear();
  state.file_image.clear();
  state.cache_loaded = false;
}

}  // namespace rfed
