#include "tensor/shape.h"

#include "util/check.h"
#include "util/string_util.h"

namespace rfed {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims) {
  for (int64_t d : dims_) RFED_CHECK_GE(d, 0);
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  for (int64_t d : dims_) RFED_CHECK_GE(d, 0);
}

int64_t Shape::dim(int axis) const {
  if (axis < 0) axis += rank();
  RFED_CHECK_GE(axis, 0);
  RFED_CHECK_LT(axis, rank());
  return dims_[static_cast<size_t>(axis)];
}

int64_t Shape::num_elements() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

Shape Shape::WithoutAxis(int axis) const {
  if (axis < 0) axis += rank();
  RFED_CHECK_GE(axis, 0);
  RFED_CHECK_LT(axis, rank());
  std::vector<int64_t> out;
  out.reserve(dims_.size() - 1);
  for (int i = 0; i < rank(); ++i) {
    if (i != axis) out.push_back(dims_[static_cast<size_t>(i)]);
  }
  return Shape(std::move(out));
}

std::string Shape::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

}  // namespace rfed
