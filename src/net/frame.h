#ifndef RFED_NET_FRAME_H_
#define RFED_NET_FRAME_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/socket.h"

namespace rfed {
namespace net {

/// Wire frame: [magic u32][type u32][payload_len u64][payload bytes]
/// [FNV-1a u32 over magic..payload]. All integers little-endian. The
/// checksum spans the header too, so a corrupted length or type cannot
/// masquerade as a valid (mis-sized) frame.
inline constexpr uint32_t kFrameMagic = 0x52464431;  // "RFD1"
inline constexpr size_t kFrameHeaderBytes =
    sizeof(uint32_t) + sizeof(uint32_t) + sizeof(uint64_t);
inline constexpr size_t kFrameChecksumBytes = sizeof(uint32_t);
/// Upper bound on a single frame's payload; a length above this is
/// treated as corruption, not an allocation request.
inline constexpr uint64_t kMaxFramePayloadBytes = uint64_t{1} << 31;

/// Frame types of the serve protocol (docs/DEPLOYMENT.md has the state
/// machine). Values are wire format — never renumber.
enum class FrameType : uint32_t {
  kHello = 1,        ///< worker -> server: identity + scenario fingerprint
  kHelloAck = 2,     ///< server -> worker: mode + algorithm state blob
  kJob = 3,          ///< server -> worker: train this client for this round
  kResult = 4,       ///< worker -> server: trained state + loss
  kShutdown = 5,     ///< server -> worker: drain and exit cleanly
  kPing = 6,         ///< server -> worker: liveness probe on an idle link
  kPong = 7,         ///< worker -> server: echo of a PING's sequence number
  kHelloRejoin = 8,  ///< worker -> server: mid-run re-handshake after a loss
};

/// A decoded frame.
struct Frame {
  FrameType type = FrameType::kHello;
  std::vector<uint8_t> payload;
};

/// Serializes one frame (header + payload + checksum).
std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload);

/// Incremental frame decoder. Feed() arbitrary byte chunks as they
/// arrive off the socket; Next() yields complete verified frames. Any
/// integrity violation (bad magic, oversized length, checksum mismatch)
/// is sticky: the stream is undecodable past the first corrupt byte.
class FrameAssembler {
 public:
  enum class Status {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< *out was filled with the next frame
    kError,     ///< stream corrupt; error() describes why
  };

  /// Appends received bytes to the internal buffer.
  void Feed(const uint8_t* data, size_t length);

  /// Extracts the next complete frame, verifying magic and checksum.
  Status Next(Frame* out);

  const std::string& error() const { return error_; }
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::deque<uint8_t> buffer_;
  std::string error_;
  bool failed_ = false;
};

/// Blocking helpers over a TcpConnection. SendFrame returns false on a
/// broken connection. RecvFrame pulls from the socket into `assembler`
/// until a frame is complete; false on EOF or error (corrupt stream
/// aborts — a checksum mismatch on an established link means a bug or
/// tampering, not weather).
bool SendFrame(TcpConnection* conn, FrameType type,
               const std::vector<uint8_t>& payload);
bool RecvFrame(TcpConnection* conn, FrameAssembler* assembler, Frame* out);

}  // namespace net
}  // namespace rfed

#endif  // RFED_NET_FRAME_H_
