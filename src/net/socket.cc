#include "net/socket.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/check.h"

namespace rfed {
namespace net {

namespace {

/// Resolves host:port to a socket address list (TCP/IPv4-or-v6). The
/// caller owns the returned list and must freeaddrinfo() it.
addrinfo* Resolve(const std::string& host, int port, bool passive) {
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  addrinfo* result = nullptr;
  const std::string port_text = std::to_string(port);
  const int rc = getaddrinfo(host.c_str(), port_text.c_str(), &hints, &result);
  return rc == 0 ? result : nullptr;
}

}  // namespace

TcpConnection::~TcpConnection() { Close(); }

TcpConnection::TcpConnection(TcpConnection&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

TcpConnection TcpConnection::Connect(const std::string& host, int port) {
  addrinfo* addrs = Resolve(host, port, /*passive=*/false);
  if (addrs == nullptr) return TcpConnection();
  int fd = -1;
  for (addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  freeaddrinfo(addrs);
  if (fd >= 0) {
    // The protocol is small frames in lockstep; coalescing only adds
    // latency to every round.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return TcpConnection(fd);
}

TcpConnection TcpConnection::ConnectWithRetry(const std::string& host,
                                              int port, int max_attempts,
                                              const BackoffPolicy& policy) {
  return ConnectWithRetry(host, port, max_attempts, policy, nullptr);
}

TcpConnection TcpConnection::ConnectWithRetry(
    const std::string& host, int port, int max_attempts,
    const BackoffPolicy& policy,
    const std::function<void(double)>& sleep_fn) {
  RFED_CHECK_GE(max_attempts, 1);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    TcpConnection conn = Connect(host, port);
    if (conn.valid()) return conn;
    if (attempt + 1 < max_attempts) {
      const double delay_ms = BackoffDelayMs(policy, attempt, nullptr);
      if (sleep_fn) {
        sleep_fn(delay_ms);
      } else {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(static_cast<int64_t>(delay_ms)));
      }
    }
  }
  return TcpConnection();
}

TcpConnection TcpConnection::ConnectWithRetryOrDie(const std::string& host,
                                                   int port, int max_attempts,
                                                   const BackoffPolicy& policy) {
  TcpConnection conn = ConnectWithRetry(host, port, max_attempts, policy);
  RFED_CHECK(conn.valid()) << "cannot connect to " << host << ":" << port
                           << " after " << max_attempts << " attempt(s)";
  return conn;
}

bool TcpConnection::SendAll(const void* data, size_t length) {
  if (fd_ < 0) return false;
  const uint8_t* cursor = static_cast<const uint8_t*>(data);
  size_t remaining = length;
  // Explicit short-write loop: ::send on a stream socket may accept any
  // prefix of the buffer (full send-queue, signal arrival), so one call
  // is never assumed to cover the request.
  while (remaining > 0) {
    const ssize_t sent = ::send(fd_, cursor, remaining, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;  // interrupted before any byte moved
      return false;
    }
    if (sent == 0) return false;
    cursor += sent;
    remaining -= static_cast<size_t>(sent);
  }
  return true;
}

void TcpConnection::InterruptBlockingIo() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

int64_t TcpConnection::RecvSome(void* buffer, size_t capacity) {
  if (fd_ < 0) return -1;
  while (true) {
    const ssize_t got = ::recv(fd_, buffer, capacity, 0);
    if (got < 0 && errno == EINTR) continue;
    return static_cast<int64_t>(got);
  }
}

void TcpConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(const std::string& host, int port) {
  addrinfo* addrs = Resolve(host, port, /*passive=*/true);
  RFED_CHECK(addrs != nullptr)
      << "cannot resolve listen address " << host << ":" << port;
  for (addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    fd_ = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd_ < 0) continue;
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd_, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd_);
    fd_ = -1;
  }
  freeaddrinfo(addrs);
  RFED_CHECK(fd_ >= 0) << "cannot bind " << host << ":" << port << ": "
                       << std::strerror(errno);
  RFED_CHECK(::listen(fd_, SOMAXCONN) == 0)
      << "listen on " << host << ":" << port << " failed: "
      << std::strerror(errno);
  sockaddr_storage bound;
  socklen_t bound_len = sizeof(bound);
  RFED_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound),
                           &bound_len) == 0);
  if (bound.ss_family == AF_INET) {
    bound_port_ =
        ntohs(reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
  } else {
    bound_port_ =
        ntohs(reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
  }
}

TcpListener::~TcpListener() { Close(); }

TcpConnection TcpListener::Accept() {
  if (fd_ < 0) return TcpConnection();
  while (true) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0 && errno == EINTR) continue;
    if (client >= 0) {
      int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    return TcpConnection(client);
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace net
}  // namespace rfed
