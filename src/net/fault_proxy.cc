#include "net/fault_proxy.h"

#include <atomic>
#include <utility>

#include "util/check.h"

namespace rfed {
namespace net {

/// One proxied worker<->server connection and its fault bookkeeping.
struct FaultProxy::Relay {
  FaultProxy* proxy = nullptr;
  int index = 0;
  FaultPlan plan;
  TcpConnection client;    ///< the side that dialed the proxy (worker)
  TcpConnection upstream;  ///< the side the proxy dialed (server)
  std::thread up_thread;   ///< client -> upstream
  std::thread down_thread; ///< upstream -> client
  /// Frames completed in the client->upstream direction; the plan's
  /// trigger counter.
  std::atomic<int64_t> upstream_frames{0};
  std::atomic<bool> blackholed{false};
  std::atomic<bool> severed{false};
};

FaultProxy::FaultProxy(const std::string& upstream_host, int upstream_port)
    : upstream_host_(upstream_host),
      upstream_port_(upstream_port),
      listener_("127.0.0.1", 0) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

FaultProxy::~FaultProxy() { Stop(); }

void FaultProxy::SetPlan(int connection_index, const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plans_[connection_index] = plan;
}

void FaultProxy::AcceptLoop() {
  while (true) {
    TcpConnection client = listener_.Accept();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;  // woken by Stop()'s throwaway connection
    }
    if (!client.valid()) return;
    TcpConnection upstream =
        TcpConnection::Connect(upstream_host_, upstream_port_);
    if (!upstream.valid()) {
      // Upstream refused: drop the client too — to the worker this is
      // indistinguishable from the server dying between connect and
      // handshake, which is exactly the event under test.
      continue;
    }
    Relay* relay = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto owned = std::make_unique<Relay>();
      relay = owned.get();
      relay->proxy = this;
      relay->index = static_cast<int>(relays_.size());
      auto it = plans_.find(relay->index);
      if (it != plans_.end()) relay->plan = it->second;
      relay->client = std::move(client);
      relay->upstream = std::move(upstream);
      relays_.push_back(std::move(owned));
    }
    relay->up_thread =
        std::thread([this, relay] { RelayLoop(relay, true); });
    relay->down_thread =
        std::thread([this, relay] { RelayLoop(relay, false); });
  }
}

void FaultProxy::Sever(Relay* relay, bool injected) {
  if (relay->severed.exchange(true)) return;
  // Publish the kill before making it observable: once either peer sees
  // its EOF, killed_connections() must already report this sever.
  if (injected) {
    std::lock_guard<std::mutex> lock(relay->proxy->mu_);
    ++relay->proxy->killed_;
  }
  relay->client.InterruptBlockingIo();
  relay->upstream.InterruptBlockingIo();
}

void FaultProxy::RelayLoop(Relay* relay, bool upstream_direction) {
  TcpConnection& from = upstream_direction ? relay->client : relay->upstream;
  TcpConnection& to = upstream_direction ? relay->upstream : relay->client;
  // The counter assembler decodes a private copy of the stream purely to
  // find frame boundaries; the relay itself forwards raw bytes verbatim.
  FrameAssembler counter;
  uint8_t buffer[4096];
  while (true) {
    const int64_t got = from.RecvSome(buffer, sizeof(buffer));
    if (got <= 0) {
      // Natural EOF/error propagates: a proxied connection must behave
      // like a direct one when no fault is armed.
      Sever(relay, /*injected=*/false);
      return;
    }
    if (!relay->blackholed.load(std::memory_order_relaxed)) {
      if (!to.SendAll(buffer, static_cast<size_t>(got))) {
        Sever(relay, /*injected=*/false);
        return;
      }
    }
    if (!upstream_direction) continue;
    counter.Feed(buffer, static_cast<size_t>(got));
    Frame frame;
    while (counter.Next(&frame) == FrameAssembler::Status::kFrame) {
      const int64_t seen = 1 + relay->upstream_frames.fetch_add(1);
      const FaultPlan& plan = relay->plan;
      if (plan.kill_after_frames >= 0 && seen >= plan.kill_after_frames) {
        Sever(relay, /*injected=*/true);
        return;
      }
      if (plan.blackhole_after_frames >= 0 &&
          seen >= plan.blackhole_after_frames) {
        // From here both directions swallow bytes; the sockets stay open
        // so only a deadline (not an EOF) can expose the stall.
        relay->blackholed.store(true, std::memory_order_relaxed);
      }
    }
  }
}

void FaultProxy::KillConnection(int connection_index) {
  Relay* relay = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (connection_index < 0 ||
        connection_index >= static_cast<int>(relays_.size())) {
      return;
    }
    relay = relays_[static_cast<size_t>(connection_index)].get();
  }
  Sever(relay, /*injected=*/true);
}

int FaultProxy::accepted_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(relays_.size());
}

int FaultProxy::killed_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return killed_;
}

void FaultProxy::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // A close alone does not wake a thread parked in ::accept; a throwaway
  // connection does, and the loop exits on the stopped_ flag it finds.
  { TcpConnection wake = TcpConnection::Connect("127.0.0.1", listen_port()); }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<Relay*> relays;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& relay : relays_) relays.push_back(relay.get());
  }
  for (Relay* relay : relays) Sever(relay, /*injected=*/false);
  for (Relay* relay : relays) {
    if (relay->up_thread.joinable()) relay->up_thread.join();
    if (relay->down_thread.joinable()) relay->down_thread.join();
  }
}

}  // namespace net
}  // namespace rfed
