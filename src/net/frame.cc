#include "net/frame.h"

#include <cstring>

#include "util/check.h"
#include "util/hash.h"

namespace rfed {
namespace net {

namespace {

void AppendU32(std::vector<uint8_t>* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>((value >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::vector<uint8_t>* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>((value >> (8 * i)) & 0xff));
  }
}

}  // namespace

std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload) {
  RFED_CHECK_LE(payload.size(), kMaxFramePayloadBytes);
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size() + kFrameChecksumBytes);
  AppendU32(&out, kFrameMagic);
  AppendU32(&out, static_cast<uint32_t>(type));
  AppendU64(&out, static_cast<uint64_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  const uint32_t checksum = Fnv1a32(out.data(), out.size());
  AppendU32(&out, checksum);
  return out;
}

void FrameAssembler::Feed(const uint8_t* data, size_t length) {
  buffer_.insert(buffer_.end(), data, data + length);
}

FrameAssembler::Status FrameAssembler::Next(Frame* out) {
  if (failed_) return Status::kError;
  if (buffer_.size() < kFrameHeaderBytes) return Status::kNeedMore;
  // Decode the header in place (the deque is contiguous enough to read
  // byte-wise; frames are small so the copy-out below is cheap).
  auto read_u32 = [&](size_t offset) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(buffer_[offset + static_cast<size_t>(i)])
           << (8 * i);
    }
    return v;
  };
  auto read_u64 = [&](size_t offset) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(buffer_[offset + static_cast<size_t>(i)])
           << (8 * i);
    }
    return v;
  };
  const uint32_t magic = read_u32(0);
  if (magic != kFrameMagic) {
    failed_ = true;
    error_ = "bad frame magic";
    return Status::kError;
  }
  const uint64_t payload_len = read_u64(8);
  if (payload_len > kMaxFramePayloadBytes) {
    failed_ = true;
    error_ = "frame payload length exceeds limit";
    return Status::kError;
  }
  const size_t total = kFrameHeaderBytes + static_cast<size_t>(payload_len) +
                       kFrameChecksumBytes;
  if (buffer_.size() < total) return Status::kNeedMore;
  std::vector<uint8_t> frame_bytes(buffer_.begin(),
                                   buffer_.begin() + static_cast<int64_t>(total));
  const size_t checked = total - kFrameChecksumBytes;
  const uint32_t expected = Fnv1a32(frame_bytes.data(), checked);
  uint32_t actual = 0;
  for (int i = 0; i < 4; ++i) {
    actual |= static_cast<uint32_t>(frame_bytes[checked + static_cast<size_t>(i)])
              << (8 * i);
  }
  if (actual != expected) {
    failed_ = true;
    error_ = "frame checksum mismatch";
    return Status::kError;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<int64_t>(total));
  uint32_t type_word = 0;
  for (int i = 0; i < 4; ++i) {
    type_word |= static_cast<uint32_t>(frame_bytes[4 + static_cast<size_t>(i)])
                 << (8 * i);
  }
  out->type = static_cast<FrameType>(type_word);
  out->payload.assign(frame_bytes.begin() + static_cast<int64_t>(kFrameHeaderBytes),
                      frame_bytes.begin() + static_cast<int64_t>(checked));
  return Status::kFrame;
}

bool SendFrame(TcpConnection* conn, FrameType type,
               const std::vector<uint8_t>& payload) {
  const std::vector<uint8_t> bytes = EncodeFrame(type, payload);
  return conn->SendAll(bytes.data(), bytes.size());
}

bool RecvFrame(TcpConnection* conn, FrameAssembler* assembler, Frame* out) {
  uint8_t chunk[4096];
  while (true) {
    switch (assembler->Next(out)) {
      case FrameAssembler::Status::kFrame:
        return true;
      case FrameAssembler::Status::kError:
        RFED_CHECK(false) << "corrupt frame stream: " << assembler->error();
        return false;
      case FrameAssembler::Status::kNeedMore:
        break;
    }
    const int64_t got = conn->RecvSome(chunk, sizeof(chunk));
    if (got <= 0) return false;
    assembler->Feed(chunk, static_cast<size_t>(got));
  }
}

}  // namespace net
}  // namespace rfed
