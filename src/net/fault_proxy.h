#ifndef RFED_NET_FAULT_PROXY_H_
#define RFED_NET_FAULT_PROXY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"

namespace rfed {
namespace net {

/// Fault plan of one proxied connection. Frame counts refer to complete
/// protocol frames observed in the client->upstream direction (HELLO,
/// RESULT, PONG from a worker), so a plan's trigger point is a
/// deterministic position in the protocol, independent of TCP
/// segmentation. A connection may have at most one of kill/black-hole
/// armed; the first threshold reached wins.
struct FaultPlan {
  /// After this many client->upstream frames, sever both sides of the
  /// relay (each peer sees EOF, as if the process died). -1 = never.
  int64_t kill_after_frames = -1;
  /// After this many client->upstream frames, keep both sockets open but
  /// silently discard all further bytes in both directions — the
  /// stalled-peer shape only a deadline detector can catch. -1 = never.
  int64_t blackhole_after_frames = -1;
};

/// Seeded chaos harness for the serve transport: a TCP relay the tests
/// thread between rfed_worker and rfed_server. Each accepted connection
/// is assigned the FaultPlan registered for its accept index (default:
/// transparent pass-through), so a test seeds an Rng, draws kill/stall
/// points, registers them, and gets a reproducible failure schedule.
/// Mirrors the in-sim FaultChannel idiom (PR 1) at the real-socket tier.
class FaultProxy {
 public:
  /// Starts listening on 127.0.0.1 (kernel-assigned port) and relaying
  /// to upstream_host:upstream_port. The accept loop runs immediately;
  /// register plans before the corresponding connection arrives.
  FaultProxy(const std::string& upstream_host, int upstream_port);
  ~FaultProxy();

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  int listen_port() const { return listener_.bound_port(); }

  /// Registers the plan for the connection_index-th accepted connection
  /// (0-based). Connections without a plan relay transparently.
  void SetPlan(int connection_index, const FaultPlan& plan);

  /// Force-kills the connection with the given accept index now (both
  /// sides see EOF). No-op if it never arrived or is already dead.
  void KillConnection(int connection_index);

  /// Number of connections accepted so far.
  int accepted_connections() const;
  /// Number of connections a plan (or KillConnection) has severed.
  int killed_connections() const;

  /// Stops accepting, severs every live relay, and joins all threads.
  /// Called by the destructor; idempotent.
  void Stop();

 private:
  struct Relay;

  void AcceptLoop();
  void RelayLoop(Relay* relay, bool upstream_direction);
  static void Sever(Relay* relay, bool injected);

  std::string upstream_host_;
  int upstream_port_;
  TcpListener listener_;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  std::map<int, FaultPlan> plans_;
  std::vector<std::unique_ptr<Relay>> relays_;
  int killed_ = 0;
  bool stopped_ = false;
};

}  // namespace net
}  // namespace rfed

#endif  // RFED_NET_FAULT_PROXY_H_
