#ifndef RFED_NET_SOCKET_H_
#define RFED_NET_SOCKET_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/backoff.h"

namespace rfed {
namespace net {

/// Move-only owner of a connected TCP stream socket. All operations are
/// blocking; partial writes are retried internally (SendAll) so callers
/// reason in whole buffers. Failures return false / -1 rather than
/// aborting — connection loss is an expected deployment event that the
/// serve layer turns into a clean shutdown, not a crashed process.
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();

  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Connects to host:port (numeric IP or resolvable name). Returns an
  /// invalid connection on any failure.
  static TcpConnection Connect(const std::string& host, int port);

  /// Connect with deterministic exponential backoff between attempts
  /// (util/backoff.h, jitter-free so no Rng is consulted). Gives the
  /// worker a grace window to start before the server is listening —
  /// and vice versa. Returns an invalid connection after max_attempts
  /// consecutive failures.
  static TcpConnection ConnectWithRetry(const std::string& host, int port,
                                        int max_attempts,
                                        const BackoffPolicy& policy);

  /// ConnectWithRetry with the inter-attempt sleep replaced by
  /// `sleep_fn(delay_ms)` — the tests' hook for asserting the backoff
  /// sequencing without waiting out real delays. A null hook sleeps.
  static TcpConnection ConnectWithRetry(
      const std::string& host, int port, int max_attempts,
      const BackoffPolicy& policy,
      const std::function<void(double)>& sleep_fn);

  /// ConnectWithRetry that aborts (RFED_CHECK) with the endpoint and
  /// attempt count in the message when every attempt fails — for callers
  /// where an unreachable peer is a deployment configuration error.
  static TcpConnection ConnectWithRetryOrDie(const std::string& host,
                                             int port, int max_attempts,
                                             const BackoffPolicy& policy);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes the whole buffer (looping over short writes, MSG_NOSIGNAL so
  /// a dead peer yields an error instead of SIGPIPE). False on any error.
  bool SendAll(const void* data, size_t length);

  /// Reads up to `capacity` bytes. Returns the count read, 0 on orderly
  /// EOF, -1 on error.
  int64_t RecvSome(void* buffer, size_t capacity);

  /// Shuts down both directions of the stream without releasing the fd:
  /// a thread blocked in SendAll/RecvSome on this connection returns
  /// with an error/EOF immediately. Safe to call from another thread
  /// while I/O is in flight (Close is not — it frees the fd number for
  /// reuse under the blocked syscall).
  void InterruptBlockingIo();

  void Close();

 private:
  int fd_ = -1;
};

/// Listening TCP socket. Construction aborts on bind failure (a server
/// that cannot claim its endpoint is a configuration error); port 0 asks
/// the kernel for a free port, readable via bound_port() — the test
/// harness depends on this to run many servers concurrently.
class TcpListener {
 public:
  TcpListener(const std::string& host, int port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  int bound_port() const { return bound_port_; }
  int fd() const { return fd_; }

  /// Blocks until a client connects; invalid connection on error.
  TcpConnection Accept();

  void Close();

 private:
  int fd_ = -1;
  int bound_port_ = 0;
};

}  // namespace net
}  // namespace rfed

#endif  // RFED_NET_SOCKET_H_
