#include "serve/protocol.h"

#include <string>

#include "fl/checkpoint.h"
#include "util/check.h"

namespace rfed {
namespace serve {

namespace {

/// Embeds a binary blob as a length-prefixed string field.
void WriteBlob(CheckpointWriter* writer, const std::vector<uint8_t>& blob) {
  writer->WriteString(std::string(blob.begin(), blob.end()));
}

std::vector<uint8_t> ReadBlob(CheckpointReader* reader) {
  const std::string s = reader->ReadString();
  return std::vector<uint8_t>(s.begin(), s.end());
}

/// Embeds one FlMessage envelope (its own header + checksum included).
void WriteFlMessage(CheckpointWriter* writer, const FlMessage& message) {
  std::vector<uint8_t> bytes;
  message.EncodeTo(&bytes);
  WriteBlob(writer, bytes);
}

FlMessage ReadFlMessage(CheckpointReader* reader) {
  const std::vector<uint8_t> bytes = ReadBlob(reader);
  size_t offset = 0;
  FlMessage out;
  RFED_CHECK(FlMessage::TryDecode(bytes, &offset, &out))
      << "embedded FlMessage is corrupt";
  RFED_CHECK_EQ(offset, bytes.size()) << "trailing bytes after FlMessage";
  return out;
}

}  // namespace

std::vector<uint8_t> HelloMessage::Encode() const {
  std::vector<uint8_t> out;
  CheckpointWriter writer(&out);
  writer.WriteI32(worker_id);
  writer.WriteI32(num_workers);
  writer.WriteU64(fingerprint);
  return out;
}

HelloMessage HelloMessage::Decode(const std::vector<uint8_t>& payload) {
  CheckpointReader reader(payload);
  HelloMessage out;
  out.worker_id = reader.ReadI32();
  out.num_workers = reader.ReadI32();
  out.fingerprint = reader.ReadU64();
  RFED_CHECK(reader.AtEnd()) << "trailing bytes in HELLO";
  return out;
}

std::vector<uint8_t> HelloAckMessage::Encode() const {
  std::vector<uint8_t> out;
  CheckpointWriter writer(&out);
  writer.WriteBool(pipelined);
  WriteBlob(&writer, state);
  return out;
}

HelloAckMessage HelloAckMessage::Decode(const std::vector<uint8_t>& payload) {
  CheckpointReader reader(payload);
  HelloAckMessage out;
  out.pipelined = reader.ReadBool();
  out.state = ReadBlob(&reader);
  RFED_CHECK(reader.AtEnd()) << "trailing bytes in HELLO_ACK";
  return out;
}

std::vector<uint8_t> JobMessage::Encode() const {
  std::vector<uint8_t> out;
  CheckpointWriter writer(&out);
  writer.WriteI32(round);
  writer.WriteI32(client);
  WriteBlob(&writer, context);
  WriteBlob(&writer, batcher_base);
  WriteFlMessage(&writer, download);
  return out;
}

JobMessage JobMessage::Decode(const std::vector<uint8_t>& payload) {
  CheckpointReader reader(payload);
  JobMessage out;
  out.round = reader.ReadI32();
  out.client = reader.ReadI32();
  out.context = ReadBlob(&reader);
  out.batcher_base = ReadBlob(&reader);
  out.download = ReadFlMessage(&reader);
  RFED_CHECK(reader.AtEnd()) << "trailing bytes in JOB";
  return out;
}

std::vector<uint8_t> ResultMessage::Encode() const {
  std::vector<uint8_t> out;
  CheckpointWriter writer(&out);
  writer.WriteI32(round);
  writer.WriteI32(client);
  writer.WriteDouble(loss);
  WriteFlMessage(&writer, upload);
  return out;
}

ResultMessage ResultMessage::Decode(const std::vector<uint8_t>& payload) {
  CheckpointReader reader(payload);
  ResultMessage out;
  out.round = reader.ReadI32();
  out.client = reader.ReadI32();
  out.loss = reader.ReadDouble();
  out.upload = ReadFlMessage(&reader);
  RFED_CHECK(reader.AtEnd()) << "trailing bytes in RESULT";
  return out;
}

std::vector<uint8_t> HelloRejoinMessage::Encode() const {
  std::vector<uint8_t> out;
  CheckpointWriter writer(&out);
  writer.WriteI32(worker_id);
  writer.WriteI32(num_workers);
  writer.WriteU64(fingerprint);
  writer.WriteI32(last_round);
  return out;
}

HelloRejoinMessage HelloRejoinMessage::Decode(
    const std::vector<uint8_t>& payload) {
  CheckpointReader reader(payload);
  HelloRejoinMessage out;
  out.worker_id = reader.ReadI32();
  out.num_workers = reader.ReadI32();
  out.fingerprint = reader.ReadU64();
  out.last_round = reader.ReadI32();
  RFED_CHECK(reader.AtEnd()) << "trailing bytes in HELLO_REJOIN";
  return out;
}

std::vector<uint8_t> PingMessage::Encode() const {
  std::vector<uint8_t> out;
  CheckpointWriter writer(&out);
  writer.WriteU32(seq);
  return out;
}

PingMessage PingMessage::Decode(const std::vector<uint8_t>& payload) {
  CheckpointReader reader(payload);
  PingMessage out;
  out.seq = reader.ReadU32();
  RFED_CHECK(reader.AtEnd()) << "trailing bytes in PING/PONG";
  return out;
}

}  // namespace serve
}  // namespace rfed
