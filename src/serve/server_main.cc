// rfed_server — the deployment entry point of the serve layer
// (docs/DEPLOYMENT.md). Listens for rfed_worker connections, then runs
// the full federated round loop — selection, broadcast, aggregation,
// evaluation, checkpointing — for any of the repo's algorithms, shipping
// each client's local training to its worker over TCP. The trajectory is
// byte-identical to the in-process simulator run with the same scenario
// flags; the differential tests enforce it.
//
//   ./build/src/rfed_server --listen 127.0.0.1:7710 --workers 2 \
//       --method Scaffold --clients 4 --rounds 5 --csv_out run.csv

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "fl/checkpoint.h"
#include "fl/trainer.h"
#include "net/socket.h"
#include "serve/remote_executor.h"
#include "serve/scenario.h"
#include "util/flags.h"

namespace {

using namespace rfed;

constexpr const char* kUsage = R"(usage: rfed_server [--flag value | --flag=value ...]

Runs the federated server: accepts --workers rfed_worker connections on
--listen, then drives the round loop with local training delegated to
the workers. Byte-identical to the in-process simulator under the same
scenario flags.

Deployment:
  --listen host:port to bind (127.0.0.1:7710); port 0 = kernel-assigned
  --workers number of rfed_worker processes to wait for (1)
  --pipeline overlap the broadcast of queued jobs with the upload tail
      of earlier ones (false; trajectory is unchanged either way)
  --port_file PATH write the bound port as text (for harnesses using
      --listen with port 0)
  --model_out PATH write the final global model tensor
  --help print this message and exit

SIGTERM/SIGINT: finish the round in flight, write a final checkpoint to
--checkpoint_path (if set), notify workers, and exit cleanly; resuming
via --resume_from reproduces the uninterrupted run byte for byte.

)";

std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

constexpr const char* kServeFlags[] = {"listen",    "workers",   "pipeline",
                                       "port_file", "model_out", "help"};

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  FlagParser flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::fputs(kUsage, stdout);
    std::fputs(serve::ScenarioUsage(), stdout);
    return 0;
  }
  for (const std::string& key : flags.Keys()) {
    bool known = false;
    for (const char* k : kServeFlags) known = known || key == k;
    for (const std::string& k : serve::ScenarioFlagNames()) {
      known = known || key == k;
    }
    if (!known) {
      std::fprintf(stderr, "unknown flag --%s (see --help)\n", key.c_str());
      return 1;
    }
  }

  const HostPort listen = flags.GetHostPort("listen", "127.0.0.1:7710");
  const int num_workers = flags.GetIntInRange("workers", 1, 1, 1024);
  const bool pipeline = flags.GetBool("pipeline", false);
  const std::string port_file = flags.GetString("port_file", "");
  const std::string model_out = flags.GetString("model_out", "");

  serve::Scenario scenario = serve::BuildScenario(flags);

  // The state blob every worker restores at HELLO_ACK: the checkpoint's
  // algorithm state when resuming, else the freshly constructed state.
  RunCheckpoint resume;
  const bool resuming = !scenario.resume_from.empty();
  std::vector<uint8_t> state_blob;
  if (resuming) {
    resume = RunCheckpoint::Load(scenario.resume_from);
    state_blob = resume.algorithm_state;
    std::printf("resuming from %s at round %d\n",
                scenario.resume_from.c_str(), resume.next_round);
  } else {
    scenario.algorithm->SaveRunState(&state_blob);
  }

  net::TcpListener listener(listen.host, listen.port);
  std::printf("rfed_server listening on %s:%d (%s, %d workers, %d clients, "
              "%d rounds%s)\n",
              listen.host.c_str(), listener.bound_port(),
              scenario.method.c_str(), num_workers,
              static_cast<int>(scenario.views.size()), scenario.rounds,
              pipeline ? ", pipelined" : "");
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --port_file %s\n",
                   port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%d\n", listener.bound_port());
    std::fclose(f);
  }

  serve::ExecutorOptions exec_options;
  exec_options.pipelined = pipeline;
  exec_options.worker_timeout_ms = scenario.worker_timeout_ms;
  exec_options.max_worker_restarts = scenario.max_worker_restarts;
  serve::RemoteExecutor executor(exec_options);
  executor.AcceptWorkers(&listener, num_workers, scenario.fingerprint,
                         state_blob);
  // Rejoining workers get the algorithm's current state image rather
  // than the stale launch-time blob.
  FederatedAlgorithm* algorithm = scenario.algorithm.get();
  executor.set_state_provider([algorithm] {
    std::vector<uint8_t> blob;
    algorithm->SaveRunState(&blob);
    return blob;
  });
  scenario.algorithm->set_train_executor(&executor);

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);

  TrainerOptions options;
  options.eval_every = scenario.eval_every;
  options.eval_max_examples = 400;
  options.verbose = true;
  options.checkpoint_every = scenario.checkpoint_every;
  options.checkpoint_path = scenario.checkpoint_path;
  options.stop_requested = &g_stop;
  if (options.checkpoint_every > 0 && options.checkpoint_path.empty()) {
    std::fprintf(stderr, "--checkpoint_every needs --checkpoint_path\n");
    return 1;
  }
  FederatedTrainer trainer(scenario.algorithm.get(), scenario.test.get(),
                           options);
  RunHistory history = resuming
                           ? trainer.Run(scenario.rounds, &resume)
                           : trainer.Run(scenario.rounds);
  executor.Shutdown();

  const bool stopped = g_stop.load(std::memory_order_relaxed);
  std::printf("\n%s on %s: final=%.3f best=%.3f total_comm=%lld bytes "
              "wire_overhead=%lld bytes%s\n",
              scenario.method.c_str(), scenario.dataset.c_str(),
              history.FinalAccuracy(), history.BestAccuracy(),
              static_cast<long long>(
                  scenario.algorithm->comm().total_bytes()),
              static_cast<long long>(
                  scenario.algorithm->comm().wire_overhead_bytes()),
              stopped ? " (stopped early by signal)" : "");
  const serve::ServeStats& st = executor.stats();
  std::printf("transport: workers=%d jobs=%lld results=%lld sent=%lld bytes "
              "received=%lld bytes restarts=%lld reassigned=%lld "
              "heartbeats=%lld\n",
              executor.num_workers(), static_cast<long long>(st.jobs_sent),
              static_cast<long long>(st.results_received),
              static_cast<long long>(st.bytes_sent),
              static_cast<long long>(st.bytes_received),
              static_cast<long long>(st.worker_restarts),
              static_cast<long long>(st.jobs_reassigned),
              static_cast<long long>(st.heartbeats_sent));
  if (!scenario.csv_out.empty()) {
    SaveHistoryCsv(history, scenario.csv_out);
    std::printf("per-round history written to %s\n", scenario.csv_out.c_str());
  }
  if (!model_out.empty()) {
    SaveTensorToFile(scenario.algorithm->global_state(), model_out);
    std::printf("final model written to %s\n", model_out.c_str());
  }
  return 0;
}
