#ifndef RFED_SERVE_SCENARIO_H_
#define RFED_SERVE_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fl/algorithm.h"
#include "util/flags.h"

namespace rfed {
namespace serve {

/// A fully constructed experiment: data, partition, model factory and
/// algorithm, built from command-line flags with exactly the flag
/// vocabulary, defaults, and construction order of experiment_cli — the
/// data/partition RNG consumes draws in the identical sequence, so the
/// same flags produce bit-identical scenarios in the server, in every
/// worker, and in the in-process oracle the differential tests replay.
struct Scenario {
  std::string dataset;
  std::string method;
  FlConfig fl;
  std::unique_ptr<Dataset> train;
  std::unique_ptr<Dataset> test;
  std::vector<ClientView> views;
  ModelFactory factory;
  std::unique_ptr<FederatedAlgorithm> algorithm;

  int rounds = 0;
  int eval_every = 1;
  int checkpoint_every = 0;
  std::string checkpoint_path;
  std::string resume_from;
  std::string csv_out;

  /// Failure-tolerance knobs of the serve layer (ExecutorOptions in
  /// remote_executor.h has the semantics). Canonicalized here so server
  /// and tests share parsing, but fingerprint-exempt: like the worker
  /// count, they shape which process executes a job, never the job's
  /// result.
  int worker_timeout_ms = 0;
  int max_worker_restarts = 0;

  /// FNV-1a over the canonical "key=value" rendering of every flag that
  /// shapes the data, model, or trajectory. Workers send it in HELLO;
  /// the server refuses a handshake whose fingerprint differs from its
  /// own — two processes disagreeing on any such flag would diverge
  /// silently mid-run otherwise.
  uint64_t fingerprint = 0;
};

/// Builds the scenario from parsed flags. Aborts (RFED_CHECK) on an
/// unknown dataset/method/mode value.
Scenario BuildScenario(const FlagParser& flags);

/// The scenario flag names accepted by BuildScenario, for kKnownFlags
/// unions in the serve binaries.
const std::vector<std::string>& ScenarioFlagNames();

/// Help text describing the scenario flags (appended to each serve
/// binary's usage; docs_check greps these --flag tokens).
const char* ScenarioUsage();

}  // namespace serve
}  // namespace rfed

#endif  // RFED_SERVE_SCENARIO_H_
