// rfed_worker — hosts a shard of the client population for rfed_server
// (docs/DEPLOYMENT.md). Connects (with deterministic backoff, so it can
// be launched before the server), builds the identical scenario from the
// same flags, handshakes, restores the server's run state, and serves
// local-training jobs until the server shuts it down.
//
//   ./build/src/rfed_worker --connect 127.0.0.1:7710 --worker_id 0 \
//       --workers 2 --method Scaffold --clients 4 --rounds 5

#include <csignal>
#include <cstdio>
#include <string>

#include "net/socket.h"
#include "serve/scenario.h"
#include "serve/worker_loop.h"
#include "util/backoff.h"
#include "util/flags.h"

namespace {

using namespace rfed;

constexpr const char* kUsage = R"(usage: rfed_worker [--flag value | --flag=value ...]

Hosts the clients with id modulo --workers == --worker_id and runs their
local training on behalf of an rfed_server. Must be launched with the
same scenario flags as the server (the handshake verifies a fingerprint
over them).

Deployment:
  --connect host:port of the rfed_server (127.0.0.1:7710)
  --worker_id this worker's id in [0, --workers) (0)
  --workers total number of workers in the deployment (1)
  --connect_attempts connection retries with exponential backoff,
      50ms doubling to a 1s cap (120)
  --rejoin_attempts reconnect + HELLO_REJOIN handshakes attempted after
      the server connection is lost mid-run; the server must budget for
      them via --max_worker_restarts (0)
  --help print this message and exit

)";

constexpr const char* kServeFlags[] = {"connect", "worker_id", "workers",
                                       "connect_attempts", "rejoin_attempts",
                                       "help"};

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  FlagParser flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::fputs(kUsage, stdout);
    std::fputs(serve::ScenarioUsage(), stdout);
    return 0;
  }
  for (const std::string& key : flags.Keys()) {
    bool known = false;
    for (const char* k : kServeFlags) known = known || key == k;
    for (const std::string& k : serve::ScenarioFlagNames()) {
      known = known || key == k;
    }
    if (!known) {
      std::fprintf(stderr, "unknown flag --%s (see --help)\n", key.c_str());
      return 1;
    }
  }

  const HostPort connect = flags.GetHostPort("connect", "127.0.0.1:7710");
  const int num_workers = flags.GetIntInRange("workers", 1, 1, 1024);
  const int worker_id =
      flags.GetIntInRange("worker_id", 0, 0, num_workers - 1);
  const int connect_attempts =
      flags.GetIntInRange("connect_attempts", 120, 1, 100000);
  const int rejoin_attempts =
      flags.GetIntInRange("rejoin_attempts", 0, 0, 100000);

  serve::Scenario scenario = serve::BuildScenario(flags);

  BackoffPolicy backoff;
  backoff.initial_ms = 50.0;
  backoff.multiplier = 2.0;
  backoff.max_ms = 1000.0;
  net::TcpConnection conn = net::TcpConnection::ConnectWithRetryOrDie(
      connect.host, connect.port, connect_attempts, backoff);
  std::printf("rfed_worker %d/%d connected to %s:%d (%s, %d clients)\n",
              worker_id, num_workers, connect.host.c_str(), connect.port,
              scenario.method.c_str(),
              static_cast<int>(scenario.views.size()));
  std::fflush(stdout);

  serve::WorkerLoopResult result = serve::RunWorkerLoop(
      scenario.algorithm.get(), &conn, worker_id, num_workers,
      scenario.fingerprint);
  // A lost connection mid-run may mean the server died — or that it
  // declared this worker dead (a stall, a severed link) and moved on.
  // With a rejoin budget, reconnect and re-handshake with HELLO_REJOIN;
  // the server replies with a fresh state image and resumes routing
  // jobs here.
  for (int attempt = 1;
       !result.clean_shutdown && attempt <= rejoin_attempts; ++attempt) {
    conn.Close();
    std::printf("rfed_worker %d: connection lost, rejoin attempt %d/%d\n",
                worker_id, attempt, rejoin_attempts);
    std::fflush(stdout);
    conn = net::TcpConnection::ConnectWithRetry(connect.host, connect.port,
                                                connect_attempts, backoff);
    if (!conn.valid()) break;
    result = serve::RunWorkerLoop(scenario.algorithm.get(), &conn, worker_id,
                                  num_workers, scenario.fingerprint,
                                  /*rejoin_round=*/result.last_round);
  }
  std::printf("rfed_worker %d: %s\n", worker_id,
              result.clean_shutdown ? "shutdown complete"
                                    : "server connection closed");
  return result.clean_shutdown ? 0 : 2;
}
