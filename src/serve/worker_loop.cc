#include "serve/worker_loop.h"

#include <utility>

#include "net/frame.h"
#include "serve/protocol.h"
#include "util/check.h"

namespace rfed {
namespace serve {

WorkerLoopResult RunWorkerLoop(FederatedAlgorithm* algorithm,
                               net::TcpConnection* conn, int worker_id,
                               int num_workers, uint64_t fingerprint,
                               int rejoin_round) {
  RFED_CHECK(algorithm != nullptr);
  RFED_CHECK(conn->valid());
  WorkerLoopResult out;
  out.last_round = rejoin_round;
  if (rejoin_round >= 0) {
    HelloRejoinMessage hello;
    hello.worker_id = worker_id;
    hello.num_workers = num_workers;
    hello.fingerprint = fingerprint;
    hello.last_round = rejoin_round;
    if (!net::SendFrame(conn, net::FrameType::kHelloRejoin, hello.Encode())) {
      return out;
    }
  } else {
    HelloMessage hello;
    hello.worker_id = worker_id;
    hello.num_workers = num_workers;
    hello.fingerprint = fingerprint;
    if (!net::SendFrame(conn, net::FrameType::kHello, hello.Encode())) {
      return out;
    }
  }
  net::FrameAssembler assembler;
  net::Frame frame;
  if (!net::RecvFrame(conn, &assembler, &frame)) return out;
  RFED_CHECK(frame.type == net::FrameType::kHelloAck)
      << "expected HELLO_ACK, got frame type "
      << static_cast<uint32_t>(frame.type);
  const HelloAckMessage ack = HelloAckMessage::Decode(frame.payload);
  // Adopt the server's run state: every RNG stream position and batcher
  // cursor as of the image. Each JOB then carries its own batcher base,
  // so the replica need not (and after a rejoin, cannot) stay in
  // lockstep with the server's Skip() mirror between jobs.
  algorithm->LoadRunState(ack.state);
  while (true) {
    if (!net::RecvFrame(conn, &assembler, &frame)) {
      // EOF without SHUTDOWN: the server died, or declared this worker
      // dead and severed the link. The caller decides whether to
      // reconnect.
      return out;
    }
    if (frame.type == net::FrameType::kShutdown) {
      out.clean_shutdown = true;
      return out;
    }
    if (frame.type == net::FrameType::kPing) {
      // Echo the sequence number; the server measures the round trip.
      if (!net::SendFrame(conn, net::FrameType::kPong, frame.payload)) {
        return out;
      }
      continue;
    }
    RFED_CHECK(frame.type == net::FrameType::kJob)
        << "expected JOB, got frame type "
        << static_cast<uint32_t>(frame.type);
    JobMessage job = JobMessage::Decode(frame.payload);
    RFED_CHECK_EQ(job.download.payload.size(), 1u);
    algorithm->InstallBatcherBase(job.client, job.batcher_base);
    algorithm->InstallGlobalState(std::move(job.download.payload[0]));
    algorithm->ApplyTrainContext(job.round, job.client, job.context);
    auto [state, loss] =
        algorithm->ExecuteLocalTraining(job.round, job.client);
    ResultMessage result;
    result.round = job.round;
    result.client = job.client;
    result.loss = loss;
    result.upload.kind = FlMessage::Kind::kModelUpload;
    result.upload.round = job.round;
    result.upload.sender = job.client;
    result.upload.payload.push_back(std::move(state));
    if (!net::SendFrame(conn, net::FrameType::kResult, result.Encode())) {
      return out;
    }
    out.last_round = job.round;
  }
}

}  // namespace serve
}  // namespace rfed
