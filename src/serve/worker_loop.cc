#include "serve/worker_loop.h"

#include <utility>

#include "net/frame.h"
#include "serve/protocol.h"
#include "util/check.h"

namespace rfed {
namespace serve {

bool RunWorkerLoop(FederatedAlgorithm* algorithm, net::TcpConnection* conn,
                   int worker_id, int num_workers, uint64_t fingerprint) {
  RFED_CHECK(algorithm != nullptr);
  RFED_CHECK(conn->valid());
  HelloMessage hello;
  hello.worker_id = worker_id;
  hello.num_workers = num_workers;
  hello.fingerprint = fingerprint;
  if (!net::SendFrame(conn, net::FrameType::kHello, hello.Encode())) {
    return false;
  }
  net::FrameAssembler assembler;
  net::Frame frame;
  if (!net::RecvFrame(conn, &assembler, &frame)) return false;
  RFED_CHECK(frame.type == net::FrameType::kHelloAck)
      << "expected HELLO_ACK, got frame type "
      << static_cast<uint32_t>(frame.type);
  const HelloAckMessage ack = HelloAckMessage::Decode(frame.payload);
  // Adopt the server's exact run state: every RNG stream position and
  // batcher cursor, whether the server is fresh or resuming a
  // checkpoint. From here this replica's streams for the clients it
  // hosts advance in lockstep with the server's Skip() replicas.
  algorithm->LoadRunState(ack.state);
  while (true) {
    if (!net::RecvFrame(conn, &assembler, &frame)) {
      // EOF without SHUTDOWN: the server died (or was killed mid-round).
      // Not an error for the worker — it simply has no more work.
      return false;
    }
    if (frame.type == net::FrameType::kShutdown) return true;
    RFED_CHECK(frame.type == net::FrameType::kJob)
        << "expected JOB, got frame type "
        << static_cast<uint32_t>(frame.type);
    JobMessage job = JobMessage::Decode(frame.payload);
    RFED_CHECK_EQ(
        static_cast<size_t>(job.client) % static_cast<size_t>(num_workers),
        static_cast<size_t>(worker_id))
        << "client " << job.client << " routed to the wrong worker";
    RFED_CHECK_EQ(job.download.payload.size(), 1u);
    algorithm->InstallGlobalState(std::move(job.download.payload[0]));
    algorithm->ApplyTrainContext(job.round, job.client, job.context);
    auto [state, loss] =
        algorithm->ExecuteLocalTraining(job.round, job.client);
    ResultMessage result;
    result.round = job.round;
    result.client = job.client;
    result.loss = loss;
    result.upload.kind = FlMessage::Kind::kModelUpload;
    result.upload.round = job.round;
    result.upload.sender = job.client;
    result.upload.payload.push_back(std::move(state));
    if (!net::SendFrame(conn, net::FrameType::kResult, result.Encode())) {
      return false;
    }
  }
}

}  // namespace serve
}  // namespace rfed
