#ifndef RFED_SERVE_REMOTE_EXECUTOR_H_
#define RFED_SERVE_REMOTE_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fl/algorithm.h"
#include "net/frame.h"
#include "net/socket.h"

namespace rfed {
namespace serve {

/// Real-transport byte counters, kept strictly apart from the simulated
/// CommStats ledger / metrics registry: the sim's accounting is part of
/// the byte-identical trajectory contract (CSV columns included), while
/// these numbers depend on how many workers the deployment happens to
/// use.
struct ServeStats {
  int64_t jobs_sent = 0;
  int64_t results_received = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
};

/// TrainExecutor shipping each local-training job to an rfed_worker
/// process over TCP. Clients are statically assigned (client id modulo
/// the worker count), so a client's jobs always land on the same worker
/// — its batcher-stream replica there advances in lockstep with the
/// server's Skip() replica. Each worker connection gets a dedicated
/// sender thread draining an outbox, which is what makes pipelining
/// real: a whole cohort's jobs are queued at once and the broadcast of
/// later jobs overlaps the upload tail of earlier ones, while Collect
/// blocks on the results in cohort order on the caller's thread.
class RemoteExecutor : public TrainExecutor {
 public:
  explicit RemoteExecutor(bool pipelined) : pipelined_(pipelined) {}
  ~RemoteExecutor() override;

  /// Accepts `num_workers` connections, validates each HELLO (worker id
  /// in range and unclaimed, worker count and scenario fingerprint equal
  /// to ours — a mismatched worker would corrupt the run silently), and
  /// completes each handshake with HELLO_ACK carrying `state_blob` (the
  /// algorithm's SaveRunState image every replica restores). Aborts on
  /// any handshake violation.
  void AcceptWorkers(net::TcpListener* listener, int num_workers,
                     uint64_t fingerprint,
                     const std::vector<uint8_t>& state_blob);

  void Submit(int round, int client, const Tensor& init_state,
              const std::vector<uint8_t>& context) override;
  std::pair<Tensor, double> Collect(int round, int client) override;
  bool pipelined() const override { return pipelined_; }

  /// Sends SHUTDOWN to every worker and joins the sender threads. Called
  /// automatically by the destructor; idempotent.
  void Shutdown();

  const ServeStats& stats() const { return stats_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  struct Worker {
    net::TcpConnection conn;
    net::FrameAssembler assembler;  ///< receive side (Collect, main thread)
    std::thread sender;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<uint8_t>> outbox;  ///< encoded JOB payloads
    bool closing = false;
  };

  void SenderLoop(Worker* worker);

  bool pipelined_ = false;
  std::vector<std::unique_ptr<Worker>> workers_;
  ServeStats stats_;
  bool shut_down_ = false;
};

}  // namespace serve
}  // namespace rfed

#endif  // RFED_SERVE_REMOTE_EXECUTOR_H_
