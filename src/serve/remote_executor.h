#ifndef RFED_SERVE_REMOTE_EXECUTOR_H_
#define RFED_SERVE_REMOTE_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "fl/algorithm.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace rfed {
namespace serve {

/// Real-transport byte counters, kept strictly apart from the simulated
/// CommStats ledger / metrics registry: the sim's accounting is part of
/// the byte-identical trajectory contract (CSV columns included), while
/// these numbers depend on how many workers the deployment happens to
/// use — and, since PR 10, on which of them died along the way.
struct ServeStats {
  int64_t jobs_sent = 0;
  int64_t results_received = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t jobs_reassigned = 0;   ///< orphaned JOBs re-dispatched to survivors
  int64_t worker_restarts = 0;   ///< mid-run HELLO/HELLO_REJOIN handshakes
  int64_t heartbeats_sent = 0;   ///< PING probes on idle connections
};

/// Failure-tolerance knobs of the executor (docs/DEPLOYMENT.md,
/// "Failure model"). Both are deployment-local: they are canonicalized
/// through serve::BuildScenario but fingerprint-exempt, like the worker
/// count — they shape who executes a job, never what the job computes.
struct ExecutorOptions {
  bool pipelined = false;
  /// Failure-detector deadline in milliseconds; 0 disables the detector
  /// (only an EOF/reset then marks a worker dead). A worker holding
  /// outstanding jobs with no activity for this long is declared dead
  /// and its jobs are stolen; an idle worker is PINGed at half this and
  /// declared dead when the PONG is a full deadline late.
  int worker_timeout_ms = 0;
  /// How many mid-run re-handshakes (restarted or reconnecting workers)
  /// the run accepts before a rejoin attempt aborts it. Also bounds the
  /// wait for a rejoin when every worker is dead.
  int max_worker_restarts = 0;
};

/// TrainExecutor shipping each local-training job to an rfed_worker
/// process over TCP. Jobs are self-contained (init state + context +
/// batcher base in the JOB body), so client->worker placement is a
/// preference, not a correctness constraint: Submit routes client k to
/// worker k mod W while it lives and to the least-loaded survivor when
/// it does not. Each worker connection gets a dedicated sender thread
/// draining an outbox of pre-encoded frames (JOB, PING, SHUTDOWN all
/// ride it, keeping the fd single-writer), which is what makes
/// pipelining real: a whole cohort's jobs are queued at once and the
/// broadcast of later jobs overlaps the upload tail of earlier ones.
/// Collect runs an event loop — poll() over every live worker plus the
/// accept socket — so results, failures, heartbeats, and mid-run
/// rejoins are all observed from the caller's thread, whatever order
/// they land in.
class RemoteExecutor : public TrainExecutor {
 public:
  explicit RemoteExecutor(const ExecutorOptions& options);
  /// Convenience for the fault-free harnesses: pipelined flag only,
  /// detector off, no restart budget.
  explicit RemoteExecutor(bool pipelined)
      : RemoteExecutor(ExecutorOptions{pipelined, 0, 0}) {}
  ~RemoteExecutor() override;

  /// Source of the HELLO_ACK state image for mid-run rejoins (typically
  /// the algorithm's current SaveRunState). Without one, rejoiners get
  /// the original AcceptWorkers image — sound either way, because every
  /// JOB carries its own init state and batcher base.
  void set_state_provider(std::function<std::vector<uint8_t>()> provider) {
    state_provider_ = std::move(provider);
  }

  /// Accepts `num_workers` connections, validates each HELLO (worker id
  /// in range and unclaimed, worker count and scenario fingerprint equal
  /// to ours — a mismatched worker would corrupt the run silently), and
  /// completes each handshake with HELLO_ACK carrying `state_blob` (the
  /// algorithm's SaveRunState image every replica restores). Aborts on
  /// any handshake violation. The listener is retained for mid-run
  /// rejoin handshakes and must outlive the executor's rounds.
  void AcceptWorkers(net::TcpListener* listener, int num_workers,
                     uint64_t fingerprint,
                     const std::vector<uint8_t>& state_blob);

  void Submit(int round, int client, const Tensor& init_state,
              const std::vector<uint8_t>& context,
              const std::vector<uint8_t>& batcher_base) override;
  std::pair<Tensor, double> Collect(int round, int client) override;
  bool pipelined() const override { return options_.pipelined; }

  /// Sends SHUTDOWN to every live worker and joins the sender threads.
  /// A sender blocked mid-send on a dead or stalled peer is interrupted
  /// (close-interrupts-send) after a bounded grace, so Shutdown always
  /// returns. Called automatically by the destructor; idempotent.
  void Shutdown();

  const ServeStats& stats() const { return stats_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  using JobKey = std::pair<int, int>;  ///< (round, client)

  struct Worker {
    net::TcpConnection conn;
    net::FrameAssembler assembler;  ///< receive side (event loop, main thread)
    std::thread sender;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<uint8_t>> outbox;  ///< encoded wire frames
    bool closing = false;      ///< under mu: drain and exit
    bool send_failed = false;  ///< under mu: sender hit a dead peer
    bool sender_done = false;  ///< under mu: sender thread has returned
    // Main-thread-only failure-detector state.
    bool alive = false;
    std::deque<JobKey> assigned;  ///< outstanding jobs, oldest first
    int64_t last_activity_ms = 0;
    int64_t ping_sent_ms = -1;  ///< -1: no PING outstanding
    uint32_t ping_seq = 0;
  };

  void SenderLoop(Worker* worker);
  void Enqueue(Worker* worker, std::vector<uint8_t> wire);
  /// Processes every event currently observable — failed senders,
  /// readable worker connections (RESULT/PONG frames), rejoin
  /// handshakes on the listener, expired deadlines — blocking in poll()
  /// for at most one detector tick. The only place failures are
  /// detected and the only place completed_ grows.
  void PumpEvents();
  void DrainWorker(int worker_id);
  void HandleFrame(int worker_id, const net::Frame& frame);
  /// Marks the worker dead, tears down its sender/connection, and moves
  /// its outstanding jobs to the orphan queue for redistribution.
  void OnWorkerDeath(int worker_id, const char* cause);
  /// Re-dispatches orphaned jobs to the least-loaded live workers.
  void RedistributeOrphans();
  /// Accepts one connection from the retained listener mid-run: a HELLO
  /// or HELLO_REJOIN for a dead slot, validated like the initial
  /// handshake and charged against the restart budget.
  void AcceptRejoin();
  /// Routes to worker `client % W` when alive, else the next live slot;
  /// pumps events (waiting out a total outage) until one exists.
  Worker* PickWorker(int client);
  Worker* LeastLoadedAlive();
  int AliveCount() const;
  /// Aborts the run when every worker is dead and no rejoin can or does
  /// come: immediately once the restart budget is spent, else after a
  /// 10x-deadline grace.
  void CheckTotalOutage();
  void InstallWorker(int worker_id, net::TcpConnection conn,
                     net::FrameAssembler assembler);

  ExecutorOptions options_;
  net::TcpListener* listener_ = nullptr;  ///< not owned
  uint64_t fingerprint_ = 0;
  std::vector<uint8_t> initial_state_;
  std::function<std::vector<uint8_t>()> state_provider_;

  std::vector<std::unique_ptr<Worker>> workers_;
  /// Encoded JOB wire frames by key, kept until the RESULT lands so a
  /// dead worker's jobs can be re-dispatched byte-for-byte.
  std::map<JobKey, std::vector<uint8_t>> pending_wire_;
  /// Results that arrived ahead of their Collect call (reassignment and
  /// pipelining both break per-connection FIFO order).
  std::map<JobKey, std::pair<Tensor, double>> completed_;
  std::deque<JobKey> orphans_;  ///< dead workers' jobs awaiting a new home
  int restarts_used_ = 0;
  int64_t all_dead_since_ms_ = -1;  ///< -1: at least one worker lives

  ServeStats stats_;
  bool shut_down_ = false;
  obs::Counter* m_restarts_;
  obs::Counter* m_reassigned_;
  obs::Counter* m_heartbeats_;
  obs::Histogram* m_rtt_;
};

}  // namespace serve
}  // namespace rfed

#endif  // RFED_SERVE_REMOTE_EXECUTOR_H_
