#include "serve/remote_executor.h"

#include <utility>

#include "serve/protocol.h"
#include "util/check.h"

namespace rfed {
namespace serve {

RemoteExecutor::~RemoteExecutor() { Shutdown(); }

void RemoteExecutor::AcceptWorkers(net::TcpListener* listener,
                                   int num_workers, uint64_t fingerprint,
                                   const std::vector<uint8_t>& state_blob) {
  RFED_CHECK_GE(num_workers, 1);
  RFED_CHECK(workers_.empty()) << "AcceptWorkers called twice";
  workers_.resize(static_cast<size_t>(num_workers));
  const HelloAckMessage ack{pipelined_, state_blob};
  const std::vector<uint8_t> ack_payload = ack.Encode();
  for (int accepted = 0; accepted < num_workers; ++accepted) {
    net::TcpConnection conn = listener->Accept();
    RFED_CHECK(conn.valid()) << "accept failed";
    net::FrameAssembler assembler;
    net::Frame frame;
    RFED_CHECK(net::RecvFrame(&conn, &assembler, &frame))
        << "worker disconnected before HELLO";
    RFED_CHECK(frame.type == net::FrameType::kHello)
        << "expected HELLO, got frame type "
        << static_cast<uint32_t>(frame.type);
    const HelloMessage hello = HelloMessage::Decode(frame.payload);
    RFED_CHECK(hello.worker_id >= 0 && hello.worker_id < num_workers)
        << "worker id " << hello.worker_id << " outside [0, " << num_workers
        << ")";
    RFED_CHECK_EQ(hello.num_workers, num_workers)
        << "worker " << hello.worker_id
        << " was launched for a different worker count";
    RFED_CHECK_EQ(hello.fingerprint, fingerprint)
        << "worker " << hello.worker_id
        << " was launched with a different scenario";
    auto& slot = workers_[static_cast<size_t>(hello.worker_id)];
    RFED_CHECK(slot == nullptr)
        << "worker id " << hello.worker_id << " connected twice";
    slot = std::make_unique<Worker>();
    slot->conn = std::move(conn);
    slot->assembler = std::move(assembler);
    RFED_CHECK(net::SendFrame(&slot->conn, net::FrameType::kHelloAck,
                              ack_payload))
        << "HELLO_ACK send to worker " << hello.worker_id << " failed";
    stats_.bytes_sent += static_cast<int64_t>(
        ack_payload.size() + net::kFrameHeaderBytes + net::kFrameChecksumBytes);
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->sender = std::thread([this, w] { SenderLoop(w); });
  }
}

void RemoteExecutor::SenderLoop(Worker* worker) {
  while (true) {
    std::vector<uint8_t> payload;
    bool is_shutdown = false;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->cv.wait(lock, [worker] {
        return !worker->outbox.empty() || worker->closing;
      });
      if (worker->outbox.empty()) {
        is_shutdown = true;
      } else {
        payload = std::move(worker->outbox.front());
        worker->outbox.pop_front();
      }
    }
    if (is_shutdown) {
      // Best-effort: the worker may already be gone.
      net::SendFrame(&worker->conn, net::FrameType::kShutdown, {});
      return;
    }
    RFED_CHECK(net::SendFrame(&worker->conn, net::FrameType::kJob, payload))
        << "JOB send failed: worker connection lost";
  }
}

void RemoteExecutor::Submit(int round, int client, const Tensor& init_state,
                            const std::vector<uint8_t>& context) {
  RFED_CHECK(!workers_.empty()) << "Submit before AcceptWorkers";
  JobMessage job;
  job.round = round;
  job.client = client;
  job.context = context;
  job.download.kind = FlMessage::Kind::kModelDownload;
  job.download.round = round;
  job.download.sender = -1;
  job.download.payload.push_back(init_state);
  std::vector<uint8_t> payload = job.Encode();
  stats_.jobs_sent += 1;
  stats_.bytes_sent += static_cast<int64_t>(
      payload.size() + net::kFrameHeaderBytes + net::kFrameChecksumBytes);
  Worker* worker =
      workers_[static_cast<size_t>(client) % workers_.size()].get();
  {
    std::lock_guard<std::mutex> lock(worker->mu);
    worker->outbox.push_back(std::move(payload));
  }
  worker->cv.notify_one();
}

std::pair<Tensor, double> RemoteExecutor::Collect(int round, int client) {
  Worker* worker =
      workers_[static_cast<size_t>(client) % workers_.size()].get();
  net::Frame frame;
  RFED_CHECK(net::RecvFrame(&worker->conn, &worker->assembler, &frame))
      << "worker connection lost while waiting for client " << client
      << " round " << round;
  RFED_CHECK(frame.type == net::FrameType::kResult)
      << "expected RESULT, got frame type "
      << static_cast<uint32_t>(frame.type);
  stats_.results_received += 1;
  stats_.bytes_received += static_cast<int64_t>(
      frame.payload.size() + net::kFrameHeaderBytes +
      net::kFrameChecksumBytes);
  ResultMessage result = ResultMessage::Decode(frame.payload);
  // Per-worker FIFO: the round loop collects in submit order, so the
  // next result on this connection must be ours.
  RFED_CHECK_EQ(result.round, round);
  RFED_CHECK_EQ(result.client, client);
  RFED_CHECK(result.upload.kind == FlMessage::Kind::kModelUpload);
  RFED_CHECK_EQ(result.upload.payload.size(), 1u);
  return {std::move(result.upload.payload[0]), result.loss};
}

void RemoteExecutor::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  for (auto& worker : workers_) {
    if (worker == nullptr) continue;
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->closing = true;
    }
    worker->cv.notify_one();
  }
  for (auto& worker : workers_) {
    if (worker != nullptr && worker->sender.joinable()) worker->sender.join();
  }
}

}  // namespace serve
}  // namespace rfed
