#include "serve/remote_executor.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "serve/protocol.h"
#include "util/check.h"

namespace rfed {
namespace serve {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RemoteExecutor::RemoteExecutor(const ExecutorOptions& options)
    : options_(options),
      m_restarts_(
          obs::MetricsRegistry::Get().GetCounter("serve.worker_restarts")),
      m_reassigned_(
          obs::MetricsRegistry::Get().GetCounter("serve.jobs_reassigned")),
      m_heartbeats_(
          obs::MetricsRegistry::Get().GetCounter("serve.heartbeats_sent")),
      m_rtt_(obs::MetricsRegistry::Get().GetHistogram(
          "serve.worker_rtt_ms", {1.0, 5.0, 25.0, 100.0, 500.0})) {}

RemoteExecutor::~RemoteExecutor() { Shutdown(); }

void RemoteExecutor::AcceptWorkers(net::TcpListener* listener,
                                   int num_workers, uint64_t fingerprint,
                                   const std::vector<uint8_t>& state_blob) {
  RFED_CHECK_GE(num_workers, 1);
  RFED_CHECK(workers_.empty()) << "AcceptWorkers called twice";
  listener_ = listener;
  fingerprint_ = fingerprint;
  initial_state_ = state_blob;
  workers_.resize(static_cast<size_t>(num_workers));
  const HelloAckMessage ack{options_.pipelined, state_blob};
  const std::vector<uint8_t> ack_payload = ack.Encode();
  for (int accepted = 0; accepted < num_workers; ++accepted) {
    net::TcpConnection conn = listener->Accept();
    RFED_CHECK(conn.valid()) << "accept failed";
    net::FrameAssembler assembler;
    net::Frame frame;
    RFED_CHECK(net::RecvFrame(&conn, &assembler, &frame))
        << "worker disconnected before HELLO";
    RFED_CHECK(frame.type == net::FrameType::kHello)
        << "expected HELLO, got frame type "
        << static_cast<uint32_t>(frame.type);
    const HelloMessage hello = HelloMessage::Decode(frame.payload);
    RFED_CHECK(hello.worker_id >= 0 && hello.worker_id < num_workers)
        << "worker id " << hello.worker_id << " outside [0, " << num_workers
        << ")";
    RFED_CHECK_EQ(hello.num_workers, num_workers)
        << "worker " << hello.worker_id
        << " was launched for a different worker count";
    RFED_CHECK_EQ(hello.fingerprint, fingerprint)
        << "worker " << hello.worker_id
        << " was launched with a different scenario";
    RFED_CHECK(workers_[static_cast<size_t>(hello.worker_id)] == nullptr)
        << "worker id " << hello.worker_id << " connected twice";
    RFED_CHECK(net::SendFrame(&conn, net::FrameType::kHelloAck, ack_payload))
        << "HELLO_ACK send to worker " << hello.worker_id << " failed";
    stats_.bytes_sent += static_cast<int64_t>(
        ack_payload.size() + net::kFrameHeaderBytes + net::kFrameChecksumBytes);
    InstallWorker(hello.worker_id, std::move(conn), std::move(assembler));
  }
}

void RemoteExecutor::InstallWorker(int worker_id, net::TcpConnection conn,
                                   net::FrameAssembler assembler) {
  auto& slot = workers_[static_cast<size_t>(worker_id)];
  // A replaced slot's previous Worker was fully torn down (sender joined,
  // connection closed, jobs orphaned) by OnWorkerDeath.
  slot = std::make_unique<Worker>();
  slot->conn = std::move(conn);
  slot->assembler = std::move(assembler);
  slot->alive = true;
  slot->last_activity_ms = NowMs();
  Worker* w = slot.get();
  w->sender = std::thread([this, w] { SenderLoop(w); });
}

void RemoteExecutor::SenderLoop(Worker* worker) {
  while (true) {
    std::vector<uint8_t> wire;
    bool is_shutdown = false;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->cv.wait(lock, [worker] {
        return !worker->outbox.empty() || worker->closing;
      });
      if (worker->outbox.empty()) {
        is_shutdown = true;
      } else {
        wire = std::move(worker->outbox.front());
        worker->outbox.pop_front();
      }
    }
    if (is_shutdown) {
      // Best-effort: the worker may already be gone.
      net::SendFrame(&worker->conn, net::FrameType::kShutdown, {});
      break;
    }
    if (!worker->conn.SendAll(wire.data(), wire.size())) {
      // Dead peer; the event loop observes send_failed and declares the
      // worker dead from the main thread (never from here — Worker
      // lifecycle is main-thread state).
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->send_failed = true;
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(worker->mu);
    worker->sender_done = true;
  }
  worker->cv.notify_all();
}

void RemoteExecutor::Enqueue(Worker* worker, std::vector<uint8_t> wire) {
  stats_.bytes_sent += static_cast<int64_t>(wire.size());
  {
    std::lock_guard<std::mutex> lock(worker->mu);
    worker->outbox.push_back(std::move(wire));
  }
  worker->cv.notify_one();
}

void RemoteExecutor::Submit(int round, int client, const Tensor& init_state,
                            const std::vector<uint8_t>& context,
                            const std::vector<uint8_t>& batcher_base) {
  RFED_CHECK(!workers_.empty()) << "Submit before AcceptWorkers";
  JobMessage job;
  job.round = round;
  job.client = client;
  job.context = context;
  job.batcher_base = batcher_base;
  job.download.kind = FlMessage::Kind::kModelDownload;
  job.download.round = round;
  job.download.sender = -1;
  job.download.payload.push_back(init_state);
  std::vector<uint8_t> wire = net::EncodeFrame(net::FrameType::kJob,
                                               job.Encode());
  stats_.jobs_sent += 1;
  const JobKey key{round, client};
  pending_wire_[key] = wire;
  Worker* worker = PickWorker(client);
  worker->assigned.push_back(key);
  // The busy deadline measures from dispatch, not from the worker's last
  // sign of life — the server may have spent arbitrarily long between
  // rounds in aggregation/eval with every worker silent and healthy.
  worker->last_activity_ms = NowMs();
  Enqueue(worker, std::move(wire));
}

std::pair<Tensor, double> RemoteExecutor::Collect(int round, int client) {
  RFED_CHECK(!workers_.empty()) << "Collect before AcceptWorkers";
  const JobKey key{round, client};
  auto it = completed_.find(key);
  while (it == completed_.end()) {
    PumpEvents();
    it = completed_.find(key);
  }
  std::pair<Tensor, double> out = std::move(it->second);
  completed_.erase(it);
  return out;
}

void RemoteExecutor::PumpEvents() {
  // Senders that hit a dead peer cannot tear the worker down themselves;
  // fold their verdicts in here first.
  for (size_t i = 0; i < workers_.size(); ++i) {
    Worker* w = workers_[i].get();
    if (w == nullptr || !w->alive) continue;
    bool failed;
    {
      std::lock_guard<std::mutex> lock(w->mu);
      failed = w->send_failed;
    }
    if (failed) OnWorkerDeath(static_cast<int>(i), "send failed");
  }
  const int64_t now = NowMs();
  if (options_.worker_timeout_ms > 0) {
    const int64_t timeout = options_.worker_timeout_ms;
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker* w = workers_[i].get();
      if (w == nullptr || !w->alive) continue;
      if (!w->assigned.empty()) {
        // Busy worker: a RESULT (or PONG) must land within the deadline.
        if (now - w->last_activity_ms > timeout) {
          OnWorkerDeath(static_cast<int>(i), "recv deadline expired");
        }
      } else if (w->ping_sent_ms >= 0) {
        if (now - w->ping_sent_ms > timeout) {
          OnWorkerDeath(static_cast<int>(i), "heartbeat timed out");
        }
      } else if (now - w->last_activity_ms > timeout / 2) {
        // Idle worker gone quiet: probe it. Busy workers are never
        // pinged — a replica mid-training can't answer, and its RESULT
        // deadline already covers it.
        w->ping_seq += 1;
        w->ping_sent_ms = now;
        stats_.heartbeats_sent += 1;
        m_heartbeats_->Increment();
        PingMessage ping;
        ping.seq = w->ping_seq;
        Enqueue(w, net::EncodeFrame(net::FrameType::kPing, ping.Encode()));
      }
    }
  }
  RedistributeOrphans();
  CheckTotalOutage();

  std::vector<struct pollfd> fds;
  std::vector<int> owners;
  for (size_t i = 0; i < workers_.size(); ++i) {
    Worker* w = workers_[i].get();
    if (w == nullptr || !w->alive) continue;
    fds.push_back({w->conn.fd(), POLLIN, 0});
    owners.push_back(static_cast<int>(i));
  }
  if (listener_ != nullptr) fds.push_back({listener_->fd(), POLLIN, 0});
  const int tick = options_.worker_timeout_ms > 0
                       ? std::max(1, options_.worker_timeout_ms / 4)
                       : 200;
  const int ready = ::poll(fds.data(), fds.size(), tick);
  if (ready <= 0) return;  // timeout or EINTR: the next pump rescans
  for (size_t j = 0; j < owners.size(); ++j) {
    // Any event (POLLIN/POLLHUP/POLLERR) is handled by reading: data
    // drains, EOF and errors surface as RecvSome <= 0.
    if (fds[j].revents != 0) DrainWorker(owners[j]);
  }
  if (listener_ != nullptr && (fds.back().revents & POLLIN) != 0) {
    AcceptRejoin();
  }
}

void RemoteExecutor::DrainWorker(int worker_id) {
  Worker* w = workers_[static_cast<size_t>(worker_id)].get();
  if (w == nullptr || !w->alive) return;
  uint8_t buffer[65536];
  const int64_t got = w->conn.RecvSome(buffer, sizeof(buffer));
  if (got <= 0) {
    OnWorkerDeath(worker_id, got == 0 ? "connection closed" : "recv error");
    return;
  }
  stats_.bytes_received += got;
  w->assembler.Feed(buffer, static_cast<size_t>(got));
  net::Frame frame;
  while (true) {
    const net::FrameAssembler::Status status = w->assembler.Next(&frame);
    if (status == net::FrameAssembler::Status::kNeedMore) break;
    RFED_CHECK(status == net::FrameAssembler::Status::kFrame)
        << "worker " << worker_id << " stream corrupt: "
        << w->assembler.error();
    HandleFrame(worker_id, frame);
  }
}

void RemoteExecutor::HandleFrame(int worker_id, const net::Frame& frame) {
  Worker* w = workers_[static_cast<size_t>(worker_id)].get();
  w->last_activity_ms = NowMs();
  switch (frame.type) {
    case net::FrameType::kResult: {
      ResultMessage result = ResultMessage::Decode(frame.payload);
      RFED_CHECK(result.upload.kind == FlMessage::Kind::kModelUpload);
      RFED_CHECK_EQ(result.upload.payload.size(), 1u);
      const JobKey key{result.round, result.client};
      if (pending_wire_.erase(key) == 0) {
        // Duplicate: the job was reassigned and both replicas answered.
        // Local training is deterministic given the job body, so the
        // copies are byte-identical — dropping the late one is safe.
        return;
      }
      stats_.results_received += 1;
      for (auto& slot : workers_) {
        if (slot == nullptr) continue;
        auto it = std::find(slot->assigned.begin(), slot->assigned.end(), key);
        if (it != slot->assigned.end()) {
          slot->assigned.erase(it);
          break;
        }
      }
      completed_[key] = {std::move(result.upload.payload[0]), result.loss};
      break;
    }
    case net::FrameType::kPong: {
      const PingMessage pong = PingMessage::Decode(frame.payload);
      if (w->ping_sent_ms >= 0 && pong.seq == w->ping_seq) {
        m_rtt_->Observe(static_cast<double>(NowMs() - w->ping_sent_ms));
        w->ping_sent_ms = -1;
      }
      break;
    }
    default:
      RFED_CHECK(false) << "unexpected frame type "
                        << static_cast<uint32_t>(frame.type) << " from worker "
                        << worker_id;
  }
}

void RemoteExecutor::OnWorkerDeath(int worker_id, const char* cause) {
  Worker* w = workers_[static_cast<size_t>(worker_id)].get();
  if (w == nullptr || !w->alive) return;
  w->alive = false;
  {
    std::lock_guard<std::mutex> lock(w->mu);
    w->closing = true;
  }
  w->cv.notify_all();
  // The sender may be blocked mid-SendAll on the dead peer; shutdown(2)
  // makes that call fail without freeing the fd under it.
  w->conn.InterruptBlockingIo();
  if (w->sender.joinable()) w->sender.join();
  w->conn.Close();
  std::fprintf(stderr,
               "rfed_server: worker %d lost (%s), %d outstanding job(s)\n",
               worker_id, cause, static_cast<int>(w->assigned.size()));
  for (const JobKey& key : w->assigned) orphans_.push_back(key);
  w->assigned.clear();
  w->ping_sent_ms = -1;
  if (AliveCount() == 0) all_dead_since_ms_ = NowMs();
  RedistributeOrphans();
}

void RemoteExecutor::RedistributeOrphans() {
  while (!orphans_.empty()) {
    const JobKey key = orphans_.front();
    const auto it = pending_wire_.find(key);
    if (it == pending_wire_.end()) {
      orphans_.pop_front();  // already answered by another replica
      continue;
    }
    Worker* target = LeastLoadedAlive();
    if (target == nullptr) return;  // keep them for the next rejoin
    orphans_.pop_front();
    target->assigned.push_back(key);
    target->last_activity_ms = NowMs();
    stats_.jobs_reassigned += 1;
    m_reassigned_->Increment();
    Enqueue(target, it->second);
  }
}

void RemoteExecutor::AcceptRejoin() {
  net::TcpConnection conn = listener_->Accept();
  if (!conn.valid()) return;
  net::FrameAssembler assembler;
  net::Frame frame;
  // A connection that dies before completing its handshake is noise
  // (port scan, aborted worker start), not a protocol violation.
  if (!net::RecvFrame(&conn, &assembler, &frame)) return;
  int32_t worker_id = 0;
  int32_t num_workers = 0;
  uint64_t fingerprint = 0;
  int32_t last_round = -1;
  if (frame.type == net::FrameType::kHello) {
    const HelloMessage hello = HelloMessage::Decode(frame.payload);
    worker_id = hello.worker_id;
    num_workers = hello.num_workers;
    fingerprint = hello.fingerprint;
  } else if (frame.type == net::FrameType::kHelloRejoin) {
    const HelloRejoinMessage hello = HelloRejoinMessage::Decode(frame.payload);
    worker_id = hello.worker_id;
    num_workers = hello.num_workers;
    fingerprint = hello.fingerprint;
    last_round = hello.last_round;
  } else {
    RFED_CHECK(false) << "expected HELLO or HELLO_REJOIN from rejoining "
                      << "worker, got frame type "
                      << static_cast<uint32_t>(frame.type);
  }
  const int count = static_cast<int>(workers_.size());
  RFED_CHECK(worker_id >= 0 && worker_id < count)
      << "worker id " << worker_id << " outside [0, " << count << ")";
  RFED_CHECK_EQ(num_workers, count)
      << "worker " << worker_id << " was launched for a different worker count";
  RFED_CHECK_EQ(fingerprint, fingerprint_)
      << "worker " << worker_id << " was launched with a different scenario";
  Worker* current = workers_[static_cast<size_t>(worker_id)].get();
  if (current != nullptr && current->alive) {
    // The slot's death may simply not have been observed yet: give its
    // connection one non-blocking read before ruling this a duplicate.
    struct pollfd probe = {current->conn.fd(), POLLIN, 0};
    if (::poll(&probe, 1, 0) > 0 && probe.revents != 0) DrainWorker(worker_id);
    RFED_CHECK(!workers_[static_cast<size_t>(worker_id)]->alive)
        << "worker id " << worker_id << " connected twice";
  }
  RFED_CHECK(restarts_used_ < options_.max_worker_restarts)
      << "worker " << worker_id
      << " rejoin refused: worker restart budget ("
      << options_.max_worker_restarts << ") exhausted";
  const std::vector<uint8_t> state =
      state_provider_ ? state_provider_() : initial_state_;
  const HelloAckMessage ack{options_.pipelined, state};
  const std::vector<uint8_t> ack_payload = ack.Encode();
  // The rejoiner dying between connect and ACK is tolerated like any
  // other mid-handshake loss; the budget is only charged on success.
  if (!net::SendFrame(&conn, net::FrameType::kHelloAck, ack_payload)) return;
  stats_.bytes_sent += static_cast<int64_t>(
      ack_payload.size() + net::kFrameHeaderBytes + net::kFrameChecksumBytes);
  restarts_used_ += 1;
  stats_.worker_restarts += 1;
  m_restarts_->Increment();
  std::fprintf(stderr,
               "rfed_server: worker %d rejoined (last_round=%d, restart "
               "%d/%d)\n",
               worker_id, last_round, restarts_used_,
               options_.max_worker_restarts);
  InstallWorker(worker_id, std::move(conn), std::move(assembler));
  all_dead_since_ms_ = -1;
  RedistributeOrphans();
}

RemoteExecutor::Worker* RemoteExecutor::PickWorker(int client) {
  const int count = static_cast<int>(workers_.size());
  while (true) {
    for (int i = 0; i < count; ++i) {
      Worker* w = workers_[static_cast<size_t>((client + i) % count)].get();
      if (w == nullptr || !w->alive) continue;
      bool failed;
      {
        std::lock_guard<std::mutex> lock(w->mu);
        failed = w->send_failed;
      }
      if (!failed) return w;
    }
    // Every worker is dead: wait (bounded by CheckTotalOutage) for one
    // to rejoin.
    PumpEvents();
  }
}

RemoteExecutor::Worker* RemoteExecutor::LeastLoadedAlive() {
  Worker* best = nullptr;
  for (auto& slot : workers_) {
    Worker* w = slot.get();
    if (w == nullptr || !w->alive) continue;
    {
      std::lock_guard<std::mutex> lock(w->mu);
      if (w->send_failed) continue;
    }
    if (best == nullptr || w->assigned.size() < best->assigned.size()) {
      best = w;
    }
  }
  return best;
}

int RemoteExecutor::AliveCount() const {
  int alive = 0;
  for (const auto& slot : workers_) {
    if (slot != nullptr && slot->alive) ++alive;
  }
  return alive;
}

void RemoteExecutor::CheckTotalOutage() {
  if (AliveCount() > 0) {
    all_dead_since_ms_ = -1;
    return;
  }
  if (pending_wire_.empty() && orphans_.empty()) return;
  RFED_CHECK(restarts_used_ < options_.max_worker_restarts)
      << "all workers lost and the worker restart budget ("
      << options_.max_worker_restarts << ") is exhausted";
  if (all_dead_since_ms_ < 0) all_dead_since_ms_ = NowMs();
  const int64_t grace = options_.worker_timeout_ms > 0
                            ? int64_t{10} * options_.worker_timeout_ms
                            : 30000;
  RFED_CHECK(NowMs() - all_dead_since_ms_ <= grace)
      << "all workers lost and none rejoined within " << grace << " ms";
}

void RemoteExecutor::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  for (auto& worker : workers_) {
    if (worker == nullptr) continue;
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->closing = true;
    }
    worker->cv.notify_all();
  }
  const auto grace = std::chrono::milliseconds(
      options_.worker_timeout_ms > 0 ? options_.worker_timeout_ms : 1000);
  for (auto& worker : workers_) {
    if (worker == nullptr || !worker->sender.joinable()) continue;
    bool done;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      done = worker->cv.wait_for(lock, grace,
                                 [&] { return worker->sender_done; });
    }
    // A sender wedged mid-send on a peer that stopped reading would make
    // join() hang forever; interrupting the socket fails the send and
    // lets the thread run to completion.
    if (!done) worker->conn.InterruptBlockingIo();
    worker->sender.join();
    worker->conn.Close();
  }
}

}  // namespace serve
}  // namespace rfed
