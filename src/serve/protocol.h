#ifndef RFED_SERVE_PROTOCOL_H_
#define RFED_SERVE_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "fl/message.h"

namespace rfed {
namespace serve {

/// Payload bodies of the serve protocol's frames (net/frame.h carries
/// them). Encoding rides the CheckpointWriter/Reader codec — the same
/// bounds-checked fixed-width encoding run checkpoints use — and model
/// tensors travel as embedded FlMessage envelopes, so the bytes a worker
/// receives are exactly the bytes the simulator's ledger charges for the
/// corresponding transfer (plus FlMessage framing, accounted separately
/// as comm.wire_overhead_bytes).

/// Worker -> server, once per connection: who am I, how many peers do I
/// expect, and a fingerprint of the scenario I was launched with. The
/// server aborts the handshake on any mismatch — a worker building a
/// different model would silently corrupt the run.
struct HelloMessage {
  int32_t worker_id = 0;
  int32_t num_workers = 0;
  uint64_t fingerprint = 0;

  std::vector<uint8_t> Encode() const;
  static HelloMessage Decode(const std::vector<uint8_t>& payload);
};

/// Server -> worker, completing the handshake: whether rounds are
/// pipelined and the algorithm state blob (SaveRunState) the worker
/// replica restores before serving jobs — this is how resumed runs and
/// fresh runs alike put every replica at the server's exact RNG/batcher
/// positions.
struct HelloAckMessage {
  bool pipelined = false;
  std::vector<uint8_t> state;

  std::vector<uint8_t> Encode() const;
  static HelloAckMessage Decode(const std::vector<uint8_t>& payload);
};

/// Server -> worker: train `client` for `round`. `context` is the
/// algorithm's EncodeTrainContextFor blob (SCAFFOLD controls, rFedAvg
/// maps); `batcher_base` is the client's batcher-stream state at the
/// job's start (EncodeBatcherBaseFor), making the job self-contained —
/// any worker replica can execute it from a cold cache, which is what
/// permits reassignment after a worker death; `download` is a
/// kModelDownload FlMessage carrying the broadcast init state.
struct JobMessage {
  int32_t round = 0;
  int32_t client = 0;
  std::vector<uint8_t> context;
  std::vector<uint8_t> batcher_base;
  FlMessage download;

  std::vector<uint8_t> Encode() const;
  static JobMessage Decode(const std::vector<uint8_t>& payload);
};

/// Worker -> server: the trained flat state (kModelUpload FlMessage) and
/// the mean local loss for one completed job.
struct ResultMessage {
  int32_t round = 0;
  int32_t client = 0;
  double loss = 0.0;
  FlMessage upload;

  std::vector<uint8_t> Encode() const;
  static ResultMessage Decode(const std::vector<uint8_t>& payload);
};

/// Worker -> server, replacing HELLO when a restarted (or reconnecting)
/// rfed_worker re-handshakes mid-run: the same identity triple plus the
/// last round it completed a RESULT for (-1 if none), so the server can
/// log where the replica left off. The server validates exactly as it
/// does HELLO, charges the restart budget, and replies with a fresh
/// HELLO_ACK image.
struct HelloRejoinMessage {
  int32_t worker_id = 0;
  int32_t num_workers = 0;
  uint64_t fingerprint = 0;
  int32_t last_round = -1;

  std::vector<uint8_t> Encode() const;
  static HelloRejoinMessage Decode(const std::vector<uint8_t>& payload);
};

/// Payload of PING and PONG frames: a sequence number the PONG echoes,
/// so a late echo cannot satisfy a newer probe.
struct PingMessage {
  uint32_t seq = 0;

  std::vector<uint8_t> Encode() const;
  static PingMessage Decode(const std::vector<uint8_t>& payload);
};

}  // namespace serve
}  // namespace rfed

#endif  // RFED_SERVE_PROTOCOL_H_
