#include "serve/scenario.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/rfedavg.h"
#include "data/partition.h"
#include "data/synthetic_images.h"
#include "data/synthetic_text.h"
#include "fl/fedavg.h"
#include "fl/fednova.h"
#include "fl/fedprox.h"
#include "fl/qfedavg.h"
#include "fl/scaffold.h"
#include "util/check.h"
#include "util/hash.h"

namespace rfed {
namespace serve {

namespace {

std::unique_ptr<FederatedAlgorithm> Build(
    const std::string& method, const FlConfig& fl,
    const RegularizerOptions& reg, const Dataset* train,
    const std::vector<ClientView>& views, const ModelFactory& factory) {
  if (method == "FedAvg") {
    return std::make_unique<FedAvg>(fl, train, views, factory);
  }
  if (method == "FedProx") {
    return std::make_unique<FedProx>(fl, 1.0, train, views, factory);
  }
  if (method == "Scaffold") {
    return std::make_unique<Scaffold>(fl, train, views, factory);
  }
  if (method == "q-FedAvg") {
    return std::make_unique<QFedAvg>(fl, 1.0, train, views, factory);
  }
  if (method == "FedNova") {
    return std::make_unique<FedNova>(fl, 4 * fl.local_steps, train, views,
                                     factory);
  }
  if (method == "rFedAvg") {
    return std::make_unique<RFedAvg>(fl, reg, train, views, factory);
  }
  if (method == "rFedAvg+") {
    return std::make_unique<RFedAvgPlus>(fl, reg, train, views, factory);
  }
  RFED_CHECK(false) << "unknown --method " << method;
  return nullptr;
}

constexpr const char* kScenarioUsage =
    R"(Scenario (identical vocabulary and defaults to experiment_cli; every
process of a deployment must pass the same values — the HELLO handshake
verifies a fingerprint over them):
  --dataset mnist|cifar|femnist|sent140 (mnist)
  --method FedAvg|FedProx|Scaffold|q-FedAvg|FedNova|rFedAvg|rFedAvg+ (rFedAvg+)
  --clients N (10)          --similarity 0..1 (0)     --rounds C (15)
  --local_steps E (5)       --batch B (24; 10 text)   --sample_ratio SR (1.0)
  --lr (0.08; 0.01 text)    --lambda (1e-3; 1e-4 text) --dp_sigma (0)
  --compressor none|q8|q4|topk10|topk1|sketch (none)
  --selection uniform|loss (uniform)
  --model cnn|mlp (cnn, image datasets only)
  --train_examples (1500)   --test_examples (400)     --seed (1)
  --eval_every (1)
  --drop/--corrupt/--duplicate/--delay 0..1 (0)
  --mean_delay_ms (50)      --timeout_ms (250, 0=off) --retries (0)
  --sim_mode sync|deadline|async (sync)
  --compute_model constant|lognormal|drift (constant)
  --compute_ms (0)          --compute_sigma (1.0)
  --compute_drift (0.05)    --compute_spread (0)
  --down_bw/--up_bw (0)     --base_latency_ms (0)
  --deadline_ms (0)         --async_buffer (2)
  --adversary none|nan|sign_flip|scale|noise|label_flip (none)
  --adversary_frac (0.2)    --adversary_scale (100)   --adversary_sigma (1)
  --aggregator mean|trimmed_mean|median|norm_clip (mean)
  --trim_fraction (0.2)     --clip_multiplier (3)     --validate (true)
  --checkpoint_every (0)    --checkpoint_path PATH    --resume_from PATH
  --num_threads (1)         --kernel_threads (1)
  --kernel_autotune (false) --kernel_autotune_cache PATH
  --autograd_static (true)  --grad_checkpoint (false)
  --shard_fanout (0)        --stream_chunk (0)
  --csv_out PATH write the per-round history as CSV
  --worker_timeout_ms (0, 0=off) failure-detector deadline: a worker
      silent this long (PING/PONG probes cover idle links) is declared
      dead and its jobs are reassigned; fingerprint-exempt
  --max_worker_restarts (0) mid-run worker rejoins accepted before the
      run aborts; fingerprint-exempt
)";

const char* const kScenarioFlags[] = {
    "dataset", "method", "clients", "similarity", "rounds", "local_steps",
    "batch", "sample_ratio", "lr", "lambda", "dp_sigma", "compressor",
    "selection", "model", "train_examples", "test_examples", "seed",
    "eval_every", "drop", "corrupt", "duplicate", "delay",
    "mean_delay_ms", "timeout_ms", "retries", "sim_mode", "compute_model",
    "compute_ms", "compute_sigma", "compute_drift", "compute_spread",
    "down_bw", "up_bw", "base_latency_ms", "deadline_ms", "async_buffer",
    "adversary", "adversary_frac", "adversary_scale", "adversary_sigma",
    "aggregator", "trim_fraction", "clip_multiplier", "validate",
    "checkpoint_every", "checkpoint_path", "resume_from",
    "num_threads", "kernel_threads", "kernel_autotune",
    "kernel_autotune_cache", "autograd_static", "grad_checkpoint",
    "shard_fanout", "stream_chunk",
    "csv_out", "worker_timeout_ms", "max_worker_restarts"};

}  // namespace

const std::vector<std::string>& ScenarioFlagNames() {
  static const std::vector<std::string>* names = [] {
    auto* v = new std::vector<std::string>();
    for (const char* name : kScenarioFlags) v->push_back(name);
    return v;
  }();
  return *names;
}

const char* ScenarioUsage() { return kScenarioUsage; }

Scenario BuildScenario(const FlagParser& flags) {
  Scenario s;
  s.dataset = flags.GetString("dataset", "mnist");
  s.method = flags.GetString("method", "rFedAvg+");
  const int clients = flags.GetInt("clients", 10);
  const double similarity = flags.GetDouble("similarity", 0.0);
  s.rounds = flags.GetInt("rounds", 15);
  const int train_examples = flags.GetInt("train_examples", 1500);
  const int test_examples = flags.GetInt("test_examples", 400);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const bool is_text = s.dataset == "sent140";

  FlConfig& fl = s.fl;
  fl.local_steps = flags.GetInt("local_steps", 5);
  fl.batch_size = flags.GetInt("batch", is_text ? 10 : 24);
  fl.sample_ratio = flags.GetDouble("sample_ratio", 1.0);
  fl.lr = flags.GetDouble("lr", is_text ? 0.01 : 0.08);
  fl.optimizer = is_text ? OptimizerKind::kRmsProp : OptimizerKind::kSgd;
  fl.seed = seed;
  fl.upload_compressor = flags.GetString("compressor", "none");
  fl.client_selection = flags.GetString("selection", "uniform");
  fl.fault.drop_prob = flags.GetDouble("drop", 0.0);
  fl.fault.corrupt_prob = flags.GetDouble("corrupt", 0.0);
  fl.fault.duplicate_prob = flags.GetDouble("duplicate", 0.0);
  fl.fault.delay_prob = flags.GetDouble("delay", 0.0);
  fl.fault.mean_delay_ms = flags.GetDouble("mean_delay_ms", 50.0);
  fl.fault.round_timeout_ms = flags.GetDouble("timeout_ms", 250.0);
  fl.fault.max_retries = flags.GetInt("retries", 0);
  const std::string sim_mode = flags.GetString("sim_mode", "sync");
  RFED_CHECK(ParseSimMode(sim_mode, &fl.sim.mode))
      << "unknown --sim_mode " << sim_mode;
  const std::string compute_model =
      flags.GetString("compute_model", "constant");
  RFED_CHECK(ParseComputeModelKind(compute_model, &fl.sim.compute.kind))
      << "unknown --compute_model " << compute_model;
  fl.sim.compute.mean_ms_per_step = flags.GetDouble("compute_ms", 0.0);
  fl.sim.compute.sigma = flags.GetDouble("compute_sigma", 1.0);
  fl.sim.compute.drift = flags.GetDouble("compute_drift", 0.05);
  fl.sim.compute.hetero_spread = flags.GetDouble("compute_spread", 0.0);
  fl.sim.network.down_bytes_per_ms = flags.GetDouble("down_bw", 0.0);
  fl.sim.network.up_bytes_per_ms = flags.GetDouble("up_bw", 0.0);
  fl.sim.network.base_latency_ms = flags.GetDouble("base_latency_ms", 0.0);
  fl.sim.deadline_ms = flags.GetDouble("deadline_ms", 0.0);
  fl.sim.async_buffer = flags.GetInt("async_buffer", 2);
  fl.adversary.mode = flags.GetString("adversary", "none");
  fl.adversary.fraction = flags.GetDouble("adversary_frac", 0.2);
  fl.adversary.scale = flags.GetDouble("adversary_scale", 100.0);
  fl.adversary.noise_sigma = flags.GetDouble("adversary_sigma", 1.0);
  RFED_CHECK(KnownAdversaryMode(fl.adversary.mode))
      << "unknown --adversary " << fl.adversary.mode;
  fl.robust.aggregator = flags.GetString("aggregator", "mean");
  fl.robust.trim_fraction = flags.GetDouble("trim_fraction", 0.2);
  fl.robust.clip_multiplier = flags.GetDouble("clip_multiplier", 3.0);
  fl.robust.validate = flags.GetBool("validate", true);
  RFED_CHECK(KnownAggregator(fl.robust.aggregator))
      << "unknown --aggregator " << fl.robust.aggregator;
  fl.num_threads = flags.GetInt("num_threads", 1);
  fl.kernel_threads = flags.GetInt("kernel_threads", 1);
  fl.kernel_autotune = flags.GetBool("kernel_autotune", false);
  fl.kernel_autotune_cache = flags.GetString("kernel_autotune_cache", "");
  fl.autograd.static_graph = flags.GetBool("autograd_static", true);
  fl.autograd.checkpoint = flags.GetBool("grad_checkpoint", false);
  fl.shard_fanout = flags.GetInt("shard_fanout", 0);
  fl.stream_chunk = flags.GetInt("stream_chunk", 0);

  RegularizerOptions reg;
  reg.lambda = flags.GetDouble("lambda", is_text ? 1e-4 : 1e-3);
  reg.dp.sigma = flags.GetDouble("dp_sigma", 0.0);
  reg.dp.batch_size = fl.batch_size;

  s.eval_every = flags.GetInt("eval_every", 1);
  s.checkpoint_every = flags.GetInt("checkpoint_every", 0);
  s.checkpoint_path = flags.GetString("checkpoint_path", "");
  s.resume_from = flags.GetString("resume_from", "");
  s.csv_out = flags.GetString("csv_out", "");
  // Fingerprint-exempt (like the worker count): failure handling moves
  // jobs between processes but never changes what a job computes.
  s.worker_timeout_ms = flags.GetIntInRange("worker_timeout_ms", 0, 0,
                                            3600 * 1000);
  s.max_worker_restarts = flags.GetIntInRange("max_worker_restarts", 0, 0,
                                              1000000);

  // Data + partition + model — verbatim the experiment_cli construction,
  // consuming Rng(seed) draws in the identical order.
  Rng rng(seed);
  if (is_text) {
    TextProfile profile = Sent140LikeProfile();
    profile.num_users = std::max(4 * clients, 40);
    auto data = GenerateTextData(profile, train_examples, test_examples, &rng);
    auto split = NaturalPartition(data.train_users, profile.num_users,
                                  clients, &rng);
    for (auto& idx : split.client_indices) s.views.push_back({idx, {}});
    LstmConfig mc;
    mc.vocab_size = profile.vocab_size;
    mc.embed_dim = 8;
    mc.hidden_dim = 16;
    mc.feature_dim = 16;
    s.factory = MakeLstmFactory(mc);
    s.train = std::make_unique<Dataset>(std::move(data.train));
    s.test = std::make_unique<Dataset>(std::move(data.test));
  } else {
    ImageProfile profile = s.dataset == "cifar"    ? CifarLikeProfile()
                           : s.dataset == "femnist" ? FemnistLikeProfile()
                                                    : MnistLikeProfile();
    auto data = GenerateImageData(profile, train_examples, test_examples,
                                  &rng);
    ClientSplit split =
        s.dataset == "femnist"
            ? NaturalPartition(data.train_writers, profile.num_writers,
                               clients, &rng)
            : SimilarityPartition(data.train, clients, similarity, &rng);
    ClientSplit test_split = SimilarityPartition(data.test, clients,
                                                 similarity, &rng);
    for (int k = 0; k < clients; ++k) {
      s.views.push_back(ClientView{split.client_indices[k],
                                   test_split.client_indices[k]});
    }
    if (flags.GetString("model", "cnn") == "mlp") {
      MlpConfig mc;
      mc.in_channels = profile.channels;
      mc.image_size = profile.image_size;
      s.factory = MakeMlpFactory(mc);
    } else {
      CnnConfig mc;
      mc.in_channels = profile.channels;
      mc.image_size = profile.image_size;
      mc.conv1_channels = 4;
      mc.conv2_channels = 8;
      mc.feature_dim = 16;
      s.factory = MakeCnnFactory(mc);
    }
    s.train = std::make_unique<Dataset>(std::move(data.train));
    s.test = std::make_unique<Dataset>(std::move(data.test));
  }

  s.algorithm = Build(s.method, fl, reg, s.train.get(), s.views, s.factory);

  // Canonical spec string -> fingerprint. Covers every flag that shapes
  // the data, the model, or the round trajectory; deliberately excludes
  // output paths (csv_out, checkpoint_path) and resume_from, which only
  // direct artifacts.
  std::ostringstream spec;
  spec << "dataset=" << s.dataset << ";method=" << s.method
       << ";clients=" << clients << ";similarity=" << similarity
       << ";rounds=" << s.rounds << ";train_examples=" << train_examples
       << ";test_examples=" << test_examples << ";seed=" << seed
       << ";local_steps=" << fl.local_steps << ";batch=" << fl.batch_size
       << ";sample_ratio=" << fl.sample_ratio << ";lr=" << fl.lr
       << ";lambda=" << reg.lambda << ";dp_sigma=" << reg.dp.sigma
       << ";compressor=" << fl.upload_compressor
       << ";selection=" << fl.client_selection
       << ";model=" << flags.GetString("model", "cnn")
       << ";eval_every=" << s.eval_every
       << ";drop=" << fl.fault.drop_prob << ";corrupt=" << fl.fault.corrupt_prob
       << ";duplicate=" << fl.fault.duplicate_prob
       << ";delay=" << fl.fault.delay_prob
       << ";mean_delay_ms=" << fl.fault.mean_delay_ms
       << ";timeout_ms=" << fl.fault.round_timeout_ms
       << ";retries=" << fl.fault.max_retries << ";sim_mode=" << sim_mode
       << ";compute_model=" << compute_model
       << ";compute_ms=" << fl.sim.compute.mean_ms_per_step
       << ";compute_sigma=" << fl.sim.compute.sigma
       << ";compute_drift=" << fl.sim.compute.drift
       << ";compute_spread=" << fl.sim.compute.hetero_spread
       << ";down_bw=" << fl.sim.network.down_bytes_per_ms
       << ";up_bw=" << fl.sim.network.up_bytes_per_ms
       << ";base_latency_ms=" << fl.sim.network.base_latency_ms
       << ";deadline_ms=" << fl.sim.deadline_ms
       << ";async_buffer=" << fl.sim.async_buffer
       << ";adversary=" << fl.adversary.mode
       << ";adversary_frac=" << fl.adversary.fraction
       << ";adversary_scale=" << fl.adversary.scale
       << ";adversary_sigma=" << fl.adversary.noise_sigma
       << ";aggregator=" << fl.robust.aggregator
       << ";trim_fraction=" << fl.robust.trim_fraction
       << ";clip_multiplier=" << fl.robust.clip_multiplier
       << ";validate=" << fl.robust.validate
       << ";shard_fanout=" << fl.shard_fanout
       << ";stream_chunk=" << fl.stream_chunk;
  const std::string text = spec.str();
  s.fingerprint = static_cast<uint64_t>(
      Fnv1a32(reinterpret_cast<const uint8_t*>(text.data()), text.size()));
  return s;
}

}  // namespace serve
}  // namespace rfed
