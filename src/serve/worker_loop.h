#ifndef RFED_SERVE_WORKER_LOOP_H_
#define RFED_SERVE_WORKER_LOOP_H_

#include <cstdint>

#include "fl/algorithm.h"
#include "net/socket.h"

namespace rfed {
namespace serve {

/// The rfed_worker service loop: handshakes on `conn` (HELLO carrying
/// worker_id / num_workers / fingerprint, HELLO_ACK restoring the
/// server's run state into `algorithm`), then serves JOB frames — install
/// the broadcast model, apply the context blob, run the local steps,
/// reply RESULT — until SHUTDOWN or EOF. Returns true on a clean
/// shutdown, false if the connection died mid-protocol. Also the
/// in-process loopback harness of the serve tests: it runs unchanged on
/// a std::thread against a socketpair-like localhost connection.
bool RunWorkerLoop(FederatedAlgorithm* algorithm, net::TcpConnection* conn,
                   int worker_id, int num_workers, uint64_t fingerprint);

}  // namespace serve
}  // namespace rfed

#endif  // RFED_SERVE_WORKER_LOOP_H_
