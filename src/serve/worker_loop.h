#ifndef RFED_SERVE_WORKER_LOOP_H_
#define RFED_SERVE_WORKER_LOOP_H_

#include <cstdint>

#include "fl/algorithm.h"
#include "net/socket.h"

namespace rfed {
namespace serve {

/// How one pass of the worker service loop ended: cleanly (SHUTDOWN
/// frame) or with a lost connection, plus the last round this replica
/// completed a RESULT for (-1 if none) — what a reconnect attempt
/// reports in its HELLO_REJOIN.
struct WorkerLoopResult {
  bool clean_shutdown = false;
  int last_round = -1;
};

/// The rfed_worker service loop: handshakes on `conn` (HELLO — or
/// HELLO_REJOIN when `rejoin_round` >= 0, i.e. this is a reconnect after
/// a lost connection — carrying worker_id / num_workers / fingerprint;
/// HELLO_ACK restoring the server's run state into `algorithm`), then
/// serves JOB frames — install the batcher base and broadcast model,
/// apply the context blob, run the local steps, reply RESULT — and
/// answers PING probes with PONG, until SHUTDOWN or EOF. Jobs are
/// self-contained, so the loop executes whatever client the server
/// routed here, including jobs reassigned from a dead peer. Also the
/// in-process loopback harness of the serve tests: it runs unchanged on
/// a std::thread against a localhost connection.
WorkerLoopResult RunWorkerLoop(FederatedAlgorithm* algorithm,
                               net::TcpConnection* conn, int worker_id,
                               int num_workers, uint64_t fingerprint,
                               int rejoin_round = -1);

}  // namespace serve
}  // namespace rfed

#endif  // RFED_SERVE_WORKER_LOOP_H_
