#ifndef RFED_FL_FEDAVGM_H_
#define RFED_FL_FEDAVGM_H_

#include "fl/algorithm.h"

namespace rfed {

/// FedAvgM (Hsu et al.): FedAvg with server-side momentum. The server
/// treats the averaged client displacement as a pseudo-gradient and
/// applies a momentum update
///   m <- beta * m + (x - avg_k y_k),   x+ = x - m,
/// which damps the round-to-round oscillation non-IID cohorts induce —
/// a frequently used baseline knob in the non-IID FL literature. Under
/// channel faults the pseudo-gradient averages the survivors' models
/// (renormalized weights); a fully lost round simply leaves m as is.
class FedAvgM : public FederatedAlgorithm {
 public:
  FedAvgM(const FlConfig& config, double server_momentum,
          const Dataset* train_data, std::vector<ClientView> clients,
          const ModelFactory& model_factory);

  double server_momentum() const { return beta_; }

 protected:
  /// The momentum step is not a weighted mean of the uploaded states, so
  /// the streaming fold cannot reproduce it.
  bool SupportsStreamingAggregation() const override { return false; }
  void Aggregate(int round, const std::vector<int>& selected,
                 const std::vector<Tensor>& new_states,
                 const std::vector<double>& start_losses) override;
  /// Checkpointing: the server momentum buffer.
  void SaveExtraState(CheckpointWriter* writer) const override;
  void LoadExtraState(CheckpointReader* reader) override;

 private:
  double beta_;
  Tensor momentum_;
};

}  // namespace rfed

#endif  // RFED_FL_FEDAVGM_H_
