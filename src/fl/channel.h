#ifndef RFED_FL_CHANNEL_H_
#define RFED_FL_CHANNEL_H_

#include <cstdint>
#include <optional>

#include "fl/comm.h"
#include "fl/message.h"
#include "obs/metrics.h"
#include "util/backoff.h"
#include "util/rng.h"

namespace rfed {

/// Knobs of the simulated transport's fault model. All probabilities are
/// per *attempt*; with everything at zero the channel is a transparent
/// pass-through that charges the CommStats ledger exactly like the
/// direct calls it replaced and consumes no random draws, so fault-free
/// runs are bit-identical to the pre-channel simulator.
struct FaultOptions {
  double drop_prob = 0.0;       ///< message silently lost in flight
  double corrupt_prob = 0.0;    ///< payload bit-flipped (checksum catches it)
  double duplicate_prob = 0.0;  ///< delivered twice; the copy costs bandwidth
  double delay_prob = 0.0;      ///< message held up by a straggling link
  double mean_delay_ms = 50.0;  ///< mean of the exponential delay draw
  /// Messages whose accumulated latency (delays + retry backoff) exceeds
  /// this miss the round and count as timed out; 0 = wait forever.
  double round_timeout_ms = 250.0;
  /// Retransmissions attempted after a *detected* failure (corruption or
  /// timeout) or a loss the sender infers from a missing ack. 0 = none.
  int max_retries = 0;
  BackoffPolicy backoff;  ///< pacing between retransmissions

  bool enabled() const {
    return drop_prob > 0.0 || corrupt_prob > 0.0 || duplicate_prob > 0.0 ||
           delay_prob > 0.0;
  }
};

/// Which way a transfer flows; determines the CommStats side it charges.
enum class ChannelDirection { kDownload, kUpload };

/// Message-type tag for per-kind byte accounting in the metrics registry
/// (`comm.{down,up}_bytes.<kind>`). Callers pass one of these literals to
/// Send/Download/Upload; the default covers the common model transfer.
namespace channel_kind {
inline constexpr const char* kModel = "model";      ///< global model broadcast
inline constexpr const char* kUpdate = "update";    ///< trained client update
inline constexpr const char* kMap = "map";          ///< rFedAvg/+ δ-map traffic
inline constexpr const char* kControl = "control";  ///< SCAFFOLD control variates
}  // namespace channel_kind

/// Message-level delivery counters, cumulative and per-round. One
/// "delivered" or "dropped" tick per *logical* message; retries,
/// duplicates, corruptions and timeouts count the individual attempts.
struct ChannelStats {
  int64_t delivered = 0;
  int64_t dropped = 0;    ///< logical messages that never arrived
  int64_t retried = 0;    ///< retransmission attempts
  int64_t corrupted = 0;  ///< attempts rejected by the checksum
  int64_t duplicated = 0; ///< redundant copies delivered
  int64_t timed_out = 0;  ///< attempts that missed the round deadline
  int64_t round_delivered = 0;
  int64_t round_dropped = 0;
  int64_t round_retried = 0;

  void BeginRound() {
    round_delivered = 0;
    round_dropped = 0;
    round_retried = 0;
  }
};

/// Exact transport state captured by run checkpoints: the fault-lottery
/// RNG position, the cumulative delivery counters, and the latency of
/// the most recent transfer. Restoring it resumes the fault pattern
/// bit-identically mid-run.
struct ChannelState {
  RngState rng;
  ChannelStats stats;
  double last_latency_ms = 0.0;
};

/// Simulated lossy transport between the server and its clients. Every
/// transfer an algorithm used to charge straight to CommStats now goes
/// through Send(), which plays a seeded fault lottery per attempt: the
/// message can be dropped, corrupted (detected by the FlMessage
/// checksum), delayed past the round deadline, or duplicated. Failures
/// are retried up to FaultOptions::max_retries times under the
/// exponential-backoff policy; every attempt — including failed ones and
/// duplicate copies — occupies the wire and is charged to the ledger.
///
/// The channel owns its own RNG stream (derived from the config seed),
/// so enabling faults never perturbs the training randomness, and a
/// fixed seed reproduces the exact fault pattern.
class FaultChannel {
 public:
  FaultChannel(const FaultOptions& options, uint64_t seed, CommStats* ledger);

  /// Attempts delivery of one logical message of `bytes` bytes tagged
  /// with a `channel_kind` literal for per-kind byte metrics. Returns
  /// true iff a copy arrived within the round deadline.
  bool Send(ChannelDirection direction, int64_t bytes,
            const char* kind = channel_kind::kModel);

  bool Download(int64_t bytes, const char* kind = channel_kind::kModel) {
    return Send(ChannelDirection::kDownload, bytes, kind);
  }
  bool Upload(int64_t bytes, const char* kind = channel_kind::kModel) {
    return Send(ChannelDirection::kUpload, bytes, kind);
  }

  /// Full-fidelity transmission: encodes `message`, injects the faults
  /// into the actual bytes (corruption = real bit flips), and decodes on
  /// the receive side with checksum verification. Returns the received
  /// message, or nullopt if every attempt was lost, rejected, or late.
  std::optional<FlMessage> Transmit(const FlMessage& message,
                                    ChannelDirection direction,
                                    const char* kind = channel_kind::kModel);

  /// Resets the per-round delivery counters (and the ledger's, if the
  /// caller has not already done so, is harmless to repeat).
  void BeginRound() { stats_.BeginRound(); }

  const ChannelStats& stats() const { return stats_; }
  const FaultOptions& options() const { return options_; }

  /// Simulated latency (fault delays + retry backoff) accumulated by the
  /// most recent Send/Transmit, whether or not it was delivered. The sim
  /// runtime folds this into the sender's virtual transfer time; 0 on
  /// the fault-free pass-through path.
  double last_latency_ms() const { return last_latency_ms_; }

  /// Swaps the fault model mid-run (tests use this to toggle regimes);
  /// the RNG stream and counters carry over.
  void set_options(const FaultOptions& options) { options_ = options; }

  /// Snapshot / restore of the lottery stream and counters
  /// (checkpointing). Does not touch the CommStats ledger, which the
  /// run checkpoint restores separately.
  ChannelState SaveState() const {
    ChannelState state;
    state.rng = rng_.SaveState();
    state.stats = stats_;
    state.last_latency_ms = last_latency_ms_;
    return state;
  }
  void LoadState(const ChannelState& state) {
    rng_.LoadState(state.rng);
    stats_ = state.stats;
    last_latency_ms_ = state.last_latency_ms;
  }

 private:
  /// Outcome of one attempt of the per-attempt fault lottery.
  enum class Attempt { kDelivered, kDropped, kCorrupted, kTimedOut };

  /// Plays the lottery for one attempt, adding any simulated latency to
  /// *latency_ms.
  Attempt AttemptOnce(double* latency_ms);

  void Charge(ChannelDirection direction, int64_t bytes, const char* kind);

  /// Charges one wire attempt of an encoded FlMessage: the payload bytes
  /// go through Charge(), the fixed framing cost (header + checksum) is
  /// booked as wire overhead on the ledger and the
  /// `comm.wire_overhead_bytes` counter instead of being folded into the
  /// payload totals.
  void ChargeFramed(ChannelDirection direction, int64_t wire_bytes,
                    const char* kind);

  FaultOptions options_;
  CommStats* ledger_;
  Rng rng_;
  ChannelStats stats_;
  double last_latency_ms_ = 0.0;

  // Registry handles, resolved once at construction (registered eagerly
  // so every run's CSV has the same metric columns).
  obs::Counter* m_delivered_;
  obs::Counter* m_dropped_;
  obs::Counter* m_retried_;
  obs::Counter* m_corrupted_;
  obs::Counter* m_duplicated_;
  obs::Counter* m_timed_out_;
  obs::Counter* m_down_bytes_;
  obs::Counter* m_up_bytes_;
  obs::Counter* m_wire_overhead_;
};

}  // namespace rfed

#endif  // RFED_FL_CHANNEL_H_
