#ifndef RFED_FL_MESSAGE_H_
#define RFED_FL_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace rfed {

/// The wire envelope of one server<->client exchange. The in-process
/// simulator hands Tensors around directly for speed, but every byte the
/// CommStats ledger charges corresponds to this encoding; Encode/Decode
/// give a faithful round-trippable serialization for checkpointing runs
/// or replaying traffic, and its size is asserted against the ledger in
/// tests.
///
/// Wire layout: [kind, round, sender, payload_count : int32][payload_bytes
/// : int64][serialized tensors][checksum : uint32]. The trailing FNV-1a
/// checksum covers everything before it, so any corruption the simulated
/// channel injects — including flips inside the length fields — is
/// detected by TryDecode instead of being silently aggregated.
struct FlMessage {
  enum class Kind : int32_t {
    kModelDownload = 0,   ///< server -> client: global model
    kModelUpload = 1,     ///< client -> server: trained local model
    kDeltaBroadcast = 2,  ///< server -> client: δ map(s) (rFedAvg/rFedAvg+)
    kDeltaUpload = 3,     ///< client -> server: refreshed δ^k
    kControlVariate = 4,  ///< SCAFFOLD control variates
  };

  Kind kind = Kind::kModelDownload;
  int32_t round = 0;
  int32_t sender = -1;             ///< client id, -1 for the server
  std::vector<Tensor> payload;

  /// Fixed framing cost of the encoding: the header (kind, round,
  /// sender, payload count : int32 each, plus payload byte length :
  /// int64) and the trailing FNV-1a checksum. Exposed so transport
  /// layers can account framing overhead separately from payload bytes
  /// (CommStats::AddWireOverhead).
  static constexpr int64_t kHeaderBytes =
      static_cast<int64_t>(4 * sizeof(int32_t) + sizeof(int64_t));
  static constexpr int64_t kChecksumBytes =
      static_cast<int64_t>(sizeof(uint32_t));
  static constexpr int64_t kWireOverheadBytes = kHeaderBytes + kChecksumBytes;

  /// Serialized size in bytes.
  int64_t EncodedBytes() const;

  /// Appends the encoding (including the trailing checksum) to *out.
  void EncodeTo(std::vector<uint8_t>* out) const;

  /// The FNV-1a checksum this message carries on the wire.
  uint32_t Checksum() const;

  /// Decodes one message starting at *offset (advanced past it).
  /// Aborts on malformed input (truncation, bad kind, checksum mismatch).
  static FlMessage Decode(const std::vector<uint8_t>& buffer,
                          size_t* offset);

  /// Non-aborting variant for untrusted bytes (the fault channel's
  /// receive path): returns false — leaving *out and *offset unchanged —
  /// if the buffer is truncated, a field is out of range, or the checksum
  /// does not match the carried bytes. Never aborts, whatever the input.
  static bool TryDecode(const std::vector<uint8_t>& buffer, size_t* offset,
                        FlMessage* out);
};

}  // namespace rfed

#endif  // RFED_FL_MESSAGE_H_
